// Package evolve is a library-scale implementation of Ratnasamy, Shenker
// and McCanne, "Towards an Evolvable Internet Architecture" (SIGCOMM
// 2005): the mechanisms that let a new generation of IP — "IPvN" — be
// deployed gradually by incumbent ISPs while every endhost retains access
// from day one.
//
// The three pillars, each usable separately and assembled by Evolution:
//
//   - IP Anycast as network-level redirection (§3.1–3.2): a well-known
//     anycast address per IPvN deployment; endhosts encapsulate IPvN
//     packets toward it and unicast routing delivers them to the closest
//     IPvN router, under either deployment option (globally propagated
//     host routes, or addresses rooted in a default ISP's aggregate).
//   - vN-Bones (§3.3): participant ISPs' IPvN routers self-organize into
//     a multi-provider virtual network — k-closest intra-domain
//     adjacencies with partition repair, peering-policy tunnels across
//     domains, anycast bootstrap for isolated joiners.
//   - Routing over the bone (§3.3.2): native IPvN prefixes advertised by
//     participants, and three egress-selection policies for destinations
//     in non-participant domains (exit-early, BGPv(N-1)-informed,
//     advertising-by-proxy).
//
// Quick start:
//
//	net, _ := evolve.TransitStub(3, 4, 0.4, evolve.GenConfig{Seed: 1, HostsPerDomain: 2})
//	evo, _ := evolve.New(net, evolve.Config{Option: evolve.Option2, DefaultAS: net.ASNs()[0]})
//	evo.DeployDomain(net.ASNs()[0], 0) // one ISP deploys IPv8
//	d, _ := evo.Send(net.Hosts[0], net.Hosts[5], []byte("hello IPv8"))
//	fmt.Printf("delivered with stretch %.2f via %d vN hops\n", d.Stretch, d.VNHops)
//
// The full experiment harness reproducing the paper's figures lives
// behind RunExperiment / Experiments; see DESIGN.md and EXPERIMENTS.md.
//
// The library is built to hold fleet-scale internets: the routing plane
// scales to 10k+ domains (cmd/topobench) and the delivery plane to
// million-endhost fleets — Send is lock-free, memoises per-flow routing
// skeletons inside the immutable routing epoch, runs the wire path on
// pooled buffers (zero allocations at steady state) and counts into
// striped counters, so 64 concurrent senders scale without sharing
// cache lines (cmd/deliverybench; Config.DeliveryShards and
// Config.DisableDeliveryCache are the ablation knobs, and
// Evolution.RegisterEndhosts bulk-registers a fleet as one epoch).
package evolve

import (
	"fmt"

	"github.com/evolvable-net/evolve/internal/addr"
	"github.com/evolvable-net/evolve/internal/anycast"
	"github.com/evolvable-net/evolve/internal/core"
	"github.com/evolvable-net/evolve/internal/econ"
	"github.com/evolvable-net/evolve/internal/experiments"
	"github.com/evolvable-net/evolve/internal/livebridge"
	"github.com/evolvable-net/evolve/internal/metrics"
	"github.com/evolvable-net/evolve/internal/overlaynet"
	"github.com/evolvable-net/evolve/internal/routing/bgpvn"
	"github.com/evolvable-net/evolve/internal/topology"
	"github.com/evolvable-net/evolve/internal/trace"
	"github.com/evolvable-net/evolve/internal/vnbone"
	"github.com/evolvable-net/evolve/internal/vncast"
)

// Topology model.
type (
	// Network is an assembled multi-ISP internet.
	Network = topology.Network
	// Builder constructs hand-made scenario topologies.
	Builder = topology.Builder
	// Domain is one ISP.
	Domain = topology.Domain
	// Host is an endhost.
	Host = topology.Host
	// RouterID identifies a router.
	RouterID = topology.RouterID
	// ASN identifies a domain.
	ASN = topology.ASN
	// GenConfig parameterises the synthetic topology generators.
	GenConfig = topology.GenConfig
)

// Addresses.
type (
	// V4 is an underlay (IPv(N-1)) address.
	V4 = addr.V4
	// VN is a 128-bit IPvN address.
	VN = addr.VN
	// Prefix is an underlay CIDR block.
	Prefix = addr.Prefix
	// VNPrefix is an IPvN CIDR block.
	VNPrefix = addr.VNPrefix
)

// The deployment machinery.
type (
	// Evolution is one IPvN deployment over one internet — the library's
	// central type.
	Evolution = core.Evolution
	// Config parameterises an Evolution.
	Config = core.Config
	// Delivery is the accounting of one end-to-end IPvN transmission.
	Delivery = core.Delivery
	// Option selects the §3.2 anycast deployment option.
	Option = anycast.Option
	// EgressPolicy selects the §3.3.2 egress policy.
	EgressPolicy = bgpvn.EgressPolicy
	// BoneConfig parameterises vN-Bone construction.
	BoneConfig = vnbone.Config
	// Summary is a descriptive-statistics bundle.
	Summary = metrics.Summary
)

// IPvN capabilities built on the deployment.
type (
	// Multicast is the IPvN group-delivery capability running over the
	// vN-Bone — the paper's motivating use case, deployed evolvably.
	Multicast = vncast.Service
	// MulticastGroup is one IPvN group.
	MulticastGroup = vncast.Group
	// MulticastDelivery accounts one group transmission vs repeated
	// unicast.
	MulticastDelivery = vncast.Delivery
)

// Experiments and economics.
type (
	// Table is one experiment's output.
	Table = experiments.Table
	// AdoptionParams parameterises the §2.1 adoption-dynamics model.
	AdoptionParams = econ.Params
	// AdoptionModel is the adoption game itself.
	AdoptionModel = econ.Model
)

// Observability (OBSERVABILITY.md). A Tracer attached to an Evolution
// (SetTracer, or per-delivery via SendTraced) receives span events for
// every leg of a delivery; Counters tally evolution-wide totals whether
// or not a tracer is attached.
type (
	// Tracer receives per-delivery span events.
	Tracer = trace.Tracer
	// TraceEvent is one span event of a delivery.
	TraceEvent = trace.Event
	// TraceRecorder is a Tracer that appends events into memory.
	TraceRecorder = trace.Recorder
	// DropReason classifies why a delivery failed.
	DropReason = trace.DropReason
	// CounterSnapshot is a point-in-time copy of an Evolution's counters
	// (Evolution.Snapshot).
	CounterSnapshot = trace.Snapshot
)

// Live overlay prototype.
type (
	// OverlayRegistry maps underlay addresses to live UDP endpoints.
	OverlayRegistry = overlaynet.Registry
	// OverlayNode is a live vN router or endhost on a real socket.
	OverlayNode = overlaynet.Node
	// OverlayStats are one live node's forwarding counters.
	OverlayStats = overlaynet.Stats
	// LiveOverlay is a UDP overlay provisioned from a simulated
	// Evolution (simulator = control plane, sockets = data plane).
	LiveOverlay = livebridge.Overlay
	// FaultConfig parameterises seeded wire-fault injection on the live
	// overlay (drop/duplicate/delay rates, partitions).
	FaultConfig = overlaynet.FaultConfig
	// FaultTransport is the fault layer every live wire write passes
	// through once installed on an OverlayRegistry.
	FaultTransport = overlaynet.FaultTransport
	// LivenessConfig parameterises keepalive probing between live peers.
	LivenessConfig = overlaynet.LivenessConfig
	// ReliableConfig parameterises the acked/retransmitting SendVN mode.
	ReliableConfig = overlaynet.ReliableConfig
	// PeerStatus is one row of a live node's peer-health table.
	PeerStatus = overlaynet.PeerStatus
)

// Anycast deployment options (§3.2).
const (
	// Option1 propagates non-aggregatable anycast host routes globally.
	Option1 = anycast.Option1
	// Option2 roots the anycast address in a default ISP's aggregate.
	Option2 = anycast.Option2
	// OptionGIA uses Katabi et al.'s indicator-prefixed addresses with
	// home-domain fallback and an optional search extension.
	OptionGIA = anycast.OptionGIA
)

// Egress policies (§3.3.2, Figures 3–4).
const (
	// ExitEarly leaves the vN-Bone at the ingress router.
	ExitEarly = bgpvn.ExitEarly
	// PathInformed exits at the last participant on the underlay AS path.
	PathInformed = bgpvn.PathInformed
	// ProxyInformed uses advertising-by-proxy distances.
	ProxyInformed = bgpvn.ProxyInformed
)

// New creates an IPvN deployment over net. See Config for the knobs; the
// zero Config is option 2 with the paper's defaults and requires
// DefaultAS to be set.
func New(net *Network, cfg Config) (*Evolution, error) {
	return core.New(net, cfg)
}

// NewBuilder starts a hand-made topology (the figure scenarios are built
// this way).
func NewBuilder() *Builder { return topology.NewBuilder() }

// TransitStub generates the classic two-tier internet: nTransit transit
// providers in a peering mesh, each with stubsPerTransit customer stubs,
// a fraction multihomed.
func TransitStub(nTransit, stubsPerTransit int, multihomeFrac float64, cfg GenConfig) (*Network, error) {
	return topology.TransitStub(nTransit, stubsPerTransit, multihomeFrac, cfg)
}

// RingOfDomains generates k peered domains in a ring.
func RingOfDomains(k int, cfg GenConfig) (*Network, error) {
	return topology.RingOfDomains(k, cfg)
}

// Waxman generates a random geometric AS graph.
func Waxman(nDomains int, alpha, beta float64, cfg GenConfig) (*Network, error) {
	return topology.Waxman(nDomains, alpha, beta, cfg)
}

// BarabasiAlbert generates a preferential-attachment AS graph.
func BarabasiAlbert(nDomains, m int, cfg GenConfig) (*Network, error) {
	return topology.BarabasiAlbert(nDomains, m, cfg)
}

// NewMulticast creates the IPv8-multicast capability over a deployment:
// hosts subscribe via anycast (universal access) and group traffic rides
// a shared tree over the vN-Bone.
func NewMulticast(evo *Evolution) *Multicast { return vncast.New(evo) }

// NewAdoptionModel creates the §2.1 adoption-dynamics model with customer
// shares derived from a network's host counts.
func NewAdoptionModel(p AdoptionParams, net *Network) (*AdoptionModel, error) {
	return econ.NewModelFromNetwork(p, net)
}

// Summarize computes descriptive statistics of a sample (e.g. the
// stretch sample from Evolution.StretchSample).
func Summarize(xs []float64) Summary { return metrics.Summarize(xs) }

// NewOverlayRegistry creates the live prototype's address registry.
func NewOverlayRegistry() *OverlayRegistry { return overlaynet.NewRegistry() }

// NewOverlayNode binds a live overlay node to a UDP socket on localhost.
func NewOverlayNode(reg *OverlayRegistry, underlay V4) (*OverlayNode, error) {
	return overlaynet.NewNode(reg, underlay)
}

// ProvisionLiveOverlay instantiates a live UDP overlay for an Evolution's
// current deployment: one node per vN router and per host, routes and
// anycast resolution driven by the simulated control plane. Close it when
// done.
func ProvisionLiveOverlay(evo *Evolution) (*LiveOverlay, error) {
	return livebridge.Provision(evo)
}

// NewFaultTransport creates a seeded wire-fault injector; install it with
// OverlayRegistry.SetFaultTransport to subject every live send to
// deterministic drop/duplicate/delay faults and pairwise partitions.
func NewFaultTransport(cfg FaultConfig) *FaultTransport {
	return overlaynet.NewFaultTransport(cfg)
}

// SelfAddress derives the §3.3.2 temporary IPvN address for a host of a
// non-participating provider.
func SelfAddress(underlay V4) VN { return addr.SelfAddress(underlay) }

// DomainVNPrefix is the native IPvN block delegated to an adopting domain.
func DomainVNPrefix(asn ASN) VNPrefix { return addr.DomainVNPrefix(int(asn)) }

// ParseV4 parses a dotted-quad underlay address.
func ParseV4(s string) (V4, error) { return addr.ParseV4(s) }

// SetExperimentWorkers sets the goroutine count the sweep-style
// experiments fan out over (0 or negative = GOMAXPROCS). Results are
// deterministic regardless of the worker count.
func SetExperimentWorkers(n int) { experiments.SetWorkers(n) }

// NewTraceRecorder creates an in-memory Tracer for use with
// Evolution.SendTraced or Evolution.SetTracer.
func NewTraceRecorder() *TraceRecorder { return trace.NewRecorder() }

// SetTraceSample makes trace-aware experiments sample up to n per-hop
// path traces into Table.Traces (figgen's -trace-sample flag; 0
// disables, the default). Tables' rows and verdicts are unaffected.
func SetTraceSample(n int) { experiments.SetTraceSample(n) }

// Experiments lists every reproduction experiment (DESIGN.md §4) in id
// order.
func Experiments() []string {
	var out []string
	for _, e := range experiments.All() {
		out = append(out, e.ID)
	}
	return out
}

// RunExperiment runs one experiment by id ("E1".."E12") with the given
// seed and returns its table.
func RunExperiment(id string, seed int64) (*Table, error) {
	for _, e := range experiments.All() {
		if e.ID == id {
			return e.Run(seed)
		}
	}
	return nil, fmt.Errorf("evolve: unknown experiment %q (have %v)", id, Experiments())
}

// RunAllExperiments runs the full harness with one seed, returning the
// tables in id order. Errors abort at the first failing experiment.
func RunAllExperiments(seed int64) ([]*Table, error) {
	var out []*Table
	for _, e := range experiments.All() {
		t, err := e.Run(seed)
		if err != nil {
			return out, fmt.Errorf("evolve: %s: %w", e.ID, err)
		}
		out = append(out, t)
	}
	return out, nil
}
