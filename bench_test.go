package evolve

// The benchmark harness: one testing.B benchmark per paper figure /
// experiment (DESIGN.md §4 maps each to its scenario). Each benchmark
// regenerates its experiment's table and additionally reports
// experiment-specific metrics through b.ReportMetric, so
// `go test -bench=. -benchmem` reproduces the complete evaluation.

import (
	"os"
	"runtime"
	"strconv"
	"sync/atomic"
	"testing"

	"github.com/evolvable-net/evolve/internal/anycast"
	"github.com/evolvable-net/evolve/internal/core"
	"github.com/evolvable-net/evolve/internal/experiments"
	"github.com/evolvable-net/evolve/internal/routing/bgpvn"
	"github.com/evolvable-net/evolve/internal/topology"
)

// benchExperiment runs one harness experiment per iteration and fails the
// benchmark if the reproduction verdict regresses.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tbl, err := RunExperiment(id, 42)
		if err != nil {
			b.Fatal(err)
		}
		if !tbl.OK {
			b.Fatalf("%s verdict regressed: %s", id, tbl.Verdict)
		}
	}
}

// BenchmarkFig1SeamlessSpread regenerates Figure 1 (E1).
func BenchmarkFig1SeamlessSpread(b *testing.B) { benchExperiment(b, "E1") }

// BenchmarkFig2DefaultRoutes regenerates Figure 2 (E2).
func BenchmarkFig2DefaultRoutes(b *testing.B) { benchExperiment(b, "E2") }

// BenchmarkFig3EgressSelection regenerates Figure 3 (E3).
func BenchmarkFig3EgressSelection(b *testing.B) { benchExperiment(b, "E3") }

// BenchmarkFig4AdvByProxy regenerates Figure 4 (E4).
func BenchmarkFig4AdvByProxy(b *testing.B) { benchExperiment(b, "E4") }

// BenchmarkUAStretchVsDeployment regenerates E5.
func BenchmarkUAStretchVsDeployment(b *testing.B) { benchExperiment(b, "E5") }

// BenchmarkRedirectorComparison regenerates E6.
func BenchmarkRedirectorComparison(b *testing.B) { benchExperiment(b, "E6") }

// BenchmarkAnycastStateGrowth regenerates E7.
func BenchmarkAnycastStateGrowth(b *testing.B) { benchExperiment(b, "E7") }

// BenchmarkVNBoneConstruction regenerates E8.
func BenchmarkVNBoneConstruction(b *testing.B) { benchExperiment(b, "E8") }

// BenchmarkAdoptionDynamics regenerates E9.
func BenchmarkAdoptionDynamics(b *testing.B) { benchExperiment(b, "E9") }

// BenchmarkSelfAddressing regenerates E10.
func BenchmarkSelfAddressing(b *testing.B) { benchExperiment(b, "E10") }

// BenchmarkOverlayForwarding regenerates E11 (live UDP sockets).
func BenchmarkOverlayForwarding(b *testing.B) { benchExperiment(b, "E11") }

// BenchmarkIntraDomainAnycast regenerates E12.
func BenchmarkIntraDomainAnycast(b *testing.B) { benchExperiment(b, "E12") }

// BenchmarkFailureResilience regenerates E13.
func BenchmarkFailureResilience(b *testing.B) { benchExperiment(b, "E13") }

// BenchmarkEndhostRegistration regenerates E14.
func BenchmarkEndhostRegistration(b *testing.B) { benchExperiment(b, "E14") }

// BenchmarkProviderChoice regenerates E15.
func BenchmarkProviderChoice(b *testing.B) { benchExperiment(b, "E15") }

// BenchmarkGIAComparison regenerates E16.
func BenchmarkGIAComparison(b *testing.B) { benchExperiment(b, "E16") }

// BenchmarkConvergenceDynamics regenerates E17.
func BenchmarkConvergenceDynamics(b *testing.B) { benchExperiment(b, "E17") }

// BenchmarkAnycastFailoverDynamics regenerates E18.
func BenchmarkAnycastFailoverDynamics(b *testing.B) { benchExperiment(b, "E18") }

// BenchmarkMulticastPayoff regenerates E19.
func BenchmarkMulticastPayoff(b *testing.B) { benchExperiment(b, "E19") }

// BenchmarkDefaultDomainDependence regenerates E20.
func BenchmarkDefaultDomainDependence(b *testing.B) { benchExperiment(b, "E20") }

// BenchmarkSendEndToEnd measures the full data path (ingress anycast,
// bone relay with real encap/decap, egress, tail) per delivery, at three
// deployment levels.
func BenchmarkSendEndToEnd(b *testing.B) {
	net, err := TransitStub(3, 4, 0.4, GenConfig{Seed: 42, RoutersPerDomain: 3, HostsPerDomain: 2})
	if err != nil {
		b.Fatal(err)
	}
	for _, deployed := range []int{1, len(net.ASNs()) / 2, len(net.ASNs())} {
		b.Run("deployedISPs="+strconv.Itoa(deployed), func(b *testing.B) {
			evo, err := core.New(net, core.Config{Option: anycast.Option2, DefaultAS: net.ASNs()[0]})
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < deployed; i++ {
				evo.DeployDomain(net.ASNs()[i], 0)
			}
			src := net.Hosts[0]
			dst := net.Hosts[len(net.Hosts)-1]
			payload := make([]byte, 256)
			// Warm caches and record the stretch this configuration gives.
			d, err := evo.Send(src, dst, payload)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(d.Stretch, "stretch")
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := evo.Send(src, dst, payload); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEgressPolicies is the E3/E4 ablation at workload scale: mean
// stretch per egress policy over all host pairs.
func BenchmarkEgressPolicies(b *testing.B) {
	net, err := TransitStub(3, 4, 0.4, GenConfig{Seed: 42, RoutersPerDomain: 3, HostsPerDomain: 2})
	if err != nil {
		b.Fatal(err)
	}
	for _, pol := range []EgressPolicy{ExitEarly, PathInformed, ProxyInformed} {
		b.Run(pol.String(), func(b *testing.B) {
			evo, err := core.New(net, core.Config{
				Option: anycast.Option2, DefaultAS: net.ASNs()[0], Egress: pol,
			})
			if err != nil {
				b.Fatal(err)
			}
			evo.DeployDomain(net.DomainByName("T0").ASN, 0)
			evo.DeployDomain(net.DomainByName("T1").ASN, 0)
			b.ReportAllocs()
			var mean float64
			for i := 0; i < b.N; i++ {
				sample, failures, err := evo.StretchSample(200)
				if err != nil || failures > 0 {
					b.Fatalf("%v (%d failures)", err, failures)
				}
				s := Summarize(sample)
				mean = s.Mean
			}
			b.ReportMetric(mean, "mean-stretch")
		})
	}
}

// BenchmarkSendParallel measures the concurrent-send hot path: all
// goroutines hammer one Evolution through the RWMutex read path. Compare
// against BenchmarkSendEndToEnd for the scaling factor.
func BenchmarkSendParallel(b *testing.B) {
	net, err := TransitStub(3, 4, 0.4, GenConfig{Seed: 42, RoutersPerDomain: 3, HostsPerDomain: 2})
	if err != nil {
		b.Fatal(err)
	}
	evo, err := core.New(net, core.Config{Option: anycast.Option2, DefaultAS: net.ASNs()[0]})
	if err != nil {
		b.Fatal(err)
	}
	for _, asn := range net.ASNs() {
		evo.DeployDomain(asn, 0)
	}
	src := net.Hosts[0]
	dst := net.Hosts[len(net.Hosts)-1]
	payload := make([]byte, 256)
	if _, err := evo.Send(src, dst, payload); err != nil { // warm caches
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := evo.Send(src, dst, payload); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSweepParallel runs the E5 deployment-spread sweep at several
// worker counts; the acceptance bar is ≥ 2× speedup at 4 workers with
// byte-identical tables (determinism is asserted, not just hoped for).
func BenchmarkSweepParallel(b *testing.B) {
	serial, err := experiments.UAStretchVsDeploymentWorkers(42, 1)
	if err != nil {
		b.Fatal(err)
	}
	want := serial.String()
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run("workers="+strconv.Itoa(workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tbl, err := experiments.UAStretchVsDeploymentWorkers(42, workers)
				if err != nil {
					b.Fatal(err)
				}
				if got := tbl.String(); got != want {
					b.Fatalf("workers=%d diverged from serial output:\n%s", workers, got)
				}
			}
		})
	}
}

// BenchmarkBGPConvergence measures routing-fixpoint cost as the internet
// grows — the substrate's scalability.
func BenchmarkBGPConvergence(b *testing.B) {
	for _, size := range []int{10, 25, 50} {
		b.Run("ASes="+strconv.Itoa(size), func(b *testing.B) {
			net, err := topology.BarabasiAlbert(size, 2, topology.GenConfig{Seed: 42, RoutersPerDomain: 2})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				evo, err := core.New(net, core.Config{Option: anycast.Option1})
				if err != nil {
					b.Fatal(err)
				}
				evo.DeployDomain(net.ASNs()[0], 0)
				if _, err := evo.Bone(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBoneRebuild isolates vN-Bone construction cost as membership
// grows.
func BenchmarkBoneRebuild(b *testing.B) {
	net, err := TransitStub(3, 4, 0.4, GenConfig{Seed: 42, RoutersPerDomain: 4})
	if err != nil {
		b.Fatal(err)
	}
	for _, domains := range []int{3, 7, 15} {
		b.Run("participants="+strconv.Itoa(domains), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				evo, err := core.New(net, core.Config{Option: anycast.Option1, Egress: bgpvn.PathInformed})
				if err != nil {
					b.Fatal(err)
				}
				for j := 0; j < domains && j < len(net.ASNs()); j++ {
					evo.DeployDomain(net.ASNs()[j], 0)
				}
				if _, err := evo.Bone(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// fleetSize is the endhost count BenchmarkFleetSend registers. The
// default keeps `go test -bench` tractable; the headline configuration
// is FLEET_HOSTS=1000000.
func fleetSize() int {
	if s := os.Getenv("FLEET_HOSTS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return 50000
}

// fleetWorld generates a transit–stub internet carrying about `hosts`
// endhosts (50 per stub domain), deploys an anycast group over the
// transit core, and bulk-registers every stub endhost so the delivery
// plane carries one /128 per fleet member.
func fleetWorld(b *testing.B, hosts int, cfg core.Config) (*topology.Network, *core.Evolution) {
	b.Helper()
	const hostsPer = 50
	domains := hosts / hostsPer
	if domains < 4 {
		domains = 4
	}
	nTransit := domains / 100
	if nTransit < 2 {
		nTransit = 2
	}
	net, err := topology.TransitStub(nTransit, domains/nTransit-1, 0.3, topology.GenConfig{
		Seed: 42, RoutersPerDomain: 2, HostsPerDomain: hostsPer,
	})
	if err != nil {
		b.Fatal(err)
	}
	cfg.Option = anycast.Option2
	cfg.DefaultAS = net.DomainByName("T0").ASN
	evo, err := core.New(net, cfg)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < nTransit; i++ {
		evo.DeployDomain(net.DomainByName("T"+strconv.Itoa(i)).ASN, 0)
	}
	if err := evo.RegisterEndhosts(net.Hosts); err != nil {
		b.Fatal(err)
	}
	return net, evo
}

// BenchmarkFleetSend is the tentpole's acceptance benchmark: a
// fleet-scale internet (FLEET_HOSTS endhosts, 1M for the headline run,
// every one registered) hammered by 64 concurrent senders over a fixed
// working set of flows. The unsharded arm is the pre-sharding delivery
// plane — one shard, one counter stripe, no flow memoisation — and the
// sharded arm is the default configuration; the ratio of their sends/sec
// is the tentpole's ≥2× bar. Steady state on the sharded arm must report
// 0 allocs/op.
func BenchmarkFleetSend(b *testing.B) {
	hosts := fleetSize()
	for _, arm := range []struct {
		name string
		cfg  core.Config
	}{
		{"unsharded", core.Config{DeliveryShards: 1, DisableDeliveryCache: true}},
		{"sharded", core.Config{}},
	} {
		b.Run(arm.name, func(b *testing.B) {
			net, evo := fleetWorld(b, hosts, arm.cfg)
			if arm.name == "unsharded" {
				evo.Counters().SetStripes(1)
			}
			// The senders cycle a fixed flow working set spanning the
			// whole fleet, so the sharded arm exercises memoised flows the
			// way a steady traffic matrix would.
			const flows = 1024
			type pair struct{ src, dst *topology.Host }
			pairs := make([]pair, flows)
			stride := len(net.Hosts)/flows + 1
			for i := range pairs {
				pairs[i] = pair{
					src: net.Hosts[(i*stride)%len(net.Hosts)],
					dst: net.Hosts[(i*stride+len(net.Hosts)/2)%len(net.Hosts)],
				}
			}
			payload := make([]byte, 256)
			for i := 0; i < flows; i++ { // warm every flow once
				if _, err := evo.Send(pairs[i].src, pairs[i].dst, payload); err != nil {
					b.Fatal(err)
				}
			}
			// 64 concurrent senders regardless of GOMAXPROCS.
			para := 64 / runtime.GOMAXPROCS(0)
			if para < 1 {
				para = 1
			}
			b.SetParallelism(para)
			var next atomic.Uint64
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					p := pairs[next.Add(1)%flows]
					if _, err := evo.Send(p.src, p.dst, payload); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "sends/sec")
		})
	}
}

// BenchmarkSendBatch compares the batched send path against the
// equivalent Send loop on 64-packet bursts over the fleet world — the
// batch tentpole's acceptance pair. Every iteration is one burst; the
// packets/sec metric is what the ≥2× batch-over-loop bar is measured on.
// The burst cycles 8 distinct destinations (8 flow skeletons per batch,
// 8 packets riding each), and the single-destination SendBurst arm is
// the best case (one flow, 64 packets).
func BenchmarkSendBatch(b *testing.B) {
	const burst = 64
	net, evo := fleetWorld(b, fleetSize(), core.Config{})
	src := net.Hosts[0]
	dsts := make([]*topology.Host, burst)
	for i := range dsts {
		dsts[i] = net.Hosts[(1+i%8)*len(net.Hosts)/16]
	}
	payload := make([]byte, 256)
	payloads := make([][]byte, burst)
	for i := range payloads {
		payloads[i] = payload
	}
	for _, d := range dsts { // warm every flow
		if _, err := evo.Send(src, d, payload); err != nil {
			b.Fatal(err)
		}
	}

	b.Run("loop", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for j := 0; j < burst; j++ {
				if _, err := evo.Send(src, dsts[j], payload); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.ReportMetric(float64(b.N)*burst/b.Elapsed().Seconds(), "packets/sec")
	})
	b.Run("batch", func(b *testing.B) {
		out := make([]core.Delivery, 0, burst)
		var err error
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if out, err = evo.AppendSendBatch(out[:0], src, dsts, payloads); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(b.N)*burst/b.Elapsed().Seconds(), "packets/sec")
	})
	b.Run("burst", func(b *testing.B) {
		out := make([]core.Delivery, 0, burst)
		var err error
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if out, err = evo.AppendSendBurst(out[:0], src, dsts[0], payloads); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(b.N)*burst/b.Elapsed().Seconds(), "packets/sec")
	})
}

// churnWorld builds the stock 15-domain transit–stub internet with an
// option-1 deployment over the first 7 domains, plus one intra link of a
// deployed stub domain to flap.
func churnWorld(b *testing.B, full bool) (*topology.Network, *core.Evolution, topology.RouterID, topology.RouterID, int64) {
	b.Helper()
	net, err := topology.TransitStub(3, 4, 0.4, topology.GenConfig{
		Seed:             42,
		RoutersPerDomain: 3,
		HostsPerDomain:   2,
	})
	if err != nil {
		b.Fatal(err)
	}
	evo, err := core.New(net, core.Config{Option: anycast.Option1, FullReconverge: full})
	if err != nil {
		b.Fatal(err)
	}
	for _, asn := range net.ASNs()[:7] {
		evo.DeployDomain(asn, 0)
	}
	asn := net.ASNs()[6]
	for _, r := range net.Domain(asn).Routers {
		for _, e := range net.Intra.Neighbors(int(r)) {
			if net.DomainOf(topology.RouterID(e.To)) == asn {
				return net, evo, r, topology.RouterID(e.To), e.Weight
			}
		}
	}
	b.Fatalf("AS%d has no intra link to flap", asn)
	return nil, nil, 0, 0, 0
}

// BenchmarkChurnSend measures delivery under reconvergence churn: every
// iteration flaps one intra-domain link (two epoch rebuilds) and then
// sends a burst of packets. The scoped/full pair quantifies what
// per-domain invalidation buys over dump-everything reconvergence; the
// dijkstras/op metric is the recomputation count the scoped path saves.
func BenchmarkChurnSend(b *testing.B) {
	for _, mode := range []struct {
		name string
		full bool
	}{{"scoped", false}, {"full", true}} {
		b.Run(mode.name, func(b *testing.B) {
			net, evo, ra, rb, lat := churnWorld(b, mode.full)
			payload := []byte("churn-bench")
			if _, err := evo.Send(net.Hosts[0], net.Hosts[1], payload); err != nil {
				b.Fatal(err)
			}
			start := evo.IGP.DijkstraRuns()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				evo.FailIntraLink(ra, rb)
				evo.RestoreIntraLink(ra, rb, lat)
				for j := 0; j < 8; j++ {
					src := net.Hosts[(i+j)%len(net.Hosts)]
					dst := net.Hosts[(i+j+1)%len(net.Hosts)]
					if _, err := evo.Send(src, dst, payload); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(evo.IGP.DijkstraRuns()-start)/float64(b.N), "dijkstras/op")
		})
	}
}
