module github.com/evolvable-net/evolve

go 1.22
