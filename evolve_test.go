package evolve

import (
	"strings"
	"testing"
)

func TestQuickstartFlow(t *testing.T) {
	net, err := TransitStub(2, 3, 0.3, GenConfig{Seed: 1, HostsPerDomain: 2})
	if err != nil {
		t.Fatal(err)
	}
	evo, err := New(net, Config{Option: Option2, DefaultAS: net.ASNs()[0]})
	if err != nil {
		t.Fatal(err)
	}
	evo.DeployDomain(net.ASNs()[0], 0)
	d, err := evo.Send(net.Hosts[0], net.Hosts[len(net.Hosts)-1], []byte("hello IPv8"))
	if err != nil {
		t.Fatal(err)
	}
	if string(d.Payload) != "hello IPv8" {
		t.Errorf("payload = %q", d.Payload)
	}
	if d.Stretch < 1 {
		t.Errorf("stretch = %.3f", d.Stretch)
	}
}

func TestBuilderFlow(t *testing.T) {
	b := NewBuilder()
	x := b.AddDomain("X")
	z := b.AddDomain("Z")
	rx := b.AddRouter(x, "")
	rz := b.AddRouter(z, "")
	b.Provide(rx, rz, 10)
	hx := b.AddHost(x, rx, "", 1)
	hz := b.AddHost(z, rz, "", 1)
	net, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	evo, err := New(net, Config{Option: Option1, Egress: ProxyInformed})
	if err != nil {
		t.Fatal(err)
	}
	evo.DeployRouter(rx)
	d, err := evo.Send(hz, hx, []byte("up"))
	if err != nil {
		t.Fatal(err)
	}
	if string(d.Payload) != "up" {
		t.Errorf("payload = %q", d.Payload)
	}
}

func TestGenerators(t *testing.T) {
	if _, err := RingOfDomains(4, GenConfig{Seed: 2}); err != nil {
		t.Error(err)
	}
	if _, err := Waxman(6, 0.5, 0.5, GenConfig{Seed: 2}); err != nil {
		t.Error(err)
	}
	if _, err := BarabasiAlbert(6, 1, GenConfig{Seed: 2}); err != nil {
		t.Error(err)
	}
}

func TestAddressHelpers(t *testing.T) {
	a, err := ParseV4("10.1.2.3")
	if err != nil {
		t.Fatal(err)
	}
	v := SelfAddress(a)
	if !v.IsSelf() {
		t.Error("self flag missing")
	}
	p := DomainVNPrefix(7)
	if p.Contains(v) {
		t.Error("self address inside native prefix")
	}
}

func TestExperimentRegistry(t *testing.T) {
	ids := Experiments()
	if len(ids) < 13 || ids[0] != "E1" || ids[12] != "E13" {
		t.Fatalf("ids = %v", ids)
	}
	tbl, err := RunExperiment("E1", 1)
	if err != nil {
		t.Fatal(err)
	}
	if !tbl.OK {
		t.Errorf("E1 verdict: %s", tbl.Verdict)
	}
	if _, err := RunExperiment("E99", 1); err == nil || !strings.Contains(err.Error(), "unknown experiment") {
		t.Errorf("err = %v", err)
	}
}

func TestAdoptionModelFacade(t *testing.T) {
	net, err := TransitStub(2, 2, 0, GenConfig{Seed: 3, HostsPerDomain: 2})
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewAdoptionModel(AdoptionParams{UniversalAccess: true}, net)
	if err != nil {
		t.Fatal(err)
	}
	m.Run()
	if !m.Outcome().Completed {
		t.Error("UA adoption did not complete")
	}
}

func TestSummarizeFacade(t *testing.T) {
	s := Summarize([]float64{1, 2, 3})
	if s.N != 3 || s.Mean != 2 {
		t.Errorf("summary = %+v", s)
	}
}

func TestOverlayFacade(t *testing.T) {
	reg := NewOverlayRegistry()
	a, err := ParseV4("10.9.0.1")
	if err != nil {
		t.Fatal(err)
	}
	n, err := NewOverlayNode(reg, a)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	if _, ok := reg.Endpoint(a); !ok {
		t.Error("node not registered")
	}
}
