// Command availbench runs the availability SLO differential: twin stock
// internets over the same topology seed — one with the graceful-
// degradation layer enabled, one ablated — driven through one seeded
// fault schedule plus a forced full-undeploy outage, with ring-pair
// traffic tallied on both arms after every event. It reports delivered
// fractions, fallback-window durations and time-to-repair as JSON, and
// exits non-zero when the run disproves the degradation contract: the
// fallback arm lost a baseline-intact packet, the ablation arm never
// black-holed (the differential proved nothing), or the fallback arm's
// delivered fraction regressed below the ablation arm's. CI runs it and
// archives the artifact so availability regressions show up as a number,
// not a feeling.
//
// Usage:
//
//	go run ./cmd/availbench -steps 60 -pairs 4 -o BENCH_avail.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"github.com/evolvable-net/evolve/internal/chaos"
)

func main() {
	var (
		topoSeed = flag.Int64("topo-seed", 1, "seed for the shared transit-stub topology")
		seed     = flag.Int64("seed", 2, "seed for the fault schedule")
		steps    = flag.Int("steps", 60, "schedule events per run")
		pairs    = flag.Int("pairs", 4, "ring pairs exercised after each event")
		outPath  = flag.String("o", "", "write the JSON report to this file (default stdout only)")
	)
	flag.Parse()

	rep, err := chaos.RunAvailability(*topoSeed, *seed, *steps, *pairs)
	if err != nil {
		fmt.Fprintf(os.Stderr, "availbench: %v\n", err)
		os.Exit(2)
	}

	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "availbench: marshal: %v\n", err)
		os.Exit(2)
	}
	fmt.Println(string(blob))
	if *outPath != "" {
		if err := os.WriteFile(*outPath, append(blob, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "availbench: writing %s: %v\n", *outPath, err)
			os.Exit(2)
		}
	}

	if err := rep.Gate(); err != nil {
		fmt.Fprintf(os.Stderr, "availbench: SLO gate FAILED: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("availbench: ok — fallback delivered %.4f (ablation %.4f), %d baseline-intact black holes prevented, repair in %d step(s)\n",
		rep.Fallback.DeliveredFraction, rep.Ablation.DeliveredFraction,
		rep.Ablation.BaselineIntactLost, rep.TimeToRepairSteps)
}
