// Command bgpbench measures the transient behavior of the event-driven
// BGP sessions — the picture the paper's "seamless" anycast story
// hand-waves. Per internet size it runs four arms on Barabási–Albert
// internets:
//
//   - cold start: time-to-quiescence and message cost of establishing
//     every session and propagating every aggregate;
//   - origination: an anycast origination at a leaf, with per-AS
//     time-to-first-route measured by loc-RIB observation;
//   - withdrawal: one origin of an anycast pair withdraws; the black-hole
//     window is, per AS, how long it keeps forwarding toward the
//     withdrawn origin before re-homing;
//   - flap: a transit link flaps mid-stream; the arm passes only if the
//     loc-RIBs match the batch fixpoint at quiescence (differential).
//
// Results land in BENCH_bgp.json; CI archives the artifact. Exit status
// is 1 if any arm fails to quiesce or the flap differential diverges.
//
// Usage:
//
//	go run ./cmd/bgpbench -sizes 10,20,40 -o BENCH_bgp.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"github.com/evolvable-net/evolve/internal/addr"
	"github.com/evolvable-net/evolve/internal/netsim"
	"github.com/evolvable-net/evolve/internal/routing/bgp"
	"github.com/evolvable-net/evolve/internal/topology"
)

// coldResult is the session-establishment arm.
type coldResult struct {
	QuiesceUS  int64  `json:"quiesce_us"`
	Updates    uint64 `json:"updates"`
	Keepalives uint64 `json:"keepalives"`
	Sessions   uint64 `json:"sessions_established"`
	WallNS     int64  `json:"wall_ns"`
}

// originationResult is the anycast-propagation arm.
type originationResult struct {
	FirstRouteMinUS  int64   `json:"first_route_min_us"`
	FirstRouteMeanUS float64 `json:"first_route_mean_us"`
	FirstRouteMaxUS  int64   `json:"first_route_max_us"`
	QuiesceUS        int64   `json:"quiesce_us"`
	Updates          uint64  `json:"updates"`
}

// withdrawalResult is the black-hole-window arm.
type withdrawalResult struct {
	AffectedAS      int     `json:"affected_as"`
	BlackHoleMeanUS float64 `json:"black_hole_mean_us"`
	BlackHoleMaxUS  int64   `json:"black_hole_max_us"`
	QuiesceUS       int64   `json:"quiesce_us"`
	Updates         uint64  `json:"updates"`
	Withdrawals     uint64  `json:"withdrawals"`
	StaleAtQuiesce  int     `json:"stale_at_quiesce"`
}

// flapResult is the loss-recovery differential arm.
type flapResult struct {
	ShortFlapResyncs uint64 `json:"short_flap_resyncs"`
	LongFlapDowns    uint64 `json:"long_flap_downs"`
	Updates          uint64 `json:"updates"`
	DifferentialOK   bool   `json:"differential_ok"`
	QuiesceUS        int64  `json:"quiesce_us"`
}

// sizeResult is everything measured for one internet size.
type sizeResult struct {
	ASCount     int               `json:"as_count"`
	Cold        coldResult        `json:"cold"`
	Origination originationResult `json:"origination"`
	Withdrawal  withdrawalResult  `json:"withdrawal"`
	Flap        flapResult        `json:"flap"`
	OK          bool              `json:"ok"`
}

// report is the BENCH_bgp.json schema.
type report struct {
	Scenario    string       `json:"scenario"`
	Seed        int64        `json:"seed"`
	KeepaliveUS int64        `json:"keepalive_us"`
	HoldUS      int64        `json:"hold_us"`
	MRAIUS      int64        `json:"mrai_us"`
	Sizes       []sizeResult `json:"sizes"`
	OK          bool         `json:"ok"`
}

func build(nAS int, seed int64) (*topology.Network, *SessionWorld, error) {
	net, err := topology.BarabasiAlbert(nAS, 2, topology.GenConfig{
		Seed: seed, RoutersPerDomain: 1,
	})
	if err != nil {
		return nil, nil, err
	}
	eng := netsim.NewEngine()
	fab := netsim.NewFabric(eng)
	ss := bgp.NewSessionSystemConfig(net, fab, bgp.DefaultSessionConfig())
	return net, &SessionWorld{eng: eng, fab: fab, ss: ss}, nil
}

// SessionWorld bundles one arm's engine, fabric and speakers.
type SessionWorld struct {
	eng *netsim.Engine
	fab *netsim.Fabric
	ss  *bgp.SessionSystem
}

func runSize(nAS int, seed int64) (sizeResult, error) {
	res := sizeResult{ASCount: nAS, OK: true}

	// --- cold start ---
	_, w, err := build(nAS, seed)
	if err != nil {
		return res, err
	}
	wallStart := time.Now()
	quiet, converged := w.ss.RunToConvergence(0)
	res.Cold = coldResult{
		QuiesceUS:  int64(quiet),
		Updates:    w.ss.TotalUpdates(),
		Keepalives: w.ss.TotalKeepalives(),
		WallNS:     time.Since(wallStart).Nanoseconds(),
	}
	est, _ := w.ss.SessionTransitions()
	res.Cold.Sessions = est
	if !converged {
		res.OK = false
	}

	// --- origination: per-AS time to first route ---
	net, w, err := build(nAS, seed)
	if err != nil {
		return res, err
	}
	if _, ok := w.ss.RunToConvergence(0); !ok {
		res.OK = false
	}
	a4, err := addr.Option1Address(0)
	if err != nil {
		return res, err
	}
	hp := addr.HostPrefix(a4)
	asns := net.ASNs()
	leaf := asns[len(asns)-1]
	firstRoute := map[topology.ASN]netsim.Time{}
	for _, asn := range asns {
		asn := asn
		w.ss.Speakers[asn].OnLocChange = func(p addr.Prefix, _ bgp.Route, have bool) {
			if p == hp && have {
				if _, seen := firstRoute[asn]; !seen {
					firstRoute[asn] = w.eng.Now()
				}
			}
		}
	}
	preUpdates := w.ss.TotalUpdates()
	t0 := w.eng.Now()
	w.ss.Speakers[leaf].Originate(hp)
	quiet, converged = w.ss.RunToConvergence(0)
	if !converged || len(firstRoute) != len(asns) {
		res.OK = false
	}
	var minT, maxT, sumT int64
	minT = int64(^uint64(0) >> 1)
	for _, at := range firstRoute {
		d := int64(at - t0)
		if d < minT {
			minT = d
		}
		if d > maxT {
			maxT = d
		}
		sumT += d
	}
	if len(firstRoute) == 0 {
		minT = 0
	}
	res.Origination = originationResult{
		FirstRouteMinUS:  minT,
		FirstRouteMaxUS:  maxT,
		FirstRouteMeanUS: float64(sumT) / float64(max(1, len(firstRoute))),
		QuiesceUS:        int64(quiet - t0),
		Updates:          w.ss.TotalUpdates() - preUpdates,
	}

	// --- withdrawal: black-hole windows ---
	// Reuse the origination world: add a second origin (the hub), let it
	// settle, then withdraw the leaf origin and watch every AS that was
	// homed on it until it stops forwarding toward the withdrawn origin.
	hub := asns[0]
	w.ss.Speakers[hub].Originate(hp)
	if _, ok := w.ss.RunToConvergence(0); !ok {
		res.OK = false
	}
	pointsAt := func(holder topology.ASN, r bgp.Route, have bool) bool {
		if !have {
			return false
		}
		if o := r.Origin(); o == leaf || (o == -1 && holder == leaf) {
			return true
		}
		return false
	}
	stale := map[topology.ASN]bool{}
	for _, asn := range asns {
		r, have := w.ss.Speakers[asn].Best(hp)
		if pointsAt(asn, r, have) {
			stale[asn] = true
		}
	}
	affected := len(stale)
	lastStale := map[topology.ASN]netsim.Time{}
	for _, asn := range asns {
		asn := asn
		w.ss.Speakers[asn].OnLocChange = func(p addr.Prefix, r bgp.Route, have bool) {
			if p != hp {
				return
			}
			now := w.eng.Now()
			if pointsAt(asn, r, have) {
				stale[asn] = true
			} else if stale[asn] {
				// Black-hole window closes (until path exploration
				// reopens it; the last closure wins).
				delete(stale, asn)
				lastStale[asn] = now
			}
		}
	}
	preUpdates = w.ss.TotalUpdates()
	preWithdrawals := w.ss.TotalWithdrawals()
	t0 = w.eng.Now()
	w.ss.Speakers[leaf].Withdraw(hp)
	quiet, converged = w.ss.RunToConvergence(0)
	if !converged {
		res.OK = false
	}
	var bhMax, bhSum int64
	for _, at := range lastStale {
		d := int64(at - t0)
		if d > bhMax {
			bhMax = d
		}
		bhSum += d
	}
	res.Withdrawal = withdrawalResult{
		AffectedAS:      affected,
		BlackHoleMaxUS:  bhMax,
		BlackHoleMeanUS: float64(bhSum) / float64(max(1, len(lastStale))),
		QuiesceUS:       int64(quiet - t0),
		Updates:         w.ss.TotalUpdates() - preUpdates,
		Withdrawals:     w.ss.TotalWithdrawals() - preWithdrawals,
		StaleAtQuiesce:  len(stale),
	}
	if len(stale) != 0 {
		// Somebody still forwards toward the withdrawn origin: a
		// permanent black hole. This is exactly what the session resync
		// machinery exists to prevent.
		res.OK = false
	}

	// --- flap: loss-recovery differential ---
	net, w, err = build(nAS, seed)
	if err != nil {
		return res, err
	}
	if _, ok := w.ss.RunToConvergence(0); !ok {
		res.OK = false
	}
	cfg := w.ss.Config()
	asns = net.ASNs()
	hubNbrs := net.Neighbors(asns[0])
	preUpdates = w.ss.TotalUpdates()
	t0 = w.eng.Now()
	a4b, aerr := addr.Option1Address(1)
	if aerr != nil {
		return res, aerr
	}
	flapPrefix := addr.HostPrefix(a4b)
	if len(hubNbrs) > 0 {
		// One short flap (sequence-gap resync) and one long flap
		// (hold-timer expiry) on two of the hub's links, with a
		// withdrawal-in-the-blind-window on the short one.
		short := hubNbrs[0].ASN
		w.eng.At(t0+10, func() { w.fab.FlapLink(int(asns[0]), int(short), cfg.Keepalive/2) })
		if len(hubNbrs) > 1 {
			long := hubNbrs[1].ASN
			w.eng.At(t0+10, func() { w.fab.FlapLink(int(asns[0]), int(long), 2*cfg.Hold) })
		}
		w.ss.Speakers[short].Originate(flapPrefix)
		w.eng.At(t0+20, func() { w.ss.Speakers[short].Withdraw(flapPrefix) })
	}
	w.eng.RunUntil(t0 + 8000 + 3*cfg.Hold)
	quiet, converged = w.ss.RunToConvergence(0)
	if !converged {
		res.OK = false
	}
	fix := bgp.NewSystem(net)
	fix.Converge()
	diffOK := true
	for _, holder := range asns {
		for _, origin := range asns {
			p := net.Domain(origin).Prefix
			fr, fok := fix.BestRoute(holder, p)
			sr, sok := w.ss.Speakers[holder].Best(p)
			if fok != sok || (fok && !bgp.RouteEqual(fr, sr)) {
				diffOK = false
			}
		}
		// The anycast prefix was withdrawn during the flap's blind
		// window; if resync failed, somebody still holds it.
		if _, have := w.ss.Speakers[holder].Best(flapPrefix); have {
			diffOK = false
		}
	}
	_, downs := w.ss.SessionTransitions()
	res.Flap = flapResult{
		ShortFlapResyncs: w.ss.TotalResyncs(),
		LongFlapDowns:    downs,
		Updates:          w.ss.TotalUpdates() - preUpdates,
		DifferentialOK:   diffOK,
		QuiesceUS:        int64(quiet - t0),
	}
	if !diffOK {
		res.OK = false
	}
	return res, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func main() {
	var (
		sizesFlag = flag.String("sizes", "10,20,40", "comma-separated internet sizes (AS counts)")
		seed      = flag.Int64("seed", 1, "topology seed")
		out       = flag.String("o", "BENCH_bgp.json", "output JSON path")
	)
	flag.Parse()

	var sizes []int
	for _, s := range strings.Split(*sizesFlag, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n < 3 {
			fmt.Fprintf(os.Stderr, "bgpbench: bad size %q\n", s)
			os.Exit(2)
		}
		sizes = append(sizes, n)
	}

	cfg := bgp.DefaultSessionConfig()
	rep := report{
		Scenario:    "barabasi-albert m=2, event-driven BGP sessions",
		Seed:        *seed,
		KeepaliveUS: int64(cfg.Keepalive),
		HoldUS:      int64(cfg.Hold),
		MRAIUS:      int64(cfg.MRAI),
		OK:          true,
	}
	for _, n := range sizes {
		sr, err := runSize(n, *seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bgpbench: size %d: %v\n", n, err)
			os.Exit(2)
		}
		rep.Sizes = append(rep.Sizes, sr)
		if !sr.OK {
			rep.OK = false
		}
		fmt.Printf("bgpbench %3d AS: cold %6dµs/%4d upd · first-route max %5dµs · black-hole max %5dµs (%d AS affected, %d stale) · flap diff ok=%v (resyncs=%d downs=%d)\n",
			n, sr.Cold.QuiesceUS, sr.Cold.Updates, sr.Origination.FirstRouteMaxUS,
			sr.Withdrawal.BlackHoleMaxUS, sr.Withdrawal.AffectedAS, sr.Withdrawal.StaleAtQuiesce,
			sr.Flap.DifferentialOK, sr.Flap.ShortFlapResyncs, sr.Flap.LongFlapDowns)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "bgpbench: %v\n", err)
		os.Exit(2)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "bgpbench: writing %s: %v\n", *out, err)
		os.Exit(2)
	}
	fmt.Printf("bgpbench: wrote %s\n", *out)
	if !rep.OK {
		fmt.Fprintln(os.Stderr, "bgpbench: FAILED — an arm did not quiesce, left a black hole, or diverged from the fixpoint")
		os.Exit(1)
	}
}
