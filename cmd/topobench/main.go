// Command topobench measures routing-plane cost at internet scale: for
// each requested domain count it generates a transit–stub internet,
// builds the first routing epoch over a deployed anycast group, flaps an
// intra link to time scoped rebuilds, verifies the sharded bone build is
// byte-identical at several worker counts, runs a short chaos schedule
// with the cheap invariants, and reports everything — generation wall
// time, first-epoch latency, heap bytes per AS, scoped-rebuild ns/event —
// as JSON. CI runs it at 10k domains and archives the artifact so
// scale regressions show up as a number, not a feeling.
//
// Usage:
//
//	go run ./cmd/topobench -sizes 1000,10000 -o BENCH_topology.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"github.com/evolvable-net/evolve/internal/anycast"
	"github.com/evolvable-net/evolve/internal/chaos"
	"github.com/evolvable-net/evolve/internal/core"
	"github.com/evolvable-net/evolve/internal/topology"
	"github.com/evolvable-net/evolve/internal/vnbone"
)

// sizeResult is the measurement at one domain count.
type sizeResult struct {
	Domains          int     `json:"domains"`
	Routers          int     `json:"routers"`
	GenWallNS        int64   `json:"gen_wall_ns"`
	HeapBytes        uint64  `json:"heap_bytes"`
	BytesPerAS       float64 `json:"bytes_per_as"`
	FirstEpochNS     int64   `json:"first_epoch_ns"`
	Flaps            int     `json:"flaps"`
	RebuildNSPerFlap float64 `json:"rebuild_ns_per_flap"`
	ShardWorkers     []int   `json:"shard_workers"`
	ShardIdentical   bool    `json:"shard_identical"`
	ChaosSteps       int     `json:"chaos_steps"`
	ChaosChecks      int     `json:"chaos_checks"`
	ChaosViolated    bool    `json:"chaos_violated"`
	SendsOK          int     `json:"sends_ok"`
	SendsErr         int     `json:"sends_failed"`
}

// report is the BENCH_topology.json schema.
type report struct {
	Scenario string       `json:"scenario"`
	Seed     int64        `json:"seed"`
	MaxProcs int          `json:"maxprocs"`
	Sizes    []sizeResult `json:"sizes"`
}

// transitStubShape splits n domains into a transit core and stubs the
// way the 10k CI smoke does: one transit domain per ~100 total.
func transitStubShape(n int) (nTransit, stubsPer int) {
	nTransit = n / 100
	if nTransit < 2 {
		nTransit = 2
	}
	return nTransit, n/nTransit - 1
}

func generate(n int, seed int64) (*topology.Network, error) {
	t, s := transitStubShape(n)
	return topology.TransitStub(t, s, 0.3, topology.GenConfig{
		Seed:             seed,
		RoutersPerDomain: 2,
		HostsPerDomain:   1,
	})
}

// deployCount keeps the anycast group small and fixed so the epoch cost
// being measured is the routing plane, not the group size.
const deployCount = 8

func buildWorld(net *topology.Network, workers int) (*core.Evolution, error) {
	evo, err := core.New(net, core.Config{
		Option: anycast.Option1,
		Bone:   vnbone.Config{Workers: workers},
	})
	if err != nil {
		return nil, err
	}
	for _, asn := range net.ASNs()[:deployCount] {
		evo.DeployDomain(asn, 0)
	}
	if err := evo.Ready(); err != nil {
		return nil, err
	}
	return evo, nil
}

// flapLink picks one intra link of the last deployed domain.
func flapLink(net *topology.Network) (topology.RouterID, topology.RouterID, int64, error) {
	asn := net.ASNs()[deployCount-1]
	for _, r := range net.Domain(asn).Routers {
		for _, e := range net.Intra.Neighbors(int(r)) {
			return r, topology.RouterID(e.To), e.Weight, nil
		}
	}
	return 0, 0, 0, fmt.Errorf("AS%d has no intra link to flap", asn)
}

func sameBoneLinks(a, b []vnbone.Link) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func heapBytes() uint64 {
	runtime.GC()
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	return m.HeapAlloc
}

func runSize(n int, seed int64, flaps, chaosSteps int) (sizeResult, error) {
	res := sizeResult{Domains: n, Flaps: flaps, ChaosSteps: chaosSteps}
	base := heapBytes()

	start := time.Now()
	net, err := generate(n, seed)
	if err != nil {
		return res, err
	}
	res.GenWallNS = time.Since(start).Nanoseconds()
	res.Routers = len(net.Routers)

	start = time.Now()
	evo, err := buildWorld(net, runtime.GOMAXPROCS(0))
	if err != nil {
		return res, err
	}
	res.FirstEpochNS = time.Since(start).Nanoseconds()

	if after := heapBytes(); after > base {
		res.HeapBytes = after - base
		res.BytesPerAS = float64(res.HeapBytes) / float64(n)
	}

	// Sharded-rebuild identity: the bone must be byte-identical at any
	// worker count.
	res.ShardWorkers = []int{1, 4, 16}
	res.ShardIdentical = true
	ref, err := evo.Bone()
	if err != nil {
		return res, err
	}
	for _, w := range res.ShardWorkers {
		other, err := buildWorld(net, w)
		if err != nil {
			return res, err
		}
		ob, err := other.Bone()
		if err != nil {
			return res, err
		}
		if !sameBoneLinks(ref.Links(), ob.Links()) {
			res.ShardIdentical = false
		}
	}

	// Scoped rebuild latency: flap one deployed-domain intra link.
	ra, rb, lat, err := flapLink(net)
	if err != nil {
		return res, err
	}
	start = time.Now()
	for i := 0; i < flaps; i++ {
		evo.FailIntraLink(ra, rb)
		evo.RestoreIntraLink(ra, rb, lat)
	}
	// Each flap is two events (fail + restore).
	res.RebuildNSPerFlap = float64(time.Since(start).Nanoseconds()) / float64(2*flaps)

	// Sampled deliveries across the intact internet.
	payload := []byte("topobench")
	stride := len(net.Hosts)/16 + 1
	for i := 0; i < len(net.Hosts); i += stride {
		dst := net.Hosts[(i+stride)%len(net.Hosts)]
		if _, err := evo.Send(net.Hosts[i], dst, payload); err != nil {
			res.SendsErr++
		} else {
			res.SendsOK++
		}
	}

	// Short chaos schedule with the cheap invariants (the full oracle
	// sweep is quadratic in hosts and belongs to the small-scale suite).
	rep, err := chaos.Run(chaos.Scenario{
		Name: fmt.Sprintf("topobench-%d", n),
		Build: func() (*topology.Network, *core.Evolution, error) {
			cn, err := generate(n, seed)
			if err != nil {
				return nil, nil, err
			}
			ce, err := buildWorld(cn, runtime.GOMAXPROCS(0))
			return cn, ce, err
		},
	}, seed+1, chaosSteps, chaos.Options{Invariants: []string{"conserve", "epochtick"}})
	if err != nil {
		return res, err
	}
	res.ChaosChecks = rep.Checks
	res.ChaosViolated = rep.Violation != nil
	return res, nil
}

func main() {
	var (
		sizes      = flag.String("sizes", "1000,10000", "comma-separated domain counts")
		flaps      = flag.Int("flaps", 50, "fail+restore cycles for the scoped-rebuild timing")
		chaosSteps = flag.Int("chaos-steps", 40, "events in the chaos schedule (0 to skip)")
		seed       = flag.Int64("seed", 7, "topology seed")
		out        = flag.String("o", "BENCH_topology.json", "output JSON path")
	)
	flag.Parse()

	r := report{Scenario: "transit-stub", Seed: *seed, MaxProcs: runtime.GOMAXPROCS(0)}
	for _, tok := range strings.Split(*sizes, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil || n < deployCount {
			fmt.Fprintf(os.Stderr, "topobench: bad size %q\n", tok)
			os.Exit(1)
		}
		sr, err := runSize(n, *seed, *flaps, *chaosSteps)
		if err != nil {
			fmt.Fprintln(os.Stderr, "topobench:", err)
			os.Exit(1)
		}
		if sr.ChaosViolated {
			fmt.Fprintf(os.Stderr, "topobench: chaos invariant violated at %d domains\n", n)
			os.Exit(1)
		}
		if !sr.ShardIdentical {
			fmt.Fprintf(os.Stderr, "topobench: sharded bone differs across worker counts at %d domains\n", n)
			os.Exit(1)
		}
		if sr.SendsErr > 0 {
			fmt.Fprintf(os.Stderr, "topobench: %d sampled deliveries failed at %d domains\n", sr.SendsErr, n)
			os.Exit(1)
		}
		r.Sizes = append(r.Sizes, sr)
		fmt.Printf("topobench: %d domains (%d routers): gen %.0fms, first epoch %.0fms, %.0f B/AS, rebuild %.0f µs/event, shards identical, chaos %d checks clean\n",
			sr.Domains, sr.Routers, float64(sr.GenWallNS)/1e6, float64(sr.FirstEpochNS)/1e6,
			sr.BytesPerAS, sr.RebuildNSPerFlap/1e3, sr.ChaosChecks)
	}

	buf, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "topobench:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "topobench:", err)
		os.Exit(1)
	}
	fmt.Println("topobench: wrote", *out)
}
