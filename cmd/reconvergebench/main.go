// Command reconvergebench measures reconvergence cost under link churn:
// it flaps one intra-domain link of a deployed stub domain N times on
// two identical transit–stub internets — one with scoped (per-domain)
// invalidation, one with the dump-everything FullReconverge baseline —
// and reports wall time, Dijkstra recomputations and delivery agreement
// as JSON. CI runs it and archives the artifact so scoped-reconvergence
// regressions show up as a number, not a feeling.
//
// Usage:
//
//	go run ./cmd/reconvergebench -flaps 200 -o BENCH_reconverge.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/evolvable-net/evolve/internal/anycast"
	"github.com/evolvable-net/evolve/internal/core"
	"github.com/evolvable-net/evolve/internal/topology"
)

// modeResult is one arm's measurement.
type modeResult struct {
	Mode         string  `json:"mode"`
	Flaps        int     `json:"flaps"`
	Sends        int     `json:"sends"`
	WallNS       int64   `json:"wall_ns"`
	NSPerFlap    float64 `json:"ns_per_flap"`
	Dijkstras    uint64  `json:"dijkstras"`
	DijPerFlap   float64 `json:"dijkstras_per_flap"`
	BoneReused   uint64  `json:"bone_domains_reused"`
	BoneRebuilt  uint64  `json:"bone_domains_rebuilt"`
	EpochsPub    uint64  `json:"epochs_published"`
	DeliveredOK  int     `json:"deliveries_ok"`
	DeliveredErr int     `json:"deliveries_failed"`
}

// report is the BENCH_reconverge.json schema.
type report struct {
	Scenario        string     `json:"scenario"`
	TopoSeed        int64      `json:"topo_seed"`
	Scoped          modeResult `json:"scoped"`
	Full            modeResult `json:"full"`
	WallSpeedup     float64    `json:"wall_speedup"`
	DijkstraSavings float64    `json:"dijkstra_savings"`
}

func buildWorld(seed int64, full bool) (*topology.Network, *core.Evolution, error) {
	net, err := topology.TransitStub(3, 4, 0.4, topology.GenConfig{
		Seed:             seed,
		RoutersPerDomain: 3,
		HostsPerDomain:   2,
	})
	if err != nil {
		return nil, nil, err
	}
	evo, err := core.New(net, core.Config{Option: anycast.Option1, FullReconverge: full})
	if err != nil {
		return nil, nil, err
	}
	for _, asn := range net.ASNs()[:7] {
		evo.DeployDomain(asn, 0)
	}
	return net, evo, nil
}

// flapLink picks one intra link of the last deployed (stub) domain.
func flapLink(net *topology.Network) (topology.RouterID, topology.RouterID, int64, error) {
	asn := net.ASNs()[6]
	for _, r := range net.Domain(asn).Routers {
		for _, e := range net.Intra.Neighbors(int(r)) {
			if net.DomainOf(topology.RouterID(e.To)) == asn {
				return r, topology.RouterID(e.To), e.Weight, nil
			}
		}
	}
	return 0, 0, 0, fmt.Errorf("AS%d has no intra link to flap", asn)
}

func runMode(name string, seed int64, full bool, flaps, sendsPerFlap int) (modeResult, error) {
	net, evo, err := buildWorld(seed, full)
	if err != nil {
		return modeResult{}, err
	}
	ra, rb, lat, err := flapLink(net)
	if err != nil {
		return modeResult{}, err
	}
	payload := []byte("reconverge-bench")
	if _, err := evo.Send(net.Hosts[0], net.Hosts[1], payload); err != nil {
		return modeResult{}, fmt.Errorf("warm-up send: %w", err)
	}
	before := evo.Snapshot()
	dijBefore := evo.IGP.DijkstraRuns()
	res := modeResult{Mode: name, Flaps: flaps, Sends: flaps * sendsPerFlap}
	start := time.Now()
	for i := 0; i < flaps; i++ {
		evo.FailIntraLink(ra, rb)
		evo.RestoreIntraLink(ra, rb, lat)
		for j := 0; j < sendsPerFlap; j++ {
			src := net.Hosts[(i+j)%len(net.Hosts)]
			dst := net.Hosts[(i+j+1)%len(net.Hosts)]
			if _, err := evo.Send(src, dst, payload); err != nil {
				res.DeliveredErr++
			} else {
				res.DeliveredOK++
			}
		}
	}
	res.WallNS = time.Since(start).Nanoseconds()
	res.NSPerFlap = float64(res.WallNS) / float64(flaps)
	res.Dijkstras = evo.IGP.DijkstraRuns() - dijBefore
	res.DijPerFlap = float64(res.Dijkstras) / float64(flaps)
	d := evo.Snapshot().Sub(before)
	res.BoneReused = d.BoneDomainsReused
	res.BoneRebuilt = d.BoneDomainsRebuilt
	res.EpochsPub = d.Epochs
	return res, nil
}

func main() {
	var (
		flaps    = flag.Int("flaps", 200, "number of fail+restore cycles per mode")
		sends    = flag.Int("sends", 8, "deliveries after each flap")
		topoSeed = flag.Int64("topo-seed", 42, "seed for the transit-stub topology")
		out      = flag.String("o", "BENCH_reconverge.json", "output JSON path")
	)
	flag.Parse()

	scoped, err := runMode("scoped", *topoSeed, false, *flaps, *sends)
	if err != nil {
		fmt.Fprintln(os.Stderr, "reconvergebench:", err)
		os.Exit(1)
	}
	full, err := runMode("full", *topoSeed, true, *flaps, *sends)
	if err != nil {
		fmt.Fprintln(os.Stderr, "reconvergebench:", err)
		os.Exit(1)
	}
	r := report{
		Scenario: "transit-stub-15",
		TopoSeed: *topoSeed,
		Scoped:   scoped,
		Full:     full,
	}
	if scoped.WallNS > 0 {
		r.WallSpeedup = float64(full.WallNS) / float64(scoped.WallNS)
	}
	if scoped.Dijkstras > 0 {
		r.DijkstraSavings = float64(full.Dijkstras) / float64(scoped.Dijkstras)
	}
	buf, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "reconvergebench:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "reconvergebench:", err)
		os.Exit(1)
	}
	fmt.Printf("reconvergebench: %d flaps × 2 modes: scoped %.0f ns/flap (%.1f dijkstras), full %.0f ns/flap (%.1f dijkstras) — %.1f× wall, %.1f× dijkstra savings → %s\n",
		*flaps, scoped.NSPerFlap, scoped.DijPerFlap, full.NSPerFlap, full.DijPerFlap, r.WallSpeedup, r.DijkstraSavings, *out)
}
