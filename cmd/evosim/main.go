// Command evosim simulates a gradual IPvN rollout over a synthetic
// internet and reports, after each adoption step, the metrics the paper's
// argument rests on: delivery success (universal access), redirection and
// end-to-end stretch, per-ISP ingress traffic share (the revenue signal of
// assumption A4), and vN-Bone shape.
//
// Usage:
//
//	evosim [-topology transit-stub|ring|waxman|ba] [-seed N]
//	       [-transits N] [-stubs N] [-domains N]
//	       [-option 1|2] [-egress exit-early|path-informed|proxy-informed]
//	       [-steps N] [-pairs N] [-workers N]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"text/tabwriter"

	"github.com/evolvable-net/evolve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("evosim: ")

	topo := flag.String("topology", "transit-stub", "topology generator: transit-stub, ring, waxman, ba")
	seed := flag.Int64("seed", 42, "generator seed")
	transits := flag.Int("transits", 3, "transit domains (transit-stub)")
	stubs := flag.Int("stubs", 4, "stubs per transit (transit-stub)")
	domains := flag.Int("domains", 12, "domain count (ring/waxman/ba)")
	option := flag.Int("option", 2, "anycast deployment option (1, 2, or 3 for GIA)")
	egress := flag.String("egress", "path-informed", "egress policy: exit-early, path-informed, proxy-informed")
	steps := flag.Int("steps", 4, "adoption steps to simulate")
	pairs := flag.Int("pairs", 500, "max host pairs per measurement (0 = all)")
	workers := flag.Int("workers", 0, "goroutines for the pair sweep (0 = GOMAXPROCS)")
	failLinks := flag.Bool("fail", false, "after full adoption, fail an inter-domain link and re-measure")
	catchment := flag.Bool("catchment", false, "print each participant's anycast catchment after every step")
	flag.Parse()
	if *workers <= 0 {
		*workers = runtime.GOMAXPROCS(0)
	}

	cfg := evolve.GenConfig{Seed: *seed, RoutersPerDomain: 3, HostsPerDomain: 2}
	var (
		net *evolve.Network
		err error
	)
	switch *topo {
	case "transit-stub":
		net, err = evolve.TransitStub(*transits, *stubs, 0.4, cfg)
	case "ring":
		net, err = evolve.RingOfDomains(*domains, cfg)
	case "waxman":
		net, err = evolve.Waxman(*domains, 0.6, 0.4, cfg)
	case "ba":
		net, err = evolve.BarabasiAlbert(*domains, 2, cfg)
	default:
		log.Fatalf("unknown topology %q", *topo)
	}
	if err != nil {
		log.Fatal(err)
	}

	var pol evolve.EgressPolicy
	switch *egress {
	case "exit-early":
		pol = evolve.ExitEarly
	case "path-informed":
		pol = evolve.PathInformed
	case "proxy-informed":
		pol = evolve.ProxyInformed
	default:
		log.Fatalf("unknown egress policy %q", *egress)
	}
	opt := evolve.Option2
	switch *option {
	case 1:
		opt = evolve.Option1
	case 2:
	case 3:
		opt = evolve.OptionGIA
	default:
		log.Fatalf("unknown anycast option %d", *option)
	}

	evo, err := evolve.New(net, evolve.Config{
		Option:    opt,
		DefaultAS: net.ASNs()[0],
		Egress:    pol,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("internet: %d ISPs, %d routers, %d hosts (%s, seed %d)\n",
		len(net.ASNs()), len(net.Routers), len(net.Hosts), *topo, *seed)
	fmt.Printf("deployment: option %d anycast %s, egress %s\n\n", *option, evo.AnycastAddr(), *egress)

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "step\tdeployed ISPs\tsuccess\tmean stretch\tp95 stretch\tbone links\ttop ingress share")
	asns := net.ASNs()
	perStep := (len(asns) + *steps - 1) / *steps
	deployed := 0
	for s := 1; s <= *steps; s++ {
		for i := 0; i < perStep && deployed < len(asns); i++ {
			evo.DeployDomain(asns[deployed], 0)
			deployed++
		}
		sample, failures, err := evo.StretchSampleParallel(*pairs, *workers)
		if err != nil {
			log.Fatal(err)
		}
		success := float64(len(sample)) / float64(len(sample)+failures) * 100
		stats := evolve.Summarize(sample)
		bone, err := evo.Bone()
		if err != nil {
			log.Fatal(err)
		}
		share, err := evo.IngressShare()
		if err != nil {
			log.Fatal(err)
		}
		// Break share ties by name so the report is deterministic (map
		// iteration order would otherwise pick an arbitrary winner).
		topName, topShare := "-", 0.0
		for asn, f := range share {
			name := net.Domain(asn).Name
			if f > topShare || (f == topShare && topName != "-" && name < topName) {
				topShare = f
				topName = name
			}
		}
		fmt.Fprintf(w, "%d\t%d/%d\t%.1f%%\t%.3f\t%.3f\t%d\t%s %.0f%%\n",
			s, deployed, len(asns), success, stats.Mean, stats.P95,
			len(bone.Links()), topName, topShare*100)
		if *catchment {
			w.Flush()
			c := evo.Anycast.Catchment(evo.Dep)
			for _, p := range evo.Dep.ParticipatingASes() {
				srcs := c[p]
				names := ""
				for i, a := range srcs {
					if i > 0 {
						names += ","
					}
					names += net.Domain(a).Name
				}
				fmt.Printf("    %s captures %d domains: %s\n", net.Domain(p).Name, len(srcs), names)
			}
		}
	}
	w.Flush()

	if *failLinks {
		l := net.Inter[0]
		a, b := net.Router(l.From), net.Router(l.To)
		fmt.Printf("\nfailing inter-domain link %s(%s) — %s(%s)\n",
			a.Name, net.Domain(a.Domain).Name, b.Name, net.Domain(b.Domain).Name)
		if _, ok := evo.FailInterLink(l.From, l.To); !ok {
			log.Fatal("link not found")
		}
		sample, failures, err := evo.StretchSampleParallel(*pairs, *workers)
		if err != nil {
			log.Fatalf("after failure: %v (the bone may be policy-partitioned)", err)
		}
		success := float64(len(sample)) / float64(len(sample)+failures) * 100
		stats := evolve.Summarize(sample)
		fmt.Printf("after failure: success %.1f%%, mean stretch %.3f, p95 %.3f — no endhost did anything\n",
			success, stats.Mean, stats.P95)
	}
}
