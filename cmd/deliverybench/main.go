// Command deliverybench measures the delivery plane's send throughput at
// fleet scale: it builds a transit–stub internet carrying the requested
// endhost fleet (every host registered, so the BGPvN tables carry one
// /128 per fleet member), then drives concurrent senders over a fixed
// flow working set — once against the unsharded, uncached,
// single-stripe baseline delivery plane, and once per requested shard
// count with the flow cache and striped counters on. It reports
// sends/sec, ns/op and allocs/op per arm plus the sharded-over-baseline
// speedup as JSON. CI runs it at a small fleet size and archives the
// artifact so delivery-plane regressions show up as a number, not a
// feeling.
//
// Usage:
//
//	go run ./cmd/deliverybench -hosts 50000 -senders 64 -shards 1,4,16 -o BENCH_delivery.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/evolvable-net/evolve/internal/anycast"
	"github.com/evolvable-net/evolve/internal/core"
	"github.com/evolvable-net/evolve/internal/topology"
)

// armResult is one delivery-plane configuration's measurement.
type armResult struct {
	Arm         string  `json:"arm"`
	Shards      int     `json:"shards"`
	FlowCache   bool    `json:"flow_cache"`
	Stripes     int     `json:"counter_stripes"`
	Sends       uint64  `json:"sends"`
	WallNS      int64   `json:"wall_ns"`
	NSPerOp     float64 `json:"ns_per_op"`
	SendsPerSec float64 `json:"sends_per_sec"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	FlowHits    uint64  `json:"flow_hits"`
	FlowMisses  uint64  `json:"flow_misses"`
	Speedup     float64 `json:"speedup_vs_baseline"`
}

// batchPoint is one core count's batch-versus-loop measurement: the same
// packet volume driven once as singleton Sends and once as SendBurst
// batches, at GOMAXPROCS=Cores.
type batchPoint struct {
	Cores              int     `json:"cores"`
	Burst              int     `json:"burst"`
	LoopNSPerPacket    float64 `json:"loop_ns_per_packet"`
	LoopPacketsPerSec  float64 `json:"loop_packets_per_sec"`
	BatchNSPerPacket   float64 `json:"batch_ns_per_packet"`
	BatchPacketsPerSec float64 `json:"batch_packets_per_sec"`
	BatchFlows         uint64  `json:"batch_flows"`
	BatchPackets       uint64  `json:"batch_packets"`
	Speedup            float64 `json:"batch_over_loop"`
}

// report is the BENCH_delivery.json schema.
type report struct {
	Scenario    string      `json:"scenario"`
	TopoSeed    int64       `json:"topo_seed"`
	Hosts       int         `json:"hosts"`
	Domains     int         `json:"domains"`
	Senders     int         `json:"senders"`
	Flows       int         `json:"flows"`
	PayloadB    int         `json:"payload_bytes"`
	MaxProcs    int         `json:"maxprocs"`
	Baseline    armResult   `json:"baseline"`
	Sharded     []armResult `json:"sharded"`
	BestSpeedup float64     `json:"best_speedup"`
	// BatchScaling is the -batch sweep: one batch-versus-loop point per
	// measured GOMAXPROCS value, ascending.
	BatchScaling     []batchPoint `json:"batch_scaling,omitempty"`
	BatchBestSpeedup float64      `json:"batch_best_speedup,omitempty"`
}

// buildWorld generates the fleet internet (about hosts endhosts, 50 per
// stub domain), deploys the transit core and registers every host.
func buildWorld(seed int64, hosts int, cfg core.Config) (*topology.Network, *core.Evolution, int, error) {
	const hostsPer = 50
	domains := hosts / hostsPer
	if domains < 4 {
		domains = 4
	}
	nTransit := domains / 100
	if nTransit < 2 {
		nTransit = 2
	}
	net, err := topology.TransitStub(nTransit, domains/nTransit-1, 0.3, topology.GenConfig{
		Seed: seed, RoutersPerDomain: 2, HostsPerDomain: hostsPer,
	})
	if err != nil {
		return nil, nil, 0, err
	}
	cfg.Option = anycast.Option2
	cfg.DefaultAS = net.DomainByName("T0").ASN
	evo, err := core.New(net, cfg)
	if err != nil {
		return nil, nil, 0, err
	}
	for i := 0; i < nTransit; i++ {
		evo.DeployDomain(net.DomainByName("T"+strconv.Itoa(i)).ASN, 0)
	}
	if err := evo.RegisterEndhosts(net.Hosts); err != nil {
		return nil, nil, 0, err
	}
	return net, evo, len(net.ASNs()), nil
}

type pair struct{ src, dst *topology.Host }

// workingSet picks a fixed flow list spanning the whole fleet.
func workingSet(net *topology.Network, flows int) []pair {
	pairs := make([]pair, flows)
	stride := len(net.Hosts)/flows + 1
	for i := range pairs {
		pairs[i] = pair{
			src: net.Hosts[(i*stride)%len(net.Hosts)],
			dst: net.Hosts[(i*stride+len(net.Hosts)/2)%len(net.Hosts)],
		}
	}
	return pairs
}

// run drives senders concurrent goroutines over the working set for the
// requested send count and reports the arm's numbers.
func run(evo *core.Evolution, pairs []pair, senders int, sends uint64, payload []byte) (armResult, error) {
	var res armResult
	for _, p := range pairs { // warm every flow once, outside the clock
		if _, err := evo.Send(p.src, p.dst, payload); err != nil {
			return res, err
		}
	}
	before := evo.Snapshot()
	var memBefore, memAfter runtime.MemStats
	runtime.ReadMemStats(&memBefore)

	var next atomic.Uint64
	var firstErr atomic.Value
	var wg sync.WaitGroup
	start := time.Now()
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				n := next.Add(1)
				if n > sends {
					return
				}
				p := pairs[n%uint64(len(pairs))]
				if _, err := evo.Send(p.src, p.dst, payload); err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)
	if err, ok := firstErr.Load().(error); ok {
		return res, err
	}
	runtime.ReadMemStats(&memAfter)
	after := evo.Snapshot()

	res.Sends = sends
	res.WallNS = wall.Nanoseconds()
	res.NSPerOp = float64(wall.Nanoseconds()) / float64(sends)
	res.SendsPerSec = float64(sends) / wall.Seconds()
	res.AllocsPerOp = float64(memAfter.Mallocs-memBefore.Mallocs) / float64(sends)
	res.BytesPerOp = float64(memAfter.TotalAlloc-memBefore.TotalAlloc) / float64(sends)
	res.FlowHits = after.DeliveryFlowHits - before.DeliveryFlowHits
	res.FlowMisses = after.DeliveryFlowMisses - before.DeliveryFlowMisses
	return res, nil
}

// runBursts drives senders goroutines over the working set until
// `packets` packets have been sent, `burst` per work unit against one
// flow — either as one SendBurst per unit (batched) or as `burst`
// singleton Sends (the loop arm). Returns the wall time of the run.
func runBursts(evo *core.Evolution, pairs []pair, senders int, packets uint64, payload []byte, burst int, batched bool) (time.Duration, error) {
	bursts := packets / uint64(burst)
	if bursts == 0 {
		bursts = 1
	}
	payloads := make([][]byte, burst)
	for i := range payloads {
		payloads[i] = payload
	}
	var next atomic.Uint64
	var firstErr atomic.Value
	var wg sync.WaitGroup
	start := time.Now()
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out := make([]core.Delivery, 0, burst)
			for {
				n := next.Add(1)
				if n > bursts {
					return
				}
				p := pairs[n%uint64(len(pairs))]
				if batched {
					var err error
					if out, err = evo.AppendSendBurst(out[:0], p.src, p.dst, payloads); err != nil {
						firstErr.CompareAndSwap(nil, err)
						return
					}
					continue
				}
				for j := 0; j < burst; j++ {
					if _, err := evo.Send(p.src, p.dst, payload); err != nil {
						firstErr.CompareAndSwap(nil, err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)
	if err, ok := firstErr.Load().(error); ok {
		return wall, err
	}
	return wall, nil
}

// batchSweep runs the batch-versus-loop comparison at each GOMAXPROCS
// value of the core ladder and reports one point per measured count.
// Core counts beyond the machine are clamped to the largest available.
func batchSweep(evo *core.Evolution, pairs []pair, senders int, sends uint64, payload []byte, burst int, cores []int) ([]batchPoint, error) {
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	for _, p := range pairs { // warm every flow once, outside the clock
		if _, err := evo.Send(p.src, p.dst, payload); err != nil {
			return nil, err
		}
	}
	var points []batchPoint
	seen := map[int]bool{}
	for _, c := range cores {
		if c < 1 {
			continue
		}
		if c > runtime.NumCPU() {
			c = runtime.NumCPU()
		}
		if seen[c] {
			continue
		}
		seen[c] = true
		runtime.GOMAXPROCS(c)

		loopWall, err := runBursts(evo, pairs, senders, sends, payload, burst, false)
		if err != nil {
			return nil, err
		}
		before := evo.Snapshot()
		batchWall, err := runBursts(evo, pairs, senders, sends, payload, burst, true)
		if err != nil {
			return nil, err
		}
		after := evo.Snapshot()

		bursts := sends / uint64(burst)
		if bursts == 0 {
			bursts = 1
		}
		packets := float64(bursts) * float64(burst)
		pt := batchPoint{
			Cores:              c,
			Burst:              burst,
			LoopNSPerPacket:    float64(loopWall.Nanoseconds()) / packets,
			LoopPacketsPerSec:  packets / loopWall.Seconds(),
			BatchNSPerPacket:   float64(batchWall.Nanoseconds()) / packets,
			BatchPacketsPerSec: packets / batchWall.Seconds(),
			BatchFlows:         after.DeliveryBatchFlows - before.DeliveryBatchFlows,
			BatchPackets:       after.DeliveryBatchPackets - before.DeliveryBatchPackets,
		}
		pt.Speedup = pt.BatchPacketsPerSec / pt.LoopPacketsPerSec
		points = append(points, pt)
	}
	return points, nil
}

func main() {
	hosts := flag.Int("hosts", 50000, "endhost fleet size")
	senders := flag.Int("senders", 64, "concurrent sender goroutines")
	sends := flag.Uint64("sends", 200000, "sends per arm")
	flows := flag.Int("flows", 1024, "distinct flows in the working set")
	payloadB := flag.Int("payload", 256, "payload bytes per send")
	shardList := flag.String("shards", "1,4,16", "delivery shard counts to sweep")
	seed := flag.Int64("seed", 42, "topology seed")
	out := flag.String("o", "BENCH_delivery.json", "output JSON path")
	batch := flag.Bool("batch", false, "also sweep SendBurst batches vs the Send loop across -cores")
	coreList := flag.String("cores", "1,2,4,8,16,32,64", "GOMAXPROCS ladder for the -batch sweep (clamped to the machine)")
	burst := flag.Int("burst", 64, "packets per batch in the -batch sweep")
	flag.Parse()

	rep := report{
		Scenario: "fleet-send",
		TopoSeed: *seed,
		Hosts:    *hosts,
		Senders:  *senders,
		Flows:    *flows,
		PayloadB: *payloadB,
		MaxProcs: runtime.GOMAXPROCS(0),
	}
	payload := make([]byte, *payloadB)

	// Baseline: one shard, no flow cache, one counter stripe — the
	// pre-sharding delivery plane.
	net, evo, domains, err := buildWorld(*seed, *hosts, core.Config{DeliveryShards: 1, DisableDeliveryCache: true})
	if err != nil {
		fatal(err)
	}
	rep.Domains = domains
	evo.Counters().SetStripes(1)
	pairs := workingSet(net, *flows)
	base, err := run(evo, pairs, *senders, *sends, payload)
	if err != nil {
		fatal(err)
	}
	base.Arm, base.Shards, base.FlowCache, base.Stripes, base.Speedup = "baseline", 1, false, 1, 1
	rep.Baseline = base

	for _, s := range strings.Split(*shardList, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			fatal(fmt.Errorf("bad -shards entry %q: %w", s, err))
		}
		armNet, evo, _, err := buildWorld(*seed, *hosts, core.Config{DeliveryShards: n})
		if err != nil {
			fatal(err)
		}
		// Same seed, fresh network: rebuild the working set against this
		// arm's own host objects.
		arm, err := run(evo, workingSet(armNet, *flows), *senders, *sends, payload)
		if err != nil {
			fatal(err)
		}
		arm.Arm = "shards=" + strconv.Itoa(n)
		arm.Shards = n
		arm.FlowCache = true
		arm.Stripes = evo.Counters().Stripes()
		arm.Speedup = base.NSPerOp / arm.NSPerOp
		rep.Sharded = append(rep.Sharded, arm)
		if arm.Speedup > rep.BestSpeedup {
			rep.BestSpeedup = arm.Speedup
		}
	}

	// The batch sweep: same fleet, default delivery plane, the packet
	// volume driven as singleton Sends and as SendBurst batches at each
	// core count of the ladder. A batch arm slower than its loop arm is a
	// regression and fails the run (after the report is written).
	regressed := false
	if *batch {
		batchNet, bevo, _, err := buildWorld(*seed, *hosts, core.Config{})
		if err != nil {
			fatal(err)
		}
		var cores []int
		for _, s := range strings.Split(*coreList, ",") {
			c, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil {
				fatal(fmt.Errorf("bad -cores entry %q: %w", s, err))
			}
			cores = append(cores, c)
		}
		points, err := batchSweep(bevo, workingSet(batchNet, *flows), *senders, *sends, payload, *burst, cores)
		if err != nil {
			fatal(err)
		}
		rep.BatchScaling = points
		for _, pt := range points {
			if pt.Speedup > rep.BatchBestSpeedup {
				rep.BatchBestSpeedup = pt.Speedup
			}
			if pt.Speedup < 1 {
				regressed = true
			}
		}
	}

	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("deliverybench: %d hosts, %d senders: baseline %.0f sends/sec; best sharded %.0f sends/sec (%.1fx); wrote %s\n",
		rep.Hosts, rep.Senders, rep.Baseline.SendsPerSec,
		rep.Baseline.SendsPerSec*rep.BestSpeedup, rep.BestSpeedup, *out)
	for _, pt := range rep.BatchScaling {
		fmt.Printf("deliverybench: batch sweep @%d cores: loop %.0f pkts/sec, batch %.0f pkts/sec (%.2fx)\n",
			pt.Cores, pt.LoopPacketsPerSec, pt.BatchPacketsPerSec, pt.Speedup)
	}
	if regressed {
		fatal(fmt.Errorf("batch throughput regressed below the Send loop (see %s)", *out))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "deliverybench:", err)
	os.Exit(1)
}
