// Command doclint enforces the repository's documentation floor: every
// Go package under the given roots must carry a package-level doc
// comment on at least one of its non-test files, and packages named with
// -exported must additionally document every exported top-level
// identifier (functions, methods on exported types, and each exported
// type, const and var spec). CI runs it as
//
//	go run ./cmd/doclint -exported internal/core,internal/trace,internal/redirect internal cmd .
//
// and fails the build listing each violation. Package comments are the
// map from code to the paper (each internal package states which section
// it implements), and the -exported packages are the simulator's API
// surface — an undocumented identifier there is treated as a build
// break, not a style nit.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
)

func main() {
	exported := flag.String("exported", "", "comma-separated package dirs whose exported identifiers must all carry doc comments")
	flag.Parse()
	roots := flag.Args()
	if len(roots) == 0 {
		roots = []string{"internal", "cmd", "."}
	}
	var violations []string
	seen := map[string]bool{}
	for _, root := range roots {
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
				return filepath.SkipDir
			}
			// "." as a root must not recurse into the other roots twice.
			if root == "." && path != "." {
				return filepath.SkipDir
			}
			if seen[path] {
				return nil
			}
			seen[path] = true
			ok, hasGo, err := packageDocumented(path)
			if err != nil {
				return err
			}
			if hasGo && !ok {
				violations = append(violations, fmt.Sprintf("package %s has no package doc comment", path))
			}
			return nil
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "doclint: %v\n", err)
			os.Exit(2)
		}
	}
	if *exported != "" {
		for _, dir := range strings.Split(*exported, ",") {
			dir = strings.TrimSpace(dir)
			if dir == "" {
				continue
			}
			vs, err := exportedDocumented(dir)
			if err != nil {
				fmt.Fprintf(os.Stderr, "doclint: %v\n", err)
				os.Exit(2)
			}
			violations = append(violations, vs...)
		}
	}
	if len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintf(os.Stderr, "doclint: %s\n", v)
		}
		os.Exit(1)
	}
}

// packageDocumented reports whether dir contains Go files (tests
// excluded) and whether any of them carries a package doc comment.
func packageDocumented(dir string) (documented, hasGo bool, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false, false, err
	}
	fset := token.NewFileSet()
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		hasGo = true
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.PackageClauseOnly)
		if err != nil {
			return false, true, err
		}
		if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
			return true, true, nil
		}
	}
	return false, hasGo, nil
}

// exportedDocumented lists every exported top-level identifier in dir's
// non-test files that lacks a doc comment. Methods are checked when the
// receiver's base type is itself exported; in grouped const/var/type
// declarations a doc comment on the group covers every spec in it.
func exportedDocumented(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var violations []string
	fset := token.NewFileSet()
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		path := filepath.Join(dir, name)
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if !d.Name.IsExported() || !receiverExported(d) {
					continue
				}
				if !hasDoc(d.Doc) {
					violations = append(violations, fmt.Sprintf("%s: exported %s %s is undocumented",
						fset.Position(d.Pos()), funcKind(d), funcName(d)))
				}
			case *ast.GenDecl:
				groupDoc := hasDoc(d.Doc)
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						if s.Name.IsExported() && !groupDoc && !hasDoc(s.Doc) {
							violations = append(violations, fmt.Sprintf("%s: exported type %s is undocumented",
								fset.Position(s.Pos()), s.Name.Name))
						}
					case *ast.ValueSpec:
						if !groupDoc && !hasDoc(s.Doc) && !hasDoc(s.Comment) {
							for _, id := range s.Names {
								if id.IsExported() {
									violations = append(violations, fmt.Sprintf("%s: exported %s %s is undocumented",
										fset.Position(s.Pos()), strings.ToLower(d.Tok.String()), id.Name))
								}
							}
						}
					}
				}
			}
		}
	}
	return violations, nil
}

// hasDoc reports whether a comment group holds actual text.
func hasDoc(c *ast.CommentGroup) bool {
	return c != nil && strings.TrimSpace(c.Text()) != ""
}

// receiverExported reports whether d is a plain function or a method
// whose receiver's base type name is exported — methods on unexported
// types are internal API no matter how their names are spelled.
func receiverExported(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	for {
		switch v := t.(type) {
		case *ast.StarExpr:
			t = v.X
		case *ast.IndexExpr:
			t = v.X
		case *ast.IndexListExpr:
			t = v.X
		case *ast.Ident:
			return v.IsExported()
		default:
			return true
		}
	}
}

// funcKind labels a FuncDecl for the violation message.
func funcKind(d *ast.FuncDecl) string {
	if d.Recv != nil {
		return "method"
	}
	return "function"
}

// funcName renders Name or Type.Name for methods.
func funcName(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return d.Name.Name
	}
	t := d.Recv.List[0].Type
	if s, ok := t.(*ast.StarExpr); ok {
		t = s.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name + "." + d.Name.Name
	}
	return d.Name.Name
}
