// Command doclint enforces the repository's documentation floor: every
// Go package under the given roots must carry a package-level doc
// comment on at least one of its non-test files. CI runs it as
//
//	go run ./cmd/doclint internal cmd .
//
// and fails the build listing each undocumented package. Package
// comments are the map from code to the paper (each internal package
// states which section it implements), so a missing one is treated as a
// build break, not a style nit.
package main

import (
	"fmt"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
)

func main() {
	roots := os.Args[1:]
	if len(roots) == 0 {
		roots = []string{"internal", "cmd", "."}
	}
	var undocumented []string
	seen := map[string]bool{}
	for _, root := range roots {
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
				return filepath.SkipDir
			}
			// "." as a root must not recurse into the other roots twice.
			if root == "." && path != "." {
				return filepath.SkipDir
			}
			if seen[path] {
				return nil
			}
			seen[path] = true
			ok, hasGo, err := packageDocumented(path)
			if err != nil {
				return err
			}
			if hasGo && !ok {
				undocumented = append(undocumented, path)
			}
			return nil
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "doclint: %v\n", err)
			os.Exit(2)
		}
	}
	if len(undocumented) > 0 {
		for _, p := range undocumented {
			fmt.Fprintf(os.Stderr, "doclint: package %s has no package doc comment\n", p)
		}
		os.Exit(1)
	}
}

// packageDocumented reports whether dir contains Go files (tests
// excluded) and whether any of them carries a package doc comment.
func packageDocumented(dir string) (documented, hasGo bool, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false, false, err
	}
	fset := token.NewFileSet()
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		hasGo = true
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.PackageClauseOnly)
		if err != nil {
			return false, true, err
		}
		if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
			return true, true, nil
		}
	}
	return false, hasGo, nil
}
