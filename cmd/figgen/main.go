// Command figgen regenerates every figure/experiment table of the paper
// reproduction (DESIGN.md §4) and prints them with PASS/FAIL verdicts.
//
// Usage:
//
//	figgen [-seed N] [-e E3] [-workers N]   # all experiments, or just one
//	figgen -list                            # list experiment ids
//	figgen -e E5 -trace-sample 3            # + 3 per-hop path traces
//
// -trace-sample N makes the trace-aware experiments (E5, E6, E14, E15)
// replay up to N cross-AS deliveries with a recorder attached and print
// the per-hop path traces after each table; see OBSERVABILITY.md for how
// to read one. Tables themselves are byte-identical with or without it.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/evolvable-net/evolve"
)

func main() {
	seed := flag.Int64("seed", 42, "experiment seed (fixes topology and workload)")
	one := flag.String("e", "", "run a single experiment id (e.g. E3)")
	list := flag.Bool("list", false, "list experiment ids and exit")
	md := flag.Bool("md", false, "emit GitHub-flavoured markdown (for EXPERIMENTS.md)")
	seeds := flag.Int("seeds", 1, "run each experiment across N seeds and report PASS rates")
	workers := flag.Int("workers", 0, "goroutines for sweep experiments (0 = GOMAXPROCS)")
	traceN := flag.Int("trace-sample", 0, "print N sampled per-hop path traces after each trace-aware experiment (0 = off)")
	flag.Parse()
	evolve.SetExperimentWorkers(*workers)
	evolve.SetTraceSample(*traceN)

	if *list {
		for _, id := range evolve.Experiments() {
			fmt.Println(id)
		}
		return
	}

	ids := evolve.Experiments()
	if *one != "" {
		ids = []string{*one}
	}

	if *seeds > 1 {
		// Robustness sweep: PASS rate per experiment across seeds.
		exit := 0
		for _, id := range ids {
			pass, total := 0, 0
			for s := int64(0); s < int64(*seeds); s++ {
				tbl, err := evolve.RunExperiment(id, *seed+s)
				total++
				if err == nil && tbl.OK {
					pass++
				} else if err != nil {
					fmt.Fprintf(os.Stderr, "%s seed %d: %v\n", id, *seed+s, err)
				}
			}
			status := "PASS"
			if pass != total {
				status = "FLAKY"
				exit = 1
			}
			fmt.Printf("%-4s %d/%d %s\n", id, pass, total, status)
		}
		os.Exit(exit)
	}

	failed := 0
	for _, id := range ids {
		tbl, err := evolve.RunExperiment(id, *seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: error: %v\n", id, err)
			failed++
			continue
		}
		if *md {
			fmt.Println(tbl.Markdown())
		} else {
			fmt.Println(tbl)
		}
		for _, tr := range tbl.Traces {
			fmt.Println(tr)
		}
		if !tbl.OK {
			failed++
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "%d experiment(s) failed\n", failed)
		os.Exit(1)
	}
}
