// Command overlayd runs a live vN-Bone demo on localhost: real UDP nodes
// forming a chain of IPvN routers, two endhosts exchanging IPvN packets
// through anycast ingress, bone relays and an underlay exit. It prints
// each node's socket address and per-node forwarding counters.
//
// Usage:
//
//	overlayd [-routers N] [-messages N]
//	overlayd -debug-addr localhost:6060 -hold 1m
//	overlayd -reliable -drop-rate 0.1 -kill-after 200ms -seed 7
//
// With -debug-addr, overlayd serves live introspection over HTTP while
// the demo runs (see OBSERVABILITY.md):
//
//	/debug/counters  per-node forwarding counters plus the registry's
//	                 live-plane and fault counters, expvar-style text
//	/debug/peers     every node's liveness peer-health table
//	/debug/vars      standard expvar JSON (includes the "overlay" map)
//	/debug/pprof/    net/http/pprof profiles of the running daemon
//
// The fault flags exercise the live plane's fault tolerance:
//
//	-drop-rate f     seeded probabilistic drop on every wire write
//	-partition a-b   hard partition between two node underlays
//	-kill-after d    close the preferred anycast ingress after d
//	-reliable        send the workload in acked/retransmitting mode
//	-seed n          root for every fault and jitter PRNG
//
// When any fault flag is active the first two routers both serve the
// anycast address, liveness probing runs between all bone neighbours,
// and killing the preferred ingress demonstrates anycast failover.
//
// -hold keeps the nodes (and the debug server) alive after the workload
// finishes so the endpoints can be inspected at leisure.
package main

import (
	"expvar"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof"
	"strings"
	"time"

	"github.com/evolvable-net/evolve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("overlayd: ")
	routers := flag.Int("routers", 4, "vN routers in the bone chain")
	messages := flag.Int("messages", 10, "IPvN packets to send end to end")
	debugAddr := flag.String("debug-addr", "", "serve live introspection on this HTTP address (/debug/counters, /debug/peers, /debug/vars, /debug/pprof/)")
	hold := flag.Duration("hold", 0, "keep nodes and the debug server alive this long after the workload finishes")
	dropRate := flag.Float64("drop-rate", 0, "seeded probabilistic drop rate on every wire write")
	partition := flag.String("partition", "", "partition two nodes, e.g. 10.7.0.1-10.7.0.10")
	killAfter := flag.Duration("kill-after", 0, "close the preferred anycast ingress this long into the workload")
	reliable := flag.Bool("reliable", false, "send the workload in acked/retransmitting mode")
	seed := flag.Int64("seed", 1, "root seed for fault and jitter PRNGs")
	flag.Parse()
	if *routers < 1 {
		log.Fatal("need at least one router")
	}
	faulty := *dropRate > 0 || *partition != "" || *killAfter > 0
	if faulty && *routers < 2 {
		log.Fatal("fault flags need at least two routers (a backup ingress)")
	}

	reg := evolve.NewOverlayRegistry()
	u := func(last byte) evolve.V4 {
		a, err := evolve.ParseV4(fmt.Sprintf("10.7.0.%d", last))
		if err != nil {
			log.Fatal(err)
		}
		return a
	}

	hostA, err := evolve.NewOverlayNode(reg, u(1))
	if err != nil {
		log.Fatal(err)
	}
	defer hostA.Close()
	hostB, err := evolve.NewOverlayNode(reg, u(2))
	if err != nil {
		log.Fatal(err)
	}
	defer hostB.Close()

	var bone []*evolve.OverlayNode
	for i := 0; i < *routers; i++ {
		n, err := evolve.NewOverlayNode(reg, u(byte(10+i)))
		if err != nil {
			log.Fatal(err)
		}
		defer n.Close()
		bone = append(bone, n)
	}

	// The deployment's well-known anycast address; the first router is
	// the preferred ingress, and under fault flags the second serves as
	// the failover ingress.
	anycastAddr, err := evolve.ParseV4("240.0.0.1")
	if err != nil {
		log.Fatal(err)
	}
	bone[0].ServeAnycast(anycastAddr)
	members := []evolve.V4{bone[0].Underlay}
	if faulty {
		bone[1].ServeAnycast(anycastAddr)
		members = append(members, bone[1].Underlay)
	}
	reg.SetAnycastMembers(anycastAddr, members)

	hostA.SetVNAddr(evolve.SelfAddress(hostA.Underlay))
	hostB.SetVNAddr(evolve.SelfAddress(hostB.Underlay))

	// Bone routes: all self-addressed traffic rides the chain; the last
	// router exits via the carried underlay destination.
	selfAll := evolve.VNPrefix{Addr: evolve.SelfAddress(0), Len: 1}
	for i := 0; i+1 < len(bone); i++ {
		bone[i].AddVNRoute(selfAll, bone[i+1].Underlay)
	}

	if faulty {
		ft := evolve.NewFaultTransport(evolve.FaultConfig{
			Seed:     *seed,
			DropRate: *dropRate,
			// Probes stay clean so suspicion reflects real deaths, not
			// the drop lottery.
			DataOnly: true,
		})
		if *partition != "" {
			parts := strings.SplitN(*partition, "-", 2)
			if len(parts) != 2 {
				log.Fatalf("bad -partition %q (want A-B)", *partition)
			}
			a, err := evolve.ParseV4(parts[0])
			if err != nil {
				log.Fatal(err)
			}
			b, err := evolve.ParseV4(parts[1])
			if err != nil {
				log.Fatal(err)
			}
			ft.Partition(a, b)
		}
		reg.SetFaultTransport(ft)
		for _, n := range append([]*evolve.OverlayNode{hostA, hostB}, bone...) {
			n.EnableLiveness(evolve.LivenessConfig{Interval: 50 * time.Millisecond})
		}
	}
	if *reliable {
		rel := evolve.ReliableConfig{AckVia: anycastAddr, JitterSeed: *seed}
		hostA.EnableReliable(rel)
		hostB.EnableReliable(rel)
	}

	fmt.Printf("anycast ingress %s (%d member(s)), %d bone routers, hosts %s ↔ %s\n",
		anycastAddr, len(members), len(bone), hostA.Underlay, hostB.Underlay)
	for i, n := range bone {
		ep, _ := reg.Endpoint(n.Underlay)
		fmt.Printf("  router %d: underlay %s udp %s\n", i+1, n.Underlay, ep)
	}

	all := map[string]*evolve.OverlayNode{
		"hostA": hostA,
		"hostB": hostB,
	}
	names := []string{"hostA", "hostB"}
	for i, n := range bone {
		name := fmt.Sprintf("router%d", i+1)
		all[name] = n
		names = append(names, name)
	}
	if *debugAddr != "" {
		// Standard expvar JSON at /debug/vars (plus cmdline/memstats),
		// pprof at /debug/pprof/ — both register on the default mux.
		expvar.Publish("overlay", expvar.Func(func() any {
			out := map[string]evolve.OverlayStats{}
			for name, n := range all {
				out[name] = n.Stats()
			}
			return out
		}))
		// A plain-text counter dump mirroring Snapshot.String's
		// "key value" line format, for curl without jq.
		http.HandleFunc("/debug/counters", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			for _, name := range names {
				s := all[name].Stats()
				fmt.Fprintf(w, "%s.delivered %d\n", name, s.Delivered)
				fmt.Fprintf(w, "%s.forwarded %d\n", name, s.Forwarded)
				fmt.Fprintf(w, "%s.exited %d\n", name, s.Exited)
				fmt.Fprintf(w, "%s.dropped %d\n", name, s.Dropped)
			}
			// Registry-wide live-plane counters (probes, failovers,
			// retransmits, faults, reconciles).
			fmt.Fprint(w, reg.Counters().Snapshot().String())
		})
		// Per-node peer-health tables from liveness probing.
		http.HandleFunc("/debug/peers", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			for _, name := range names {
				for _, ps := range all[name].PeerHealth() {
					fmt.Fprintf(w, "%s peer=%s suspected=%v misses=%d\n",
						name, ps.Peer, ps.Suspected, ps.Misses)
				}
			}
		})
		go func() {
			log.Printf("debug server on http://%s (/debug/counters, /debug/peers, /debug/vars, /debug/pprof/)", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, nil); err != nil {
				log.Printf("debug server: %v", err)
			}
		}()
	}

	if *killAfter > 0 {
		time.AfterFunc(*killAfter, func() {
			log.Printf("killing preferred ingress %s", bone[0].Underlay)
			bone[0].Close()
		})
	}

	start := time.Now()
	got := 0
	var rttSum time.Duration
	if *reliable {
		// One-way acked sends: every returned send is a guaranteed
		// exactly-once delivery at B, surviving drops and the ingress
		// kill via retransmission and anycast failover.
		for i := 0; i < *messages; i++ {
			sent := time.Now()
			if err := hostA.SendVNReliable(anycastAddr, hostB.VNAddr(), []byte(fmt.Sprintf("msg:%d", i))); err != nil {
				log.Printf("message %d not acked: %v", i, err)
				continue
			}
			rttSum += time.Since(sent)
			got++
		}
		elapsed := time.Since(start)
		fmt.Printf("%d/%d messages acked in %v (mean ack RTT %.1f µs)\n",
			got, *messages, elapsed.Round(time.Millisecond),
			float64(rttSum.Microseconds())/float64(got))
	} else {
		// Host B answers pings; RTTs traverse the bone twice.
		hostB.EnableEcho(anycastAddr)
		for i := 0; i < *messages; i++ {
			payload := []byte(fmt.Sprintf("ping:%d", i))
			sent := time.Now()
			if err := hostA.SendVN(anycastAddr, hostB.VNAddr(), payload); err != nil {
				log.Fatal(err)
			}
			rcv, err := hostA.WaitInbox(2 * time.Second)
			if err != nil {
				log.Printf("packet %d lost: %v", i, err)
				continue
			}
			rtt := time.Since(sent)
			rttSum += rtt
			got++
			if i == 0 {
				fmt.Printf("first pong: %q from %s in %v\n",
					rcv.Payload, rcv.From, rtt.Round(time.Microsecond))
			}
		}
		elapsed := time.Since(start)
		fmt.Printf("%d/%d pings answered in %v (mean RTT %.1f µs through 2×%d relays)\n",
			got, *messages, elapsed.Round(time.Millisecond),
			float64(rttSum.Microseconds())/float64(got), len(bone))
	}
	for i, n := range bone {
		s := n.Stats()
		fmt.Printf("  router %d: forwarded=%d exited=%d dropped=%d\n",
			i+1, s.Forwarded, s.Exited, s.Dropped)
	}
	if faulty {
		snap := reg.Counters().Snapshot()
		fmt.Printf("live plane: retransmits=%d failover_anycast=%d failover_route=%d suspected=%d recovered=%d dropped_by_faults=%d\n",
			snap.Retransmits, snap.FailoversAnycast, snap.FailoversRoute,
			snap.PeersSuspected, snap.PeersRecovered, snap.FaultDropped)
	}
	if *hold > 0 {
		fmt.Printf("holding for %v (debug endpoints stay live; ^C to quit)\n", *hold)
		time.Sleep(*hold)
	}
}
