// Command overlayd runs a live vN-Bone demo on localhost: real UDP nodes
// forming a chain of IPvN routers, two endhosts exchanging IPvN packets
// through anycast ingress, bone relays and an underlay exit. It prints
// each node's socket address and per-node forwarding counters.
//
// Usage:
//
//	overlayd [-routers N] [-messages N]
//	overlayd -debug-addr localhost:6060 -hold 1m
//
// With -debug-addr, overlayd serves live introspection over HTTP while
// the demo runs (see OBSERVABILITY.md):
//
//	/debug/counters  per-node forwarding counters, expvar-style text
//	/debug/vars      standard expvar JSON (includes the "overlay" map)
//	/debug/pprof/    net/http/pprof profiles of the running daemon
//
// -hold keeps the nodes (and the debug server) alive after the ping
// workload finishes so the endpoints can be inspected at leisure.
package main

import (
	"expvar"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof"
	"time"

	"github.com/evolvable-net/evolve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("overlayd: ")
	routers := flag.Int("routers", 4, "vN routers in the bone chain")
	messages := flag.Int("messages", 10, "IPvN packets to send end to end")
	debugAddr := flag.String("debug-addr", "", "serve live introspection on this HTTP address (/debug/counters, /debug/vars, /debug/pprof/)")
	hold := flag.Duration("hold", 0, "keep nodes and the debug server alive this long after the pings finish")
	flag.Parse()
	if *routers < 1 {
		log.Fatal("need at least one router")
	}

	reg := evolve.NewOverlayRegistry()
	u := func(last byte) evolve.V4 {
		a, err := evolve.ParseV4(fmt.Sprintf("10.7.0.%d", last))
		if err != nil {
			log.Fatal(err)
		}
		return a
	}

	hostA, err := evolve.NewOverlayNode(reg, u(1))
	if err != nil {
		log.Fatal(err)
	}
	defer hostA.Close()
	hostB, err := evolve.NewOverlayNode(reg, u(2))
	if err != nil {
		log.Fatal(err)
	}
	defer hostB.Close()

	var bone []*evolve.OverlayNode
	for i := 0; i < *routers; i++ {
		n, err := evolve.NewOverlayNode(reg, u(byte(10+i)))
		if err != nil {
			log.Fatal(err)
		}
		defer n.Close()
		bone = append(bone, n)
	}

	// The deployment's well-known anycast address; the first router is
	// the ingress.
	anycastAddr, err := evolve.ParseV4("240.0.0.1")
	if err != nil {
		log.Fatal(err)
	}
	bone[0].ServeAnycast(anycastAddr)
	reg.SetAnycastMembers(anycastAddr, []evolve.V4{bone[0].Underlay})

	hostA.SetVNAddr(evolve.SelfAddress(hostA.Underlay))
	hostB.SetVNAddr(evolve.SelfAddress(hostB.Underlay))

	// Bone routes: all self-addressed traffic rides the chain; the last
	// router exits via the carried underlay destination.
	selfAll := evolve.VNPrefix{Addr: evolve.SelfAddress(0), Len: 1}
	for i := 0; i+1 < len(bone); i++ {
		bone[i].AddVNRoute(selfAll, bone[i+1].Underlay)
	}

	fmt.Printf("anycast ingress %s, %d bone routers, hosts %s ↔ %s\n",
		anycastAddr, len(bone), hostA.Underlay, hostB.Underlay)
	for i, n := range bone {
		ep, _ := reg.Endpoint(n.Underlay)
		fmt.Printf("  router %d: underlay %s udp %s\n", i+1, n.Underlay, ep)
	}

	if *debugAddr != "" {
		all := map[string]*evolve.OverlayNode{
			"hostA": hostA,
			"hostB": hostB,
		}
		for i, n := range bone {
			all[fmt.Sprintf("router%d", i+1)] = n
		}
		// Standard expvar JSON at /debug/vars (plus cmdline/memstats),
		// pprof at /debug/pprof/ — both register on the default mux.
		expvar.Publish("overlay", expvar.Func(func() any {
			out := map[string]evolve.OverlayStats{}
			for name, n := range all {
				out[name] = n.Stats()
			}
			return out
		}))
		// A plain-text counter dump mirroring Snapshot.String's
		// "key value" line format, for curl without jq.
		names := []string{"hostA", "hostB"}
		for i := range bone {
			names = append(names, fmt.Sprintf("router%d", i+1))
		}
		http.HandleFunc("/debug/counters", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			for _, name := range names {
				s := all[name].Stats()
				fmt.Fprintf(w, "%s.delivered %d\n", name, s.Delivered)
				fmt.Fprintf(w, "%s.forwarded %d\n", name, s.Forwarded)
				fmt.Fprintf(w, "%s.exited %d\n", name, s.Exited)
				fmt.Fprintf(w, "%s.dropped %d\n", name, s.Dropped)
			}
		})
		go func() {
			log.Printf("debug server on http://%s (/debug/counters, /debug/vars, /debug/pprof/)", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, nil); err != nil {
				log.Printf("debug server: %v", err)
			}
		}()
	}

	// Host B answers pings; RTTs traverse the bone twice.
	hostB.EnableEcho(anycastAddr)

	start := time.Now()
	got := 0
	var rttSum time.Duration
	for i := 0; i < *messages; i++ {
		payload := []byte(fmt.Sprintf("ping:%d", i))
		sent := time.Now()
		if err := hostA.SendVN(anycastAddr, hostB.VNAddr(), payload); err != nil {
			log.Fatal(err)
		}
		rcv, err := hostA.WaitInbox(2 * time.Second)
		if err != nil {
			log.Printf("packet %d lost: %v", i, err)
			continue
		}
		rtt := time.Since(sent)
		rttSum += rtt
		got++
		if i == 0 {
			fmt.Printf("first pong: %q from %s in %v\n",
				rcv.Payload, rcv.From, rtt.Round(time.Microsecond))
		}
	}
	elapsed := time.Since(start)
	fmt.Printf("%d/%d pings answered in %v (mean RTT %.1f µs through 2×%d relays)\n",
		got, *messages, elapsed.Round(time.Millisecond),
		float64(rttSum.Microseconds())/float64(got), len(bone))
	for i, n := range bone {
		s := n.Stats()
		fmt.Printf("  router %d: forwarded=%d exited=%d dropped=%d\n",
			i+1, s.Forwarded, s.Exited, s.Dropped)
	}
	if *hold > 0 {
		fmt.Printf("holding for %v (debug endpoints stay live; ^C to quit)\n", *hold)
		time.Sleep(*hold)
	}
}
