// Command chaos drives randomized, seeded fault schedules against the
// stock deployment and checks the paper's liveness properties after
// every event: universal access (§3.1), vN-Bone connectivity (§3.3),
// trace-counter conservation, and equivalence between incremental
// reconvergence and a from-scratch rebuild. On violation it shrinks the
// schedule to a minimal reproducer and prints it as a replayable Go
// literal plus a path trace.
//
// Usage:
//
//	go run ./cmd/chaos -runs 200 -steps 50
//	go run ./cmd/chaos -seed 7 -invariants ua,oracle -v
//	go run ./cmd/chaos -list-invariants   # print the invariant registry
//	go run ./cmd/chaos -inject-bug   # demo: catches a skipped reconvergence
//	go run ./cmd/chaos -fallback     # fallback-enabled world under the availability SLO
//	go run ./cmd/chaos -session-runs 20   # BGP session sweep: faults mid-convergence
//
// The session sweep (-session-runs > 0) drives the event-driven BGP
// speakers with link flaps, originations, and withdrawals injected while
// convergence is in flight, probing transient path invariants throughout
// and checking the batch-fixpoint oracle at quiescence.
//
// Exit status is 1 when any run violates an invariant, 0 otherwise.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/evolvable-net/evolve/internal/chaos"
)

func main() {
	var (
		seed       = flag.Int64("seed", 1, "base schedule seed; run r uses seed+r")
		runs       = flag.Int("runs", 1, "number of schedules to run")
		steps      = flag.Int("steps", 50, "events per schedule")
		invariants = flag.String("invariants", "", "comma-separated invariants to check (default all: "+strings.Join(chaos.InvariantNames(), ",")+")")
		shrink     = flag.Bool("shrink", true, "shrink a violating schedule to a minimal reproducer")
		topoSeed   = flag.Int64("topo-seed", 42, "seed for the stock 15-ISP transit-stub topology")
		injectBug  = flag.Bool("inject-bug", false, "deliberately skip reconvergence on link restores (harness self-test)")
		out        = flag.String("out", "", "also write a violation report to this file")
		verbose    = flag.Bool("v", false, "log every run")
		listInvs   = flag.Bool("list-invariants", false, "print the invariant registry with one-line docs and exit")
		fallback   = flag.Bool("fallback", false, "run against the fallback-enabled stock world (graceful-degradation arm); defaults -invariants to the health-history-agnostic set")

		sessionRuns   = flag.Int("session-runs", 0, "BGP session chaos runs (faults injected mid-convergence); 0 disables")
		sessionAS     = flag.Int("session-as", 12, "internet size (ASes) for the session sweep")
		sessionEvents = flag.Int("session-events", 14, "faults per session run")
		sessionLegacy = flag.Bool("session-legacy", false, "ablation: run the session sweep against the fire-and-forget speaker (expected to fail)")
	)
	flag.Parse()

	if *listInvs {
		for _, name := range chaos.InvariantNames() {
			fmt.Printf("%-14s %s\n", name, chaos.InvariantDoc(name))
		}
		return
	}

	if *sessionRuns > 0 {
		failed := 0
		for r := 0; r < *sessionRuns; r++ {
			rep, err := chaos.RunSessionChaos(*seed+int64(r), *sessionAS, *sessionEvents, *sessionLegacy)
			if err != nil {
				fmt.Fprintf(os.Stderr, "chaos: session run %d: %v\n", r, err)
				os.Exit(2)
			}
			if !rep.Ok() {
				failed++
				fmt.Print(chaos.FormatSessionReport(rep))
			} else if *verbose {
				fmt.Print(chaos.FormatSessionReport(rep))
			}
		}
		if failed > 0 {
			fmt.Printf("chaos: session sweep: %d/%d runs FAILED\n", failed, *sessionRuns)
			os.Exit(1)
		}
		fmt.Printf("chaos: session sweep: %d run(s) × %d faults on %d-AS internets: no violations, oracle clean\n",
			*sessionRuns, *sessionEvents, *sessionAS)
		return
	}

	var names []string
	if *invariants != "" {
		names = strings.Split(*invariants, ",")
	}
	sc := chaos.StockScenario(*topoSeed)
	if *fallback {
		sc = chaos.StockFallbackScenario(*topoSeed)
		if names == nil {
			// The oracle-equivalence invariants (ua, oracle, batchsend)
			// cannot referee a fallback-enabled live world: its per-flow
			// health history legitimately diverges from any fresh rebuild.
			names = []string{"availability", "bone", "conserve", "providersync", "epochtick"}
		}
	}
	opts := chaos.Options{Invariants: names, Shrink: *shrink}
	if *injectBug {
		opts.Apply = chaos.BuggyRestoreApply
	}

	for r := 0; r < *runs; r++ {
		rep, err := chaos.Run(sc, *seed+int64(r), *steps, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "chaos: %v\n", err)
			os.Exit(2)
		}
		if rep.Violation == nil {
			if *verbose {
				fmt.Print(chaos.FormatReport(rep))
			}
			continue
		}
		report := chaos.FormatReport(rep)
		fmt.Print(report)
		if *out != "" {
			if err := os.WriteFile(*out, []byte(report), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "chaos: writing %s: %v\n", *out, err)
			}
		}
		os.Exit(1)
	}
	fmt.Printf("chaos: %d run(s) × %d steps on %s: no invariant violations\n", *runs, *steps, sc.Name)
}
