// Quickstart: one ISP deploys IPv8; two hosts whose own providers have
// never heard of it exchange IPv8 packets anyway (universal access).
package main

import (
	"fmt"
	"log"

	"github.com/evolvable-net/evolve"
)

func main() {
	log.SetFlags(0)

	// A small internet: 2 transit ISPs, 3 stub ISPs each, 2 hosts per ISP.
	net, err := evolve.TransitStub(2, 3, 0.3, evolve.GenConfig{
		Seed:           1,
		HostsPerDomain: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("internet: %d ISPs, %d routers, %d hosts\n",
		len(net.ASNs()), len(net.Routers), len(net.Hosts))

	// IPv8 arrives. Exactly one ISP (the first transit) deploys it,
	// using the paper's option-2 anycast rooted in its own address block.
	evo, err := evolve.New(net, evolve.Config{
		Version:   8,
		Option:    evolve.Option2,
		DefaultAS: net.DomainByName("T0").ASN,
	})
	if err != nil {
		log.Fatal(err)
	}
	evo.DeployDomain(net.DomainByName("T0").ASN, 0)
	fmt.Printf("IPv8 deployed only in %s; well-known anycast address %s\n",
		"T0", evo.AnycastAddr())

	// Two hosts in stub ISPs that did NOT deploy. Their IPv8 addresses
	// are temporary self-addresses derived from their IPv4 addresses.
	src := net.HostsIn(net.DomainByName("S0.0").ASN)[0]
	dst := net.HostsIn(net.DomainByName("S1.2").ASN)[0]
	srcVN, _ := evo.HostVNAddr(src)
	dstVN, _ := evo.HostVNAddr(dst)
	fmt.Printf("src %s: IPv4 %s → IPv8 %s\n", src.Name, src.Addr, srcVN)
	fmt.Printf("dst %s: IPv4 %s → IPv8 %s\n", dst.Name, dst.Addr, dstVN)

	// Send an IPv8 packet: encapsulated toward the anycast address,
	// captured by T0's closest IPv8 router, carried over the vN-Bone,
	// tunnelled the rest of the way over IPv4.
	d, err := evo.Send(src, dst, []byte("hello, next generation"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndelivered %q\n", d.Payload)
	fmt.Printf("  ingress:  IPv8 router %s (cost %d)\n",
		net.Router(d.Ingress.Member).Name, d.Ingress.Cost)
	fmt.Printf("  vN-Bone:  %d virtual hops (cost %d)\n", d.VNHops, d.Egress.BoneCost)
	fmt.Printf("  tail:     IPv4 tunnel to destination (cost %d)\n", d.TailCost)
	fmt.Printf("  total %d vs direct IPv4 %d → stretch %.2f\n",
		d.TotalCost, d.BaselineCost, d.Stretch)

	fmt.Printf("\nfull trace:\n%s", evo.DescribeDelivery(d))
}
