// Multicast-cdn replays the paper's motivating cautionary tale (§2.1):
// a content provider wants to use a new network service — think CNN and
// IP Multicast, with Sprint as the one deploying ISP. Without universal
// access, only the deployer's customers can be served, developers don't
// invest, and adoption stalls (the chicken-and-egg that killed
// multicast). With anycast-based universal access, the same single-ISP
// deployment reaches every host on day one, and the adoption model's
// virtuous cycle completes.
package main

import (
	"fmt"
	"log"

	"github.com/evolvable-net/evolve"
)

func main() {
	log.SetFlags(0)

	net, err := evolve.TransitStub(3, 4, 0.4, evolve.GenConfig{
		Seed: 7, RoutersPerDomain: 3, HostsPerDomain: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	sprint := net.DomainByName("T0") // the one ISP that deploys

	// --- Part 1: addressable market with a single deploying ISP -------
	evo, err := evolve.New(net, evolve.Config{
		Option:    evolve.Option2,
		DefaultAS: sprint.ASN,
	})
	if err != nil {
		log.Fatal(err)
	}
	evo.DeployDomain(sprint.ASN, 0)

	// "Multicast-style" reach: only the deployer's own customers.
	restricted := len(net.HostsIn(sprint.ASN))

	// Universal-access reach: every host that can complete a delivery to
	// the content server through the IPvN deployment.
	server := net.HostsIn(sprint.ASN)[0]
	universal := 0
	for _, h := range net.Hosts {
		if h.ID == server.ID {
			continue
		}
		if _, err := evo.Send(h, server, []byte("SUBSCRIBE")); err == nil {
			universal++
		}
	}
	fmt.Printf("single deploying ISP: %s\n", sprint.Name)
	fmt.Printf("  addressable hosts without universal access: %d/%d (deployer's customers only)\n",
		restricted, len(net.Hosts))
	fmt.Printf("  addressable hosts with anycast universal access: %d/%d\n\n",
		universal, len(net.Hosts)-1)

	// --- Part 2: what that difference does to adoption ----------------
	run := func(ua bool) {
		m, err := evolve.NewAdoptionModel(evolve.AdoptionParams{UniversalAccess: ua}, net)
		if err != nil {
			log.Fatal(err)
		}
		hist := m.Run()
		o := m.Outcome()
		label := "WITHOUT universal access (the IP Multicast story)"
		if ua {
			label = "WITH universal access"
		}
		fmt.Printf("%s:\n", label)
		for _, t := range []int{0, 10, 30, len(hist) - 1} {
			r := hist[t]
			fmt.Printf("  round %3d: app demand %.2f, ISPs deployed %d/%d\n",
				r.T, r.Demand, r.DeployedCount, len(m.ISPs))
		}
		switch {
		case o.Completed:
			fmt.Printf("  → adoption completed (demand %.2f)\n\n", o.FinalDemand)
		case o.Stalled:
			fmt.Printf("  → stalled: chicken-and-egg (demand %.3f, %d deployers left)\n\n",
				o.FinalDemand, o.FinalDeployed)
		default:
			fmt.Printf("  → partial (demand %.2f, %d deployers)\n\n", o.FinalDemand, o.FinalDeployed)
		}
	}
	run(false)
	run(true)

	// --- Part 3: the payoff — multicast itself, over IPv8 -------------
	// With the evolvable architecture in place, the capability that died
	// for lack of universal access simply ships as an IPv8 feature.
	mc := evolve.NewMulticast(evo)
	grp := mc.CreateGroup(1)
	subs := 0
	for _, h := range net.Hosts {
		if h.ID == server.ID || h.Domain == sprint.ASN {
			continue
		}
		if err := mc.Subscribe(grp, h); err == nil {
			subs++
		}
	}
	d, err := mc.Deliver(grp, server, []byte("breaking news"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("IPv8 multicast to %d subscribers (all in NON-deploying ISPs):\n", subs)
	fmt.Printf("  shared tree: %d vN links, total cost %d\n", d.TreeLinks, d.TotalCost)
	fmt.Printf("  repeated unicast would cost %d → saving %.0f%%\n",
		d.UnicastCost, d.Saving*100)
}
