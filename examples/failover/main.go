// Failover demonstrates the operational virtue of network-level
// redirection: links fail, IPvN routers withdraw, and clients keep
// working without touching a single endhost — the anycast address they
// were configured with on day one keeps resolving.
package main

import (
	"fmt"
	"log"

	"github.com/evolvable-net/evolve"
)

func main() {
	log.SetFlags(0)

	net, err := evolve.TransitStub(3, 3, 0.5, evolve.GenConfig{
		Seed: 11, RoutersPerDomain: 3, HostsPerDomain: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	evo, err := evolve.New(net, evolve.Config{
		Option:    evolve.Option2,
		DefaultAS: net.DomainByName("T0").ASN,
	})
	if err != nil {
		log.Fatal(err)
	}
	// Two transits deploy IPv8.
	evo.DeployDomain(net.DomainByName("T0").ASN, 0)
	evo.DeployDomain(net.DomainByName("T1").ASN, 0)

	// Pick a multihomed client stub (two uplinks), so one failed uplink
	// degrades rather than isolates.
	var clientASN evolve.ASN = -1
	for _, asn := range net.ASNs() {
		if net.Domain(asn).Name[0] != 'S' {
			continue
		}
		if len(net.Neighbors(asn)) >= 2 && len(net.HostsIn(asn)) > 0 {
			clientASN = asn
			break
		}
	}
	if clientASN < 0 {
		log.Fatal("no multihomed stub in this topology/seed")
	}
	client := net.HostsIn(clientASN)[0]
	server := net.HostsIn(net.DomainByName("S1.1").ASN)[0]
	fmt.Printf("client lives in multihomed stub %s\n\n", net.Domain(clientASN).Name)

	report := func(phase string) {
		res, err := evo.Anycast.ResolveFromHost(client, evo.AnycastAddr())
		if err != nil {
			fmt.Printf("%-28s client cannot reach IPv8: %v\n", phase, err)
			return
		}
		d, err := evo.Send(client, server, []byte("GET /")) // full delivery
		if err != nil {
			fmt.Printf("%-28s ingress %s but delivery failed: %v\n",
				phase, net.Domain(net.DomainOf(res.Member)).Name, err)
			return
		}
		fmt.Printf("%-28s ingress %s (cost %d), end-to-end %d, stretch %.2f\n",
			phase, net.Domain(net.DomainOf(res.Member)).Name, res.Cost, d.TotalCost, d.Stretch)
	}

	report("healthy:")

	// One of the client stub's two uplinks dies.
	up := net.Inter[0]
	for _, l := range net.Inter {
		if net.DomainOf(l.To) == client.Domain || net.DomainOf(l.From) == client.Domain {
			up = l
			break
		}
	}
	a, b := net.Router(up.From), net.Router(up.To)
	fmt.Printf("\n*** failing link %s — %s ***\n", a.Name, b.Name)
	link, ok := evo.FailInterLink(up.From, up.To)
	if !ok {
		log.Fatal("link not found")
	}
	report("after uplink failure:")

	// One whole deploying ISP turns IPv8 off.
	fmt.Println("\n*** T1 un-deploys IPv8 entirely ***")
	for _, m := range evo.Dep.MembersIn(net.DomainByName("T1").ASN) {
		evo.UndeployRouter(m)
	}
	report("after T1 withdrawal:")

	// Everything heals.
	fmt.Println("\n*** link repaired, T1 redeploys ***")
	evo.RestoreInterLink(link)
	evo.DeployDomain(net.DomainByName("T1").ASN, 0)
	report("healed:")

	fmt.Println("\nthe client never reconfigured anything: same anycast address throughout.")
}
