// Failover demonstrates the operational virtue of network-level
// redirection: links fail, IPvN routers withdraw, and clients keep
// working without touching a single endhost — the anycast address they
// were configured with on day one keeps resolving.
//
// Act I replays the story on the simulator; act II replays it on the
// live UDP overlay, where the failure is a real process-level kill of
// the preferred ingress under a seeded 15% packet-drop schedule, and
// the client's acked sends ride retransmission and anycast failover.
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/evolvable-net/evolve"
)

func main() {
	log.SetFlags(0)

	net, err := evolve.TransitStub(3, 3, 0.5, evolve.GenConfig{
		Seed: 11, RoutersPerDomain: 3, HostsPerDomain: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	evo, err := evolve.New(net, evolve.Config{
		Option:    evolve.Option2,
		DefaultAS: net.DomainByName("T0").ASN,
	})
	if err != nil {
		log.Fatal(err)
	}
	// Two transits deploy IPv8.
	evo.DeployDomain(net.DomainByName("T0").ASN, 0)
	evo.DeployDomain(net.DomainByName("T1").ASN, 0)

	// Pick a multihomed client stub (two uplinks), so one failed uplink
	// degrades rather than isolates.
	var clientASN evolve.ASN = -1
	for _, asn := range net.ASNs() {
		if net.Domain(asn).Name[0] != 'S' {
			continue
		}
		if len(net.Neighbors(asn)) >= 2 && len(net.HostsIn(asn)) > 0 {
			clientASN = asn
			break
		}
	}
	if clientASN < 0 {
		log.Fatal("no multihomed stub in this topology/seed")
	}
	client := net.HostsIn(clientASN)[0]
	server := net.HostsIn(net.DomainByName("S1.1").ASN)[0]
	fmt.Printf("client lives in multihomed stub %s\n\n", net.Domain(clientASN).Name)

	report := func(phase string) {
		res, err := evo.Anycast.ResolveFromHost(client, evo.AnycastAddr())
		if err != nil {
			fmt.Printf("%-28s client cannot reach IPv8: %v\n", phase, err)
			return
		}
		d, err := evo.Send(client, server, []byte("GET /")) // full delivery
		if err != nil {
			fmt.Printf("%-28s ingress %s but delivery failed: %v\n",
				phase, net.Domain(net.DomainOf(res.Member)).Name, err)
			return
		}
		fmt.Printf("%-28s ingress %s (cost %d), end-to-end %d, stretch %.2f\n",
			phase, net.Domain(net.DomainOf(res.Member)).Name, res.Cost, d.TotalCost, d.Stretch)
	}

	report("healthy:")

	// One of the client stub's two uplinks dies.
	up := net.Inter[0]
	for _, l := range net.Inter {
		if net.DomainOf(l.To) == client.Domain || net.DomainOf(l.From) == client.Domain {
			up = l
			break
		}
	}
	a, b := net.Router(up.From), net.Router(up.To)
	fmt.Printf("\n*** failing link %s — %s ***\n", a.Name, b.Name)
	link, ok := evo.FailInterLink(up.From, up.To)
	if !ok {
		log.Fatal("link not found")
	}
	report("after uplink failure:")

	// One whole deploying ISP turns IPv8 off.
	fmt.Println("\n*** T1 un-deploys IPv8 entirely ***")
	for _, m := range evo.Dep.MembersIn(net.DomainByName("T1").ASN) {
		evo.UndeployRouter(m)
	}
	report("after T1 withdrawal:")

	// Everything heals.
	fmt.Println("\n*** link repaired, T1 redeploys ***")
	evo.RestoreInterLink(link)
	evo.DeployDomain(net.DomainByName("T1").ASN, 0)
	report("healed:")

	fmt.Println("\nthe client never reconfigured anything: same anycast address throughout.")

	liveAct()
}

// liveAct replays the failover story on the live overlay: a client's
// acked sends survive a seeded drop schedule and the death of the
// preferred anycast ingress, with counter deltas printed per phase.
func liveAct() {
	fmt.Println("\n=== live overlay act ===")
	reg := evolve.NewOverlayRegistry()
	mk := func(s string) *evolve.OverlayNode {
		a, err := evolve.ParseV4(s)
		if err != nil {
			log.Fatal(err)
		}
		n, err := evolve.NewOverlayNode(reg, a)
		if err != nil {
			log.Fatal(err)
		}
		return n
	}
	client, server := mk("10.9.0.1"), mk("10.9.0.2")
	ing1, ing2 := mk("10.9.0.11"), mk("10.9.0.12")
	defer func() {
		for _, n := range []*evolve.OverlayNode{client, server, ing2} {
			n.Close()
		}
	}()

	anycastAddr, err := evolve.ParseV4("240.0.0.1")
	if err != nil {
		log.Fatal(err)
	}
	ing1.ServeAnycast(anycastAddr)
	ing2.ServeAnycast(anycastAddr)
	reg.SetAnycastMembers(anycastAddr, []evolve.V4{ing1.Underlay, ing2.Underlay})
	client.SetVNAddr(evolve.SelfAddress(client.Underlay))
	server.SetVNAddr(evolve.SelfAddress(server.Underlay))

	rel := evolve.ReliableConfig{AckVia: anycastAddr, JitterSeed: 11}
	client.EnableReliable(rel)
	server.EnableReliable(rel)
	// Every wire write faces a 15% seeded drop lottery from here on.
	reg.SetFaultTransport(evolve.NewFaultTransport(evolve.FaultConfig{
		Seed: 11, DropRate: 0.15,
	}))

	send := func(phase string, n int) {
		before := reg.Counters().Snapshot()
		acked := 0
		for i := 0; i < n; i++ {
			payload := []byte(fmt.Sprintf("%s:%d", phase, i))
			if err := client.SendVNReliable(anycastAddr, server.VNAddr(), payload); err != nil {
				fmt.Printf("%-28s message %d lost for good: %v\n", phase, i, err)
				continue
			}
			acked++
		}
		delivered := 0
		for delivered < acked {
			if _, err := server.WaitInbox(time.Second); err != nil {
				break
			}
			delivered++
		}
		after := reg.Counters().Snapshot()
		fmt.Printf("%-28s %d/%d acked, %d delivered  Δdropped=%d Δretransmits=%d Δdedup=%d\n",
			phase+":", acked, n, delivered,
			after.FaultDropped-before.FaultDropped,
			after.Retransmits-before.Retransmits,
			after.DedupDrops-before.DedupDrops)
	}

	send("lossy wire", 10)

	fmt.Printf("\n*** killing preferred ingress %s ***\n", ing1.Underlay)
	ing1.Close()
	send("after ingress kill", 10)

	fmt.Println("\nsame anycast address, live sockets this time: drops were " +
		"retransmitted, the dead ingress was routed around, nothing was " +
		"delivered twice.")
}
