// Live-overlay runs the prototype on real UDP sockets: the *simulator*
// computes the control plane (which router the anycast address resolves
// to, what the vN-Bone routes are), and a provisioned overlay of live
// nodes executes the data plane — real encapsulation through real sockets
// on localhost, one node per simulated vN router and endhost.
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/evolvable-net/evolve"
)

func main() {
	log.SetFlags(0)

	// Control plane: a simulated transit-stub internet; the first transit
	// and one stub deploy IPv8.
	net, err := evolve.TransitStub(2, 2, 0.3, evolve.GenConfig{
		Seed: 5, RoutersPerDomain: 2, HostsPerDomain: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	evo, err := evolve.New(net, evolve.Config{
		Option:    evolve.Option2,
		DefaultAS: net.DomainByName("T0").ASN,
	})
	if err != nil {
		log.Fatal(err)
	}
	evo.DeployDomain(net.DomainByName("T0").ASN, 0)
	evo.DeployDomain(net.DomainByName("S1.0").ASN, 0)

	// Data plane: provision one live UDP node per vN router and host.
	overlay, err := evolve.ProvisionLiveOverlay(evo)
	if err != nil {
		log.Fatal(err)
	}
	defer overlay.Close()
	fmt.Printf("provisioned %d live vN routers and %d live hosts on localhost UDP\n",
		len(overlay.Members), len(overlay.Hosts))

	src := net.HostsIn(net.DomainByName("S0.0").ASN)[0]
	dst := net.HostsIn(net.DomainByName("S0.1").ASN)[0]

	// The simulator predicts the trajectory…
	sim, err := evo.Send(src, dst, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulation predicts: ingress %s, %d vN hops, egress %s\n",
		net.Router(sim.Ingress.Member).Name, sim.VNHops, net.Router(sim.Egress.Member).Name)

	// …and the live overlay walks it with real packets.
	for i := 0; i < 5; i++ {
		msg := fmt.Sprintf("live packet %d", i)
		start := time.Now()
		got, err := overlay.Send(src, dst, []byte(msg), 3*time.Second)
		if err != nil {
			log.Fatal(err)
		}
		lastHop := net.RouterByLoopback(got.OuterSrc)
		fmt.Printf("%s got %q in %v (last vN hop %s)\n",
			dst.Name, got.Payload, time.Since(start).Round(time.Microsecond), lastHop.Name)
	}

	fmt.Println("per-router live counters:")
	for id, node := range overlay.Members {
		s := node.Stats()
		if s.Forwarded+s.Exited == 0 {
			continue
		}
		fmt.Printf("  %s: forwarded=%d exited=%d\n", net.Router(id).Name, s.Forwarded, s.Exited)
	}
}
