// Deployment-spread walks the paper's Figure 1 end to end: IPv8 is
// deployed successively in ISPs X, then Y, then Z, and client C in Z is
// seamlessly redirected to the closest IPv8 provider at every stage —
// same anycast destination, no reconfiguration, monotonically better
// service — then keeps going where the figure stops: Z's hosts relabel
// from temporary self-addresses to native IPv8 addresses.
package main

import (
	"fmt"
	"log"

	"github.com/evolvable-net/evolve"
)

func main() {
	log.SetFlags(0)

	// The Figure-1 world: provider chain X → Y → Z with client C in Z.
	b := evolve.NewBuilder()
	dX := b.AddDomain("X")
	dY := b.AddDomain("Y")
	dZ := b.AddDomain("Z")
	rX := b.AddRouters(dX, 2)
	rY := b.AddRouters(dY, 2)
	rZ := b.AddRouters(dZ, 2)
	b.IntraLink(rX[0], rX[1], 2)
	b.IntraLink(rY[0], rY[1], 2)
	b.IntraLink(rZ[0], rZ[1], 2)
	b.Provide(rX[1], rY[0], 10)
	b.Provide(rY[1], rZ[0], 10)
	c := b.AddHost(dZ, rZ[1], "C", 1)
	srv := b.AddHost(dX, rX[0], "server", 1)
	net, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	evo, err := evolve.New(net, evolve.Config{
		Option:    evolve.Option2,
		DefaultAS: dX.ASN, // X moves first and anchors the anycast address
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("well-known IPv8 anycast address: %s (never changes below)\n\n", evo.AnycastAddr())

	stage := func(name string, deploy []evolve.RouterID) {
		for _, r := range deploy {
			evo.DeployRouter(r)
		}
		res, err := evo.Anycast.ResolveFromHost(c, evo.AnycastAddr())
		if err != nil {
			log.Fatal(err)
		}
		cVN, _ := evo.HostVNAddr(c)
		d, err := evo.Send(c, srv, []byte("GET /"))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s\n", name)
		fmt.Printf("  C's ingress: %s in ISP %s, redirection cost %d\n",
			net.Router(res.Member).Name,
			net.Domain(net.DomainOf(res.Member)).Name, res.Cost)
		fmt.Printf("  C's IPv8 address: %s\n", cVN)
		fmt.Printf("  C → server delivery: total %d, stretch %.2f\n\n", d.TotalCost, d.Stretch)
	}

	stage("stage 1: ISP X deploys IPv8", []evolve.RouterID{rX[0], rX[1]})
	stage("stage 2: ISP Y deploys IPv8", []evolve.RouterID{rY[0], rY[1]})
	stage("stage 3: ISP Z deploys IPv8 (C relabels to a native address)", []evolve.RouterID{rZ[0], rZ[1]})
}
