package evolve_test

import (
	"fmt"

	"github.com/evolvable-net/evolve"
)

// The canonical flow: one ISP deploys IPv8; hosts of non-deploying ISPs
// exchange IPv8 packets through anycast redirection and the vN-Bone.
func ExampleNew() {
	net, err := evolve.TransitStub(2, 3, 0.3, evolve.GenConfig{Seed: 1, HostsPerDomain: 2})
	if err != nil {
		panic(err)
	}
	evo, err := evolve.New(net, evolve.Config{
		Version:   8,
		Option:    evolve.Option2,
		DefaultAS: net.DomainByName("T0").ASN,
	})
	if err != nil {
		panic(err)
	}
	evo.DeployDomain(net.DomainByName("T0").ASN, 0)

	src := net.HostsIn(net.DomainByName("S0.0").ASN)[0]
	dst := net.HostsIn(net.DomainByName("S1.2").ASN)[0]
	d, err := evo.Send(src, dst, []byte("hello IPv8"))
	if err != nil {
		panic(err)
	}
	fmt.Printf("delivered %q with stretch %.2f\n", d.Payload, d.Stretch)
	// Output: delivered "hello IPv8" with stretch 1.00
}

// Self-addressing derives a host's temporary IPvN address from its
// underlay address; the mapping is injective and reversible.
func ExampleSelfAddress() {
	u, _ := evolve.ParseV4("10.1.2.3")
	v := evolve.SelfAddress(u)
	back, ok := v.Underlay()
	fmt.Println(v, ok, back)
	// Output: self:10.1.2.3 true 10.1.2.3
}

// Hand-built scenario topologies use the Builder, as the paper's figure
// reproductions do.
func ExampleNewBuilder() {
	b := evolve.NewBuilder()
	x := b.AddDomain("X")
	z := b.AddDomain("Z")
	rx := b.AddRouter(x, "X-border")
	rz := b.AddRouter(z, "Z-border")
	b.Provide(rx, rz, 10) // X provides transit to Z
	b.AddHost(z, rz, "client", 1)
	net, err := b.Build()
	if err != nil {
		panic(err)
	}
	fmt.Println(len(net.ASNs()), "domains,", len(net.Hosts), "host")
	// Output: 2 domains, 1 host
}

// The adoption-dynamics model reproduces the paper's §2.1 argument: with
// universal access a single first mover triggers full adoption; without
// it the IP-Multicast chicken-and-egg recurs.
func ExampleNewAdoptionModel() {
	net, _ := evolve.TransitStub(2, 2, 0, evolve.GenConfig{Seed: 3, HostsPerDomain: 2})
	withUA, _ := evolve.NewAdoptionModel(evolve.AdoptionParams{UniversalAccess: true}, net)
	withUA.Run()
	withoutUA, _ := evolve.NewAdoptionModel(evolve.AdoptionParams{UniversalAccess: false}, net)
	withoutUA.Run()
	fmt.Printf("with UA: completed=%v; without: stalled=%v\n",
		withUA.Outcome().Completed, withoutUA.Outcome().Stalled)
	// Output: with UA: completed=true; without: stalled=true
}

// Multicast is the payoff capability: hosts in non-deploying ISPs
// subscribe via anycast, and one send reaches them all over a shared
// vN-Bone tree.
func ExampleNewMulticast() {
	net, _ := evolve.TransitStub(3, 3, 0.4, evolve.GenConfig{Seed: 17, RoutersPerDomain: 3, HostsPerDomain: 2})
	evo, _ := evolve.New(net, evolve.Config{Option: evolve.Option1})
	for _, name := range []string{"T0", "T1", "T2"} {
		evo.DeployDomain(net.DomainByName(name).ASN, 0)
	}
	mc := evolve.NewMulticast(evo)
	grp := mc.CreateGroup(1)
	src := net.Hosts[0]
	for _, h := range net.Hosts[1:] {
		if err := mc.Subscribe(grp, h); err != nil {
			panic(err)
		}
	}
	d, err := mc.Deliver(grp, src, []byte("stream"))
	if err != nil {
		panic(err)
	}
	fmt.Printf("reached %d subscribers; multicast beat repeated unicast: %v\n",
		d.Subscribers, d.TotalCost <= d.UnicastCost)
	// Output: reached 23 subscribers; multicast beat repeated unicast: true
}

// A Tracer captures one delivery's span: the anycast redirect decision,
// every vN-Bone hop, the egress selection and each tunnel operation.
// Attach one per delivery with SendTraced (or evolution-wide with
// SetTracer); evolution-wide counters are always on via Snapshot. See
// OBSERVABILITY.md for how to read the full per-hop rendering.
func ExampleTracer() {
	net, _ := evolve.TransitStub(2, 3, 0.3, evolve.GenConfig{Seed: 1, HostsPerDomain: 2})
	evo, _ := evolve.New(net, evolve.Config{
		Option:    evolve.Option2,
		DefaultAS: net.DomainByName("T0").ASN,
	})
	evo.DeployDomain(net.DomainByName("T0").ASN, 0)

	src := net.HostsIn(net.DomainByName("S0.0").ASN)[0]
	dst := net.HostsIn(net.DomainByName("S1.2").ASN)[0]
	rec := evolve.NewTraceRecorder()
	if _, err := evo.SendTraced(src, dst, []byte("hi"), rec); err != nil {
		panic(err)
	}
	for _, ev := range rec.Events() {
		fmt.Println(ev.Kind)
	}
	s := evo.Snapshot()
	fmt.Printf("counters: sends=%d deliveries=%d drops=%d\n", s.Sends, s.Deliveries, s.Drops)
	// Output:
	// send
	// encap
	// redirect
	// egress
	// encap
	// decap
	// deliver
	// counters: sends=1 deliveries=1 drops=0
}

// RunExperiment regenerates any of the paper-reproduction tables.
func ExampleRunExperiment() {
	tbl, err := evolve.RunExperiment("E1", 42)
	if err != nil {
		panic(err)
	}
	fmt.Println(tbl.ID, tbl.OK)
	// Output: E1 true
}
