package experiments

import (
	"fmt"

	"github.com/evolvable-net/evolve/internal/anycast"
	"github.com/evolvable-net/evolve/internal/core"
	"github.com/evolvable-net/evolve/internal/forward"
	"github.com/evolvable-net/evolve/internal/routing/bgp"
	"github.com/evolvable-net/evolve/internal/routing/bgpvn"
	"github.com/evolvable-net/evolve/internal/topology"
	"github.com/evolvable-net/evolve/internal/underlay"
	"github.com/evolvable-net/evolve/internal/vnbone"
)

// Fig1SeamlessSpread reproduces Figure 1: IPv8 deployed successively in
// ISPs X, then Y, then Z; throughout, client C (in Z) is seamlessly
// redirected to the closest IPv8 provider without any reconfiguration.
// ISP W peers with both X and Y to exhibit the policy-choice remark.
func Fig1SeamlessSpread(seed int64) (*Table, error) {
	t := &Table{
		ID:    "E1",
		Title: "Figure 1 — anycast enables the seamless spread of deployment",
		Claim: "as deployment spreads X→Y→Z, client C is redirected to the closest provider with no endhost reconfiguration",
		Columns: []string{
			"stage", "deployed", "C's ingress ISP", "redirection cost", "endhost reconfig",
		},
	}
	b := topology.NewBuilder()
	dX := b.AddDomain("X")
	dY := b.AddDomain("Y")
	dZ := b.AddDomain("Z")
	dW := b.AddDomain("W")
	rX := b.AddRouters(dX, 2)
	rY := b.AddRouters(dY, 2)
	rZ := b.AddRouters(dZ, 2)
	rW := b.AddRouter(dW, "")
	b.IntraLink(rX[0], rX[1], 2)
	b.IntraLink(rY[0], rY[1], 2)
	b.IntraLink(rZ[0], rZ[1], 2)
	// Provider chain X → Y → Z, with W peered to X and Y.
	b.Provide(rX[1], rY[0], 10)
	b.Provide(rY[1], rZ[0], 10)
	b.Peer(rW, rX[0], 10)
	b.Peer(rW, rY[0], 10)
	c := b.AddHost(dZ, rZ[1], "C", 1)
	net, err := b.Build()
	if err != nil {
		return nil, err
	}

	evo, err := core.New(net, core.Config{
		Option:    anycast.Option2,
		DefaultAS: dX.ASN, // X is the first mover and default domain
	})
	if err != nil {
		return nil, err
	}
	anycastAddr := evo.AnycastAddr()

	stages := []struct {
		name   string
		deploy []topology.RouterID
		want   topology.ASN
	}{
		{"1: X deploys", []topology.RouterID{rX[0], rX[1]}, dX.ASN},
		{"2: Y deploys", []topology.RouterID{rY[0], rY[1]}, dY.ASN},
		{"3: Z deploys", []topology.RouterID{rZ[0], rZ[1]}, dZ.ASN},
	}
	var lastCost int64 = 1 << 62
	okSequence := true
	deployedNames := ""
	for i, st := range stages {
		for _, r := range st.deploy {
			evo.DeployRouter(r)
		}
		if i > 0 {
			deployedNames += "+"
		}
		deployedNames += net.Domain(st.want).Name
		res, err := evo.Anycast.ResolveFromHost(c, anycastAddr)
		if err != nil {
			return nil, fmt.Errorf("stage %s: %w", st.name, err)
		}
		ingress := net.Domain(net.DomainOf(res.Member)).Name
		// The endhost's configuration is the anycast address; it never
		// changes across stages.
		reconf := "none"
		if evo.AnycastAddr() != anycastAddr {
			reconf = "CHANGED"
		}
		t.AddRow(st.name, deployedNames, ingress, fmt.Sprintf("%d", res.Cost), reconf)
		if net.DomainOf(res.Member) != st.want || res.Cost >= lastCost {
			okSequence = false
		}
		lastCost = res.Cost
	}

	if okSequence {
		t.pass("ingress moved X→Y→Z with strictly decreasing cost and zero endhost reconfiguration")
	} else {
		t.fail("ingress sequence or cost monotonicity violated")
	}
	return t, nil
}

// fig2World builds the Figure 2 scenario shared by E2.
type fig2World struct {
	net *topology.Network
	svc *anycast.Service
	dep *anycast.Deployment
	dQ  *topology.Domain
	dY  *topology.Domain
}

func buildFig2() (*fig2World, error) {
	b := topology.NewBuilder()
	dD := b.AddDomain("D")
	dQ := b.AddDomain("Q")
	dP := b.AddDomain("P")
	dX := b.AddDomain("X")
	dY := b.AddDomain("Y")
	dZ := b.AddDomain("Z")
	rD := b.AddRouters(dD, 2)
	rQ := b.AddRouters(dQ, 2)
	rP := b.AddRouter(dP, "")
	rX := b.AddRouter(dX, "")
	rY := b.AddRouter(dY, "")
	rZ := b.AddRouter(dZ, "")
	b.IntraLink(rD[0], rD[1], 2)
	b.IntraLink(rQ[0], rQ[1], 2)
	b.Provide(rD[0], rX, 10)
	b.Provide(rD[0], rY, 10)
	b.Provide(rD[1], rQ[0], 10)
	b.Provide(rQ[1], rZ, 10)
	b.Peer(rP, rQ[0], 10) // P, as in the figure, sits beside Q
	b.Peer(rQ[0], rY, 5)  // the physical Q–Y link the later advert uses
	for _, d := range []*topology.Domain{dX, dY, dZ, dP} {
		b.AddHost(d, d.Routers[0], "h"+d.Name, 1)
	}
	net, err := b.Build()
	if err != nil {
		return nil, err
	}
	igp := underlay.NewView(net)
	svc := anycast.NewService(net, bgp.NewSystem(net), igp)
	dep, err := svc.DeployOption2(0, dD.ASN)
	if err != nil {
		return nil, err
	}
	svc.AddMember(dep, rD[1])
	svc.AddMember(dep, rQ[1])
	return &fig2World{net: net, svc: svc, dep: dep, dQ: dQ, dY: dY}, nil
}

// Fig2DefaultRoutes reproduces Figure 2: option-2 anycast with
// ISP-rooted unicast addresses and default routes; then ISP Q peers with
// Y to advertise its anycast route and Y's traffic moves from D to Q.
func Fig2DefaultRoutes(seed int64) (*Table, error) {
	t := &Table{
		ID:    "E2",
		Title: "Figure 2 — inter-domain anycast via default ISP + peering advertisements",
		Claim: "before the advert X,Y terminate in D and Z reaches Q; after Q advertises to Y, Y's packets are delivered to Q; others unchanged",
		Columns: []string{
			"phase", "client ISP", "lands in", "cost",
		},
	}
	w, err := buildFig2()
	if err != nil {
		return nil, err
	}
	landing := func(phase string) (map[string]string, error) {
		out := map[string]string{}
		for _, name := range []string{"X", "Y", "Z"} {
			h := w.net.HostsIn(w.net.DomainByName(name).ASN)[0]
			res, err := w.svc.ResolveFromHost(h, w.dep.Addr)
			if err != nil {
				return nil, fmt.Errorf("%s from %s: %w", phase, name, err)
			}
			in := w.net.Domain(w.net.DomainOf(res.Member)).Name
			out[name] = in
			t.AddRow(phase, name, in, fmt.Sprintf("%d", res.Cost))
		}
		return out, nil
	}

	before, err := landing("before advert")
	if err != nil {
		return nil, err
	}
	if err := w.svc.AdvertiseToNeighbors(w.dep, w.dQ.ASN, w.dY.ASN); err != nil {
		return nil, err
	}
	after, err := landing("after advert")
	if err != nil {
		return nil, err
	}

	ok := before["X"] == "D" && before["Y"] == "D" && before["Z"] == "Q" &&
		after["X"] == "D" && after["Y"] == "Q" && after["Z"] == "Q"
	if ok {
		t.pass("X→D, Y→D, Z→Q before; Y moves to Q after the peering advert; X and Z unchanged")
	} else {
		t.fail("landing pattern %v → %v does not match the figure", before, after)
	}
	return t, nil
}

// Fig3EgressSelection reproduces Figure 3: with only BGPvN the packet
// exits the vN-Bone at ingress domain M's router X; importing BGPv(N-1)
// lets it ride the bone to Y in ISP O, next to destination C.
func Fig3EgressSelection(seed int64) (*Table, error) {
	t := &Table{
		ID:    "E3",
		Title: "Figure 3 — egress selection with imported BGPv(N-1)",
		Claim: "with BGPv(N-1)+BGPvN the last IPvN hop moves from X (ISP M) to Y (ISP O) and the total path cost does not increase",
		Columns: []string{
			"routing", "last IPvN hop", "vN hops", "bone cost", "tail cost", "total",
		},
	}
	b := topology.NewBuilder()
	dM := b.AddDomain("M")
	dO := b.AddDomain("O")
	dNC := b.AddDomain("NC")
	rM := b.AddRouters(dM, 2)
	rO := b.AddRouters(dO, 2)
	rNC := b.AddRouter(dNC, "")
	b.IntraLink(rM[0], rM[1], 1)
	b.IntraLink(rO[0], rO[1], 1)
	b.Peer(rM[1], rO[0], 10)
	b.Provide(rO[1], rNC, 10)
	c := b.AddHost(dNC, rNC, "C", 1)
	net, err := b.Build()
	if err != nil {
		return nil, err
	}
	igp := underlay.NewView(net)
	bgpSys := bgp.NewSystem(net)
	svc := anycast.NewService(net, bgpSys, igp)
	dep, err := svc.DeployOption1(0)
	if err != nil {
		return nil, err
	}
	x := rM[0]
	y := rO[1]
	svc.AddMember(dep, x)
	svc.AddMember(dep, y)
	bone, err := vnbone.Build(svc, igp, dep, vnbone.Config{})
	if err != nil {
		return nil, err
	}
	fwd := forward.NewEngine(net, bgpSys, igp)
	vn := bgpvn.New(bone, fwd, net)

	var totals [2]int64
	var egressNames [2]string
	for i, pol := range []bgpvn.EgressPolicy{bgpvn.ExitEarly, bgpvn.PathInformed} {
		eg, err := vn.SelectEgress(x, c.Addr, pol)
		if err != nil {
			return nil, err
		}
		tail, err := fwd.FromRouter(eg.Member, c.Addr)
		if err != nil {
			return nil, err
		}
		total := eg.BoneCost + tail.Cost
		totals[i] = total
		egressNames[i] = net.Router(eg.Member).Name
		label := "BGPvN only"
		if pol == bgpvn.PathInformed {
			label = "BGPvN + BGPv(N-1)"
		}
		t.AddRow(label, egressNames[i],
			fmt.Sprintf("%d", len(eg.BonePath)-1),
			fmt.Sprintf("%d", eg.BoneCost),
			fmt.Sprintf("%d", tail.Cost),
			fmt.Sprintf("%d", total))
	}

	wantX, wantY := net.Router(x).Name, net.Router(y).Name
	if egressNames[0] == wantX && egressNames[1] == wantY && totals[1] <= totals[0] {
		t.pass("last IPvN hop moved %s → %s; total cost %d → %d", wantX, wantY, totals[0], totals[1])
	} else {
		t.fail("egress %v totals %v", egressNames, totals)
	}
	return t, nil
}

// Fig4AdvByProxy reproduces Figure 4: participants A, B, C; destination Z
// behind non-participants. Without advertising-by-proxy the packet exits
// at A; with it, B and C advertise their BGPv(N-1) distance to Z into
// BGPvN and the packet rides the bone A→B→C before exiting beside Z.
func Fig4AdvByProxy(seed int64) (*Table, error) {
	t := &Table{
		ID:    "E4",
		Title: "Figure 4 — advertising-by-proxy",
		Claim: "with advertising-by-proxy the egress moves from A to C (1 AS hop from Z) and the underlay tail shortens",
		Columns: []string{
			"mode", "egress ISP", "bone path", "remaining AS hops", "tail cost", "total",
		},
	}
	b := topology.NewBuilder()
	dA := b.AddDomain("A")
	dB := b.AddDomain("B")
	dC := b.AddDomain("C")
	dM := b.AddDomain("M")
	dN := b.AddDomain("N")
	dZ := b.AddDomain("Z")
	rA := b.AddRouter(dA, "")
	rB := b.AddRouter(dB, "")
	rC := b.AddRouter(dC, "")
	rM := b.AddRouter(dM, "")
	rN := b.AddRouter(dN, "")
	rZ := b.AddRouter(dZ, "")
	b.Peer(rA, rB, 10)
	b.Peer(rB, rC, 10)
	b.Provide(rM, rA, 10)
	b.Provide(rM, rN, 10)
	b.Provide(rN, rZ, 10)
	b.Provide(rC, rZ, 10)
	z := b.AddHost(dZ, rZ, "hZ", 1)
	net, err := b.Build()
	if err != nil {
		return nil, err
	}
	igp := underlay.NewView(net)
	bgpSys := bgp.NewSystem(net)
	svc := anycast.NewService(net, bgpSys, igp)
	dep, err := svc.DeployOption1(0)
	if err != nil {
		return nil, err
	}
	for _, r := range []topology.RouterID{rA, rB, rC} {
		svc.AddMember(dep, r)
	}
	bone, err := vnbone.Build(svc, igp, dep, vnbone.Config{})
	if err != nil {
		return nil, err
	}
	fwd := forward.NewEngine(net, bgpSys, igp)
	vn := bgpvn.New(bone, fwd, net)

	var totals [2]int64
	var egress [2]string
	modes := []struct {
		label string
		pol   bgpvn.EgressPolicy
	}{
		{"without proxy", bgpvn.PathInformed},
		{"with proxy", bgpvn.ProxyInformed},
	}
	for i, m := range modes {
		eg, err := vn.SelectEgress(rA, z.Addr, m.pol)
		if err != nil {
			return nil, err
		}
		tail, err := fwd.FromRouter(eg.Member, z.Addr)
		if err != nil {
			return nil, err
		}
		rem, _ := fwd.DomainDistance(net.DomainOf(eg.Member), z.Addr)
		pathStr := ""
		for j, p := range eg.BonePath {
			if j > 0 {
				pathStr += "→"
			}
			pathStr += net.Domain(net.DomainOf(p)).Name
		}
		totals[i] = eg.BoneCost + tail.Cost
		egress[i] = net.Domain(net.DomainOf(eg.Member)).Name
		t.AddRow(m.label, egress[i], pathStr,
			fmt.Sprintf("%d", rem),
			fmt.Sprintf("%d", tail.Cost),
			fmt.Sprintf("%d", totals[i]))
	}

	if egress[0] == "A" && egress[1] == "C" && totals[1] <= totals[0] {
		t.pass("egress moved A → C; total cost %d → %d", totals[0], totals[1])
	} else {
		t.fail("egress %v totals %v", egress, totals)
	}
	return t, nil
}
