package experiments

import (
	"context"
	"fmt"
	"math/rand"

	"github.com/evolvable-net/evolve/internal/addr"
	"github.com/evolvable-net/evolve/internal/anycast"
	"github.com/evolvable-net/evolve/internal/core"
	"github.com/evolvable-net/evolve/internal/netsim"
	"github.com/evolvable-net/evolve/internal/routing/bgp"
	"github.com/evolvable-net/evolve/internal/routing/distvec"
	"github.com/evolvable-net/evolve/internal/routing/linkstate"
	"github.com/evolvable-net/evolve/internal/topology"
)

// GIAComparison is E16: the full §3.2 design space side by side — global
// non-aggregatable routes (option 1), default-ISP routes with and without
// peering advertisements (option 2), and GIA with and without its search
// extension.
func GIAComparison(seed int64) (*Table, error) {
	t := &Table{
		ID:    "E16",
		Title: "anycast design space: option 1 vs option 2 vs GIA",
		Claim: "all variants deliver every packet; GIA without search routes exactly like option 2, and GIA's search extension routes exactly like option 2's peering advertisements (the improvement both give is a usually-helpful heuristic)",
		Columns: []string{
			"variant", "success", "mean ingress cost", "global routes added",
		},
	}
	net, err := sweepNetwork(seed)
	if err != nil {
		return nil, err
	}
	asns := net.ASNs()
	// Stub-first participant set, as in E5.
	order := make([]topology.ASN, len(asns))
	for i, a := range asns {
		order[len(asns)-1-i] = a
	}
	participants := order[:len(asns)/2]
	anchor := order[0]

	type variant struct {
		name   string
		option anycast.Option
		widen  bool // peering adverts / GIA search
	}
	variants := []variant{
		{"option 1 (global routes)", anycast.Option1, false},
		{"option 2 (default routes)", anycast.Option2, false},
		{"option 2 + peering adverts", anycast.Option2, true},
		{"GIA (home fallback)", anycast.OptionGIA, false},
		{"GIA + search", anycast.OptionGIA, true},
	}

	// Each variant's Evolution is private; the shared topology is only
	// read. One job per variant.
	type result struct {
		okN  int
		mean float64
		grew int
	}
	jobs := make([]Job[result], len(variants))
	for i, v := range variants {
		v := v
		jobs[i] = Job[result]{Seed: seed + int64(i), Run: func(_ *rand.Rand) (result, error) {
			evo, err := core.New(net, core.Config{Option: v.option, DefaultAS: anchor})
			if err != nil {
				return result{}, err
			}
			baseTable := evo.BGP.TableSize(asns[0])
			for _, asn := range participants {
				evo.DeployDomain(asn, 0)
			}
			if v.widen {
				for _, asn := range participants {
					var nbrs []topology.ASN
					for _, nb := range net.Neighbors(asn) {
						nbrs = append(nbrs, nb.ASN)
					}
					if err := evo.Anycast.AdvertiseToNeighbors(evo.Dep, asn, nbrs...); err != nil {
						return result{}, err
					}
				}
			}
			var sum int64
			okN := 0
			for _, h := range net.Hosts {
				res, err := evo.Anycast.ResolveFromHost(h, evo.Dep.Addr)
				if err != nil {
					continue
				}
				okN++
				sum += res.Cost
			}
			return result{
				okN:  okN,
				mean: float64(sum) / float64(okN),
				grew: evo.BGP.TableSize(asns[0]) - baseTable,
			}, nil
		}}
	}
	results, err := RunParallel(context.Background(), CurrentWorkers(), jobs)
	if err != nil {
		return nil, err
	}

	means := map[string]float64{}
	okAll := true
	for i, v := range variants {
		r := results[i]
		if r.okN != len(net.Hosts) {
			okAll = false
		}
		means[v.name] = r.mean
		t.AddRow(v.name,
			fmt.Sprintf("%d/%d", r.okN, len(net.Hosts)),
			fmt.Sprintf("%.1f", r.mean),
			fmt.Sprintf("%d", r.grew))
	}

	// Mechanism identities are exact: GIA without search routes exactly
	// like option 2 (home-domain pull with en-route capture), and GIA's
	// search behaves exactly like option 2's peering advertisements.
	// The *improvement* from search/adverts is a heuristic (BGP picks
	// policy-best and host routes override aggregates, so occasionally a
	// client is redirected latency-worse): assert bounded regression.
	giaEqualsOpt2 := means["GIA (home fallback)"] == means["option 2 (default routes)"]
	searchEqualsAdverts := means["GIA + search"] == means["option 2 + peering adverts"]
	searchEffect := "improved proximity"
	if means["GIA + search"] > means["GIA (home fallback)"] {
		searchEffect = fmt.Sprintf("REGRESSED %.0f%% here (heuristic; policy ≠ latency)",
			(means["GIA + search"]/means["GIA (home fallback)"]-1)*100)
	}
	if okAll && giaEqualsOpt2 && searchEqualsAdverts {
		t.pass("100%% delivery everywhere; GIA ≡ option 2 (%.1f); GIA+search ≡ option 2+adverts (%.1f) — search %s",
			means["GIA (home fallback)"], means["GIA + search"], searchEffect)
	} else {
		t.fail("ok=%v giaEqualsOpt2=%v searchEqualsAdverts=%v means=%v",
			okAll, giaEqualsOpt2, searchEqualsAdverts, means)
	}
	return t, nil
}

// ConvergenceDynamics is E17: the event-driven cost of the intra-domain
// protocols the architecture leans on — simulated convergence time and
// message counts for cold start and for reconvergence after a link
// failure, link-state vs distance-vector, across domain sizes.
func ConvergenceDynamics(seed int64) (*Table, error) {
	t := &Table{
		ID:    "E17",
		Title: "IGP convergence dynamics (event-driven)",
		Claim: "both IGPs converge from cold start and re-converge after failures; message cost grows with domain size, link-state flooding scaling with links × routers",
		Columns: []string{
			"protocol", "routers", "phase", "sim time", "messages",
		},
	}
	sizes := []int{8, 16, 32}

	// Each (protocol, size) block runs its own private event engine, and
	// the BGP-session blocks build their own topologies — all independent,
	// so the blocks fan out as jobs; rows come back in the serial order.
	type block struct {
		rows [][]string
		ok   bool
		// coldMsgs is the link-state cold-start message count (growth
		// check); zero for other protocols.
		coldMsgs uint64
	}
	ringEdges := func(n int) (out []struct {
		a, b int
		w    int64
	}) {
		// Ring + near- and far-chords, same topology for both protocols.
		// The near-chords keep failure detours short: RIP's Infinity of
		// 16 cannot express the 2·(n−1) metric of walking a large ring
		// the long way round (a genuine distance-vector limitation the
		// paper's intra-domain-only use of RIP sidesteps).
		for i := 0; i < n; i++ {
			out = append(out, struct {
				a, b int
				w    int64
			}{i, (i + 1) % n, 2})
			out = append(out, struct {
				a, b int
				w    int64
			}{i, (i + 2) % n, 3})
			if i%4 == 0 {
				out = append(out, struct {
					a, b int
					w    int64
				}{i, (i + n/2) % n, 5})
			}
		}
		return out
	}

	var jobs []Job[block]
	var lsIdx []int // job index of each link-state block, in size order
	for _, n := range sizes {
		n := n
		lsIdx = append(lsIdx, len(jobs))
		jobs = append(jobs, Job[block]{Seed: seed, Run: func(_ *rand.Rand) (block, error) {
			b := block{ok: true}
			eng := netsim.NewEngine()
			fab := netsim.NewFabric(eng)
			adj := map[int][]linkstate.Link{}
			for _, e := range ringEdges(n) {
				adj[e.a] = append(adj[e.a], linkstate.Link{To: e.b, Cost: e.w})
				adj[e.b] = append(adj[e.b], linkstate.Link{To: e.a, Cost: e.w})
			}
			dom := linkstate.NewDomain(fab, linkstate.ModeExplicitList, adj)
			dom.Start()
			eng.Run(0)
			coldTime, coldMsgs := eng.Now(), fab.Sent
			if dom.Routers[0].DistanceTo(n/2) <= 0 {
				b.ok = false
			}
			b.rows = append(b.rows, []string{"link-state", fmt.Sprintf("%d", n), "cold start",
				coldTime.String(), fmt.Sprintf("%d", coldMsgs)})
			b.coldMsgs = coldMsgs

			// Fail the ring link 0–1 and re-converge.
			dom.Routers[0].SetLinkCost(1, -1)
			dom.Routers[1].SetLinkCost(0, -1)
			fab.FailLink(0, 1)
			before := fab.Sent
			eng.Run(0)
			b.rows = append(b.rows, []string{"link-state", fmt.Sprintf("%d", n), "after failure",
				eng.Now().String(), fmt.Sprintf("%d", fab.Sent-before)})
			if dom.Routers[0].DistanceTo(1) <= 0 {
				b.ok = false // detour must exist around the ring
			}
			return b, nil
		}})
		jobs = append(jobs, Job[block]{Seed: seed, Run: func(_ *rand.Rand) (block, error) {
			b := block{ok: true}
			eng := netsim.NewEngine()
			fab := netsim.NewFabric(eng)
			adj := map[int]map[int]int{}
			loops := map[int]addr.V4{}
			for i := 0; i < n; i++ {
				adj[i] = map[int]int{}
				loops[i] = addr.V4FromOctets(10, 9, byte(i>>8), byte(i))
			}
			for _, e := range ringEdges(n) {
				adj[e.a][e.b] = int(e.w)
				adj[e.b][e.a] = int(e.w)
			}
			dom := distvec.NewDomain(fab, loops, adj)
			dom.Start()
			eng.Run(0)
			if dom.Routers[0].DistanceTo(loops[n/2]) >= distvec.Infinity {
				b.ok = false
			}
			b.rows = append(b.rows, []string{"distance-vector", fmt.Sprintf("%d", n), "cold start",
				eng.Now().String(), fmt.Sprintf("%d", fab.Sent)})

			dom.Routers[0].SetLinkDown(1)
			dom.Routers[1].SetLinkDown(0)
			fab.FailLink(0, 1)
			before := fab.Sent
			eng.Run(0)
			b.rows = append(b.rows, []string{"distance-vector", fmt.Sprintf("%d", n), "after failure",
				eng.Now().String(), fmt.Sprintf("%d", fab.Sent-before)})
			if dom.Routers[0].DistanceTo(loops[1]) >= distvec.Infinity {
				b.ok = false
			}
			return b, nil
		}})
	}
	// Inter-domain: event-driven BGP speakers over Barabási–Albert
	// internets — cold start, then an anycast origination rippling in.
	for _, nAS := range []int{10, 20, 40} {
		nAS := nAS
		jobs = append(jobs, Job[block]{Seed: seed, Run: func(_ *rand.Rand) (block, error) {
			b := block{ok: true}
			net, err := topology.BarabasiAlbert(nAS, 2, topology.GenConfig{
				Seed: seed, RoutersPerDomain: 1,
			})
			if err != nil {
				return block{}, err
			}
			eng := netsim.NewEngine()
			fab := netsim.NewFabric(eng)
			ss := bgp.NewSessionSystem(net, fab)
			quiet, converged := ss.RunToConvergence(0)
			if !converged {
				b.ok = false
			}
			cold := ss.TotalUpdates()
			b.rows = append(b.rows, []string{"BGP (sessions)", fmt.Sprintf("%d AS", nAS), "cold start",
				quiet.String(), fmt.Sprintf("%d", cold)})
			// A new anycast origination at a leaf: incremental convergence.
			a, err := addr.Option1Address(0)
			if err != nil {
				return block{}, err
			}
			leaf := net.ASNs()[len(net.ASNs())-1]
			start := eng.Now()
			ss.Speakers[leaf].Originate(addr.HostPrefix(a))
			quiet, converged = ss.RunToConvergence(0)
			if !converged {
				b.ok = false
			}
			b.rows = append(b.rows, []string{"BGP (sessions)", fmt.Sprintf("%d AS", nAS), "anycast origination",
				(quiet - start).String(), fmt.Sprintf("%d", ss.TotalUpdates()-cold)})
			// Everyone must hold the anycast route (provider tree reachability).
			for _, asn := range net.ASNs() {
				if _, ok := ss.Speakers[asn].Best(addr.HostPrefix(a)); !ok {
					b.ok = false
				}
			}
			return b, nil
		}})
	}

	blocks, err := RunParallel(context.Background(), CurrentWorkers(), jobs)
	if err != nil {
		return nil, err
	}
	okAll := true
	lastCold := map[string]uint64{}
	for _, b := range blocks {
		for _, row := range b.rows {
			t.AddRow(row...)
		}
		if !b.ok {
			okAll = false
		}
	}
	for i, n := range sizes {
		lastCold[fmt.Sprintf("ls-%d", n)] = blocks[lsIdx[i]].coldMsgs
	}

	// Message cost must grow with size for link-state cold starts.
	growing := lastCold["ls-8"] < lastCold["ls-16"] && lastCold["ls-16"] < lastCold["ls-32"]
	if okAll && growing {
		t.pass("all runs converged (cold and post-failure); link-state cold-start messages grew %d → %d → %d",
			lastCold["ls-8"], lastCold["ls-16"], lastCold["ls-32"])
	} else {
		t.fail("okAll=%v growing=%v (%v)", okAll, growing, lastCold)
	}
	return t, nil
}
