// Worker-pool fan-out for the sweep-style experiments. The deployment /
// convergence / failover sweeps are embarrassingly parallel across their
// (variant × parameter) grid; RunParallel gives them a deterministic
// harness: results come back in job order and every job derives its
// randomness from its own seeded *rand.Rand, so the output is identical
// at any worker count.
package experiments

import (
	"context"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
)

// Job is one unit of sweep work. Run receives a private *rand.Rand seeded
// with Seed, so concurrent jobs never share a randomness source and a
// job's outcome is independent of scheduling.
type Job[T any] struct {
	Seed int64
	Run  func(rng *rand.Rand) (T, error)
}

// workers is the package-wide worker count for experiment sweeps
// (0 = GOMAXPROCS). It is a package variable because the Runner
// signature — func(seed int64) (*Table, error) — is fixed by cmd/figgen
// and the bench harness.
var workers atomic.Int64

// SetWorkers sets the worker count used by the sweep experiments;
// n ≤ 0 restores the default (GOMAXPROCS).
func SetWorkers(n int) {
	if n < 0 {
		n = 0
	}
	workers.Store(int64(n))
}

// CurrentWorkers returns the effective worker count.
func CurrentWorkers() int {
	if n := int(workers.Load()); n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// RunParallel executes jobs on a pool of the given size (≤ 0 means
// GOMAXPROCS) and returns their results in job order. The first error (by
// lowest job index) aborts the sweep: queued jobs are skipped, in-flight
// ones finish, and ctx cancellation is honoured between jobs.
func RunParallel[T any](ctx context.Context, poolSize int, jobs []Job[T]) ([]T, error) {
	if poolSize <= 0 {
		poolSize = runtime.GOMAXPROCS(0)
	}
	if poolSize > len(jobs) {
		poolSize = len(jobs)
	}
	results := make([]T, len(jobs))
	errs := make([]error, len(jobs))
	if poolSize <= 1 {
		for i, j := range jobs {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			results[i], errs[i] = j.Run(rand.New(rand.NewSource(j.Seed)))
			if errs[i] != nil {
				return nil, errs[i]
			}
		}
		return results, nil
	}
	var (
		next   atomic.Int64
		failed atomic.Bool
		wg     sync.WaitGroup
	)
	for w := 0; w < poolSize; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if failed.Load() || ctx.Err() != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= len(jobs) {
					return
				}
				results[i], errs[i] = jobs[i].Run(rand.New(rand.NewSource(jobs[i].Seed)))
				if errs[i] != nil {
					failed.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}
