package experiments

import (
	"fmt"

	"github.com/evolvable-net/evolve/internal/addr"
	"github.com/evolvable-net/evolve/internal/anycast"
	"github.com/evolvable-net/evolve/internal/core"
	"github.com/evolvable-net/evolve/internal/econ"
	"github.com/evolvable-net/evolve/internal/netsim"
	"github.com/evolvable-net/evolve/internal/routing/distvec"
	"github.com/evolvable-net/evolve/internal/routing/linkstate"
	"github.com/evolvable-net/evolve/internal/topology"
)

// AdoptionDynamics is E9: the §2.1 incentive story — with universal
// access a virtuous cycle completes adoption; without it the IP-Multicast
// chicken-and-egg stall recurs.
func AdoptionDynamics(seed int64) (*Table, error) {
	t := &Table{
		ID:    "E9",
		Title: "adoption dynamics with and without universal access",
		Claim: "with UA a single first mover triggers a virtuous cycle that completes adoption; without UA demand never takes off and deployment collapses",
		Columns: []string{
			"scenario", "round", "demand", "reach", "deployed ISPs",
		},
	}
	net, err := sweepNetwork(seed)
	if err != nil {
		return nil, err
	}
	sampleRounds := []int{0, 10, 25, 50, 119}
	var outcomes [2]econ.Outcome
	for i, ua := range []bool{true, false} {
		m, err := econ.NewModelFromNetwork(econ.Params{UniversalAccess: ua}, net)
		if err != nil {
			return nil, err
		}
		hist := m.Run()
		name := "with UA"
		if !ua {
			name = "without UA"
		}
		for _, r := range sampleRounds {
			if r >= len(hist) {
				r = len(hist) - 1
			}
			row := hist[r]
			t.AddRow(name, fmt.Sprintf("%d", row.T),
				fmt.Sprintf("%.3f", row.Demand),
				fmt.Sprintf("%.3f", row.Reach),
				fmt.Sprintf("%d/%d", row.DeployedCount, len(m.ISPs)))
		}
		outcomes[i] = m.Outcome()
	}
	if outcomes[0].Completed && !outcomes[1].Completed && outcomes[1].Stalled {
		t.pass("UA completed (demand %.2f, %d ISPs); without UA stalled (demand %.3f, %d ISPs)",
			outcomes[0].FinalDemand, outcomes[0].FinalDeployed,
			outcomes[1].FinalDemand, outcomes[1].FinalDeployed)
	} else {
		t.fail("outcomes: UA %+v, non-UA %+v", outcomes[0], outcomes[1])
	}
	return t, nil
}

// SelfAddressing is E10: the §3.3.2 temporary self-addressing scheme —
// uniqueness, embedded underlay extraction, and relabelling on adoption.
func SelfAddressing(seed int64) (*Table, error) {
	t := &Table{
		ID:    "E10",
		Title: "self-addressing for hosts of non-participant providers",
		Claim: "every such host derives a unique temporary IPvN address embedding its IPv(N-1) address, and relabels to a native address when its provider adopts",
		Columns: []string{
			"check", "hosts", "result",
		},
	}
	net, err := sweepNetwork(seed)
	if err != nil {
		return nil, err
	}
	evo, err := core.New(net, core.Config{Option: anycast.Option2, DefaultAS: net.ASNs()[0]})
	if err != nil {
		return nil, err
	}
	evo.DeployDomain(net.ASNs()[0], 0)

	seen := map[addr.VN]bool{}
	unique, embeds, flagged := true, true, true
	var selfCount int
	for _, h := range net.Hosts {
		v, err := evo.HostVNAddr(h)
		if err != nil {
			return nil, err
		}
		if h.Domain == net.ASNs()[0] {
			continue // natively addressed
		}
		selfCount++
		if seen[v] {
			unique = false
		}
		seen[v] = true
		if !v.IsSelf() {
			flagged = false
		}
		if u, ok := v.Underlay(); !ok || u != h.Addr {
			embeds = false
		}
	}
	t.AddRow("self-flag set", fmt.Sprintf("%d", selfCount), fmt.Sprintf("%v", flagged))
	t.AddRow("addresses unique", fmt.Sprintf("%d", selfCount), fmt.Sprintf("%v", unique))
	t.AddRow("underlay embedded", fmt.Sprintf("%d", selfCount), fmt.Sprintf("%v", embeds))

	// Relabelling: a stub adopts; all its hosts switch to native.
	stub := net.DomainByName("S0.0")
	evo.DeployDomain(stub.ASN, 1)
	relabel := true
	for _, h := range net.HostsIn(stub.ASN) {
		v, err := evo.HostVNAddr(h)
		if err != nil {
			return nil, err
		}
		if v.IsSelf() || !addr.DomainVNPrefix(int(stub.ASN)).Contains(v) {
			relabel = false
		}
	}
	t.AddRow("relabel on adoption", fmt.Sprintf("%d", len(net.HostsIn(stub.ASN))), fmt.Sprintf("%v", relabel))

	if unique && embeds && flagged && relabel {
		t.pass("all %d self-addresses unique with embedded underlay; relabelling verified", selfCount)
	} else {
		t.fail("flag=%v unique=%v embed=%v relabel=%v", flagged, unique, embeds, relabel)
	}
	return t, nil
}

// IntraDomainAnycast is E12: the §3.2 intra-domain anycast extensions —
// link-state with a high-cost virtual link, link-state with explicit
// listing, and distance-vector with a zero-distance advertisement — all
// deliver to the closest member; member discovery works in the link-state
// modes and (as the paper notes) not under distance-vector.
func IntraDomainAnycast(seed int64) (*Table, error) {
	t := &Table{
		ID:    "E12",
		Title: "intra-domain anycast protocol variants",
		Claim: "every variant routes to the closest IPvN router; link-state permits member discovery, distance-vector does not",
		Columns: []string{
			"variant", "closest member found", "dist from r0", "member discovery",
		},
	}
	// Shared 6-router line domain: members at routers 1 and 4; resolving
	// from router 0 must find router 1 at distance 1.
	a, err := addr.Option1Address(0)
	if err != nil {
		return nil, err
	}
	okAll := true

	for _, mode := range []linkstate.Mode{linkstate.ModeHighCostLink, linkstate.ModeExplicitList} {
		eng := netsim.NewEngine()
		fab := netsim.NewFabric(eng)
		adj := map[int][]linkstate.Link{}
		for i := 0; i < 6; i++ {
			if i > 0 {
				adj[i] = append(adj[i], linkstate.Link{To: i - 1, Cost: 1})
			}
			if i < 5 {
				adj[i] = append(adj[i], linkstate.Link{To: i + 1, Cost: 1})
			}
		}
		dom := linkstate.NewDomain(fab, mode, adj)
		dom.Start()
		eng.Run(0)
		dom.Routers[1].ServeAnycast(a)
		dom.Routers[4].ServeAnycast(a)
		eng.Run(0)
		member, dist, _, ok := dom.Routers[0].ResolveAnycast(a)
		members := dom.Routers[0].AnycastMembers(a)
		name := "link-state high-cost link"
		if mode == linkstate.ModeExplicitList {
			name = "link-state explicit listing"
		}
		discovery := fmt.Sprintf("yes (%d members)", len(members))
		t.AddRow(name, fmt.Sprintf("%v (router %d)", ok && member == 1, member),
			fmt.Sprintf("%d", dist), discovery)
		if !ok || member != 1 || dist != 1 || len(members) != 2 {
			okAll = false
		}
	}

	// Distance-vector.
	eng := netsim.NewEngine()
	fab := netsim.NewFabric(eng)
	adjDV := map[int]map[int]int{}
	loops := map[int]addr.V4{}
	for i := 0; i < 6; i++ {
		adjDV[i] = map[int]int{}
		loops[i] = addr.V4FromOctets(10, 0, 0, byte(i+1))
	}
	for i := 0; i+1 < 6; i++ {
		adjDV[i][i+1] = 1
		adjDV[i+1][i] = 1
	}
	dom := distvec.NewDomain(fab, loops, adjDV)
	dom.Start()
	eng.Run(0)
	dom.Routers[1].ServeAnycast(a)
	dom.Routers[4].ServeAnycast(a)
	eng.Run(0)
	e, ok := dom.Routers[0].Lookup(a)
	t.AddRow("distance-vector dist-0", fmt.Sprintf("%v (nexthop %d)", ok && e.Metric == 1, e.NextHop),
		fmt.Sprintf("%d", e.Metric), "no (protocol limitation)")
	if !ok || e.Metric != 1 {
		okAll = false
	}

	if okAll {
		t.pass("all three variants resolved the closest member at distance 1; discovery only under link-state")
	} else {
		t.fail("a variant failed to resolve the closest member")
	}
	return t, nil
}

// unused reference keepers for topology import (used via sweepNetwork).
var _ = topology.ASN(0)
