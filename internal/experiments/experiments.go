// Package experiments contains the reproduction harness: one named,
// parameterised experiment per figure of the paper plus the quantitative
// sweeps derived from its design discussion (see DESIGN.md §4 for the
// index). Each experiment returns a Table whose rows are the data the
// corresponding figure/claim illustrates, and a computed verdict checking
// the paper's qualitative claim against the measured outcome.
//
// The experiments are deliberately deterministic: a seed fully fixes the
// topology, deployment schedule and workload, so EXPERIMENTS.md can quote
// exact numbers.
package experiments

import (
	"fmt"
	"strings"
)

// Table is one experiment's output.
type Table struct {
	// ID is the experiment identifier from DESIGN.md (e.g. "E1").
	ID string
	// Title names the experiment.
	Title string
	// Claim quotes the paper's qualitative claim under test.
	Claim string
	// Columns and Rows hold the data.
	Columns []string
	Rows    [][]string
	// Verdict summarises the check of Claim against the data.
	Verdict string
	// OK reports whether the claim held.
	OK bool
	// Traces holds sampled per-hop path traces when trace sampling is on
	// (SetTraceSample > 0); empty otherwise. Deliberately NOT rendered by
	// String/Markdown — the tabular output stays byte-identical whether
	// or not sampling ran, so regenerated EXPERIMENTS.md and the
	// determinism checks are unaffected. cmd/figgen prints them after
	// each table under -trace-sample.
	Traces []string
}

// AddRow appends one formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// pass/fail set the verdict.
func (t *Table) pass(format string, args ...any) {
	t.OK = true
	t.Verdict = "PASS: " + fmt.Sprintf(format, args...)
}

func (t *Table) fail(format string, args ...any) {
	t.OK = false
	t.Verdict = "FAIL: " + fmt.Sprintf(format, args...)
}

// String renders an aligned plain-text table.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	if t.Claim != "" {
		fmt.Fprintf(&b, "claim: %s\n", t.Claim)
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	if t.Verdict != "" {
		fmt.Fprintf(&b, "%s\n", t.Verdict)
	}
	return b.String()
}

// Markdown renders the table as GitHub-flavoured markdown, for
// EXPERIMENTS.md regeneration.
func (t *Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "## %s — %s\n\n", t.ID, t.Title)
	if t.Claim != "" {
		fmt.Fprintf(&b, "**Claim.** %s\n\n", t.Claim)
	}
	b.WriteString("|")
	for _, c := range t.Columns {
		fmt.Fprintf(&b, " %s |", c)
	}
	b.WriteString("\n|")
	for range t.Columns {
		b.WriteString("---|")
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		b.WriteString("|")
		for _, cell := range row {
			fmt.Fprintf(&b, " %s |", cell)
		}
		b.WriteByte('\n')
	}
	if t.Verdict != "" {
		fmt.Fprintf(&b, "\n**%s**\n", t.Verdict)
	}
	return b.String()
}

// Runner is the signature every experiment exposes.
type Runner func(seed int64) (*Table, error)

// All lists every experiment in id order for cmd/figgen and the bench
// harness.
func All() []struct {
	ID  string
	Run Runner
} {
	return []struct {
		ID  string
		Run Runner
	}{
		{"E1", Fig1SeamlessSpread},
		{"E2", Fig2DefaultRoutes},
		{"E3", Fig3EgressSelection},
		{"E4", Fig4AdvByProxy},
		{"E5", UAStretchVsDeployment},
		{"E6", RedirectorComparison},
		{"E7", AnycastStateGrowth},
		{"E8", VNBoneConstruction},
		{"E9", AdoptionDynamics},
		{"E10", SelfAddressing},
		{"E11", LiveOverlay},
		{"E12", IntraDomainAnycast},
		{"E13", FailureResilience},
		{"E14", EndhostRegistration},
		{"E15", ProviderChoice},
		{"E16", GIAComparison},
		{"E17", ConvergenceDynamics},
		{"E18", AnycastFailoverDynamics},
		{"E19", MulticastPayoff},
		{"E20", DefaultDomainDependence},
	}
}
