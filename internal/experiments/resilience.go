package experiments

import (
	"fmt"

	"github.com/evolvable-net/evolve/internal/anycast"
	"github.com/evolvable-net/evolve/internal/core"
	"github.com/evolvable-net/evolve/internal/topology"
)

// FailureResilience is E13: anycast redirection self-heals around link
// failures with zero endhost involvement — the robustness corollary of
// network-level redirection that application-level designs (E6) lack.
func FailureResilience(seed int64) (*Table, error) {
	t := &Table{
		ID:    "E13",
		Title: "anycast self-healing under link failures",
		Claim: "after an inter-domain link failure, every client still reaches an IPvN router (over the detour); repair restores the original paths; the endhost never acts",
		Columns: []string{
			"phase", "success", "mean ingress cost", "ingress moved (hosts)",
		},
	}
	// Two participant providers P1, P2 above a shared transit T; client
	// stubs below T. Failing T's link to P1 forces re-capture into P2.
	b := topology.NewBuilder()
	dT := b.AddDomain("T")
	dP1 := b.AddDomain("P1")
	dP2 := b.AddDomain("P2")
	rT := b.AddRouters(dT, 2)
	rP1 := b.AddRouter(dP1, "")
	rP2 := b.AddRouter(dP2, "")
	b.IntraLink(rT[0], rT[1], 2)
	b.Provide(rP1, rT[0], 10) // P1 provides T (cheap side)
	b.Provide(rP2, rT[1], 20) // P2 provides T
	var clients []*topology.Host
	for i := 0; i < 4; i++ {
		dS := b.AddDomain(fmt.Sprintf("S%d", i))
		rS := b.AddRouter(dS, "")
		b.Provide(rT[i%2], rS, 10)
		clients = append(clients, b.AddHost(dS, rS, fmt.Sprintf("c%d", i), 1))
	}
	net, err := b.Build()
	if err != nil {
		return nil, err
	}
	evo, err := core.New(net, core.Config{Option: anycast.Option1})
	if err != nil {
		return nil, err
	}
	evo.DeployRouter(rP1)
	evo.DeployRouter(rP2)

	measure := func(phase string, baseline map[topology.HostID]topology.RouterID) (map[topology.HostID]topology.RouterID, error) {
		landing := map[topology.HostID]topology.RouterID{}
		okN, moved := 0, 0
		var costSum int64
		for _, h := range clients {
			res, err := evo.Anycast.ResolveFromHost(h, evo.AnycastAddr())
			if err != nil {
				continue
			}
			okN++
			costSum += res.Cost
			landing[h.ID] = res.Member
			if baseline != nil && baseline[h.ID] != res.Member {
				moved++
			}
		}
		mean := "-"
		if okN > 0 {
			mean = fmt.Sprintf("%.1f", float64(costSum)/float64(okN))
		}
		movedStr := "-"
		if baseline != nil {
			movedStr = fmt.Sprintf("%d/%d", moved, len(clients))
		}
		t.AddRow(phase, fmt.Sprintf("%d/%d", okN, len(clients)), mean, movedStr)
		if okN != len(clients) {
			return landing, fmt.Errorf("%s: only %d/%d clients redirected", phase, okN, len(clients))
		}
		return landing, nil
	}

	before, err := measure("healthy", nil)
	if err != nil {
		return nil, err
	}
	link, ok := evo.FailInterLink(rP1, rT[0])
	if !ok {
		return nil, fmt.Errorf("P1–T link not found")
	}
	during, err := measure("P1–T link failed", before)
	if err != nil {
		return nil, err
	}
	// Everyone must now land in P2.
	movedAll := true
	for _, m := range during {
		if net.DomainOf(m) != dP2.ASN {
			movedAll = false
		}
	}
	evo.RestoreInterLink(link)
	after, err := measure("repaired", before)
	if err != nil {
		return nil, err
	}
	restored := true
	for id, m := range after {
		if before[id] != m {
			restored = false
		}
	}

	if movedAll && restored {
		t.pass("all clients re-landed in P2 during the failure and returned to their original ingress after repair, with no endhost involvement")
	} else {
		t.fail("movedAll=%v restored=%v", movedAll, restored)
	}
	return t, nil
}
