package experiments

import (
	"context"
	"fmt"
	"math/rand"

	"github.com/evolvable-net/evolve/internal/addr"
	"github.com/evolvable-net/evolve/internal/netsim"
	"github.com/evolvable-net/evolve/internal/routing/bgp"
	"github.com/evolvable-net/evolve/internal/topology"
)

// AnycastFailoverDynamics is E18: the paper calls anycast redirection
// "seamless", which is true at the fixpoint; this experiment quantifies
// the gap — the simulated time and UPDATE traffic between a participant's
// withdrawal and the moment every AS has re-homed onto a surviving
// origin, using the event-driven BGP sessions.
func AnycastFailoverDynamics(seed int64) (*Table, error) {
	t := &Table{
		ID:    "E18",
		Title: "anycast failover convergence (event-driven BGP)",
		Claim: "after an origin withdraws, every AS re-homes to the surviving origin; the incremental convergence costs far fewer updates than cold start",
		Columns: []string{
			"internet", "phase", "sim time", "updates", "re-homed",
		},
	}
	// Each internet size runs its own event engine and topology — fully
	// independent, one job per size.
	sizes := []int{10, 20, 40}
	type result struct {
		rows [][]string
		ok   bool
	}
	jobs := make([]Job[result], len(sizes))
	for i, nAS := range sizes {
		nAS := nAS
		jobs[i] = Job[result]{Seed: seed, Run: func(_ *rand.Rand) (result, error) {
			r := result{ok: true}
			net, err := topology.BarabasiAlbert(nAS, 2, topology.GenConfig{
				Seed: seed, RoutersPerDomain: 1,
			})
			if err != nil {
				return result{}, err
			}
			eng := netsim.NewEngine()
			fab := netsim.NewFabric(eng)
			ss := bgp.NewSessionSystem(net, fab)
			quiet, converged := ss.RunToConvergence(0)
			if !converged {
				r.ok = false
			}
			coldUpdates := ss.TotalUpdates()
			r.rows = append(r.rows, []string{fmt.Sprintf("%d AS", nAS), "cold start",
				quiet.String(), fmt.Sprintf("%d", coldUpdates), "-"})

			// Two anycast origins: the hub and a leaf.
			a, err := addr.Option1Address(0)
			if err != nil {
				return result{}, err
			}
			hp := addr.HostPrefix(a)
			hub := net.ASNs()[0]
			leaf := net.ASNs()[len(net.ASNs())-1]
			ss.Speakers[hub].Originate(hp)
			ss.Speakers[leaf].Originate(hp)
			if _, ok := ss.RunToConvergence(0); !ok {
				r.ok = false
			}
			preUpdates := ss.TotalUpdates()

			// The leaf origin withdraws (its ISP un-deploys).
			start := eng.Now()
			ss.Speakers[leaf].Withdraw(hp)
			quiet, converged = ss.RunToConvergence(0)
			if !converged {
				r.ok = false
			}
			failTime := quiet - start
			failUpdates := ss.TotalUpdates() - preUpdates

			// Every AS must now route the anycast address to the hub.
			rehomed := 0
			for _, asn := range net.ASNs() {
				best, ok := ss.Speakers[asn].Best(hp)
				if !ok {
					continue
				}
				origin := best.Origin()
				if origin == -1 {
					origin = asn
				}
				if origin == hub {
					rehomed++
				}
			}
			r.rows = append(r.rows, []string{fmt.Sprintf("%d AS", nAS), "origin withdrawal",
				failTime.String(), fmt.Sprintf("%d", failUpdates),
				fmt.Sprintf("%d/%d", rehomed, nAS)})
			if rehomed != nAS {
				r.ok = false
			}
			if failUpdates >= coldUpdates {
				r.ok = false
			}
			return r, nil
		}}
	}
	results, err := RunParallel(context.Background(), CurrentWorkers(), jobs)
	if err != nil {
		return nil, err
	}
	okAll := true
	for _, r := range results {
		for _, row := range r.rows {
			t.AddRow(row...)
		}
		if !r.ok {
			okAll = false
		}
	}
	if okAll {
		t.pass("every AS re-homed to the surviving origin; incremental convergence stayed well below cold-start cost")
	} else {
		t.fail("a withdrawal left stale or missing anycast routes, or cost more than cold start")
	}
	return t, nil
}
