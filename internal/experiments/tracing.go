package experiments

import (
	"fmt"
	"sync/atomic"

	"github.com/evolvable-net/evolve/internal/core"
	"github.com/evolvable-net/evolve/internal/topology"
	"github.com/evolvable-net/evolve/internal/trace"
)

// traceSample is the number of per-hop path traces trace-aware
// experiments sample into Table.Traces. Zero (the default) disables
// sampling entirely; experiments then never touch the tracing machinery
// and their hot paths stay on the nil-tracer fast path.
var traceSample atomic.Int64

// SetTraceSample sets how many per-hop path traces each trace-aware
// experiment samples into its Table.Traces (0 disables, the default).
// Sampling never alters an experiment's rows or verdict: traced
// deliveries run after the measured workload, on deterministic host
// pairs, and land in a field the table renderers ignore.
func SetTraceSample(n int) {
	if n < 0 {
		n = 0
	}
	traceSample.Store(int64(n))
}

// TraceSample returns the current sampling count.
func TraceSample() int { return int(traceSample.Load()) }

// sampleTraces re-sends between up to TraceSample() cross-AS host pairs
// of evo's network with a per-delivery trace.Recorder and appends the
// formatted paths to t.Traces. Pair choice is deterministic: for each
// host in network order, the next host in a different domain. label
// names the scenario the traces come from (experiments often probe
// several configurations; only one is sampled).
func sampleTraces(t *Table, label string, evo *core.Evolution, net *topology.Network) {
	n := TraceSample()
	if n <= 0 || evo == nil || net == nil {
		return
	}
	rec := trace.NewRecorder()
	count := 0
	for i := 0; count < n && i < len(net.Hosts); i++ {
		src := net.Hosts[i]
		var dst *topology.Host
		for j := i + 1; j < len(net.Hosts); j++ {
			if net.Hosts[j].Domain != src.Domain {
				dst = net.Hosts[j]
				break
			}
		}
		if dst == nil {
			continue
		}
		rec.Reset()
		header := fmt.Sprintf("%s: %s (%s) → %s (%s)",
			label,
			src.Name, net.Domain(src.Domain).Name,
			dst.Name, net.Domain(dst.Domain).Name)
		d, err := evo.SendTraced(src, dst, []byte("trace-sample"), rec)
		if err != nil {
			header += fmt.Sprintf("  [FAILED: %v]", err)
		} else {
			header += fmt.Sprintf("  [cost %d, stretch %.3f, vN hops %d]",
				d.TotalCost, d.Stretch, d.VNHops)
		}
		t.Traces = append(t.Traces, header+"\n"+evo.FormatTrace(rec.Events()))
		count++
	}
}
