package experiments

import (
	"context"
	"fmt"
	"math/rand"

	"github.com/evolvable-net/evolve/internal/anycast"
	"github.com/evolvable-net/evolve/internal/core"
	"github.com/evolvable-net/evolve/internal/topology"
)

// DefaultDomainDependence is E20: the paper's own admitted failing of
// option 2 — "the default provider owns the anycast address and receives
// a larger than normal share of IPvN traffic" — taken to its limit: what
// happens when the default domain stops serving? Clients whose paths meet
// no other participant lose IPvN entirely under option 2; option 1 (and
// option 2 widened by peering advertisements) survive the default's
// disappearance.
func DefaultDomainDependence(seed int64) (*Table, error) {
	t := &Table{
		ID:    "E20",
		Title: "option 2's default-domain dependence (the paper's admitted failing)",
		Claim: "when the default domain withdraws, option-2 clients with no en-route participant dead-end; option 1 and peering-widened option 2 keep universal access",
		Columns: []string{
			"variant", "default serving", "delivery success", "failed clients",
		},
	}
	// D (default) provides X and Q; Q provides Z. Participants: D and Q.
	// X's path to the anycast meets no participant except D itself.
	build := func() (*topology.Network, error) {
		b := topology.NewBuilder()
		dD := b.AddDomain("D")
		dQ := b.AddDomain("Q")
		dX := b.AddDomain("X")
		dZ := b.AddDomain("Z")
		rD := b.AddRouters(dD, 2)
		rQ := b.AddRouters(dQ, 2)
		rX := b.AddRouter(dX, "")
		rZ := b.AddRouter(dZ, "")
		b.IntraLink(rD[0], rD[1], 2)
		b.IntraLink(rQ[0], rQ[1], 2)
		b.Provide(rD[0], rX, 10)
		b.Provide(rD[1], rQ[0], 10)
		b.Provide(rQ[1], rZ, 10)
		b.AddHost(dX, rX, "hX", 1)
		b.AddHost(dZ, rZ, "hZ", 1)
		return b.Build()
	}

	type variant struct {
		name   string
		option anycast.Option
		widen  bool
	}
	variants := []variant{
		{"option 2", anycast.Option2, false},
		{"option 2 + peering adverts", anycast.Option2, true},
		{"option 1", anycast.Option1, false},
	}

	// Each variant builds its own private network — fully independent, one
	// job per variant.
	type result struct {
		rows [][]string
		ok   bool
	}
	jobs := make([]Job[result], len(variants))
	for i, v := range variants {
		v := v
		jobs[i] = Job[result]{Seed: seed + int64(i), Run: func(_ *rand.Rand) (result, error) {
			r := result{ok: true}
			net, err := build()
			if err != nil {
				return result{}, err
			}
			dD := net.DomainByName("D")
			dQ := net.DomainByName("Q")
			dX := net.DomainByName("X")
			evo, err := core.New(net, core.Config{Option: v.option, DefaultAS: dD.ASN})
			if err != nil {
				return result{}, err
			}
			evo.DeployDomain(dD.ASN, 0)
			evo.DeployDomain(dQ.ASN, 0)
			if v.widen {
				// Q advertises the anycast host route to every neighbour,
				// including D. NO_EXPORT stops D from re-advertising it, but
				// D still *forwards* along it — which is what rescues X
				// below: X's packets ride to D as before and D relays them
				// to Q instead of dead-ending.
				var nbrs []topology.ASN
				for _, nb := range net.Neighbors(dQ.ASN) {
					nbrs = append(nbrs, nb.ASN)
				}
				if err := evo.Anycast.AdvertiseToNeighbors(evo.Dep, dQ.ASN, nbrs...); err != nil {
					return result{}, err
				}
			}

			measure := func(phase string) (okN int, failed []string) {
				for _, h := range net.Hosts {
					if _, err := evo.Anycast.ResolveFromHost(h, evo.Dep.Addr); err != nil {
						failed = append(failed, net.Domain(h.Domain).Name)
						continue
					}
					okN++
				}
				failStr := "-"
				if len(failed) > 0 {
					failStr = fmt.Sprint(failed)
				}
				r.rows = append(r.rows, []string{v.name, phase, fmt.Sprintf("%d/%d", okN, len(net.Hosts)), failStr})
				return okN, failed
			}

			if n, _ := measure("yes"); n != len(net.Hosts) {
				r.ok = false // everyone must work while D serves
			}
			// The default domain withdraws entirely.
			for _, m := range evo.Dep.MembersIn(dD.ASN) {
				evo.UndeployRouter(m)
			}
			okN, failed := measure("no")
			switch {
			case v.option == anycast.Option1:
				// Global routes: universal access survives.
				if okN != len(net.Hosts) {
					r.ok = false
				}
			case v.widen:
				// Q's advert gives D a forwarding route it cannot re-export:
				// X's packets still flow to D and are relayed onward to Q —
				// universal access survives the default's withdrawal.
				if okN != len(net.Hosts) {
					r.ok = false
				}
			default:
				// Pure option 2: X must dead-end (its path ends in the empty
				// default domain); Z survives via en-route capture at Q.
				if okN != 1 || len(failed) != 1 || failed[0] != net.Domain(dX.ASN).Name {
					r.ok = false
				}
			}
			return r, nil
		}}
	}
	results, err := RunParallel(context.Background(), CurrentWorkers(), jobs)
	if err != nil {
		return nil, err
	}
	okExpected := true
	for _, r := range results {
		for _, row := range r.rows {
			t.AddRow(row...)
		}
		if !r.ok {
			okExpected = false
		}
	}

	if okExpected {
		t.pass("option 2 stranded X when the default withdrew (the paper's admitted failing); option 1 kept 100%% access — quantifying why §3.2 keeps option 1 'open to eventual' adoption")
	} else {
		t.fail("outcome pattern did not match the architectural prediction")
	}
	return t, nil
}
