package experiments

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"github.com/evolvable-net/evolve/internal/anycast"
	"github.com/evolvable-net/evolve/internal/core"
	"github.com/evolvable-net/evolve/internal/forward"
	"github.com/evolvable-net/evolve/internal/metrics"
	"github.com/evolvable-net/evolve/internal/redirect"
	"github.com/evolvable-net/evolve/internal/routing/bgp"
	"github.com/evolvable-net/evolve/internal/topology"
	"github.com/evolvable-net/evolve/internal/trace"
	"github.com/evolvable-net/evolve/internal/underlay"
	"github.com/evolvable-net/evolve/internal/vnbone"
)

// sweepNetwork is the standard internet for the quantitative sweeps.
func sweepNetwork(seed int64) (*topology.Network, error) {
	return topology.TransitStub(3, 4, 0.4, topology.GenConfig{
		Seed: seed, RoutersPerDomain: 3, HostsPerDomain: 2,
	})
}

// UAStretchVsDeployment is E5: universal access and redirection stretch as
// a function of deployment fraction, for the §3.2 anycast options.
func UAStretchVsDeployment(seed int64) (*Table, error) {
	return UAStretchVsDeploymentWorkers(seed, CurrentWorkers())
}

// UAStretchVsDeploymentWorkers is E5 with an explicit worker count; the
// (fraction × option) grid cells run as independent jobs and the output
// is identical at any worker count.
func UAStretchVsDeploymentWorkers(seed int64, nWorkers int) (*Table, error) {
	t := &Table{
		ID:    "E5",
		Title: "universal access and stretch vs deployment fraction",
		Claim: "delivery succeeds for every pair at any deployment ≥ 1 ISP; stretch falls as deployment spreads; the proximity optimizations (option 1's global routes, option 2's peering adverts) usually help and never regress badly — BGP optimizes policy, not latency, so they are heuristics",
		Columns: []string{
			"deployed ISPs", "option", "success", "mean stretch", "p95 stretch", "mean ingress cost",
		},
	}
	net, err := sweepNetwork(seed)
	if err != nil {
		return nil, err
	}
	// Deploy stubs first (reverse ASN order): early participants then sit
	// at the edge rather than on everyone's transit path, which is what
	// separates the anycast options — option 1 finds the policy-nearest
	// participant anywhere, option 2 only captures en route to the
	// default stub unless peering advertisements widen participants'
	// reach.
	asns := net.ASNs()
	order := make([]topology.ASN, len(asns))
	for i, a := range asns {
		order[len(asns)-1-i] = a
	}
	fractions := []int{1, len(asns) / 4, len(asns) / 2, len(asns)}
	type variant struct {
		name    string
		option  anycast.Option
		peering bool
	}
	variants := []variant{
		{"option 1", anycast.Option1, false},
		{"option 2", anycast.Option2, false},
		{"option 2 + peering", anycast.Option2, true},
	}

	// One job per (deployment count, option) grid cell. Each builds its
	// own Evolution over the shared (read-only) topology, so the cells are
	// independent and safe to fan out.
	type cell struct {
		count   int
		v       variant
		success float64
		stats   metrics.Summary
		ingress float64
		// failures counts failed deliveries; resolveOK is false when an
		// ingress resolution failed.
		failures  int
		resolveOK bool
	}
	type gridJob struct {
		count int
		v     variant
	}
	var grid []gridJob
	for _, count := range fractions {
		if count < 1 {
			count = 1
		}
		for _, v := range variants {
			grid = append(grid, gridJob{count, v})
		}
	}
	jobs := make([]Job[cell], len(grid))
	for i, g := range grid {
		g := g
		jobs[i] = Job[cell]{Seed: seed + int64(i), Run: func(_ *rand.Rand) (cell, error) {
			c := cell{count: g.count, v: g.v, resolveOK: true}
			evo, err := core.New(net, core.Config{
				Option:    g.v.option,
				DefaultAS: order[0],
			})
			if err != nil {
				return cell{}, err
			}
			for i := 0; i < g.count; i++ {
				evo.DeployDomain(order[i], 0)
			}
			if g.v.peering {
				// Every participant advertises the anycast host route to
				// all its neighbours.
				for i := 0; i < g.count; i++ {
					var nbrs []topology.ASN
					for _, nb := range net.Neighbors(order[i]) {
						nbrs = append(nbrs, nb.ASN)
					}
					if err := evo.Anycast.AdvertiseToNeighbors(evo.Dep, order[i], nbrs...); err != nil {
						return cell{}, err
					}
				}
			}
			sample, failures, err := evo.StretchSample(0)
			if err != nil {
				return cell{}, err
			}
			c.failures = failures
			total := len(sample) + failures
			c.success = float64(len(sample)) / float64(total) * 100
			c.stats = metrics.Summarize(sample)
			// Redirection proximity: mean anycast resolution cost over
			// all hosts — the §3.2 quantity the options differ on.
			var ingressSum int64
			var ingressN int
			for _, h := range net.Hosts {
				res, err := evo.Anycast.ResolveFromHost(h, evo.Dep.Addr)
				if err != nil {
					c.resolveOK = false
					continue
				}
				ingressSum += res.Cost
				ingressN++
			}
			c.ingress = float64(ingressSum) / float64(ingressN)
			return c, nil
		}}
	}
	cells, err := RunParallel(context.Background(), nWorkers, jobs)
	if err != nil {
		return nil, err
	}

	okAll := true
	meansAtFull := map[string]float64{}
	meansAtMid := map[string]float64{}
	meansAtOne := map[string]float64{}
	for _, c := range cells {
		t.AddRow(
			fmt.Sprintf("%d/%d", c.count, len(asns)),
			c.v.name,
			fmt.Sprintf("%.1f%%", c.success),
			fmt.Sprintf("%.3f", c.stats.Mean),
			fmt.Sprintf("%.3f", c.stats.P95),
			fmt.Sprintf("%.1f", c.ingress),
		)
		if c.failures > 0 || !c.resolveOK {
			okAll = false
		}
		if c.count == 1 {
			meansAtOne[c.v.name] = c.stats.Mean
		}
		if c.count == len(asns)/2 {
			meansAtMid[c.v.name] = c.ingress
		}
		if c.count == len(asns) {
			meansAtFull[c.v.name] = c.stats.Mean
		}
	}
	for _, v := range variants {
		if meansAtFull[v.name] > meansAtOne[v.name]+1e-9 {
			okAll = false
		}
	}
	// Verdict asserts only the structural claims: universal access and
	// stretch improvement with deployment. The proximity effect of
	// option 1 / peering adverts is reported as data: BGP selects by
	// *policy* (customer ≻ peer ≻ provider, then AS hops), not latency,
	// and a more-specific host route overrides an aggregate even when
	// the aggregate's en-route capture was latency-closer — so the §3.2
	// optimizations are heuristics that usually help but can regress on
	// particular topologies (an honest finding of this reproduction).
	heuristic := "helped"
	if meansAtMid["option 2 + peering"] > meansAtMid["option 2"] {
		heuristic = fmt.Sprintf("REGRESSED %.0f%% on this topology (policy ≠ latency)",
			(meansAtMid["option 2 + peering"]/meansAtMid["option 2"]-1)*100)
	}
	if okAll {
		t.pass("100%% delivery at every level; full-deployment stretch %.3f; mid-deployment ingress cost %.1f (opt1) / %.1f (opt2+peering) / %.1f (opt2) — advert heuristic %s",
			meansAtFull["option 2"],
			meansAtMid["option 1"], meansAtMid["option 2 + peering"], meansAtMid["option 2"],
			heuristic)
	} else {
		t.fail("a delivery failed or stretch grew with deployment (mid ingress: %v)", meansAtMid)
	}
	// Under -trace-sample, replay a few cross-AS deliveries through a
	// representative cell (option 2, full deployment) with a per-delivery
	// recorder attached. The sweep itself is untouched.
	if TraceSample() > 0 {
		evo, err := core.New(net, core.Config{Option: anycast.Option2, DefaultAS: order[0]})
		if err == nil {
			for _, asn := range order {
				evo.DeployDomain(asn, 0)
			}
			sampleTraces(t, "E5 option 2, full deployment", evo, net)
		}
	}
	return t, nil
}

// RedirectorComparison is E6: §2.2 application-level redirection (brokers,
// ISP lookup) vs §2.3 network-level anycast, under deployment churn.
func RedirectorComparison(seed int64) (*Table, error) {
	t := &Table{
		ID:    "E6",
		Title: "application-level vs network-level redirection",
		Claim: "anycast never fails and adapts instantly; brokers fail under staleness and partial coverage; ISP lookup fails outside participants",
		Columns: []string{
			"redirector", "phase", "success", "mean cost",
		},
	}
	net, err := sweepNetwork(seed)
	if err != nil {
		return nil, err
	}
	igp := underlay.NewView(net)
	bgpSys := bgp.NewSystem(net)
	svc := anycast.NewService(net, bgpSys, igp)
	dep, err := svc.DeployOption1(0)
	if err != nil {
		return nil, err
	}
	fwd := forward.NewEngine(net, bgpSys, igp)
	// Initial deployment: two stubs.
	first := net.DomainByName("S0.0")
	second := net.DomainByName("S1.0")
	svc.AddMember(dep, first.Routers[0])
	svc.AddMember(dep, second.Routers[0])

	brokerFull := redirect.NewBroker(net, fwd, dep, 1.0, seed)
	brokerHalf := redirect.NewBroker(net, fwd, dep, 0.5, seed)
	brokerFull.Refresh()
	brokerHalf.Refresh()
	rds := []redirect.Redirector{
		&redirect.AnycastRedirector{Svc: svc, Dep: dep},
		brokerFull,
		brokerHalf,
		&redirect.ISPLookupRedirector{Svc: svc, Dep: dep, Net: net, Igp: igp},
	}

	measure := func(phase string) map[string]float64 {
		rates := map[string]float64{}
		for _, rd := range rds {
			var ok, total int
			var costSum int64
			for _, h := range net.Hosts {
				total++
				res, err := rd.Redirect(h)
				if err != nil {
					continue
				}
				ok++
				costSum += res.Cost
			}
			success := float64(ok) / float64(total) * 100
			meanCost := "-"
			if ok > 0 {
				meanCost = fmt.Sprintf("%.1f", float64(costSum)/float64(ok))
			}
			t.AddRow(rd.Name(), phase, fmt.Sprintf("%.1f%%", success), meanCost)
			rates[rd.Name()+"/"+phase] = success
		}
		return rates
	}

	before := measure("stable")
	// Churn: the first participant's router withdraws; a transit deploys.
	svc.RemoveMember(dep, first.Routers[0])
	svc.AddMember(dep, net.DomainByName("T0").Routers[0])
	after := measure("after churn (no broker refresh)")

	anyBefore := before["anycast/stable"]
	anyAfter := after["anycast/after churn (no broker refresh)"]
	brokerAfter := after[brokerFull.Name()+"/after churn (no broker refresh)"]
	ispEver := before["isp-lookup/stable"]
	if anyBefore == 100 && anyAfter == 100 && brokerAfter < 100 && ispEver < 100 {
		t.pass("anycast 100%% in both phases; stale broker dropped to %.1f%%; ISP lookup only %.1f%%", brokerAfter, ispEver)
	} else {
		t.fail("rates: anycast %.1f/%.1f broker-after %.1f isp %.1f", anyBefore, anyAfter, brokerAfter, ispEver)
	}
	// Under -trace-sample, re-run a few anycast redirect decisions through
	// the redirect.Traced decorator so the ingress choices show up as
	// trace events and counters.
	if n := TraceSample(); n > 0 {
		var c trace.Counters
		rec := trace.NewRecorder()
		rd := redirect.Traced(&redirect.AnycastRedirector{Svc: svc, Dep: dep}, rec, &c, net)
		for i := 0; i < n && i < len(net.Hosts); i++ {
			rd.Redirect(net.Hosts[i]) //nolint:errcheck // failures become drop events
		}
		t.Traces = append(t.Traces, fmt.Sprintf(
			"E6 anycast redirect decisions (post-churn deployment):\n%scounters:\n%s",
			trace.Format(rec.Events(), func(r topology.RouterID) string { return net.Router(r).Name }),
			c.Snapshot()))
	}
	return t, nil
}

// AnycastStateGrowth is E7: the §3.2 scalability concern — option-1
// anycast host routes grow every AS's routing table linearly in the
// number of simultaneous IPvN deployments; option 2 adds no global state.
func AnycastStateGrowth(seed int64) (*Table, error) {
	t := &Table{
		ID:    "E7",
		Title: "routing-state growth vs number of anycast groups",
		Claim: "option 1 adds one route per group to every AS; option 2 adds none beyond the default ISP's existing aggregate",
		Columns: []string{
			"groups", "option 1 mean table size", "option 2 mean table size",
		},
	}
	net, err := sweepNetwork(seed)
	if err != nil {
		return nil, err
	}
	meanTable := func(s *bgp.System) float64 {
		var sum int
		for _, asn := range net.ASNs() {
			sum += s.TableSize(asn)
		}
		return float64(sum) / float64(len(net.ASNs()))
	}

	groupCounts := []uint32{0, 1, 2, 4, 8}
	var opt1Sizes, opt2Sizes []float64
	for _, g := range groupCounts {
		igp1 := underlay.NewView(net)
		sys1 := bgp.NewSystem(net)
		svc1 := anycast.NewService(net, sys1, igp1)
		igp2 := underlay.NewView(net)
		sys2 := bgp.NewSystem(net)
		svc2 := anycast.NewService(net, sys2, igp2)
		for i := uint32(0); i < g; i++ {
			d1, err := svc1.DeployOption1(i)
			if err != nil {
				return nil, err
			}
			svc1.AddMember(d1, net.DomainByName("T0").Routers[0])
			svc1.AddMember(d1, net.DomainByName("S0.0").Routers[0])
			d2, err := svc2.DeployOption2(i, net.ASNs()[0])
			if err != nil {
				return nil, err
			}
			svc2.AddMember(d2, net.DomainByName("T0").Routers[0])
			svc2.AddMember(d2, net.DomainByName("S0.0").Routers[0])
		}
		m1, m2 := meanTable(sys1), meanTable(sys2)
		opt1Sizes = append(opt1Sizes, m1)
		opt2Sizes = append(opt2Sizes, m2)
		t.AddRow(fmt.Sprintf("%d", g), fmt.Sprintf("%.1f", m1), fmt.Sprintf("%.1f", m2))
	}

	// Linear growth for option 1: each group adds ~1 route per AS.
	lin := true
	for i := 1; i < len(groupCounts); i++ {
		wantDelta := float64(groupCounts[i] - groupCounts[i-1])
		gotDelta := opt1Sizes[i] - opt1Sizes[i-1]
		if math.Abs(gotDelta-wantDelta) > 0.01 {
			lin = false
		}
		if opt2Sizes[i] != opt2Sizes[0] {
			lin = false
		}
	}
	if lin {
		t.pass("option 1 grew exactly +1 route/AS per group; option 2 stayed flat at %.1f", opt2Sizes[0])
	} else {
		t.fail("growth pattern: opt1 %v opt2 %v", opt1Sizes, opt2Sizes)
	}
	return t, nil
}

// VNBoneConstruction is E8: virtual-topology quality vs the k-neighbour
// parameter, with and without partition repair, plus congruence as
// deployment spreads.
func VNBoneConstruction(seed int64) (*Table, error) {
	t := &Table{
		ID:    "E8",
		Title: "vN-Bone construction: k-neighbour ablation and congruence",
		Claim: "partition repair always yields a connected bone; partitions without repair shrink as k grows; congruence improves as deployment spreads",
		Columns: []string{
			"config", "k", "connected", "components", "congruence",
		},
	}
	net, err := sweepNetwork(seed)
	if err != nil {
		return nil, err
	}
	igp := underlay.NewView(net)
	bgpSys := bgp.NewSystem(net)
	svc := anycast.NewService(net, bgpSys, igp)
	dep, err := svc.DeployOption1(0)
	if err != nil {
		return nil, err
	}
	// Sparse deployment: the three transits participate fully.
	for _, name := range []string{"T0", "T1", "T2"} {
		for _, r := range net.DomainByName(name).Routers {
			svc.AddMember(dep, r)
		}
	}

	okRepairAlways := true
	prevComponents := math.MaxInt
	okMonotone := true
	for _, k := range []int{1, 2, 3} {
		for _, repair := range []bool{false, true} {
			bone, err := vnbone.Build(svc, igp, dep, vnbone.Config{
				K:             k,
				DisableRepair: !repair,
			})
			if err != nil {
				return nil, err
			}
			comps := len(bone.Components())
			cong := bone.Congruence()
			label := "no repair"
			if repair {
				label = "repair"
				if !bone.Connected() {
					okRepairAlways = false
				}
			} else {
				if comps > prevComponents {
					okMonotone = false
				}
				prevComponents = comps
			}
			t.AddRow(label, fmt.Sprintf("%d", k),
				fmt.Sprintf("%v", bone.Connected()),
				fmt.Sprintf("%d", comps),
				fmt.Sprintf("%.3f", cong))
		}
	}

	// Footnote-3 ablation: construction without member discovery (blind
	// join-order tree) — always connected, but less congruent.
	blind, err := vnbone.Build(svc, igp, dep, vnbone.Config{BlindIntra: true})
	if err != nil {
		return nil, err
	}
	t.AddRow("blind (footnote 3)", "-", fmt.Sprintf("%v", blind.Connected()),
		fmt.Sprintf("%d", len(blind.Components())), fmt.Sprintf("%.3f", blind.Congruence()))
	if !blind.Connected() {
		okRepairAlways = false
	}

	// Congruence: sparse vs full deployment at k=2.
	sparseBone, err := vnbone.Build(svc, igp, dep, vnbone.Config{K: 2})
	if err != nil {
		return nil, err
	}
	congSparse := sparseBone.Congruence()
	for _, asn := range net.ASNs() {
		for _, r := range net.Domain(asn).Routers {
			svc.AddMember(dep, r)
		}
	}
	fullBone, err := vnbone.Build(svc, igp, dep, vnbone.Config{K: 2})
	if err != nil {
		return nil, err
	}
	congFull := fullBone.Congruence()
	t.AddRow("sparse deployment", "2", fmt.Sprintf("%v", sparseBone.Connected()), "-", fmt.Sprintf("%.3f", congSparse))
	t.AddRow("full deployment", "2", fmt.Sprintf("%v", fullBone.Connected()), "-", fmt.Sprintf("%.3f", congFull))

	if okRepairAlways && okMonotone && congFull <= congSparse+1e-9 {
		t.pass("repair always connected; congruence %.3f (sparse) → %.3f (full)", congSparse, congFull)
	} else {
		t.fail("repair=%v monotone=%v congruence %.3f→%.3f", okRepairAlways, okMonotone, congSparse, congFull)
	}
	return t, nil
}
