package experiments

import (
	"fmt"
	"time"

	"github.com/evolvable-net/evolve/internal/addr"
	"github.com/evolvable-net/evolve/internal/overlaynet"
)

// LiveOverlay is E11: the prototype demonstration — a vN-Bone of real
// UDP nodes on localhost carries IPvN packets end-to-end through anycast
// ingress, bone relays and an underlay exit, measuring delivery and
// round-trip latency through the full encap/decap data path.
func LiveOverlay(seed int64) (*Table, error) {
	t := &Table{
		ID:    "E11",
		Title: "live UDP overlay prototype",
		Claim: "the same mechanisms run over real sockets: anycast ingress, bone relay, underlay exit; packets survive the full wire path",
		Columns: []string{
			"leg", "detail", "result",
		},
	}
	reg := overlaynet.NewRegistry()
	u := func(last byte) addr.V4 { return addr.V4FromOctets(10, 7, 0, last) }

	var nodes []*overlaynet.Node
	defer func() {
		for _, n := range nodes {
			n.Close()
		}
	}()
	mk := func(last byte) (*overlaynet.Node, error) {
		n, err := overlaynet.NewNode(reg, u(last))
		if err != nil {
			return nil, err
		}
		nodes = append(nodes, n)
		return n, nil
	}

	hostA, err := mk(1)
	if err != nil {
		return nil, err
	}
	hostB, err := mk(2)
	if err != nil {
		return nil, err
	}
	const boneLen = 4
	var routers []*overlaynet.Node
	for i := 0; i < boneLen; i++ {
		r, err := mk(byte(10 + i))
		if err != nil {
			return nil, err
		}
		routers = append(routers, r)
	}

	anycastAddr, err := addr.Option1Address(0)
	if err != nil {
		return nil, err
	}
	routers[0].ServeAnycast(anycastAddr)
	reg.SetAnycastMembers(anycastAddr, []addr.V4{routers[0].Underlay})
	hostA.SetVNAddr(addr.SelfAddress(hostA.Underlay))
	hostB.SetVNAddr(addr.SelfAddress(hostB.Underlay))
	selfAll := addr.MakeVNPrefix(addr.SelfAddress(0), 1)
	for i := 0; i+1 < boneLen; i++ {
		routers[i].AddVNRoute(selfAll, routers[i+1].Underlay)
	}
	// The last router exits via the carried underlay address.

	// One-way delivery.
	payload := []byte("hello over the vN-Bone")
	start := time.Now()
	if err := hostA.SendVN(anycastAddr, hostB.VNAddr(), payload); err != nil {
		return nil, err
	}
	got, err := hostB.WaitInbox(5 * time.Second)
	oneWay := time.Since(start)
	delivered := err == nil && string(got.Payload) == string(payload)
	t.AddRow("A → anycast ingress → bone ×"+fmt.Sprint(boneLen)+" → exit → B",
		fmt.Sprintf("%d bytes", len(payload)),
		fmt.Sprintf("delivered=%v in %v", delivered, oneWay.Round(time.Microsecond)))

	// Burst of packets for a delivery-rate row; drain concurrently so the
	// receiver's inbox never overflows.
	const burst = 100
	done := make(chan int, 1)
	go func() {
		n := 0
		for n < burst {
			if _, err := hostB.WaitInbox(2 * time.Second); err != nil {
				break
			}
			n++
		}
		done <- n
	}()
	for i := 0; i < burst; i++ {
		if err := hostA.SendVN(anycastAddr, hostB.VNAddr(), []byte(fmt.Sprintf("pkt %d", i))); err != nil {
			return nil, err
		}
	}
	gotN := <-done
	t.AddRow("burst", fmt.Sprintf("%d packets", burst), fmt.Sprintf("%d delivered", gotN))

	// Forwarding counters confirm every router touched the packets.
	for i, r := range routers {
		s := r.Stats()
		t.AddRow(fmt.Sprintf("router %d counters", i+1),
			fmt.Sprintf("fwd=%d exit=%d drop=%d", s.Forwarded, s.Exited, s.Dropped),
			"ok")
	}

	if delivered && gotN >= burst/2 {
		t.pass("end-to-end live delivery through %d real UDP relays; %d/%d burst packets arrived", boneLen, gotN, burst)
	} else {
		t.fail("delivered=%v burst=%d/%d", delivered, gotN, burst)
	}
	return t, nil
}
