package experiments

import (
	"fmt"

	"github.com/evolvable-net/evolve/internal/anycast"
	"github.com/evolvable-net/evolve/internal/core"
	"github.com/evolvable-net/evolve/internal/routing/bgpvn"
	"github.com/evolvable-net/evolve/internal/topology"
)

// EndhostRegistration is E14: the §3.3.2 anycast-based endhost route
// advertisement — the option the paper finds "appealing" but sets aside —
// compared against the egress policies it would replace.
func EndhostRegistration(seed int64) (*Table, error) {
	t := &Table{
		ID:    "E14",
		Title: "endhost /128 registration vs egress policies (§3.3.2)",
		Claim: "a registered endhost's deliveries egress at its nearby participant and cost no more than any egress policy; registration renews as deployment spreads",
		Columns: []string{
			"mechanism", "egress ISP", "total cost", "stretch",
		},
	}
	// The Figure-3 world: src in participant M; destination C in
	// non-participant NC behind participant O.
	b := topology.NewBuilder()
	dM := b.AddDomain("M")
	dO := b.AddDomain("O")
	dNC := b.AddDomain("NC")
	rM := b.AddRouters(dM, 2)
	rO := b.AddRouters(dO, 2)
	rNC := b.AddRouter(dNC, "")
	b.IntraLink(rM[0], rM[1], 1)
	b.IntraLink(rO[0], rO[1], 1)
	b.Peer(rM[1], rO[0], 10)
	b.Provide(rO[1], rNC, 10)
	src := b.AddHost(dM, rM[0], "src", 1)
	c := b.AddHost(dNC, rNC, "C", 1)
	net, err := b.Build()
	if err != nil {
		return nil, err
	}

	run := func(pol bgpvn.EgressPolicy, register bool) (core.Delivery, error) {
		evo, err := core.New(net, core.Config{Option: anycast.Option1, Egress: pol})
		if err != nil {
			return core.Delivery{}, err
		}
		evo.DeployRouter(rM[0])
		evo.DeployRouter(rO[1])
		if register {
			if err := evo.RegisterEndhost(c); err != nil {
				return core.Delivery{}, err
			}
		}
		return evo.Send(src, c, []byte("x"))
	}

	costs := map[string]int64{}
	for _, m := range []struct {
		name     string
		pol      bgpvn.EgressPolicy
		register bool
	}{
		{"exit-early", bgpvn.ExitEarly, false},
		{"path-informed", bgpvn.PathInformed, false},
		{"proxy-informed", bgpvn.ProxyInformed, false},
		{"registered /128", bgpvn.ExitEarly, true},
	} {
		d, err := run(m.pol, m.register)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", m.name, err)
		}
		egName := net.Domain(net.DomainOf(d.Egress.Member)).Name
		costs[m.name] = d.TotalCost
		t.AddRow(m.name, egName, fmt.Sprintf("%d", d.TotalCost), fmt.Sprintf("%.3f", d.Stretch))
	}

	ok := costs["registered /128"] <= costs["exit-early"] &&
		costs["registered /128"] <= costs["path-informed"] &&
		costs["registered /128"] <= costs["proxy-informed"]
	if ok {
		t.pass("registration (cost %d) matches or beats every egress policy (%d/%d/%d)",
			costs["registered /128"], costs["exit-early"], costs["path-informed"], costs["proxy-informed"])
	} else {
		t.fail("costs: %v", costs)
	}
	// Under -trace-sample, rebuild the registered-/128 configuration and
	// record its deliveries — the egress line then shows the registered
	// route rather than a policy fallback.
	if TraceSample() > 0 {
		evo, err := core.New(net, core.Config{Option: anycast.Option1, Egress: bgpvn.ExitEarly})
		if err == nil {
			evo.DeployRouter(rM[0])
			evo.DeployRouter(rO[1])
			if evo.RegisterEndhost(c) == nil {
				sampleTraces(t, "E14 registered /128", evo, net)
			}
		}
	}
	return t, nil
}

// ProviderChoice is E15: §2.1's user-choice extension — "offer users the
// choice of which IPvN service provider their IPvN packets are redirected
// to" — and what that choice costs and pays.
func ProviderChoice(seed int64) (*Table, error) {
	t := &Table{
		ID:    "E15",
		Title: "user choice of IPvN service provider (§2.1 extension)",
		Claim: "with provider-specific anycast addresses the user's packets ingress at the chosen provider regardless of proximity; the default address still picks the closest; choice shifts traffic (revenue) between providers",
		Columns: []string{
			"selection", "ingress ISP", "ingress cost", "total cost",
		},
	}
	b := topology.NewBuilder()
	dP1 := b.AddDomain("P1")
	dP2 := b.AddDomain("P2")
	dC := b.AddDomain("C")
	rP1 := b.AddRouter(dP1, "")
	rP2 := b.AddRouter(dP2, "")
	rC := b.AddRouter(dC, "")
	b.Peer(rP1, rP2, 40)
	b.Provide(rP1, rC, 10)
	b.Provide(rP2, rC, 25)
	user := b.AddHost(dC, rC, "user", 1)
	srv := b.AddHost(dP2, rP2, "server", 1)
	net, err := b.Build()
	if err != nil {
		return nil, err
	}
	evo, err := core.New(net, core.Config{Option: anycast.Option1})
	if err != nil {
		return nil, err
	}
	evo.DeployRouter(rP1)
	evo.DeployRouter(rP2)
	if _, err := evo.EnableProviderChoice(dP1.ASN); err != nil {
		return nil, err
	}
	if _, err := evo.EnableProviderChoice(dP2.ASN); err != nil {
		return nil, err
	}

	type result struct {
		ingress topology.ASN
		d       core.Delivery
	}
	runs := map[string]result{}
	record := func(name string, d core.Delivery, err error) error {
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		asn := net.DomainOf(d.Ingress.Member)
		runs[name] = result{ingress: asn, d: d}
		t.AddRow(name, net.Domain(asn).Name,
			fmt.Sprintf("%d", d.Ingress.Cost),
			fmt.Sprintf("%d", d.TotalCost))
		return nil
	}
	d, err := evo.Send(user, srv, nil)
	if err := record("network picks (default)", d, err); err != nil {
		return nil, err
	}
	d, err = evo.SendVia(user, srv, dP1.ASN, nil)
	if err := record("user picks P1", d, err); err != nil {
		return nil, err
	}
	d, err = evo.SendVia(user, srv, dP2.ASN, nil)
	if err := record("user picks P2", d, err); err != nil {
		return nil, err
	}

	ok := runs["network picks (default)"].ingress == dP1.ASN &&
		runs["user picks P1"].ingress == dP1.ASN &&
		runs["user picks P2"].ingress == dP2.ASN &&
		runs["user picks P2"].d.Ingress.Cost > runs["user picks P1"].d.Ingress.Cost
	if ok {
		t.pass("default lands at closest (P1); explicit choices land exactly where directed; picking the far provider costs %d vs %d",
			runs["user picks P2"].d.Ingress.Cost, runs["user picks P1"].d.Ingress.Cost)
	} else {
		t.fail("ingress pattern unexpected: %v/%v/%v",
			runs["network picks (default)"].ingress, runs["user picks P1"].ingress, runs["user picks P2"].ingress)
	}
	sampleTraces(t, "E15 default provider selection", evo, net)
	return t, nil
}
