package experiments

import (
	"strings"
	"testing"
)

// TestAllExperimentsPass runs every experiment and requires its verdict
// to be PASS — the repository's reproduction gate.
func TestAllExperimentsPass(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tbl, err := e.Run(42)
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if !tbl.OK {
				t.Errorf("%s verdict: %s\n%s", e.ID, tbl.Verdict, tbl)
			}
			if len(tbl.Rows) == 0 {
				t.Errorf("%s produced no rows", e.ID)
			}
			if tbl.ID != e.ID {
				t.Errorf("table id %q != registry id %q", tbl.ID, e.ID)
			}
		})
	}
}

func TestExperimentsDeterministic(t *testing.T) {
	// Same seed → identical tables (E11 is live networking with real
	// timing in its cells, so it is exempt from cell-level comparison).
	for _, e := range All() {
		if e.ID == "E11" {
			continue
		}
		a, err1 := e.Run(7)
		b, err2 := e.Run(7)
		if err1 != nil || err2 != nil {
			t.Fatalf("%s: %v %v", e.ID, err1, err2)
		}
		if len(a.Rows) != len(b.Rows) {
			t.Fatalf("%s: row counts differ", e.ID)
		}
		for i := range a.Rows {
			for j := range a.Rows[i] {
				if a.Rows[i][j] != b.Rows[i][j] {
					t.Errorf("%s row %d col %d: %q vs %q", e.ID, i, j, a.Rows[i][j], b.Rows[i][j])
				}
			}
		}
	}
}

func TestTableString(t *testing.T) {
	tbl := &Table{
		ID: "EX", Title: "demo", Claim: "c",
		Columns: []string{"a", "long-header"},
	}
	tbl.AddRow("1", "2")
	tbl.AddRow("wide-cell", "3")
	tbl.pass("fine")
	out := tbl.String()
	for _, want := range []string{"EX — demo", "claim: c", "long-header", "wide-cell", "PASS: fine"} {
		if !strings.Contains(out, want) {
			t.Errorf("String missing %q:\n%s", want, out)
		}
	}
	tbl.fail("broken %d", 7)
	if !strings.Contains(tbl.String(), "FAIL: broken 7") {
		t.Error("fail verdict missing")
	}
}

func TestFig1Rows(t *testing.T) {
	tbl, err := Fig1SeamlessSpread(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// Ingress column walks X, Y, Z.
	wants := []string{"X", "Y", "Z"}
	for i, w := range wants {
		if tbl.Rows[i][2] != w {
			t.Errorf("stage %d ingress = %q, want %q", i+1, tbl.Rows[i][2], w)
		}
		if tbl.Rows[i][4] != "none" {
			t.Errorf("stage %d endhost reconfig = %q", i+1, tbl.Rows[i][4])
		}
	}
}

func TestFig2Rows(t *testing.T) {
	tbl, err := Fig2DefaultRoutes(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 6 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
}

func TestE7LinearityVisible(t *testing.T) {
	tbl, err := AnycastStateGrowth(3)
	if err != nil {
		t.Fatal(err)
	}
	if !tbl.OK {
		t.Fatalf("verdict: %s", tbl.Verdict)
	}
	if len(tbl.Rows) != 5 {
		t.Errorf("rows = %d", len(tbl.Rows))
	}
}

func TestSweepsAcrossSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed sweep")
	}
	// Every experiment must pass on several seeds, not just the
	// documentation seed — the robustness gate behind EXPERIMENTS.md's
	// "stable across seeds" claim. (E11 is live networking; its sockets
	// make it slower, so it runs on one extra seed only.)
	for _, e := range All() {
		seeds := []int64{1, 2, 3}
		if e.ID == "E11" {
			seeds = []int64{1}
		}
		for _, seed := range seeds {
			tbl, err := e.Run(seed)
			if err != nil {
				t.Fatalf("%s seed %d: %v", e.ID, seed, err)
			}
			if !tbl.OK {
				t.Errorf("%s seed %d: %s", e.ID, seed, tbl.Verdict)
			}
		}
	}
}
