package experiments

import (
	"fmt"

	"github.com/evolvable-net/evolve/internal/anycast"
	"github.com/evolvable-net/evolve/internal/core"
	"github.com/evolvable-net/evolve/internal/topology"
	"github.com/evolvable-net/evolve/internal/vncast"
)

// MulticastPayoff is E19: the capability whose failed deployment opens
// the paper — multicast — deployed as a feature of the new IP generation
// over the vN-Bone, with universal access for subscribers and the classic
// bandwidth payoff measured against repeated unicast.
func MulticastPayoff(seed int64) (*Table, error) {
	t := &Table{
		ID:    "E19",
		Title: "the payoff: IPv8 multicast over the vN-Bone",
		Claim: "any host can subscribe regardless of its ISP (universal access); the shared tree never costs more than repeated unicast, and the shared component amortizes as groups grow",
		Columns: []string{
			"subscribers", "tree links", "multicast cost", "repeated unicast", "saving",
		},
	}
	net, err := sweepNetwork(seed)
	if err != nil {
		return nil, err
	}
	evo, err := core.New(net, core.Config{Option: anycast.Option1})
	if err != nil {
		return nil, err
	}
	// The transits deploy IPv8 (with its multicast capability); stubs
	// don't — their hosts subscribe anyway.
	for _, name := range []string{"T0", "T1", "T2"} {
		evo.DeployDomain(net.DomainByName(name).ASN, 0)
	}
	svc := vncast.New(evo)

	src := net.HostsIn(net.DomainByName("S0.0").ASN)[0]
	var pool []*topology.Host
	for _, h := range net.Hosts {
		if h.ID != src.ID {
			pool = append(pool, h)
		}
	}

	okAll := true
	var firstShared, lastShared float64
	first := true
	for gi, size := range []int{2, 4, 8, 16} {
		if size > len(pool) {
			size = len(pool)
		}
		grp := svc.CreateGroup(uint32(gi))
		for _, h := range pool[:size] {
			if err := svc.Subscribe(grp, h); err != nil {
				return nil, err
			}
		}
		d, err := svc.Deliver(grp, src, []byte("stream"))
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%d", d.Subscribers),
			fmt.Sprintf("%d", d.TreeLinks),
			fmt.Sprintf("%d", d.TotalCost),
			fmt.Sprintf("%d", d.UnicastCost),
			fmt.Sprintf("%.1f%%", d.Saving*100))
		if d.TotalCost > d.UnicastCost {
			okAll = false
		}
		shared := float64(d.IngressCost+d.TreeCost) / float64(d.Subscribers)
		if first {
			firstShared = shared
			first = false
		}
		lastShared = shared
	}
	// Amortization judged smallest-group vs largest-group (per-step
	// wobble is workload noise; the trend is the claim).
	if lastShared >= firstShared {
		okAll = false
	}
	if okAll {
		t.pass("multicast never lost to repeated unicast and the shared tree amortized with group size — the capability IP Multicast never delivered, running over a partially deployed IPv8")
	} else {
		t.fail("multicast lost to unicast or the shared component failed to amortize")
	}
	return t, nil
}
