// Package forward simulates ordinary IPv(N-1) unicast forwarding over the
// modelled internet: inter-domain hops follow BGP policy, intra-domain
// hops follow the converged IGP. This is the baseline data path — what a
// packet experiences *without* any IPvN machinery — and also the final
// "tunnel to the destination's underlay address" leg of IPvN delivery to
// self-addressed hosts (§3.3.2).
package forward

import (
	"errors"
	"fmt"

	"github.com/evolvable-net/evolve/internal/addr"
	"github.com/evolvable-net/evolve/internal/graph"
	"github.com/evolvable-net/evolve/internal/routing/bgp"
	"github.com/evolvable-net/evolve/internal/topology"
	"github.com/evolvable-net/evolve/internal/underlay"
)

// Errors returned by the engine.
var (
	// ErrNoRoute: no BGP route covers the destination.
	ErrNoRoute = errors.New("forward: no route to destination")
	// ErrHostNotFound: the covering prefix's origin domain has no host or
	// router bearing the destination address.
	ErrHostNotFound = errors.New("forward: destination address unassigned in origin domain")
	// ErrLoop: inconsistent routing state produced a forwarding loop.
	ErrLoop = errors.New("forward: forwarding loop")
	// ErrUnreachable: an intra-domain segment of the path is severed
	// (the domain is internally partitioned by link failures).
	ErrUnreachable = errors.New("forward: destination unreachable over failed links")
)

// Path is a simulated unicast trajectory.
type Path struct {
	// Routers is the router-level path, from the source router to the
	// destination's attachment (or the destination router itself).
	Routers []topology.RouterID
	// ASPath is the domain-level trajectory.
	ASPath []topology.ASN
	// Cost is the summed link cost, including the destination host's
	// access link when the destination is a host address.
	Cost int64
	// DstHost is set when the destination address belongs to a host.
	DstHost *topology.Host
	// DstRouter is the final router (the host's attach, or the addressed
	// router).
	DstRouter topology.RouterID
}

// Engine computes unicast paths.
type Engine struct {
	net *topology.Network
	bgp *bgp.System
	igp *underlay.View
}

// NewEngine returns a forwarding engine over the given routing state.
func NewEngine(net *topology.Network, bgpSys *bgp.System, igp *underlay.View) *Engine {
	return &Engine{net: net, bgp: bgpSys, igp: igp}
}

// FromRouter traces a packet from a router to the destination address.
func (e *Engine) FromRouter(from topology.RouterID, dst addr.V4) (Path, error) {
	p := Path{Routers: []topology.RouterID{from}}
	cur := from
	visited := map[topology.ASN]bool{}
	for {
		asn := e.net.DomainOf(cur)
		p.ASPath = append(p.ASPath, asn)
		if visited[asn] {
			return Path{}, ErrLoop
		}
		visited[asn] = true

		route, ok := e.bgp.Lookup(asn, dst)
		if !ok {
			return Path{}, ErrNoRoute
		}
		if route.NextHop() == -1 {
			// Destination is in this domain.
			return e.finish(p, cur, asn, dst)
		}
		link, ok := e.igp.HotPotato(cur, e.bgp.LinksBetween(asn, route.NextHop()))
		if !ok {
			return Path{}, fmt.Errorf("forward: BGP chose non-adjacent AS%d from AS%d", route.NextHop(), asn)
		}
		if e.igp.IntraDist(cur, link.From) >= graph.Inf {
			return Path{}, ErrUnreachable
		}
		p.Cost += e.igp.IntraDist(cur, link.From) + link.Latency
		p.Routers = appendPath(p.Routers, e.igp.IntraPath(cur, link.From))
		p.Routers = append(p.Routers, link.To)
		cur = link.To
	}
}

// finish completes the intra-domain tail of the walk.
func (e *Engine) finish(p Path, cur topology.RouterID, asn topology.ASN, dst addr.V4) (Path, error) {
	// A router loopback?
	if r := e.net.RouterByLoopback(dst); r != nil && r.Domain == asn {
		if e.igp.IntraDist(cur, r.ID) >= graph.Inf {
			return Path{}, ErrUnreachable
		}
		p.Cost += e.igp.IntraDist(cur, r.ID)
		p.Routers = appendPath(p.Routers, e.igp.IntraPath(cur, r.ID))
		p.DstRouter = r.ID
		return p, nil
	}
	// A host?
	if h := e.net.FindHost(dst); h != nil && h.Domain == asn {
		if e.igp.IntraDist(cur, h.Attach) >= graph.Inf {
			return Path{}, ErrUnreachable
		}
		p.Cost += e.igp.IntraDist(cur, h.Attach) + h.AccessLatency
		p.Routers = appendPath(p.Routers, e.igp.IntraPath(cur, h.Attach))
		p.DstRouter = h.Attach
		p.DstHost = h
		return p, nil
	}
	return Path{}, ErrHostNotFound
}

// HostToHost traces a packet between two hosts, including both access
// links. This is the baseline against which IPvN path stretch is measured.
func (e *Engine) HostToHost(src, dst *topology.Host) (Path, error) {
	p, err := e.FromRouter(src.Attach, dst.Addr)
	if err != nil {
		return Path{}, err
	}
	p.Cost += src.AccessLatency
	return p, nil
}

// DomainDistance returns the BGP AS-hop count from a domain to the domain
// owning dst (0 when local), which is exactly the information an IPvN
// border router obtains from its domain's BGPv(N-1) tables (§3.3.2).
func (e *Engine) DomainDistance(from topology.ASN, dst addr.V4) (int, bool) {
	route, ok := e.bgp.Lookup(from, dst)
	if !ok {
		return 0, false
	}
	return len(route.Path), true
}

// DomainPath returns the AS-level BGP path from a domain toward dst,
// starting at from.
func (e *Engine) DomainPath(from topology.ASN, dst addr.V4) ([]topology.ASN, bool) {
	return e.bgp.ASPath(from, dst)
}

func appendPath(path, p []topology.RouterID) []topology.RouterID {
	for i, r := range p {
		if i == 0 && len(path) > 0 && path[len(path)-1] == r {
			continue
		}
		path = append(path, r)
	}
	return path
}
