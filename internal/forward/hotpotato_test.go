package forward

import (
	"testing"

	"github.com/evolvable-net/evolve/internal/routing/bgp"
	"github.com/evolvable-net/evolve/internal/topology"
	"github.com/evolvable-net/evolve/internal/underlay"
)

// TestHotPotatoPicksNearestBorder: two parallel links between A and B;
// traffic entering A near border 1 must exit over border 1, traffic near
// border 2 over border 2 — early-exit routing.
func TestHotPotatoPicksNearestBorder(t *testing.T) {
	b := topology.NewBuilder()
	dA := b.AddDomain("A")
	dB := b.AddDomain("B")
	rA := b.AddRouters(dA, 3) // 0: west, 1: middle, 2: east
	rB := b.AddRouters(dB, 2)
	b.IntraLink(rA[0], rA[1], 10)
	b.IntraLink(rA[1], rA[2], 10)
	b.IntraLink(rB[0], rB[1], 10)
	// Two parallel peering links: west–west and east–east.
	b.Peer(rA[0], rB[0], 5)
	b.Peer(rA[2], rB[1], 5)
	hostW := b.AddHost(dA, rA[0], "west", 1)
	hostE := b.AddHost(dA, rA[2], "east", 1)
	dstW := b.AddHost(dB, rB[0], "dst-west", 1)
	net, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	igp := underlay.NewView(net)
	e := NewEngine(net, bgp.NewSystem(net), igp)

	// From the west host, the path must cross the west link (second hop
	// is rB[0] directly).
	pw, err := e.HostToHost(hostW, dstW)
	if err != nil {
		t.Fatal(err)
	}
	if pw.Routers[1] != rB[0] {
		t.Errorf("west path = %v, want exit via west border", pw.Routers)
	}
	// From the east host, the nearest border is the east one even though
	// the destination sits at B's west router.
	pe, err := e.HostToHost(hostE, dstW)
	if err != nil {
		t.Fatal(err)
	}
	if pe.Routers[1] != rB[1] {
		t.Errorf("east path = %v, want exit via east border", pe.Routers)
	}
	// Hot potato: the east host's cost is access(1) + link(5) + B intra
	// (10) + access(1) = 17, cheaper than hauling across A first (26).
	if pe.Cost != 17 {
		t.Errorf("east cost = %d, want 17", pe.Cost)
	}
}

// TestHotPotatoEmptyCandidates covers the degenerate API case.
func TestHotPotatoEmptyCandidates(t *testing.T) {
	b := topology.NewBuilder()
	dA := b.AddDomain("A")
	rA := b.AddRouter(dA, "")
	b.AddHost(dA, rA, "h", 1)
	net, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	igp := underlay.NewView(net)
	if _, ok := igp.HotPotato(rA, nil); ok {
		t.Error("empty candidate list resolved")
	}
}
