package forward_test

// Table-driven egress-selection tests (hot-potato exit-early vs the
// imported-BGP policies of §3.3.2), in an external test package because
// the fixtures are most naturally assembled through core.Evolution,
// which itself imports forward.

import (
	"errors"
	"testing"

	"github.com/evolvable-net/evolve/internal/anycast"
	"github.com/evolvable-net/evolve/internal/core"
	"github.com/evolvable-net/evolve/internal/forward"
	"github.com/evolvable-net/evolve/internal/routing/bgpvn"
	"github.com/evolvable-net/evolve/internal/topology"
)

// egressWorld: participant T is the ingress; participants P2 and P3 both
// provide the non-participant destination domain D (whose host is
// self-addressed), so the imported-BGP policies must choose between two
// equally distant proxies — the tie falls to bone cost, which the two
// peering latencies control.
type egressWorld struct {
	net           *topology.Network
	evo           *core.Evolution
	vn            *bgpvn.System
	rT, rP2, rP3  topology.RouterID
	dD            *topology.Domain
	dst           *topology.Host
	p2ASN, p3ASN  topology.ASN
	ingressDomain topology.ASN
}

func buildEgressWorld(t *testing.T, latTP2, latTP3 int64) *egressWorld {
	t.Helper()
	b := topology.NewBuilder()
	dT := b.AddDomain("T")
	dP2 := b.AddDomain("P2")
	dP3 := b.AddDomain("P3")
	dD := b.AddDomain("D")
	rT := b.AddRouter(dT, "")
	rP2 := b.AddRouter(dP2, "")
	rP3 := b.AddRouter(dP3, "")
	rD := b.AddRouter(dD, "")
	b.Peer(rT, rP2, latTP2)
	b.Peer(rT, rP3, latTP3)
	b.Provide(rP2, rD, 10)
	b.Provide(rP3, rD, 10)
	dst := b.AddHost(dD, rD, "dst", 1)
	net, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	evo, err := core.New(net, core.Config{Option: anycast.Option1})
	if err != nil {
		t.Fatal(err)
	}
	evo.DeployRouter(rT)
	evo.DeployRouter(rP2)
	evo.DeployRouter(rP3)
	vn, err := evo.VN()
	if err != nil {
		t.Fatal(err)
	}
	return &egressWorld{
		net: net, evo: evo, vn: vn,
		rT: rT, rP2: rP2, rP3: rP3,
		dD: dD, dst: dst,
		p2ASN: dP2.ASN, p3ASN: dP3.ASN,
		ingressDomain: dT.ASN,
	}
}

func TestEgressPolicies(t *testing.T) {
	cases := []struct {
		name           string
		latTP2, latTP3 int64
		policy         bgpvn.EgressPolicy
		withdraw       bool
		// wantMember is checked when >= 0; wantDomains when non-nil
		// (either/or acceptance for underlay tie cases).
		wantMember  topology.RouterID
		wantDomains []topology.ASN
		wantIngress bool
	}{
		{
			// Hot potato: the bone is never consulted, the packet exits
			// where it entered regardless of how good the proxies are.
			name:   "exit-early always exits at ingress",
			latTP2: 5, latTP3: 9,
			policy:      bgpvn.ExitEarly,
			wantIngress: true,
		},
		{
			// Imported BGPv(N-1): the AS path T→{P2|P3}→D ends in a
			// participant one hop before D, so the packet rides the bone
			// to that proxy instead of exiting early. Which of the two
			// equal-length paths BGP prefers is a underlay tie we don't
			// pin — but it must be a proxy, not the ingress.
			name:   "path-informed exits at last participant on the AS path",
			latTP2: 5, latTP3: 9,
			policy:      bgpvn.PathInformed,
			wantDomains: []topology.ASN{0 /* p2 */, 1 /* p3 */},
		},
		{
			// Proxy advertisement tie (both proxies are 1 AS from D):
			// the cheaper bone path wins.
			name:   "proxy-informed breaks advertised-distance tie by bone cost",
			latTP2: 5, latTP3: 9,
			policy:     bgpvn.ProxyInformed,
			wantMember: -2, // filled below: rP2
		},
		{
			name:   "proxy-informed bone-cost order flipped",
			latTP2: 9, latTP3: 5,
			policy:     bgpvn.ProxyInformed,
			wantMember: -3, // filled below: rP3
		},
		{
			// Full tie — advertised distance AND bone cost equal — falls
			// to the lowest member id, so selection stays deterministic.
			name:   "proxy-informed breaks full tie by member id",
			latTP2: 7, latTP3: 7,
			policy:     bgpvn.ProxyInformed,
			wantMember: -2, // filled below: rP2 (lower id)
		},
		{
			// Withdrawn route: with D's prefix gone from BGPv(N-1) the
			// path-informed policy has no AS path to consult and must
			// degrade to exit-early rather than blackhole.
			name:   "path-informed falls back to ingress on withdrawn route",
			latTP2: 5, latTP3: 9,
			policy:      bgpvn.PathInformed,
			withdraw:    true,
			wantIngress: true,
		},
		{
			// Withdrawn route: no proxy can advertise a distance either.
			name:   "proxy-informed falls back to ingress on withdrawn route",
			latTP2: 5, latTP3: 9,
			policy:      bgpvn.ProxyInformed,
			withdraw:    true,
			wantIngress: true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := buildEgressWorld(t, tc.latTP2, tc.latTP3)
			if tc.withdraw {
				if !w.evo.BGP.Withdraw(w.dD.ASN, w.dD.Prefix) {
					t.Fatal("withdraw found no origination")
				}
			}
			eg, err := w.vn.SelectEgress(w.rT, w.dst.Addr, tc.policy)
			if err != nil {
				t.Fatalf("SelectEgress: %v", err)
			}
			if eg.Policy != tc.policy {
				t.Errorf("recorded policy = %v, want %v", eg.Policy, tc.policy)
			}
			want := tc.wantMember
			switch want {
			case -2:
				want = w.rP2
			case -3:
				want = w.rP3
			}
			switch {
			case tc.wantIngress:
				if eg.Member != w.rT {
					t.Errorf("member = r%d, want ingress r%d", eg.Member, w.rT)
				}
				if len(eg.BonePath) != 1 || eg.BonePath[0] != w.rT {
					t.Errorf("BonePath = %v, want [ingress]", eg.BonePath)
				}
			case tc.wantDomains != nil:
				got := w.net.DomainOf(eg.Member)
				if got != w.p2ASN && got != w.p3ASN {
					t.Errorf("member r%d in AS%d, want a proxy domain", eg.Member, got)
				}
				if eg.BoneCost <= 0 {
					t.Errorf("bone cost = %d, want > 0 for a proxy exit", eg.BoneCost)
				}
			default:
				if eg.Member != want {
					t.Errorf("member = r%d, want r%d", eg.Member, want)
				}
				if n := len(eg.BonePath); n < 2 || eg.BonePath[0] != w.rT || eg.BonePath[n-1] != want {
					t.Errorf("BonePath = %v, want ingress→r%d", eg.BonePath, want)
				}
			}
		})
	}
}

// TestWithdrawnRouteUnderlayDelivery pins what the underlay itself does
// after the withdrawal: the forwarding walk has no covering route, so
// the exit-early fallback surfaces ErrNoRoute instead of silently
// looping — the authoritative error the egress fallback defers to.
func TestWithdrawnRouteUnderlayDelivery(t *testing.T) {
	w := buildEgressWorld(t, 5, 9)
	if _, err := w.evo.Fwd.FromRouter(w.rT, w.dst.Addr); err != nil {
		t.Fatalf("precondition: %v", err)
	}
	if !w.evo.BGP.Withdraw(w.dD.ASN, w.dD.Prefix) {
		t.Fatal("withdraw found no origination")
	}
	_, err := w.evo.Fwd.FromRouter(w.rT, w.dst.Addr)
	if !errors.Is(err, forward.ErrNoRoute) {
		t.Fatalf("FromRouter after withdrawal = %v, want ErrNoRoute", err)
	}
}
