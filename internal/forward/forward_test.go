package forward

import (
	"errors"
	"testing"

	"github.com/evolvable-net/evolve/internal/addr"
	"github.com/evolvable-net/evolve/internal/routing/bgp"
	"github.com/evolvable-net/evolve/internal/topology"
	"github.com/evolvable-net/evolve/internal/underlay"
)

// world: X ← T → Y (T provides X and Y), hosts in X and Y.
func world(t *testing.T) (*topology.Network, *Engine) {
	t.Helper()
	b := topology.NewBuilder()
	dT := b.AddDomain("T")
	dX := b.AddDomain("X")
	dY := b.AddDomain("Y")
	rT := b.AddRouters(dT, 2)
	rX := b.AddRouters(dX, 2)
	rY := b.AddRouters(dY, 2)
	b.IntraLink(rT[0], rT[1], 2)
	b.IntraLink(rX[0], rX[1], 3)
	b.IntraLink(rY[0], rY[1], 3)
	b.Provide(rT[0], rX[0], 10)
	b.Provide(rT[1], rY[0], 10)
	b.AddHost(dX, rX[1], "hx", 1)
	b.AddHost(dY, rY[1], "hy", 2)
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return n, NewEngine(n, bgp.NewSystem(n), underlay.NewView(n))
}

func TestHostToHost(t *testing.T) {
	n, e := world(t)
	hx := n.HostsIn(n.DomainByName("X").ASN)[0]
	hy := n.HostsIn(n.DomainByName("Y").ASN)[0]
	p, err := e.HostToHost(hx, hy)
	if err != nil {
		t.Fatal(err)
	}
	// hx access 1 + X: r1→r0 (3) + 10 + T: r0→r1 (2) + 10 + Y: r0→r1 (3) + hy access 2
	if p.Cost != 1+3+10+2+10+3+2 {
		t.Errorf("cost = %d, want 31", p.Cost)
	}
	if p.DstHost == nil || p.DstHost.Name != "hy" {
		t.Errorf("DstHost = %+v", p.DstHost)
	}
	if len(p.ASPath) != 3 {
		t.Errorf("ASPath = %v", p.ASPath)
	}
	// Path continuity.
	g := n.RouterGraph()
	for i := 0; i+1 < len(p.Routers); i++ {
		if !g.HasEdge(int(p.Routers[i]), int(p.Routers[i+1])) {
			t.Errorf("hop %d→%d not a link", p.Routers[i], p.Routers[i+1])
		}
	}
	if p.Routers[len(p.Routers)-1] != hy.Attach {
		t.Error("path does not end at destination attach router")
	}
}

func TestIntraDomainDelivery(t *testing.T) {
	n, e := world(t)
	dX := n.DomainByName("X")
	hx := n.HostsIn(dX.ASN)[0]
	p, err := e.FromRouter(dX.Routers[0], hx.Addr)
	if err != nil {
		t.Fatal(err)
	}
	if p.Cost != 3+1 {
		t.Errorf("cost = %d", p.Cost)
	}
	if len(p.ASPath) != 1 {
		t.Errorf("ASPath = %v", p.ASPath)
	}
}

func TestRouterLoopbackDelivery(t *testing.T) {
	n, e := world(t)
	dY := n.DomainByName("Y")
	target := n.Router(dY.Routers[1])
	p, err := e.FromRouter(n.DomainByName("X").Routers[0], target.Loopback)
	if err != nil {
		t.Fatal(err)
	}
	if p.DstRouter != target.ID || p.DstHost != nil {
		t.Errorf("dst = %d host %v", p.DstRouter, p.DstHost)
	}
}

func TestUnassignedAddress(t *testing.T) {
	n, e := world(t)
	// An address inside X's prefix but assigned to nothing.
	dX := n.DomainByName("X")
	hole := dX.Prefix.Addr + 200
	_, err := e.FromRouter(n.DomainByName("Y").Routers[0], hole)
	if !errors.Is(err, ErrHostNotFound) {
		t.Errorf("err = %v", err)
	}
}

func TestNoRoute(t *testing.T) {
	_, e := world(t)
	_, err := e.FromRouter(0, addr.MustParseV4("250.250.250.250"))
	if !errors.Is(err, ErrNoRoute) {
		t.Errorf("err = %v", err)
	}
}

func TestDomainDistance(t *testing.T) {
	n, e := world(t)
	hy := n.HostsIn(n.DomainByName("Y").ASN)[0]
	d, ok := e.DomainDistance(n.DomainByName("X").ASN, hy.Addr)
	if !ok || d != 2 {
		t.Errorf("X→Y domain distance = %d ok %v, want 2", d, ok)
	}
	d, ok = e.DomainDistance(n.DomainByName("Y").ASN, hy.Addr)
	if !ok || d != 0 {
		t.Errorf("local domain distance = %d ok %v", d, ok)
	}
	if _, ok := e.DomainDistance(n.DomainByName("X").ASN, addr.MustParseV4("250.0.0.1")); ok {
		t.Error("unknown destination should have no distance")
	}
}

func TestDomainPath(t *testing.T) {
	n, e := world(t)
	hy := n.HostsIn(n.DomainByName("Y").ASN)[0]
	path, ok := e.DomainPath(n.DomainByName("X").ASN, hy.Addr)
	if !ok || len(path) != 3 {
		t.Errorf("path = %v ok %v", path, ok)
	}
	if path[0] != n.DomainByName("X").ASN || path[2] != n.DomainByName("Y").ASN {
		t.Errorf("path endpoints wrong: %v", path)
	}
}

func TestBaselineMatchesGroundTruthOnTree(t *testing.T) {
	// On a provider tree with no policy shortcuts, the policy path equals
	// the router-graph shortest path.
	n, e := world(t)
	igp := underlay.NewView(n)
	hx := n.HostsIn(n.DomainByName("X").ASN)[0]
	hy := n.HostsIn(n.DomainByName("Y").ASN)[0]
	p, err := e.HostToHost(hx, hy)
	if err != nil {
		t.Fatal(err)
	}
	want := igp.GroundTruthDist(hx.Attach, hy.Attach) + hx.AccessLatency + hy.AccessLatency
	if p.Cost != want {
		t.Errorf("policy cost %d != ground truth %d", p.Cost, want)
	}
}
