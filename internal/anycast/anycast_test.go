package anycast

import (
	"errors"
	"testing"

	"github.com/evolvable-net/evolve/internal/addr"
	"github.com/evolvable-net/evolve/internal/routing/bgp"
	"github.com/evolvable-net/evolve/internal/topology"
	"github.com/evolvable-net/evolve/internal/underlay"
)

func newService(t *testing.T, n *topology.Network) *Service {
	t.Helper()
	return NewService(n, bgp.NewSystem(n), underlay.NewView(n))
}

// figure2 builds the world of the paper's Figure 2:
//
//	D (default) provides X, Y and Q; Q provides Z. Later Q peers with Y.
//
// Domains X, Y, Z are clients; D and Q will deploy IPvN.
func figure2(t *testing.T, withQYPeering bool) (*topology.Network, *Service, *Deployment) {
	t.Helper()
	b := topology.NewBuilder()
	dD := b.AddDomain("D")
	dQ := b.AddDomain("Q")
	dX := b.AddDomain("X")
	dY := b.AddDomain("Y")
	dZ := b.AddDomain("Z")
	rD := b.AddRouters(dD, 2)
	rQ := b.AddRouters(dQ, 2)
	rX := b.AddRouters(dX, 1)
	rY := b.AddRouters(dY, 1)
	rZ := b.AddRouters(dZ, 1)
	b.IntraLink(rD[0], rD[1], 2)
	b.IntraLink(rQ[0], rQ[1], 2)
	b.Provide(rD[0], rX[0], 10)
	b.Provide(rD[0], rY[0], 10)
	b.Provide(rD[1], rQ[0], 10)
	b.Provide(rQ[1], rZ[0], 10)
	if withQYPeering {
		b.Peer(rQ[0], rY[0], 5)
	}
	for _, d := range []*topology.Domain{dX, dY, dZ} {
		b.AddHost(d, d.Routers[0], "h-"+d.Name, 1)
	}
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s := newService(t, n)
	dep, err := s.DeployOption2(0, dD.ASN)
	if err != nil {
		t.Fatal(err)
	}
	// D and Q each deploy one IPvN router.
	s.AddMember(dep, rD[1])
	s.AddMember(dep, rQ[1])
	return n, s, dep
}

func TestOption2Figure2BeforePeering(t *testing.T) {
	n, s, dep := figure2(t, false)
	// X's and Y's anycast packets terminate in D (their provider, the
	// default domain).
	for _, name := range []string{"X", "Y"} {
		h := n.HostsIn(n.DomainByName(name).ASN)[0]
		res, err := s.ResolveFromHost(h, dep.Addr)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got := n.DomainOf(res.Member); got != n.DomainByName("D").ASN {
			t.Errorf("%s resolved into %s, want D", name, n.Domain(got).Name)
		}
	}
	// Z's packets are captured by Q on the way to D.
	h := n.HostsIn(n.DomainByName("Z").ASN)[0]
	res, err := s.ResolveFromHost(h, dep.Addr)
	if err != nil {
		t.Fatal(err)
	}
	if got := n.DomainOf(res.Member); got != n.DomainByName("Q").ASN {
		t.Errorf("Z resolved into %s, want Q", n.Domain(got).Name)
	}
}

func TestOption2Figure2AfterPeering(t *testing.T) {
	n, s, dep := figure2(t, true)
	dQ := n.DomainByName("Q")
	dY := n.DomainByName("Y")
	// Before the advert, Y still lands in D (the peering link exists but
	// carries no anycast route).
	hY := n.HostsIn(dY.ASN)[0]
	res, err := s.ResolveFromHost(hY, dep.Addr)
	if err != nil {
		t.Fatal(err)
	}
	if got := n.DomainOf(res.Member); got != n.DomainByName("D").ASN {
		t.Fatalf("pre-advert Y resolved into %s", n.Domain(got).Name)
	}
	costBefore := res.Cost

	// "Q can peer with Y to advertise its path for the anycast address;
	// Y's packets will then be delivered to Q rather than D."
	if err := s.AdvertiseToNeighbors(dep, dQ.ASN, dY.ASN); err != nil {
		t.Fatal(err)
	}
	res, err = s.ResolveFromHost(hY, dep.Addr)
	if err != nil {
		t.Fatal(err)
	}
	if got := n.DomainOf(res.Member); got != dQ.ASN {
		t.Errorf("post-advert Y resolved into %s, want Q", n.Domain(got).Name)
	}
	if res.Cost >= costBefore {
		t.Errorf("peering advert did not improve proximity: %d → %d", costBefore, res.Cost)
	}
	// X is unaffected.
	hX := n.HostsIn(n.DomainByName("X").ASN)[0]
	res, err = s.ResolveFromHost(hX, dep.Addr)
	if err != nil {
		t.Fatal(err)
	}
	if got := n.DomainOf(res.Member); got != n.DomainByName("D").ASN {
		t.Errorf("X resolved into %s, want D", n.Domain(got).Name)
	}
}

func TestOption2NoExportDoesNotLeak(t *testing.T) {
	n, s, dep := figure2(t, true)
	dQ := n.DomainByName("Q")
	dY := n.DomainByName("Y")
	if err := s.AdvertiseToNeighbors(dep, dQ.ASN, dY.ASN); err != nil {
		t.Fatal(err)
	}
	s.BGP().Converge()
	// X must not see the host route Y received (NO_EXPORT via D anyway).
	if _, ok := s.BGP().BestRoute(n.DomainByName("X").ASN, addr.HostPrefix(dep.Addr)); ok {
		t.Error("selective anycast advert leaked beyond the peering")
	}
}

func TestOption2DeadEndWithoutDefaultMember(t *testing.T) {
	b := topology.NewBuilder()
	dD := b.AddDomain("D")
	dX := b.AddDomain("X")
	rD := b.AddRouter(dD, "")
	rX := b.AddRouter(dX, "")
	b.Provide(rD, rX, 10)
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s := newService(t, n)
	dep, err := s.DeployOption2(0, dD.ASN)
	if err != nil {
		t.Fatal(err)
	}
	// No members anywhere: X's packet rides to D and dies there.
	_, err = s.ResolveFromRouter(rX, dep.Addr)
	if !errors.Is(err, ErrDeadEnd) {
		t.Errorf("err = %v, want ErrDeadEnd", err)
	}
	// Adding the required default-domain member fixes it.
	s.AddMember(dep, rD)
	res, err := s.ResolveFromRouter(rX, dep.Addr)
	if err != nil || res.Member != rD {
		t.Errorf("res = %+v err %v", res, err)
	}
}

func TestOption1UniversalAccess(t *testing.T) {
	// One participating stub in a transit-stub internet: every host in
	// every domain must reach it (the paper's universal access).
	n, err := topology.TransitStub(3, 3, 0.4, topology.GenConfig{
		Seed: 21, RoutersPerDomain: 3, HostsPerDomain: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := newService(t, n)
	dep, err := s.DeployOption1(0)
	if err != nil {
		t.Fatal(err)
	}
	origin := n.DomainByName("S1.1")
	member := origin.Routers[0]
	s.AddMember(dep, member)

	for _, h := range n.Hosts {
		res, err := s.ResolveFromHost(h, dep.Addr)
		if err != nil {
			t.Fatalf("host %s: %v", h.Name, err)
		}
		if res.Member != member {
			t.Errorf("host %s landed at %d", h.Name, res.Member)
		}
		if res.Cost <= 0 && h.Domain != origin.ASN {
			t.Errorf("host %s zero-cost cross-domain path", h.Name)
		}
	}
}

func TestOption1ClosestParticipantWins(t *testing.T) {
	// Provider chain A←B←C (A provides B, B provides C). Participants in
	// A and C; a client in B resolves to whichever is policy-preferred:
	// the customer route (C) beats the provider route (A).
	b := topology.NewBuilder()
	dA := b.AddDomain("A")
	dB := b.AddDomain("B")
	dC := b.AddDomain("C")
	rA := b.AddRouter(dA, "")
	rB := b.AddRouter(dB, "")
	rC := b.AddRouter(dC, "")
	b.Provide(rA, rB, 10)
	b.Provide(rB, rC, 10)
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s := newService(t, n)
	dep, _ := s.DeployOption1(0)
	s.AddMember(dep, rA)
	s.AddMember(dep, rC)
	res, err := s.ResolveFromRouter(rB, dep.Addr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Member != rC {
		t.Errorf("B resolved to %d, want customer-side member %d", res.Member, rC)
	}
}

func TestSeamlessSpreadMovesCapture(t *testing.T) {
	// Figure 1 dynamics, inter-domain: client in Z, deployment spreads
	// X → Y → Z along Z's provider chain; capture moves closer, cost
	// drops monotonically, and the client's anycast address never
	// changes.
	b := topology.NewBuilder()
	dX := b.AddDomain("X")
	dY := b.AddDomain("Y")
	dZ := b.AddDomain("Z")
	rX := b.AddRouter(dX, "")
	rY := b.AddRouter(dY, "")
	rZ := b.AddRouters(dZ, 2)
	b.IntraLink(rZ[0], rZ[1], 2)
	b.Provide(rX, rY, 10)
	b.Provide(rY, rZ[0], 10)
	h := b.AddHost(dZ, rZ[1], "C", 1)
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s := newService(t, n)
	dep, _ := s.DeployOption2(0, dX.ASN) // X is first mover and default
	s.AddMember(dep, rX)

	res1, err := s.ResolveFromHost(h, dep.Addr)
	if err != nil || n.DomainOf(res1.Member) != dX.ASN {
		t.Fatalf("stage 1: %+v err %v", res1, err)
	}
	s.AddMember(dep, rY)
	res2, err := s.ResolveFromHost(h, dep.Addr)
	if err != nil || n.DomainOf(res2.Member) != dY.ASN {
		t.Fatalf("stage 2: %+v err %v", res2, err)
	}
	s.AddMember(dep, rZ[0])
	res3, err := s.ResolveFromHost(h, dep.Addr)
	if err != nil || n.DomainOf(res3.Member) != dZ.ASN {
		t.Fatalf("stage 3: %+v err %v", res3, err)
	}
	if !(res3.Cost < res2.Cost && res2.Cost < res1.Cost) {
		t.Errorf("costs not monotone: %d, %d, %d", res1.Cost, res2.Cost, res3.Cost)
	}
}

func TestRemoveMemberMovesCapture(t *testing.T) {
	n, s, dep := figure2(t, false)
	dQ := n.DomainByName("Q")
	hZ := n.HostsIn(n.DomainByName("Z").ASN)[0]
	res, _ := s.ResolveFromHost(hZ, dep.Addr)
	if n.DomainOf(res.Member) != dQ.ASN {
		t.Fatal("precondition: Z captured by Q")
	}
	// Q's only member leaves: Z falls through to D.
	s.RemoveMember(dep, dep.MembersIn(dQ.ASN)[0])
	res, err := s.ResolveFromHost(hZ, dep.Addr)
	if err != nil {
		t.Fatal(err)
	}
	if got := n.DomainOf(res.Member); got != n.DomainByName("D").ASN {
		t.Errorf("after removal Z resolved into %s", n.Domain(got).Name)
	}
}

func TestOption1WithdrawOnLastMember(t *testing.T) {
	b := topology.NewBuilder()
	dA := b.AddDomain("A")
	dB := b.AddDomain("B")
	rA := b.AddRouter(dA, "")
	rB := b.AddRouter(dB, "")
	b.Peer(rA, rB, 10)
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s := newService(t, n)
	dep, _ := s.DeployOption1(0)
	s.AddMember(dep, rA)
	if _, err := s.ResolveFromRouter(rB, dep.Addr); err != nil {
		t.Fatal(err)
	}
	s.RemoveMember(dep, rA)
	if _, err := s.ResolveFromRouter(rB, dep.Addr); !errors.Is(err, ErrNoRoute) {
		t.Errorf("err = %v, want ErrNoRoute", err)
	}
}

func TestResolutionPathIsConnected(t *testing.T) {
	n, s, dep := figure2(t, false)
	g := n.RouterGraph()
	for _, h := range n.Hosts {
		res, err := s.ResolveFromHost(h, dep.Addr)
		if err != nil {
			t.Fatal(err)
		}
		if res.RouterPath[0] != h.Attach {
			t.Errorf("path starts at %d, want attach %d", res.RouterPath[0], h.Attach)
		}
		if res.RouterPath[len(res.RouterPath)-1] != res.Member {
			t.Error("path does not end at member")
		}
		for i := 0; i+1 < len(res.RouterPath); i++ {
			if !g.HasEdge(int(res.RouterPath[i]), int(res.RouterPath[i+1])) {
				t.Errorf("path hop %d→%d is not a link", res.RouterPath[i], res.RouterPath[i+1])
			}
		}
	}
}

func TestMembersAccessors(t *testing.T) {
	n, s, dep := figure2(t, false)
	if got := len(dep.Members()); got != 2 {
		t.Errorf("Members = %d", got)
	}
	if got := len(dep.ParticipatingASes()); got != 2 {
		t.Errorf("ParticipatingASes = %d", got)
	}
	dD := n.DomainByName("D")
	if got := dep.MembersIn(dD.ASN); len(got) != 1 {
		t.Errorf("MembersIn(D) = %v", got)
	}
	// Idempotent add.
	s.AddMember(dep, dep.MembersIn(dD.ASN)[0])
	if got := len(dep.Members()); got != 2 {
		t.Errorf("idempotent add broke Members: %d", got)
	}
	// Removing an unknown member is a no-op.
	s.RemoveMember(dep, 9999)
}

func TestCatchment(t *testing.T) {
	n, s, dep := figure2(t, false)
	c := s.Catchment(dep)
	if len(c[-1]) != 0 {
		t.Errorf("unresolved domains: %v", c[-1])
	}
	dD := n.DomainByName("D").ASN
	dQ := n.DomainByName("Q").ASN
	// Every domain lands in D or Q; Z and Q land in Q.
	var total int
	for p, srcs := range c {
		if p != dD && p != dQ {
			t.Errorf("capture by non-participant AS%d", p)
		}
		total += len(srcs)
	}
	if total != len(n.ASNs()) {
		t.Errorf("catchment covers %d/%d domains", total, len(n.ASNs()))
	}
	inQ := map[topology.ASN]bool{}
	for _, a := range c[dQ] {
		inQ[a] = true
	}
	if !inQ[n.DomainByName("Z").ASN] || !inQ[dQ] {
		t.Errorf("Q's catchment = %v", c[dQ])
	}
}

func TestBootstrapFindsOtherParticipant(t *testing.T) {
	n, s, dep := figure2(t, false)
	dQ := n.DomainByName("Q")
	dD := n.DomainByName("D")
	qMember := dep.MembersIn(dQ.ASN)[0]
	// Q bootstraps from its own member: must land on D's member, not
	// capture at home.
	res, err := s.Bootstrap(dep, dQ.ASN, qMember)
	if err != nil {
		t.Fatal(err)
	}
	if got := n.DomainOf(res.Member); got != dD.ASN {
		t.Errorf("bootstrap landed in %s, want D", n.Domain(got).Name)
	}
	// Membership state must be restored afterwards.
	if len(dep.MembersIn(dQ.ASN)) != 1 {
		t.Error("bootstrap did not restore membership")
	}
	res2, err := s.ResolveFromRouter(qMember, dep.Addr)
	if err != nil || res2.Member != qMember {
		t.Errorf("post-bootstrap resolve = %+v err %v", res2, err)
	}
	// The default domain cannot bootstrap off itself.
	if _, err := s.Bootstrap(dep, dD.ASN, dep.MembersIn(dD.ASN)[0]); err == nil {
		t.Error("default-domain bootstrap accepted")
	}
}

func TestBootstrapOption1RestoresOrigination(t *testing.T) {
	b := topology.NewBuilder()
	dA := b.AddDomain("A")
	dB := b.AddDomain("B")
	dC := b.AddDomain("C")
	rA := b.AddRouter(dA, "")
	rB := b.AddRouter(dB, "")
	rC := b.AddRouter(dC, "")
	b.Provide(rA, rB, 10)
	b.Provide(rB, rC, 10)
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s := newService(t, n)
	dep, _ := s.DeployOption1(0)
	s.AddMember(dep, rA)
	s.AddMember(dep, rC)
	res, err := s.Bootstrap(dep, dC.ASN, rC)
	if err != nil {
		t.Fatal(err)
	}
	if res.Member != rA {
		t.Errorf("bootstrap member = %d, want %d", res.Member, rA)
	}
	// C's origination must be back: B resolves to its customer-side C.
	res, err = s.ResolveFromRouter(rB, dep.Addr)
	if err != nil || res.Member != rC {
		t.Errorf("post-bootstrap resolve = %+v err %v", res, err)
	}
}

func TestResolveErrors(t *testing.T) {
	n, s, _ := figure2(t, false)
	if _, err := s.ResolveFromRouter(0, addr.MustParseV4("9.9.9.9")); err == nil {
		t.Error("undeployed address resolved")
	}
	if s.Deployment(addr.MustParseV4("9.9.9.9")) != nil {
		t.Error("unknown deployment not nil")
	}
	if _, err := s.DeployOption2(0, topology.ASN(999)); err == nil {
		t.Error("unknown default AS accepted")
	}
	dep2, err := s.DeployOption1(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AdvertiseToNeighbors(dep2, n.ASNs()[0]); err == nil {
		t.Error("peering advert on option-1 deployment accepted")
	}
}
