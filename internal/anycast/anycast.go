// Package anycast implements the paper's network-level redirection
// primitive (§3.1–3.2): an IP Anycast service over the simulated internet
// that steers a packet destined to a deployment's anycast address to an
// IPvN router, under either deployment option:
//
//   - Option 1 ("non-aggregatable addresses, global routes"): the anycast
//     address is a host prefix from a designated block; every
//     participating AS originates it into BGP.
//   - Option 2 ("aggregatable addresses, default routes"): the anycast
//     address is an ordinary unicast address inside the *default* ISP's
//     aggregate. Non-participants need no changes: longest-prefix match
//     carries the packet toward the default domain, and the first
//     participant domain along that path captures it via its IGP.
//     Participants may additionally advertise the host route to chosen
//     neighbours (NO_EXPORT) to widen their reach.
//
// Resolution walks the packet's actual forwarding trajectory: intra-domain
// by converged-IGP shortest paths, inter-domain by BGP policy, with
// capture by the first traversed domain whose IGP knows the address.
package anycast

import (
	"errors"
	"fmt"
	"sort"

	"github.com/evolvable-net/evolve/internal/addr"
	"github.com/evolvable-net/evolve/internal/graph"
	"github.com/evolvable-net/evolve/internal/routing/bgp"
	"github.com/evolvable-net/evolve/internal/topology"
	"github.com/evolvable-net/evolve/internal/underlay"
)

// Option selects a deployment strategy from §3.2.
type Option int

const (
	// Option1 propagates non-aggregatable anycast host routes globally.
	Option1 Option = 1
	// Option2 roots the anycast address in a default ISP's aggregate.
	Option2 Option = 2
	// OptionGIA uses Katabi et al.'s GIA scheme, which §3.2 presents as
	// the eventual replacement for option 2: the anycast address carries
	// a well-known indicator prefix plus the home domain's unicast bits.
	// Routers without an anycast route fall back to forwarding toward
	// the home domain; the "search" extension lets participants push
	// host routes to their BGP neighbours for closer captures.
	OptionGIA Option = 3
)

// Errors returned by Resolve.
var (
	// ErrNoRoute: the source domain has no route at all toward the
	// anycast address (option 1 with no participant route visible).
	ErrNoRoute = errors.New("anycast: no route toward anycast address")
	// ErrDeadEnd: the packet reached the end of its unicast trajectory
	// (the default domain) without meeting an IPvN router — the GIA/§3.2
	// requirement that the home domain contain at least one member is
	// violated.
	ErrDeadEnd = errors.New("anycast: trajectory ended with no IPvN router")
	// ErrForwardingLoop: inconsistent inter-domain state produced a loop.
	ErrForwardingLoop = errors.New("anycast: inter-domain forwarding loop")
)

// Deployment is one IPvN generation's anycast group.
type Deployment struct {
	Option    Option
	Addr      addr.V4
	Group     uint32
	DefaultAS topology.ASN // option 2 only

	members     map[topology.RouterID]bool
	membersByAS map[topology.ASN][]topology.RouterID
}

// Clone returns a deep copy of the deployment's membership state. The
// epoch machinery in internal/core freezes a clone into each published
// routing epoch so the lock-free send path resolves against membership
// that cannot change underneath it; Bootstrap's temporary masking during
// bone construction likewise mutates only the unpublished clone.
func (d *Deployment) Clone() *Deployment {
	c := &Deployment{
		Option:      d.Option,
		Addr:        d.Addr,
		Group:       d.Group,
		DefaultAS:   d.DefaultAS,
		members:     make(map[topology.RouterID]bool, len(d.members)),
		membersByAS: make(map[topology.ASN][]topology.RouterID, len(d.membersByAS)),
	}
	for m := range d.members {
		c.members[m] = true
	}
	for asn, ms := range d.membersByAS {
		c.membersByAS[asn] = append([]topology.RouterID(nil), ms...)
	}
	return c
}

// Members returns all member routers in id order.
func (d *Deployment) Members() []topology.RouterID {
	out := make([]topology.RouterID, 0, len(d.members))
	for m := range d.members {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// MembersIn returns the member routers inside one domain, in id order.
func (d *Deployment) MembersIn(asn topology.ASN) []topology.RouterID {
	out := append([]topology.RouterID(nil), d.membersByAS[asn]...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ParticipatingASes returns the domains with at least one member.
func (d *Deployment) ParticipatingASes() []topology.ASN {
	out := make([]topology.ASN, 0, len(d.membersByAS))
	for asn := range d.membersByAS {
		out = append(out, asn)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Service manages deployments over one internet.
type Service struct {
	net *topology.Network
	bgp *bgp.System
	igp *underlay.View

	deployments map[addr.V4]*Deployment
}

// NewService creates the anycast layer over an existing BGP system.
func NewService(net *topology.Network, bgpSys *bgp.System, igp *underlay.View) *Service {
	return &Service{
		net:         net,
		bgp:         bgpSys,
		igp:         igp,
		deployments: map[addr.V4]*Deployment{},
	}
}

// BGP exposes the underlying BGP system (experiments adjust originations
// through the service, but read state directly).
func (s *Service) BGP() *bgp.System { return s.bgp }

// DeployOption1 creates an option-1 deployment for the given group number.
func (s *Service) DeployOption1(group uint32) (*Deployment, error) {
	a, err := addr.Option1Address(group)
	if err != nil {
		return nil, err
	}
	d := &Deployment{
		Option:      Option1,
		Addr:        a,
		Group:       group,
		members:     map[topology.RouterID]bool{},
		membersByAS: map[topology.ASN][]topology.RouterID{},
	}
	s.deployments[a] = d
	return d, nil
}

// DeployOption2 creates an option-2 deployment rooted in defaultAS's
// aggregate. The default domain should gain a member before traffic is
// sent (§3.2: the home domain must include at least one group member).
func (s *Service) DeployOption2(group uint32, defaultAS topology.ASN) (*Deployment, error) {
	dom := s.net.Domain(defaultAS)
	if dom == nil {
		return nil, fmt.Errorf("anycast: unknown default AS %d", defaultAS)
	}
	a, err := addr.Option2Address(dom.Prefix, group)
	if err != nil {
		return nil, err
	}
	d := &Deployment{
		Option:      Option2,
		Addr:        a,
		Group:       group,
		DefaultAS:   defaultAS,
		members:     map[topology.RouterID]bool{},
		membersByAS: map[topology.ASN][]topology.RouterID{},
	}
	s.deployments[a] = d
	return d, nil
}

// DeployGIA creates a GIA deployment homed in homeAS: the anycast address
// lives in the dedicated GIA indicator space and embeds homeAS's site
// bits, so any router can derive the fallback direction without carrying
// an anycast route. The home domain must gain a member before traffic is
// sent (GIA requires the home domain to contain a group member).
func (s *Service) DeployGIA(group uint8, homeAS topology.ASN) (*Deployment, error) {
	dom := s.net.Domain(homeAS)
	if dom == nil {
		return nil, fmt.Errorf("anycast: unknown GIA home AS %d", homeAS)
	}
	a, err := addr.GIAAddress(dom.Prefix, group)
	if err != nil {
		return nil, err
	}
	d := &Deployment{
		Option:      OptionGIA,
		Addr:        a,
		Group:       uint32(group),
		DefaultAS:   homeAS,
		members:     map[topology.RouterID]bool{},
		membersByAS: map[topology.ASN][]topology.RouterID{},
	}
	s.deployments[a] = d
	return d, nil
}

// Deployment returns the deployment owning the anycast address a, or nil.
func (s *Service) Deployment(a addr.V4) *Deployment { return s.deployments[a] }

// AddMember registers router id as an IPvN router accepting the
// deployment's anycast address. The router's domain implicitly becomes a
// participant: its IGP now carries the address and, for option 1, the
// domain originates the anycast host route into BGP. It reports whether
// membership actually changed (false for an existing member).
func (s *Service) AddMember(d *Deployment, id topology.RouterID) bool {
	if d.members[id] {
		return false
	}
	asn := s.net.DomainOf(id)
	firstInAS := len(d.membersByAS[asn]) == 0
	d.members[id] = true
	// Keep the per-domain slice in id order: capture resolution breaks
	// IGP-distance ties toward the first member scanned (ClosestIn), so
	// the slice order is routing-visible and must not depend on the
	// deployment sequence — a deployment reached by different histories
	// must resolve identically.
	ms := append(d.membersByAS[asn], id)
	sort.Slice(ms, func(i, j int) bool { return ms[i] < ms[j] })
	d.membersByAS[asn] = ms
	if d.Option == Option1 && firstInAS {
		s.bgp.Originate(asn, addr.HostPrefix(d.Addr))
	}
	return true
}

// RemoveMember withdraws a member; if it was the domain's last member the
// domain stops participating (and, for option 1, withdraws its BGP
// origination). It reports whether membership actually changed (false
// for a non-member).
func (s *Service) RemoveMember(d *Deployment, id topology.RouterID) bool {
	if !d.members[id] {
		return false
	}
	delete(d.members, id)
	asn := s.net.DomainOf(id)
	rest := d.membersByAS[asn][:0]
	for _, m := range d.membersByAS[asn] {
		if m != id {
			rest = append(rest, m)
		}
	}
	if len(rest) == 0 {
		delete(d.membersByAS, asn)
		if d.Option == Option1 {
			s.bgp.Withdraw(asn, addr.HostPrefix(d.Addr))
		}
	} else {
		d.membersByAS[asn] = rest
	}
	return true
}

// AdvertiseToNeighbors configures the option-2 widening: participant asn
// advertises the anycast host route to the listed neighbours with
// NO_EXPORT semantics (Figure 2's "Q peers with Y"). For GIA deployments
// the same mechanism models the BGP "search" extension, whereby border
// routers of nearby domains learn of group members.
func (s *Service) AdvertiseToNeighbors(d *Deployment, asn topology.ASN, neighbors ...topology.ASN) error {
	if d.Option != Option2 && d.Option != OptionGIA {
		return fmt.Errorf("anycast: peering advertisement applies to option 2 and GIA deployments")
	}
	if len(d.membersByAS[asn]) == 0 {
		return fmt.Errorf("anycast: AS%d has no members of group %s", asn, d.Addr)
	}
	s.bgp.OriginateTo(asn, addr.HostPrefix(d.Addr), neighbors...)
	return nil
}

// Resolution describes where an anycast packet lands and how it got there.
type Resolution struct {
	Member topology.RouterID
	// RouterPath is the full router-level trajectory from the source
	// router to the member, inclusive.
	RouterPath []topology.RouterID
	// ASPath is the domain-level trajectory, starting at the source's
	// domain and ending at the member's.
	ASPath []topology.ASN
	// Cost is the summed underlay link cost of RouterPath.
	Cost int64
}

// ResolveFromRouter traces the anycast packet from a router toward a,
// using the live deployment registered under a.
func (s *Service) ResolveFromRouter(from topology.RouterID, a addr.V4) (Resolution, error) {
	d := s.deployments[a]
	if d == nil {
		return Resolution{}, fmt.Errorf("anycast: %s is not a deployed anycast address", a)
	}
	return s.ResolveFromRouterVia(d, from)
}

// ResolveFromRouterVia traces the anycast packet from a router toward
// d's address, resolving capture against the membership in d itself —
// which may be a frozen Clone rather than the live deployment. The
// lock-free send path uses this with each epoch's clone so concurrent
// membership churn cannot tear a resolution.
func (s *Service) ResolveFromRouterVia(d *Deployment, from topology.RouterID) (Resolution, error) {
	a := d.Addr
	res := Resolution{RouterPath: []topology.RouterID{from}}
	entry := from
	visited := map[topology.ASN]bool{}
	for {
		asn := s.net.DomainOf(entry)
		res.ASPath = append(res.ASPath, asn)
		if visited[asn] {
			return Resolution{}, ErrForwardingLoop
		}
		visited[asn] = true

		// Capture: the first traversed participant domain delivers to its
		// closest member via its IGP.
		if members := d.membersByAS[asn]; len(members) > 0 {
			m, dist, ok := s.igp.ClosestIn(entry, members)
			if ok {
				res.Member = m
				res.Cost += dist
				res.RouterPath = appendPath(res.RouterPath, s.igp.IntraPath(entry, m))
				return res, nil
			}
		}

		// Otherwise forward along BGP policy toward the address. A GIA
		// address lies outside every unicast aggregate, so when no
		// (search-advertised) anycast route exists the router derives the
		// fallback from the address itself: toward the home domain.
		route, ok := s.bgp.Lookup(asn, a)
		if !ok && d.Option == OptionGIA {
			home := s.net.Domain(d.DefaultAS)
			route, ok = s.bgp.Lookup(asn, home.Prefix.Addr+1)
		}
		if !ok {
			return Resolution{}, ErrNoRoute
		}
		next := route.NextHop()
		if next == -1 {
			// The domain itself originates the covering prefix but has no
			// member: the unicast trajectory ends here.
			return Resolution{}, ErrDeadEnd
		}
		link, ok := s.igp.HotPotato(entry, s.bgp.LinksBetween(asn, next))
		if !ok {
			return Resolution{}, fmt.Errorf("anycast: BGP chose non-adjacent AS%d from AS%d", next, asn)
		}
		if s.igp.IntraDist(entry, link.From) >= graph.Inf {
			// Intra-domain failures severed the way to the border.
			return Resolution{}, ErrNoRoute
		}
		res.Cost += s.igp.IntraDist(entry, link.From) + link.Latency
		res.RouterPath = appendPath(res.RouterPath, s.igp.IntraPath(entry, link.From))
		res.RouterPath = append(res.RouterPath, link.To)
		entry = link.To
	}
}

// Catchment computes the deployment's capture map: for every domain in
// the internet, which participant its anycast traffic lands in (probed
// from the domain's first router). This is the geography behind
// assumption A4's revenue flows — each participant's catchment is the
// traffic it attracts. Domains whose resolution fails are reported under
// ASN -1.
func (s *Service) Catchment(d *Deployment) map[topology.ASN][]topology.ASN {
	out := map[topology.ASN][]topology.ASN{}
	for _, asn := range s.net.ASNs() {
		dom := s.net.Domain(asn)
		res, err := s.ResolveFromRouter(dom.Routers[0], d.Addr)
		if err != nil {
			out[-1] = append(out[-1], asn)
			continue
		}
		p := s.net.DomainOf(res.Member)
		out[p] = append(out[p], asn)
	}
	return out
}

// Bootstrap performs the §3.3.1 anycast bootstrap for a newly joining
// participant: a resolution from one of asn's routers carried out as if
// asn were still a non-participant, yielding some *other* participant's
// IPvN router to tunnel to. Per the paper's footnote, this only works
// before the joining ISP advertises the anycast address itself — the
// method therefore masks asn's participation (capture and, for option 1,
// its BGP origination) for the duration of the trace.
func (s *Service) Bootstrap(d *Deployment, asn topology.ASN, from topology.RouterID) (Resolution, error) {
	if (d.Option == Option2 || d.Option == OptionGIA) && asn == d.DefaultAS {
		return Resolution{}, fmt.Errorf("anycast: the default domain anchors the deployment and cannot bootstrap off itself")
	}
	members := d.membersByAS[asn]
	if len(members) > 0 {
		// Mask the domain's participation: capture, and any BGP
		// originations of the anycast host route (option 1's global
		// route, or option 2's selective peering advertisements).
		delete(d.membersByAS, asn)
		defer func() { d.membersByAS[asn] = members }()
		restore, _ := s.bgp.SuspendOriginations(asn, addr.HostPrefix(d.Addr))
		defer restore()
	}
	// Resolve against d itself, not the registry entry for d.Addr: d may
	// be a frozen clone (epoch builds pass one), and the membership mask
	// above only exists on d.
	return s.ResolveFromRouterVia(d, from)
}

// ResolveFromHost traces from a host (adding its access-link cost).
func (s *Service) ResolveFromHost(h *topology.Host, a addr.V4) (Resolution, error) {
	res, err := s.ResolveFromRouter(h.Attach, a)
	if err != nil {
		return Resolution{}, err
	}
	res.Cost += h.AccessLatency
	return res, nil
}

// ResolveFromHostVia traces from a host against a specific (possibly
// frozen) deployment, adding the host's access-link cost.
func (s *Service) ResolveFromHostVia(d *Deployment, h *topology.Host) (Resolution, error) {
	res, err := s.ResolveFromRouterVia(d, h.Attach)
	if err != nil {
		return Resolution{}, err
	}
	res.Cost += h.AccessLatency
	return res, nil
}

// appendPath appends p to path, dropping p's first element when it
// duplicates path's last.
func appendPath(path, p []topology.RouterID) []topology.RouterID {
	for i, r := range p {
		if i == 0 && len(path) > 0 && path[len(path)-1] == r {
			continue
		}
		path = append(path, r)
	}
	return path
}
