package anycast

import (
	"errors"
	"testing"

	"github.com/evolvable-net/evolve/internal/addr"
	"github.com/evolvable-net/evolve/internal/topology"
)

// giaWorld: home domain H (provides X and Q), Q provides Z — the Figure-2
// shape so GIA behaviour is directly comparable to option 2.
func giaWorld(t *testing.T) (*topology.Network, *Service, *Deployment) {
	t.Helper()
	b := topology.NewBuilder()
	dH := b.AddDomain("H")
	dQ := b.AddDomain("Q")
	dX := b.AddDomain("X")
	dZ := b.AddDomain("Z")
	rH := b.AddRouters(dH, 2)
	rQ := b.AddRouters(dQ, 2)
	rX := b.AddRouter(dX, "")
	rZ := b.AddRouter(dZ, "")
	b.IntraLink(rH[0], rH[1], 2)
	b.IntraLink(rQ[0], rQ[1], 2)
	b.Provide(rH[0], rX, 10)
	b.Provide(rH[1], rQ[0], 10)
	b.Provide(rQ[1], rZ, 10)
	for _, d := range []*topology.Domain{dX, dZ} {
		b.AddHost(d, d.Routers[0], "h"+d.Name, 1)
	}
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s := newService(t, n)
	dep, err := s.DeployGIA(0, dH.ASN)
	if err != nil {
		t.Fatal(err)
	}
	s.AddMember(dep, rH[1])
	s.AddMember(dep, rQ[1])
	return n, s, dep
}

func TestGIAAddressShape(t *testing.T) {
	_, _, dep := giaWorld(t)
	if dep.Option != OptionGIA {
		t.Fatal("wrong option")
	}
	if !addr.IsGIA(dep.Addr) {
		t.Errorf("%s does not carry the GIA indicator", dep.Addr)
	}
	if addr.IsOption1(dep.Addr) {
		t.Error("GIA address inside the option-1 block")
	}
}

func TestGIAHomeFallback(t *testing.T) {
	// X has no anycast route for the GIA address (no search adverts):
	// the fallback carries the packet toward home H, captured there.
	n, s, dep := giaWorld(t)
	hX := n.HostsIn(n.DomainByName("X").ASN)[0]
	res, err := s.ResolveFromHost(hX, dep.Addr)
	if err != nil {
		t.Fatal(err)
	}
	if got := n.DomainOf(res.Member); got != n.DomainByName("H").ASN {
		t.Errorf("X landed in %s, want home H", n.Domain(got).Name)
	}
	// Z's fallback path to H transits participant Q: captured en route.
	hZ := n.HostsIn(n.DomainByName("Z").ASN)[0]
	res, err = s.ResolveFromHost(hZ, dep.Addr)
	if err != nil {
		t.Fatal(err)
	}
	if got := n.DomainOf(res.Member); got != n.DomainByName("Q").ASN {
		t.Errorf("Z landed in %s, want Q capture", n.Domain(got).Name)
	}
}

func TestGIASearchImprovesCapture(t *testing.T) {
	// Add a direct Q–X peering; without search X still goes home, with
	// the search advert X is captured by Q over the shortcut.
	b := topology.NewBuilder()
	dH := b.AddDomain("H")
	dQ := b.AddDomain("Q")
	dX := b.AddDomain("X")
	rH := b.AddRouter(dH, "")
	rQ := b.AddRouters(dQ, 2)
	rX := b.AddRouter(dX, "")
	b.IntraLink(rQ[0], rQ[1], 2)
	b.Provide(rH, rX, 30)
	b.Provide(rH, rQ[0], 10)
	b.Peer(rQ[0], rX, 5)
	hX := b.AddHost(dX, rX, "hx", 1)
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s := newService(t, n)
	dep, err := s.DeployGIA(0, dH.ASN)
	if err != nil {
		t.Fatal(err)
	}
	s.AddMember(dep, rH)
	s.AddMember(dep, rQ[1])

	res, err := s.ResolveFromHost(hX, dep.Addr)
	if err != nil {
		t.Fatal(err)
	}
	if got := n.DomainOf(res.Member); got != dH.ASN {
		t.Fatalf("pre-search X landed in %s", n.Domain(got).Name)
	}
	costBefore := res.Cost

	// GIA search: Q pushes a host route to its BGP neighbours.
	if err := s.AdvertiseToNeighbors(dep, dQ.ASN, dX.ASN); err != nil {
		t.Fatal(err)
	}
	res, err = s.ResolveFromHost(hX, dep.Addr)
	if err != nil {
		t.Fatal(err)
	}
	if got := n.DomainOf(res.Member); got != dQ.ASN {
		t.Errorf("post-search X landed in %s, want Q", n.Domain(got).Name)
	}
	if res.Cost >= costBefore {
		t.Errorf("search did not improve proximity: %d → %d", costBefore, res.Cost)
	}
}

func TestGIADeadEndWithoutHomeMember(t *testing.T) {
	b := topology.NewBuilder()
	dH := b.AddDomain("H")
	dX := b.AddDomain("X")
	rH := b.AddRouter(dH, "")
	rX := b.AddRouter(dX, "")
	b.Provide(rH, rX, 10)
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s := newService(t, n)
	dep, err := s.DeployGIA(0, dH.ASN)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.ResolveFromRouter(rX, dep.Addr); !errors.Is(err, ErrDeadEnd) {
		t.Errorf("err = %v, want ErrDeadEnd (GIA requires a home member)", err)
	}
}

func TestGIADeployValidation(t *testing.T) {
	_, s, _ := giaWorld(t)
	if _, err := s.DeployGIA(1, topology.ASN(999)); err == nil {
		t.Error("unknown home AS accepted")
	}
}
