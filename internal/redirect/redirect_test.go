package redirect

import (
	"errors"
	"math/rand"
	"testing"

	"github.com/evolvable-net/evolve/internal/anycast"
	"github.com/evolvable-net/evolve/internal/forward"
	"github.com/evolvable-net/evolve/internal/routing/bgp"
	"github.com/evolvable-net/evolve/internal/topology"
	"github.com/evolvable-net/evolve/internal/underlay"
)

type env struct {
	net *topology.Network
	igp *underlay.View
	svc *anycast.Service
	fwd *forward.Engine
	dep *anycast.Deployment
}

// world: transit-stub internet with one participating stub.
func world(t *testing.T) *env {
	t.Helper()
	n, err := topology.TransitStub(2, 3, 0.3, topology.GenConfig{
		Seed: 13, RoutersPerDomain: 3, HostsPerDomain: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	igp := underlay.NewView(n)
	bgpSys := bgp.NewSystem(n)
	svc := anycast.NewService(n, bgpSys, igp)
	dep, err := svc.DeployOption1(0)
	if err != nil {
		t.Fatal(err)
	}
	svc.AddMember(dep, n.DomainByName("S0.0").Routers[0])
	svc.AddMember(dep, n.DomainByName("S1.1").Routers[1])
	return &env{
		net: n, igp: igp, svc: svc,
		fwd: forward.NewEngine(n, bgpSys, igp),
		dep: dep,
	}
}

func TestAnycastAlwaysSucceeds(t *testing.T) {
	e := world(t)
	r := &AnycastRedirector{Svc: e.svc, Dep: e.dep}
	if r.Name() != "anycast" {
		t.Error("name wrong")
	}
	for _, h := range e.net.Hosts {
		res, err := r.Redirect(h)
		if err != nil {
			t.Fatalf("host %s: %v", h.Name, err)
		}
		if res.Member < 0 || res.Cost < 0 {
			t.Fatalf("host %s: invalid result %+v", h.Name, res)
		}
	}
}

func TestISPLookupFailsOutsideParticipants(t *testing.T) {
	e := world(t)
	r := &ISPLookupRedirector{Svc: e.svc, Dep: e.dep, Net: e.net, Igp: e.igp}
	if r.Name() != "isp-lookup" {
		t.Error("name wrong")
	}
	partASN := e.net.DomainByName("S0.0").ASN
	var inPart, outPart, failures int
	for _, h := range e.net.Hosts {
		_, err := r.Redirect(h)
		switch {
		case h.Domain == partASN || h.Domain == e.net.DomainByName("S1.1").ASN:
			inPart++
			if err != nil {
				t.Errorf("participant-domain host %s failed: %v", h.Name, err)
			}
		default:
			outPart++
			if !errors.Is(err, ErrNoAssistance) {
				t.Errorf("host %s err = %v, want ErrNoAssistance", h.Name, err)
			} else {
				failures++
			}
		}
	}
	if inPart == 0 || outPart == 0 || failures != outPart {
		t.Errorf("coverage check: in=%d out=%d fail=%d", inPart, outPart, failures)
	}
}

func TestBrokerFullCoverageMatchesMembership(t *testing.T) {
	e := world(t)
	b := NewBroker(e.net, e.fwd, e.dep, 1.0, 1)
	b.Refresh()
	if b.DirectorySize() != len(e.dep.Members()) {
		t.Errorf("directory = %d, members = %d", b.DirectorySize(), len(e.dep.Members()))
	}
	for _, h := range e.net.Hosts {
		res, err := b.Redirect(h)
		if err != nil {
			t.Fatalf("host %s: %v", h.Name, err)
		}
		found := false
		for _, m := range e.dep.Members() {
			if m == res.Member {
				found = true
			}
		}
		if !found {
			t.Errorf("broker referred to non-member %d", res.Member)
		}
	}
}

func TestBrokerZeroCoverage(t *testing.T) {
	e := world(t)
	b := NewBroker(e.net, e.fwd, e.dep, 0, 1)
	b.Refresh()
	if b.DirectorySize() != 0 {
		t.Errorf("directory = %d", b.DirectorySize())
	}
	if _, err := b.Redirect(e.net.Hosts[0]); !errors.Is(err, ErrNoReferral) {
		t.Errorf("err = %v", err)
	}
}

func TestBrokerStaleReferral(t *testing.T) {
	e := world(t)
	b := NewBroker(e.net, e.fwd, e.dep, 1.0, 1)
	b.Refresh()
	// Find a host whose referral points at S0.0's member, then withdraw it.
	victim := e.dep.MembersIn(e.net.DomainByName("S0.0").ASN)[0]
	var host *topology.Host
	for _, h := range e.net.Hosts {
		res, err := b.Redirect(h)
		if err == nil && res.Member == victim {
			host = h
			break
		}
	}
	if host == nil {
		t.Skip("no host routes to the victim member in this topology")
	}
	e.svc.RemoveMember(e.dep, victim)
	if _, err := b.Redirect(host); !errors.Is(err, ErrStaleReferral) {
		t.Errorf("err = %v, want ErrStaleReferral", err)
	}
	// Meanwhile anycast adapted seamlessly.
	a := &AnycastRedirector{Svc: e.svc, Dep: e.dep}
	if _, err := a.Redirect(host); err != nil {
		t.Errorf("anycast failed after withdrawal: %v", err)
	}
	// And the broker recovers after refreshing its directory.
	b.Refresh()
	if _, err := b.Redirect(host); err != nil {
		t.Errorf("refreshed broker failed: %v", err)
	}
}

func TestBrokerMissesNewDeployment(t *testing.T) {
	e := world(t)
	b := NewBroker(e.net, e.fwd, e.dep, 1.0, 1)
	b.Refresh()
	before := b.DirectorySize()
	// A new ISP deploys after the snapshot: broker clients can't benefit
	// until the next refresh; anycast clients benefit immediately.
	newMember := e.net.DomainByName("T0").Routers[0]
	e.svc.AddMember(e.dep, newMember)
	if b.DirectorySize() != before {
		t.Error("directory changed without refresh")
	}
	a := &AnycastRedirector{Svc: e.svc, Dep: e.dep}
	// Some host in T0's own domain now resolves locally via anycast…
	h := e.net.HostsIn(e.net.DomainByName("T0").ASN)[0]
	res, err := a.Redirect(h)
	if err != nil || res.Member != newMember {
		t.Errorf("anycast res = %+v err %v", res, err)
	}
	// …while the broker still refers it far away.
	bres, err := b.Redirect(h)
	if err != nil {
		t.Fatal(err)
	}
	if bres.Member == newMember {
		t.Error("broker knew about the new member without refresh")
	}
	if bres.Cost < res.Cost {
		t.Errorf("stale broker referral (%d) beat anycast (%d)", bres.Cost, res.Cost)
	}
}

func TestBrokerCoverageClamped(t *testing.T) {
	e := world(t)
	if NewBroker(e.net, e.fwd, e.dep, -1, 1).coverage != 0 {
		t.Error("negative coverage not clamped")
	}
	if NewBroker(e.net, e.fwd, e.dep, 2, 1).coverage != 1 {
		t.Error("overlarge coverage not clamped")
	}
	b := NewBroker(e.net, e.fwd, e.dep, 0.01, 7)
	b.Refresh()
	// Tiny but nonzero coverage still yields at least one cooperator.
	if b.DirectorySize() == 0 {
		t.Error("nonzero coverage yielded empty directory")
	}
}

func TestBrokerDeterministicAcrossRuns(t *testing.T) {
	// Same seed → same cooperating-ISP sample → identical directory and
	// referrals, run after run. Different seeds are free to differ.
	e := world(t)
	// Partial coverage so the rng actually decides something.
	snapshot := func(b *BrokerRedirector) []topology.RouterID {
		b.Refresh()
		out := make([]topology.RouterID, 0, b.DirectorySize())
		for _, h := range e.net.Hosts {
			res, err := b.Redirect(h)
			if err != nil {
				out = append(out, -1)
				continue
			}
			out = append(out, res.Member)
		}
		return out
	}
	a := snapshot(NewBroker(e.net, e.fwd, e.dep, 0.5, 99))
	b := snapshot(NewBroker(e.net, e.fwd, e.dep, 0.5, 99))
	if len(a) != len(b) {
		t.Fatalf("referral counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at host %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestBrokerWithInjectedRand(t *testing.T) {
	e := world(t)
	b1 := NewBrokerWithRand(e.net, e.fwd, e.dep, 0.5, rand.New(rand.NewSource(99)))
	b2 := NewBroker(e.net, e.fwd, e.dep, 0.5, 99)
	b1.Refresh()
	b2.Refresh()
	if b1.DirectorySize() != b2.DirectorySize() {
		t.Errorf("injected rng built a different directory: %d vs %d",
			b1.DirectorySize(), b2.DirectorySize())
	}
	if NewBrokerWithRand(e.net, e.fwd, e.dep, -1, rand.New(rand.NewSource(1))).coverage != 0 {
		t.Error("negative coverage not clamped")
	}
}
