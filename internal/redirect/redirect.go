// Package redirect implements the paper's §2 comparison of redirection
// designs — the mechanisms by which an endhost's IPvN packets find their
// way to an IPvN router:
//
//   - AnycastRedirector (§2.3, network-level): packets to the deployment's
//     anycast address are steered by routing itself; always current, needs
//     no lookups, works under partial deployment and participation.
//   - BrokerRedirector (§2.2, application-level via third parties): a
//     lookup service that gathers deployment information from ISPs and
//     returns a nearby IPvN router's unicast address. Its fidelity is
//     parameterised by *coverage* (ISPs have to choose to share deployment
//     data with the broker) and *staleness* (the broker's view is a
//     snapshot that decays as deployment evolves).
//   - ISPLookupRedirector (§2.2, application-level via one's own ISP):
//     works only when the host's own ISP participates and assists —
//     precisely the failure of universal access the paper predicts.
package redirect

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"github.com/evolvable-net/evolve/internal/anycast"
	"github.com/evolvable-net/evolve/internal/forward"
	"github.com/evolvable-net/evolve/internal/topology"
	"github.com/evolvable-net/evolve/internal/trace"
)

// Errors.
var (
	// ErrNoAssistance: the host's own ISP neither deploys IPvN nor helps
	// its clients find it.
	ErrNoAssistance = errors.New("redirect: host's ISP offers no IPvN lookup assistance")
	// ErrStaleReferral: the broker referred the client to a router that no
	// longer serves IPvN.
	ErrStaleReferral = errors.New("redirect: broker referral is stale")
	// ErrNoReferral: the broker knows of no IPvN router at all.
	ErrNoReferral = errors.New("redirect: broker has no IPvN routers on record")
)

// Result is a successful redirection.
type Result struct {
	// Member is the IPvN router the host's packets reach.
	Member topology.RouterID
	// Cost is the underlay cost from the host to Member.
	Cost int64
}

// Redirector is the common interface of the three designs.
type Redirector interface {
	// Redirect determines where h's IPvN packets land.
	Redirect(h *topology.Host) (Result, error)
	// Name identifies the design in experiment output.
	Name() string
}

// Traced wraps a Redirector with observability: every decision is
// tallied in c (successful redirects, failures as DropNoIngress, per-AS
// ingress load when net is non-nil) and, when tr is non-nil, emitted as
// a KindRedirect trace event. c may be nil to trace without counting.
func Traced(r Redirector, tr trace.Tracer, c *trace.Counters, net *topology.Network) Redirector {
	return &tracedRedirector{r: r, tr: tr, c: c, net: net}
}

type tracedRedirector struct {
	r   Redirector
	tr  trace.Tracer
	c   *trace.Counters
	net *topology.Network
}

// Name implements Redirector by delegation.
func (t *tracedRedirector) Name() string { return t.r.Name() }

// Redirect implements Redirector, observing the wrapped decision.
func (t *tracedRedirector) Redirect(h *topology.Host) (Result, error) {
	res, err := t.r.Redirect(h)
	if err != nil {
		if t.c != nil {
			t.c.Drop(trace.DropNoIngress)
		}
		if t.tr != nil {
			t.tr.Event(trace.Event{Kind: trace.KindDrop, Router: -1, Reason: trace.DropNoIngress})
		}
		return res, err
	}
	var as topology.ASN
	if t.net != nil {
		as = t.net.DomainOf(res.Member)
	}
	if t.c != nil {
		t.c.Redirect(false)
		if as != 0 {
			t.c.Ingress(as)
		}
	}
	if t.tr != nil {
		t.tr.Event(trace.Event{
			Kind: trace.KindRedirect, Router: res.Member, AS: as, Cost: res.Cost,
		})
	}
	return res, nil
}

// AnycastRedirector is network-level redirection (§2.3/§3.1).
type AnycastRedirector struct {
	Svc *anycast.Service
	Dep *anycast.Deployment
}

// Name implements Redirector.
func (a *AnycastRedirector) Name() string { return "anycast" }

// Redirect implements Redirector via the anycast trajectory.
func (a *AnycastRedirector) Redirect(h *topology.Host) (Result, error) {
	res, err := a.Svc.ResolveFromHost(h, a.Dep.Addr)
	if err != nil {
		return Result{}, err
	}
	return Result{Member: res.Member, Cost: res.Cost}, nil
}

// BrokerRedirector is an application-level third-party lookup service.
type BrokerRedirector struct {
	dep *anycast.Deployment
	fwd *forward.Engine
	net *topology.Network

	// coverage is the fraction of participant ISPs that share deployment
	// data with this broker.
	coverage float64
	rng      *rand.Rand

	// snapshot is the broker's (possibly stale) member directory.
	snapshot []topology.RouterID
}

// NewBroker creates a broker with the given ISP coverage in [0,1]; seed
// fixes which ISPs cooperate. Call Refresh to take the initial directory
// snapshot.
func NewBroker(net *topology.Network, fwd *forward.Engine, dep *anycast.Deployment, coverage float64, seed int64) *BrokerRedirector {
	return NewBrokerWithRand(net, fwd, dep, coverage, rand.New(rand.NewSource(seed)))
}

// NewBrokerWithRand is NewBroker with the randomness source injected —
// never the global math/rand, so broker behaviour stays deterministic and
// free of cross-instance contention.
func NewBrokerWithRand(net *topology.Network, fwd *forward.Engine, dep *anycast.Deployment, coverage float64, rng *rand.Rand) *BrokerRedirector {
	if coverage < 0 {
		coverage = 0
	}
	if coverage > 1 {
		coverage = 1
	}
	return &BrokerRedirector{
		dep:      dep,
		fwd:      fwd,
		net:      net,
		coverage: coverage,
		rng:      rng,
	}
}

// Name implements Redirector.
func (b *BrokerRedirector) Name() string {
	return fmt.Sprintf("broker(cov=%.2f)", b.coverage)
}

// Refresh re-gathers deployment information from the cooperating ISPs.
// Between calls the directory ages: routers that joined are unknown,
// routers that left are phantom referrals.
func (b *BrokerRedirector) Refresh() {
	b.snapshot = b.snapshot[:0]
	parts := b.dep.ParticipatingASes()
	// Deterministically sample cooperating ISPs.
	cooperating := map[topology.ASN]bool{}
	for _, asn := range parts {
		if b.rng.Float64() < b.coverage {
			cooperating[asn] = true
		}
	}
	// Guarantee at least one cooperator when coverage > 0 and there are
	// participants (the broker business wouldn't exist otherwise).
	if len(cooperating) == 0 && b.coverage > 0 && len(parts) > 0 {
		cooperating[parts[0]] = true
	}
	for _, asn := range parts {
		if !cooperating[asn] {
			continue
		}
		b.snapshot = append(b.snapshot, b.dep.MembersIn(asn)...)
	}
	sort.Slice(b.snapshot, func(i, j int) bool { return b.snapshot[i] < b.snapshot[j] })
}

// DirectorySize returns the broker's current member count (experiments).
func (b *BrokerRedirector) DirectorySize() int { return len(b.snapshot) }

// Redirect implements Redirector: return the directory entry with the
// cheapest unicast path from the host, then tunnel to its unicast address.
// A referral to a router that has since withdrawn fails.
func (b *BrokerRedirector) Redirect(h *topology.Host) (Result, error) {
	if len(b.snapshot) == 0 {
		return Result{}, ErrNoReferral
	}
	type cand struct {
		member topology.RouterID
		cost   int64
	}
	best := cand{member: -1}
	for _, m := range b.snapshot {
		p, err := b.fwd.FromRouter(h.Attach, b.net.Router(m).Loopback)
		if err != nil {
			continue
		}
		if best.member < 0 || p.Cost < best.cost {
			best = cand{member: m, cost: p.Cost + h.AccessLatency}
		}
	}
	if best.member < 0 {
		return Result{}, ErrNoReferral
	}
	// The referral is to a concrete unicast address; if that router has
	// withdrawn from the deployment since the snapshot, the client's
	// tunnelled packets arrive at a router that no longer speaks IPvN.
	stillMember := false
	for _, m := range b.dep.Members() {
		if m == best.member {
			stillMember = true
			break
		}
	}
	if !stillMember {
		return Result{}, ErrStaleReferral
	}
	return Result{Member: best.member, Cost: best.cost}, nil
}

// ISPLookupRedirector models each ISP running its own lookup service for
// its customers — available only where the ISP participates.
type ISPLookupRedirector struct {
	Svc *anycast.Service
	Dep *anycast.Deployment
	Net *topology.Network
	Igp interface {
		ClosestIn(topology.RouterID, []topology.RouterID) (topology.RouterID, int64, bool)
	}
}

// Name implements Redirector.
func (i *ISPLookupRedirector) Name() string { return "isp-lookup" }

// Redirect implements Redirector: the host's ISP answers only if it
// participates (assumptions A1/A2: non-offering ISPs have no incentive to
// run the service).
func (i *ISPLookupRedirector) Redirect(h *topology.Host) (Result, error) {
	members := i.Dep.MembersIn(h.Domain)
	if len(members) == 0 {
		return Result{}, ErrNoAssistance
	}
	m, dist, ok := i.Igp.ClosestIn(h.Attach, members)
	if !ok {
		return Result{}, ErrNoAssistance
	}
	return Result{Member: m, Cost: dist + h.AccessLatency}, nil
}
