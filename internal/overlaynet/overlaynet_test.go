package overlaynet

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"github.com/evolvable-net/evolve/internal/addr"
	"github.com/evolvable-net/evolve/internal/packet"
)

const waitShort = 2 * time.Second

func u(last byte) addr.V4 { return addr.V4FromOctets(10, 0, 0, last) }

// buildChain wires host A → routers R1,R2,R3 → host B:
//   - R1 serves the anycast address (ingress);
//   - bone routes for B's address: R1→R2→R3;
//   - R3 has no bone route for B and exits via the underlay option.
func buildChain(t *testing.T) (reg *Registry, hostA, hostB *Node, routers []*Node, anycastAddr addr.V4) {
	t.Helper()
	reg = NewRegistry()
	mk := func(last byte) *Node {
		n, err := NewNode(reg, u(last))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { n.Close() })
		return n
	}
	hostA = mk(1)
	hostB = mk(2)
	r1, r2, r3 := mk(11), mk(12), mk(13)
	routers = []*Node{r1, r2, r3}

	anycastAddr, err := addr.Option1Address(0)
	if err != nil {
		t.Fatal(err)
	}
	r1.ServeAnycast(anycastAddr)
	reg.SetAnycastMembers(anycastAddr, []addr.V4{r1.Underlay})

	hostA.SetVNAddr(addr.SelfAddress(hostA.Underlay))
	hostB.SetVNAddr(addr.SelfAddress(hostB.Underlay))

	// Bone routes: everything self-addressed rides R1→R2→R3.
	selfAll := addr.MakeVNPrefix(addr.SelfAddress(0), 1)
	r1.AddVNRoute(selfAll, r2.Underlay)
	r2.AddVNRoute(selfAll, r3.Underlay)
	// R3 deliberately has no route: it exits via OptUnderlayDst.
	return reg, hostA, hostB, routers, anycastAddr
}

func TestEndToEndThroughBone(t *testing.T) {
	_, hostA, hostB, routers, any := buildChain(t)
	payload := []byte("live universal access")
	if err := hostA.SendVN(any, hostB.VNAddr(), payload); err != nil {
		t.Fatal(err)
	}
	got, err := hostB.WaitInbox(waitShort)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Payload, payload) {
		t.Errorf("payload = %q", got.Payload)
	}
	if got.From != hostA.VNAddr() || got.To != hostB.VNAddr() {
		t.Errorf("addresses: from %s to %s", got.From, got.To)
	}
	// The last tunnel hop into B is R3.
	if got.OuterSrc != routers[2].Underlay {
		t.Errorf("outer src = %s, want R3 %s", got.OuterSrc, routers[2].Underlay)
	}
	// Stats: R1,R2 forwarded; R3 exited; B delivered.
	if s := routers[0].Stats(); s.Forwarded != 1 {
		t.Errorf("R1 stats = %+v", s)
	}
	if s := routers[2].Stats(); s.Exited != 1 {
		t.Errorf("R3 stats = %+v", s)
	}
	if s := hostB.Stats(); s.Delivered != 1 {
		t.Errorf("B stats = %+v", s)
	}
}

func TestAnycastFailover(t *testing.T) {
	reg, hostA, hostB, routers, any := buildChain(t)
	// Add a second ingress preferred over R1, then kill it: resolution
	// must fall back to R1 and delivery still work.
	r0, err := NewNode(reg, u(10))
	if err != nil {
		t.Fatal(err)
	}
	r0.ServeAnycast(any)
	selfAll := addr.MakeVNPrefix(addr.SelfAddress(0), 1)
	r0.AddVNRoute(selfAll, routers[1].Underlay)
	reg.SetAnycastMembers(any, []addr.V4{r0.Underlay, routers[0].Underlay})

	if err := hostA.SendVN(any, hostB.VNAddr(), []byte("via r0")); err != nil {
		t.Fatal(err)
	}
	if _, err := hostB.WaitInbox(waitShort); err != nil {
		t.Fatal(err)
	}
	if s := r0.Stats(); s.Forwarded != 1 {
		t.Errorf("preferred ingress not used: %+v", s)
	}

	// Ingress dies; the anycast address keeps working.
	r0.Close()
	if err := hostA.SendVN(any, hostB.VNAddr(), []byte("via r1")); err != nil {
		t.Fatal(err)
	}
	got, err := hostB.WaitInbox(waitShort)
	if err != nil {
		t.Fatal(err)
	}
	if string(got.Payload) != "via r1" {
		t.Errorf("payload = %q", got.Payload)
	}
}

func TestNativeDeliveryViaBoneRoute(t *testing.T) {
	reg, hostA, _, routers, any := buildChain(t)
	// A natively addressed node hanging off R3's domain.
	nativeDst, err := NewNode(reg, u(20))
	if err != nil {
		t.Fatal(err)
	}
	defer nativeDst.Close()
	pool := addr.NewVNPool(addr.DomainVNPrefix(42))
	v, _ := pool.Next()
	nativeDst.SetVNAddr(v)
	// Bone routes for domain 42's prefix down the chain to the dst node.
	p := addr.DomainVNPrefix(42)
	routers[0].AddVNRoute(p, routers[1].Underlay)
	routers[1].AddVNRoute(p, routers[2].Underlay)
	routers[2].AddVNRoute(p, nativeDst.Underlay)

	if err := hostA.SendVN(any, v, []byte("native")); err != nil {
		t.Fatal(err)
	}
	got, err := nativeDst.WaitInbox(waitShort)
	if err != nil {
		t.Fatal(err)
	}
	if string(got.Payload) != "native" {
		t.Errorf("payload = %q", got.Payload)
	}
}

func TestForeignPacketDropped(t *testing.T) {
	reg, hostA, _, routers, _ := buildChain(t)
	// Craft a packet whose outer dst is R2 (not an anycast address R1
	// serves) and deliver it to R1's socket: R1 must drop it.
	inner := packet.VNHeader{Version: 8, Src: hostA.VNAddr(), Dst: addr.VN{Hi: 1}}
	outer := packet.V4Header{Proto: packet.ProtoVNEncap, Src: hostA.Underlay, Dst: routers[1].Underlay}
	buf := packet.NewSerializeBuffer()
	if err := packet.Serialize(buf, []byte("mis-sent"), &outer, &inner); err != nil {
		t.Fatal(err)
	}
	ep, _ := reg.Endpoint(routers[0].Underlay)
	conn, err := hostA.conn.WriteToUDP(buf.Bytes(), ep)
	_ = conn
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(waitShort)
	for time.Now().Before(deadline) {
		if routers[0].Stats().Dropped >= 1 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Errorf("R1 did not drop the foreign packet: %+v", routers[0].Stats())
}

func TestHopLimitStopsLoops(t *testing.T) {
	reg, _, _, _, _ := buildChain(t)
	// Two routers with routes pointing at each other: a loop. The hop
	// limit must kill the packet instead of melting the CPU.
	a, err := NewNode(reg, u(31))
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := NewNode(reg, u(32))
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	loopAny, _ := addr.Option1Address(7)
	a.ServeAnycast(loopAny)
	reg.SetAnycastMembers(loopAny, []addr.V4{a.Underlay})
	dst := addr.VN{Hi: 0x77} // no one owns it
	p := addr.MakeVNPrefix(dst, 16)
	a.AddVNRoute(p, b.Underlay)
	b.AddVNRoute(p, a.Underlay)

	src, err := NewNode(reg, u(33))
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	src.SetVNAddr(addr.SelfAddress(src.Underlay))
	if err := src.SendVN(loopAny, dst, []byte("loop")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(waitShort)
	for time.Now().Before(deadline) {
		if a.Stats().Dropped+b.Stats().Dropped >= 1 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Error("looping packet was never dropped")
}

func TestRegistryResolution(t *testing.T) {
	reg := NewRegistry()
	if _, ok := reg.Endpoint(u(1)); ok {
		t.Error("empty registry resolved")
	}
	if _, ok := reg.ResolveAnycast(u(99)); ok {
		t.Error("empty anycast resolved")
	}
	n, err := NewNode(reg, u(1))
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	if _, ok := reg.Endpoint(u(1)); !ok {
		t.Error("registered node not resolvable")
	}
	any, _ := addr.Option1Address(1)
	reg.SetAnycastMembers(any, []addr.V4{u(5), u(1)})
	// u(5) is not registered; resolution falls through to u(1).
	m, ok := reg.ResolveAnycast(any)
	if !ok || m != u(1) {
		t.Errorf("resolve = %s ok %v", m, ok)
	}
}

func TestSendAfterCloseFails(t *testing.T) {
	reg := NewRegistry()
	n, err := NewNode(reg, u(1))
	if err != nil {
		t.Fatal(err)
	}
	n.Close()
	any, _ := addr.Option1Address(0)
	if err := n.SendVN(any, addr.VN{Hi: 1}, nil); !errors.Is(err, ErrClosed) {
		t.Errorf("err = %v", err)
	}
	// Closing twice is safe.
	n.Close()
}

func TestSendToUnknownUnderlayFails(t *testing.T) {
	reg := NewRegistry()
	n, err := NewNode(reg, u(1))
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	any, _ := addr.Option1Address(0) // no members registered
	if err := n.SendVN(any, addr.VN{Hi: 1}, nil); !errors.Is(err, ErrUnknownUnderlay) {
		t.Errorf("err = %v", err)
	}
}

func TestEchoPingPong(t *testing.T) {
	// Bone routes in buildChain only run A→B; for the pong to return,
	// B's reply re-enters via the anycast ingress, whose self-route chain
	// leads back out at R3 toward A's underlay address.
	_, hostA, hostB, _, any := buildChain(t)
	hostB.EnableEcho(any)
	if err := hostA.SendVN(any, hostB.VNAddr(), []byte("ping:rtt-1")); err != nil {
		t.Fatal(err)
	}
	got, err := hostA.WaitInbox(waitShort)
	if err != nil {
		t.Fatal(err)
	}
	if string(got.Payload) != "pong:rtt-1" {
		t.Errorf("payload = %q", got.Payload)
	}
	if got.From != hostB.VNAddr() {
		t.Errorf("pong from %s", got.From)
	}
	// Pings are consumed by the echo service, not delivered to B's inbox.
	select {
	case r := <-hostB.Inbox:
		t.Errorf("ping leaked to inbox: %q", r.Payload)
	default:
	}
	// Non-ping payloads still reach the inbox with echo enabled.
	if err := hostA.SendVN(any, hostB.VNAddr(), []byte("plain")); err != nil {
		t.Fatal(err)
	}
	if got, err := hostB.WaitInbox(waitShort); err != nil || string(got.Payload) != "plain" {
		t.Errorf("plain delivery: %q %v", got.Payload, err)
	}
}

func TestConcurrentSenders(t *testing.T) {
	_, hostA, hostB, _, any := buildChain(t)
	const msgs = 50
	errs := make(chan error, msgs)
	for i := 0; i < msgs; i++ {
		go func() {
			errs <- hostA.SendVN(any, hostB.VNAddr(), []byte("burst"))
		}()
	}
	for i := 0; i < msgs; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	got := 0
	deadline := time.Now().Add(waitShort)
	for got < msgs && time.Now().Before(deadline) {
		select {
		case <-hostB.Inbox:
			got++
		case <-time.After(50 * time.Millisecond):
		}
	}
	// UDP on loopback is reliable in practice, but the inbox can overflow
	// under burst; accept minor loss while requiring substantial delivery.
	if got < msgs/2 {
		t.Errorf("delivered %d/%d", got, msgs)
	}
}
