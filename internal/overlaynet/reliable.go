package overlaynet

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"github.com/evolvable-net/evolve/internal/addr"
	"github.com/evolvable-net/evolve/internal/packet"
)

// ReliableConfig parameterizes the opt-in acked/retransmitting SendVN
// mode.
type ReliableConfig struct {
	// AckVia is the anycast address the receiver's acks re-enter the
	// overlay through (typically the same address senders use).
	AckVia addr.V4
	// RetransmitBase is the first retry's backoff; each subsequent retry
	// doubles it up to RetransmitMax. Default 50ms.
	RetransmitBase time.Duration
	// RetransmitMax caps the backoff. Default 500ms.
	RetransmitMax time.Duration
	// MaxAttempts bounds total transmissions (first send included).
	// Default 8.
	MaxAttempts int
	// DedupWindow is how many recently seen (source, sequence) pairs the
	// receiver remembers. Default 4096.
	DedupWindow int
	// JitterSeed roots the backoff jitter PRNG, keeping retry timing
	// reproducible under a fixed schedule.
	JitterSeed int64
}

func (c ReliableConfig) withDefaults() ReliableConfig {
	if c.RetransmitBase <= 0 {
		c.RetransmitBase = 50 * time.Millisecond
	}
	if c.RetransmitMax <= 0 {
		c.RetransmitMax = 500 * time.Millisecond
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 8
	}
	if c.DedupWindow <= 0 {
		c.DedupWindow = 4096
	}
	return c
}

// seenKey identifies a delivery for dedup: the IPvN source plus its
// per-sender sequence number.
type seenKey struct {
	src addr.VN
	seq uint32
}

// reliableState is the node's sender- and receiver-side reliability
// machinery.
type reliableState struct {
	cfg ReliableConfig

	mu      sync.Mutex
	nextSeq uint32
	pending map[uint32]chan struct{}
	jitter  *rand.Rand
	// seen is the receiver's dedup window: set plus FIFO eviction order.
	seen      map[seenKey]bool
	seenOrder []seenKey
}

// EnableReliable switches on the node's reliability layer: SendVNReliable
// becomes available, and incoming seq-marked packets are deduplicated and
// acknowledged through cfg.AckVia. Idempotent.
func (n *Node) EnableReliable(cfg ReliableConfig) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.rel != nil {
		return
	}
	n.rel = &reliableState{
		cfg:     cfg.withDefaults(),
		pending: map[uint32]chan struct{}{},
		jitter:  rand.New(rand.NewSource(cfg.JitterSeed)),
		seen:    map[seenKey]bool{},
	}
}

func (n *Node) reliable() *reliableState {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.rel
}

func seqOption(t uint8, seq uint32) packet.Option {
	val := make([]byte, 4)
	binary.BigEndian.PutUint32(val, seq)
	return packet.Option{Type: t, Value: val}
}

// deliveryOpt extracts a 4-byte delivery option of the given type.
func deliveryOpt(h packet.VNHeader, t uint8) (uint32, bool) {
	for _, o := range h.Options {
		if o.Type == t && len(o.Value) == 4 {
			return binary.BigEndian.Uint32(o.Value), true
		}
	}
	return 0, false
}

// SendVNReliable sends a payload with at-least-once transmission and
// receiver-side dedup — together, exactly-once delivery for every send
// that returns nil. The packet carries a per-sender sequence number; the
// send retransmits on ack timeout with exponential backoff plus seeded
// jitter, up to MaxAttempts transmissions, then fails with ErrNotAcked.
// Each transmission re-resolves the anycast ingress, so a mid-flight
// ingress death fails over instead of wedging the flow.
func (n *Node) SendVNReliable(anycastAddr addr.V4, dst addr.VN, payload []byte) error {
	rel := n.reliable()
	if rel == nil {
		return ErrReliableDisabled
	}

	rel.mu.Lock()
	rel.nextSeq++
	seq := rel.nextSeq
	acked := make(chan struct{})
	rel.pending[seq] = acked
	rel.mu.Unlock()
	defer func() {
		rel.mu.Lock()
		delete(rel.pending, seq)
		rel.mu.Unlock()
	}()

	opt := []packet.Option{seqOption(packet.OptDeliverySeq, seq)}
	backoff := rel.cfg.RetransmitBase
	for attempt := 0; attempt < rel.cfg.MaxAttempts; attempt++ {
		if attempt > 0 {
			n.ctr().Retransmit()
		}
		if err := n.sendVN(anycastAddr, dst, payload, opt); err != nil {
			// Resolution can fail transiently while an ingress dies and
			// failover converges; keep retrying on the backoff schedule.
			if attempt == rel.cfg.MaxAttempts-1 {
				n.notifySendFailure(dst)
				return fmt.Errorf("%w: seq %d: %v", ErrNotAcked, seq, err)
			}
		}
		rel.mu.Lock()
		jit := time.Duration(rel.jitter.Int63n(int64(backoff)/4 + 1))
		rel.mu.Unlock()
		select {
		case <-acked:
			return nil
		case <-n.done:
			return ErrClosed
		case <-time.After(backoff + jit):
		}
		backoff *= 2
		if backoff > rel.cfg.RetransmitMax {
			backoff = rel.cfg.RetransmitMax
		}
	}
	n.notifySendFailure(dst)
	return fmt.Errorf("%w: seq %d after %d attempts", ErrNotAcked, seq, rel.cfg.MaxAttempts)
}

// confirmAck resolves the pending send waiting on seq, if any.
func (n *Node) confirmAck(seq uint32) {
	rel := n.reliable()
	if rel == nil {
		return
	}
	rel.mu.Lock()
	ch := rel.pending[seq]
	if ch != nil {
		delete(rel.pending, seq)
	}
	rel.mu.Unlock()
	if ch != nil {
		close(ch)
	}
}

// handleSeqDelivery is the receiver side of reliable mode: duplicates are
// dropped (and re-acked — the first ack may have been lost); new
// deliveries are enqueued first and only then marked seen and acked, so
// an inbox overflow leaves the sender retransmitting rather than losing
// an acked message.
func (n *Node) handleSeqDelivery(inner packet.VNHeader, payload []byte, outerSrc addr.V4, seq uint32) {
	rel := n.reliable()
	if rel == nil {
		// Receiver not in reliable mode: deliver as plain traffic.
		n.deliver(Received{From: inner.Src, To: inner.Dst, Payload: payload, OuterSrc: outerSrc})
		return
	}
	key := seenKey{src: inner.Src, seq: seq}
	rel.mu.Lock()
	dup := rel.seen[key]
	rel.mu.Unlock()
	if dup {
		n.ctr().DedupDrop()
		n.sendAck(inner.Src, seq, rel)
		return
	}
	if !n.deliver(Received{From: inner.Src, To: inner.Dst, Payload: payload, OuterSrc: outerSrc}) {
		return // no ack: the sender will retransmit into a drained inbox
	}
	rel.mu.Lock()
	if !rel.seen[key] {
		rel.seen[key] = true
		rel.seenOrder = append(rel.seenOrder, key)
		if len(rel.seenOrder) > rel.cfg.DedupWindow {
			evict := rel.seenOrder[0]
			rel.seenOrder = rel.seenOrder[1:]
			delete(rel.seen, evict)
		}
	}
	rel.mu.Unlock()
	n.sendAck(inner.Src, seq, rel)
}

// sendAck answers a seq-marked delivery with an empty OptDeliveryAck
// packet routed back through the configured anycast address.
func (n *Node) sendAck(to addr.VN, seq uint32, rel *reliableState) {
	if err := n.sendVN(rel.cfg.AckVia, to, nil, []packet.Option{seqOption(packet.OptDeliveryAck, seq)}); err != nil {
		n.count(func(s *Stats) { s.Dropped++ })
	}
}
