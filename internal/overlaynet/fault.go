package overlaynet

import (
	"math/rand"
	"sync"
	"time"

	"github.com/evolvable-net/evolve/internal/addr"
	"github.com/evolvable-net/evolve/internal/packet"
	"github.com/evolvable-net/evolve/internal/trace"
)

// FaultConfig parameterizes wire-fault injection. Rates are probabilities
// in [0,1] evaluated independently per packet; a zero rate draws nothing
// from the PRNG, so enabling one fault class never perturbs the schedule
// of another.
type FaultConfig struct {
	// Seed roots every per-link PRNG; identical seeds and identical
	// per-link packet sequences yield identical fault schedules.
	Seed int64
	// DropRate silently discards the packet.
	DropRate float64
	// DupRate writes the packet twice.
	DupRate float64
	// DelayRate defers the write by Delay.
	DelayRate float64
	// Delay is the deferral applied to delayed packets.
	Delay time.Duration
	// DataOnly restricts faults to vn-encap data packets, leaving probes
	// and probe acks clean — useful when a test wants loss without
	// spurious suspicion.
	DataOnly bool
}

// FaultTransport subjects every wire write to seeded drop/duplicate/delay
// faults and hard pairwise partitions. Installed on a Registry via
// SetFaultTransport; the zero state injects nothing.
//
// Determinism: each directed link (src, dst) owns a PRNG seeded from
// Seed and the link's addresses, so a flow's fault schedule depends only
// on the seed and that flow's own packet sequence — concurrent traffic
// on other links cannot reorder its draws.
type FaultTransport struct {
	cfg FaultConfig

	mu       sync.Mutex
	links    map[[2]addr.V4]*rand.Rand
	cut      map[[2]addr.V4]bool
	counters *trace.Counters
}

// NewFaultTransport returns a fault layer with the given configuration.
func NewFaultTransport(cfg FaultConfig) *FaultTransport {
	return &FaultTransport{
		cfg:   cfg,
		links: map[[2]addr.V4]*rand.Rand{},
		cut:   map[[2]addr.V4]bool{},
	}
}

func pairKey(a, b addr.V4) [2]addr.V4 {
	if a > b {
		a, b = b, a
	}
	return [2]addr.V4{a, b}
}

// Partition severs the (undirected) link between a and b: every write in
// either direction is dropped until Heal.
func (ft *FaultTransport) Partition(a, b addr.V4) {
	ft.mu.Lock()
	defer ft.mu.Unlock()
	ft.cut[pairKey(a, b)] = true
}

// Heal restores a previously partitioned link.
func (ft *FaultTransport) Heal(a, b addr.V4) {
	ft.mu.Lock()
	defer ft.mu.Unlock()
	delete(ft.cut, pairKey(a, b))
}

// linkRand returns the directed link's PRNG, creating it on first use
// with a seed derived from the configured seed and both addresses.
func (ft *FaultTransport) linkRand(src, dst addr.V4) *rand.Rand {
	key := [2]addr.V4{src, dst}
	r := ft.links[key]
	if r == nil {
		seed := ft.cfg.Seed ^ (int64(src) << 32) ^ int64(dst)
		r = rand.New(rand.NewSource(seed))
		ft.links[key] = r
	}
	return r
}

// apply runs one write through the fault schedule: partitioned links and
// drop-lottery losers are discarded (counted), duplicates write twice,
// delays re-issue the write from a timer. Probe traffic is exempt when
// DataOnly is set.
func (ft *FaultTransport) apply(src, dst addr.V4, wire []byte, write func([]byte)) {
	if ft.cfg.DataOnly && (len(wire) < 2 || packet.Protocol(wire[1]) != packet.ProtoVNEncap) {
		ft.mu.Lock()
		cut := ft.cut[pairKey(src, dst)]
		ft.mu.Unlock()
		if cut {
			ft.counters.FaultDrop()
			return
		}
		write(wire)
		return
	}

	ft.mu.Lock()
	if ft.cut[pairKey(src, dst)] {
		ft.mu.Unlock()
		ft.counters.FaultDrop()
		return
	}
	r := ft.linkRand(src, dst)
	drop := ft.cfg.DropRate > 0 && r.Float64() < ft.cfg.DropRate
	dup := ft.cfg.DupRate > 0 && r.Float64() < ft.cfg.DupRate
	delay := ft.cfg.DelayRate > 0 && r.Float64() < ft.cfg.DelayRate
	ft.mu.Unlock()

	if drop {
		ft.counters.FaultDrop()
		return
	}
	if delay {
		ft.counters.FaultDelay()
		cp := append([]byte(nil), wire...)
		time.AfterFunc(ft.cfg.Delay, func() { write(cp) })
		return
	}
	write(wire)
	if dup {
		ft.counters.FaultDuplicate()
		write(wire)
	}
}
