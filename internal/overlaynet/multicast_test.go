package overlaynet

import (
	"testing"
	"time"

	"github.com/evolvable-net/evolve/internal/addr"
)

// buildMulticastTree wires a source host, an ingress router replicating
// to two branch routers, each delivering to one subscriber leaf:
//
//	src → R0 → {R1 → sub1, R2 → sub2}
func buildMulticastTree(t *testing.T) (src, sub1, sub2 *Node, routers []*Node, group addr.VN, any addr.V4) {
	t.Helper()
	reg := NewRegistry()
	mk := func(last byte) *Node {
		n, err := NewNode(reg, u(100+last))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { n.Close() })
		return n
	}
	src = mk(1)
	sub1 = mk(2)
	sub2 = mk(3)
	r0, r1, r2 := mk(10), mk(11), mk(12)
	routers = []*Node{r0, r1, r2}

	any, err := addr.Option1Address(3)
	if err != nil {
		t.Fatal(err)
	}
	r0.ServeAnycast(any)
	reg.SetAnycastMembers(any, []addr.V4{r0.Underlay})
	src.SetVNAddr(addr.SelfAddress(src.Underlay))

	group = addr.MulticastVN(9)
	r0.SetMulticastRoute(group, []addr.V4{r1.Underlay, r2.Underlay}, nil)
	r1.SetMulticastRoute(group, nil, []addr.V4{sub1.Underlay})
	r2.SetMulticastRoute(group, nil, []addr.V4{sub2.Underlay})
	return src, sub1, sub2, routers, group, any
}

func TestLiveMulticastReplication(t *testing.T) {
	src, sub1, sub2, routers, group, any := buildMulticastTree(t)
	if err := src.SendVN(any, group, []byte("to the group")); err != nil {
		t.Fatal(err)
	}
	for i, sub := range []*Node{sub1, sub2} {
		got, err := sub.WaitInbox(2 * time.Second)
		if err != nil {
			t.Fatalf("subscriber %d: %v", i+1, err)
		}
		if string(got.Payload) != "to the group" {
			t.Errorf("subscriber %d payload = %q", i+1, got.Payload)
		}
		if got.To != group {
			t.Errorf("subscriber %d dst = %s", i+1, got.To)
		}
	}
	// The ingress replicated once per branch; each branch exited once.
	if s := routers[0].Stats(); s.Forwarded != 2 {
		t.Errorf("ingress stats = %+v", s)
	}
	for i, r := range routers[1:] {
		if s := r.Stats(); s.Exited != 1 {
			t.Errorf("branch %d stats = %+v", i+1, s)
		}
	}
	// One send, two deliveries: that is the multicast saving, live.
}

func TestLiveMulticastRouteReplacement(t *testing.T) {
	src, sub1, sub2, routers, group, any := buildMulticastTree(t)
	// Drop sub2's branch: only sub1 receives.
	routers[0].SetMulticastRoute(group, []addr.V4{routers[1].Underlay}, nil)
	if err := src.SendVN(any, group, []byte("narrowed")); err != nil {
		t.Fatal(err)
	}
	if _, err := sub1.WaitInbox(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := sub2.WaitInbox(300 * time.Millisecond); err == nil {
		t.Error("pruned subscriber still received")
	}
}

func TestLiveMulticastHopLimit(t *testing.T) {
	// A replication loop between two routers must die by hop limit.
	reg := NewRegistry()
	a, err := NewNode(reg, u(200))
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := NewNode(reg, u(201))
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	group := addr.MulticastVN(1)
	a.SetMulticastRoute(group, []addr.V4{b.Underlay}, nil)
	b.SetMulticastRoute(group, []addr.V4{a.Underlay}, nil)
	any, _ := addr.Option1Address(4)
	a.ServeAnycast(any)
	reg.SetAnycastMembers(any, []addr.V4{a.Underlay})
	srcNode, err := NewNode(reg, u(202))
	if err != nil {
		t.Fatal(err)
	}
	defer srcNode.Close()
	srcNode.SetVNAddr(addr.SelfAddress(srcNode.Underlay))
	if err := srcNode.SendVN(any, group, []byte("loop")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if a.Stats().Dropped+b.Stats().Dropped >= 1 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Error("looping multicast packet never dropped")
}
