package overlaynet

import (
	"testing"
	"time"

	"github.com/evolvable-net/evolve/internal/addr"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(waitShort)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestCloseRemovesFromAnycastMembers(t *testing.T) {
	reg := NewRegistry()
	a, err := NewNode(reg, u(11))
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewNode(reg, u(12))
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	any, _ := addr.Option1Address(0)
	reg.SetAnycastMembers(any, []addr.V4{a.Underlay, b.Underlay})
	// b has reported a suspected; a has reported b suspected. Closing a
	// must clear both directions of its suspicion state.
	reg.suspect(b.Underlay, a.Underlay)
	reg.suspect(a.Underlay, b.Underlay)

	a.Close()
	members := reg.AnycastMembers(any)
	if len(members) != 1 || members[0] != b.Underlay {
		t.Errorf("members after close = %v, want [%s]", members, b.Underlay)
	}
	if reg.Suspected(a.Underlay) {
		t.Error("suspicion about the closed node lingers")
	}
	if reg.Suspected(b.Underlay) {
		t.Error("closed node's suspicion report about b lingers")
	}
	if m, ok := reg.ResolveAnycast(any); !ok || m != b.Underlay {
		t.Errorf("resolve after close = %s ok %v", m, ok)
	}
}

func TestResolveFromSkipsSuspectedNominee(t *testing.T) {
	// The per-source resolver nominates m1; m1 is registered but suspected
	// dead. Resolution must fall through to the proximity-ordered member
	// list instead of honouring the stale nomination.
	reg := NewRegistry()
	m1, err := NewNode(reg, u(11))
	if err != nil {
		t.Fatal(err)
	}
	defer m1.Close()
	m2, err := NewNode(reg, u(12))
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	any, _ := addr.Option1Address(0)
	reg.SetAnycastMembers(any, []addr.V4{m1.Underlay, m2.Underlay})
	reg.SetResolver(func(src, a addr.V4) (addr.V4, bool) { return m1.Underlay, true })

	member, ep, err := reg.resolveFrom(u(1), any)
	if err != nil || member != m1.Underlay || ep == nil {
		t.Fatalf("healthy nominee not honoured: %s %v %v", member, ep, err)
	}

	reg.suspect(u(99), m1.Underlay)
	before := reg.Counters().Snapshot().FailoversAnycast
	member, _, err = reg.resolveFrom(u(1), any)
	if err != nil {
		t.Fatal(err)
	}
	if member != m2.Underlay {
		t.Errorf("resolved %s, want fallthrough to %s", member, m2.Underlay)
	}
	if after := reg.Counters().Snapshot().FailoversAnycast; after <= before {
		t.Error("anycast failover not counted")
	}

	// With every member suspected, the nominee is still better than
	// nothing: resolution must not fail.
	reg.suspect(u(99), m2.Underlay)
	if member, _, err = reg.resolveFrom(u(1), any); err != nil {
		t.Fatalf("all-suspected resolution failed: %v", err)
	}
	if member != m1.Underlay && member != m2.Underlay {
		t.Errorf("all-suspected resolved to stranger %s", member)
	}
}

func TestLivenessSuspectsAndRecovers(t *testing.T) {
	reg := NewRegistry()
	a, err := NewNode(reg, u(1))
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := NewNode(reg, u(2))
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	ft := NewFaultTransport(FaultConfig{})
	reg.SetFaultTransport(ft)
	a.AddPeer(b.Underlay)
	a.EnableLiveness(LivenessConfig{Interval: 10 * time.Millisecond, SuspectAfter: 2})

	waitFor(t, "initial probes", func() bool {
		return reg.Counters().Snapshot().ProbesSent >= 2
	})
	if reg.Suspected(b.Underlay) {
		t.Fatal("healthy peer suspected")
	}

	ft.Partition(a.Underlay, b.Underlay)
	waitFor(t, "suspicion", func() bool { return reg.Suspected(b.Underlay) })
	ph := a.PeerHealth()
	if len(ph) != 1 || ph[0].Peer != b.Underlay || !ph[0].Suspected {
		t.Errorf("peer health = %+v", ph)
	}

	ft.Heal(a.Underlay, b.Underlay)
	waitFor(t, "recovery", func() bool { return !reg.Suspected(b.Underlay) })
	snap := reg.Counters().Snapshot()
	if snap.PeersSuspected < 1 || snap.PeersRecovered < 1 || snap.ProbesMissed < 2 {
		t.Errorf("counters = suspected %d recovered %d missed %d",
			snap.PeersSuspected, snap.PeersRecovered, snap.ProbesMissed)
	}
}

func TestRouteFailoverToAlternate(t *testing.T) {
	// Ingress routes the self prefix to m1 with m2 as alternate. m1 dies;
	// the relay must fail over to m2 without any control-plane help.
	reg := NewRegistry()
	mk := func(last byte) *Node {
		n, err := NewNode(reg, u(last))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { n.Close() })
		return n
	}
	hostA, hostB := mk(1), mk(2)
	ingress, m1, m2 := mk(11), mk(12), mk(13)
	any, _ := addr.Option1Address(0)
	ingress.ServeAnycast(any)
	reg.SetAnycastMembers(any, []addr.V4{ingress.Underlay})
	hostA.SetVNAddr(addr.SelfAddress(hostA.Underlay))
	hostB.SetVNAddr(addr.SelfAddress(hostB.Underlay))
	selfAll := addr.MakeVNPrefix(addr.SelfAddress(0), 1)
	ingress.AddVNRoute(selfAll, m1.Underlay, m2.Underlay)
	// m1 and m2 both exit via the underlay option (no further routes).

	if err := hostA.SendVN(any, hostB.VNAddr(), []byte("via-primary")); err != nil {
		t.Fatal(err)
	}
	if _, err := hostB.WaitInbox(waitShort); err != nil {
		t.Fatal(err)
	}
	if s := m1.Stats(); s.Exited != 1 {
		t.Errorf("primary not used: %+v", s)
	}

	m1.Close()
	before := reg.Counters().Snapshot().FailoversRoute
	if err := hostA.SendVN(any, hostB.VNAddr(), []byte("via-alt")); err != nil {
		t.Fatal(err)
	}
	got, err := hostB.WaitInbox(waitShort)
	if err != nil {
		t.Fatal(err)
	}
	if string(got.Payload) != "via-alt" {
		t.Errorf("payload = %q", got.Payload)
	}
	if s := m2.Stats(); s.Exited != 1 {
		t.Errorf("alternate not used: %+v", s)
	}
	if after := reg.Counters().Snapshot().FailoversRoute; after <= before {
		t.Error("route failover not counted")
	}
}
