// Package overlaynet is the live prototype: vN-Bone nodes as goroutines
// bound to real UDP sockets on localhost, exchanging the actual wire
// formats of internal/packet through real tunnels. The simulated internet
// supplies the *control plane* (which router is the anycast ingress, what
// the bone routes are); this package executes the *data plane* — encap at
// the host toward the anycast address, decap/relay at each vN router,
// exit toward self-addressed destinations — over genuine sockets.
//
// The Registry stands in for IPv(N-1) routing: it maps underlay addresses
// to UDP endpoints and resolves anycast addresses to their current member
// list (ordered by proximity, as the simulator's routing would). This is
// the documented substitution for a real multi-ISP underlay (DESIGN.md
// §2): the code paths above the socket layer are identical.
//
// The data plane is self-healing (DESIGN.md §8): nodes probe their active
// peers (EnableLiveness) and report suspected-dead peers to the Registry,
// which routes anycast resolution and bone relays around them; SendVN
// gains an opt-in acked/retransmitting mode (EnableReliable) with
// receiver-side dedup; and a FaultTransport installed on the Registry
// subjects every wire write to seeded drop/duplicate/delay/partition
// faults so the live plane gets the same deterministic adversarial
// treatment the simulator gets from internal/chaos.
package overlaynet

import (
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"github.com/evolvable-net/evolve/internal/addr"
	"github.com/evolvable-net/evolve/internal/packet"
	"github.com/evolvable-net/evolve/internal/rib"
	"github.com/evolvable-net/evolve/internal/trace"
)

// Errors.
var (
	// ErrUnknownUnderlay: the registry has no endpoint for an address.
	ErrUnknownUnderlay = errors.New("overlaynet: unknown underlay address")
	// ErrNoAnycastMember: an anycast address has no registered members.
	ErrNoAnycastMember = errors.New("overlaynet: anycast group empty")
	// ErrClosed: the node has been shut down.
	ErrClosed = errors.New("overlaynet: node closed")
	// ErrNotAcked: an acked send exhausted its retransmission budget.
	ErrNotAcked = errors.New("overlaynet: delivery not acknowledged")
	// ErrReliableDisabled: SendVNReliable on a node without EnableReliable.
	ErrReliableDisabled = errors.New("overlaynet: reliable mode not enabled")
)

// Resolver answers "where does an anycast packet from src land" — the
// hook through which a control plane (e.g. the simulator's routing)
// drives per-source anycast resolution in the live overlay.
type Resolver func(src, anycastAddr addr.V4) (addr.V4, bool)

// Registry is the stand-in for global IPv(N-1) routing: underlay address →
// UDP endpoint, anycast address → proximity-ordered member list, plus an
// optional per-source Resolver that overrides the static ordering.
//
// The Registry also carries the live plane's shared health state: peers
// reported suspected-dead by nodes' liveness probing (resolution and
// relays route around them), an optional FaultTransport every wire write
// passes through, and the always-on live-plane counters.
type Registry struct {
	mu       sync.RWMutex
	unicast  map[addr.V4]*net.UDPAddr
	anycast  map[addr.V4][]addr.V4
	resolver Resolver
	// suspected maps a peer to the set of reporting nodes that currently
	// consider it dead; a peer with any reporter is routed around.
	suspected map[addr.V4]map[addr.V4]bool
	faults    *FaultTransport

	counters trace.Counters
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		unicast:   map[addr.V4]*net.UDPAddr{},
		anycast:   map[addr.V4][]addr.V4{},
		suspected: map[addr.V4]map[addr.V4]bool{},
	}
}

// Counters returns the registry's live-plane counters (probes, failovers,
// retransmits, injected faults, reconcile deltas). Always on; reading a
// Snapshot is safe at any time.
func (r *Registry) Counters() *trace.Counters { return &r.counters }

// SetFaultTransport installs (or, with nil, removes) the wire-fault
// injection layer every node send passes through.
func (r *Registry) SetFaultTransport(ft *FaultTransport) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if ft != nil {
		ft.counters = &r.counters
	}
	r.faults = ft
}

// Register binds an underlay address to a UDP endpoint.
func (r *Registry) Register(a addr.V4, ep *net.UDPAddr) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.unicast[a] = ep
}

// Unregister removes an underlay binding. It does not touch anycast
// member lists; RemoveNode is the full cleanup a closing node performs.
func (r *Registry) Unregister(a addr.V4) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.unicast, a)
}

// RemoveNode erases every trace of a departed node: its unicast binding,
// its membership in every anycast group, suspicion state about it, and
// any suspicions it had reported about others. Without the anycast sweep
// a closed node would linger in member lists as a stale resolver target,
// black-holing traffic until process exit.
func (r *Registry) RemoveNode(a addr.V4) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.unicast, a)
	for any, members := range r.anycast {
		kept := members[:0]
		for _, m := range members {
			if m != a {
				kept = append(kept, m)
			}
		}
		r.anycast[any] = kept
	}
	delete(r.suspected, a)
	for peer, reporters := range r.suspected {
		delete(reporters, a)
		if len(reporters) == 0 {
			delete(r.suspected, peer)
		}
	}
}

// Endpoint resolves an underlay address.
func (r *Registry) Endpoint(a addr.V4) (*net.UDPAddr, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	ep, ok := r.unicast[a]
	return ep, ok
}

// SetAnycastMembers installs the proximity-ordered member list for an
// anycast address — the control-plane output of the simulated routing.
func (r *Registry) SetAnycastMembers(a addr.V4, members []addr.V4) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.anycast[a] = append([]addr.V4(nil), members...)
}

// AnycastMembers returns the current member list of an anycast address.
func (r *Registry) AnycastMembers(a addr.V4) []addr.V4 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]addr.V4(nil), r.anycast[a]...)
}

// SetResolver installs a per-source anycast resolver; a nil resolver
// reverts to the static member ordering.
func (r *Registry) SetResolver(f Resolver) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.resolver = f
}

// suspect records reporter's verdict that peer is dead.
func (r *Registry) suspect(reporter, peer addr.V4) {
	r.mu.Lock()
	defer r.mu.Unlock()
	set := r.suspected[peer]
	if set == nil {
		set = map[addr.V4]bool{}
		r.suspected[peer] = set
	}
	set[reporter] = true
}

// unsuspect withdraws reporter's verdict about peer.
func (r *Registry) unsuspect(reporter, peer addr.V4) {
	r.mu.Lock()
	defer r.mu.Unlock()
	set := r.suspected[peer]
	delete(set, reporter)
	if len(set) == 0 {
		delete(r.suspected, peer)
	}
}

// Suspected reports whether any node currently considers a dead.
func (r *Registry) Suspected(a addr.V4) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.suspected[a]) > 0
}

// aliveLocked: registered and not suspected. Callers hold mu (any mode).
func (r *Registry) aliveLocked(a addr.V4) bool {
	_, ok := r.unicast[a]
	return ok && len(r.suspected[a]) == 0
}

// ResolveAnycast returns the closest live member of the group per the
// installed ordering: registered members suspected dead are skipped (and
// the skip counted as an anycast failover). When every registered member
// is suspected, the closest registered one is returned anyway — suspicion
// is a hint, and a possibly-dead ingress beats a guaranteed black hole.
func (r *Registry) ResolveAnycast(a addr.V4) (addr.V4, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.resolveAnycastLocked(a)
}

func (r *Registry) resolveAnycastLocked(a addr.V4) (addr.V4, bool) {
	skipped := false
	for _, m := range r.anycast[a] {
		if _, ok := r.unicast[m]; !ok {
			continue
		}
		if len(r.suspected[m]) > 0 {
			skipped = true
			continue
		}
		if skipped {
			r.counters.FailoverAnycast()
		}
		return m, true
	}
	for _, m := range r.anycast[a] {
		if _, ok := r.unicast[m]; ok {
			return m, true
		}
	}
	return 0, false
}

// resolveFrom maps any destination (anycast or unicast) to its concrete
// member address and UDP endpoint, consulting the per-source resolver
// first. A resolver nomination wins only while the nominee is registered
// and not suspected dead; otherwise resolution falls through to the
// proximity-ordered member list, so a stale control-plane answer cannot
// black-hole traffic the static ordering could still deliver.
func (r *Registry) resolveFrom(src, dst addr.V4) (addr.V4, *net.UDPAddr, error) {
	r.mu.RLock()
	res := r.resolver
	r.mu.RUnlock()
	if res != nil {
		if m, ok := res(src, dst); ok {
			r.mu.RLock()
			alive := r.aliveLocked(m)
			_, registered := r.unicast[m]
			var fallback addr.V4
			var haveFallback bool
			if !alive {
				fallback, haveFallback = r.resolveAnycastLocked(dst)
			}
			r.mu.RUnlock()
			switch {
			case alive:
				dst = m
			case haveFallback && fallback != m:
				r.counters.FailoverAnycast()
				dst = fallback
			case haveFallback:
				dst = fallback
			case registered:
				dst = m // nothing better on file; try the nominee anyway
			}
		}
	}
	if m, ok := r.ResolveAnycast(dst); ok {
		dst = m
	}
	ep, ok := r.Endpoint(dst)
	if !ok {
		return 0, nil, fmt.Errorf("%w: %s", ErrUnknownUnderlay, dst)
	}
	return dst, ep, nil
}

// faultsNow returns the installed fault layer, nil when the wire is clean.
func (r *Registry) faultsNow() *FaultTransport {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.faults
}

// Received is one payload delivered to a node as final destination.
type Received struct {
	From    addr.VN
	To      addr.VN
	Payload []byte
	// OuterSrc is the underlay address of the last tunnel hop.
	OuterSrc addr.V4
}

// Stats counts a node's data-plane activity.
type Stats struct {
	Delivered uint64
	Forwarded uint64
	Exited    uint64
	Dropped   uint64
}

// nextHops is one bone route's forwarding set: the primary next hop plus
// ordered alternates used when the primary is dead or suspected.
type nextHops struct {
	primary addr.V4
	alts    []addr.V4
}

// Node is one live overlay participant (vN router or endhost).
type Node struct {
	Underlay addr.V4

	reg    *Registry
	conn   *net.UDPConn
	vnAddr addr.VN
	served map[addr.V4]bool

	mu     sync.RWMutex
	routes rib.TableVN[nextHops] // IPvN prefix → next-hop set
	// mcast maps an IPvN group address to this node's replication state:
	// downstream tree branches plus locally attached subscribers.
	mcast map[addr.VN]*mcastState
	// echoVia, when set, makes the node answer "ping:" payloads with
	// "pong:" replies sent back through the given anycast address.
	echoVia addr.V4
	echoOn  bool
	// peers is the liveness probing target set, auto-populated from route
	// next hops and extended explicitly with AddPeer.
	peers map[addr.V4]*peerState
	live  *livenessState
	rel   *reliableState
	// sendFailObs, when set, hears every reliable send that exhausts its
	// retransmission budget (see SetSendFailureObserver).
	sendFailObs func(dst addr.VN)

	// Inbox receives payloads addressed to this node. Buffered; overflow
	// is dropped and counted.
	Inbox chan Received

	statsMu sync.Mutex
	stats   Stats

	closeOnce sync.Once
	done      chan struct{}
	wg        sync.WaitGroup
}

// NewNode binds a UDP socket on 127.0.0.1 and registers the node.
func NewNode(reg *Registry, underlay addr.V4) (*Node, error) {
	conn, err := net.ListenUDP("udp4", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		return nil, fmt.Errorf("overlaynet: listen: %w", err)
	}
	// Relay nodes see every packet of a burst; a roomy receive buffer
	// keeps the kernel from shedding load before the read loop runs.
	_ = conn.SetReadBuffer(1 << 20)
	n := &Node{
		Underlay: underlay,
		reg:      reg,
		conn:     conn,
		served:   map[addr.V4]bool{},
		peers:    map[addr.V4]*peerState{},
		Inbox:    make(chan Received, 256),
		done:     make(chan struct{}),
	}
	reg.Register(underlay, conn.LocalAddr().(*net.UDPAddr))
	n.wg.Add(1)
	go n.readLoop()
	return n, nil
}

// Close shuts the node down and removes it from the registry — unicast
// binding, anycast memberships and suspicion state included, so a dead
// node can never linger as a resolver target.
func (n *Node) Close() error {
	n.closeOnce.Do(func() {
		close(n.done)
		n.reg.RemoveNode(n.Underlay)
		n.conn.Close()
	})
	n.wg.Wait()
	return nil
}

// ctr returns the shared live-plane counters.
func (n *Node) ctr() *trace.Counters { return &n.reg.counters }

// SetVNAddr assigns the node's own IPvN address (native or self).
func (n *Node) SetVNAddr(v addr.VN) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.vnAddr = v
}

// VNAddr returns the node's IPvN address.
func (n *Node) VNAddr() addr.VN {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.vnAddr
}

// ServeAnycast makes this node accept packets whose outer destination is
// the given anycast address (an IPvN router's defining property).
func (n *Node) ServeAnycast(a addr.V4) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.served[a] = true
}

// mcastState is one group's replication entry at a node.
type mcastState struct {
	// branches are downstream tree next hops (other vN routers).
	branches []addr.V4
	// leaves are locally attached subscribers' underlay addresses.
	leaves []addr.V4
}

// SetMulticastRoute installs this node's replication state for group:
// incoming packets for the group are forwarded once per branch (further
// vN routers) and delivered once per leaf (local subscribers). Replaces
// any previous state for the group.
func (n *Node) SetMulticastRoute(group addr.VN, branches, leaves []addr.V4) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.mcast == nil {
		n.mcast = map[addr.VN]*mcastState{}
	}
	n.mcast[group] = &mcastState{
		branches: append([]addr.V4(nil), branches...),
		leaves:   append([]addr.V4(nil), leaves...),
	}
}

// Echo payload prefixes.
var (
	pingMagic = []byte("ping:")
	pongMagic = []byte("pong:")
)

// EnableEcho makes the node answer payloads beginning with "ping:" by
// sending "pong:" plus the rest back to the IPvN source, re-entering the
// overlay through the given anycast address. Echoed pings are not
// delivered to the Inbox.
func (n *Node) EnableEcho(via addr.V4) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.echoVia = via
	n.echoOn = true
}

// AddVNRoute installs a bone route: IPvN prefix → next-hop member's
// underlay address, with optional ordered alternates used when the
// primary is dead or suspected. Every next hop becomes a liveness
// probing peer.
func (n *Node) AddVNRoute(p addr.VNPrefix, via addr.V4, alts ...addr.V4) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.routes.Insert(p, nextHops{primary: via, alts: append([]addr.V4(nil), alts...)})
	n.addPeerLocked(via)
	for _, a := range alts {
		n.addPeerLocked(a)
	}
}

// ClearVNRoutes drops the node's entire bone route table (epoch
// reconciliation replaces tables wholesale). Probing peers are kept;
// their health history survives route churn.
func (n *Node) ClearVNRoutes() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.routes = rib.TableVN[nextHops]{}
}

// Stats returns a snapshot of the node's counters.
func (n *Node) Stats() Stats {
	n.statsMu.Lock()
	defer n.statsMu.Unlock()
	return n.stats
}

func (n *Node) count(f func(*Stats)) {
	n.statsMu.Lock()
	f(&n.stats)
	n.statsMu.Unlock()
}

// SendVN originates an IPvN packet from this node: encapsulated toward
// the anycast address (universal access — the node needs no knowledge of
// deployment state). Fire-and-forget; see SendVNReliable for the acked
// mode.
func (n *Node) SendVN(anycastAddr addr.V4, dst addr.VN, payload []byte) error {
	return n.sendVN(anycastAddr, dst, payload, nil)
}

func (n *Node) sendVN(anycastAddr addr.V4, dst addr.VN, payload []byte, extra []packet.Option) error {
	hdr := packet.VNHeader{
		Version: 8,
		Src:     n.VNAddr(),
		Dst:     dst,
	}
	if u, ok := dst.Underlay(); ok {
		hdr = hdr.WithUnderlayDst(u)
	}
	hdr.Options = append(hdr.Options, extra...)
	outer := packet.V4Header{
		Proto: packet.ProtoVNEncap,
		Src:   n.Underlay,
		Dst:   anycastAddr,
	}
	buf := packet.NewSerializeBuffer()
	if err := packet.Serialize(buf, payload, &outer, &hdr); err != nil {
		return err
	}
	return n.sendWire(anycastAddr, buf.Bytes())
}

// sendWire resolves dst (anycast or unicast) and writes the packet,
// passing it through the registry's fault layer when one is installed.
func (n *Node) sendWire(dst addr.V4, wire []byte) error {
	select {
	case <-n.done:
		return ErrClosed
	default:
	}
	member, ep, err := n.reg.resolveFrom(n.Underlay, dst)
	if err != nil {
		return err
	}
	n.writeWire(member, ep, wire)
	return nil
}

// writeWire performs the physical write toward a resolved endpoint,
// subject to injected faults keyed on the (src, member) link.
func (n *Node) writeWire(member addr.V4, ep *net.UDPAddr, wire []byte) {
	write := func(w []byte) {
		// Write errors are UDP best-effort territory (and expected from
		// delayed writes racing Close); loss is the retransmit layer's job.
		_, _ = n.conn.WriteToUDP(w, ep)
	}
	if ft := n.reg.faultsNow(); ft != nil {
		ft.apply(n.Underlay, member, wire, write)
		return
	}
	write(wire)
}

func (n *Node) readLoop() {
	defer n.wg.Done()
	buf := make([]byte, 64*1024)
	for {
		sz, _, err := n.conn.ReadFromUDP(buf)
		if err != nil {
			select {
			case <-n.done:
				return
			default:
				continue
			}
		}
		wire := make([]byte, sz)
		copy(wire, buf[:sz])
		n.handle(wire)
	}
}

// handle is the per-packet decision of a vN router/host: liveness control
// traffic first, then the forwarding path.
func (n *Node) handle(wire []byte) {
	outer, rest, err := packet.DecodeV4(wire)
	if err != nil {
		n.count(func(s *Stats) { s.Dropped++ })
		return
	}
	switch outer.Proto {
	case packet.ProtoProbe:
		n.handleProbe(outer, rest)
		return
	case packet.ProtoProbeAck:
		n.handleProbeAck(outer)
		return
	case packet.ProtoVNEncap:
	default:
		n.count(func(s *Stats) { s.Dropped++ })
		return
	}
	inner, payload, err := packet.DecodeVN(rest)
	if err != nil {
		n.count(func(s *Stats) { s.Dropped++ })
		return
	}
	n.mu.RLock()
	acceptable := outer.Dst == n.Underlay || n.served[outer.Dst]
	self := n.vnAddr
	n.mu.RUnlock()
	if !acceptable {
		n.count(func(s *Stats) { s.Dropped++ })
		return
	}

	// Group traffic: replicate at tree nodes, deliver at leaves.
	if inner.Dst.IsMulticast() {
		n.mu.RLock()
		st := n.mcast[inner.Dst]
		n.mu.RUnlock()
		if st == nil {
			// A leaf delivery: this node subscribed and the tree tunnelled
			// the packet here.
			n.deliver(Received{From: inner.Src, To: inner.Dst, Payload: payload, OuterSrc: outer.Src})
			return
		}
		for _, b := range st.branches {
			if n.relay(nextHops{primary: b}, inner, payload) {
				n.count(func(s *Stats) { s.Forwarded++ })
			}
		}
		for _, l := range st.leaves {
			if n.relay(nextHops{primary: l}, inner, payload) {
				n.count(func(s *Stats) { s.Exited++ })
			}
		}
		return
	}

	// Final destination?
	if !inner.Dst.IsZero() && inner.Dst == self {
		// Reliability control plane: acks confirm pending sends; seq-marked
		// data packets are deduplicated and acknowledged.
		if seq, ok := deliveryOpt(inner, packet.OptDeliveryAck); ok {
			n.confirmAck(seq)
			return
		}
		if seq, ok := deliveryOpt(inner, packet.OptDeliverySeq); ok {
			n.handleSeqDelivery(inner, payload, outer.Src, seq)
			return
		}
		n.mu.RLock()
		echoOn, echoVia := n.echoOn, n.echoVia
		n.mu.RUnlock()
		if echoOn && len(payload) >= len(pingMagic) && string(payload[:len(pingMagic)]) == string(pingMagic) {
			reply := append(append([]byte(nil), pongMagic...), payload[len(pingMagic):]...)
			if err := n.SendVN(echoVia, inner.Src, reply); err != nil {
				n.count(func(s *Stats) { s.Dropped++ })
			} else {
				n.count(func(s *Stats) { s.Delivered++ })
			}
			return
		}
		n.deliver(Received{From: inner.Src, To: inner.Dst, Payload: payload, OuterSrc: outer.Src})
		return
	}

	// Forward over the bone.
	n.mu.RLock()
	nh, _, haveRoute := n.routes.Lookup(inner.Dst)
	n.mu.RUnlock()
	if haveRoute {
		if !n.relay(nh, inner, payload) {
			return
		}
		n.count(func(s *Stats) { s.Forwarded++ })
		return
	}

	// No bone route: exit toward the destination's underlay address
	// (self-addressed destinations carry it).
	if u, ok := inner.UnderlayDst(); ok {
		if !n.relay(nextHops{primary: u}, inner, payload) {
			return
		}
		n.count(func(s *Stats) { s.Exited++ })
		return
	}
	n.count(func(s *Stats) { s.Dropped++ })
}

// deliver hands a payload to the inbox, counting overflow as a drop.
func (n *Node) deliver(rcv Received) bool {
	select {
	case n.Inbox <- rcv:
		n.count(func(s *Stats) { s.Delivered++ })
		return true
	default:
		n.count(func(s *Stats) { s.Dropped++ })
		return false
	}
}

// relay re-encapsulates toward the next live underlay hop, decrementing
// the inner hop limit; it reports success. The primary next hop is
// preferred; a dead or suspected primary fails over to the first live
// alternate (counted), and as a last resort any registered candidate is
// tried in order.
func (n *Node) relay(nh nextHops, inner packet.VNHeader, payload []byte) bool {
	if inner.HopLimit <= 1 {
		n.count(func(s *Stats) { s.Dropped++ })
		return false
	}
	inner.HopLimit--
	next, failover := n.pickNextHop(nh)
	outer := packet.V4Header{
		Proto: packet.ProtoVNEncap,
		Src:   n.Underlay,
		Dst:   next,
	}
	buf := packet.NewSerializeBuffer()
	if err := packet.Serialize(buf, payload, &outer, &inner); err != nil {
		n.count(func(s *Stats) { s.Dropped++ })
		return false
	}
	if err := n.sendWire(next, buf.Bytes()); err != nil {
		n.count(func(s *Stats) { s.Dropped++ })
		return false
	}
	if failover {
		n.ctr().FailoverRoute()
	}
	return true
}

// pickNextHop chooses the forwarding target from a route's next-hop set:
// the first registered, unsuspected candidate in primary-then-alternates
// order; failing that, the first registered candidate; failing that, the
// primary (whose send will fail and be counted). The second return
// reports whether a non-primary hop was chosen.
func (n *Node) pickNextHop(nh nextHops) (addr.V4, bool) {
	r := n.reg
	r.mu.RLock()
	defer r.mu.RUnlock()
	candidates := make([]addr.V4, 0, 1+len(nh.alts))
	candidates = append(candidates, nh.primary)
	candidates = append(candidates, nh.alts...)
	for _, c := range candidates {
		if r.aliveLocked(c) {
			return c, c != nh.primary
		}
	}
	for _, c := range candidates {
		if _, ok := r.unicast[c]; ok {
			return c, c != nh.primary
		}
	}
	return nh.primary, false
}

// WaitInbox receives from the node's inbox with a timeout, for tests and
// examples.
func (n *Node) WaitInbox(timeout time.Duration) (Received, error) {
	select {
	case r := <-n.Inbox:
		return r, nil
	case <-time.After(timeout):
		return Received{}, fmt.Errorf("overlaynet: timeout waiting for delivery at %s", n.Underlay)
	case <-n.done:
		return Received{}, ErrClosed
	}
}

// SetSendFailureObserver installs a callback invoked whenever one of this
// node's reliable sends exhausts its retransmission budget (ErrNotAcked)
// toward an IPvN destination — the live plane's strongest per-flow
// delivery-failure signal. A bridged control plane subscribes here to
// feed its per-flow health state (livebridge wires the observer to
// Evolution.ReportUnackedVN). A nil fn removes the observer. The callback
// runs on the failing sender's goroutine; keep it brief.
func (n *Node) SetSendFailureObserver(fn func(dst addr.VN)) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.sendFailObs = fn
}

// notifySendFailure invokes the send-failure observer, if any.
func (n *Node) notifySendFailure(dst addr.VN) {
	n.mu.RLock()
	fn := n.sendFailObs
	n.mu.RUnlock()
	if fn != nil {
		fn(dst)
	}
}

// PeerStatus is one row of a node's peer-health table.
type PeerStatus struct {
	Peer      addr.V4
	Suspected bool
	// Misses is the current consecutive unanswered-probe count.
	Misses int
}

// PeerHealth returns the node's peer-health table, sorted by peer
// address — the data behind overlayd's /debug/peers view.
func (n *Node) PeerHealth() []PeerStatus {
	n.mu.RLock()
	defer n.mu.RUnlock()
	out := make([]PeerStatus, 0, len(n.peers))
	for p, st := range n.peers {
		out = append(out, PeerStatus{Peer: p, Suspected: st.suspected, Misses: st.misses})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Peer < out[j].Peer })
	return out
}
