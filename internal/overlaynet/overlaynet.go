// Package overlaynet is the live prototype: vN-Bone nodes as goroutines
// bound to real UDP sockets on localhost, exchanging the actual wire
// formats of internal/packet through real tunnels. The simulated internet
// supplies the *control plane* (which router is the anycast ingress, what
// the bone routes are); this package executes the *data plane* — encap at
// the host toward the anycast address, decap/relay at each vN router,
// exit toward self-addressed destinations — over genuine sockets.
//
// The Registry stands in for IPv(N-1) routing: it maps underlay addresses
// to UDP endpoints and resolves anycast addresses to their current member
// list (ordered by proximity, as the simulator's routing would). This is
// the documented substitution for a real multi-ISP underlay (DESIGN.md
// §2): the code paths above the socket layer are identical.
package overlaynet

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"github.com/evolvable-net/evolve/internal/addr"
	"github.com/evolvable-net/evolve/internal/packet"
	"github.com/evolvable-net/evolve/internal/rib"
)

// Errors.
var (
	// ErrUnknownUnderlay: the registry has no endpoint for an address.
	ErrUnknownUnderlay = errors.New("overlaynet: unknown underlay address")
	// ErrNoAnycastMember: an anycast address has no registered members.
	ErrNoAnycastMember = errors.New("overlaynet: anycast group empty")
	// ErrClosed: the node has been shut down.
	ErrClosed = errors.New("overlaynet: node closed")
)

// Resolver answers "where does an anycast packet from src land" — the
// hook through which a control plane (e.g. the simulator's routing)
// drives per-source anycast resolution in the live overlay.
type Resolver func(src, anycastAddr addr.V4) (addr.V4, bool)

// Registry is the stand-in for global IPv(N-1) routing: underlay address →
// UDP endpoint, anycast address → proximity-ordered member list, plus an
// optional per-source Resolver that overrides the static ordering.
type Registry struct {
	mu       sync.RWMutex
	unicast  map[addr.V4]*net.UDPAddr
	anycast  map[addr.V4][]addr.V4
	resolver Resolver
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		unicast: map[addr.V4]*net.UDPAddr{},
		anycast: map[addr.V4][]addr.V4{},
	}
}

// Register binds an underlay address to a UDP endpoint.
func (r *Registry) Register(a addr.V4, ep *net.UDPAddr) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.unicast[a] = ep
}

// Unregister removes an underlay binding.
func (r *Registry) Unregister(a addr.V4) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.unicast, a)
}

// Endpoint resolves an underlay address.
func (r *Registry) Endpoint(a addr.V4) (*net.UDPAddr, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	ep, ok := r.unicast[a]
	return ep, ok
}

// SetAnycastMembers installs the proximity-ordered member list for an
// anycast address — the control-plane output of the simulated routing.
func (r *Registry) SetAnycastMembers(a addr.V4, members []addr.V4) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.anycast[a] = append([]addr.V4(nil), members...)
}

// SetResolver installs a per-source anycast resolver; a nil resolver
// reverts to the static member ordering.
func (r *Registry) SetResolver(f Resolver) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.resolver = f
}

// ResolveAnycast returns the first registered member of the group — the
// "closest" per the installed ordering.
func (r *Registry) ResolveAnycast(a addr.V4) (addr.V4, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, m := range r.anycast[a] {
		if _, ok := r.unicast[m]; ok {
			return m, true
		}
	}
	return 0, false
}

// resolveFrom maps any destination (anycast or unicast) to a UDP
// endpoint, consulting the per-source resolver first.
func (r *Registry) resolveFrom(src, dst addr.V4) (*net.UDPAddr, error) {
	r.mu.RLock()
	res := r.resolver
	r.mu.RUnlock()
	if res != nil {
		if m, ok := res(src, dst); ok {
			if _, registered := r.Endpoint(m); registered {
				dst = m
			}
		}
	}
	if m, ok := r.ResolveAnycast(dst); ok {
		dst = m
	}
	ep, ok := r.Endpoint(dst)
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownUnderlay, dst)
	}
	return ep, nil
}

// Received is one payload delivered to a node as final destination.
type Received struct {
	From    addr.VN
	To      addr.VN
	Payload []byte
	// OuterSrc is the underlay address of the last tunnel hop.
	OuterSrc addr.V4
}

// Stats counts a node's data-plane activity.
type Stats struct {
	Delivered uint64
	Forwarded uint64
	Exited    uint64
	Dropped   uint64
}

// Node is one live overlay participant (vN router or endhost).
type Node struct {
	Underlay addr.V4

	reg    *Registry
	conn   *net.UDPConn
	vnAddr addr.VN
	served map[addr.V4]bool

	mu     sync.RWMutex
	routes rib.TableVN[addr.V4] // IPvN prefix → next-hop underlay
	// mcast maps an IPvN group address to this node's replication state:
	// downstream tree branches plus locally attached subscribers.
	mcast map[addr.VN]*mcastState
	// echoVia, when set, makes the node answer "ping:" payloads with
	// "pong:" replies sent back through the given anycast address.
	echoVia addr.V4
	echoOn  bool

	// Inbox receives payloads addressed to this node. Buffered; overflow
	// is dropped and counted.
	Inbox chan Received

	statsMu sync.Mutex
	stats   Stats

	closeOnce sync.Once
	done      chan struct{}
	wg        sync.WaitGroup
}

// NewNode binds a UDP socket on 127.0.0.1 and registers the node.
func NewNode(reg *Registry, underlay addr.V4) (*Node, error) {
	conn, err := net.ListenUDP("udp4", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		return nil, fmt.Errorf("overlaynet: listen: %w", err)
	}
	// Relay nodes see every packet of a burst; a roomy receive buffer
	// keeps the kernel from shedding load before the read loop runs.
	_ = conn.SetReadBuffer(1 << 20)
	n := &Node{
		Underlay: underlay,
		reg:      reg,
		conn:     conn,
		served:   map[addr.V4]bool{},
		Inbox:    make(chan Received, 256),
		done:     make(chan struct{}),
	}
	reg.Register(underlay, conn.LocalAddr().(*net.UDPAddr))
	n.wg.Add(1)
	go n.readLoop()
	return n, nil
}

// Close shuts the node down and unregisters it.
func (n *Node) Close() error {
	n.closeOnce.Do(func() {
		close(n.done)
		n.reg.Unregister(n.Underlay)
		n.conn.Close()
	})
	n.wg.Wait()
	return nil
}

// SetVNAddr assigns the node's own IPvN address (native or self).
func (n *Node) SetVNAddr(v addr.VN) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.vnAddr = v
}

// VNAddr returns the node's IPvN address.
func (n *Node) VNAddr() addr.VN {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.vnAddr
}

// ServeAnycast makes this node accept packets whose outer destination is
// the given anycast address (an IPvN router's defining property).
func (n *Node) ServeAnycast(a addr.V4) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.served[a] = true
}

// mcastState is one group's replication entry at a node.
type mcastState struct {
	// branches are downstream tree next hops (other vN routers).
	branches []addr.V4
	// leaves are locally attached subscribers' underlay addresses.
	leaves []addr.V4
}

// SetMulticastRoute installs this node's replication state for group:
// incoming packets for the group are forwarded once per branch (further
// vN routers) and delivered once per leaf (local subscribers). Replaces
// any previous state for the group.
func (n *Node) SetMulticastRoute(group addr.VN, branches, leaves []addr.V4) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.mcast == nil {
		n.mcast = map[addr.VN]*mcastState{}
	}
	n.mcast[group] = &mcastState{
		branches: append([]addr.V4(nil), branches...),
		leaves:   append([]addr.V4(nil), leaves...),
	}
}

// Echo payload prefixes.
var (
	pingMagic = []byte("ping:")
	pongMagic = []byte("pong:")
)

// EnableEcho makes the node answer payloads beginning with "ping:" by
// sending "pong:" plus the rest back to the IPvN source, re-entering the
// overlay through the given anycast address. Echoed pings are not
// delivered to the Inbox.
func (n *Node) EnableEcho(via addr.V4) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.echoVia = via
	n.echoOn = true
}

// AddVNRoute installs a bone route: IPvN prefix → next-hop member's
// underlay address.
func (n *Node) AddVNRoute(p addr.VNPrefix, via addr.V4) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.routes.Insert(p, via)
}

// Stats returns a snapshot of the node's counters.
func (n *Node) Stats() Stats {
	n.statsMu.Lock()
	defer n.statsMu.Unlock()
	return n.stats
}

func (n *Node) count(f func(*Stats)) {
	n.statsMu.Lock()
	f(&n.stats)
	n.statsMu.Unlock()
}

// SendVN originates an IPvN packet from this node: encapsulated toward
// the anycast address (universal access — the node needs no knowledge of
// deployment state).
func (n *Node) SendVN(anycastAddr addr.V4, dst addr.VN, payload []byte) error {
	hdr := packet.VNHeader{
		Version: 8,
		Src:     n.VNAddr(),
		Dst:     dst,
	}
	if u, ok := dst.Underlay(); ok {
		hdr = hdr.WithUnderlayDst(u)
	}
	outer := packet.V4Header{
		Proto: packet.ProtoVNEncap,
		Src:   n.Underlay,
		Dst:   anycastAddr,
	}
	buf := packet.NewSerializeBuffer()
	if err := packet.Serialize(buf, payload, &outer, &hdr); err != nil {
		return err
	}
	return n.sendWire(anycastAddr, buf.Bytes())
}

func (n *Node) sendWire(dst addr.V4, wire []byte) error {
	select {
	case <-n.done:
		return ErrClosed
	default:
	}
	ep, err := n.reg.resolveFrom(n.Underlay, dst)
	if err != nil {
		return err
	}
	_, err = n.conn.WriteToUDP(wire, ep)
	return err
}

func (n *Node) readLoop() {
	defer n.wg.Done()
	buf := make([]byte, 64*1024)
	for {
		sz, _, err := n.conn.ReadFromUDP(buf)
		if err != nil {
			select {
			case <-n.done:
				return
			default:
				continue
			}
		}
		wire := make([]byte, sz)
		copy(wire, buf[:sz])
		n.handle(wire)
	}
}

// handle is the per-packet forwarding decision of a vN router/host.
func (n *Node) handle(wire []byte) {
	outer, inner, payload, err := packet.DecapVN(wire)
	if err != nil {
		n.count(func(s *Stats) { s.Dropped++ })
		return
	}
	n.mu.RLock()
	acceptable := outer.Dst == n.Underlay || n.served[outer.Dst]
	self := n.vnAddr
	n.mu.RUnlock()
	if !acceptable {
		n.count(func(s *Stats) { s.Dropped++ })
		return
	}

	// Group traffic: replicate at tree nodes, deliver at leaves.
	if inner.Dst.IsMulticast() {
		n.mu.RLock()
		st := n.mcast[inner.Dst]
		n.mu.RUnlock()
		if st == nil {
			// A leaf delivery: this node subscribed and the tree tunnelled
			// the packet here.
			rcv := Received{From: inner.Src, To: inner.Dst, Payload: payload, OuterSrc: outer.Src}
			select {
			case n.Inbox <- rcv:
				n.count(func(s *Stats) { s.Delivered++ })
			default:
				n.count(func(s *Stats) { s.Dropped++ })
			}
			return
		}
		for _, b := range st.branches {
			if n.relay(b, inner, payload) {
				n.count(func(s *Stats) { s.Forwarded++ })
			}
		}
		for _, l := range st.leaves {
			if n.relay(l, inner, payload) {
				n.count(func(s *Stats) { s.Exited++ })
			}
		}
		return
	}

	// Final destination?
	if !inner.Dst.IsZero() && inner.Dst == self {
		n.mu.RLock()
		echoOn, echoVia := n.echoOn, n.echoVia
		n.mu.RUnlock()
		if echoOn && len(payload) >= len(pingMagic) && string(payload[:len(pingMagic)]) == string(pingMagic) {
			reply := append(append([]byte(nil), pongMagic...), payload[len(pingMagic):]...)
			if err := n.SendVN(echoVia, inner.Src, reply); err != nil {
				n.count(func(s *Stats) { s.Dropped++ })
			} else {
				n.count(func(s *Stats) { s.Delivered++ })
			}
			return
		}
		rcv := Received{From: inner.Src, To: inner.Dst, Payload: payload, OuterSrc: outer.Src}
		select {
		case n.Inbox <- rcv:
			n.count(func(s *Stats) { s.Delivered++ })
		default:
			n.count(func(s *Stats) { s.Dropped++ })
		}
		return
	}

	// Forward over the bone.
	n.mu.RLock()
	via, _, haveRoute := n.routes.Lookup(inner.Dst)
	n.mu.RUnlock()
	if haveRoute {
		if !n.relay(via, inner, payload) {
			return
		}
		n.count(func(s *Stats) { s.Forwarded++ })
		return
	}

	// No bone route: exit toward the destination's underlay address
	// (self-addressed destinations carry it).
	if u, ok := inner.UnderlayDst(); ok {
		if !n.relay(u, inner, payload) {
			return
		}
		n.count(func(s *Stats) { s.Exited++ })
		return
	}
	n.count(func(s *Stats) { s.Dropped++ })
}

// relay re-encapsulates toward the next underlay hop, decrementing the
// inner hop limit; it reports success.
func (n *Node) relay(next addr.V4, inner packet.VNHeader, payload []byte) bool {
	if inner.HopLimit <= 1 {
		n.count(func(s *Stats) { s.Dropped++ })
		return false
	}
	inner.HopLimit--
	outer := packet.V4Header{
		Proto: packet.ProtoVNEncap,
		Src:   n.Underlay,
		Dst:   next,
	}
	buf := packet.NewSerializeBuffer()
	if err := packet.Serialize(buf, payload, &outer, &inner); err != nil {
		n.count(func(s *Stats) { s.Dropped++ })
		return false
	}
	if err := n.sendWire(next, buf.Bytes()); err != nil {
		n.count(func(s *Stats) { s.Dropped++ })
		return false
	}
	return true
}

// WaitInbox receives from the node's inbox with a timeout, for tests and
// examples.
func (n *Node) WaitInbox(timeout time.Duration) (Received, error) {
	select {
	case r := <-n.Inbox:
		return r, nil
	case <-time.After(timeout):
		return Received{}, fmt.Errorf("overlaynet: timeout waiting for delivery at %s", n.Underlay)
	case <-n.done:
		return Received{}, ErrClosed
	}
}
