package overlaynet

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"github.com/evolvable-net/evolve/internal/addr"
)

// TestLiveSoakFailover is the live-plane endurance scenario: 64 reliable
// senders push through a two-ingress, redundant-middle bone chain with a
// 10% seeded drop rate while the preferred anycast ingress and the
// primary mid-chain router are killed mid-run. Every send that returns
// acked must be delivered exactly once. Run under -race in CI (the
// live-soak job); on failure the counter snapshot is written to
// LIVE_SOAK_ARTIFACT_DIR for upload.
func TestLiveSoakFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	reg := NewRegistry()
	mk := func(last byte) *Node {
		n, err := NewNode(reg, u(last))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { n.Close() })
		return n
	}

	any, err := addr.Option1Address(0)
	if err != nil {
		t.Fatal(err)
	}
	// Bone: two ingresses → mid-chain m1 (alternate m1b) → exit → receiver.
	ingA, ingB := mk(101), mk(102)
	m1, m1b := mk(103), mk(104)
	exit := mk(105)
	receiver := mk(106)
	receiver.SetVNAddr(addr.SelfAddress(receiver.Underlay))

	selfAll := addr.MakeVNPrefix(addr.SelfAddress(0), 1)
	for _, ing := range []*Node{ingA, ingB} {
		ing.ServeAnycast(any)
		ing.AddVNRoute(selfAll, m1.Underlay, m1b.Underlay)
	}
	for _, m := range []*Node{m1, m1b} {
		m.AddVNRoute(selfAll, exit.Underlay)
	}
	// exit has no bone route: it leaves via the underlay option — both
	// toward the receiver and for acks exiting back to each sender.
	reg.SetAnycastMembers(any, []addr.V4{ingA.Underlay, ingB.Underlay})

	// The acked round trip crosses ~8 faulty writes, so one attempt
	// fails with probability ≈ 1-0.9⁸ ≈ 0.57; the attempt budget has to
	// be deep enough that exhaustion stays a tail event across 512
	// messages (and when it does happen, the contract below is the
	// acked-implies-exactly-once one, not all-sends-succeed).
	rel := ReliableConfig{
		AckVia:         any,
		RetransmitBase: 30 * time.Millisecond,
		RetransmitMax:  300 * time.Millisecond,
		MaxAttempts:    20,
		JitterSeed:     99,
	}
	receiver.EnableReliable(rel)

	const senders = 64
	const perSender = 8
	nodes := make([]*Node, senders)
	for i := range nodes {
		// Sender underlays sit in a distinct octet range from the bone.
		n, err := NewNode(reg, addr.V4FromOctets(10, 0, byte(1+i/200), byte(1+i%200)))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { n.Close() })
		n.SetVNAddr(addr.SelfAddress(n.Underlay))
		n.EnableReliable(rel)
		nodes[i] = n
	}

	reg.SetFaultTransport(NewFaultTransport(FaultConfig{Seed: 99, DropRate: 0.10}))

	// Tally every delivery concurrently with the workload; the inbox is
	// smaller than the total message count and must be drained live.
	// The consumer exits once the senders have finished AND the inbox
	// has stayed quiet long enough for stragglers to land.
	tally := map[string]int{}
	var tallyMu sync.Mutex
	consumerDone := make(chan struct{})
	sendersDone := make(chan struct{})
	total := senders * perSender
	go func() {
		defer close(consumerDone)
		for {
			r, err := receiver.WaitInbox(500 * time.Millisecond)
			if err != nil {
				select {
				case <-sendersDone:
					return
				default:
					continue
				}
			}
			tallyMu.Lock()
			tally[string(r.Payload)]++
			tallyMu.Unlock()
		}
	}()

	// Kill the preferred ingress at 1/3 of the run and the primary
	// mid-chain router at 2/3, gated on acked progress so the failures
	// always land mid-workload.
	var acked sync.WaitGroup
	progress := make(chan struct{}, total)
	go func() {
		for i := 0; i < total; i++ {
			<-progress
			switch i {
			case total / 3:
				ingA.Close()
			case 2 * total / 3:
				m1.Close()
			}
		}
	}()

	// ackedOK[s*perSender+i] records whether sender s's message i came
	// back acked; indices are disjoint per goroutine. ErrNotAcked after
	// a full attempt budget is a legal (tail-probability) outcome — the
	// contract is acked ⇒ delivered exactly once, unacked ⇒ at most
	// once — but any other error is a hard failure.
	ackedOK := make([]bool, total)
	errs := make(chan error, total)
	for s := 0; s < senders; s++ {
		acked.Add(1)
		go func(s int) {
			defer acked.Done()
			n := nodes[s]
			for i := 0; i < perSender; i++ {
				payload := []byte(fmt.Sprintf("s%02d-m%d", s, i))
				err := n.SendVNReliable(any, receiver.VNAddr(), payload)
				switch {
				case err == nil:
					ackedOK[s*perSender+i] = true
				case errors.Is(err, ErrNotAcked):
					// attempt budget exhausted under the drop schedule
				default:
					errs <- fmt.Errorf("sender %d msg %d: %w", s, i, err)
				}
				progress <- struct{}{}
			}
		}(s)
	}
	acked.Wait()
	close(errs)
	close(sendersDone)
	for err := range errs {
		t.Error(err)
	}
	<-consumerDone

	tallyMu.Lock()
	defer tallyMu.Unlock()
	ackedCount := 0
	for s := 0; s < senders; s++ {
		for i := 0; i < perSender; i++ {
			key := fmt.Sprintf("s%02d-m%d", s, i)
			if ackedOK[s*perSender+i] {
				ackedCount++
				if tally[key] != 1 {
					t.Errorf("%s acked but delivered %d times, want exactly once", key, tally[key])
				}
			} else if tally[key] > 1 {
				t.Errorf("%s unacked yet delivered %d times, want at most once", key, tally[key])
			}
		}
	}
	// Near-total ack coverage keeps the exactly-once assertion from
	// going vacuous if the fault schedule were ever mis-wired.
	if ackedCount < total*9/10 {
		t.Errorf("only %d/%d messages acked; failover is not working", ackedCount, total)
	}
	snap := reg.Counters().Snapshot()
	if snap.FaultDropped == 0 || snap.Retransmits == 0 {
		t.Errorf("soak injected nothing (dropped %d, retransmits %d); scenario is vacuous",
			snap.FaultDropped, snap.Retransmits)
	}
	if t.Failed() {
		dumpSoakCounters(t, snap.String())
	}
}

// dumpSoakCounters preserves the counter snapshot for CI artifact upload
// when the soak fails.
func dumpSoakCounters(t *testing.T, s string) {
	t.Logf("counter snapshot:\n%s", s)
	dir := os.Getenv("LIVE_SOAK_ARTIFACT_DIR")
	if dir == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Logf("artifact dir: %v", err)
		return
	}
	path := filepath.Join(dir, "live_soak_counters.txt")
	if err := os.WriteFile(path, []byte(s), 0o644); err != nil {
		t.Logf("artifact write: %v", err)
		return
	}
	t.Logf("counter snapshot written to %s", path)
}
