package overlaynet

import (
	"encoding/binary"
	"time"

	"github.com/evolvable-net/evolve/internal/addr"
	"github.com/evolvable-net/evolve/internal/packet"
	"github.com/evolvable-net/evolve/internal/tunnel"
)

// LivenessConfig parameterizes peer keepalive probing.
type LivenessConfig struct {
	// Interval between probe rounds. Default 50ms.
	Interval time.Duration
	// SuspectAfter is the consecutive-miss count at which a peer is
	// reported suspected dead to the Registry. Default 3.
	SuspectAfter int
}

func (c LivenessConfig) withDefaults() LivenessConfig {
	if c.Interval <= 0 {
		c.Interval = 50 * time.Millisecond
	}
	if c.SuspectAfter <= 0 {
		c.SuspectAfter = 3
	}
	return c
}

// peerState is one probing target's health record.
type peerState struct {
	suspected bool
	misses    int
	// outstanding is the nonce of the probe still awaiting its ack, zero
	// when the last probe was answered.
	outstanding uint64
}

// livenessState is the node's prober.
type livenessState struct {
	cfg   LivenessConfig
	nonce uint64
	stop  chan struct{}
}

// addPeerLocked registers a probing target. Callers hold n.mu.
func (n *Node) addPeerLocked(p addr.V4) {
	if p == n.Underlay {
		return
	}
	if _, ok := n.peers[p]; !ok {
		n.peers[p] = &peerState{}
	}
}

// AddPeer adds an explicit liveness probing target (route next hops are
// added automatically); no-op unless EnableLiveness has been or will be
// called.
func (n *Node) AddPeer(p addr.V4) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.addPeerLocked(p)
}

// EnableLiveness starts keepalive probing of the node's peers: every
// interval each peer is sent a nonce'd probe; an unanswered probe counts
// a miss, SuspectAfter consecutive misses report the peer suspected dead
// to the Registry (steering anycast resolution and relays around it),
// and a subsequent ack recovers it. Idempotent.
func (n *Node) EnableLiveness(cfg LivenessConfig) {
	n.mu.Lock()
	if n.live != nil {
		n.mu.Unlock()
		return
	}
	n.live = &livenessState{cfg: cfg.withDefaults(), stop: make(chan struct{})}
	st := n.live
	n.mu.Unlock()

	n.wg.Add(1)
	go n.probeLoop(st)
}

func (n *Node) probeLoop(st *livenessState) {
	defer n.wg.Done()
	tick := time.NewTicker(st.cfg.Interval)
	defer tick.Stop()
	for {
		select {
		case <-n.done:
			return
		case <-st.stop:
			return
		case <-tick.C:
			n.probeRound(st)
		}
	}
}

// probeRound scores the previous round (outstanding probes are misses)
// and sends a fresh probe to every peer.
func (n *Node) probeRound(st *livenessState) {
	type target struct {
		peer  addr.V4
		nonce uint64
	}
	var sendTo []target
	var suspectNow []addr.V4

	n.mu.Lock()
	for p, ps := range n.peers {
		if ps.outstanding != 0 {
			ps.misses++
			n.ctr().ProbeMissed()
			if !ps.suspected && ps.misses >= st.cfg.SuspectAfter {
				ps.suspected = true
				suspectNow = append(suspectNow, p)
			}
		}
		st.nonce++
		ps.outstanding = st.nonce
		sendTo = append(sendTo, target{peer: p, nonce: st.nonce})
	}
	n.mu.Unlock()

	for _, p := range suspectNow {
		n.reg.suspect(n.Underlay, p)
		n.ctr().PeerSuspected()
	}
	for _, t := range sendTo {
		n.sendProbe(t.peer, t.nonce, false)
		n.ctr().ProbeSent()
	}
}

// sendProbe emits a probe or probe-ack carrying the nonce. Probes go
// through the normal wire path (including fault injection, unless
// DataOnly) but bypass anycast resolution: a probe targets one concrete
// peer.
func (n *Node) sendProbe(peer addr.V4, nonce uint64, ack bool) {
	ep, ok := n.reg.Endpoint(peer)
	if !ok {
		return
	}
	wire, err := tunnel.EncodeProbe(n.Underlay, peer, nonce, ack)
	if err != nil {
		return
	}
	n.writeWire(peer, ep, wire)
}

// handleProbe answers a keepalive with an ack echoing its nonce.
func (n *Node) handleProbe(outer packet.V4Header, payload []byte) {
	if len(payload) < tunnel.ProbeNonceLen {
		return
	}
	n.sendProbe(outer.Src, binary.BigEndian.Uint64(payload[:tunnel.ProbeNonceLen]), true)
}

// handleProbeAck clears the peer's outstanding probe and, if it was
// suspected, recovers it in the Registry. Stale acks (an earlier round's
// nonce) still prove the peer alive and are honoured.
func (n *Node) handleProbeAck(outer packet.V4Header) {
	peer := outer.Src
	n.mu.Lock()
	ps := n.peers[peer]
	var recovered bool
	if ps != nil {
		ps.outstanding = 0
		ps.misses = 0
		if ps.suspected {
			ps.suspected = false
			recovered = true
		}
	}
	n.mu.Unlock()
	if recovered {
		n.reg.unsuspect(n.Underlay, peer)
		n.ctr().PeerRecovered()
	}
}
