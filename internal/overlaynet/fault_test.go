package overlaynet

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"github.com/evolvable-net/evolve/internal/addr"
	"github.com/evolvable-net/evolve/internal/trace"
)

func TestFaultPartitionAndHeal(t *testing.T) {
	_, hostA, hostB, _, any := buildChain(t)
	ft := NewFaultTransport(FaultConfig{})
	hostA.reg.SetFaultTransport(ft)

	// Partition the host from the ingress: sends vanish on the wire.
	ft.Partition(hostA.Underlay, u(11))
	if err := hostA.SendVN(any, hostB.VNAddr(), []byte("lost")); err != nil {
		t.Fatal(err)
	}
	if _, err := hostB.WaitInbox(300 * time.Millisecond); err == nil {
		t.Fatal("delivery crossed a partitioned link")
	}
	if snap := hostA.reg.Counters().Snapshot(); snap.FaultDropped != 1 {
		t.Errorf("fault.dropped = %d, want 1", snap.FaultDropped)
	}

	ft.Heal(hostA.Underlay, u(11))
	if err := hostA.SendVN(any, hostB.VNAddr(), []byte("healed")); err != nil {
		t.Fatal(err)
	}
	if got, err := hostB.WaitInbox(waitShort); err != nil || string(got.Payload) != "healed" {
		t.Errorf("after heal: %q %v", got.Payload, err)
	}
}

func TestFaultDuplicateDelivery(t *testing.T) {
	_, hostA, hostB, _, any := buildChain(t)
	ft := NewFaultTransport(FaultConfig{Seed: 1, DupRate: 1})
	hostA.reg.SetFaultTransport(ft)

	if err := hostA.SendVN(any, hostB.VNAddr(), []byte("twice")); err != nil {
		t.Fatal(err)
	}
	// Every hop duplicates, so B sees at least two copies of a plain
	// (unsequenced) send.
	if _, err := hostB.WaitInbox(waitShort); err != nil {
		t.Fatal(err)
	}
	if _, err := hostB.WaitInbox(waitShort); err != nil {
		t.Fatalf("duplicate never arrived: %v", err)
	}
	if snap := hostA.reg.Counters().Snapshot(); snap.FaultDuplicated == 0 {
		t.Error("fault.duplicated not counted")
	}
}

func TestFaultDelay(t *testing.T) {
	_, hostA, hostB, _, any := buildChain(t)
	ft := NewFaultTransport(FaultConfig{Seed: 1, DelayRate: 1, Delay: 50 * time.Millisecond})
	hostA.reg.SetFaultTransport(ft)

	start := time.Now()
	if err := hostA.SendVN(any, hostB.VNAddr(), []byte("late")); err != nil {
		t.Fatal(err)
	}
	if _, err := hostB.WaitInbox(waitShort); err != nil {
		t.Fatal(err)
	}
	// Three tunnel hops, each delayed 50ms.
	if elapsed := time.Since(start); elapsed < 150*time.Millisecond {
		t.Errorf("delivery took %v, expected per-hop delays to accumulate", elapsed)
	}
	if snap := hostA.reg.Counters().Snapshot(); snap.FaultDelayed < 3 {
		t.Errorf("fault.delayed = %d, want >= 3", snap.FaultDelayed)
	}
}

// buildReliablePair wires two hosts through two anycast ingresses (both
// exiting directly via the underlay option) with reliable mode on and a
// seeded drop schedule.
func buildReliablePair(t *testing.T, seed int64, drop float64) (reg *Registry, hostA, hostB, ingA, ingB *Node, any addr.V4) {
	t.Helper()
	reg = NewRegistry()
	mk := func(last byte) *Node {
		n, err := NewNode(reg, u(last))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { n.Close() })
		return n
	}
	hostA, hostB = mk(1), mk(2)
	ingA, ingB = mk(11), mk(12)
	var err error
	any, err = addr.Option1Address(0)
	if err != nil {
		t.Fatal(err)
	}
	ingA.ServeAnycast(any)
	ingB.ServeAnycast(any)
	reg.SetAnycastMembers(any, []addr.V4{ingA.Underlay, ingB.Underlay})
	hostA.SetVNAddr(addr.SelfAddress(hostA.Underlay))
	hostB.SetVNAddr(addr.SelfAddress(hostB.Underlay))
	rel := ReliableConfig{
		AckVia: any,
		// Loopback RTT is microseconds; a generous timeout means every
		// retransmission is caused by an injected drop, never by timing —
		// the counter schedule depends only on the seed.
		RetransmitBase: 100 * time.Millisecond,
		MaxAttempts:    12,
		JitterSeed:     seed,
	}
	hostA.EnableReliable(rel)
	hostB.EnableReliable(rel)
	reg.SetFaultTransport(NewFaultTransport(FaultConfig{Seed: seed, DropRate: drop}))
	return reg, hostA, hostB, ingA, ingB, any
}

// runReliableFailover drives the acceptance scenario: a sequential acked
// workload over a 10% seeded drop rate with the preferred anycast ingress
// killed mid-run. Returns the delivery tally (payload → copies seen in
// the inbox) and the final counter snapshot.
func runReliableFailover(t *testing.T, seed int64) (map[string]int, trace.Snapshot) {
	t.Helper()
	reg, hostA, hostB, ingA, _, any := buildReliablePair(t, seed, 0.10)

	const msgs = 30
	got := map[string]int{}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for len(got) < msgs {
			r, err := hostB.WaitInbox(10 * time.Second)
			if err != nil {
				return
			}
			got[string(r.Payload)]++
		}
	}()
	for i := 0; i < msgs; i++ {
		if i == msgs/2 {
			// The proximity-preferred ingress dies mid-run; subsequent
			// transmissions re-resolve to the next live member.
			ingA.Close()
		}
		if err := hostA.SendVNReliable(any, hostB.VNAddr(), []byte(fmt.Sprintf("msg-%02d", i))); err != nil {
			t.Fatalf("message %d not acked: %v", i, err)
		}
	}
	<-done
	return got, reg.Counters().Snapshot()
}

func TestReliableExactlyOnceUnderDropAndIngressKill(t *testing.T) {
	got, snap := runReliableFailover(t, 42)
	for i := 0; i < 30; i++ {
		key := fmt.Sprintf("msg-%02d", i)
		if got[key] != 1 {
			t.Errorf("%s delivered %d times, want exactly once", key, got[key])
		}
	}
	if snap.FaultDropped == 0 {
		t.Error("drop schedule injected nothing; test is vacuous")
	}
	if snap.Retransmits == 0 {
		t.Error("no retransmissions despite drops")
	}
}

func TestReliableCountersDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("two full failover runs")
	}
	_, snap1 := runReliableFailover(t, 7)
	_, snap2 := runReliableFailover(t, 7)
	// The fault schedule, and everything downstream of it, must replay
	// identically for the same seed.
	checks := []struct {
		name string
		a, b uint64
	}{
		{"fault.dropped", snap1.FaultDropped, snap2.FaultDropped},
		{"live.retransmits", snap1.Retransmits, snap2.Retransmits},
		{"live.dedup_drops", snap1.DedupDrops, snap2.DedupDrops},
		{"live.failover_anycast", snap1.FailoversAnycast, snap2.FailoversAnycast},
	}
	for _, c := range checks {
		if c.a != c.b {
			t.Errorf("%s differs across same-seed runs: %d vs %d", c.name, c.a, c.b)
		}
	}
}

func TestReliableRequiresEnable(t *testing.T) {
	reg := NewRegistry()
	n, err := NewNode(reg, u(1))
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	any, _ := addr.Option1Address(0)
	if err := n.SendVNReliable(any, addr.VN{Hi: 1}, nil); !errors.Is(err, ErrReliableDisabled) {
		t.Errorf("err = %v", err)
	}
}

func TestReliableGivesUpWithoutReceiver(t *testing.T) {
	// An ingress that black-holes everything (partitioned): the sender
	// must bound its attempts and surface ErrNotAcked.
	reg := NewRegistry()
	hostA, err := NewNode(reg, u(1))
	if err != nil {
		t.Fatal(err)
	}
	defer hostA.Close()
	ing, err := NewNode(reg, u(11))
	if err != nil {
		t.Fatal(err)
	}
	defer ing.Close()
	any, _ := addr.Option1Address(0)
	ing.ServeAnycast(any)
	reg.SetAnycastMembers(any, []addr.V4{ing.Underlay})
	hostA.SetVNAddr(addr.SelfAddress(hostA.Underlay))
	hostA.EnableReliable(ReliableConfig{
		AckVia:         any,
		RetransmitBase: 5 * time.Millisecond,
		MaxAttempts:    3,
	})
	ft := NewFaultTransport(FaultConfig{Seed: 3})
	ft.Partition(hostA.Underlay, ing.Underlay)
	reg.SetFaultTransport(ft)

	if err := hostA.SendVNReliable(any, addr.SelfAddress(u(2)), []byte("void")); !errors.Is(err, ErrNotAcked) {
		t.Errorf("err = %v, want ErrNotAcked", err)
	}
	if snap := reg.Counters().Snapshot(); snap.Retransmits != 2 {
		t.Errorf("retransmits = %d, want 2 (3 attempts)", snap.Retransmits)
	}
}
