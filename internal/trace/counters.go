package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"github.com/evolvable-net/evolve/internal/topology"
)

// DropReason classifies why a delivery failed, by the stage that killed
// it. The taxonomy follows the legs of a delivery (OBSERVABILITY.md):
// ingress (anycast), vN-Bone transit, egress/tail, plus wire-level
// failures that can occur at any stage.
type DropReason uint8

const (
	// DropNone: not a drop (the zero value, never counted).
	DropNone DropReason = iota
	// DropNotDeployed: the deployment has no IPvN routers at all.
	DropNotDeployed
	// DropNoIngress: anycast resolution found no ingress (no route, dead
	// end at the default domain, or a forwarding loop).
	DropNoIngress
	// DropEncap: a tunnel encapsulation failed (hop limit exhausted,
	// serialization error).
	DropEncap
	// DropDecap: a tunnel decapsulation failed (malformed wire bytes, or
	// a packet that arrived at the wrong endpoint).
	DropDecap
	// DropNoVNRoute: BGPvN had no route — no native prefix covers the
	// destination and no egress policy produced an exit.
	DropNoVNRoute
	// DropRelay: a member-to-member relay along the bone path failed.
	DropRelay
	// DropTail: the final leg from the egress router to the destination
	// host failed (no underlay path, missing carried underlay address).
	DropTail
	// DropIntegrity: the per-delivery trace tag did not survive the wire
	// path bit-for-bit.
	DropIntegrity
	// DropNoBaseline: the IPv(N-1) baseline path between the hosts does
	// not exist, so the delivery cannot be accounted.
	DropNoBaseline

	numDropReasons
)

// String names the drop reason the way counters and traces print it.
func (r DropReason) String() string {
	switch r {
	case DropNone:
		return "none"
	case DropNotDeployed:
		return "not-deployed"
	case DropNoIngress:
		return "no-ingress"
	case DropEncap:
		return "encap"
	case DropDecap:
		return "decap"
	case DropNoVNRoute:
		return "no-vn-route"
	case DropRelay:
		return "relay"
	case DropTail:
		return "tail"
	case DropIntegrity:
		return "integrity"
	case DropNoBaseline:
		return "no-baseline"
	default:
		return fmt.Sprintf("reason(%d)", uint8(r))
	}
}

// DropReasons lists every countable reason, for documentation and
// introspection dumps.
func DropReasons() []DropReason {
	out := make([]DropReason, 0, numDropReasons-1)
	for r := DropNotDeployed; r < numDropReasons; r++ {
		out = append(out, r)
	}
	return out
}

// Counters is the evolution-wide tally set. All methods are safe for
// concurrent use and never allocate on the hot path except the first
// time a given AS appears as an ingress. The zero value is ready to use.
//
// Counters touched on the send path are striped (see striped.go): each
// increment lands on one of several cache-line-padded cells and Snapshot
// aggregates them, so 64+ concurrent senders do not serialize on shared
// cache lines. Mutator-side counters (rebuilds, epochs, invalidations,
// live-plane events) stay single atomics — they are rare and their exact
// single-cell form is occasionally read in tests via deltas.
type Counters struct {
	// stripeEnc holds the configured stripe count (0 = default); see
	// SetStripes.
	stripeEnc atomic.Uint32

	sends        striped
	deliveries   striped
	redirects    striped
	redirectHits striped
	encaps       striped
	decaps       striped
	boneHops     striped
	flowHits     striped
	flowMisses   striped
	payloadBytes striped
	batchFlows   striped
	batchPackets striped
	// Graceful-degradation tallies (internal/core health/fallback layer):
	// baseline-path deliveries, in-line rescues, vN probes from fallback,
	// and flow-health state transitions. All ride the send path, so they
	// stripe like the delivery counters above.
	fallbackSends   striped
	fallbackRescues striped
	fallbackProbes  striped
	healthSuspect   striped
	healthFallback  striped
	healthProbation striped
	healthRecovered striped
	// healthSignals counts external failure signals (unacked reliable
	// sends, overlay peer suspicion) fed into the health layer by the live
	// plane — mutator-side, so a single atomic suffices.
	healthSignals atomic.Uint64
	boneRebuilds  atomic.Uint64
	rebuildsFail  atomic.Uint64
	epochs        atomic.Uint64
	invalDomain   atomic.Uint64
	invalInter    atomic.Uint64
	invalFull     atomic.Uint64
	boneReused    atomic.Uint64
	boneRebuilt   atomic.Uint64
	// Live-plane fault-tolerance tallies (internal/overlaynet,
	// internal/livebridge): liveness probing, failover, retransmission,
	// epoch reconciliation and injected wire faults.
	probesSent     atomic.Uint64
	probesMissed   atomic.Uint64
	peersSuspected atomic.Uint64
	peersRecovered atomic.Uint64
	failoverAny    atomic.Uint64
	failoverRoute  atomic.Uint64
	retransmits    atomic.Uint64
	dedupDrops     atomic.Uint64
	reconDeltas    atomic.Uint64
	reconFallbacks atomic.Uint64
	faultDropped   atomic.Uint64
	faultDup       atomic.Uint64
	faultDelayed   atomic.Uint64
	drops          [numDropReasons]striped
	// ingressByAS is the per-AS ingress load: how many deliveries
	// entered the bone in each domain. A plain map under an RWMutex
	// rather than a sync.Map — the hot path is then an RLock plus one
	// typed map probe with no interface boxing, so counting an ingress
	// allocates nothing once the AS has been seen.
	ingressMu   sync.RWMutex
	ingressByAS map[topology.ASN]*striped
}

// Send counts one delivery attempt entering the send path.
func (c *Counters) Send() { c.sends.add(c.mask(), 1) }

// Deliver counts one successful end-to-end delivery.
func (c *Counters) Deliver() { c.deliveries.add(c.mask(), 1) }

// Drop counts one failed delivery under its reason.
func (c *Counters) Drop(r DropReason) {
	if r == DropNone || r >= numDropReasons {
		return
	}
	c.drops[r].add(c.mask(), 1)
}

// Redirect counts one anycast redirect resolution; hit reports whether
// it was served from the redirect cache.
func (c *Counters) Redirect(hit bool) {
	m := c.mask()
	c.redirects.add(m, 1)
	if hit {
		c.redirectHits.add(m, 1)
	}
}

// FlowHit counts one send whose full delivery skeleton (ingress, egress,
// tail, baseline) was served from the epoch's flow cache.
func (c *Counters) FlowHit() { c.flowHits.add(c.mask(), 1) }

// FlowMiss counts one send that had to compute its delivery skeleton
// from the routing substrate (and, mutations permitting, cached it).
func (c *Counters) FlowMiss() { c.flowMisses.add(c.mask(), 1) }

// BatchFlows counts n distinct flow skeletons materialized by batched
// sends (one per (src, dst) pair that appeared in a SendBatch burst).
func (c *Counters) BatchFlows(n int) {
	if n > 0 {
		c.batchFlows.add(c.mask(), uint64(n))
	}
}

// BatchPackets counts n packets carried by batched sends (every packet
// handed to SendBatch/SendBurst, delivered or dropped).
func (c *Counters) BatchPackets(n int) {
	if n > 0 {
		c.batchPackets.add(c.mask(), uint64(n))
	}
}

// FallbackSend counts one delivery carried over the IPv(N-1) baseline
// path instead of the vN-Bone (the flow was in the fallback state, or an
// error epoch was bridged).
func (c *Counters) FallbackSend() { c.fallbackSends.add(c.mask(), 1) }

// FallbackRescue counts one delivery whose vN attempt failed and was
// rescued in-line over the baseline path. Every rescue is also a
// FallbackSend.
func (c *Counters) FallbackRescue() { c.fallbackRescues.add(c.mask(), 1) }

// FallbackProbe counts one vN probe attempted by a flow in the fallback
// state (seeded-jitter backoff schedule).
func (c *Counters) FallbackProbe() { c.fallbackProbes.add(c.mask(), 1) }

// HealthSuspect counts one flow transitioning healthy → suspect.
func (c *Counters) HealthSuspect() { c.healthSuspect.add(c.mask(), 1) }

// HealthFallback counts one flow transitioning into the fallback state.
func (c *Counters) HealthFallback() { c.healthFallback.add(c.mask(), 1) }

// HealthProbation counts one flow whose fallback probe succeeded,
// entering probation.
func (c *Counters) HealthProbation() { c.healthProbation.add(c.mask(), 1) }

// HealthRecovered counts one flow returning to the healthy state (from
// suspect or probation).
func (c *Counters) HealthRecovered() { c.healthRecovered.add(c.mask(), 1) }

// HealthSignal counts n external failure signals (unacked reliable
// sends, overlay peer suspicion) applied to flow-health records.
func (c *Counters) HealthSignal(n int) {
	if n > 0 {
		c.healthSignals.Add(uint64(n))
	}
}

// PayloadBytes counts n payload bytes carried by successful deliveries.
func (c *Counters) PayloadBytes(n int) {
	if n > 0 {
		c.payloadBytes.add(c.mask(), uint64(n))
	}
}

// Ingress counts one delivery entering the deployment in domain as.
func (c *Counters) Ingress(as topology.ASN) {
	c.ingressMu.RLock()
	v := c.ingressByAS[as]
	c.ingressMu.RUnlock()
	if v == nil {
		c.ingressMu.Lock()
		if c.ingressByAS == nil {
			c.ingressByAS = map[topology.ASN]*striped{}
		}
		if v = c.ingressByAS[as]; v == nil {
			v = new(striped)
			c.ingressByAS[as] = v
		}
		c.ingressMu.Unlock()
	}
	v.add(c.mask(), 1)
}

// Encap counts one tunnel encapsulation.
func (c *Counters) Encap() { c.encaps.add(c.mask(), 1) }

// Decap counts one tunnel decapsulation.
func (c *Counters) Decap() { c.decaps.add(c.mask(), 1) }

// BoneHops counts n vN-Bone virtual hops traversed by one delivery.
func (c *Counters) BoneHops(n int) {
	if n > 0 {
		c.boneHops.add(c.mask(), uint64(n))
	}
}

// BoneRebuild counts one successful vN-Bone reconstruction (deployment
// change or topology reconvergence). Failed build attempts are counted
// separately by RebuildFailed, never here.
func (c *Counters) BoneRebuild() { c.boneRebuilds.Add(1) }

// RebuildFailed counts one vN-Bone reconstruction attempt that errored
// (e.g. the candidate membership partitions the bone). The previous
// routing state stays live, so failures must not inflate BoneRebuilds.
func (c *Counters) RebuildFailed() { c.rebuildsFail.Add(1) }

// Epoch counts one routing-epoch publication: any mutation that swapped
// in a new immutable snapshot for the send path, whether or not the
// bone itself was rebuilt.
func (c *Counters) Epoch() { c.epochs.Add(1) }

// InvalDomain counts one domain-scoped invalidation: an event confined
// to a single AS (intra-link flap, membership change) that dropped only
// that domain's derived state.
func (c *Counters) InvalDomain() { c.invalDomain.Add(1) }

// InvalInter counts one inter-scope invalidation: an inter-domain link
// event that refreshed BGP and the cross-domain SPTs while every
// intra-domain SPT survived.
func (c *Counters) InvalInter() { c.invalInter.Add(1) }

// InvalFull counts one whole-world invalidation — the legacy dirty-flag
// behaviour, now reserved for events with global reach (or the
// FullReconverge ablation mode).
func (c *Counters) InvalFull() { c.invalFull.Add(1) }

// BoneDomains records, for one incremental bone build, how many
// per-domain intra meshes were reused from the previous bone versus
// recomputed from scratch.
func (c *Counters) BoneDomains(reused, rebuilt int) {
	if reused > 0 {
		c.boneReused.Add(uint64(reused))
	}
	if rebuilt > 0 {
		c.boneRebuilt.Add(uint64(rebuilt))
	}
}

// ProbeSent counts one liveness keepalive probe emitted toward a peer.
func (c *Counters) ProbeSent() { c.probesSent.Add(1) }

// ProbeMissed counts one probe round that elapsed without the previous
// probe to that peer being acknowledged.
func (c *Counters) ProbeMissed() { c.probesMissed.Add(1) }

// PeerSuspected counts one peer transitioning healthy → suspected after
// accumulating the configured number of consecutive misses.
func (c *Counters) PeerSuspected() { c.peersSuspected.Add(1) }

// PeerRecovered counts one suspected peer answering a probe again.
func (c *Counters) PeerRecovered() { c.peersRecovered.Add(1) }

// FailoverAnycast counts one anycast resolution that skipped a dead or
// suspected member (including a per-source resolver nomination that was
// overridden) and landed on the next-closest live member.
func (c *Counters) FailoverAnycast() { c.failoverAny.Add(1) }

// FailoverRoute counts one bone relay that bypassed a dead or suspected
// primary next-hop via an alternate.
func (c *Counters) FailoverRoute() { c.failoverRoute.Add(1) }

// Retransmit counts one retransmission attempt of an acked send.
func (c *Counters) Retransmit() { c.retransmits.Add(1) }

// DedupDrop counts one duplicate delivery suppressed by the receiver's
// dedup window (the duplicate is re-acked, never re-delivered).
func (c *Counters) DedupDrop() { c.dedupDrops.Add(1) }

// ReconcileDeltas counts n membership/route/address deltas applied to a
// running overlay by one epoch reconciliation.
func (c *Counters) ReconcileDeltas(n int) {
	if n > 0 {
		c.reconDeltas.Add(uint64(n))
	}
}

// ReconcileFallback counts one reconciliation that kept the last-good
// configuration because the published epoch was unusable.
func (c *Counters) ReconcileFallback() { c.reconFallbacks.Add(1) }

// FaultDrop counts one packet discarded by injected wire faults
// (drop-rate or partition).
func (c *Counters) FaultDrop() { c.faultDropped.Add(1) }

// FaultDuplicate counts one packet duplicated by injected wire faults.
func (c *Counters) FaultDuplicate() { c.faultDup.Add(1) }

// FaultDelay counts one packet deferred by injected wire faults.
func (c *Counters) FaultDelay() { c.faultDelayed.Add(1) }

// Snapshot is a point-in-time copy of a Counters. Each field is read
// atomically; the set as a whole is not a global atomic snapshot (see
// the package comment), but every counter is monotonic across snapshots.
type Snapshot struct {
	// Sends is the number of delivery attempts; Sends = Deliveries +
	// Drops once all in-flight deliveries settle.
	Sends uint64
	// Deliveries is the number of successful end-to-end deliveries.
	Deliveries uint64
	// Drops is the total failed deliveries; DropsByReason breaks it down
	// (only non-zero reasons appear).
	Drops         uint64
	DropsByReason map[DropReason]uint64
	// Redirects counts anycast redirect resolutions on the send path;
	// RedirectCacheHits of them were served from the redirect cache
	// without re-walking the BGP/IGP trajectory.
	Redirects, RedirectCacheHits uint64
	// Encaps/Decaps count tunnel operations across all stages.
	Encaps, Decaps uint64
	// BoneHops is the total vN-Bone virtual hops traversed.
	BoneHops uint64
	// DeliveryFlowHits/DeliveryFlowMisses count sends whose delivery
	// skeleton (ingress, egress, tail, baseline accounting) was served
	// from the epoch's flow cache versus computed from the routing
	// substrate. DeliveryPayloadBytes totals the payload bytes carried by
	// successful deliveries.
	DeliveryFlowHits, DeliveryFlowMisses, DeliveryPayloadBytes uint64
	// DeliveryBatchFlows/DeliveryBatchPackets measure the batched send
	// path: how many distinct flow skeletons SendBatch bursts
	// materialized and how many packets rode them. Loop sends never move
	// these, so BatchPackets/Sends is the batch-adoption ratio.
	DeliveryBatchFlows, DeliveryBatchPackets uint64
	// DeliveryFallbackSends/DeliveryFallbackRescues measure graceful
	// degradation: deliveries carried over the IPv(N-1) baseline path, and
	// the subset that were in-line rescues of a failed vN attempt.
	DeliveryFallbackSends, DeliveryFallbackRescues uint64
	// HealthProbes counts vN probes attempted by flows in the fallback
	// state; HealthSuspects/HealthFallbacks/HealthProbations/
	// HealthRecovered count flow-health state transitions; HealthSignals
	// counts external failure signals fed in by the live plane.
	HealthProbes, HealthSuspects, HealthFallbacks, HealthProbations, HealthRecovered, HealthSignals uint64
	// BoneRebuilds counts successful vN-Bone reconstructions;
	// RebuildsFailed counts attempts that errored and left the previous
	// routing state live.
	BoneRebuilds, RebuildsFailed uint64
	// Epochs counts routing-epoch publications (atomic snapshot swaps on
	// the send path).
	Epochs uint64
	// InvalDomain/InvalInter/InvalFull classify reconvergence events by
	// invalidation scope: one domain, the inter-domain mesh, or the whole
	// world.
	InvalDomain, InvalInter, InvalFull uint64
	// BoneDomainsReused/BoneDomainsRebuilt count per-domain intra meshes
	// carried over from the previous bone versus recomputed, across all
	// incremental builds.
	BoneDomainsReused, BoneDomainsRebuilt uint64
	// ProbesSent/ProbesMissed count live-overlay keepalive probes and
	// probe rounds that found the previous probe unanswered.
	ProbesSent, ProbesMissed uint64
	// PeersSuspected/PeersRecovered count peer-health transitions at
	// live nodes (healthy → suspected and back).
	PeersSuspected, PeersRecovered uint64
	// FailoversAnycast/FailoversRoute count anycast resolutions and bone
	// relays that routed around a dead or suspected target.
	FailoversAnycast, FailoversRoute uint64
	// Retransmits counts retransmission attempts of acked sends;
	// DedupDrops counts receiver-side duplicate suppressions.
	Retransmits, DedupDrops uint64
	// ReconcileDeltas counts in-place deltas applied to a running
	// overlay by epoch reconciliation; ReconcileFallbacks counts
	// reconciliations that kept the last-good state on an error epoch.
	ReconcileDeltas, ReconcileFallbacks uint64
	// FaultDropped/FaultDuplicated/FaultDelayed count packets the
	// injected wire-fault layer discarded, duplicated or deferred.
	FaultDropped, FaultDuplicated, FaultDelayed uint64
	// IngressByAS is the per-AS ingress load: deliveries that entered
	// the deployment in each participating domain.
	IngressByAS map[topology.ASN]uint64
}

// Snapshot returns a point-in-time copy of the counters.
func (c *Counters) Snapshot() Snapshot {
	s := Snapshot{
		Sends:                   c.sends.load(),
		Deliveries:              c.deliveries.load(),
		Redirects:               c.redirects.load(),
		RedirectCacheHits:       c.redirectHits.load(),
		Encaps:                  c.encaps.load(),
		Decaps:                  c.decaps.load(),
		BoneHops:                c.boneHops.load(),
		DeliveryFlowHits:        c.flowHits.load(),
		DeliveryFlowMisses:      c.flowMisses.load(),
		DeliveryPayloadBytes:    c.payloadBytes.load(),
		DeliveryBatchFlows:      c.batchFlows.load(),
		DeliveryBatchPackets:    c.batchPackets.load(),
		DeliveryFallbackSends:   c.fallbackSends.load(),
		DeliveryFallbackRescues: c.fallbackRescues.load(),
		HealthProbes:            c.fallbackProbes.load(),
		HealthSuspects:          c.healthSuspect.load(),
		HealthFallbacks:         c.healthFallback.load(),
		HealthProbations:        c.healthProbation.load(),
		HealthRecovered:         c.healthRecovered.load(),
		HealthSignals:           c.healthSignals.Load(),
		BoneRebuilds:            c.boneRebuilds.Load(),
		RebuildsFailed:          c.rebuildsFail.Load(),
		Epochs:                  c.epochs.Load(),
		InvalDomain:             c.invalDomain.Load(),
		InvalInter:              c.invalInter.Load(),
		InvalFull:               c.invalFull.Load(),
		BoneDomainsReused:       c.boneReused.Load(),
		BoneDomainsRebuilt:      c.boneRebuilt.Load(),
		ProbesSent:              c.probesSent.Load(),
		ProbesMissed:            c.probesMissed.Load(),
		PeersSuspected:          c.peersSuspected.Load(),
		PeersRecovered:          c.peersRecovered.Load(),
		FailoversAnycast:        c.failoverAny.Load(),
		FailoversRoute:          c.failoverRoute.Load(),
		Retransmits:             c.retransmits.Load(),
		DedupDrops:              c.dedupDrops.Load(),
		ReconcileDeltas:         c.reconDeltas.Load(),
		ReconcileFallbacks:      c.reconFallbacks.Load(),
		FaultDropped:            c.faultDropped.Load(),
		FaultDuplicated:         c.faultDup.Load(),
		FaultDelayed:            c.faultDelayed.Load(),
		DropsByReason:           map[DropReason]uint64{},
		IngressByAS:             map[topology.ASN]uint64{},
	}
	for r := DropNotDeployed; r < numDropReasons; r++ {
		if n := c.drops[r].load(); n > 0 {
			s.DropsByReason[r] = n
			s.Drops += n
		}
	}
	c.ingressMu.RLock()
	for as, v := range c.ingressByAS {
		s.IngressByAS[as] = v.load()
	}
	c.ingressMu.RUnlock()
	return s
}

// Sub returns the per-field difference s − prev. It is the step-delta
// primitive used by invariant checkers (internal/chaos) and periodic
// scrapers: because every counter is monotonic, each field of the result
// is the activity that happened between the two snapshots. Map entries
// with a zero delta are omitted. Sub panics on counter regression (prev
// ahead of s), which can only mean the snapshots were taken from
// different Counters or swapped.
func (s Snapshot) Sub(prev Snapshot) Snapshot {
	sub := func(a, b uint64, what string) uint64 {
		if a < b {
			panic(fmt.Sprintf("trace: counter %s went backwards (%d → %d)", what, b, a))
		}
		return a - b
	}
	d := Snapshot{
		Sends:                   sub(s.Sends, prev.Sends, "sends"),
		Deliveries:              sub(s.Deliveries, prev.Deliveries, "deliveries"),
		Drops:                   sub(s.Drops, prev.Drops, "drops"),
		Redirects:               sub(s.Redirects, prev.Redirects, "redirects"),
		RedirectCacheHits:       sub(s.RedirectCacheHits, prev.RedirectCacheHits, "redirects.cache_hits"),
		Encaps:                  sub(s.Encaps, prev.Encaps, "tunnel.encaps"),
		Decaps:                  sub(s.Decaps, prev.Decaps, "tunnel.decaps"),
		BoneHops:                sub(s.BoneHops, prev.BoneHops, "bone.hops"),
		DeliveryFlowHits:        sub(s.DeliveryFlowHits, prev.DeliveryFlowHits, "delivery.flow_hits"),
		DeliveryFlowMisses:      sub(s.DeliveryFlowMisses, prev.DeliveryFlowMisses, "delivery.flow_misses"),
		DeliveryPayloadBytes:    sub(s.DeliveryPayloadBytes, prev.DeliveryPayloadBytes, "delivery.payload_bytes"),
		DeliveryBatchFlows:      sub(s.DeliveryBatchFlows, prev.DeliveryBatchFlows, "delivery.batch_flows"),
		DeliveryBatchPackets:    sub(s.DeliveryBatchPackets, prev.DeliveryBatchPackets, "delivery.batch_packets"),
		DeliveryFallbackSends:   sub(s.DeliveryFallbackSends, prev.DeliveryFallbackSends, "delivery.fallback_sends"),
		DeliveryFallbackRescues: sub(s.DeliveryFallbackRescues, prev.DeliveryFallbackRescues, "delivery.fallback_rescues"),
		HealthProbes:            sub(s.HealthProbes, prev.HealthProbes, "health.probes"),
		HealthSuspects:          sub(s.HealthSuspects, prev.HealthSuspects, "health.suspect"),
		HealthFallbacks:         sub(s.HealthFallbacks, prev.HealthFallbacks, "health.fallback"),
		HealthProbations:        sub(s.HealthProbations, prev.HealthProbations, "health.probation"),
		HealthRecovered:         sub(s.HealthRecovered, prev.HealthRecovered, "health.recovered"),
		HealthSignals:           sub(s.HealthSignals, prev.HealthSignals, "health.signals"),
		BoneRebuilds:            sub(s.BoneRebuilds, prev.BoneRebuilds, "bone.rebuilds"),
		RebuildsFailed:          sub(s.RebuildsFailed, prev.RebuildsFailed, "bone.rebuilds_failed"),
		Epochs:                  sub(s.Epochs, prev.Epochs, "epochs"),
		InvalDomain:             sub(s.InvalDomain, prev.InvalDomain, "invalidate.domain"),
		InvalInter:              sub(s.InvalInter, prev.InvalInter, "invalidate.inter"),
		InvalFull:               sub(s.InvalFull, prev.InvalFull, "invalidate.full"),
		BoneDomainsReused:       sub(s.BoneDomainsReused, prev.BoneDomainsReused, "bone.domains_reused"),
		BoneDomainsRebuilt:      sub(s.BoneDomainsRebuilt, prev.BoneDomainsRebuilt, "bone.domains_rebuilt"),
		ProbesSent:              sub(s.ProbesSent, prev.ProbesSent, "live.probes_sent"),
		ProbesMissed:            sub(s.ProbesMissed, prev.ProbesMissed, "live.probes_missed"),
		PeersSuspected:          sub(s.PeersSuspected, prev.PeersSuspected, "live.peers_suspected"),
		PeersRecovered:          sub(s.PeersRecovered, prev.PeersRecovered, "live.peers_recovered"),
		FailoversAnycast:        sub(s.FailoversAnycast, prev.FailoversAnycast, "live.failover_anycast"),
		FailoversRoute:          sub(s.FailoversRoute, prev.FailoversRoute, "live.failover_route"),
		Retransmits:             sub(s.Retransmits, prev.Retransmits, "live.retransmits"),
		DedupDrops:              sub(s.DedupDrops, prev.DedupDrops, "live.dedup_drops"),
		ReconcileDeltas:         sub(s.ReconcileDeltas, prev.ReconcileDeltas, "live.reconcile_deltas"),
		ReconcileFallbacks:      sub(s.ReconcileFallbacks, prev.ReconcileFallbacks, "live.reconcile_fallbacks"),
		FaultDropped:            sub(s.FaultDropped, prev.FaultDropped, "fault.dropped"),
		FaultDuplicated:         sub(s.FaultDuplicated, prev.FaultDuplicated, "fault.duplicated"),
		FaultDelayed:            sub(s.FaultDelayed, prev.FaultDelayed, "fault.delayed"),
		DropsByReason:           map[DropReason]uint64{},
		IngressByAS:             map[topology.ASN]uint64{},
	}
	for r, n := range s.DropsByReason {
		if delta := sub(n, prev.DropsByReason[r], "drops."+r.String()); delta > 0 {
			d.DropsByReason[r] = delta
		}
	}
	for as, n := range s.IngressByAS {
		if delta := sub(n, prev.IngressByAS[as], fmt.Sprintf("ingress.as%d", as)); delta > 0 {
			d.IngressByAS[as] = delta
		}
	}
	return d
}

// String renders the snapshot as sorted expvar-style "key value" lines —
// the format cmd/overlayd serves on its debug address.
func (s Snapshot) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "sends %d\n", s.Sends)
	fmt.Fprintf(&b, "deliveries %d\n", s.Deliveries)
	fmt.Fprintf(&b, "drops %d\n", s.Drops)
	reasons := make([]DropReason, 0, len(s.DropsByReason))
	for r := range s.DropsByReason {
		reasons = append(reasons, r)
	}
	sort.Slice(reasons, func(i, j int) bool { return reasons[i] < reasons[j] })
	for _, r := range reasons {
		fmt.Fprintf(&b, "drops.%s %d\n", r, s.DropsByReason[r])
	}
	fmt.Fprintf(&b, "redirects %d\n", s.Redirects)
	fmt.Fprintf(&b, "redirects.cache_hits %d\n", s.RedirectCacheHits)
	fmt.Fprintf(&b, "delivery.flow_hits %d\n", s.DeliveryFlowHits)
	fmt.Fprintf(&b, "delivery.flow_misses %d\n", s.DeliveryFlowMisses)
	fmt.Fprintf(&b, "delivery.payload_bytes %d\n", s.DeliveryPayloadBytes)
	fmt.Fprintf(&b, "delivery.batch_flows %d\n", s.DeliveryBatchFlows)
	fmt.Fprintf(&b, "delivery.batch_packets %d\n", s.DeliveryBatchPackets)
	fmt.Fprintf(&b, "delivery.fallback_sends %d\n", s.DeliveryFallbackSends)
	fmt.Fprintf(&b, "delivery.fallback_rescues %d\n", s.DeliveryFallbackRescues)
	fmt.Fprintf(&b, "health.probes %d\n", s.HealthProbes)
	fmt.Fprintf(&b, "health.suspect %d\n", s.HealthSuspects)
	fmt.Fprintf(&b, "health.fallback %d\n", s.HealthFallbacks)
	fmt.Fprintf(&b, "health.probation %d\n", s.HealthProbations)
	fmt.Fprintf(&b, "health.recovered %d\n", s.HealthRecovered)
	fmt.Fprintf(&b, "health.signals %d\n", s.HealthSignals)
	fmt.Fprintf(&b, "tunnel.encaps %d\n", s.Encaps)
	fmt.Fprintf(&b, "tunnel.decaps %d\n", s.Decaps)
	fmt.Fprintf(&b, "bone.hops %d\n", s.BoneHops)
	fmt.Fprintf(&b, "bone.rebuilds %d\n", s.BoneRebuilds)
	fmt.Fprintf(&b, "bone.rebuilds_failed %d\n", s.RebuildsFailed)
	fmt.Fprintf(&b, "bone.domains_reused %d\n", s.BoneDomainsReused)
	fmt.Fprintf(&b, "bone.domains_rebuilt %d\n", s.BoneDomainsRebuilt)
	fmt.Fprintf(&b, "epochs %d\n", s.Epochs)
	fmt.Fprintf(&b, "invalidate.domain %d\n", s.InvalDomain)
	fmt.Fprintf(&b, "invalidate.inter %d\n", s.InvalInter)
	fmt.Fprintf(&b, "invalidate.full %d\n", s.InvalFull)
	fmt.Fprintf(&b, "live.probes_sent %d\n", s.ProbesSent)
	fmt.Fprintf(&b, "live.probes_missed %d\n", s.ProbesMissed)
	fmt.Fprintf(&b, "live.peers_suspected %d\n", s.PeersSuspected)
	fmt.Fprintf(&b, "live.peers_recovered %d\n", s.PeersRecovered)
	fmt.Fprintf(&b, "live.failover_anycast %d\n", s.FailoversAnycast)
	fmt.Fprintf(&b, "live.failover_route %d\n", s.FailoversRoute)
	fmt.Fprintf(&b, "live.retransmits %d\n", s.Retransmits)
	fmt.Fprintf(&b, "live.dedup_drops %d\n", s.DedupDrops)
	fmt.Fprintf(&b, "live.reconcile_deltas %d\n", s.ReconcileDeltas)
	fmt.Fprintf(&b, "live.reconcile_fallbacks %d\n", s.ReconcileFallbacks)
	fmt.Fprintf(&b, "fault.dropped %d\n", s.FaultDropped)
	fmt.Fprintf(&b, "fault.duplicated %d\n", s.FaultDuplicated)
	fmt.Fprintf(&b, "fault.delayed %d\n", s.FaultDelayed)
	ases := make([]topology.ASN, 0, len(s.IngressByAS))
	for as := range s.IngressByAS {
		ases = append(ases, as)
	}
	sort.Slice(ases, func(i, j int) bool { return ases[i] < ases[j] })
	for _, as := range ases {
		fmt.Fprintf(&b, "ingress.as%d %d\n", as, s.IngressByAS[as])
	}
	return b.String()
}
