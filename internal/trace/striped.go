package trace

import (
	"math/rand/v2"
	"sync/atomic"
)

// maxStripes is the fixed stripe capacity of every striped counter. The
// stripes live in a fixed array so the zero value is ready to use and
// aggregation never chases pointers; unused stripes cost idle memory
// only. Must be a power of two.
const maxStripes = 16

// defaultStripes is the stripe count used when SetStripes was never
// called. Power of two, ≤ maxStripes.
const defaultStripes = 16

// paddedUint64 is one stripe, padded out to its own cache line so two
// stripes never share one — the whole point of striping is that 64
// senders incrementing "sends" do not serialize on a single line.
type paddedUint64 struct {
	v atomic.Uint64
	_ [56]byte
}

// striped is a per-CPU-style striped uint64 counter: increments land on
// a randomly chosen stripe (math/rand/v2 draws from a per-P generator,
// so the choice itself is contention- and allocation-free) and reads sum
// every stripe. Each stripe is individually monotonic, and a sum of
// atomically loaded monotonic values taken strictly after a previous sum
// can never be smaller — so sequential Snapshots stay monotonic, under
// -race included, even though the sum is not a global atomic snapshot.
type striped struct {
	s [maxStripes]paddedUint64
}

// add increments one stripe selected by mask (stripeCount-1).
func (c *striped) add(mask uint32, n uint64) {
	c.s[rand.Uint32()&mask].v.Add(n)
}

// load sums every stripe, regardless of the current mask, so counts
// recorded under a previous SetStripes configuration are never lost.
func (c *striped) load() uint64 {
	var t uint64
	for i := range c.s {
		t += c.s[i].v.Load()
	}
	return t
}

// SetStripes sets the number of stripes hot-path counters spread over:
// n is clamped to [1, 16] and rounded down to a power of two. It exists
// as the ablation baseline for the delivery benchmarks — SetStripes(1)
// restores the single-atomic-per-counter behaviour so the contention win
// is measurable — and may be called at any time: counts already recorded
// on other stripes keep being aggregated by Snapshot.
func (c *Counters) SetStripes(n int) {
	if n < 1 {
		n = 1
	}
	if n > maxStripes {
		n = maxStripes
	}
	p := 1
	for p*2 <= n {
		p *= 2
	}
	// Stored as stripeCount (= mask+1); 0 means "default".
	c.stripeEnc.Store(uint32(p))
}

// Stripes reports the stripe count hot-path increments currently spread
// over.
func (c *Counters) Stripes() int {
	if m := c.stripeEnc.Load(); m != 0 {
		return int(m)
	}
	return defaultStripes
}

// mask returns the current stripe-selection mask.
func (c *Counters) mask() uint32 {
	if m := c.stripeEnc.Load(); m != 0 {
		return m - 1
	}
	return defaultStripes - 1
}
