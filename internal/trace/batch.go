package trace

import "github.com/evolvable-net/evolve/internal/topology"

// CounterBatch is a plain, single-goroutine accumulator for the send-path
// counters. The batched delivery path tallies every packet of a burst
// into one CounterBatch with ordinary integer adds, then folds the whole
// burst into the shared striped Counters with one FlushTo — one striped
// add per touched counter per batch instead of one per packet. A
// CounterBatch is not safe for concurrent use; each batch owns its own
// (pooled alongside the batch's wire buffers).
//
// The method set mirrors the send-path subset of Counters exactly, so
// the core can count through either behind one interface and the
// batch≡loop differential contract holds counter by counter.
type CounterBatch struct {
	sends           uint64
	deliveries      uint64
	redirects       uint64
	redirectHits    uint64
	encaps          uint64
	decaps          uint64
	boneHops        uint64
	flowHits        uint64
	flowMisses      uint64
	payloadBytes    uint64
	batchFlows      uint64
	batchPackets    uint64
	fallbackSends   uint64
	fallbackRescues uint64
	fallbackProbes  uint64
	healthSuspect   uint64
	healthFallback  uint64
	healthProbation uint64
	healthRecovered uint64
	drops           [numDropReasons]uint64
	// ingress is a tiny assoc array: bursts touch one (or very few)
	// ingress domains, so a linear scan beats a map and allocates
	// nothing once the slice has grown.
	ingress []ingressDelta
}

type ingressDelta struct {
	as topology.ASN
	n  uint64
}

// Send counts one delivery attempt entering the send path.
func (b *CounterBatch) Send() { b.sends++ }

// Deliver counts one successful end-to-end delivery.
func (b *CounterBatch) Deliver() { b.deliveries++ }

// Drop counts one failed delivery under its reason.
func (b *CounterBatch) Drop(r DropReason) {
	if r == DropNone || r >= numDropReasons {
		return
	}
	b.drops[r]++
}

// Redirect counts one anycast redirect resolution; hit reports whether
// it was served from the redirect cache.
func (b *CounterBatch) Redirect(hit bool) {
	b.redirects++
	if hit {
		b.redirectHits++
	}
}

// FlowHit counts one send served from the epoch's flow cache.
func (b *CounterBatch) FlowHit() { b.flowHits++ }

// FlowMiss counts one send that computed its delivery skeleton.
func (b *CounterBatch) FlowMiss() { b.flowMisses++ }

// PayloadBytes counts n payload bytes carried by successful deliveries.
func (b *CounterBatch) PayloadBytes(n int) {
	if n > 0 {
		b.payloadBytes += uint64(n)
	}
}

// BatchFlows counts n distinct flow skeletons materialized by this batch.
func (b *CounterBatch) BatchFlows(n int) {
	if n > 0 {
		b.batchFlows += uint64(n)
	}
}

// BatchPackets counts n packets carried by this batch.
func (b *CounterBatch) BatchPackets(n int) {
	if n > 0 {
		b.batchPackets += uint64(n)
	}
}

// FallbackSend counts one delivery carried over the baseline path.
func (b *CounterBatch) FallbackSend() { b.fallbackSends++ }

// FallbackRescue counts one in-line baseline rescue of a failed vN
// attempt.
func (b *CounterBatch) FallbackRescue() { b.fallbackRescues++ }

// FallbackProbe counts one vN probe attempted by a flow in fallback.
func (b *CounterBatch) FallbackProbe() { b.fallbackProbes++ }

// HealthSuspect counts one flow transitioning healthy → suspect.
func (b *CounterBatch) HealthSuspect() { b.healthSuspect++ }

// HealthFallback counts one flow transitioning into the fallback state.
func (b *CounterBatch) HealthFallback() { b.healthFallback++ }

// HealthProbation counts one flow entering probation.
func (b *CounterBatch) HealthProbation() { b.healthProbation++ }

// HealthRecovered counts one flow returning to the healthy state.
func (b *CounterBatch) HealthRecovered() { b.healthRecovered++ }

// Ingress counts one delivery entering the deployment in domain as.
func (b *CounterBatch) Ingress(as topology.ASN) {
	for i := range b.ingress {
		if b.ingress[i].as == as {
			b.ingress[i].n++
			return
		}
	}
	b.ingress = append(b.ingress, ingressDelta{as: as, n: 1})
}

// Encap counts one tunnel encapsulation.
func (b *CounterBatch) Encap() { b.encaps++ }

// Decap counts one tunnel decapsulation.
func (b *CounterBatch) Decap() { b.decaps++ }

// BoneHops counts n vN-Bone virtual hops traversed by one delivery.
func (b *CounterBatch) BoneHops(n int) {
	if n > 0 {
		b.boneHops += uint64(n)
	}
}

// Reset zeroes the accumulator for reuse, keeping the ingress slice's
// capacity.
func (b *CounterBatch) Reset() {
	b.ingress = b.ingress[:0]
	*b = CounterBatch{ingress: b.ingress}
}

// FlushTo folds the accumulated tallies into c: one striped add per
// non-zero counter. After FlushTo, c's Snapshot reflects the batch
// exactly as if every packet had counted through c directly.
func (b *CounterBatch) FlushTo(c *Counters) {
	m := c.mask()
	if b.sends > 0 {
		c.sends.add(m, b.sends)
	}
	if b.deliveries > 0 {
		c.deliveries.add(m, b.deliveries)
	}
	if b.redirects > 0 {
		c.redirects.add(m, b.redirects)
	}
	if b.redirectHits > 0 {
		c.redirectHits.add(m, b.redirectHits)
	}
	if b.encaps > 0 {
		c.encaps.add(m, b.encaps)
	}
	if b.decaps > 0 {
		c.decaps.add(m, b.decaps)
	}
	if b.boneHops > 0 {
		c.boneHops.add(m, b.boneHops)
	}
	if b.flowHits > 0 {
		c.flowHits.add(m, b.flowHits)
	}
	if b.flowMisses > 0 {
		c.flowMisses.add(m, b.flowMisses)
	}
	if b.payloadBytes > 0 {
		c.payloadBytes.add(m, b.payloadBytes)
	}
	if b.batchFlows > 0 {
		c.batchFlows.add(m, b.batchFlows)
	}
	if b.batchPackets > 0 {
		c.batchPackets.add(m, b.batchPackets)
	}
	if b.fallbackSends > 0 {
		c.fallbackSends.add(m, b.fallbackSends)
	}
	if b.fallbackRescues > 0 {
		c.fallbackRescues.add(m, b.fallbackRescues)
	}
	if b.fallbackProbes > 0 {
		c.fallbackProbes.add(m, b.fallbackProbes)
	}
	if b.healthSuspect > 0 {
		c.healthSuspect.add(m, b.healthSuspect)
	}
	if b.healthFallback > 0 {
		c.healthFallback.add(m, b.healthFallback)
	}
	if b.healthProbation > 0 {
		c.healthProbation.add(m, b.healthProbation)
	}
	if b.healthRecovered > 0 {
		c.healthRecovered.add(m, b.healthRecovered)
	}
	for r := DropNotDeployed; r < numDropReasons; r++ {
		if n := b.drops[r]; n > 0 {
			c.drops[r].add(m, n)
		}
	}
	for _, d := range b.ingress {
		c.ingressN(d.as, d.n, m)
	}
}

// ingressN adds n to the per-AS ingress tally in one striped add.
func (c *Counters) ingressN(as topology.ASN, n uint64, m uint32) {
	c.ingressMu.RLock()
	v := c.ingressByAS[as]
	c.ingressMu.RUnlock()
	if v == nil {
		c.ingressMu.Lock()
		if c.ingressByAS == nil {
			c.ingressByAS = map[topology.ASN]*striped{}
		}
		if v = c.ingressByAS[as]; v == nil {
			v = new(striped)
			c.ingressByAS[as] = v
		}
		c.ingressMu.Unlock()
	}
	v.add(m, n)
}

// BulkTracer is an optional Tracer extension: sinks that can ingest a
// whole batch of events under one synchronization point implement it,
// and EventBuffer.Flush uses it instead of per-event Event calls. The
// method is named EventBatch (not Events) because Recorder already uses
// Events as its accessor.
type BulkTracer interface {
	// EventBatch receives a batch of events in emission order. The slice
	// is only valid for the duration of the call; implementations must
	// copy what they keep.
	EventBatch([]Event)
}

// EventBatch implements BulkTracer: the whole batch is appended under a
// single lock acquisition.
func (r *Recorder) EventBatch(events []Event) {
	r.mu.Lock()
	r.events = append(r.events, events...)
	r.mu.Unlock()
}

// EventBuffer is a Tracer that buffers events in memory for a later
// single-sink Flush. The batched delivery path points the tunnel
// endpoints and its own emissions at one EventBuffer so a traced burst
// costs one sink synchronization per batch, not one per event. Not safe
// for concurrent use; each batch owns its own.
type EventBuffer struct {
	buf []Event
}

// Event implements Tracer by buffering the event.
func (eb *EventBuffer) Event(e Event) { eb.buf = append(eb.buf, e) }

// Len reports the number of buffered events.
func (eb *EventBuffer) Len() int { return len(eb.buf) }

// Flush hands the buffered events to sink in emission order and empties
// the buffer (keeping its capacity). Sinks implementing BulkTracer
// receive the whole batch in one EventBatch call; other sinks get the
// events one by one. A nil sink just discards the buffer.
func (eb *EventBuffer) Flush(sink Tracer) {
	if sink != nil && len(eb.buf) > 0 {
		if bulk, ok := sink.(BulkTracer); ok {
			bulk.EventBatch(eb.buf)
		} else {
			for _, e := range eb.buf {
				sink.Event(e)
			}
		}
	}
	eb.buf = eb.buf[:0]
}
