// Package trace is the observability substrate of the evolvable
// architecture: per-delivery span events and evolution-wide counters for
// the paths the paper's whole argument is about — which anycast ingress a
// client lands on (§3.1), how many vN-Bone hops a delivery rides (§3.3),
// and where it exits back into IPv(N-1) (§3.3.2). The delivery core emits
// an Event at every decision point of a Send; a Tracer receives them.
//
// The default tracer is nil (no tracing): every emission site is guarded
// by a nil check, so an untraced delivery pays nothing beyond a handful
// of atomic counter increments. Event is a plain value struct whose
// Detail strings are always pre-existing constants, so emitting into a
// Recorder costs one slice append and no per-field allocation.
//
// Counters are always on: a Counters value embedded in the delivery core
// tallies sends, deliveries, drops by reason (see DropReason for the
// taxonomy), redirect-cache hits and per-AS ingress load with atomics,
// and Snapshot returns a consistent-enough copy for live introspection
// (each counter is read atomically; the set is not a global atomic
// snapshot, so totals may be momentarily skewed by in-flight deliveries —
// monotonicity per counter is guaranteed).
//
// See OBSERVABILITY.md for the counter semantics and a worked example of
// reading a path trace.
package trace

import (
	"fmt"
	"strings"
	"sync"

	"github.com/evolvable-net/evolve/internal/addr"
	"github.com/evolvable-net/evolve/internal/topology"
)

// Kind identifies a span event within one delivery.
type Kind uint8

const (
	// KindSend opens a delivery span at the source host.
	KindSend Kind = iota
	// KindRedirect is the anycast redirect decision: the chosen ingress
	// router (Router), its domain (AS) and the redirection cost.
	KindRedirect
	// KindBoneHop is one vN-Bone virtual hop: Router is the member
	// reached, Cost the virtual-link cost from the previous member.
	KindBoneHop
	// KindBoneLink reports a virtual link established during vN-Bone
	// construction (emitted by vnbone.Build, not by deliveries).
	KindBoneLink
	// KindEgress is the egress decision: Router is the member where the
	// packet leaves the vN-Bone, Detail classifies how it was chosen
	// (native / registered /128 / an egress policy name).
	KindEgress
	// KindEncap is one tunnel encapsulation (Src/Dst are the outer
	// underlay endpoints).
	KindEncap
	// KindDecap is one tunnel decapsulation.
	KindDecap
	// KindDeliver closes a successful delivery span.
	KindDeliver
	// KindDrop closes a failed delivery span; Reason says why.
	KindDrop
	// KindFallback marks a delivery that rode the IPv(N-1) baseline path
	// instead of the vN-Bone: Detail classifies the trigger
	// (DetailFallbackState for a flow already in fallback,
	// DetailFallbackRescue for an in-line rescue of a failed vN attempt,
	// DetailFallbackErrEpoch for an error-epoch rescue), and Reason carries
	// the vN failure that triggered a rescue (DropNone for state sends).
	KindFallback
	// KindHealth marks a flow-health state transition observed on the
	// send path; Detail names the state entered (DetailHealthSuspect,
	// DetailHealthFallback, DetailHealthProbation, DetailHealthRecovered).
	KindHealth
)

// String names the event kind the way formatted traces print it.
func (k Kind) String() string {
	switch k {
	case KindSend:
		return "send"
	case KindRedirect:
		return "redirect"
	case KindBoneHop:
		return "bone-hop"
	case KindBoneLink:
		return "bone-link"
	case KindEgress:
		return "egress"
	case KindEncap:
		return "encap"
	case KindDecap:
		return "decap"
	case KindDeliver:
		return "deliver"
	case KindDrop:
		return "drop"
	case KindFallback:
		return "fallback"
	case KindHealth:
		return "health"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Egress-decision Detail labels (KindEgress). Policy-based decisions use
// the bgpvn.EgressPolicy String() constants instead.
const (
	// EgressNative: the destination is natively addressed in a
	// participant domain; BGPvN routed to its advertised prefix.
	EgressNative = "native"
	// EgressRegistered: the destination is self-addressed but registered
	// a /128 via the §3.3.2 anycast advertisement; native routing won.
	EgressRegistered = "registered-/128"
)

// Fallback and health Detail labels (KindFallback, KindHealth). Emitters
// must use these constants so tracing never allocates.
const (
	// DetailFallbackState: the flow was already in the fallback state, so
	// the send skipped the vN path entirely.
	DetailFallbackState = "fallback-state"
	// DetailFallbackRescue: the vN attempt failed and the delivery was
	// rescued in-line over the IPv(N-1) baseline path.
	DetailFallbackRescue = "fallback-rescue"
	// DetailFallbackErrEpoch: the routing state was an error epoch
	// (failed rebuild or undeployment) and the delivery rode the baseline.
	DetailFallbackErrEpoch = "fallback-error-epoch"
	// DetailHealthSuspect: the flow entered the suspect state.
	DetailHealthSuspect = "health-suspect"
	// DetailHealthFallback: the flow entered the fallback state.
	DetailHealthFallback = "health-fallback"
	// DetailHealthProbation: a fallback probe succeeded and the flow
	// entered probation.
	DetailHealthProbation = "health-probation"
	// DetailHealthRecovered: the flow returned to the healthy state.
	DetailHealthRecovered = "health-recovered"
)

// Event is one span event of one delivery. It is a value type: emit it
// by value, never retain pointers into it.
type Event struct {
	// Kind says what happened.
	Kind Kind
	// Seq is the delivery's trace tag (the per-Evolution send sequence
	// number stamped into the IPvN header options); all events of one
	// delivery share it.
	Seq uint32
	// Router is the router at which the event occurred (-1 when the
	// event has no router, e.g. host-side encapsulation).
	Router topology.RouterID
	// AS is Router's domain (0 when unknown).
	AS topology.ASN
	// Cost is the event's cost contribution (redirect cost, virtual-hop
	// cost, tail cost on deliver).
	Cost int64
	// Src and Dst are the outer underlay endpoints of encap/decap
	// events.
	Src, Dst addr.V4
	// Reason is set on KindDrop.
	Reason DropReason
	// Detail is a static classification label (egress mode, link kind).
	// Emitters must only use constants or pre-existing strings here so
	// tracing never allocates per event.
	Detail string
}

// String renders one event as a single trace line.
func (e Event) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s", e.Kind)
	if e.Router >= 0 {
		fmt.Fprintf(&b, " router=%d", e.Router)
	}
	if e.AS != 0 {
		fmt.Fprintf(&b, " as=%d", e.AS)
	}
	if e.Cost != 0 {
		fmt.Fprintf(&b, " cost=%d", e.Cost)
	}
	if e.Kind == KindEncap || e.Kind == KindDecap {
		fmt.Fprintf(&b, " outer=%s→%s", e.Src, e.Dst)
	}
	if e.Reason != DropNone {
		fmt.Fprintf(&b, " reason=%s", e.Reason)
	}
	if e.Detail != "" {
		fmt.Fprintf(&b, " (%s)", e.Detail)
	}
	return b.String()
}

// Tracer receives the span events of deliveries. Implementations must be
// safe for concurrent use when shared across concurrent Sends (the
// per-delivery Recorder used with SendTraced sees only one delivery).
type Tracer interface {
	Event(Event)
}

// Recorder is a Tracer that stores every event it receives, in order.
// It is safe for concurrent use.
type Recorder struct {
	mu     sync.Mutex
	events []Event
}

// NewRecorder returns an empty Recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Event implements Tracer.
func (r *Recorder) Event(e Event) {
	r.mu.Lock()
	r.events = append(r.events, e)
	r.mu.Unlock()
}

// Events returns a copy of the recorded events.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Event(nil), r.events...)
}

// Reset discards the recorded events.
func (r *Recorder) Reset() {
	r.mu.Lock()
	r.events = r.events[:0]
	r.mu.Unlock()
}

// Format renders a recorded event sequence as a numbered per-hop path
// trace. name resolves router ids to display names (nil falls back to
// numeric ids).
func Format(events []Event, name func(topology.RouterID) string) string {
	if name == nil {
		name = func(id topology.RouterID) string { return fmt.Sprintf("router-%d", id) }
	}
	var b strings.Builder
	for i, e := range events {
		fmt.Fprintf(&b, "  %2d  %-8s", i, e.Kind)
		if e.Router >= 0 {
			fmt.Fprintf(&b, " %s", name(e.Router))
		}
		if e.AS != 0 {
			fmt.Fprintf(&b, " (AS%d)", e.AS)
		}
		if e.Cost != 0 {
			fmt.Fprintf(&b, " cost=%d", e.Cost)
		}
		if e.Kind == KindEncap || e.Kind == KindDecap {
			fmt.Fprintf(&b, " outer %s → %s", e.Src, e.Dst)
		}
		if e.Reason != DropNone {
			fmt.Fprintf(&b, " reason=%s", e.Reason)
		}
		if e.Detail != "" {
			fmt.Fprintf(&b, " [%s]", e.Detail)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
