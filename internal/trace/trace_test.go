package trace

import (
	"strings"
	"sync"
	"testing"

	"github.com/evolvable-net/evolve/internal/topology"
)

// TestKindStrings pins every Kind to a stable label (the labels appear
// verbatim in path traces quoted by OBSERVABILITY.md).
func TestKindStrings(t *testing.T) {
	want := map[Kind]string{
		KindSend:     "send",
		KindRedirect: "redirect",
		KindBoneHop:  "bone-hop",
		KindBoneLink: "bone-link",
		KindEgress:   "egress",
		KindEncap:    "encap",
		KindDecap:    "decap",
		KindDeliver:  "deliver",
		KindDrop:     "drop",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), s)
		}
	}
	if got := Kind(200).String(); !strings.Contains(got, "200") {
		t.Errorf("unknown kind rendered %q", got)
	}
}

// TestDropReasonStrings checks every countable reason has a real label
// and DropReasons enumerates them all exactly once.
func TestDropReasonStrings(t *testing.T) {
	reasons := DropReasons()
	if len(reasons) != int(numDropReasons)-1 {
		t.Fatalf("DropReasons() lists %d reasons, want %d", len(reasons), numDropReasons-1)
	}
	seen := map[string]bool{}
	for _, r := range reasons {
		s := r.String()
		if s == "none" || strings.HasPrefix(s, "reason(") {
			t.Errorf("reason %d has no label: %q", r, s)
		}
		if seen[s] {
			t.Errorf("duplicate reason label %q", s)
		}
		seen[s] = true
	}
}

// TestRecorder exercises record/copy/reset semantics.
func TestRecorder(t *testing.T) {
	r := NewRecorder()
	r.Event(Event{Kind: KindSend, Seq: 7})
	r.Event(Event{Kind: KindDeliver, Seq: 7, Cost: 42})
	evs := r.Events()
	if len(evs) != 2 || evs[0].Kind != KindSend || evs[1].Cost != 42 {
		t.Fatalf("events = %+v", evs)
	}
	// The returned slice is a copy: mutating it must not affect the
	// recorder.
	evs[0].Kind = KindDrop
	if r.Events()[0].Kind != KindSend {
		t.Error("Events() aliases internal storage")
	}
	r.Reset()
	if len(r.Events()) != 0 {
		t.Error("Reset did not clear events")
	}
}

// TestRecorderConcurrent hammers one Recorder from many goroutines
// (meaningful under -race via the CI race job's core tests, and the
// plain test still checks nothing is lost).
func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder()
	const writers, each = 16, 100
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				r.Event(Event{Kind: KindBoneHop})
			}
		}()
	}
	wg.Wait()
	if got := len(r.Events()); got != writers*each {
		t.Errorf("recorded %d events, want %d", got, writers*each)
	}
}

// TestCountersSnapshot exercises every counter method and the snapshot
// totals.
func TestCountersSnapshot(t *testing.T) {
	var c Counters
	c.Send()
	c.Send()
	c.Send()
	c.Deliver()
	c.Drop(DropNoIngress)
	c.Drop(DropTail)
	c.Drop(DropNone)        // never counted
	c.Drop(DropReason(200)) // out of range: ignored
	c.Redirect(false)
	c.Redirect(true)
	c.Ingress(topology.ASN(3))
	c.Ingress(topology.ASN(3))
	c.Ingress(topology.ASN(9))
	c.Encap()
	c.Decap()
	c.BoneHops(4)
	c.BoneHops(0) // no-op
	c.BoneRebuild()

	s := c.Snapshot()
	if s.Sends != 3 || s.Deliveries != 1 {
		t.Errorf("sends/deliveries = %d/%d, want 3/1", s.Sends, s.Deliveries)
	}
	if s.Drops != 2 || s.DropsByReason[DropNoIngress] != 1 || s.DropsByReason[DropTail] != 1 {
		t.Errorf("drops = %d %v, want 2 split over no-ingress and tail", s.Drops, s.DropsByReason)
	}
	if len(s.DropsByReason) != 2 {
		t.Errorf("zero-count reasons leaked into the snapshot: %v", s.DropsByReason)
	}
	if s.Redirects != 2 || s.RedirectCacheHits != 1 {
		t.Errorf("redirects = %d hits %d, want 2/1", s.Redirects, s.RedirectCacheHits)
	}
	if s.IngressByAS[3] != 2 || s.IngressByAS[9] != 1 {
		t.Errorf("ingress by AS = %v", s.IngressByAS)
	}
	if s.Encaps != 1 || s.Decaps != 1 || s.BoneHops != 4 || s.BoneRebuilds != 1 {
		t.Errorf("encaps/decaps/hops/rebuilds = %d/%d/%d/%d",
			s.Encaps, s.Decaps, s.BoneHops, s.BoneRebuilds)
	}
}

// TestSnapshotString pins the expvar-style line format overlayd serves.
func TestSnapshotString(t *testing.T) {
	var c Counters
	c.Send()
	c.Deliver()
	c.Drop(DropTail)
	c.Ingress(topology.ASN(2))
	out := c.Snapshot().String()
	for _, line := range []string{
		"sends 1\n", "deliveries 1\n", "drops 1\n", "drops.tail 1\n",
		"redirects 0\n", "redirects.cache_hits 0\n",
		"tunnel.encaps 0\n", "tunnel.decaps 0\n",
		"bone.hops 0\n", "bone.rebuilds 0\n", "ingress.as2 1\n",
	} {
		if !strings.Contains(out, line) {
			t.Errorf("snapshot output missing %q:\n%s", line, out)
		}
	}
}

// TestFormat checks the numbered per-hop rendering, including the nil
// name fallback.
func TestFormat(t *testing.T) {
	evs := []Event{
		{Kind: KindSend, Router: 4, AS: 1},
		{Kind: KindEncap, Router: -1, Src: 258, Dst: 513},
		{Kind: KindBoneHop, Router: 6, AS: 2, Cost: 9},
		{Kind: KindEgress, Router: 6, AS: 2, Detail: EgressNative},
		{Kind: KindDrop, Router: -1, Reason: DropTail},
	}
	out := Format(evs, func(id topology.RouterID) string { return "R" })
	for _, want := range []string{
		"0  send", "R (AS1)", "outer ", "bone-hop R (AS2) cost=9",
		"[native]", "reason=tail",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted trace missing %q:\n%s", want, out)
		}
	}
	if got := Format(evs[:1], nil); !strings.Contains(got, "router-4") {
		t.Errorf("nil name fallback produced %q", got)
	}
}

func TestSnapshotSub(t *testing.T) {
	var c Counters
	c.Send()
	c.Deliver()
	c.Redirect(false)
	c.Ingress(7)
	prev := c.Snapshot()

	c.Send()
	c.Drop(DropTail)
	c.Redirect(true)
	c.Ingress(7)
	c.Ingress(9)
	c.Encap()
	c.BoneHops(3)
	cur := c.Snapshot()

	d := cur.Sub(prev)
	if d.Sends != 1 || d.Deliveries != 0 || d.Drops != 1 {
		t.Errorf("delta sends/deliveries/drops = %d/%d/%d", d.Sends, d.Deliveries, d.Drops)
	}
	if d.DropsByReason[DropTail] != 1 {
		t.Errorf("delta drops.tail = %d", d.DropsByReason[DropTail])
	}
	if d.Redirects != 1 || d.RedirectCacheHits != 1 {
		t.Errorf("delta redirects = %d hits %d", d.Redirects, d.RedirectCacheHits)
	}
	if d.Encaps != 1 || d.BoneHops != 3 {
		t.Errorf("delta encaps/bonehops = %d/%d", d.Encaps, d.BoneHops)
	}
	if d.IngressByAS[7] != 1 || d.IngressByAS[9] != 1 {
		t.Errorf("delta ingress = %v", d.IngressByAS)
	}
	// Zero-delta map entries are omitted, not emitted as zeros.
	if _, ok := d.DropsByReason[DropNoIngress]; ok {
		t.Error("zero delta present in DropsByReason")
	}

	// Subtracting identical snapshots yields all-zero deltas.
	z := cur.Sub(cur)
	if z.Sends != 0 || z.Drops != 0 || len(z.IngressByAS) != 0 || len(z.DropsByReason) != 0 {
		t.Errorf("self-delta not zero: %+v", z)
	}
}

func TestSnapshotSubPanicsOnRegression(t *testing.T) {
	var c Counters
	c.Send()
	newer := c.Snapshot()
	c.Send()
	older := c.Snapshot()
	defer func() {
		if recover() == nil {
			t.Error("Sub of swapped snapshots did not panic")
		}
	}()
	_ = newer.Sub(older)
}
