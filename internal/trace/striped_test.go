package trace

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestStripedCountersExact verifies that striping never loses or invents
// counts: 64 goroutines hammer every hot-path counter concurrently and
// the final Snapshot must equal the exact arithmetic total.
func TestStripedCountersExact(t *testing.T) {
	const (
		senders = 64
		perG    = 2000
	)
	var c Counters
	var wg sync.WaitGroup
	for g := 0; g < senders; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				c.Send()
				c.Deliver()
				c.Redirect(i%2 == 0)
				c.Encap()
				c.Decap()
				c.BoneHops(3)
				c.FlowHit()
				c.FlowMiss()
				c.PayloadBytes(10)
				c.Drop(DropTail)
				c.Ingress(7)
			}
		}()
	}
	wg.Wait()

	s := c.Snapshot()
	total := uint64(senders * perG)
	checks := []struct {
		name string
		got  uint64
		want uint64
	}{
		{"sends", s.Sends, total},
		{"deliveries", s.Deliveries, total},
		{"redirects", s.Redirects, total},
		{"redirect hits", s.RedirectCacheHits, total / 2},
		{"encaps", s.Encaps, total},
		{"decaps", s.Decaps, total},
		{"bone hops", s.BoneHops, 3 * total},
		{"flow hits", s.DeliveryFlowHits, total},
		{"flow misses", s.DeliveryFlowMisses, total},
		{"payload bytes", s.DeliveryPayloadBytes, 10 * total},
		{"drops[tail]", s.DropsByReason[DropTail], total},
		{"ingress[7]", s.IngressByAS[7], total},
	}
	for _, ck := range checks {
		if ck.got != ck.want {
			t.Errorf("%s = %d, want %d", ck.name, ck.got, ck.want)
		}
	}
}

// TestStripedCountersMonotonicUnderLoad is the 64-sender monotonicity
// guarantee: while senders increment concurrently, a poller taking
// sequential Snapshots must never observe any counter decrease, even
// though a Snapshot is not a globally atomic read of all stripes. Each
// stripe is individually monotonic and stripes are loaded with seqcst
// atomics, so a later sum can never be smaller than an earlier one.
// Meaningful under -race.
func TestStripedCountersMonotonicUnderLoad(t *testing.T) {
	const senders = 64
	var c Counters
	var stop atomic.Bool
	var wg sync.WaitGroup
	for g := 0; g < senders; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				c.Send()
				c.Deliver()
				c.Redirect(true)
				c.BoneHops(2)
				c.PayloadBytes(4)
				c.Drop(DropRelay)
			}
		}()
	}

	var prev Snapshot
	for i := 0; i < 500; i++ {
		s := c.Snapshot()
		if s.Sends < prev.Sends ||
			s.Deliveries < prev.Deliveries ||
			s.Redirects < prev.Redirects ||
			s.RedirectCacheHits < prev.RedirectCacheHits ||
			s.BoneHops < prev.BoneHops ||
			s.DeliveryPayloadBytes < prev.DeliveryPayloadBytes ||
			s.DropsByReason[DropRelay] < prev.DropsByReason[DropRelay] {
			t.Fatalf("snapshot %d went backwards: %+v -> %+v", i, prev, s)
		}
		prev = s
	}
	stop.Store(true)
	wg.Wait()

	final := c.Snapshot()
	if final.Sends < prev.Sends {
		t.Fatalf("final snapshot below last polled: %d < %d", final.Sends, prev.Sends)
	}
	if final.Sends != final.Deliveries {
		t.Fatalf("sends %d != deliveries %d after quiescence", final.Sends, final.Deliveries)
	}
}

// TestSetStripesAblation pins the SetStripes contract: stripe counts are
// clamped to [1,16] and rounded down to powers of two, SetStripes(1)
// behaves exactly like a single global atomic (every increment lands on
// stripe zero), and counts recorded under one configuration survive a
// reconfiguration because load() always sums every stripe.
func TestSetStripesAblation(t *testing.T) {
	var c Counters
	if got := c.Stripes(); got != defaultStripes {
		t.Fatalf("default Stripes() = %d, want %d", got, defaultStripes)
	}
	for _, tc := range []struct{ in, want int }{
		{-3, 1}, {0, 1}, {1, 1}, {2, 2}, {3, 2}, {5, 4}, {8, 8}, {9, 8}, {16, 16}, {100, 16},
	} {
		c.SetStripes(tc.in)
		if got := c.Stripes(); got != tc.want {
			t.Errorf("SetStripes(%d): Stripes() = %d, want %d", tc.in, got, tc.want)
		}
	}

	// Single-stripe mode must place everything on stripe zero.
	c.SetStripes(1)
	for i := 0; i < 100; i++ {
		c.Send()
	}
	if got := c.sends.s[0].v.Load(); got != 100 {
		t.Fatalf("with 1 stripe, stripe[0] = %d, want 100", got)
	}

	// Widening back to 16 must not lose the 100 already recorded.
	c.SetStripes(16)
	for i := 0; i < 100; i++ {
		c.Send()
	}
	if got := c.Snapshot().Sends; got != 200 {
		t.Fatalf("after restripe, sends = %d, want 200", got)
	}
}
