package packet

import (
	"encoding/binary"
	"fmt"

	"github.com/evolvable-net/evolve/internal/addr"
)

// Protocol numbers carried in the V4 header. ProtoVNEncap mirrors the real
// protocol 41 used for IPv6-in-IPv4.
type Protocol uint8

const (
	// ProtoPayload marks an ordinary data packet with no further headers.
	ProtoPayload Protocol = 0
	// ProtoVNEncap marks an encapsulated IPvN packet: the V4 payload begins
	// with a VNHeader. This is how IPvN packets ride the IPv(N-1) internet
	// to an anycast-addressed IPvN router and between vN-Bone tunnels.
	ProtoVNEncap Protocol = 41
	// ProtoRouting marks a routing-protocol control message.
	ProtoRouting Protocol = 89
	// ProtoPing marks the diagnostic echo used by examples and the live
	// overlay prototype.
	ProtoPing Protocol = 1
	// ProtoProbe is a liveness keepalive between live overlay peers: the
	// payload is an opaque nonce the receiver echoes back. Rides the RFC
	// 3692 experimentation number.
	ProtoProbe Protocol = 253
	// ProtoProbeAck answers a ProtoProbe, echoing its nonce.
	ProtoProbeAck Protocol = 254
)

func (p Protocol) String() string {
	switch p {
	case ProtoPayload:
		return "payload"
	case ProtoVNEncap:
		return "vn-encap"
	case ProtoRouting:
		return "routing"
	case ProtoPing:
		return "ping"
	case ProtoProbe:
		return "probe"
	case ProtoProbeAck:
		return "probe-ack"
	default:
		return fmt.Sprintf("proto(%d)", uint8(p))
	}
}

// V4HeaderLen is the fixed underlay header size in bytes.
const V4HeaderLen = 16

// DefaultTTL is the initial hop limit for underlay packets.
const DefaultTTL = 64

// V4Header is the underlay IPv(N-1) header. Wire layout, big-endian:
//
//	[0]     version (always 4)
//	[1]     protocol
//	[2:4]   total length (header + payload)
//	[4]     TTL
//	[5]     flags (reserved, zero)
//	[6:8]   header checksum (computed with this field zeroed)
//	[8:12]  source address
//	[12:16] destination address
type V4Header struct {
	Proto Protocol
	TTL   uint8
	Src   addr.V4
	Dst   addr.V4
}

// SerializeTo prepends the header, treating the buffer's current contents
// as the payload, and fills in length and checksum.
func (h *V4Header) SerializeTo(b *SerializeBuffer) error {
	payloadLen := b.Len()
	total := V4HeaderLen + payloadLen
	if total > 0xFFFF {
		return fmt.Errorf("packet: v4 total length %d overflows", total)
	}
	w := b.PrependBytes(V4HeaderLen)
	w[0] = 4
	w[1] = byte(h.Proto)
	binary.BigEndian.PutUint16(w[2:4], uint16(total))
	ttl := h.TTL
	if ttl == 0 {
		ttl = DefaultTTL
	}
	w[4] = ttl
	w[5] = 0
	w[6], w[7] = 0, 0
	binary.BigEndian.PutUint32(w[8:12], uint32(h.Src))
	binary.BigEndian.PutUint32(w[12:16], uint32(h.Dst))
	binary.BigEndian.PutUint16(w[6:8], Checksum(w))
	return nil
}

// DecodeV4 parses an underlay header, verifying version, length and
// checksum. It returns the decoded header and the payload bytes.
func DecodeV4(data []byte) (V4Header, []byte, error) {
	if len(data) < V4HeaderLen {
		return V4Header{}, nil, ErrTruncated
	}
	if data[0] != 4 {
		return V4Header{}, nil, fmt.Errorf("packet: bad v4 version %d", data[0])
	}
	if data[5] != 0 {
		return V4Header{}, nil, fmt.Errorf("packet: reserved flags byte %#02x must be zero", data[5])
	}
	total := int(binary.BigEndian.Uint16(data[2:4]))
	if total < V4HeaderLen || total > len(data) {
		return V4Header{}, nil, fmt.Errorf("packet: bad v4 total length %d (have %d)", total, len(data))
	}
	var hdr [V4HeaderLen]byte
	copy(hdr[:], data[:V4HeaderLen])
	wireSum := binary.BigEndian.Uint16(hdr[6:8])
	hdr[6], hdr[7] = 0, 0
	if got := Checksum(hdr[:]); got != wireSum {
		return V4Header{}, nil, fmt.Errorf("packet: v4 checksum mismatch %04x != %04x", got, wireSum)
	}
	h := V4Header{
		Proto: Protocol(data[1]),
		TTL:   data[4],
		Src:   addr.V4(binary.BigEndian.Uint32(data[8:12])),
		Dst:   addr.V4(binary.BigEndian.Uint32(data[12:16])),
	}
	return h, data[V4HeaderLen:total], nil
}

// DecrementTTL rewrites the TTL and checksum of a serialized V4 packet in
// place, as a forwarding router would. It reports false when the TTL would
// reach zero, in which case the packet must be dropped.
func DecrementTTL(wire []byte) bool {
	if len(wire) < V4HeaderLen || wire[4] <= 1 {
		return false
	}
	wire[4]--
	wire[6], wire[7] = 0, 0
	sum := Checksum(wire[:V4HeaderLen])
	binary.BigEndian.PutUint16(wire[6:8], sum)
	return true
}
