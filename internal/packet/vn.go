package packet

import (
	"encoding/binary"
	"fmt"

	"github.com/evolvable-net/evolve/internal/addr"
)

// VNHeaderLen is the fixed portion of the IPvN header, before options.
const VNHeaderLen = 40

// DefaultHopLimit is the initial IPvN hop limit.
const DefaultHopLimit = 64

// Option types. Options are TLVs: one type byte, one length byte, value.
const (
	// OptUnderlayDst carries the destination host's IPv(N-1) address so
	// that IPvN egress routers can deliver to self-addressed destinations
	// in non-participant domains (§3.3.2: "might be carried in a separate
	// option field in the IPvN header").
	OptUnderlayDst uint8 = 1
	// OptTraceTag is a 4-byte experiment tag used by the harness to follow
	// individual packets through the simulator.
	OptTraceTag uint8 = 2
	// OptDeliverySeq is a 4-byte per-sender sequence number marking a
	// packet as ack-requested: the receiver deduplicates on (source,
	// sequence) and answers with an OptDeliveryAck packet, enabling the
	// live overlay's retransmission mode.
	OptDeliverySeq uint8 = 3
	// OptDeliveryAck acknowledges an OptDeliverySeq packet; the 4-byte
	// value is the acknowledged sequence number. Ack packets carry no
	// payload and are consumed by the sender's reliability layer.
	OptDeliveryAck uint8 = 4
	// OptFallback marks a delivery that rode the IPv(N-1) baseline path
	// instead of the vN-Bone (the graceful-degradation layer of
	// internal/core). The 1-byte value classifies why: FallbackMarkState
	// or FallbackMarkRescue.
	OptFallback uint8 = 5
)

// OptFallback marker values.
const (
	// FallbackMarkState: the flow was in the fallback state and the send
	// skipped the vN path deliberately.
	FallbackMarkState uint8 = 1
	// FallbackMarkRescue: the vN attempt failed and the delivery was
	// rescued in-line over the baseline path.
	FallbackMarkRescue uint8 = 2
)

// Option is a decoded IPvN header option.
type Option struct {
	Type  uint8
	Value []byte
}

// VNHeader is the next-generation header. The concrete IPvN generation is
// named by Version (the paper's running example uses 8). Wire layout,
// big-endian:
//
//	[0]     version (N)
//	[1]     hop limit
//	[2:4]   payload length (bytes after header+options)
//	[4:6]   options length (bytes)
//	[6:8]   reserved
//	[8:24]  source IPvN address
//	[24:40] destination IPvN address
//	[40:..] options (TLVs)
type VNHeader struct {
	Version  uint8
	HopLimit uint8
	Src      addr.VN
	Dst      addr.VN
	Options  []Option
}

func putVN(w []byte, v addr.VN) {
	binary.BigEndian.PutUint64(w[0:8], v.Hi)
	binary.BigEndian.PutUint64(w[8:16], v.Lo)
}

func getVN(r []byte) addr.VN {
	return addr.VN{
		Hi: binary.BigEndian.Uint64(r[0:8]),
		Lo: binary.BigEndian.Uint64(r[8:16]),
	}
}

// WithUnderlayDst returns a copy of the header with the OptUnderlayDst
// option set (replacing any existing one).
func (h VNHeader) WithUnderlayDst(u addr.V4) VNHeader {
	opts := make([]Option, 0, len(h.Options)+1)
	for _, o := range h.Options {
		if o.Type != OptUnderlayDst {
			opts = append(opts, o)
		}
	}
	val := make([]byte, 4)
	binary.BigEndian.PutUint32(val, uint32(u))
	h.Options = append(opts, Option{Type: OptUnderlayDst, Value: val})
	return h
}

// UnderlayDst extracts the OptUnderlayDst option if present; otherwise,
// for self-addressed destinations, it falls back to the address embedded in
// the destination itself.
func (h VNHeader) UnderlayDst() (addr.V4, bool) {
	for _, o := range h.Options {
		if o.Type == OptUnderlayDst && len(o.Value) == 4 {
			return addr.V4(binary.BigEndian.Uint32(o.Value)), true
		}
	}
	return h.Dst.Underlay()
}

// FallbackMark extracts the OptFallback option if present: the marker
// value (FallbackMarkState or FallbackMarkRescue) and whether the packet
// carries the option at all.
func (h VNHeader) FallbackMark() (uint8, bool) {
	for _, o := range h.Options {
		if o.Type == OptFallback && len(o.Value) == 1 {
			return o.Value[0], true
		}
	}
	return 0, false
}

// SerializeTo prepends the header (with options), treating the buffer's
// contents as payload.
func (h *VNHeader) SerializeTo(b *SerializeBuffer) error {
	payloadLen := b.Len()
	if payloadLen > 0xFFFF {
		return fmt.Errorf("packet: vn payload length %d overflows", payloadLen)
	}
	optLen := 0
	for _, o := range h.Options {
		if len(o.Value) > 0xFF {
			return fmt.Errorf("packet: vn option %d too long (%d)", o.Type, len(o.Value))
		}
		optLen += 2 + len(o.Value)
	}
	if optLen > 0xFFFF {
		return fmt.Errorf("packet: vn options length %d overflows", optLen)
	}
	w := b.PrependBytes(VNHeaderLen + optLen)
	w[0] = h.Version
	hop := h.HopLimit
	if hop == 0 {
		hop = DefaultHopLimit
	}
	w[1] = hop
	binary.BigEndian.PutUint16(w[2:4], uint16(payloadLen))
	binary.BigEndian.PutUint16(w[4:6], uint16(optLen))
	w[6], w[7] = 0, 0
	putVN(w[8:24], h.Src)
	putVN(w[24:40], h.Dst)
	off := VNHeaderLen
	for _, o := range h.Options {
		w[off] = o.Type
		w[off+1] = byte(len(o.Value))
		copy(w[off+2:], o.Value)
		off += 2 + len(o.Value)
	}
	return nil
}

// DecodeVN parses an IPvN header and returns it plus the payload.
func DecodeVN(data []byte) (VNHeader, []byte, error) {
	if len(data) < VNHeaderLen {
		return VNHeader{}, nil, ErrTruncated
	}
	payloadLen := int(binary.BigEndian.Uint16(data[2:4]))
	optLen := int(binary.BigEndian.Uint16(data[4:6]))
	total := VNHeaderLen + optLen + payloadLen
	if total > len(data) {
		return VNHeader{}, nil, ErrTruncated
	}
	h := VNHeader{
		Version:  data[0],
		HopLimit: data[1],
		Src:      getVN(data[8:24]),
		Dst:      getVN(data[24:40]),
	}
	opts := data[VNHeaderLen : VNHeaderLen+optLen]
	for len(opts) > 0 {
		if len(opts) < 2 {
			return VNHeader{}, nil, fmt.Errorf("packet: vn option truncated")
		}
		vlen := int(opts[1])
		if len(opts) < 2+vlen {
			return VNHeader{}, nil, fmt.Errorf("packet: vn option value truncated")
		}
		h.Options = append(h.Options, Option{
			Type:  opts[0],
			Value: append([]byte(nil), opts[2:2+vlen]...),
		})
		opts = opts[2+vlen:]
	}
	return h, data[VNHeaderLen+optLen : total], nil
}

// DecodeVNShared parses an IPvN header like DecodeVN but without copying:
// option values alias the wire bytes, and the Options slice is built by
// appending to scratch (pass a reused scratch[:0] to avoid the slice
// allocation too). The returned header and payload are only valid while
// the caller holds data unmodified — callers that retain either past the
// wire buffer's lifetime must use DecodeVN.
func DecodeVNShared(data []byte, scratch []Option) (VNHeader, []byte, error) {
	if len(data) < VNHeaderLen {
		return VNHeader{}, nil, ErrTruncated
	}
	payloadLen := int(binary.BigEndian.Uint16(data[2:4]))
	optLen := int(binary.BigEndian.Uint16(data[4:6]))
	total := VNHeaderLen + optLen + payloadLen
	if total > len(data) {
		return VNHeader{}, nil, ErrTruncated
	}
	h := VNHeader{
		Version:  data[0],
		HopLimit: data[1],
		Src:      getVN(data[8:24]),
		Dst:      getVN(data[24:40]),
		Options:  scratch,
	}
	opts := data[VNHeaderLen : VNHeaderLen+optLen]
	for len(opts) > 0 {
		if len(opts) < 2 {
			return VNHeader{}, nil, fmt.Errorf("packet: vn option truncated")
		}
		vlen := int(opts[1])
		if len(opts) < 2+vlen {
			return VNHeader{}, nil, fmt.Errorf("packet: vn option value truncated")
		}
		h.Options = append(h.Options, Option{
			Type:  opts[0],
			Value: opts[2 : 2+vlen : 2+vlen],
		})
		opts = opts[2+vlen:]
	}
	return h, data[VNHeaderLen+optLen : total], nil
}

// DecrementHopLimit rewrites the hop limit of a serialized VN packet in
// place; it reports false when the packet must be dropped.
func DecrementHopLimit(wire []byte) bool {
	if len(wire) < VNHeaderLen || wire[1] <= 1 {
		return false
	}
	wire[1]--
	return true
}

// EncapVN builds the full on-the-wire form of an IPvN packet tunnelled
// inside an underlay packet: V4Header{Proto: ProtoVNEncap}(VNHeader(payload)).
// This is the packet an endhost emits toward the anycast address, and the
// packet vN-Bone tunnels carry between IPvN routers.
func EncapVN(outer V4Header, inner VNHeader, payload []byte) ([]byte, error) {
	outer.Proto = ProtoVNEncap
	b := GetSerializeBuffer()
	defer PutSerializeBuffer(b)
	if err := Serialize(b, payload, &outer, &inner); err != nil {
		return nil, err
	}
	return append([]byte(nil), b.Bytes()...), nil
}

// DecapVN unwraps an encapsulated IPvN packet, returning outer header,
// inner header and innermost payload.
func DecapVN(wire []byte) (V4Header, VNHeader, []byte, error) {
	outer, inner, err := DecodeV4(wire)
	if err != nil {
		return V4Header{}, VNHeader{}, nil, err
	}
	if outer.Proto != ProtoVNEncap {
		return V4Header{}, VNHeader{}, nil, fmt.Errorf("packet: protocol %s is not vn-encap", outer.Proto)
	}
	vn, payload, err := DecodeVN(inner)
	if err != nil {
		return V4Header{}, VNHeader{}, nil, err
	}
	return outer, vn, payload, nil
}

// DecapVNShared is the zero-copy form of DecapVN: the inner header's
// option values and the returned payload alias wire, and the Options
// slice appends to scratch. See DecodeVNShared for the aliasing contract.
func DecapVNShared(wire []byte, scratch []Option) (V4Header, VNHeader, []byte, error) {
	outer, inner, err := DecodeV4(wire)
	if err != nil {
		return V4Header{}, VNHeader{}, nil, err
	}
	if outer.Proto != ProtoVNEncap {
		return V4Header{}, VNHeader{}, nil, fmt.Errorf("packet: protocol %s is not vn-encap", outer.Proto)
	}
	vn, payload, err := DecodeVNShared(inner, scratch)
	if err != nil {
		return V4Header{}, VNHeader{}, nil, err
	}
	return outer, vn, payload, nil
}
