// Package packet defines the wire formats exchanged in the evolvable
// architecture: the fixed underlay IPv(N-1) header ("V4"), the versioned
// next-generation IPvN header ("VN") with its option TLVs, and the
// encapsulation of the latter inside the former — the mechanism by which an
// endhost reaches the IPvN virtual network through an anycast address
// (paper §3.1, §3.4).
//
// Serialization follows the gopacket idiom: layers are serialized in
// reverse order into a SerializeBuffer that supports cheap prepending, so a
// full packet is built as Payload, then VNHeader, then V4Header.
package packet

import (
	"errors"
	"sync"
)

// ErrTruncated is returned when a decode runs out of bytes.
var ErrTruncated = errors.New("packet: truncated")

// bufPool recycles SerializeBuffers across encapsulations so the steady
// state of a busy send path allocates no packet buffers at all.
var bufPool = sync.Pool{New: func() any { return NewSerializeBuffer() }}

// GetSerializeBuffer returns a cleared buffer from the package pool.
// Return it with PutSerializeBuffer when the serialized bytes are no
// longer referenced.
func GetSerializeBuffer() *SerializeBuffer {
	b := bufPool.Get().(*SerializeBuffer)
	b.Clear()
	return b
}

// PutSerializeBuffer recycles a buffer obtained from GetSerializeBuffer.
// The caller must not retain slices returned by Bytes afterwards.
func PutSerializeBuffer(b *SerializeBuffer) {
	if b != nil {
		bufPool.Put(b)
	}
}

// SerializeBuffer builds packets back-to-front inside one reusable
// backing array: the payload is appended after a reserved headroom, then
// each header prepends into the headroom. Clear rewinds to the reserved
// marks without touching the array, so a pooled buffer reaches a steady
// state where serializing a whole packet allocates nothing.
type SerializeBuffer struct {
	buf        []byte
	start, end int
	// head is the headroom Clear reserves for prepends; it adapts upward
	// when a packet's headers outgrow it so the growth never repeats.
	head int
}

// NewSerializeBuffer returns a buffer with room for typical headers and
// payloads.
func NewSerializeBuffer() *SerializeBuffer {
	const room, headroom = 512, 96
	return &SerializeBuffer{buf: make([]byte, room), start: headroom, end: headroom, head: headroom}
}

// Bytes returns the serialized packet so far. The slice is invalidated by
// further Prepend/Append/Clear calls.
func (b *SerializeBuffer) Bytes() []byte { return b.buf[b.start:b.end] }

// Len returns the current packet length.
func (b *SerializeBuffer) Len() int { return b.end - b.start }

// Clear resets the buffer for reuse, keeping the backing array.
func (b *SerializeBuffer) Clear() {
	if b.head > len(b.buf) {
		b.head = len(b.buf)
	}
	b.start, b.end = b.head, b.head
}

// PrependBytes makes room for n bytes at the front and returns the slice to
// fill in. The caller must write every byte: the region is not zeroed.
func (b *SerializeBuffer) PrependBytes(n int) []byte {
	if b.start < n {
		grow := n - b.start
		if grow < len(b.buf) {
			grow = len(b.buf) // at least double
		}
		nb := make([]byte, len(b.buf)+grow)
		copy(nb[b.start+grow:], b.buf[b.start:b.end])
		b.buf = nb
		b.start += grow
		b.end += grow
		b.head += grow
	}
	b.start -= n
	return b.buf[b.start : b.start+n]
}

// AppendBytes makes room for n bytes at the back and returns the slice to
// fill in. The caller must write every byte: the region is not zeroed.
func (b *SerializeBuffer) AppendBytes(n int) []byte {
	if b.end+n > len(b.buf) {
		grow := b.end + n - len(b.buf)
		if grow < len(b.buf) {
			grow = len(b.buf) // at least double
		}
		nb := make([]byte, len(b.buf)+grow)
		copy(nb[:b.end], b.buf[:b.end])
		b.buf = nb
	}
	s := b.buf[b.end : b.end+n : b.end+n]
	b.end += n
	return s
}

// PushPayload appends raw payload bytes.
func (b *SerializeBuffer) PushPayload(p []byte) {
	copy(b.AppendBytes(len(p)), p)
}

// SerializableLayer is implemented by every header that can prepend itself
// onto a buffer whose current contents it treats as its payload.
type SerializableLayer interface {
	SerializeTo(b *SerializeBuffer) error
}

// Serialize clears the buffer and writes payload plus the given layers from
// innermost (last) to outermost (first), mirroring gopacket.SerializeLayers.
func Serialize(b *SerializeBuffer, payload []byte, layers ...SerializableLayer) error {
	b.Clear()
	b.PushPayload(payload)
	for i := len(layers) - 1; i >= 0; i-- {
		if err := layers[i].SerializeTo(b); err != nil {
			return err
		}
	}
	return nil
}

// SerializeVN builds a full vn-encap packet (payload, VN header, V4
// header) without Serialize's variadic interface indirection, so neither
// header escapes to the heap — the zero-alloc form used by pooled send
// paths.
func SerializeVN(b *SerializeBuffer, payload []byte, outer *V4Header, inner *VNHeader) error {
	b.Clear()
	b.PushPayload(payload)
	if err := inner.SerializeTo(b); err != nil {
		return err
	}
	return outer.SerializeTo(b)
}

// Checksum is the RFC 1071 internet checksum used in the V4 header.
func Checksum(data []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(data); i += 2 {
		sum += uint32(data[i])<<8 | uint32(data[i+1])
	}
	if len(data)%2 == 1 {
		sum += uint32(data[len(data)-1]) << 8
	}
	for sum>>16 != 0 {
		sum = sum&0xFFFF + sum>>16
	}
	return ^uint16(sum)
}
