// Package packet defines the wire formats exchanged in the evolvable
// architecture: the fixed underlay IPv(N-1) header ("V4"), the versioned
// next-generation IPvN header ("VN") with its option TLVs, and the
// encapsulation of the latter inside the former — the mechanism by which an
// endhost reaches the IPvN virtual network through an anycast address
// (paper §3.1, §3.4).
//
// Serialization follows the gopacket idiom: layers are serialized in
// reverse order into a SerializeBuffer that supports cheap prepending, so a
// full packet is built as Payload, then VNHeader, then V4Header.
package packet

import "errors"

// ErrTruncated is returned when a decode runs out of bytes.
var ErrTruncated = errors.New("packet: truncated")

// SerializeBuffer builds packets back-to-front. Prepending a header is the
// common case, so bytes grow toward the start of an internal slice.
type SerializeBuffer struct {
	buf   []byte
	start int
}

// NewSerializeBuffer returns a buffer with room for typical headers.
func NewSerializeBuffer() *SerializeBuffer {
	const room = 128
	return &SerializeBuffer{buf: make([]byte, room), start: room}
}

// Bytes returns the serialized packet so far. The slice is invalidated by
// further Prepend/Append/Clear calls.
func (b *SerializeBuffer) Bytes() []byte { return b.buf[b.start:] }

// Len returns the current packet length.
func (b *SerializeBuffer) Len() int { return len(b.buf) - b.start }

// Clear resets the buffer for reuse.
func (b *SerializeBuffer) Clear() { b.start = len(b.buf) }

// PrependBytes makes room for n bytes at the front and returns the slice to
// fill in.
func (b *SerializeBuffer) PrependBytes(n int) []byte {
	if b.start < n {
		grow := n - b.start
		if grow < len(b.buf) {
			grow = len(b.buf) // at least double
		}
		nb := make([]byte, len(b.buf)+grow)
		copy(nb[grow:], b.buf)
		b.buf = nb
		b.start += grow
	}
	b.start -= n
	return b.buf[b.start : b.start+n]
}

// AppendBytes makes room for n bytes at the back and returns the slice to
// fill in.
func (b *SerializeBuffer) AppendBytes(n int) []byte {
	old := len(b.buf)
	b.buf = append(b.buf, make([]byte, n)...)
	return b.buf[old:]
}

// PushPayload appends raw payload bytes.
func (b *SerializeBuffer) PushPayload(p []byte) {
	copy(b.AppendBytes(len(p)), p)
}

// SerializableLayer is implemented by every header that can prepend itself
// onto a buffer whose current contents it treats as its payload.
type SerializableLayer interface {
	SerializeTo(b *SerializeBuffer) error
}

// Serialize clears the buffer and writes payload plus the given layers from
// innermost (last) to outermost (first), mirroring gopacket.SerializeLayers.
func Serialize(b *SerializeBuffer, payload []byte, layers ...SerializableLayer) error {
	b.Clear()
	b.PushPayload(payload)
	for i := len(layers) - 1; i >= 0; i-- {
		if err := layers[i].SerializeTo(b); err != nil {
			return err
		}
	}
	return nil
}

// Checksum is the RFC 1071 internet checksum used in the V4 header.
func Checksum(data []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(data); i += 2 {
		sum += uint32(data[i])<<8 | uint32(data[i+1])
	}
	if len(data)%2 == 1 {
		sum += uint32(data[len(data)-1]) << 8
	}
	for sum>>16 != 0 {
		sum = sum&0xFFFF + sum>>16
	}
	return ^uint16(sum)
}
