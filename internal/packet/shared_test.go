package packet

import (
	"bytes"
	"testing"

	"github.com/evolvable-net/evolve/internal/addr"
)

func buildWire(t *testing.T) []byte {
	t.Helper()
	inner := VNHeader{
		Version: 8,
		Src:     addr.VN{Hi: 1, Lo: 2},
		Dst:     addr.VN{Hi: 3, Lo: 4},
		Options: []Option{
			{Type: OptUnderlayDst, Value: []byte{10, 0, 0, 1}},
			{Type: OptTraceTag, Value: []byte{0xde, 0xad, 0xbe, 0xef}},
		},
	}
	wire, err := EncapVN(V4Header{Src: 0x0a000001, Dst: 0x0a000002}, inner, []byte("payload-bytes"))
	if err != nil {
		t.Fatalf("EncapVN: %v", err)
	}
	return wire
}

// TestDecapVNSharedEquivalence verifies the zero-copy decode returns
// byte-identical headers, options and payload to the copying DecapVN.
func TestDecapVNSharedEquivalence(t *testing.T) {
	wire := buildWire(t)

	o1, i1, p1, err := DecapVN(wire)
	if err != nil {
		t.Fatalf("DecapVN: %v", err)
	}
	scratch := make([]Option, 0, 4)
	o2, i2, p2, err := DecapVNShared(wire, scratch[:0])
	if err != nil {
		t.Fatalf("DecapVNShared: %v", err)
	}

	if o1 != o2 {
		t.Fatalf("outer mismatch: %+v vs %+v", o1, o2)
	}
	if i1.Version != i2.Version || i1.HopLimit != i2.HopLimit || i1.Src != i2.Src || i1.Dst != i2.Dst {
		t.Fatalf("inner fixed-field mismatch: %+v vs %+v", i1, i2)
	}
	if len(i1.Options) != len(i2.Options) {
		t.Fatalf("option count mismatch: %d vs %d", len(i1.Options), len(i2.Options))
	}
	for k := range i1.Options {
		if i1.Options[k].Type != i2.Options[k].Type || !bytes.Equal(i1.Options[k].Value, i2.Options[k].Value) {
			t.Fatalf("option %d mismatch: %+v vs %+v", k, i1.Options[k], i2.Options[k])
		}
	}
	if !bytes.Equal(p1, p2) {
		t.Fatalf("payload mismatch: %q vs %q", p1, p2)
	}

	// The shared form must alias the wire, not copy it.
	if len(p2) > 0 && &p2[0] != &wire[len(wire)-len(p2)] {
		t.Fatal("shared payload does not alias the wire buffer")
	}
}

// TestDecapVNSharedZeroAlloc pins the zero-copy property: with a reused
// scratch slice, decoding allocates nothing.
func TestDecapVNSharedZeroAlloc(t *testing.T) {
	wire := buildWire(t)
	scratch := make([]Option, 0, 8)
	allocs := testing.AllocsPerRun(200, func() {
		_, _, _, err := DecapVNShared(wire, scratch[:0])
		if err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("DecapVNShared allocates %v per run, want 0", allocs)
	}
}

// TestDecapVNSharedTruncation mirrors the copying decoder's error
// behaviour on malformed option regions.
func TestDecapVNSharedTruncation(t *testing.T) {
	wire := buildWire(t)
	for cut := 1; cut < len(wire); cut += 7 {
		_, _, _, errCopy := DecapVN(wire[:cut])
		_, _, _, errShared := DecapVNShared(wire[:cut], nil)
		if (errCopy == nil) != (errShared == nil) {
			t.Fatalf("cut %d: copy err %v, shared err %v", cut, errCopy, errShared)
		}
	}
}
