package packet

import (
	"bytes"
	"testing"
	"testing/quick"

	"github.com/evolvable-net/evolve/internal/addr"
)

func TestV4RoundTrip(t *testing.T) {
	h := V4Header{Proto: ProtoPing, TTL: 17, Src: addr.MustParseV4("10.0.0.1"), Dst: addr.MustParseV4("10.0.0.2")}
	b := NewSerializeBuffer()
	payload := []byte("hello")
	if err := Serialize(b, payload, &h); err != nil {
		t.Fatal(err)
	}
	got, gotPayload, err := DecodeV4(b.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Errorf("header = %+v, want %+v", got, h)
	}
	if !bytes.Equal(gotPayload, payload) {
		t.Errorf("payload = %q", gotPayload)
	}
}

func TestV4DefaultTTL(t *testing.T) {
	h := V4Header{Proto: ProtoPayload, Src: 1, Dst: 2}
	b := NewSerializeBuffer()
	if err := Serialize(b, nil, &h); err != nil {
		t.Fatal(err)
	}
	got, _, err := DecodeV4(b.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if got.TTL != DefaultTTL {
		t.Errorf("TTL = %d, want default %d", got.TTL, DefaultTTL)
	}
}

func TestV4ChecksumDetectsCorruption(t *testing.T) {
	h := V4Header{Proto: ProtoPayload, TTL: 5, Src: 1, Dst: 2}
	b := NewSerializeBuffer()
	if err := Serialize(b, []byte("x"), &h); err != nil {
		t.Fatal(err)
	}
	wire := append([]byte(nil), b.Bytes()...)
	wire[9] ^= 0xFF // flip a source-address byte
	if _, _, err := DecodeV4(wire); err == nil {
		t.Error("corrupted packet decoded without error")
	}
}

func TestV4DecodeErrors(t *testing.T) {
	if _, _, err := DecodeV4(nil); err != ErrTruncated {
		t.Errorf("nil: %v", err)
	}
	if _, _, err := DecodeV4(make([]byte, 8)); err != ErrTruncated {
		t.Errorf("short: %v", err)
	}
	bad := make([]byte, V4HeaderLen)
	bad[0] = 6
	if _, _, err := DecodeV4(bad); err == nil {
		t.Error("wrong version accepted")
	}
}

func TestDecrementTTL(t *testing.T) {
	h := V4Header{Proto: ProtoPayload, TTL: 2, Src: 1, Dst: 2}
	b := NewSerializeBuffer()
	if err := Serialize(b, nil, &h); err != nil {
		t.Fatal(err)
	}
	wire := append([]byte(nil), b.Bytes()...)
	if !DecrementTTL(wire) {
		t.Fatal("first decrement should succeed")
	}
	got, _, err := DecodeV4(wire)
	if err != nil {
		t.Fatalf("checksum not fixed up: %v", err)
	}
	if got.TTL != 1 {
		t.Errorf("TTL = %d", got.TTL)
	}
	if DecrementTTL(wire) {
		t.Error("TTL 1 should not be decrementable")
	}
}

func TestVNRoundTrip(t *testing.T) {
	h := VNHeader{
		Version:  8,
		HopLimit: 9,
		Src:      addr.SelfAddress(addr.MustParseV4("10.1.1.1")),
		Dst:      addr.MustParseVN("00000042:00000000:00000000:00000007"),
	}
	h = h.WithUnderlayDst(addr.MustParseV4("20.2.2.2"))
	b := NewSerializeBuffer()
	payload := []byte("next generation")
	if err := Serialize(b, payload, &h); err != nil {
		t.Fatal(err)
	}
	got, gotPayload, err := DecodeVN(b.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != 8 || got.HopLimit != 9 || got.Src != h.Src || got.Dst != h.Dst {
		t.Errorf("header mismatch: %+v", got)
	}
	if !bytes.Equal(gotPayload, payload) {
		t.Errorf("payload = %q", gotPayload)
	}
	u, ok := got.UnderlayDst()
	if !ok || u != addr.MustParseV4("20.2.2.2") {
		t.Errorf("UnderlayDst = %s, %v", u, ok)
	}
}

func TestVNUnderlayDstFallsBackToSelfAddress(t *testing.T) {
	h := VNHeader{Version: 8, Dst: addr.SelfAddress(addr.MustParseV4("9.9.9.9"))}
	u, ok := h.UnderlayDst()
	if !ok || u != addr.MustParseV4("9.9.9.9") {
		t.Errorf("fallback UnderlayDst = %s, %v", u, ok)
	}
	native := VNHeader{Version: 8, Dst: addr.VN{Hi: 1}}
	if _, ok := native.UnderlayDst(); ok {
		t.Error("native destination without option should have no underlay dst")
	}
}

func TestWithUnderlayDstReplaces(t *testing.T) {
	h := VNHeader{Version: 8}
	h = h.WithUnderlayDst(1)
	h = h.WithUnderlayDst(2)
	n := 0
	for _, o := range h.Options {
		if o.Type == OptUnderlayDst {
			n++
		}
	}
	if n != 1 {
		t.Errorf("got %d OptUnderlayDst options", n)
	}
	u, _ := h.UnderlayDst()
	if u != 2 {
		t.Errorf("UnderlayDst = %v, want 2", u)
	}
}

func TestEncapDecapRoundTrip(t *testing.T) {
	outer := V4Header{Src: addr.MustParseV4("10.0.0.1"), Dst: addr.MustParseV4("240.0.0.1"), TTL: 32}
	inner := VNHeader{Version: 8, Src: addr.SelfAddress(addr.MustParseV4("10.0.0.1")), Dst: addr.VN{Hi: 5, Lo: 6}}
	payload := []byte("tunnelled")
	wire, err := EncapVN(outer, inner, payload)
	if err != nil {
		t.Fatal(err)
	}
	gotOuter, gotInner, gotPayload, err := DecapVN(wire)
	if err != nil {
		t.Fatal(err)
	}
	if gotOuter.Proto != ProtoVNEncap {
		t.Errorf("outer proto = %s", gotOuter.Proto)
	}
	if gotOuter.Src != outer.Src || gotOuter.Dst != outer.Dst {
		t.Error("outer addresses mangled")
	}
	if gotInner.Src != inner.Src || gotInner.Dst != inner.Dst || gotInner.Version != 8 {
		t.Error("inner header mangled")
	}
	if !bytes.Equal(gotPayload, payload) {
		t.Errorf("payload = %q", gotPayload)
	}
}

func TestDecapRejectsNonEncap(t *testing.T) {
	h := V4Header{Proto: ProtoPayload, Src: 1, Dst: 2}
	b := NewSerializeBuffer()
	if err := Serialize(b, []byte("plain"), &h); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := DecapVN(b.Bytes()); err == nil {
		t.Error("plain packet decapped without error")
	}
}

func TestVNDecodeErrors(t *testing.T) {
	if _, _, err := DecodeVN(make([]byte, 10)); err != ErrTruncated {
		t.Errorf("short: %v", err)
	}
	// Claim an option area longer than the data.
	h := VNHeader{Version: 8}
	b := NewSerializeBuffer()
	if err := Serialize(b, nil, &h); err != nil {
		t.Fatal(err)
	}
	wire := append([]byte(nil), b.Bytes()...)
	wire[5] = 200 // options length
	if _, _, err := DecodeVN(wire); err == nil {
		t.Error("overlong options accepted")
	}
}

func TestDecrementHopLimit(t *testing.T) {
	h := VNHeader{Version: 8, HopLimit: 2}
	b := NewSerializeBuffer()
	if err := Serialize(b, nil, &h); err != nil {
		t.Fatal(err)
	}
	wire := append([]byte(nil), b.Bytes()...)
	if !DecrementHopLimit(wire) {
		t.Fatal("decrement should succeed")
	}
	got, _, _ := DecodeVN(wire)
	if got.HopLimit != 1 {
		t.Errorf("HopLimit = %d", got.HopLimit)
	}
	if DecrementHopLimit(wire) {
		t.Error("hop limit 1 should not be decrementable")
	}
}

func TestV4PropertyRoundTrip(t *testing.T) {
	f := func(proto, ttl uint8, src, dst uint32, payload []byte) bool {
		if ttl == 0 {
			ttl = 1
		}
		if len(payload) > 60000 {
			payload = payload[:60000]
		}
		h := V4Header{Proto: Protocol(proto), TTL: ttl, Src: addr.V4(src), Dst: addr.V4(dst)}
		b := NewSerializeBuffer()
		if err := Serialize(b, payload, &h); err != nil {
			return false
		}
		got, gotPayload, err := DecodeV4(b.Bytes())
		return err == nil && got == h && bytes.Equal(gotPayload, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestVNPropertyRoundTrip(t *testing.T) {
	f := func(ver, hop uint8, srcHi, srcLo, dstHi, dstLo uint64, payload []byte, tag uint32) bool {
		if hop == 0 {
			hop = 1
		}
		if len(payload) > 60000 {
			payload = payload[:60000]
		}
		h := VNHeader{
			Version: ver, HopLimit: hop,
			Src: addr.VN{Hi: srcHi, Lo: srcLo},
			Dst: addr.VN{Hi: dstHi, Lo: dstLo},
		}
		h = h.WithUnderlayDst(addr.V4(tag))
		b := NewSerializeBuffer()
		if err := Serialize(b, payload, &h); err != nil {
			return false
		}
		got, gotPayload, err := DecodeVN(b.Bytes())
		if err != nil || !bytes.Equal(gotPayload, payload) {
			return false
		}
		u, ok := got.UnderlayDst()
		return got.Version == ver && got.HopLimit == hop &&
			got.Src == h.Src && got.Dst == h.Dst && ok && u == addr.V4(tag)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSerializeBufferGrowth(t *testing.T) {
	b := NewSerializeBuffer()
	big := make([]byte, 4096)
	for i := range big {
		big[i] = byte(i)
	}
	b.PushPayload(big)
	front := b.PrependBytes(300)
	for i := range front {
		front[i] = 0xAB
	}
	got := b.Bytes()
	if len(got) != 4396 {
		t.Fatalf("len = %d", len(got))
	}
	if got[0] != 0xAB || got[299] != 0xAB {
		t.Error("prepended bytes wrong")
	}
	if !bytes.Equal(got[300:], big) {
		t.Error("payload corrupted by growth")
	}
}

func TestChecksumKnownValues(t *testing.T) {
	// RFC 1071 example: checksum over the given words.
	data := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got := Checksum(data); got != ^uint16(0xddf2) {
		t.Errorf("checksum = %04x", got)
	}
	if got := Checksum(nil); got != 0xFFFF {
		t.Errorf("empty checksum = %04x", got)
	}
	// Odd length pads with zero.
	if Checksum([]byte{0xFF}) != ^uint16(0xFF00) {
		t.Error("odd-length checksum wrong")
	}
}

func BenchmarkEncapVN(b *testing.B) {
	outer := V4Header{Src: 1, Dst: 2}
	inner := VNHeader{Version: 8, Src: addr.VN{Hi: 1}, Dst: addr.VN{Hi: 2}}
	payload := make([]byte, 512)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := EncapVN(outer, inner, payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecapVN(b *testing.B) {
	outer := V4Header{Src: 1, Dst: 2}
	inner := VNHeader{Version: 8, Src: addr.VN{Hi: 1}, Dst: addr.VN{Hi: 2}}
	wire, err := EncapVN(outer, inner, make([]byte, 512))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := DecapVN(wire); err != nil {
			b.Fatal(err)
		}
	}
}
