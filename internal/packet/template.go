package packet

import (
	"encoding/binary"
	"fmt"

	"github.com/evolvable-net/evolve/internal/addr"
)

// VNTemplate is a pre-serialized vn-encap header prefix for the batched
// send path. A flow's headers (outer V4, inner VN, options) are constant
// across every packet of a burst except three fields: the V4 total
// length, the VN payload length, and the 4-byte OptTraceTag value.
// Build serializes the headers once through the ordinary layer
// serializers; Emit then materializes each packet by copying the prefix,
// appending the payload and patching those three fields in place —
// no per-packet header serialization, no allocation when the caller's
// buffer has capacity.
type VNTemplate struct {
	// hdr is the serialized header prefix (V4 + VN + options) as emitted
	// for a zero-length payload.
	hdr []byte
	// tagOff is the offset of the 4-byte OptTraceTag value within hdr,
	// or -1 when the template carries no trace-tag option.
	tagOff int
}

// Build serializes outer and inner (with a zero-length payload) into the
// template and locates the trace-tag patch point. It reuses the
// template's backing storage, so rebuilding an existing template
// allocates nothing once warm. Build fails only if the headers
// themselves fail to serialize (an oversized option).
func (t *VNTemplate) Build(outer V4Header, inner VNHeader) error {
	b := GetSerializeBuffer()
	defer PutSerializeBuffer(b)
	if err := SerializeVN(b, nil, &outer, &inner); err != nil {
		return err
	}
	t.hdr = append(t.hdr[:0], b.Bytes()...)
	t.tagOff = -1
	off := V4HeaderLen + VNHeaderLen
	end := off + int(binary.BigEndian.Uint16(t.hdr[V4HeaderLen+4:V4HeaderLen+6]))
	for off+1 < end {
		typ, vlen := t.hdr[off], int(t.hdr[off+1])
		if typ == OptTraceTag && vlen == 4 {
			t.tagOff = off + 2
		}
		off += 2 + vlen
	}
	return nil
}

// HeaderLen reports the serialized header prefix length.
func (t *VNTemplate) HeaderLen() int { return len(t.hdr) }

// TagOffset reports the offset of the trace-tag value within the emitted
// wire, or -1 when the template has no OptTraceTag option.
func (t *VNTemplate) TagOffset() int { return t.tagOff }

// Emit materializes one packet into buf[:0]: header prefix, then
// payload, with the V4 total length, VN payload length, trace tag and V4
// checksum patched for this packet. The result is byte-identical to
// serializing the same headers and payload through SerializeVN. Emit
// appends into buf, so passing a buffer with enough capacity makes it
// allocation-free; the returned slice aliases it.
func (t *VNTemplate) Emit(buf []byte, payload []byte, tag uint32) ([]byte, error) {
	if len(payload) > 0xFFFF {
		return nil, fmt.Errorf("packet: vn payload length %d overflows", len(payload))
	}
	total := len(t.hdr) + len(payload)
	if total > 0xFFFF {
		return nil, fmt.Errorf("packet: v4 total length %d overflows", total)
	}
	wire := append(buf[:0], t.hdr...)
	wire = append(wire, payload...)
	binary.BigEndian.PutUint16(wire[2:4], uint16(total))
	binary.BigEndian.PutUint16(wire[V4HeaderLen+2:V4HeaderLen+4], uint16(len(payload)))
	if t.tagOff >= 0 {
		binary.BigEndian.PutUint32(wire[t.tagOff:t.tagOff+4], tag)
	}
	wire[6], wire[7] = 0, 0
	binary.BigEndian.PutUint16(wire[6:8], Checksum(wire[:V4HeaderLen]))
	return wire, nil
}

// RewriteOuter re-addresses a serialized vn-encap packet in place for
// its next tunnel leg, as the batched relay path does: source and
// destination are replaced, the TTL is reset to DefaultTTL (each leg is
// a fresh underlay packet, exactly as a per-leg re-encapsulation would
// serialize it) and the checksum is recomputed. It reports false when
// wire is too short to hold a V4 header.
func RewriteOuter(wire []byte, src, dst addr.V4) bool {
	if len(wire) < V4HeaderLen {
		return false
	}
	binary.BigEndian.PutUint32(wire[8:12], uint32(src))
	binary.BigEndian.PutUint32(wire[12:16], uint32(dst))
	wire[4] = DefaultTTL
	wire[6], wire[7] = 0, 0
	binary.BigEndian.PutUint16(wire[6:8], Checksum(wire[:V4HeaderLen]))
	return true
}
