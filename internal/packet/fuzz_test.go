package packet

import (
	"bytes"
	"testing"

	"github.com/evolvable-net/evolve/internal/addr"
)

// Fuzz targets: the decoders must never panic on arbitrary bytes, and
// anything they accept must re-serialize to an equivalent packet
// (decode/encode round-trip stability). Run with `go test -fuzz=FuzzX`;
// the seed corpus below runs on every ordinary `go test`.

func seedWires(f *testing.F) {
	// Valid packets of each flavour.
	b := NewSerializeBuffer()
	h4 := V4Header{Proto: ProtoPing, TTL: 9, Src: 0x0A000001, Dst: 0x0A000002}
	if err := Serialize(b, []byte("seed"), &h4); err != nil {
		f.Fatal(err)
	}
	f.Add(append([]byte(nil), b.Bytes()...))

	vn := VNHeader{Version: 8, HopLimit: 5, Src: addr.SelfAddress(7), Dst: addr.VN{Hi: 1, Lo: 2}}
	vn = vn.WithUnderlayDst(0x14000001)
	wire, err := EncapVN(V4Header{Src: 1, Dst: 2}, vn, []byte("payload"))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(wire)

	// A fallback-marked delivery (the graceful-degradation wire form).
	fb := VNHeader{Version: 8, HopLimit: 9, Src: addr.SelfAddress(3), Dst: addr.SelfAddress(4)}
	fb.Options = []Option{{Type: OptFallback, Value: []byte{FallbackMarkState}}}
	fbw, err := EncapVN(V4Header{Src: 3, Dst: 4}, fb, []byte("degraded"))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(fbw)

	// Degenerate inputs.
	f.Add([]byte{})
	f.Add([]byte{4})
	f.Add(bytes.Repeat([]byte{0xFF}, 64))
	f.Add(bytes.Repeat([]byte{0x00}, 64))
}

func FuzzDecodeV4(f *testing.F) {
	seedWires(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		h, payload, err := DecodeV4(data)
		if err != nil {
			return
		}
		if h.TTL == 0 {
			// The serializer normalizes TTL 0 to the default; byte
			// equality cannot hold for such inputs.
			return
		}
		// Accepted packets must round-trip to identical wire bytes up to
		// the decoded total length.
		b := NewSerializeBuffer()
		if err := Serialize(b, payload, &h); err != nil {
			t.Fatalf("re-serialize: %v", err)
		}
		total := V4HeaderLen + len(payload)
		if !bytes.Equal(b.Bytes(), data[:total]) {
			t.Fatalf("round trip diverged:\n in  %x\n out %x", data[:total], b.Bytes())
		}
	})
}

func FuzzDecodeVN(f *testing.F) {
	seedWires(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		h, payload, err := DecodeVN(data)
		if err != nil {
			return
		}
		b := NewSerializeBuffer()
		if err := Serialize(b, payload, &h); err != nil {
			t.Fatalf("re-serialize: %v", err)
		}
		// Re-decode and compare semantics (byte equality may not hold if
		// the source encoded option values oddly, but structure must).
		h2, payload2, err := DecodeVN(b.Bytes())
		if err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		wantHop := h.HopLimit
		if wantHop == 0 {
			wantHop = DefaultHopLimit // serializer normalization
		}
		if h2.Version != h.Version || h2.HopLimit != wantHop ||
			h2.Src != h.Src || h2.Dst != h.Dst || len(h2.Options) != len(h.Options) {
			t.Fatalf("semantic divergence: %+v vs %+v", h, h2)
		}
		if !bytes.Equal(payload, payload2) {
			t.Fatal("payload diverged")
		}
	})
}

func FuzzDecapVN(f *testing.F) {
	seedWires(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		outer, inner, payload, err := DecapVN(data)
		if err != nil {
			return
		}
		// Re-encapsulate; semantics must survive.
		wire, err := EncapVN(outer, inner, payload)
		if err != nil {
			t.Fatalf("re-encap: %v", err)
		}
		o2, i2, p2, err := DecapVN(wire)
		if err != nil {
			t.Fatalf("re-decap: %v", err)
		}
		wantTTL := outer.TTL
		if wantTTL == 0 {
			wantTTL = DefaultTTL
		}
		wantHop := inner.HopLimit
		if wantHop == 0 {
			wantHop = DefaultHopLimit
		}
		if o2.Src != outer.Src || o2.Dst != outer.Dst || o2.TTL != wantTTL {
			t.Fatal("outer diverged")
		}
		if i2.Src != inner.Src || i2.Dst != inner.Dst || i2.Version != inner.Version || i2.HopLimit != wantHop {
			t.Fatal("inner diverged")
		}
		if !bytes.Equal(p2, payload) {
			t.Fatal("payload diverged")
		}
	})
}

// FuzzFallbackMarker pins the fallback marker option byte-identically
// against the serializer oracle: a header carrying OptFallback with any
// marker value must decode to the same marker (through both the copying
// and the zero-copy decoder) and re-serialize to the exact wire bytes
// the first serialization produced. The delivery plane stamps this
// option on every degraded delivery, so a lossy round-trip here would
// silently corrupt the availability accounting downstream.
func FuzzFallbackMarker(f *testing.F) {
	f.Add(uint8(8), uint8(64), FallbackMarkState, []byte("fallback-state"))
	f.Add(uint8(8), uint8(1), FallbackMarkRescue, []byte("fallback-rescue"))
	f.Add(uint8(0), uint8(0), uint8(0), []byte{})
	f.Add(uint8(255), uint8(255), uint8(255), bytes.Repeat([]byte{0xAB}, 512))
	f.Fuzz(func(t *testing.T, version, hop, mark uint8, payload []byte) {
		h := VNHeader{
			Version:  version,
			HopLimit: hop,
			Src:      addr.SelfAddress(3),
			Dst:      addr.VN{Hi: 9, Lo: 9},
			Options: []Option{
				{Type: OptTraceTag, Value: []byte{0, 0, 0, 1}},
				{Type: OptFallback, Value: []byte{mark}},
			},
		}
		b := NewSerializeBuffer()
		if err := Serialize(b, payload, &h); err != nil {
			t.Fatalf("serialize: %v", err)
		}
		wire := append([]byte(nil), b.Bytes()...)

		h2, p2, err := DecodeVN(wire)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if got, ok := h2.FallbackMark(); !ok || got != mark {
			t.Fatalf("marker diverged: got (%d,%v), want (%d,true)", got, ok, mark)
		}
		if !bytes.Equal(p2, payload) {
			t.Fatal("payload diverged")
		}

		// The zero-copy decoder (the hot path's view) must agree.
		hs, _, err := DecodeVNShared(wire, nil)
		if err != nil {
			t.Fatalf("shared decode: %v", err)
		}
		if got, ok := hs.FallbackMark(); !ok || got != mark {
			t.Fatalf("shared marker diverged: got (%d,%v), want (%d,true)", got, ok, mark)
		}

		// Byte-identical pin: re-serializing the decoded header must
		// reproduce the oracle wire exactly (the decoder surfaced the
		// normalized hop limit, so no further normalization applies).
		b2 := NewSerializeBuffer()
		if err := Serialize(b2, p2, &h2); err != nil {
			t.Fatalf("re-serialize: %v", err)
		}
		if !bytes.Equal(b2.Bytes(), wire) {
			t.Fatalf("round trip diverged:\n in  %x\n out %x", wire, b2.Bytes())
		}
	})
}

func FuzzDecrementTTLPreservesValidity(f *testing.F) {
	seedWires(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		if _, _, err := DecodeV4(data); err != nil {
			return
		}
		wire := append([]byte(nil), data...)
		if !DecrementTTL(wire) {
			return
		}
		if _, _, err := DecodeV4(wire); err != nil {
			t.Fatalf("TTL decrement broke the checksum: %v", err)
		}
	})
}
