package packet

import (
	"bytes"
	"encoding/binary"
	"testing"

	"github.com/evolvable-net/evolve/internal/addr"
)

// templateHeaders builds the outer/inner pair the batched send path
// freezes into a template: vn-encap outer, optional underlay-destination
// option (under == 0 means none), and a trace-tag option placeholder.
// The returned inner carries tag as its trace-tag value, so serializing
// it through SerializeVN is the per-packet oracle for Emit.
func templateHeaders(srcV4, dstV4 uint32, version, hop uint8, srcHi, srcLo, dstHi, dstLo uint64, under, tag uint32) (V4Header, VNHeader) {
	outer := V4Header{Proto: ProtoVNEncap, Src: addr.V4(srcV4), Dst: addr.V4(dstV4)}
	inner := VNHeader{
		Version:  version,
		HopLimit: hop,
		Src:      addr.VN{Hi: srcHi, Lo: srcLo},
		Dst:      addr.VN{Hi: dstHi, Lo: dstLo},
	}
	var opts []Option
	if under != 0 {
		ub := make([]byte, 4)
		binary.BigEndian.PutUint32(ub, under)
		opts = append(opts, Option{Type: OptUnderlayDst, Value: ub})
	}
	tb := make([]byte, 4)
	binary.BigEndian.PutUint32(tb, tag)
	inner.Options = append(opts, Option{Type: OptTraceTag, Value: tb})
	return outer, inner
}

// TestVNTemplateEmitMatchesSerializer pins the template contract on
// deterministic cases: Emit output is byte-identical to SerializeVN of
// the same headers and payload, including length-overflow errors, and
// RewriteOuter re-addresses the emitted wire without breaking V4
// decodability.
func TestVNTemplateEmitMatchesSerializer(t *testing.T) {
	cases := []struct {
		name     string
		under    uint32
		hop      uint8
		tag      uint32
		payload  []byte
		overflow bool
	}{
		{"registered-native", 0, 63, 0xDEADBEEF, []byte("native payload"), false},
		{"self-addressed", 0x14000001, 63, 1, []byte("self payload"), false},
		{"zero-hop-normalized", 0x14000001, 0, 0, nil, false},
		{"empty-payload", 0, 5, 42, []byte{}, false},
		{"payload-overflow", 0, 63, 7, make([]byte, 0x10000), true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			outer, inner := templateHeaders(0x0A000001, 0x14000009, 8, tc.hop, 0, 7, 1, 2, tc.under, tc.tag)
			var tmpl VNTemplate
			// Build with the tag zeroed, as the batch path does; Emit
			// patches the real tag per packet.
			_, zeroed := templateHeaders(0x0A000001, 0x14000009, 8, tc.hop, 0, 7, 1, 2, tc.under, 0)
			if err := tmpl.Build(outer, zeroed); err != nil {
				t.Fatal(err)
			}
			if tmpl.TagOffset() < 0 {
				t.Fatal("template lost the trace-tag option")
			}
			got, gotErr := tmpl.Emit(nil, tc.payload, tc.tag)

			b := GetSerializeBuffer()
			defer PutSerializeBuffer(b)
			oraErr := SerializeVN(b, tc.payload, &outer, &inner)
			if tc.overflow {
				if gotErr == nil || oraErr == nil || gotErr.Error() != oraErr.Error() {
					t.Fatalf("overflow errors diverge: %v vs %v", gotErr, oraErr)
				}
				return
			}
			if gotErr != nil || oraErr != nil {
				t.Fatalf("emit %v, serialize %v", gotErr, oraErr)
			}
			if !bytes.Equal(got, b.Bytes()) {
				t.Fatalf("wire diverges:\n emit %x\n want %x", got, b.Bytes())
			}
			if len(got) != tmpl.HeaderLen()+len(tc.payload) {
				t.Fatalf("wire length %d, want %d+%d", len(got), tmpl.HeaderLen(), len(tc.payload))
			}

			if !RewriteOuter(got, 0x0B000001, 0x0B000002) {
				t.Fatal("RewriteOuter rejected its own wire")
			}
			h, _, err := DecodeV4(got)
			if err != nil {
				t.Fatalf("rewritten wire undecodable: %v", err)
			}
			if h.Src != 0x0B000001 || h.Dst != 0x0B000002 || h.TTL != DefaultTTL {
				t.Fatalf("rewrite fields wrong: %+v", h)
			}
		})
	}
	if RewriteOuter(make([]byte, V4HeaderLen-1), 1, 2) {
		t.Error("RewriteOuter accepted a truncated wire")
	}
}

// FuzzVNTemplateEmit fuzzes the vectorised header writer against the
// per-packet serializer oracle: for arbitrary header fields, tag and
// payload, a template built once and patched per packet must emit bytes
// identical to SerializeVN of the same headers — same errors included.
func FuzzVNTemplateEmit(f *testing.F) {
	f.Add(uint32(0x0A000001), uint32(0x14000009), uint8(8), uint8(63),
		uint64(0), uint64(7), uint64(1), uint64(2),
		uint32(0x14000001), uint32(0xDEADBEEF), []byte("seed payload"))
	f.Add(uint32(1), uint32(2), uint8(8), uint8(0),
		uint64(3), uint64(4), uint64(5), uint64(6),
		uint32(0), uint32(0), []byte{})
	f.Add(uint32(0xFFFFFFFF), uint32(0), uint8(255), uint8(1),
		uint64(1<<63), uint64(0xFFFFFFFFFFFFFFFF), uint64(0), uint64(1),
		uint32(7), uint32(1), bytes.Repeat([]byte{0xAB}, 100))
	f.Fuzz(func(t *testing.T, srcV4, dstV4 uint32, version, hop uint8,
		srcHi, srcLo, dstHi, dstLo uint64, under, tag uint32, payload []byte) {
		outer, inner := templateHeaders(srcV4, dstV4, version, hop, srcHi, srcLo, dstHi, dstLo, under, tag)
		_, zeroed := templateHeaders(srcV4, dstV4, version, hop, srcHi, srcLo, dstHi, dstLo, under, 0)
		var tmpl VNTemplate
		if err := tmpl.Build(outer, zeroed); err != nil {
			t.Skip("headers unserializable")
		}
		got, gotErr := tmpl.Emit(nil, payload, tag)

		b := GetSerializeBuffer()
		defer PutSerializeBuffer(b)
		oraErr := SerializeVN(b, payload, &outer, &inner)
		if (gotErr == nil) != (oraErr == nil) {
			t.Fatalf("error divergence: emit %v, serialize %v", gotErr, oraErr)
		}
		if gotErr != nil {
			if gotErr.Error() != oraErr.Error() {
				t.Fatalf("error text divergence: %q vs %q", gotErr, oraErr)
			}
			return
		}
		if !bytes.Equal(got, b.Bytes()) {
			t.Fatalf("wire diverges:\n emit %x\n want %x", got, b.Bytes())
		}
		if !RewriteOuter(got, addr.V4(dstV4), addr.V4(srcV4)) {
			t.Fatal("RewriteOuter rejected emitted wire")
		}
		if h, _, err := DecodeV4(got); err != nil {
			t.Fatalf("rewritten wire undecodable: %v", err)
		} else if h.Src != addr.V4(dstV4) || h.Dst != addr.V4(srcV4) || h.TTL != DefaultTTL {
			t.Fatalf("rewrite fields wrong: %+v", h)
		}
	})
}
