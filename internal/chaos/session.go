package chaos

import (
	"fmt"
	"math/rand"
	"strings"

	"github.com/evolvable-net/evolve/internal/addr"
	"github.com/evolvable-net/evolve/internal/netsim"
	"github.com/evolvable-net/evolve/internal/routing/bgp"
	"github.com/evolvable-net/evolve/internal/topology"
)

// This file is the session-convergence chaos arm: where the evolution
// harness (run.go) checks invariants after each *quiesced* step, this
// one drives the event-driven BGP sessions and probes invariants while
// UPDATE traffic is still in flight — link flaps, withdrawals, and
// originations land mid-convergence, not after it. The probed
// invariants are exactly the ones that hold at every instant of a
// correct execution (AS-path attribute safety); the full loc-RIB oracle
// against the batch fixpoint runs once quiescence is reached.

// SessionViolation is one mid-convergence invariant failure.
type SessionViolation struct {
	At        netsim.Time
	Invariant string
	Detail    string
}

func (v SessionViolation) String() string {
	return fmt.Sprintf("t=%s: invariant %q violated: %s", v.At, v.Invariant, v.Detail)
}

// SessionReport is the outcome of one session-convergence chaos run.
type SessionReport struct {
	Seed   int64
	NAS    int
	Legacy bool
	// Events counts injected faults (flaps, originations, withdrawals).
	Events int
	// Probes counts mid-convergence invariant sweeps; Checks counts
	// individual route evaluations across them.
	Probes int
	Checks int
	// Violations holds mid-convergence invariant failures (capped).
	Violations []SessionViolation
	// Quiesced reports whether the run reached protocol quiescence.
	Quiesced bool
	// OracleOK reports whether every speaker's loc-RIB matched the batch
	// fixpoint at quiescence; OracleDetail describes the first mismatch.
	OracleOK     bool
	OracleDetail string
	// Protocol counters at the end of the run.
	Updates     uint64
	Withdrawals uint64
	Resyncs     uint64
	Downs       uint64
}

// Ok reports whether the run passed: quiesced, no invariant violations,
// and fixpoint agreement.
func (r *SessionReport) Ok() bool {
	return r.Quiesced && len(r.Violations) == 0 && r.OracleOK
}

const maxSessionViolations = 8

// sessionRelOf returns a's relationship toward b, ok=false if not
// adjacent.
func sessionRelOf(net *topology.Network, a, b topology.ASN) (topology.Rel, bool) {
	for _, nb := range net.Neighbors(a) {
		if nb.ASN == b {
			return nb.Rel, true
		}
	}
	return 0, false
}

// sessionValleyFree checks Gao-Rexford validity of an AS path: once the
// path has gone downhill (provider→customer or across a peer link) it
// must never go uphill or cross another peer link.
func sessionValleyFree(net *topology.Network, path []topology.ASN) bool {
	descending := false
	for i := 0; i+1 < len(path); i++ {
		rel, ok := sessionRelOf(net, path[i], path[i+1])
		if !ok {
			return false
		}
		switch rel {
		case topology.RelCustomer:
			if descending {
				return false
			}
		case topology.RelPeer:
			if descending {
				return false
			}
			descending = true
		case topology.RelProvider:
			descending = true
		}
	}
	return true
}

// RunSessionChaos builds a random policy-safe internet, runs the
// event-driven BGP sessions, and injects `events` faults (link flaps
// straddling the hold timer, anycast originations, mid-stream
// withdrawals) while convergence is in flight, probing the transient
// invariants every 500 simulated microseconds:
//
//   - path-simple: no selected AS path contains a loop or the holder;
//   - next-hop adjacency: every selected path starts at a real neighbor;
//   - valley-free: every selected path is Gao-Rexford-valid.
//
// These hold at every instant of a correct execution — transient
// forwarding loops across ASes are legitimate during convergence, but a
// malformed path attribute never is. At quiescence the batch fixpoint
// over the surviving configuration is the oracle for every loc-RIB.
//
// legacy runs the ablation arm: fire-and-forget speakers with no session
// machinery. Faulty schedules are then *expected* to fail the oracle —
// a lost WITHDRAW is permanent — which is how the harness proves it can
// see the bug class the sessions fix.
func RunSessionChaos(seed int64, nAS, events int, legacy bool) (*SessionReport, error) {
	rng := rand.New(rand.NewSource(seed))
	net, err := topology.BarabasiAlbert(nAS, 2, topology.GenConfig{
		Seed: seed, RoutersPerDomain: 1,
	})
	if err != nil {
		return nil, err
	}
	asns := net.ASNs()

	cfg := bgp.DefaultSessionConfig()
	if legacy {
		cfg = bgp.SessionConfig{}
	}
	eng := netsim.NewEngine()
	fab := netsim.NewFabric(eng)
	ss := bgp.NewSessionSystemConfig(net, fab, cfg)
	fix := bgp.NewSystem(net)

	rep := &SessionReport{Seed: seed, NAS: nAS, Legacy: legacy}

	// The probe sweeps every speaker's selected routes against the
	// transient invariants. It runs as an engine event, interleaved with
	// the UPDATE traffic it inspects.
	violate := func(at netsim.Time, inv, detail string) {
		if len(rep.Violations) < maxSessionViolations {
			rep.Violations = append(rep.Violations, SessionViolation{At: at, Invariant: inv, Detail: detail})
		}
	}
	probe := func() {
		rep.Probes++
		now := eng.Now()
		for _, holder := range asns {
			sp := ss.Speakers[holder]
			for _, r := range sp.Routes() {
				rep.Checks++
				seen := map[topology.ASN]bool{holder: true}
				simple := true
				for _, a := range r.Path {
					if seen[a] {
						simple = false
						break
					}
					seen[a] = true
				}
				if !simple {
					violate(now, "path-simple", fmt.Sprintf("AS%d→%s path %v", holder, r.Prefix, r.Path))
					continue
				}
				if len(r.Path) > 0 {
					if _, adj := sessionRelOf(net, holder, r.Path[0]); !adj {
						violate(now, "nexthop-adjacent", fmt.Sprintf("AS%d→%s via non-neighbor AS%d", holder, r.Prefix, r.Path[0]))
						continue
					}
					full := append([]topology.ASN{holder}, r.Path...)
					if !sessionValleyFree(net, full) {
						violate(now, "valley-free", fmt.Sprintf("AS%d→%s path %v", holder, r.Prefix, full))
					}
				}
			}
		}
	}

	// Fault schedule: events spread over a churn window that starts at
	// once (mid-cold-start) so flaps hit sessions still establishing.
	const churnWindow = 12000
	hold := cfg.Hold
	if hold <= 0 {
		hold = bgp.DefaultSessionConfig().Hold
	}
	type origination struct {
		prefix addr.Prefix
		origin topology.ASN
		at     netsim.Time
	}
	var tracked []addr.Prefix
	var live []origination
	for i := 0; i < events; i++ {
		at := netsim.Time(rng.Intn(churnWindow))
		switch rng.Intn(3) {
		case 0: // link flap, shorter or longer than the hold timer
			a := asns[rng.Intn(len(asns))]
			nbrs := net.Neighbors(a)
			if len(nbrs) == 0 {
				continue
			}
			b := nbrs[rng.Intn(len(nbrs))].ASN
			downFor := netsim.Time(1 + rng.Intn(int(3*hold)))
			eng.At(at, func() { fab.FlapLink(int(a), int(b), downFor) })
			rep.Events++
		case 1: // anycast origination
			a4, aerr := addr.Option1Address(uint32(len(tracked)))
			if aerr != nil {
				continue
			}
			hp := addr.HostPrefix(a4)
			origin := asns[rng.Intn(len(asns))]
			tracked = append(tracked, hp)
			live = append(live, origination{prefix: hp, origin: origin, at: at})
			fix.Originate(origin, hp)
			eng.At(at, func() { ss.Speakers[origin].Originate(hp) })
			rep.Events++
		case 2: // withdrawal of a live origination — scheduled strictly
			// after the origination it removes, so the session timeline
			// matches the mirrored fixpoint configuration.
			if len(live) == 0 {
				continue
			}
			idx := rng.Intn(len(live))
			o := live[idx]
			live = append(live[:idx], live[idx+1:]...)
			wAt := o.at + 1 + netsim.Time(rng.Intn(churnWindow/2))
			fix.Withdraw(o.origin, o.prefix)
			eng.At(wAt, func() { ss.Speakers[o.origin].Withdraw(o.prefix) })
			rep.Events++
		}
	}
	fix.Converge()

	// Probes every 500µs across the churn window plus the recovery tail.
	horizon := netsim.Time(churnWindow) + 3*hold + 1
	for t := netsim.Time(500); t < horizon; t += 500 {
		eng.At(t, probe)
	}

	eng.RunUntil(horizon)
	_, rep.Quiesced = ss.RunToConvergence(0)
	probe() // one final sweep at quiescence

	rep.OracleOK = true
	prefixes := append([]addr.Prefix(nil), tracked...)
	for _, origin := range asns {
		prefixes = append(prefixes, net.Domain(origin).Prefix)
	}
	for _, holder := range asns {
		for _, p := range prefixes {
			fr, fok := fix.BestRoute(holder, p)
			sr, sok := ss.Speakers[holder].Best(p)
			if fok != sok || (fok && !bgp.RouteEqual(fr, sr)) {
				rep.OracleOK = false
				rep.OracleDetail = fmt.Sprintf("AS%d→%s: fixpoint %+v(%v) vs session %+v(%v)",
					holder, p, fr, fok, sr, sok)
			}
		}
	}

	rep.Updates = ss.TotalUpdates()
	rep.Withdrawals = ss.TotalWithdrawals()
	rep.Resyncs = ss.TotalResyncs()
	_, rep.Downs = ss.SessionTransitions()
	return rep, nil
}

// FormatSessionReport renders a session chaos report for humans.
func FormatSessionReport(rep *SessionReport) string {
	var b strings.Builder
	mode := "sessions"
	if rep.Legacy {
		mode = "legacy (no sessions)"
	}
	verdict := "ok"
	if !rep.Ok() {
		verdict = "FAIL"
	}
	fmt.Fprintf(&b, "%s: session chaos seed %d — %d AS, %s, %d faults, %d probes / %d checks\n",
		verdict, rep.Seed, rep.NAS, mode, rep.Events, rep.Probes, rep.Checks)
	fmt.Fprintf(&b, "  quiesced=%v oracle=%v updates=%d withdrawals=%d resyncs=%d downs=%d\n",
		rep.Quiesced, rep.OracleOK, rep.Updates, rep.Withdrawals, rep.Resyncs, rep.Downs)
	for _, v := range rep.Violations {
		fmt.Fprintf(&b, "  %s\n", v)
	}
	if !rep.OracleOK {
		fmt.Fprintf(&b, "  oracle: %s\n", rep.OracleDetail)
	}
	return b.String()
}
