package chaos

import (
	"math/rand"

	"github.com/evolvable-net/evolve/internal/topology"
)

// kindWeights biases the generator toward the event mix that historically
// flushes out reconvergence bugs: failures slightly outnumber restores
// (so runs spend time in degraded states), and registration churn is
// frequent enough to exercise the §3.3.2 advertisement path under every
// topology mutation.
var kindWeights = [numKinds]int{
	FailIntra:      18,
	RestoreIntra:   12,
	FailInter:      14,
	RestoreInter:   10,
	FlapIntra:      6,
	FlapInter:      5,
	DeployRouter:   8,
	UndeployRouter: 6,
	DeployDomain:   4,
	RegisterHost:   10,
	UnregisterHost: 7,
	EnableProvider: 3,
}

// genState mirrors the world state the schedule will create, without
// touching the live Evolution: Generate is a pure function of the
// pristine world and the seed, so the same (scenario, seed, steps)
// triple always yields the same schedule regardless of what the system
// under test does with it.
type genState struct {
	rng *rand.Rand

	intra, inter []linkID // initial link inventory, sorted
	downIntra    map[linkID]bool
	downInter    map[linkID]bool
	deployed     map[topology.RouterID]bool
	registered   map[topology.HostID]bool
	providers    map[topology.ASN]bool

	routers  []topology.RouterID
	domains  []topology.ASN
	byDomain map[topology.ASN][]topology.RouterID
	hosts    []topology.HostID
}

// Generate produces a deterministic fault schedule of the given length
// for a freshly built world. Every event is valid for the mirrored state
// at its position (no restore of an up link, no undeploy of the last
// member), though tolerant application means validity is a quality
// concern, not a correctness one.
func Generate(w *World, seed int64, steps int) []Event {
	g := &genState{
		rng:        rand.New(rand.NewSource(seed)),
		intra:      w.IntraLinks(),
		inter:      w.InterLinks(),
		downIntra:  map[linkID]bool{},
		downInter:  map[linkID]bool{},
		deployed:   map[topology.RouterID]bool{},
		registered: map[topology.HostID]bool{},
		providers:  map[topology.ASN]bool{},
		domains:    w.Net.ASNs(),
		byDomain:   map[topology.ASN][]topology.RouterID{},
	}
	for _, asn := range g.domains {
		g.byDomain[asn] = w.Net.Domain(asn).Routers
	}
	for _, m := range w.Evo.Dep.Members() {
		g.deployed[m] = true
	}
	for _, asn := range w.Evo.ProviderChoices() {
		g.providers[asn] = true
	}
	for _, r := range w.Net.Routers {
		g.routers = append(g.routers, r.ID)
	}
	for _, h := range w.Net.Hosts {
		g.hosts = append(g.hosts, h.ID)
	}

	var total int
	for _, wt := range kindWeights {
		total += wt
	}
	schedule := make([]Event, 0, steps)
	misses := 0
	for len(schedule) < steps {
		roll := g.rng.Intn(total)
		k := Kind(0)
		for ; k < numKinds; k++ {
			roll -= kindWeights[k]
			if roll < 0 {
				break
			}
		}
		ev, ok := g.emit(k)
		if !ok {
			// No candidates for this kind right now; re-roll. A long
			// miss streak means the world is too small to sustain any
			// kind — return the schedule built so far rather than spin.
			if misses++; misses > 64*int(numKinds) {
				break
			}
			continue
		}
		misses = 0
		schedule = append(schedule, ev)
	}
	return schedule
}

// emit tries to produce one event of the given kind against the mirror,
// updating the mirror on success.
func (g *genState) emit(k Kind) (Event, bool) {
	pickLink := func(cands []linkID) (linkID, bool) {
		if len(cands) == 0 {
			return linkID{}, false
		}
		return cands[g.rng.Intn(len(cands))], true
	}
	switch k {
	case FailIntra:
		l, ok := pickLink(g.upLinks(g.intra, g.downIntra))
		if !ok {
			return Event{}, false
		}
		g.downIntra[l] = true
		return Event{Kind: FailIntra, A: l.a, B: l.b}, true
	case RestoreIntra:
		l, ok := pickLink(downLinks(g.downIntra))
		if !ok {
			return Event{}, false
		}
		delete(g.downIntra, l)
		return Event{Kind: RestoreIntra, A: l.a, B: l.b}, true
	case FailInter:
		l, ok := pickLink(g.upLinks(g.inter, g.downInter))
		if !ok {
			return Event{}, false
		}
		g.downInter[l] = true
		return Event{Kind: FailInter, A: l.a, B: l.b}, true
	case RestoreInter:
		l, ok := pickLink(downLinks(g.downInter))
		if !ok {
			return Event{}, false
		}
		delete(g.downInter, l)
		return Event{Kind: RestoreInter, A: l.a, B: l.b}, true
	case FlapIntra:
		l, ok := pickLink(g.upLinks(g.intra, g.downIntra))
		if !ok {
			return Event{}, false
		}
		return Event{Kind: FlapIntra, A: l.a, B: l.b}, true
	case FlapInter:
		l, ok := pickLink(g.upLinks(g.inter, g.downInter))
		if !ok {
			return Event{}, false
		}
		return Event{Kind: FlapInter, A: l.a, B: l.b}, true
	case DeployRouter:
		var cands []topology.RouterID
		for _, r := range g.routers {
			if !g.deployed[r] {
				cands = append(cands, r)
			}
		}
		if len(cands) == 0 {
			return Event{}, false
		}
		r := cands[g.rng.Intn(len(cands))]
		g.deployed[r] = true
		return Event{Kind: DeployRouter, A: r}, true
	case UndeployRouter:
		// Keep at least one member so the deployment never goes fully
		// dark — an empty deployment is a degenerate state where every
		// invariant trivially agrees on total failure.
		if len(g.deployed) <= 1 {
			return Event{}, false
		}
		var cands []topology.RouterID
		for _, r := range g.routers {
			if g.deployed[r] {
				cands = append(cands, r)
			}
		}
		r := cands[g.rng.Intn(len(cands))]
		delete(g.deployed, r)
		return Event{Kind: UndeployRouter, A: r}, true
	case DeployDomain:
		var cands []topology.ASN
		for _, asn := range g.domains {
			for _, r := range g.byDomain[asn] {
				if !g.deployed[r] {
					cands = append(cands, asn)
					break
				}
			}
		}
		if len(cands) == 0 {
			return Event{}, false
		}
		asn := cands[g.rng.Intn(len(cands))]
		for _, r := range g.byDomain[asn] {
			g.deployed[r] = true
		}
		return Event{Kind: DeployDomain, ASN: asn}, true
	case RegisterHost:
		var cands []topology.HostID
		for _, h := range g.hosts {
			if !g.registered[h] {
				cands = append(cands, h)
			}
		}
		if len(cands) == 0 {
			return Event{}, false
		}
		h := cands[g.rng.Intn(len(cands))]
		g.registered[h] = true
		return Event{Kind: RegisterHost, Host: h}, true
	case UnregisterHost:
		var cands []topology.HostID
		for _, h := range g.hosts {
			if g.registered[h] {
				cands = append(cands, h)
			}
		}
		if len(cands) == 0 {
			return Event{}, false
		}
		h := cands[g.rng.Intn(len(cands))]
		delete(g.registered, h)
		return Event{Kind: UnregisterHost, Host: h}, true
	case EnableProvider:
		// Only domains that currently participate can mint a
		// provider-specific address, and enabling is one-shot per domain.
		var cands []topology.ASN
		for _, asn := range g.domains {
			if g.providers[asn] {
				continue
			}
			for _, r := range g.byDomain[asn] {
				if g.deployed[r] {
					cands = append(cands, asn)
					break
				}
			}
		}
		if len(cands) == 0 {
			return Event{}, false
		}
		asn := cands[g.rng.Intn(len(cands))]
		g.providers[asn] = true
		return Event{Kind: EnableProvider, ASN: asn}, true
	default:
		return Event{}, false
	}
}

func (g *genState) upLinks(all []linkID, down map[linkID]bool) []linkID {
	var out []linkID
	for _, l := range all {
		if !down[l] {
			out = append(out, l)
		}
	}
	return out
}

func downLinks(down map[linkID]bool) []linkID {
	out := make([]linkID, 0, len(down))
	for l := range down {
		out = append(out, l)
	}
	sortLinkIDs(out)
	return out
}
