package chaos

import (
	"errors"
	"fmt"
	"reflect"
	"sort"
	"strings"

	"github.com/evolvable-net/evolve/internal/core"
	"github.com/evolvable-net/evolve/internal/topology"
	"github.com/evolvable-net/evolve/internal/trace"
	"github.com/evolvable-net/evolve/internal/vnbone"
)

// CheckContext carries per-step state to invariant checks. The oracle —
// a from-scratch Evolution over the current topology — is built lazily
// and shared by every invariant that wants one, so a step pays for at
// most one oracle construction.
type CheckContext struct {
	W     *World
	Step  int
	Event Event

	oracle      *core.Evolution
	oracleErr   error
	oracleBuilt bool

	fbOracle      *core.Evolution
	fbOracleErr   error
	fbOracleBuilt bool

	abOracle      *core.Evolution
	abOracleErr   error
	abOracleBuilt bool
}

// Oracle returns the shared from-scratch rebuild for this step.
func (c *CheckContext) Oracle() (*core.Evolution, error) {
	if !c.oracleBuilt {
		c.oracle, c.oracleErr = c.W.BuildOracle()
		c.oracleBuilt = true
	}
	return c.oracle, c.oracleErr
}

// FallbackOracle returns the step's shared from-scratch rebuild with the
// graceful-degradation layer force-enabled — the referee the availability
// invariant sends through regardless of how the live world is configured.
// Built lazily and cached like Oracle.
func (c *CheckContext) FallbackOracle() (*core.Evolution, error) {
	if c.W.Evo.Config().Fallback.Enabled {
		return c.Oracle()
	}
	if !c.fbOracleBuilt {
		c.fbOracle, c.fbOracleErr = c.W.BuildOracleWith(func(cfg *core.Config) {
			cfg.Fallback.Enabled = true
		})
		c.fbOracleBuilt = true
	}
	return c.fbOracle, c.fbOracleErr
}

// AblationOracle is FallbackOracle's counterpart: the step's shared
// from-scratch rebuild with the degradation layer force-disabled — the
// fail-fast twin the availability invariant compares degraded deliveries
// against. Reuses Oracle when the live world is already ablated.
func (c *CheckContext) AblationOracle() (*core.Evolution, error) {
	if !c.W.Evo.Config().Fallback.Enabled {
		return c.Oracle()
	}
	if !c.abOracleBuilt {
		c.abOracle, c.abOracleErr = c.W.BuildOracleWith(func(cfg *core.Config) {
			cfg.Fallback = core.FallbackConfig{}
		})
		c.abOracleBuilt = true
	}
	return c.abOracle, c.abOracleErr
}

// Failure describes one invariant violation: a human-readable detail
// line plus, when the invariant can produce one, a per-delivery path
// trace of the offending behavior.
type Failure struct {
	Detail string
	Trace  string
}

// Invariant is a property checked after every schedule event. Instances
// may carry cross-step state (see conservation's previous snapshot), so
// a fresh set is created per run via Invariants.
type Invariant interface {
	Name() string
	Check(c *CheckContext) *Failure
}

// InvariantNames lists the registered invariant names in check order.
func InvariantNames() []string {
	return []string{"ua", "bone", "conserve", "oracle", "providersync", "epochtick", "batchsend", "availability"}
}

// InvariantDoc returns the one-line description of a registered
// invariant (cmd/chaos -list-invariants renders these).
func InvariantDoc(name string) string {
	switch name {
	case "ua":
		return "live Send agrees with the from-scratch oracle on every sampled host pair (§3.1 universal access)"
	case "bone":
		return "incrementally maintained vN-Bone equals the from-scratch construction (§3.3)"
	case "conserve":
		return "trace counters conserve (sends == deliveries + drops) and stay monotonic"
	case "oracle":
		return "every host's anycast resolution matches the from-scratch oracle"
	case "providersync":
		return "provider-specific deployments never drift from the main deployment (§2.1)"
	case "epochtick":
		return "every routing-epoch store ticks WatchEpochs subscribers, and only those"
	case "batchsend":
		return "SendBatch agrees packet-for-packet with the equivalent singleton Send loop"
	case "availability":
		return "a fallback-enabled world never loses a baseline-intact packet and never degrades a delivery the ablation arm completes"
	default:
		return ""
	}
}

// Invariants instantiates fresh invariant checkers for the given names
// (nil or empty means all of them), in registry order.
func Invariants(names []string) ([]Invariant, error) {
	if len(names) == 0 {
		names = InvariantNames()
	}
	want := map[string]bool{}
	for _, n := range names {
		want[strings.TrimSpace(n)] = true
	}
	var out []Invariant
	for _, n := range InvariantNames() {
		if want[n] {
			out = append(out, newInvariant(n))
			delete(want, n)
		}
	}
	for n := range want {
		return nil, fmt.Errorf("chaos: unknown invariant %q (have %s)", n, strings.Join(InvariantNames(), ", "))
	}
	return out, nil
}

func newInvariant(name string) Invariant {
	switch name {
	case "ua":
		return &uaInvariant{}
	case "bone":
		return &boneInvariant{}
	case "conserve":
		return &conserveInvariant{}
	case "oracle":
		return &oracleInvariant{}
	case "providersync":
		return &providerSyncInvariant{}
	case "epochtick":
		return &epochTickInvariant{}
	case "batchsend":
		return &batchSendInvariant{}
	case "availability":
		return &availabilityInvariant{}
	default:
		panic("chaos: unregistered invariant " + name)
	}
}

// uaInvariant is the paper's Universal Access requirement (§3.1) made
// operational: for every host pair sampled, a Send on the long-lived
// Evolution must succeed exactly when it succeeds on the from-scratch
// oracle, and when both succeed they must agree on the anycast ingress
// and the end-to-end cost. A client that the oracle can serve but the
// live system cannot — or that the live system routes differently — has
// lost universal access to stale incremental state.
type uaInvariant struct{}

func (uaInvariant) Name() string { return "ua" }

func (uaInvariant) Check(c *CheckContext) *Failure {
	oracle, err := c.Oracle()
	if err != nil {
		// The current topology state admits no deployment at all (e.g.
		// the bone cannot be built). The live system must agree that it
		// is unusable.
		if liveErr := c.W.Evo.Ready(); liveErr == nil {
			return &Failure{Detail: fmt.Sprintf("oracle cannot be built (%v) but live evolution reports Ready", err)}
		}
		return nil
	}
	hosts := c.W.Net.Hosts
	n := len(hosts)
	if n < 2 {
		return nil
	}
	payload := []byte("chaos-ua")
	for i := 0; i < n; i++ {
		src, dst := hosts[i], hosts[(i+1)%n]
		liveD, liveErr := c.W.Evo.Send(src, dst, payload)
		oraD, oraErr := oracle.Send(src, dst, payload)
		switch {
		case liveErr != nil && oraErr == nil:
			return &Failure{
				Detail: fmt.Sprintf("h%d→h%d: live send failed (%v) but from-scratch oracle delivers via r%d at cost %d",
					src.ID, dst.ID, liveErr, oraD.Ingress.Member, oraD.TotalCost),
				Trace: uaTrace(c.W.Evo, src, dst, payload),
			}
		case liveErr == nil && oraErr != nil:
			return &Failure{
				Detail: fmt.Sprintf("h%d→h%d: live send delivered via r%d at cost %d but oracle fails (%v)",
					src.ID, dst.ID, liveD.Ingress.Member, liveD.TotalCost, oraErr),
				Trace: uaTrace(c.W.Evo, src, dst, payload),
			}
		case liveErr == nil && oraErr == nil:
			if liveD.Ingress.Member != oraD.Ingress.Member || liveD.TotalCost != oraD.TotalCost {
				return &Failure{
					Detail: fmt.Sprintf("h%d→h%d: live ingress r%d cost %d, oracle ingress r%d cost %d",
						src.ID, dst.ID, liveD.Ingress.Member, liveD.TotalCost, oraD.Ingress.Member, oraD.TotalCost),
					Trace: uaTrace(c.W.Evo, src, dst, payload),
				}
			}
		}
	}
	return nil
}

// uaTrace replays the offending delivery with a recorder attached and
// renders the span dump — the "what did the packet actually do" artifact
// attached to a UA violation.
func uaTrace(evo *core.Evolution, src, dst *topology.Host, payload []byte) string {
	rec := trace.NewRecorder()
	_, _ = evo.SendTraced(src, dst, payload, rec)
	return evo.FormatTrace(rec.Events())
}

// boneInvariant checks the §3.3 vN-Bone: the live bone must be buildable
// exactly when the oracle's is, and when both exist they must be the
// same overlay — same member set, same links at the same costs and
// kinds, and connected. An incremental rebuild that drifts from the
// from-scratch construction means some topology change never reached
// the bone layer.
type boneInvariant struct{}

func (boneInvariant) Name() string { return "bone" }

func (boneInvariant) Check(c *CheckContext) *Failure {
	oracle, err := c.Oracle()
	if err != nil {
		return nil // ua already cross-checks total unusability
	}
	liveBone, liveErr := c.W.Evo.Bone()
	oraBone, oraErr := oracle.Bone()
	if (liveErr != nil) != (oraErr != nil) {
		return &Failure{Detail: fmt.Sprintf("live bone err=%v, oracle bone err=%v", liveErr, oraErr)}
	}
	if liveErr != nil {
		return nil
	}
	if got, want := fmtMembers(liveBone), fmtMembers(oraBone); got != want {
		return &Failure{Detail: fmt.Sprintf("bone members diverge: live %s, oracle %s", got, want)}
	}
	if got, want := fmtLinks(liveBone.Links()), fmtLinks(oraBone.Links()); got != want {
		return &Failure{Detail: fmt.Sprintf("bone links diverge:\nlive:   %s\noracle: %s", got, want)}
	}
	if !liveBone.Connected() {
		return &Failure{Detail: fmt.Sprintf("bone built but not connected: %d components", len(liveBone.Components()))}
	}
	return nil
}

func fmtMembers(b *vnbone.Bone) string {
	ms := b.Members()
	parts := make([]string, len(ms))
	for i, m := range ms {
		parts[i] = fmt.Sprintf("r%d", m)
	}
	return "{" + strings.Join(parts, " ") + "}"
}

func fmtLinks(links []vnbone.Link) string {
	parts := make([]string, len(links))
	for i, l := range links {
		a, b := l.A, l.B
		if a > b {
			a, b = b, a
		}
		parts[i] = fmt.Sprintf("r%d-r%d/%d/%v", a, b, l.Cost, l.Kind)
	}
	sort.Strings(parts)
	return "{" + strings.Join(parts, " ") + "}"
}

// conserveInvariant checks trace-counter conservation: every delivery
// attempt is accounted exactly once (sends == deliveries + drops, since
// the send path is synchronous) and all counters are monotonic step over
// step — Snapshot.Sub panics on regression, which the check surfaces as
// a violation rather than a crash.
type conserveInvariant struct {
	prev    trace.Snapshot
	havePrv bool
}

func (*conserveInvariant) Name() string { return "conserve" }

func (ci *conserveInvariant) Check(c *CheckContext) (f *Failure) {
	s := c.W.Evo.Snapshot()
	if s.Sends != s.Deliveries+s.Drops {
		return &Failure{Detail: fmt.Sprintf("counter conservation broken: sends=%d deliveries=%d drops=%d", s.Sends, s.Deliveries, s.Drops)}
	}
	if ci.havePrv {
		defer func() {
			if r := recover(); r != nil {
				f = &Failure{Detail: fmt.Sprintf("counter regression: %v", r)}
			}
		}()
		_ = s.Sub(ci.prev)
	}
	ci.prev, ci.havePrv = s, true
	return nil
}

// oracleInvariant is the pure routing-state comparison: every host's
// anycast resolution (the redirect decision of §3.1) on the live
// services must match the from-scratch oracle's — same reachability,
// same chosen member, same cost. It catches stale IGP/BGP state even
// for hosts that never send.
type oracleInvariant struct{}

func (oracleInvariant) Name() string { return "oracle" }

func (oracleInvariant) Check(c *CheckContext) *Failure {
	oracle, err := c.Oracle()
	if err != nil {
		return nil
	}
	liveAddr := c.W.Evo.AnycastAddr()
	oraAddr := oracle.AnycastAddr()
	for _, h := range c.W.Net.Hosts {
		liveRes, liveErr := c.W.Evo.Anycast.ResolveFromHost(h, liveAddr)
		oraRes, oraErr := oracle.Anycast.ResolveFromHost(h, oraAddr)
		if (liveErr != nil) != (oraErr != nil) {
			return &Failure{Detail: fmt.Sprintf("h%d anycast resolution: live err=%v, oracle err=%v", h.ID, liveErr, oraErr)}
		}
		if liveErr != nil {
			continue
		}
		if liveRes.Member != oraRes.Member || liveRes.Cost != oraRes.Cost {
			return &Failure{Detail: fmt.Sprintf("h%d anycast resolution diverges: live r%d/%d, oracle r%d/%d",
				h.ID, liveRes.Member, liveRes.Cost, oraRes.Member, oraRes.Cost)}
		}
	}
	return nil
}

// providerSyncInvariant checks that §2.1 provider-specific deployments
// never drift from the main deployment: after every event, the member
// set of each enabled provider's deployment must equal the main
// deployment's members inside that domain. Deployment churn updates both
// bookkeeping structures on separate code paths, so a missed add or
// withdraw shows up here immediately instead of as a mysterious SendVia
// misdelivery many steps later.
type providerSyncInvariant struct{}

func (providerSyncInvariant) Name() string { return "providersync" }

func (providerSyncInvariant) Check(c *CheckContext) *Failure {
	for _, asn := range c.W.Evo.ProviderChoices() {
		got := fmtRouterSet(c.W.Evo.ProviderMembers(asn))
		want := fmtRouterSet(c.W.Evo.Dep.MembersIn(asn))
		if got != want {
			return &Failure{Detail: fmt.Sprintf("AS%d provider deployment drifted: provider members %s, main deployment members in AS%d %s",
				asn, got, asn, want)}
		}
	}
	return nil
}

func fmtRouterSet(rs []topology.RouterID) string {
	parts := make([]string, len(rs))
	for i, r := range rs {
		parts[i] = fmt.Sprintf("r%d", r)
	}
	sort.Strings(parts)
	return "{" + strings.Join(parts, " ") + "}"
}

// batchSendInvariant checks the batch≡loop delivery contract under the
// full fault schedule: after every event, a SendBatch burst on the live
// Evolution must agree packet-for-packet with the equivalent singleton
// Send loop — same per-packet success/failure (same error text on
// failure), same delivery modulo the random trace tag. The bursts carry
// in-batch duplicate destinations, so a batch torn across routing state
// or a flow skeleton reused across the wrong destination surfaces here
// against whatever topology the schedule has mangled.
type batchSendInvariant struct{}

func (batchSendInvariant) Name() string { return "batchsend" }

func (batchSendInvariant) Check(c *CheckContext) *Failure {
	hosts := c.W.Net.Hosts
	n := len(hosts)
	if n < 2 {
		return nil
	}
	payload := []byte("chaos-batch")
	// Up to four sources around the host ring, each bursting to a window
	// of successors with the first destination repeated at the end.
	stride := n / 4
	if stride == 0 {
		stride = 1
	}
	for i := 0; i < n; i += stride {
		src := hosts[i]
		var dsts []*topology.Host
		for j := 1; j <= 5 && j < n; j++ {
			dsts = append(dsts, hosts[(i+j)%n])
		}
		dsts = append(dsts, dsts[0])

		loopDel := make([]core.Delivery, len(dsts))
		loopErr := make([]error, len(dsts))
		for k, dst := range dsts {
			loopDel[k], loopErr[k] = c.W.Evo.Send(src, dst, payload)
		}
		batchDel, batchErr := c.W.Evo.SendBatch(src, dsts, nil)
		var be *core.BatchError
		if batchErr != nil && !errors.As(batchErr, &be) {
			// A whole-batch error must mean the loop failed identically on
			// every packet (the epoch error path).
			for k, err := range loopErr {
				if err == nil || err.Error() != batchErr.Error() {
					return &Failure{Detail: fmt.Sprintf("h%d batch failed whole (%v) but loop send %d got %v",
						src.ID, batchErr, k, err)}
				}
			}
			continue
		}
		for k := range dsts {
			var kerr error
			if be != nil {
				kerr = be.Errs[k]
			}
			switch {
			case loopErr[k] == nil && kerr != nil:
				return &Failure{
					Detail: fmt.Sprintf("h%d→h%d: loop send delivers but batch packet %d fails (%v)",
						src.ID, dsts[k].ID, k, kerr),
					Trace: uaTrace(c.W.Evo, src, dsts[k], payload),
				}
			case loopErr[k] != nil && kerr == nil:
				return &Failure{
					Detail: fmt.Sprintf("h%d→h%d: loop send fails (%v) but batch packet %d delivers",
						src.ID, dsts[k].ID, loopErr[k], k),
					Trace: uaTrace(c.W.Evo, src, dsts[k], payload),
				}
			case loopErr[k] != nil:
				if loopErr[k].Error() != kerr.Error() {
					return &Failure{Detail: fmt.Sprintf("h%d→h%d: drop reasons diverge: loop %q, batch %q",
						src.ID, dsts[k].ID, loopErr[k], kerr)}
				}
			default:
				ld, bd := loopDel[k], batchDel[k]
				ld.TraceTag, bd.TraceTag = 0, 0
				ld.Payload, bd.Payload = nil, nil
				if !reflect.DeepEqual(ld, bd) {
					return &Failure{
						Detail: fmt.Sprintf("h%d→h%d: batch packet %d diverges from loop send:\nloop:  %+v\nbatch: %+v",
							src.ID, dsts[k].ID, k, ld, bd),
						Trace: uaTrace(c.W.Evo, src, dsts[k], payload),
					}
				}
			}
		}
	}
	return nil
}

// epochTickInvariant checks the epoch-publication contract that
// epoch-driven consumers (livebridge's in-place reconciler) rely on:
// every routing-epoch store during an event must leave a pending tick on
// a WatchEpochs subscription, and no tick may appear without a store. A
// publish site that forgets to notify would leave live overlays running
// stale configurations forever; this catches it under the full fault
// schedule. Stateful: the subscription is created on the first check,
// so the first event only establishes the baseline.
type epochTickInvariant struct {
	ch         <-chan struct{}
	prevEpochs uint64
	subscribed bool
}

func (*epochTickInvariant) Name() string { return "epochtick" }

func (inv *epochTickInvariant) Check(c *CheckContext) *Failure {
	epochs := c.W.Evo.Snapshot().Epochs
	if !inv.subscribed {
		// The watcher lives as long as the Evolution under test; runs
		// discard both together.
		inv.ch, _ = c.W.Evo.WatchEpochs()
		inv.subscribed = true
		inv.prevEpochs = epochs
		return nil
	}
	published := epochs - inv.prevEpochs
	inv.prevEpochs = epochs
	ticks := 0
	for {
		select {
		case <-inv.ch:
			ticks++
			continue
		default:
		}
		break
	}
	if published > 0 && ticks == 0 {
		return &Failure{Detail: fmt.Sprintf(
			"%d epoch(s) published during %s but the watcher never ticked", published, c.Event)}
	}
	if published == 0 && ticks > 0 {
		return &Failure{Detail: fmt.Sprintf(
			"watcher ticked %d time(s) though %s published no epoch", ticks, c.Event)}
	}
	return nil
}

// availabilityInvariant is the graceful-degradation SLO made operational:
// against the current (mutated) topology, a fallback-enabled Evolution
// must deliver to every sampled host pair whose IPv(N-1) baseline is
// intact — degraded, maybe, but never dark — and must never degrade a
// delivery that an ablation-configured twin of the same state completes
// over the vN path. The checks run against a fresh fallback-enabled
// oracle (so per-flow health history cannot mask a systematic hole), and,
// when the live world itself has fallback enabled, against the live
// Evolution too.
type availabilityInvariant struct{}

func (availabilityInvariant) Name() string { return "availability" }

func (availabilityInvariant) Check(c *CheckContext) *Failure {
	fb, err := c.FallbackOracle()
	if err != nil {
		// The current state admits no Evolution at all; ua already
		// cross-checks total unusability.
		return nil
	}
	hosts := c.W.Net.Hosts
	n := len(hosts)
	if n < 2 {
		return nil
	}
	payload := []byte("chaos-avail")
	liveFallback := c.W.Evo.Config().Fallback.Enabled
	for i := 0; i < n; i++ {
		src, dst := hosts[i], hosts[(i+1)%n]
		_, baseErr := c.W.Evo.Fwd.HostToHost(src, dst)
		baselineIntact := baseErr == nil
		d, sendErr := fb.Send(src, dst, payload)
		if baselineIntact && sendErr != nil {
			return &Failure{
				Detail: fmt.Sprintf("h%d→h%d: baseline intact but fallback-enabled send black-holed (%v)",
					src.ID, dst.ID, sendErr),
				Trace: uaTrace(fb, src, dst, payload),
			}
		}
		if sendErr == nil && d.Fallback {
			// A fresh oracle's first send per flow starts healthy, so a
			// degraded delivery means the vN attempt failed — the ablation
			// twin of the same state must fail too.
			if abl, aerr := c.AblationOracle(); aerr == nil {
				if _, ablErr := abl.Send(src, dst, payload); ablErr == nil {
					return &Failure{
						Detail: fmt.Sprintf("h%d→h%d: fallback-enabled send degraded to the baseline though the ablation twin delivers over vN",
							src.ID, dst.ID),
						Trace: uaTrace(fb, src, dst, payload),
					}
				}
			}
		}
		if liveFallback && baselineIntact {
			if _, liveErr := c.W.Evo.Send(src, dst, payload); liveErr != nil {
				return &Failure{
					Detail: fmt.Sprintf("h%d→h%d: baseline intact but the live fallback-enabled evolution black-holed (%v)",
						src.ID, dst.ID, liveErr),
					Trace: uaTrace(c.W.Evo, src, dst, payload),
				}
			}
		}
	}
	return nil
}
