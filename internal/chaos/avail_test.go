package chaos

import (
	"encoding/json"
	"testing"
)

// TestAvailabilityDifferential is the acceptance proof of the graceful-
// degradation contract: under a seeded schedule whose forced outage
// black-holes at least one baseline-intact packet in the ablation arm,
// the fallback arm delivers every baseline-reachable packet — degraded,
// maybe, but never dark — and repairs back to the vN path after the
// redeploy.
func TestAvailabilityDifferential(t *testing.T) {
	rep, err := RunAvailability(1, 2, 40, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Gate(); err != nil {
		t.Fatalf("availability gate: %v\nreport: %+v", err, rep)
	}
	if rep.Ablation.BaselineIntactLost == 0 {
		t.Error("ablation arm never black-holed — the schedule exercised nothing")
	}
	if rep.Fallback.BaselineIntactLost != 0 {
		t.Errorf("fallback arm lost %d baseline-intact packets", rep.Fallback.BaselineIntactLost)
	}
	if rep.Fallback.FallbackDeliveries == 0 {
		t.Error("fallback arm never degraded a delivery despite the forced outage")
	}
	if rep.DegradedSteps == 0 || rep.FallbackWindows == 0 {
		t.Errorf("no fallback windows recorded: degraded=%d windows=%d", rep.DegradedSteps, rep.FallbackWindows)
	}
	if rep.TimeToRepairSteps < 0 {
		t.Errorf("fallback arm never repaired after the redeploy: %+v", rep)
	}
	if rep.Fallback.DeliveredFraction < rep.Ablation.DeliveredFraction {
		t.Errorf("fallback delivered %.4f < ablation %.4f",
			rep.Fallback.DeliveredFraction, rep.Ablation.DeliveredFraction)
	}
	// The report must serialize (availbench writes it as BENCH_avail.json).
	if _, err := json.Marshal(rep); err != nil {
		t.Fatalf("report not serializable: %v", err)
	}
}

// TestAvailabilityDifferentialDeterministic pins replayability: same
// seeds, same report.
func TestAvailabilityDifferentialDeterministic(t *testing.T) {
	a, err := RunAvailability(1, 2, 30, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunAvailability(1, 2, 30, 2)
	if err != nil {
		t.Fatal(err)
	}
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if string(ja) != string(jb) {
		t.Fatalf("twin runs diverge:\n%s\n%s", ja, jb)
	}
}

// TestAvailabilityInvariantHoldsOnFallbackWorld runs the stock sweep
// configuration of the nightly fallback arm: a fallback-enabled live
// world under the availability invariant (plus the referees that are
// health-history agnostic).
func TestAvailabilityInvariantHoldsOnFallbackWorld(t *testing.T) {
	sc := StockFallbackScenario(42)
	rep, err := Run(sc, 1, 30, Options{Invariants: []string{"availability", "conserve", "providersync", "epochtick"}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Violation != nil {
		t.Fatalf("unexpected violation:\n%s", FormatReport(rep))
	}
	if rep.Checks == 0 {
		t.Fatal("no checks ran")
	}
}

// TestInvariantDocs pins the -list-invariants surface: every registered
// invariant has a one-line description.
func TestInvariantDocs(t *testing.T) {
	for _, name := range InvariantNames() {
		if InvariantDoc(name) == "" {
			t.Errorf("invariant %q has no doc line", name)
		}
	}
	if InvariantDoc("no-such") != "" {
		t.Error("unknown invariant has a doc line")
	}
}
