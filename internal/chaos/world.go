package chaos

import (
	"fmt"
	"sort"

	"github.com/evolvable-net/evolve/internal/anycast"
	"github.com/evolvable-net/evolve/internal/core"
	"github.com/evolvable-net/evolve/internal/topology"
)

// Scenario names a reproducible starting state: a fresh Network plus a
// fresh Evolution over it. Build is called once per chaos run (and once
// more per shrink probe), so it must be deterministic.
type Scenario struct {
	Name  string
	Build func() (*topology.Network, *core.Evolution, error)
}

// linkID is an order-normalized router pair, the key under which the
// World remembers original link parameters and up/down state.
type linkID struct{ a, b topology.RouterID }

func mkLinkID(a, b topology.RouterID) linkID {
	if a > b {
		a, b = b, a
	}
	return linkID{a, b}
}

// World is one live system under test: the Evolution being driven, plus
// the bookkeeping that makes every Event idempotent and replayable —
// original link latencies and inter-link specs (restores always return a
// link to its initial parameters) and the current down/registered sets
// (failing a down link or restoring an up one is a no-op, so schedule
// shrinking can delete events anywhere without desynchronizing replay).
type World struct {
	Net *topology.Network
	Evo *core.Evolution

	scenario Scenario

	intraLat   map[linkID]int64
	interSpec  map[linkID]topology.InterLink
	downIntra  map[linkID]bool
	downInter  map[linkID]bool
	registered map[topology.HostID]bool
}

// NewWorld builds the scenario and captures the initial link inventory.
func NewWorld(sc Scenario) (*World, error) {
	net, evo, err := sc.Build()
	if err != nil {
		return nil, fmt.Errorf("chaos: scenario %q: %w", sc.Name, err)
	}
	w := &World{
		Net:        net,
		Evo:        evo,
		scenario:   sc,
		intraLat:   map[linkID]int64{},
		interSpec:  map[linkID]topology.InterLink{},
		downIntra:  map[linkID]bool{},
		downInter:  map[linkID]bool{},
		registered: map[topology.HostID]bool{},
	}
	for id := 0; id < net.Intra.Len(); id++ {
		for _, e := range net.Intra.Neighbors(id) {
			if e.To <= id {
				continue
			}
			k := mkLinkID(topology.RouterID(id), topology.RouterID(e.To))
			if _, ok := w.intraLat[k]; !ok {
				w.intraLat[k] = e.Weight
			}
		}
	}
	for _, l := range net.Inter {
		w.interSpec[mkLinkID(l.From, l.To)] = l
	}
	return w, nil
}

// IntraLinks returns the initially present intra-domain links in
// deterministic order — the candidate pool for schedule generation.
func (w *World) IntraLinks() []linkID { return sortedLinks(w.intraLat) }

// InterLinks returns the initially present inter-domain links in
// deterministic order.
func (w *World) InterLinks() []linkID {
	keys := make([]linkID, 0, len(w.interSpec))
	for k := range w.interSpec {
		keys = append(keys, k)
	}
	sortLinkIDs(keys)
	return keys
}

func sortedLinks(m map[linkID]int64) []linkID {
	keys := make([]linkID, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sortLinkIDs(keys)
	return keys
}

func sortLinkIDs(keys []linkID) {
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].a != keys[j].a {
			return keys[i].a < keys[j].a
		}
		return keys[i].b < keys[j].b
	})
}

// DownIntra reports whether the intra link a–b is currently failed.
func (w *World) DownIntra(a, b topology.RouterID) bool { return w.downIntra[mkLinkID(a, b)] }

// DownInter reports whether the inter link a–b is currently failed.
func (w *World) DownInter(a, b topology.RouterID) bool { return w.downInter[mkLinkID(a, b)] }

// Registered reports whether the host currently holds a §3.3.2
// registration (as far as the schedule is concerned — the Evolution may
// be unable to advertise it this epoch, which is exactly what the oracle
// invariant checks).
func (w *World) Registered(h topology.HostID) bool { return w.registered[h] }

// RegisteredHosts returns the registered host ids in ascending order.
func (w *World) RegisteredHosts() []topology.HostID {
	out := make([]topology.HostID, 0, len(w.registered))
	for h := range w.registered {
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Apply executes one event against the live Evolution. Application is
// tolerant: events that no longer make sense in the current state
// (failing an already-down link, deploying a deployed router,
// registering a registered host) are silent no-ops. That property is
// what lets the shrinker delete arbitrary subsets of a schedule and
// still replay the remainder faithfully.
func (w *World) Apply(ev Event) {
	switch ev.Kind {
	case FailIntra:
		w.failIntra(ev)
	case RestoreIntra:
		w.restoreIntra(ev, true)
	case FailInter:
		w.failInter(ev)
	case RestoreInter:
		w.restoreInter(ev, true)
	case FlapIntra:
		w.failIntra(ev)
		w.restoreIntra(ev, true)
	case FlapInter:
		w.failInter(ev)
		w.restoreInter(ev, true)
	case DeployRouter:
		w.Evo.DeployRouter(ev.A)
	case UndeployRouter:
		w.Evo.UndeployRouter(ev.A)
	case DeployDomain:
		w.Evo.DeployDomain(ev.ASN, 0)
	case RegisterHost:
		h := w.Net.Hosts[ev.Host]
		if err := w.Evo.RegisterEndhost(h); err == nil {
			w.registered[ev.Host] = true
		}
	case UnregisterHost:
		w.Evo.UnregisterEndhost(w.Net.Hosts[ev.Host])
		delete(w.registered, ev.Host)
	case EnableProvider:
		// Tolerant like everything else: enabling an already-enabled or
		// non-participating domain is a silent no-op/error.
		_, _ = w.Evo.EnableProviderChoice(ev.ASN)
	}
}

func (w *World) failIntra(ev Event) {
	k := mkLinkID(ev.A, ev.B)
	if _, known := w.intraLat[k]; !known || w.downIntra[k] {
		return
	}
	w.Evo.FailIntraLink(ev.A, ev.B)
	w.downIntra[k] = true
}

// restoreIntra brings an intra link back at its original latency.
// reconverge selects the production path (Evolution.RestoreIntraLink,
// which invalidates IGP/BGP caches) versus the raw topology mutation —
// the latter is the deliberately seeded "skipped reconvergence" bug that
// BuggyRestoreApply uses to prove the harness catches it.
func (w *World) restoreIntra(ev Event, reconverge bool) {
	k := mkLinkID(ev.A, ev.B)
	lat, known := w.intraLat[k]
	if !known || !w.downIntra[k] {
		return
	}
	if reconverge {
		w.Evo.RestoreIntraLink(ev.A, ev.B, lat)
	} else {
		w.Net.RestoreIntraLink(ev.A, ev.B, lat)
	}
	delete(w.downIntra, k)
}

func (w *World) failInter(ev Event) {
	k := mkLinkID(ev.A, ev.B)
	if _, known := w.interSpec[k]; !known || w.downInter[k] {
		return
	}
	if _, ok := w.Evo.FailInterLink(ev.A, ev.B); ok {
		w.downInter[k] = true
	}
}

func (w *World) restoreInter(ev Event, reconverge bool) {
	k := mkLinkID(ev.A, ev.B)
	spec, known := w.interSpec[k]
	if !known || !w.downInter[k] {
		return
	}
	if reconverge {
		w.Evo.RestoreInterLink(spec)
	} else {
		w.Net.RestoreInterLink(spec)
	}
	delete(w.downInter, k)
}

// BuggyRestoreApply is an Apply variant with the reconvergence step
// deliberately skipped on restores: the topology gets the link back but
// the IGP shortest-path caches and BGP tables are never invalidated.
// This is the canonical seeded bug for validating the harness — the
// oracle-equivalence and UA invariants must catch it, and the shrinker
// must reduce the offending schedule to a fail/restore pair.
func BuggyRestoreApply(w *World, ev Event) {
	switch ev.Kind {
	case RestoreIntra:
		w.restoreIntra(ev, false)
	case RestoreInter:
		w.restoreInter(ev, false)
	case FlapIntra:
		w.failIntra(ev)
		w.restoreIntra(ev, false)
	case FlapInter:
		w.failInter(ev)
		w.restoreInter(ev, false)
	default:
		w.Apply(ev)
	}
}

// BuildOracle constructs a from-scratch Evolution over the *current*
// (mutated) topology with the same configuration, membership and
// registrations as the live one. The oracle never saw the fault
// history — it computes everything from the present state — so any
// disagreement between live and oracle behavior is a stale cache or a
// skipped reconvergence in the incremental path. The oracle shares
// w.Net but only reads it.
func (w *World) BuildOracle() (*core.Evolution, error) {
	return w.BuildOracleWith(nil)
}

// BuildOracleWith is BuildOracle with a configuration hook: mutate (when
// non-nil) edits a copy of the live configuration before the oracle is
// constructed. The availability invariant uses it to referee an
// ablation-configured live world against a fallback-enabled oracle of
// the same state.
func (w *World) BuildOracleWith(mutate func(*core.Config)) (*core.Evolution, error) {
	cfg := w.Evo.Config()
	if mutate != nil {
		mutate(&cfg)
	}
	oracle, err := core.New(w.Net, cfg)
	if err != nil {
		return nil, fmt.Errorf("chaos: oracle build: %w", err)
	}
	oracle.DeployRouters(w.Evo.Dep.Members())
	for _, asn := range w.Evo.ProviderChoices() {
		// Mirror provider choices; a domain whose members have all since
		// undeployed cannot re-enable, which is fine — providersync checks
		// the live side's membership bookkeeping, not the oracle's.
		_, _ = oracle.EnableProviderChoice(asn)
	}
	for _, hid := range w.RegisteredHosts() {
		// Best effort, mirroring the live best-effort re-registration:
		// a host whose domain is currently severed registers nothing.
		_ = oracle.RegisterEndhost(w.Net.Hosts[hid])
	}
	return oracle, nil
}

// StockScenario is the stock 15-ISP transit–stub internet the acceptance
// runs use: 3 transit domains, 4 stubs per transit (40% multihomed),
// 3 routers and 2 hosts per domain, with an option-1 deployment covering
// the first 7 domains.
func StockScenario(seed int64) Scenario {
	return stockScenario(seed, false)
}

// StockFallbackScenario is StockScenario with the core's graceful-
// degradation layer enabled (per-flow health plus universal-access
// fallback): the live arm of availability sweeps, and the twin of the
// ablation-configured StockScenario in the availbench differential.
func StockFallbackScenario(seed int64) Scenario {
	return stockScenario(seed, true)
}

func stockScenario(seed int64, fallback bool) Scenario {
	name := fmt.Sprintf("transit-stub-15/seed=%d", seed)
	if fallback {
		name = fmt.Sprintf("transit-stub-15-fallback/seed=%d", seed)
	}
	return Scenario{
		Name: name,
		Build: func() (*topology.Network, *core.Evolution, error) {
			net, err := topology.TransitStub(3, 4, 0.4, topology.GenConfig{
				Seed:             seed,
				RoutersPerDomain: 3,
				HostsPerDomain:   2,
			})
			if err != nil {
				return nil, nil, err
			}
			cfg := core.Config{Option: anycast.Option1}
			if fallback {
				cfg.Fallback = core.FallbackConfig{Enabled: true}
			}
			evo, err := core.New(net, cfg)
			if err != nil {
				return nil, nil, err
			}
			asns := net.ASNs()
			for _, asn := range asns[:7] {
				evo.DeployDomain(asn, 0)
			}
			return net, evo, nil
		},
	}
}
