package chaos

import (
	"strings"
	"testing"

	"github.com/evolvable-net/evolve/internal/topology"
)

// Fixed seeds for tier-1: small enough to stay fast under -race, varied
// enough to exercise every event kind. The nightly CI job explores fresh
// seeds; these pin the deterministic baseline.
var tier1Seeds = []int64{1, 2, 3}

func TestChaosStockTopologyHoldsInvariants(t *testing.T) {
	sc := StockScenario(42)
	for _, seed := range tier1Seeds {
		rep, err := Run(sc, seed, 30, Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if rep.Violation != nil {
			t.Fatalf("seed %d: unexpected violation:\n%s", seed, FormatReport(rep))
		}
		if rep.EventsApplied != 30 {
			t.Fatalf("seed %d: applied %d events, want 30", seed, rep.EventsApplied)
		}
		if rep.Checks == 0 {
			t.Fatalf("seed %d: no invariant checks ran", seed)
		}
	}
}

func TestChaosScheduleDeterministic(t *testing.T) {
	sc := StockScenario(42)
	w1, err := NewWorld(sc)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := NewWorld(sc)
	if err != nil {
		t.Fatal(err)
	}
	s1 := Generate(w1, 7, 40)
	s2 := Generate(w2, 7, 40)
	if len(s1) != 40 {
		t.Fatalf("generated %d events, want 40", len(s1))
	}
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("schedules diverge at %d: %s vs %s", i, s1[i], s2[i])
		}
	}
	// A different seed must not produce the same timeline.
	s3 := Generate(w1, 8, 40)
	same := true
	for i := range s1 {
		if s1[i] != s3[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 7 and 8 generated identical schedules")
	}
}

// TestChaosCatchesSkippedReconvergence is the harness self-test the
// acceptance criteria demand: with reconvergence deliberately skipped on
// link restores, the invariants must flag a violation, and the shrinker
// must reduce the schedule to a handful of events (a fail/restore pair,
// possibly with a membership event the violation depends on).
func TestChaosCatchesSkippedReconvergence(t *testing.T) {
	sc := StockScenario(42)
	opts := Options{Apply: BuggyRestoreApply, Shrink: true}
	var caught *Report
	for seed := int64(1); seed <= 10; seed++ {
		rep, err := Run(sc, seed, 40, opts)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if rep.Violation != nil {
			caught = rep
			break
		}
	}
	if caught == nil {
		t.Fatal("seeded skipped-reconvergence bug escaped 10 chaos runs")
	}
	if len(caught.Shrunk) == 0 {
		t.Fatalf("violation found but shrinking produced nothing:\n%s", FormatReport(caught))
	}
	if len(caught.Shrunk) > 5 {
		t.Fatalf("shrunk schedule has %d events, want ≤ 5:\n%s", len(caught.Shrunk), GoLiteral(caught.Shrunk))
	}
	// The minimal reproducer must actually involve a restore — that is
	// where the seeded bug lives.
	hasRestore := false
	for _, ev := range caught.Shrunk {
		switch ev.Kind {
		case RestoreIntra, RestoreInter, FlapIntra, FlapInter:
			hasRestore = true
		}
	}
	if !hasRestore {
		t.Fatalf("shrunk schedule has no restore event:\n%s", GoLiteral(caught.Shrunk))
	}
	// And replaying it must reproduce the same violation.
	rerun, err := Replay(sc, caught.Shrunk, Options{Invariants: []string{caught.Violation.Invariant}, Apply: BuggyRestoreApply})
	if err != nil {
		t.Fatal(err)
	}
	if rerun.Violation == nil {
		t.Fatalf("shrunk schedule does not reproduce the violation:\n%s", GoLiteral(caught.Shrunk))
	}
	// The emitted artifact must be a well-formed replayable literal.
	lit := GoLiteral(caught.Shrunk)
	if !strings.HasPrefix(lit, "[]chaos.Event{") || !strings.Contains(lit, "chaos.Restore") && !strings.Contains(lit, "chaos.Flap") {
		t.Fatalf("unexpected literal:\n%s", lit)
	}
}

// TestChaosHealthyRestoreNotFlagged is the control for the self-test:
// the same schedules applied through the production path must be clean,
// proving the violation above comes from the seeded bug, not the
// harness.
func TestChaosHealthyRestoreNotFlagged(t *testing.T) {
	sc := StockScenario(42)
	for seed := int64(1); seed <= 3; seed++ {
		rep, err := Run(sc, seed, 40, Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if rep.Violation != nil {
			t.Fatalf("seed %d: healthy apply flagged:\n%s", seed, FormatReport(rep))
		}
	}
}

// TestTolerantApply pins the property shrinking depends on: events that
// make no sense in the current state (restoring an up link, failing a
// down one, double registration) are silent no-ops, so any subsequence
// of a valid schedule replays without desync.
func TestTolerantApply(t *testing.T) {
	w, err := NewWorld(StockScenario(42))
	if err != nil {
		t.Fatal(err)
	}
	links := w.IntraLinks()
	if len(links) == 0 {
		t.Fatal("no intra links in stock world")
	}
	l := links[0]

	// Restore before any failure: no-op.
	w.Apply(Event{Kind: RestoreIntra, A: l.a, B: l.b})
	if w.DownIntra(l.a, l.b) {
		t.Fatal("restore of an up link marked it down")
	}
	// Double failure: second is a no-op; link stays down once.
	w.Apply(Event{Kind: FailIntra, A: l.a, B: l.b})
	w.Apply(Event{Kind: FailIntra, A: l.a, B: l.b})
	if !w.DownIntra(l.a, l.b) {
		t.Fatal("failed link not marked down")
	}
	// Restore brings back exactly the original latency (checked via the
	// topology: the edge exists again).
	w.Apply(Event{Kind: RestoreIntra, A: l.a, B: l.b})
	if w.DownIntra(l.a, l.b) {
		t.Fatal("restored link still marked down")
	}
	if !w.Net.Intra.HasEdge(int(l.a), int(l.b)) {
		t.Fatal("restored link missing from topology")
	}
	// Unknown link (not in the initial inventory): ignored entirely.
	w.Apply(Event{Kind: FailIntra, A: 0, B: topology.RouterID(len(w.Net.Routers) + 5)})

	// Registration is idempotent and unregister of an unknown host is a
	// no-op.
	h := w.Net.Hosts[0].ID
	w.Apply(Event{Kind: UnregisterHost, Host: h})
	w.Apply(Event{Kind: RegisterHost, Host: h})
	w.Apply(Event{Kind: RegisterHost, Host: h})
	if !w.Registered(h) {
		t.Fatal("host not registered after RegisterHost")
	}
	w.Apply(Event{Kind: UnregisterHost, Host: h})
	if w.Registered(h) {
		t.Fatal("host still registered after UnregisterHost")
	}
}

func TestInvariantSelection(t *testing.T) {
	invs, err := Invariants([]string{"ua", "conserve"})
	if err != nil {
		t.Fatal(err)
	}
	if len(invs) != 2 || invs[0].Name() != "ua" || invs[1].Name() != "conserve" {
		t.Fatalf("got %d invariants: %v", len(invs), invs)
	}
	if _, err := Invariants([]string{"no-such"}); err == nil {
		t.Fatal("unknown invariant accepted")
	}
	all, err := Invariants(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(InvariantNames()) {
		t.Fatalf("nil selection gave %d invariants, want %d", len(all), len(InvariantNames()))
	}
}

func TestGoLiteralRoundTrip(t *testing.T) {
	events := []Event{
		{Kind: FailIntra, A: 3, B: 7},
		{Kind: DeployDomain, ASN: 4},
		{Kind: RegisterHost, Host: 2},
		{Kind: RestoreIntra, A: 3, B: 7},
	}
	lit := GoLiteral(events)
	for _, want := range []string{"chaos.FailIntra, A: 3, B: 7", "chaos.DeployDomain, ASN: 4", "chaos.RegisterHost, Host: 2"} {
		if !strings.Contains(lit, want) {
			t.Fatalf("literal missing %q:\n%s", want, lit)
		}
	}
}
