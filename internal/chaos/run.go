package chaos

import (
	"fmt"
	"strings"

	"github.com/evolvable-net/evolve/internal/netsim"
)

// Options configures a chaos run.
type Options struct {
	// Invariants names the invariants to check (see InvariantNames);
	// empty means all of them.
	Invariants []string
	// Apply overrides event application — the hook fault-injection tests
	// use to wire in a deliberately buggy apply (BuggyRestoreApply). Nil
	// means (*World).Apply.
	Apply func(*World, Event)
	// Shrink enables schedule minimization after a violation.
	Shrink bool
}

func (o Options) apply() func(*World, Event) {
	if o.Apply != nil {
		return o.Apply
	}
	return (*World).Apply
}

// Violation is one invariant failure, pinned to the schedule position
// that triggered it.
type Violation struct {
	Invariant string
	Step      int
	Event     Event
	Detail    string
	Trace     string
}

func (v *Violation) String() string {
	return fmt.Sprintf("step %d (%s): invariant %q violated: %s", v.Step, v.Event, v.Invariant, v.Detail)
}

// Report is the outcome of one chaos run or replay.
type Report struct {
	Scenario string
	Seed     int64
	Schedule []Event
	// Violation is nil when every event passed every invariant.
	Violation *Violation
	// Shrunk is the minimized reproducing schedule (violations only,
	// and only when Options.Shrink is set).
	Shrunk []Event
	// EventsApplied counts schedule events executed (the full schedule,
	// or up to and including the violating event).
	EventsApplied int
	// Checks counts individual invariant evaluations.
	Checks int
}

// Run generates a seeded schedule against the scenario and replays it
// with invariant checking, shrinking the schedule on violation when
// opts.Shrink is set.
func Run(sc Scenario, seed int64, steps int, opts Options) (*Report, error) {
	w, err := NewWorld(sc)
	if err != nil {
		return nil, err
	}
	schedule := Generate(w, seed, steps)
	rep, err := replayWorld(w, schedule, opts)
	if err != nil {
		return nil, err
	}
	rep.Seed = seed
	if rep.Violation != nil && opts.Shrink {
		shrunk, err := Shrink(sc, schedule, rep.Violation, opts)
		if err != nil {
			return nil, err
		}
		rep.Shrunk = shrunk
	}
	return rep, nil
}

// Replay runs a fixed schedule against a fresh world — the entry point
// for re-running a shrunk reproducer emitted by a previous run.
func Replay(sc Scenario, schedule []Event, opts Options) (*Report, error) {
	w, err := NewWorld(sc)
	if err != nil {
		return nil, err
	}
	return replayWorld(w, schedule, opts)
}

// replayWorld drives the schedule through a discrete-event engine — one
// event per simulated millisecond, FIFO-ordered — applying each event
// and checking every invariant before the next fires.
func replayWorld(w *World, schedule []Event, opts Options) (*Report, error) {
	invs, err := Invariants(opts.Invariants)
	if err != nil {
		return nil, err
	}
	apply := opts.apply()
	rep := &Report{Scenario: w.scenario.Name, Schedule: schedule}
	eng := netsim.NewEngine()
	for i, ev := range schedule {
		i, ev := i, ev
		eng.At(netsim.Time(i+1)*1000, func() {
			if rep.Violation != nil {
				return
			}
			apply(w, ev)
			rep.EventsApplied++
			ctx := &CheckContext{W: w, Step: i, Event: ev}
			for _, inv := range invs {
				rep.Checks++
				if f := inv.Check(ctx); f != nil {
					rep.Violation = &Violation{
						Invariant: inv.Name(),
						Step:      i,
						Event:     ev,
						Detail:    f.Detail,
						Trace:     f.Trace,
					}
					return
				}
			}
		})
	}
	eng.Run(0)
	return rep, nil
}

// Shrink minimizes a violating schedule to a short reproducing
// subsequence: first truncate to the violating step (later events are
// irrelevant by construction), then greedily delete chunks — halving
// chunk sizes down to single events — keeping any deletion after which
// a fresh replay still violates the *same* invariant. Tolerant event
// application guarantees every candidate subsequence replays cleanly.
// The result is order-preserving and, at convergence, 1-minimal: no
// single remaining event can be removed.
func Shrink(sc Scenario, schedule []Event, v *Violation, opts Options) ([]Event, error) {
	if v == nil {
		return nil, fmt.Errorf("chaos: Shrink needs a violation to reproduce")
	}
	probe := Options{Invariants: []string{v.Invariant}, Apply: opts.Apply}
	stillFails := func(events []Event) (bool, error) {
		rep, err := Replay(sc, events, probe)
		if err != nil {
			return false, err
		}
		return rep.Violation != nil, nil
	}

	end := v.Step + 1
	if end > len(schedule) {
		end = len(schedule)
	}
	cur := append([]Event(nil), schedule[:end]...)
	if ok, err := stillFails(cur); err != nil {
		return nil, err
	} else if !ok {
		return nil, fmt.Errorf("chaos: violation of %q did not reproduce on replay; schedule is not deterministic", v.Invariant)
	}

	for chunk := len(cur) / 2; chunk >= 1; {
		removed := false
		for start := 0; start+chunk <= len(cur); {
			cand := make([]Event, 0, len(cur)-chunk)
			cand = append(cand, cur[:start]...)
			cand = append(cand, cur[start+chunk:]...)
			ok, err := stillFails(cand)
			if err != nil {
				return nil, err
			}
			if ok {
				cur = cand
				removed = true
				// Do not advance: the next chunk now starts here.
			} else {
				start += chunk
			}
		}
		if !removed || chunk == 1 {
			if chunk == 1 && !removed {
				break
			}
			chunk /= 2
			if chunk < 1 {
				chunk = 1
			}
		}
	}
	return cur, nil
}

// FormatReport renders a report for human consumption: the verdict, the
// (possibly shrunk) schedule as a replayable Go literal, and any path
// trace captured at the violation.
func FormatReport(rep *Report) string {
	var b strings.Builder
	if rep.Violation == nil {
		fmt.Fprintf(&b, "ok: scenario %s seed %d — %d events, %d invariant checks, no violations\n",
			rep.Scenario, rep.Seed, rep.EventsApplied, rep.Checks)
		return b.String()
	}
	fmt.Fprintf(&b, "VIOLATION: scenario %s seed %d\n", rep.Scenario, rep.Seed)
	fmt.Fprintf(&b, "  %s\n", rep.Violation)
	sched := rep.Shrunk
	label := "shrunk schedule"
	if sched == nil {
		sched = rep.Schedule[:rep.Violation.Step+1]
		label = "schedule prefix (shrinking disabled)"
	}
	fmt.Fprintf(&b, "\n%s (%d events), replayable via chaos.Replay:\n%s\n", label, len(sched), GoLiteral(sched))
	if rep.Violation.Trace != "" {
		fmt.Fprintf(&b, "\npath trace at violation:\n%s", rep.Violation.Trace)
	}
	return b.String()
}
