package chaos

import (
	"fmt"

	"github.com/evolvable-net/evolve/internal/topology"
)

// AvailArm tallies one arm of the availability differential.
type AvailArm struct {
	// Scenario names the arm's world.
	Scenario string `json:"scenario"`
	// Sent counts delivery attempts.
	Sent int `json:"sent"`
	// Delivered counts successful deliveries (vN or baseline).
	Delivered int `json:"delivered"`
	// Lost counts failed sends.
	Lost int `json:"lost"`
	// BaselineIntactLost counts losses on pairs whose IPv(N-1) baseline
	// was intact at send time — black holes the fallback layer is
	// contractually required to prevent.
	BaselineIntactLost int `json:"baseline_intact_lost"`
	// FallbackDeliveries counts deliveries that rode the baseline.
	FallbackDeliveries int `json:"fallback_deliveries"`
	// DeliveredFraction is Delivered / Sent.
	DeliveredFraction float64 `json:"delivered_fraction"`
}

// AvailReport is the outcome of one availability differential run: twin
// worlds over the same topology seed — one with the graceful-degradation
// layer enabled, one ablated — driven through the same generated fault
// schedule plus a forced full-undeploy outage, with ring-pair traffic
// tallied per step on both arms.
type AvailReport struct {
	// TopoSeed seeds the shared topology; Seed seeds the fault schedule.
	TopoSeed int64 `json:"topo_seed"`
	Seed     int64 `json:"seed"`
	// Steps is the number of schedule events actually applied.
	Steps int `json:"steps"`
	// PairsPerStep is the number of ring pairs exercised after each event.
	PairsPerStep int `json:"pairs_per_step"`
	// OutageStart/OutageEnd delimit the forced full-undeploy window
	// (deploy events inside it are suppressed so the deployment stays
	// dark in both arms).
	OutageStart int `json:"outage_start"`
	OutageEnd   int `json:"outage_end"`

	// Fallback is the arm with the degradation layer enabled; Ablation is
	// the fail-fast twin.
	Fallback AvailArm `json:"fallback"`
	Ablation AvailArm `json:"ablation"`

	// DegradedSteps counts steps during which the fallback arm made at
	// least one baseline delivery; FallbackWindows counts maximal runs of
	// such steps and LongestWindowSteps the longest one.
	DegradedSteps      int `json:"degraded_steps"`
	FallbackWindows    int `json:"fallback_windows"`
	LongestWindowSteps int `json:"longest_window_steps"`
	// TimeToRepairSteps is the number of steps after the outage's
	// redeploy until the fallback arm's first fully-vN step (no baseline
	// deliveries); -1 if it never fully recovered within the run.
	TimeToRepairSteps int `json:"time_to_repair_steps"`
}

// Gate validates the availability SLO differential, returning a non-nil
// error when the run disproves (or fails to prove) the degradation
// contract: the fallback arm lost a baseline-intact packet, the schedule
// never black-holed the ablation arm (so the differential shows
// nothing), or the fallback arm's delivered fraction fell below the
// ablation arm's.
func (r *AvailReport) Gate() error {
	if r.Fallback.BaselineIntactLost > 0 {
		return fmt.Errorf("fallback arm lost %d baseline-intact packet(s)", r.Fallback.BaselineIntactLost)
	}
	if r.Ablation.BaselineIntactLost == 0 {
		return fmt.Errorf("ablation arm never black-holed a baseline-intact packet; the differential proves nothing")
	}
	if r.Fallback.DeliveredFraction < r.Ablation.DeliveredFraction {
		return fmt.Errorf("fallback delivered fraction %.4f below ablation's %.4f",
			r.Fallback.DeliveredFraction, r.Ablation.DeliveredFraction)
	}
	return nil
}

// RunAvailability drives the availability differential: twin stock
// worlds over topoSeed (StockFallbackScenario vs StockScenario), one
// schedule generated from seed applied to both, plus a deterministic
// forced outage — every member undeployed for the middle sixth of the
// run, then redeployed — that Generate alone never produces (it keeps at
// least one member deployed). After every event, `pairs` ring pairs send
// on both arms and the tallies land in the report. The run itself never
// fails on SLO grounds; call Gate on the report for the pass/fail
// verdict.
func RunAvailability(topoSeed, seed int64, steps, pairs int) (*AvailReport, error) {
	wFB, err := NewWorld(StockFallbackScenario(topoSeed))
	if err != nil {
		return nil, err
	}
	wAB, err := NewWorld(StockScenario(topoSeed))
	if err != nil {
		return nil, err
	}
	schedule := Generate(wFB, seed, steps)
	n := len(schedule)
	if n == 0 {
		return nil, fmt.Errorf("chaos: availability: empty schedule for seed %d", seed)
	}
	if pairs < 1 {
		pairs = 1
	}

	outStart := n / 3
	outLen := n / 6
	if outLen < 3 {
		outLen = 3
	}
	outEnd := outStart + outLen
	if outEnd > n {
		outEnd = n
	}

	rep := &AvailReport{
		TopoSeed:          topoSeed,
		Seed:              seed,
		Steps:             n,
		PairsPerStep:      pairs,
		OutageStart:       outStart,
		OutageEnd:         outEnd,
		Fallback:          AvailArm{Scenario: wFB.scenario.Name},
		Ablation:          AvailArm{Scenario: wAB.scenario.Name},
		TimeToRepairSteps: -1,
	}

	hosts := wFB.Net.Hosts
	nh := len(hosts)
	if nh < 2 {
		return nil, fmt.Errorf("chaos: availability: need >= 2 hosts, have %d", nh)
	}
	payload := []byte("avail")
	var savedFB, savedAB []topology.RouterID
	prevFBSends := uint64(0)
	degradedAt := make([]bool, n)
	for i := 0; i < n; i++ {
		if i == outStart {
			savedFB = append([]topology.RouterID(nil), wFB.Evo.Dep.Members()...)
			savedAB = append([]topology.RouterID(nil), wAB.Evo.Dep.Members()...)
			for _, m := range savedFB {
				wFB.Evo.UndeployRouter(m)
			}
			for _, m := range savedAB {
				wAB.Evo.UndeployRouter(m)
			}
		}
		if i == outEnd {
			wFB.Evo.DeployRouters(savedFB)
			wAB.Evo.DeployRouters(savedAB)
		}
		ev := schedule[i]
		inOutage := i >= outStart && i < outEnd
		if !inOutage || (ev.Kind != DeployRouter && ev.Kind != DeployDomain) {
			wFB.Apply(ev)
			wAB.Apply(ev)
		}
		for j := 0; j < pairs; j++ {
			src := hosts[(i+j)%nh]
			dst := hosts[(i+j+1)%nh]
			if src.ID == dst.ID {
				continue
			}
			_, baseErr := wFB.Evo.Fwd.HostToHost(src, dst)
			intact := baseErr == nil
			fd, ferr := wFB.Evo.Send(src, dst, payload)
			availTally(&rep.Fallback, intact, ferr, fd.Fallback)
			_, aerr := wAB.Evo.Send(src, dst, payload)
			availTally(&rep.Ablation, intact, aerr, false)
		}
		snap := wFB.Evo.Snapshot().DeliveryFallbackSends
		degradedAt[i] = snap > prevFBSends
		prevFBSends = snap
	}

	window := 0
	for i := 0; i < n; i++ {
		if degradedAt[i] {
			rep.DegradedSteps++
			if window == 0 {
				rep.FallbackWindows++
			}
			window++
			if window > rep.LongestWindowSteps {
				rep.LongestWindowSteps = window
			}
		} else {
			window = 0
		}
	}
	for i := outEnd; i < n; i++ {
		if !degradedAt[i] {
			rep.TimeToRepairSteps = i - outEnd
			break
		}
	}
	finish := func(a *AvailArm) {
		if a.Sent > 0 {
			a.DeliveredFraction = float64(a.Delivered) / float64(a.Sent)
		}
	}
	finish(&rep.Fallback)
	finish(&rep.Ablation)
	return rep, nil
}

// availTally records one delivery attempt in an arm.
func availTally(a *AvailArm, baselineIntact bool, err error, degraded bool) {
	a.Sent++
	if err != nil {
		a.Lost++
		if baselineIntact {
			a.BaselineIntactLost++
		}
		return
	}
	a.Delivered++
	if degraded {
		a.FallbackDeliveries++
	}
}
