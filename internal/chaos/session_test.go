package chaos

import "testing"

// TestSessionChaosInvariantsHoldMidConvergence: with real session
// machinery, every seeded fault schedule — flaps straddling the hold
// timer, originations, mid-stream withdrawals, all injected while
// UPDATE traffic is in flight — keeps the transient path invariants at
// every probe and matches the batch fixpoint at quiescence.
func TestSessionChaosInvariantsHoldMidConvergence(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		rep, err := RunSessionChaos(seed, 12, 14, false)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Probes == 0 || rep.Checks == 0 {
			t.Fatalf("seed %d: probes never ran (%d probes, %d checks)", seed, rep.Probes, rep.Checks)
		}
		if rep.Events == 0 {
			t.Fatalf("seed %d: no faults injected", seed)
		}
		if !rep.Ok() {
			t.Errorf("seed %d failed:\n%s", seed, FormatSessionReport(rep))
		}
	}
}

// TestSessionChaosLegacyAblationSeesTheBug: the same schedules against
// the fire-and-forget speaker (no sessions) must fail the quiescence
// oracle — a WITHDRAW or UPDATE dropped on a downed link is permanently
// lost. This proves the harness detects the bug class the session
// machinery fixes; if legacy mode ever starts passing these seeds, the
// harness has gone blind, not the speaker correct.
func TestSessionChaosLegacyAblationSeesTheBug(t *testing.T) {
	failed := 0
	for seed := int64(1); seed <= 8; seed++ {
		rep, err := RunSessionChaos(seed, 12, 14, true)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.OracleOK {
			failed++
		}
	}
	if failed == 0 {
		t.Error("no legacy run failed the oracle — the harness can no longer see lost-message staleness")
	}
}

// TestSessionChaosDeterministic: the same seed replays to the identical
// report — the property every shrinking/repro workflow depends on.
func TestSessionChaosDeterministic(t *testing.T) {
	a, err := RunSessionChaos(5, 12, 14, false)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSessionChaos(5, 12, 14, false)
	if err != nil {
		t.Fatal(err)
	}
	if a.Updates != b.Updates || a.Withdrawals != b.Withdrawals ||
		a.Resyncs != b.Resyncs || a.Downs != b.Downs ||
		a.Probes != b.Probes || a.Checks != b.Checks || a.Events != b.Events {
		t.Errorf("replay diverged:\n%s\nvs\n%s", FormatSessionReport(a), FormatSessionReport(b))
	}
}
