// Package chaos is a deterministic, seeded fault-schedule engine for the
// evolvable-internet core: it drives an Evolution through randomized
// timelines of link failures, restores, flaps, deployment churn and
// endhost registration churn, and after every event checks a pluggable
// set of invariants — chief among them the paper's Universal Access
// requirement (§3.1), phrased as agreement between the long-lived
// incrementally-reconverged Evolution and a from-scratch oracle rebuilt
// over the identical topology state. On a violation the engine greedily
// shrinks the schedule to a minimal reproducing subsequence and emits it
// as a replayable Go literal plus a per-delivery path trace, in the
// spirit of MACEMC-style liveness-bug search over deployed-system
// schedules (PAPERS.md).
package chaos

import (
	"fmt"
	"strings"

	"github.com/evolvable-net/evolve/internal/topology"
)

// Kind identifies a fault-schedule event type.
type Kind uint8

const (
	// FailIntra takes an intra-domain link down.
	FailIntra Kind = iota
	// RestoreIntra brings a previously failed intra-domain link back at
	// its original latency.
	RestoreIntra
	// FailInter takes an inter-domain link down.
	FailInter
	// RestoreInter brings a previously failed inter-domain link back
	// with its original relationship and latency.
	RestoreInter
	// FlapIntra fails and immediately restores an intra-domain link —
	// two reconvergences in one step, ending where it started.
	FlapIntra
	// FlapInter fails and immediately restores an inter-domain link.
	FlapInter
	// DeployRouter turns one router into an IPvN router.
	DeployRouter
	// UndeployRouter withdraws one router from the deployment.
	UndeployRouter
	// DeployDomain deploys IPvN in every router of a domain.
	DeployDomain
	// RegisterHost opts a host into §3.3.2 anycast route registration.
	RegisterHost
	// UnregisterHost withdraws a host's registration.
	UnregisterHost
	// EnableProvider provisions a §2.1 provider-specific anycast address
	// for a participating domain (idempotent; a no-op for
	// non-participants).
	EnableProvider

	numKinds
)

// String returns the human-readable event-kind label.
func (k Kind) String() string {
	switch k {
	case FailIntra:
		return "fail-intra"
	case RestoreIntra:
		return "restore-intra"
	case FailInter:
		return "fail-inter"
	case RestoreInter:
		return "restore-inter"
	case FlapIntra:
		return "flap-intra"
	case FlapInter:
		return "flap-inter"
	case DeployRouter:
		return "deploy-router"
	case UndeployRouter:
		return "undeploy-router"
	case DeployDomain:
		return "deploy-domain"
	case RegisterHost:
		return "register-host"
	case UnregisterHost:
		return "unregister-host"
	case EnableProvider:
		return "enable-provider"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// GoName returns the Go identifier of the kind, for replayable literals.
func (k Kind) GoName() string {
	switch k {
	case FailIntra:
		return "FailIntra"
	case RestoreIntra:
		return "RestoreIntra"
	case FailInter:
		return "FailInter"
	case RestoreInter:
		return "RestoreInter"
	case FlapIntra:
		return "FlapIntra"
	case FlapInter:
		return "FlapInter"
	case DeployRouter:
		return "DeployRouter"
	case UndeployRouter:
		return "UndeployRouter"
	case DeployDomain:
		return "DeployDomain"
	case RegisterHost:
		return "RegisterHost"
	case UnregisterHost:
		return "UnregisterHost"
	case EnableProvider:
		return "EnableProvider"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Event is one self-contained fault-schedule step. Restore latencies and
// inter-link specs are not carried here: the World records the initial
// topology and restores links to their original parameters, which keeps
// events replayable under arbitrary subsequence shrinking.
type Event struct {
	// Kind says what happens.
	Kind Kind
	// A and B are the link endpoints for link events; A alone is the
	// subject for DeployRouter/UndeployRouter.
	A, B topology.RouterID
	// ASN is the subject domain for DeployDomain and EnableProvider.
	ASN topology.ASN
	// Host is the subject endhost for RegisterHost/UnregisterHost.
	Host topology.HostID
}

// String renders the event as a one-line log entry.
func (e Event) String() string {
	switch e.Kind {
	case FailIntra, RestoreIntra, FailInter, RestoreInter, FlapIntra, FlapInter:
		return fmt.Sprintf("%s r%d–r%d", e.Kind, e.A, e.B)
	case DeployRouter, UndeployRouter:
		return fmt.Sprintf("%s r%d", e.Kind, e.A)
	case DeployDomain, EnableProvider:
		return fmt.Sprintf("%s AS%d", e.Kind, e.ASN)
	case RegisterHost, UnregisterHost:
		return fmt.Sprintf("%s h%d", e.Kind, e.Host)
	default:
		return e.Kind.String()
	}
}

// GoLiteral renders a schedule as a compilable []chaos.Event literal —
// the replayable artifact a shrunk failing schedule is reported as.
func GoLiteral(events []Event) string {
	var b strings.Builder
	b.WriteString("[]chaos.Event{\n")
	for _, e := range events {
		fmt.Fprintf(&b, "\t{Kind: chaos.%s", e.Kind.GoName())
		switch e.Kind {
		case FailIntra, RestoreIntra, FailInter, RestoreInter, FlapIntra, FlapInter:
			fmt.Fprintf(&b, ", A: %d, B: %d", e.A, e.B)
		case DeployRouter, UndeployRouter:
			fmt.Fprintf(&b, ", A: %d", e.A)
		case DeployDomain, EnableProvider:
			fmt.Fprintf(&b, ", ASN: %d", e.ASN)
		case RegisterHost, UnregisterHost:
			fmt.Fprintf(&b, ", Host: %d", e.Host)
		}
		b.WriteString("},\n")
	}
	b.WriteString("}")
	return b.String()
}
