package vnbone

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
	"testing"

	"github.com/evolvable-net/evolve/internal/anycast"
	"github.com/evolvable-net/evolve/internal/graph"
	"github.com/evolvable-net/evolve/internal/routing/bgp"
	"github.com/evolvable-net/evolve/internal/topology"
	"github.com/evolvable-net/evolve/internal/underlay"
)

// env bundles the layers under a topology.
type env struct {
	net *topology.Network
	igp *underlay.View
	svc *anycast.Service
}

func newEnv(t *testing.T, n *topology.Network) *env {
	t.Helper()
	igp := underlay.NewView(n)
	return &env{net: n, igp: igp, svc: anycast.NewService(n, bgp.NewSystem(n), igp)}
}

// line builds domain "A" with routers in a line, cost 1 per hop.
func lineDomain(t *testing.T, nRouters int) (*env, []topology.RouterID) {
	t.Helper()
	b := topology.NewBuilder()
	dA := b.AddDomain("A")
	dB := b.AddDomain("B") // second domain so BGP/anycast have an internet
	rs := b.AddRouters(dA, nRouters)
	rb := b.AddRouter(dB, "")
	for i := 0; i+1 < nRouters; i++ {
		b.IntraLink(rs[i], rs[i+1], 1)
	}
	b.Peer(rs[0], rb, 10)
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return newEnv(t, n), rs
}

func TestIntraKClosest(t *testing.T) {
	e, rs := lineDomain(t, 5)
	dep, _ := e.svc.DeployOption1(0)
	for _, r := range rs {
		e.svc.AddMember(dep, r)
	}
	bone, err := Build(e.svc, e.igp, dep, Config{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !bone.Connected() {
		t.Fatal("bone disconnected despite repair")
	}
	// With k=1 on a line, each member links to an adjacent member;
	// repair may add more. All links must be intra.
	for _, l := range bone.Links() {
		if l.Kind != KindIntra {
			t.Errorf("unexpected %s link", l.Kind)
		}
		if l.Cost != bone.Dist(l.A, l.B) && l.Cost < bone.Dist(l.A, l.B) {
			t.Errorf("link cost inconsistent")
		}
	}
	// Bone distance along the line cannot beat the underlay.
	if d := bone.Dist(rs[0], rs[4]); d < 4 {
		t.Errorf("bone dist = %d beats underlay 4", d)
	}
}

func TestIntraPartitionRepair(t *testing.T) {
	// Two far-apart clusters inside one domain: k=1 links within
	// clusters; repair must bridge them.
	b := topology.NewBuilder()
	dA := b.AddDomain("A")
	dB := b.AddDomain("B")
	rs := b.AddRouters(dA, 6)
	rb := b.AddRouter(dB, "")
	// Cluster 1: 0-1-2 (cost 1); cluster 2: 3-4-5 (cost 1); bridge 2-3
	// cost 100.
	b.IntraLink(rs[0], rs[1], 1)
	b.IntraLink(rs[1], rs[2], 1)
	b.IntraLink(rs[3], rs[4], 1)
	b.IntraLink(rs[4], rs[5], 1)
	b.IntraLink(rs[2], rs[3], 100)
	b.Peer(rs[0], rb, 10)
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	e := newEnv(t, n)
	dep, _ := e.svc.DeployOption1(0)
	for _, r := range rs {
		e.svc.AddMember(dep, r)
	}

	// Without repair: partitioned (k=1 keeps clusters separate) — Build
	// with repair+bootstrap disabled reports components.
	bone, err := Build(e.svc, e.igp, dep, Config{K: 1, DisableRepair: true, DisableBootstrap: true})
	if err != nil {
		t.Fatal(err)
	}
	if bone.Connected() {
		t.Fatal("expected partition with repair disabled")
	}
	if got := len(bone.Components()); got != 2 {
		t.Errorf("components = %d", got)
	}

	// With repair: connected, via the cheapest cross pair (2,3).
	bone, err = Build(e.svc, e.igp, dep, Config{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !bone.Connected() {
		t.Fatal("repair failed")
	}
	found := false
	for _, l := range bone.Links() {
		if (l.A == rs[2] && l.B == rs[3]) || (l.A == rs[3] && l.B == rs[2]) {
			found = true
			if l.Cost != 100 {
				t.Errorf("bridge cost = %d", l.Cost)
			}
		}
	}
	if !found {
		t.Error("repair did not use the cheapest bridge")
	}
}

// multiDomain builds three participant domains in a provider chain plus a
// non-participant transit in the middle:
// A —prov→ B —prov→ C, everyone participates except nothing… simply:
// T provides A, B, C (star). A, B participate via peering-adjacent
// domains? For tunnels we need *adjacent* participants: make A—B peer
// directly, C connected only through non-participant T.
func multiDomain(t *testing.T) (*env, map[string][]topology.RouterID) {
	t.Helper()
	b := topology.NewBuilder()
	dT := b.AddDomain("T")
	dA := b.AddDomain("A")
	dB := b.AddDomain("B")
	dC := b.AddDomain("C")
	rT := b.AddRouters(dT, 2)
	rA := b.AddRouters(dA, 2)
	rB := b.AddRouters(dB, 2)
	rC := b.AddRouters(dC, 2)
	b.IntraLink(rT[0], rT[1], 1)
	b.IntraLink(rA[0], rA[1], 1)
	b.IntraLink(rB[0], rB[1], 1)
	b.IntraLink(rC[0], rC[1], 1)
	b.Provide(rT[0], rA[0], 10)
	b.Provide(rT[0], rB[0], 10)
	b.Provide(rT[1], rC[0], 10)
	b.Peer(rA[1], rB[1], 5)
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return newEnv(t, n), map[string][]topology.RouterID{
		"T": rT, "A": rA, "B": rB, "C": rC,
	}
}

func TestInterPeeringTunnels(t *testing.T) {
	e, rs := multiDomain(t)
	dep, _ := e.svc.DeployOption1(0)
	e.svc.AddMember(dep, rs["A"][0])
	e.svc.AddMember(dep, rs["B"][0])
	bone, err := Build(e.svc, e.igp, dep, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !bone.Connected() {
		t.Fatal("adjacent participants not connected")
	}
	var tunnels int
	for _, l := range bone.Links() {
		if l.Kind == KindTunnel {
			tunnels++
			// Tunnel cost = dist(member A0 → border A1) + 5 + dist(border
			// B1 → member B0) = 1 + 5 + 1.
			if l.Cost != 7 {
				t.Errorf("tunnel cost = %d, want 7", l.Cost)
			}
		}
	}
	if tunnels != 1 {
		t.Errorf("tunnels = %d, want 1 (A–B peering)", tunnels)
	}
}

func TestBootstrapConnectsIsolatedParticipant(t *testing.T) {
	e, rs := multiDomain(t)
	dep, _ := e.svc.DeployOption1(0)
	e.svc.AddMember(dep, rs["A"][0])
	e.svc.AddMember(dep, rs["B"][0])
	e.svc.AddMember(dep, rs["C"][0]) // C has no participant adjacency

	// Without bootstrap: C is isolated.
	bone, err := Build(e.svc, e.igp, dep, Config{DisableBootstrap: true})
	if err != nil {
		t.Fatal(err)
	}
	if bone.Connected() {
		t.Fatal("C unexpectedly connected without bootstrap")
	}

	// With bootstrap: connected through an anycast-discovered tunnel.
	bone, err = Build(e.svc, e.igp, dep, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !bone.Connected() {
		t.Fatal("bootstrap failed to connect C")
	}
	var boots int
	for _, l := range bone.Links() {
		if l.Kind == KindBootstrap {
			boots++
			if e.net.DomainOf(l.A) != e.net.DomainByName("C").ASN &&
				e.net.DomainOf(l.B) != e.net.DomainByName("C").ASN {
				t.Error("bootstrap tunnel does not involve C")
			}
		}
	}
	if boots != 1 {
		t.Errorf("bootstrap tunnels = %d", boots)
	}
}

func TestBonePathAndDist(t *testing.T) {
	e, rs := multiDomain(t)
	dep, _ := e.svc.DeployOption1(0)
	for _, d := range []string{"A", "B"} {
		for _, r := range rs[d] {
			e.svc.AddMember(dep, r)
		}
	}
	bone, err := Build(e.svc, e.igp, dep, Config{})
	if err != nil {
		t.Fatal(err)
	}
	p := bone.Path(rs["A"][0], rs["B"][0])
	if len(p) < 2 || p[0] != rs["A"][0] || p[len(p)-1] != rs["B"][0] {
		t.Errorf("path = %v", p)
	}
	if bone.Dist(rs["A"][0], rs["B"][0]) >= graph.Inf {
		t.Error("members unreachable on bone")
	}
	// Unknown member.
	if bone.Dist(rs["T"][0], rs["B"][0]) < graph.Inf {
		t.Error("non-member has bone distance")
	}
	if bone.Path(rs["T"][0], rs["B"][0]) != nil {
		t.Error("non-member has bone path")
	}
}

func TestCongruenceImprovesWithDeployment(t *testing.T) {
	// Sparse deployment: members in A and C only (tunnel detours through
	// the anycast-discovered path). Dense deployment: every domain
	// participates with direct peering tunnels. Congruence must improve
	// (decrease toward 1).
	e, rs := multiDomain(t)
	dep, _ := e.svc.DeployOption1(0)
	e.svc.AddMember(dep, rs["A"][0])
	e.svc.AddMember(dep, rs["C"][0])
	sparse, err := Build(e.svc, e.igp, dep, Config{})
	if err != nil {
		t.Fatal(err)
	}
	cSparse := sparse.Congruence()

	for _, d := range []string{"T", "A", "B", "C"} {
		for _, r := range rs[d] {
			e.svc.AddMember(dep, r)
		}
	}
	dense, err := Build(e.svc, e.igp, dep, Config{})
	if err != nil {
		t.Fatal(err)
	}
	cDense := dense.Congruence()
	if math.IsNaN(cSparse) || math.IsNaN(cDense) {
		t.Fatalf("congruence NaN: %v %v", cSparse, cDense)
	}
	if cDense > cSparse {
		t.Errorf("congruence worsened with deployment: sparse %.3f dense %.3f", cSparse, cDense)
	}
	if cDense < 1 {
		t.Errorf("congruence below 1: %v", cDense)
	}
}

func TestBlindIntraConstruction(t *testing.T) {
	// Footnote 3: domains without member discovery build a join-order
	// tree via anycast. It is always connected but less congruent than
	// the k-closest mesh.
	e, rs := lineDomain(t, 6)
	dep, _ := e.svc.DeployOption1(0)
	for _, r := range rs {
		e.svc.AddMember(dep, r)
	}
	blind, err := Build(e.svc, e.igp, dep, Config{BlindIntra: true})
	if err != nil {
		t.Fatal(err)
	}
	if !blind.Connected() {
		t.Fatal("blind tree disconnected")
	}
	// A tree over n members has exactly n−1 intra links.
	intra := 0
	for _, l := range blind.Links() {
		if l.Kind == KindIntra {
			intra++
		}
	}
	if intra != len(rs)-1 {
		t.Errorf("blind intra links = %d, want %d (tree)", intra, len(rs)-1)
	}
	// Informed construction is at least as congruent.
	informed, err := Build(e.svc, e.igp, dep, Config{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if informed.Congruence() > blind.Congruence()+1e-9 {
		t.Errorf("informed congruence %.3f worse than blind %.3f",
			informed.Congruence(), blind.Congruence())
	}
}

func TestSingleParticipantBone(t *testing.T) {
	e, rs := multiDomain(t)
	dep, _ := e.svc.DeployOption1(0)
	e.svc.AddMember(dep, rs["A"][0])
	bone, err := Build(e.svc, e.igp, dep, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !bone.Connected() || len(bone.Members()) != 1 || len(bone.Links()) != 0 {
		t.Errorf("singleton bone wrong: %d members %d links", len(bone.Members()), len(bone.Links()))
	}
}

func TestEmptyDeploymentRejected(t *testing.T) {
	e, _ := multiDomain(t)
	dep, _ := e.svc.DeployOption1(0)
	if _, err := Build(e.svc, e.igp, dep, Config{}); err == nil {
		t.Error("empty deployment accepted")
	}
}

func TestPartitionedReportedWhenBootstrapImpossible(t *testing.T) {
	// Two participants that cannot reach each other via anycast: option-1
	// with peer-only two-hop separation (peer routes don't propagate).
	b := topology.NewBuilder()
	dA := b.AddDomain("A")
	dM := b.AddDomain("M")
	dC := b.AddDomain("C")
	rA := b.AddRouter(dA, "")
	rM := b.AddRouter(dM, "")
	rC := b.AddRouter(dC, "")
	b.Peer(rA, rM, 10)
	b.Peer(rM, rC, 10)
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	e := newEnv(t, n)
	dep, _ := e.svc.DeployOption1(0)
	e.svc.AddMember(dep, rA)
	e.svc.AddMember(dep, rC)
	_, err = Build(e.svc, e.igp, dep, Config{})
	if err == nil {
		t.Error("unbridgeable partition not reported")
	}
	if !errors.Is(err, anycast.ErrNoRoute) && !errors.Is(err, ErrPartitioned) {
		t.Logf("got err = %v (acceptable variant)", err)
	}
}

// linkSet renders a bone's links as an order-normalized sorted set, for
// equality checks between incremental and from-scratch builds.
func linkSet(links []Link) string {
	parts := make([]string, len(links))
	for i, l := range links {
		a, b := l.A, l.B
		if a > b {
			a, b = b, a
		}
		parts[i] = fmt.Sprintf("r%d-r%d/%d/%v", a, b, l.Cost, l.Kind)
	}
	sort.Strings(parts)
	return strings.Join(parts, " ")
}

func TestBuildIncrementalReusesUntouchedDomains(t *testing.T) {
	b := topology.NewBuilder()
	dA := b.AddDomain("A")
	dB := b.AddDomain("B")
	ra := b.AddRouters(dA, 3)
	rb := b.AddRouters(dB, 2)
	b.IntraLink(ra[0], ra[1], 1)
	b.IntraLink(ra[1], ra[2], 1)
	b.IntraLink(rb[0], rb[1], 2)
	b.Peer(ra[0], rb[0], 5)
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	e := newEnv(t, n)
	dep, _ := e.svc.DeployOption1(0)
	for _, r := range ra {
		e.svc.AddMember(dep, r)
	}
	for _, r := range rb {
		e.svc.AddMember(dep, r)
	}
	cfg := Config{K: 2}
	prev, err := Build(e.svc, e.igp, dep, cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Nothing dirty: both multi-member domains carry their meshes over.
	next, stats, err := BuildIncremental(e.svc, e.igp, dep, cfg, prev, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.DomainsReused != 2 || stats.DomainsRebuilt != 0 {
		t.Errorf("clean rebuild stats = %+v, want 2 reused / 0 rebuilt", stats)
	}
	if got, want := linkSet(next.Links()), linkSet(prev.Links()); got != want {
		t.Errorf("clean incremental diverged:\ngot  %s\nwant %s", got, want)
	}

	// A dirty: only A's mesh recomputes, and the bone still equals a
	// from-scratch construction.
	next, stats, err = BuildIncremental(e.svc, e.igp, dep, cfg, prev, map[topology.ASN]bool{dA.ASN: true})
	if err != nil {
		t.Fatal(err)
	}
	if stats.DomainsReused != 1 || stats.DomainsRebuilt != 1 {
		t.Errorf("dirty-A stats = %+v, want 1 reused / 1 rebuilt", stats)
	}
	fresh, err := Build(e.svc, e.igp, dep, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := linkSet(next.Links()), linkSet(fresh.Links()); got != want {
		t.Errorf("dirty-A incremental diverged from scratch:\ngot  %s\nwant %s", got, want)
	}

	// Different knobs: reuse is refused even with a previous bone.
	_, stats, err = BuildIncremental(e.svc, e.igp, dep, Config{K: 1}, prev, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.DomainsReused != 0 {
		t.Errorf("knob change reused %d domains, want 0", stats.DomainsReused)
	}
}

// TestWorkersOutputIdentical asserts the sharded per-domain mesh build
// produces a byte-identical bone at 1, 4, and 16 workers, both from
// scratch and on the incremental reuse path.
func TestWorkersOutputIdentical(t *testing.T) {
	n, err := topology.TransitStub(3, 5, 0.4, topology.GenConfig{Seed: 17, RoutersPerDomain: 4, Intra: topology.IntraRandom})
	if err != nil {
		t.Fatal(err)
	}
	e := newEnv(t, n)
	dep, err := e.svc.DeployOption1(0)
	if err != nil {
		t.Fatal(err)
	}
	for _, asn := range n.ASNs() {
		for _, r := range n.Domain(asn).Routers {
			e.svc.AddMember(dep, r)
		}
	}

	build := func(workers int, prev *Bone, dirty map[topology.ASN]bool) *Bone {
		t.Helper()
		b, _, err := BuildIncremental(e.svc, e.igp, dep, Config{K: 2, Workers: workers}, prev, dirty)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return b
	}
	sameLinks := func(a, b *Bone, label string) {
		t.Helper()
		la, lb := a.Links(), b.Links()
		if len(la) != len(lb) {
			t.Fatalf("%s: %d links vs %d", label, len(la), len(lb))
		}
		for i := range la {
			if la[i] != lb[i] {
				t.Fatalf("%s: link %d differs: %+v vs %+v", label, i, la[i], lb[i])
			}
		}
	}

	serial := build(1, nil, nil)
	if len(serial.Links()) == 0 {
		t.Fatal("no links built")
	}
	for _, w := range []int{4, 16} {
		sameLinks(serial, build(w, nil, nil), fmt.Sprintf("scratch workers=%d", w))
	}

	// Incremental rebuild with one dirty domain must also be identical
	// across worker counts (and to a from-scratch build).
	dirty := map[topology.ASN]bool{n.ASNs()[0]: true}
	inc1 := build(1, serial, dirty)
	for _, w := range []int{4, 16} {
		sameLinks(inc1, build(w, serial, dirty), fmt.Sprintf("incremental workers=%d", w))
	}
	sameLinks(serial, inc1, "incremental vs scratch")
}
