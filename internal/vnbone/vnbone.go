// Package vnbone builds and maintains the multi-provider virtual IPvN
// network of §3.3.1 — the "vN-Bone" — overlaid on an internet where
// IPv(N-1) is ubiquitous:
//
//   - intra-domain: every IPvN router picks its k closest fellow members
//     (by converged-IGP distance) as virtual neighbours; the domain-global
//     knowledge that link-state routing provides makes partitions easy to
//     detect and repair, which we do with cheapest inter-component links;
//   - inter-domain: tunnels follow peering policy — one tunnel across each
//     physical inter-domain link whose two domains both participate; a
//     participant with no such adjacency bootstraps its first tunnel by
//     resolving the deployment's own anycast address (before advertising
//     it, per the paper's footnote), landing on some existing participant;
//   - as deployment spreads, the virtual topology grows congruent with
//     the physical one, which the Congruence metric quantifies.
package vnbone

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/evolvable-net/evolve/internal/anycast"
	"github.com/evolvable-net/evolve/internal/graph"
	"github.com/evolvable-net/evolve/internal/topology"
	"github.com/evolvable-net/evolve/internal/trace"
	"github.com/evolvable-net/evolve/internal/underlay"
)

// LinkKind distinguishes virtual-link flavours.
type LinkKind int

const (
	// KindIntra is an intra-domain virtual adjacency between members of
	// one participant ISP.
	KindIntra LinkKind = iota
	// KindTunnel is an inter-domain tunnel between members of two
	// participant ISPs, established along a peering link.
	KindTunnel
	// KindBootstrap is an inter-domain tunnel discovered through the
	// anycast bootstrap rather than configured peering.
	KindBootstrap
)

func (k LinkKind) String() string {
	switch k {
	case KindIntra:
		return "intra"
	case KindTunnel:
		return "tunnel"
	default:
		return "bootstrap"
	}
}

// Link is one virtual link of the vN-Bone. Cost is the underlay cost the
// virtual hop actually traverses.
type Link struct {
	A, B topology.RouterID
	Cost int64
	Kind LinkKind
}

// Config parameterises construction.
type Config struct {
	// K is the number of closest same-domain members each member adopts
	// as virtual neighbours (default 2).
	K int
	// DisableRepair skips intra-domain partition repair (for the E8
	// ablation).
	DisableRepair bool
	// DisableBootstrap skips the anycast bootstrap for isolated
	// participants (for the E8 ablation).
	DisableBootstrap bool
	// BlindIntra builds intra-domain topologies without member discovery
	// — the paper's footnote-3 alternative for domains running unmodified
	// RIP, where an IPvN router cannot enumerate its peers and instead
	// finds one via the anycast address when it joins. Each member links
	// to its closest predecessor (join order = router id), yielding a
	// tree instead of the k-closest mesh.
	BlindIntra bool
	// Trace, when non-nil, receives one KindBoneLink event per virtual
	// link the construction establishes (intra adjacency, peering
	// tunnel, or bootstrap tunnel).
	Trace trace.Tracer
	// Workers bounds the worker pool that computes per-domain intra
	// meshes. Domains are independent (intra links never leave their
	// domain), and results are merged in ParticipatingASes order, so the
	// built bone is byte-identical at any worker count. 0 or 1 runs
	// serially.
	Workers int
}

// ErrPartitioned is returned when construction finishes without a
// connected vN-Bone (only possible with repair/bootstrap disabled, or
// when bootstrap itself cannot reach another participant).
var ErrPartitioned = errors.New("vnbone: virtual network is partitioned")

// Bone is a constructed virtual network.
type Bone struct {
	net *topology.Network
	igp *underlay.View
	dep *anycast.Deployment

	members []topology.RouterID
	idx     map[topology.RouterID]int
	links   []Link
	g       *graph.Graph
	cfg     Config
	// spt is the lazily-populated SPT cache (topology.RouterID →
	// *graph.SPT). A bone is immutable once built, so lock-free lazy
	// fills are safe: concurrent Sends may duplicate a Dijkstra but
	// always agree on the result.
	spt *sync.Map
}

// BuildStats reports how much of an incremental build was carried over
// from the previous bone.
type BuildStats struct {
	// DomainsReused counts participant domains whose intra mesh was
	// copied from the previous bone; DomainsRebuilt counts those
	// recomputed from scratch. Domains with fewer than two members carry
	// no intra links and are counted in neither.
	DomainsReused, DomainsRebuilt int
}

// Build constructs the vN-Bone for a deployment's current membership
// from scratch.
func Build(svc *anycast.Service, igp *underlay.View, dep *anycast.Deployment, cfg Config) (*Bone, error) {
	b, _, err := BuildIncremental(svc, igp, dep, cfg, nil, nil)
	return b, err
}

// BuildIncremental constructs the vN-Bone, reusing the previous bone's
// per-domain intra meshes where they provably cannot have changed: a
// domain's mesh is a deterministic function of its membership, its
// intra-domain IGP distances, and the construction knobs, so any domain
// absent from dirty whose membership is unchanged keeps its links
// verbatim. Inter-domain state (peering tunnels, bootstrap tunnels,
// component bridging) is globally coupled and cheap, so it is always
// recomputed. The result is link-for-link identical to a from-scratch
// Build — the chaos harness's `bone` invariant compares exactly that.
//
// prev == nil (or a nil dirty map with a changed membership everywhere)
// degenerates to a full build. dirty marks domains whose intra topology
// changed since prev was built.
func BuildIncremental(svc *anycast.Service, igp *underlay.View, dep *anycast.Deployment, cfg Config, prev *Bone, dirty map[topology.ASN]bool) (*Bone, BuildStats, error) {
	if cfg.K <= 0 {
		cfg.K = 2
	}
	net := igp.Network()
	b := &Bone{
		net:     net,
		igp:     igp,
		dep:     dep,
		members: dep.Members(),
		idx:     map[topology.RouterID]int{},
		cfg:     cfg,
		spt:     &sync.Map{},
	}
	for i, m := range b.members {
		b.idx[m] = i
	}
	if len(b.members) == 0 {
		return nil, BuildStats{}, fmt.Errorf("vnbone: deployment %s has no members", dep.Addr)
	}

	stats := b.buildIntra(cfg, prev, dirty)
	b.buildInterPeering()
	if !cfg.DisableBootstrap {
		if err := b.bootstrapIsolated(svc); err != nil {
			return nil, stats, err
		}
	}
	b.rebuildGraph()
	if !cfg.DisableBootstrap {
		// §3.3.1's global rule: every domain ensures it is connected,
		// directly or indirectly, to the deployment's anchor (the default
		// provider for option 2). Bootstrap tunnels can land inside a
		// peripheral cluster, leaving islands; bridge each remaining
		// component to the anchor component with a configured tunnel.
		b.connectComponents()
	}
	if !b.Connected() && !cfg.DisableRepair && !cfg.DisableBootstrap {
		return nil, stats, ErrPartitioned
	}
	if cfg.Trace != nil {
		for _, l := range b.links {
			cfg.Trace.Event(trace.Event{
				Kind: trace.KindBoneLink, Router: l.A,
				AS: net.DomainOf(l.A), Cost: l.Cost,
				Detail: l.Kind.String(),
			})
		}
	}
	return b, stats, nil
}

// reusableFor reports whether prev's intra meshes were built under the
// same construction knobs, a precondition for carrying them over.
// Workers is deliberately excluded: it changes how the work is
// scheduled, never what it produces.
func (b *Bone) reusableFor(cfg Config) bool {
	return b.cfg.K == cfg.K && b.cfg.BlindIntra == cfg.BlindIntra &&
		b.cfg.DisableRepair == cfg.DisableRepair
}

func sameMembers(a, b []topology.RouterID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// connectComponents bridges every bone component to the anchor component
// (the one holding the default domain's members under option 2, otherwise
// the largest) via the cheapest underlay member pair.
func (b *Bone) connectComponents() {
	for !b.Connected() {
		comps := b.Components()
		anchorIdx := 0
		if b.dep.Option == anycast.Option2 || b.dep.Option == anycast.OptionGIA {
			for i, c := range comps {
				for _, m := range c {
					if b.net.DomainOf(m) == b.dep.DefaultAS {
						anchorIdx = i
					}
				}
			}
		} else {
			for i, c := range comps {
				if len(c) > len(comps[anchorIdx]) {
					anchorIdx = i
				}
			}
		}
		bestCost := int64(graph.Inf)
		var bestA, bestB topology.RouterID = -1, -1
		for ci, c := range comps {
			if ci == anchorIdx {
				continue
			}
			for _, x := range c {
				for _, y := range comps[anchorIdx] {
					if d := b.igp.GroundTruthDist(x, y); d < bestCost {
						bestCost, bestA, bestB = d, x, y
					}
				}
			}
		}
		if bestA < 0 {
			return // physically unreachable: leave partitioned
		}
		b.links = append(b.links, Link{A: bestA, B: bestB, Cost: bestCost, Kind: KindBootstrap})
		b.rebuildGraph()
	}
}

// buildIntra wires each participant domain's internal virtual topology,
// copying domains verbatim from prev where nothing relevant changed (see
// BuildIncremental). Per-domain meshes are independent — intra links
// never leave their domain — so they are computed on a bounded worker
// pool (cfg.Workers) and merged in ParticipatingASes order, keeping the
// link list byte-identical at any worker count.
func (b *Bone) buildIntra(cfg Config, prev *Bone, dirty map[topology.ASN]bool) BuildStats {
	asns := b.dep.ParticipatingASes()

	// Pre-index the previous bone's intra links per domain in ONE pass:
	// the old per-domain rescan of prev.links made the reuse path — the
	// path taken for almost every domain at scale — quadratic in the
	// number of participants.
	var prevIntra map[topology.ASN][]Link
	if prev != nil && prev.reusableFor(cfg) {
		prevIntra = make(map[topology.ASN][]Link)
		for _, l := range prev.links {
			if l.Kind == KindIntra {
				asn := b.net.DomainOf(l.A)
				prevIntra[asn] = append(prevIntra[asn], l)
			}
		}
	}

	type result struct {
		links           []Link
		reused, rebuilt bool
	}
	results := make([]result, len(asns))
	work := func(i int) {
		asn := asns[i]
		members := b.dep.MembersIn(asn)
		if len(members) < 2 {
			return
		}
		if prevIntra != nil && !dirty[asn] && sameMembers(prev.dep.MembersIn(asn), members) {
			// Unchanged membership, untouched intra topology, identical
			// knobs: the mesh (including any repair links) is byte-for-byte
			// what the previous build produced. prev's links were already
			// deduplicated and normalized when it was built.
			results[i] = result{links: prevIntra[asn], reused: true}
			return
		}
		results[i] = result{links: domainIntraMesh(b.igp, cfg, members), rebuilt: true}
	}

	workers := cfg.Workers
	if workers > len(asns) {
		workers = len(asns)
	}
	if workers <= 1 {
		for i := range asns {
			work(i)
		}
	} else {
		// Same claim-next-index pool as experiments.RunParallel (which
		// this package cannot import without a cycle): workers grab the
		// next unclaimed domain until none remain; results land in slot
		// order regardless of completion order.
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(asns) {
						return
					}
					work(i)
				}
			}()
		}
		wg.Wait()
	}

	var stats BuildStats
	for i := range results {
		b.links = append(b.links, results[i].links...)
		if results[i].reused {
			stats.DomainsReused++
		}
		if results[i].rebuilt {
			stats.DomainsRebuilt++
		}
	}
	return stats
}

// domainIntraMesh computes one domain's intra virtual topology from
// scratch: the k-closest mesh plus partition repair (or the blind
// join-order tree). It touches only immutable inputs — the IGP view and
// the member list — so meshes for different domains can run
// concurrently. Links are returned normalized (A < B) and deduplicated,
// in deterministic order.
func domainIntraMesh(igp *underlay.View, cfg Config, members []topology.RouterID) []Link {
	var links []Link
	type pair struct{ a, b topology.RouterID }
	have := map[pair]bool{}
	addLink := func(x, y topology.RouterID, cost int64) {
		if x == y {
			return
		}
		if y < x {
			x, y = y, x
		}
		p := pair{x, y}
		if have[p] {
			return
		}
		have[p] = true
		links = append(links, Link{A: x, B: y, Cost: cost, Kind: KindIntra})
	}

	if cfg.BlindIntra {
		// Footnote-3 construction: no member discovery. The i-th
		// joiner resolves the anycast address, which lands on its
		// closest already-present member; the resulting topology is
		// a join-order tree (always connected, never repaired —
		// there is nothing to detect partitions with).
		for i := 1; i < len(members); i++ {
			m := members[i]
			best, bestDist := members[0], igp.IntraDist(m, members[0])
			for _, o := range members[1:i] {
				if d := igp.IntraDist(m, o); d < bestDist {
					best, bestDist = o, d
				}
			}
			addLink(m, best, bestDist)
		}
		return links
	}
	// k-closest neighbour selection.
	for _, m := range members {
		type cand struct {
			id   topology.RouterID
			dist int64
		}
		var cands []cand
		for _, o := range members {
			if o == m {
				continue
			}
			cands = append(cands, cand{o, igp.IntraDist(m, o)})
		}
		sort.Slice(cands, func(i, j int) bool {
			if cands[i].dist != cands[j].dist {
				return cands[i].dist < cands[j].dist
			}
			return cands[i].id < cands[j].id
		})
		k := cfg.K
		if k > len(cands) {
			k = len(cands)
		}
		for _, c := range cands[:k] {
			addLink(m, c.id, c.dist)
		}
	}
	if cfg.DisableRepair {
		return links
	}
	// Partition repair: cheapest link across components until one.
	for {
		comp := intraComponentsOf(links, members)
		if len(comp) <= 1 {
			break
		}
		bestCost := int64(graph.Inf)
		var bestA, bestB topology.RouterID = -1, -1
		for _, x := range comp[0] {
			for ci := 1; ci < len(comp); ci++ {
				for _, y := range comp[ci] {
					if d := igp.IntraDist(x, y); d < bestCost {
						bestCost, bestA, bestB = d, x, y
					}
				}
			}
		}
		if bestA < 0 {
			break // IGP itself partitioned; nothing to do
		}
		addLink(bestA, bestB, bestCost)
	}
	return links
}

// intraComponentsOf returns the connected components of one domain's
// members under the given (domain-local) intra links.
func intraComponentsOf(links []Link, members []topology.RouterID) [][]topology.RouterID {
	local := map[topology.RouterID]int{}
	for i, m := range members {
		local[m] = i
	}
	uf := graph.NewUnionFind(len(members))
	for _, l := range links {
		ia, okA := local[l.A]
		ib, okB := local[l.B]
		if okA && okB {
			uf.Union(ia, ib)
		}
	}
	byRoot := map[int][]topology.RouterID{}
	for i, m := range members {
		r := uf.Find(i)
		byRoot[r] = append(byRoot[r], m)
	}
	roots := make([]int, 0, len(byRoot))
	for r := range byRoot {
		roots = append(roots, r)
	}
	sort.Ints(roots)
	out := make([][]topology.RouterID, 0, len(roots))
	for _, r := range roots {
		out = append(out, byRoot[r])
	}
	return out
}

// buildInterPeering establishes one tunnel across each physical
// inter-domain link whose two domains both participate, between the
// members closest to the link's two border routers.
func (b *Bone) buildInterPeering() {
	for _, l := range b.net.Inter {
		da, db := b.net.DomainOf(l.From), b.net.DomainOf(l.To)
		ma := b.dep.MembersIn(da)
		mb := b.dep.MembersIn(db)
		if len(ma) == 0 || len(mb) == 0 {
			continue
		}
		ea, ca, okA := b.igp.ClosestIn(l.From, ma)
		eb, cb, okB := b.igp.ClosestIn(l.To, mb)
		if !okA || !okB {
			continue
		}
		b.links = append(b.links, Link{
			A: ea, B: eb,
			Cost: ca + l.Latency + cb,
			Kind: KindTunnel,
		})
	}
}

// bootstrapIsolated gives every participant domain that ended up with no
// inter-domain tunnel (and is not alone in the deployment) a first tunnel
// via the anycast bootstrap.
func (b *Bone) bootstrapIsolated(svc *anycast.Service) error {
	if len(b.dep.ParticipatingASes()) < 2 {
		return nil
	}
	hasTunnel := map[topology.ASN]bool{}
	for _, l := range b.links {
		if l.Kind != KindIntra {
			hasTunnel[b.net.DomainOf(l.A)] = true
			hasTunnel[b.net.DomainOf(l.B)] = true
		}
	}
	for _, asn := range b.dep.ParticipatingASes() {
		if hasTunnel[asn] {
			continue
		}
		if (b.dep.Option == anycast.Option2 || b.dep.Option == anycast.OptionGIA) && asn == b.dep.DefaultAS {
			// The default domain is the anchor others bootstrap toward.
			continue
		}
		members := b.dep.MembersIn(asn)
		res, err := svc.Bootstrap(b.dep, asn, members[0])
		if err != nil {
			return fmt.Errorf("vnbone: bootstrap for AS%d: %w", asn, err)
		}
		b.links = append(b.links, Link{
			A: members[0], B: res.Member,
			Cost: res.Cost,
			Kind: KindBootstrap,
		})
		hasTunnel[asn] = true
		hasTunnel[b.net.DomainOf(res.Member)] = true
	}
	return nil
}

func (b *Bone) rebuildGraph() {
	b.g = graph.New(len(b.members))
	for _, l := range b.links {
		b.g.AddBiEdge(b.idx[l.A], b.idx[l.B], l.Cost)
	}
	b.spt = &sync.Map{}
}

// Members returns the bone's member routers in id order.
func (b *Bone) Members() []topology.RouterID {
	return append([]topology.RouterID(nil), b.members...)
}

// Links returns the virtual links.
func (b *Bone) Links() []Link {
	return append([]Link(nil), b.links...)
}

// Connected reports whether the bone is a single component.
func (b *Bone) Connected() bool { return b.g.Connected() }

// Components returns the member components (for the E8 ablation).
func (b *Bone) Components() [][]topology.RouterID {
	comps := b.g.Components()
	out := make([][]topology.RouterID, len(comps))
	for i, c := range comps {
		for _, x := range c {
			out[i] = append(out[i], b.members[x])
		}
	}
	return out
}

func (b *Bone) sptFrom(m topology.RouterID) (*graph.SPT, bool) {
	i, ok := b.idx[m]
	if !ok {
		return nil, false
	}
	if t, ok := b.spt.Load(m); ok {
		return t.(*graph.SPT), true
	}
	// Concurrent fills may race and both run Dijkstra; the trees are
	// equal, so last-store-wins is harmless.
	t := b.g.Dijkstra(i)
	b.spt.Store(m, t)
	return t, true
}

// Dist returns the bone-path cost between two members, or graph.Inf.
func (b *Bone) Dist(x, y topology.RouterID) int64 {
	t, ok := b.sptFrom(x)
	if !ok {
		return graph.Inf
	}
	iy, ok := b.idx[y]
	if !ok {
		return graph.Inf
	}
	return t.Dist[iy]
}

// Path returns the member-level bone path x..y, or nil.
func (b *Bone) Path(x, y topology.RouterID) []topology.RouterID {
	t, ok := b.sptFrom(x)
	if !ok {
		return nil
	}
	iy, ok := b.idx[y]
	if !ok {
		return nil
	}
	p := t.PathTo(iy)
	out := make([]topology.RouterID, len(p))
	for i, v := range p {
		out[i] = b.members[v]
	}
	return out
}

// Congruence measures how close the virtual topology hews to the physical
// one: the mean over member pairs of bone-distance divided by ground-truth
// underlay distance (≥ 1; 1 is perfectly congruent). Unreachable pairs are
// skipped; NaN is returned when no pair qualifies.
func (b *Bone) Congruence() float64 {
	var sum float64
	var n int
	for i, x := range b.members {
		for _, y := range b.members[i+1:] {
			bd := b.Dist(x, y)
			gd := b.igp.GroundTruthDist(x, y)
			if bd >= graph.Inf || gd <= 0 {
				continue
			}
			sum += float64(bd) / float64(gd)
			n++
		}
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}
