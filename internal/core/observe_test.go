package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/evolvable-net/evolve/internal/anycast"
	"github.com/evolvable-net/evolve/internal/topology"
	"github.com/evolvable-net/evolve/internal/trace"
)

// TestCountersUnderConcurrentSends drives 64 goroutines of Sends against
// one Evolution while a poller reads Snapshot() continuously: every
// counter must be monotonic across snapshots, and once the senders
// settle the totals must be exact. Meaningful under -race (the CI race
// job covers this package).
func TestCountersUnderConcurrentSends(t *testing.T) {
	n := world(t)
	e := newEvo(t, n, Config{})
	e.DeployDomain(n.DomainByName("T0").ASN, 0)
	e.DeployDomain(n.DomainByName("T1").ASN, 0)
	if err := e.Ready(); err != nil {
		t.Fatal(err)
	}
	base := e.Snapshot()
	if base.BoneRebuilds == 0 {
		t.Fatal("deployment should have counted at least one bone rebuild")
	}

	// Poll snapshots while the senders run. Each counter is read
	// atomically, so each must be monotonic; the set as a whole is not a
	// global atomic snapshot, so cross-counter identities are only
	// asserted after quiescence. The poller is running before the first
	// sender starts.
	stop := make(chan struct{})
	started := make(chan struct{})
	pollDone := make(chan error, 1)
	go func() {
		prev := base
		close(started)
		for {
			s := e.Snapshot()
			for _, c := range [][2]uint64{
				{prev.Sends, s.Sends},
				{prev.Deliveries, s.Deliveries},
				{prev.Drops, s.Drops},
				{prev.Redirects, s.Redirects},
				{prev.RedirectCacheHits, s.RedirectCacheHits},
				{prev.Encaps, s.Encaps},
				{prev.Decaps, s.Decaps},
				{prev.BoneHops, s.BoneHops},
			} {
				if c[1] < c[0] {
					pollDone <- fmt.Errorf("counter went backwards: %d then %d (%+v → %+v)", c[0], c[1], prev, s)
					return
				}
			}
			prev = s
			select {
			case <-stop:
				pollDone <- nil
				return
			default:
			}
		}
	}()
	<-started

	const senders, perSender = 64, 25
	hosts := n.Hosts
	var wg sync.WaitGroup
	var sendErr atomic.Value
	for g := 0; g < senders; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			src := hosts[g%len(hosts)]
			dst := hosts[(g+7)%len(hosts)]
			if src.ID == dst.ID {
				dst = hosts[(g+8)%len(hosts)]
			}
			for i := 0; i < perSender; i++ {
				if _, err := e.Send(src, dst, []byte{byte(g)}); err != nil {
					sendErr.Store(fmt.Errorf("sender %d: %w", g, err))
					return
				}
			}
		}()
	}

	wg.Wait()
	close(stop)
	if err := <-pollDone; err != nil {
		t.Fatal(err)
	}
	if v := sendErr.Load(); v != nil {
		t.Fatal(v)
	}

	const total = senders * perSender
	s := e.Snapshot()
	if got := s.Sends - base.Sends; got != total {
		t.Errorf("sends: got %d, want %d", got, total)
	}
	if got := s.Deliveries - base.Deliveries; got != total {
		t.Errorf("deliveries: got %d, want %d", got, total)
	}
	if s.Drops != base.Drops {
		t.Errorf("drops: got %d new, want 0 (%v)", s.Drops-base.Drops, s.DropsByReason)
	}
	if got := s.Redirects - base.Redirects; got != total {
		t.Errorf("redirects: got %d, want %d (one per send)", got, total)
	}
	// Each distinct source host misses the redirect cache at most once;
	// everything else must be a hit.
	distinctSrcs := uint64(len(hosts))
	if hits := s.RedirectCacheHits - base.RedirectCacheHits; hits < total-distinctSrcs {
		t.Errorf("cache hits: got %d, want ≥ %d", hits, total-distinctSrcs)
	}
	var ingress uint64
	for _, v := range s.IngressByAS {
		ingress += v
	}
	var baseIngress uint64
	for _, v := range base.IngressByAS {
		baseIngress += v
	}
	if got := ingress - baseIngress; got != total {
		t.Errorf("per-AS ingress load: got %d, want %d", got, total)
	}
}

// TestSendTracedSpan checks the shape of a single delivery's span: it
// opens with send, closes with deliver, and contains exactly one
// redirect (the ingress choice) and one egress decision, all stamped
// with the same sequence tag.
func TestSendTracedSpan(t *testing.T) {
	n := world(t)
	e := newEvo(t, n, Config{})
	e.DeployDomain(n.DomainByName("T0").ASN, 0)
	if err := e.Ready(); err != nil {
		t.Fatal(err)
	}
	src := n.HostsIn(n.DomainByName("S0.0").ASN)[0]
	dst := n.HostsIn(n.DomainByName("S1.1").ASN)[0]

	rec := trace.NewRecorder()
	d, err := e.SendTraced(src, dst, []byte("x"), rec)
	if err != nil {
		t.Fatal(err)
	}
	evs := rec.Events()
	if len(evs) < 4 {
		t.Fatalf("got %d events, want at least send/redirect/egress/deliver:\n%s",
			len(evs), e.FormatTrace(evs))
	}
	if evs[0].Kind != trace.KindSend {
		t.Errorf("first event is %s, want send", evs[0].Kind)
	}
	if last := evs[len(evs)-1]; last.Kind != trace.KindDeliver {
		t.Errorf("last event is %s, want deliver", last.Kind)
	}
	counts := map[trace.Kind]int{}
	hops := 0
	for _, ev := range evs {
		counts[ev.Kind]++
		if ev.Seq != evs[0].Seq {
			t.Errorf("event %s has seq %d, want %d (one span, one tag)", ev.Kind, ev.Seq, evs[0].Seq)
		}
		if ev.Kind == trace.KindBoneHop {
			hops++
		}
	}
	if counts[trace.KindRedirect] != 1 {
		t.Errorf("got %d redirect events, want exactly 1", counts[trace.KindRedirect])
	}
	if counts[trace.KindEgress] != 1 {
		t.Errorf("got %d egress events, want exactly 1", counts[trace.KindEgress])
	}
	if hops != d.VNHops {
		t.Errorf("trace shows %d bone hops, delivery accounted %d", hops, d.VNHops)
	}
	if counts[trace.KindEncap] == 0 || counts[trace.KindDecap] == 0 {
		t.Errorf("span has no tunnel events: %v", counts)
	}
}

// TestDropCounting checks that failed sends land in the drop taxonomy:
// sending before any router deploys is a not-deployed drop.
func TestDropCounting(t *testing.T) {
	n := world(t)
	e := newEvo(t, n, Config{})
	src := n.Hosts[0]
	dst := n.Hosts[len(n.Hosts)-1]
	if _, err := e.Send(src, dst, nil); err == nil {
		t.Fatal("send with no deployment should fail")
	}
	s := e.Snapshot()
	if s.Sends != 1 || s.DropsByReason[trace.DropNotDeployed] != 1 {
		t.Errorf("got sends=%d dropsByReason=%v, want 1 send and 1 not-deployed drop",
			s.Sends, s.DropsByReason)
	}
	if s.Deliveries != 0 {
		t.Errorf("got %d deliveries, want 0", s.Deliveries)
	}
}

// TestResolveCacheInvalidation ensures the redirect cache never serves a
// resolution from before a membership change: after an undeploy, cached
// ingresses pointing at the withdrawn member must not reappear.
func TestResolveCacheInvalidation(t *testing.T) {
	n := world(t)
	// Option 1: global host routes reach whichever members remain, so the
	// withdrawn domain's capture has to disappear (under option 2 the
	// trajectory would legitimately dead-end if the default ISP left).
	e := newEvo(t, n, Config{Option: anycast.Option1})
	t0 := n.DomainByName("T0")
	t1 := n.DomainByName("T1")
	e.DeployDomain(t0.ASN, 0)
	e.DeployDomain(t1.ASN, 0)
	if err := e.Ready(); err != nil {
		t.Fatal(err)
	}
	src := n.HostsIn(n.DomainByName("S0.0").ASN)[0]
	dst := n.HostsIn(n.DomainByName("S1.1").ASN)[0]

	d1, err := e.Send(src, dst, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Warm the cache, then withdraw the chosen ingress's whole domain.
	ingressAS := n.DomainOf(d1.Ingress.Member)
	var stay topology.ASN
	if ingressAS == t0.ASN {
		stay = t1.ASN
	} else {
		stay = t0.ASN
	}
	for _, r := range n.Domain(ingressAS).Routers {
		e.UndeployRouter(r)
	}
	d2, err := e.Send(src, dst, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := n.DomainOf(d2.Ingress.Member); got != stay {
		t.Errorf("after withdrawing AS%d, ingress still in AS%d (stale cache?)", ingressAS, got)
	}
}
