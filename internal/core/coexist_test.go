package core

import (
	"testing"

	"github.com/evolvable-net/evolve/internal/anycast"
	"github.com/evolvable-net/evolve/internal/topology"
)

// TestTwoGenerationsCoexist runs IPv8 and IPv9 deployments over one
// internet simultaneously — the "number of simultaneous attempts to
// deploy different IP versions" case §3.2 sizes its scalability argument
// on. Each generation has its own anycast group, bone and addressing;
// deliveries must not interfere.
func TestTwoGenerationsCoexist(t *testing.T) {
	net, err := topology.TransitStub(2, 3, 0.3, topology.GenConfig{
		Seed: 77, RoutersPerDomain: 3, HostsPerDomain: 2,
	})
	if err != nil {
		t.Fatal(err)
	}

	v8, err := New(net, Config{Version: 8, Option: anycast.Option1, Group: 0})
	if err != nil {
		t.Fatal(err)
	}
	v9, err := New(net, Config{Version: 9, Option: anycast.Option1, Group: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Different (partially overlapping) adopter sets.
	v8.DeployDomain(net.DomainByName("T0").ASN, 0)
	v9.DeployDomain(net.DomainByName("T1").ASN, 0)
	v9.DeployDomain(net.DomainByName("T0").ASN, 1)

	if v8.AnycastAddr() == v9.AnycastAddr() {
		t.Fatal("generations share an anycast address")
	}

	src := net.HostsIn(net.DomainByName("S0.0").ASN)[0]
	dst := net.HostsIn(net.DomainByName("S1.1").ASN)[0]

	d8, err := v8.Send(src, dst, []byte("over IPv8"))
	if err != nil {
		t.Fatal(err)
	}
	d9, err := v9.Send(src, dst, []byte("over IPv9"))
	if err != nil {
		t.Fatal(err)
	}
	if string(d8.Payload) != "over IPv8" || string(d9.Payload) != "over IPv9" {
		t.Errorf("payloads: %q %q", d8.Payload, d9.Payload)
	}
	// Each generation's ingress serves its own deployment.
	if !contains(v8.Dep.Members(), d8.Ingress.Member) {
		t.Error("IPv8 ingress not an IPv8 member")
	}
	if !contains(v9.Dep.Members(), d9.Ingress.Member) {
		t.Error("IPv9 ingress not an IPv9 member")
	}

	// A generation-specific failure: IPv9's sole T1 deployment leaving
	// must not disturb IPv8.
	for _, m := range v9.Dep.MembersIn(net.DomainByName("T1").ASN) {
		v9.UndeployRouter(m)
	}
	if _, err := v9.Send(src, dst, nil); err != nil {
		t.Fatalf("IPv9 delivery after shrink: %v", err)
	}
	if _, err := v8.Send(src, dst, nil); err != nil {
		t.Fatalf("IPv8 delivery disturbed by IPv9 shrink: %v", err)
	}
}

func contains(xs []topology.RouterID, x topology.RouterID) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
