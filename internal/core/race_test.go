//go:build race

package core

// raceEnabled reports that this build runs under the race detector,
// whose instrumentation adds allocations of its own.
const raceEnabled = true
