package core

import (
	"testing"
	"testing/quick"

	"github.com/evolvable-net/evolve/internal/anycast"
	"github.com/evolvable-net/evolve/internal/routing/bgpvn"
	"github.com/evolvable-net/evolve/internal/topology"
)

// TestUniversalAccessProperty is the repository's headline property:
// across random internets, random single-ISP deployments and both anycast
// options, EVERY host pair exchanges IPvN packets. This is the paper's
// central requirement quantified as an invariant.
func TestUniversalAccessProperty(t *testing.T) {
	f := func(seed int64) bool {
		nT := 2 + int(uint64(seed)%2)
		nS := 2 + int(uint64(seed)%3)
		net, err := topology.TransitStub(nT, nS, 0.4, topology.GenConfig{
			Seed: seed, RoutersPerDomain: 2, HostsPerDomain: 1,
		})
		if err != nil {
			return false
		}
		asns := net.ASNs()
		deployer := asns[int(uint64(seed)>>8)%len(asns)]
		for _, opt := range []anycast.Option{anycast.Option1, anycast.Option2} {
			evo, err := New(net, Config{Option: opt, DefaultAS: deployer})
			if err != nil {
				return false
			}
			evo.DeployDomain(deployer, 0)
			_, failures, err := evo.StretchSample(60)
			if err != nil || failures > 0 {
				t.Logf("seed %d opt %d deployer %d: err=%v failures=%d",
					seed, opt, deployer, err, failures)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestPayloadIntegrityProperty: arbitrary payloads survive the full
// encapsulation pipeline bit-for-bit.
func TestPayloadIntegrityProperty(t *testing.T) {
	net, err := topology.TransitStub(2, 2, 0.3, topology.GenConfig{
		Seed: 3, RoutersPerDomain: 2, HostsPerDomain: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	evo, err := New(net, Config{Option: anycast.Option1, Egress: bgpvn.ProxyInformed})
	if err != nil {
		t.Fatal(err)
	}
	evo.DeployDomain(net.DomainByName("T0").ASN, 0)
	src, dst := net.Hosts[0], net.Hosts[len(net.Hosts)-1]

	f := func(payload []byte) bool {
		if len(payload) > 60000 {
			payload = payload[:60000]
		}
		d, err := evo.Send(src, dst, payload)
		if err != nil {
			return false
		}
		if len(d.Payload) != len(payload) {
			return false
		}
		for i := range payload {
			if d.Payload[i] != payload[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestCostDecompositionProperty: TotalCost is exactly the sum of its
// three legs for every delivery — the accounting never drifts.
func TestCostDecompositionProperty(t *testing.T) {
	f := func(seed int64) bool {
		net, err := topology.TransitStub(2, 2, 0.5, topology.GenConfig{
			Seed: seed, RoutersPerDomain: 2, HostsPerDomain: 1,
		})
		if err != nil {
			return false
		}
		evo, err := New(net, Config{Option: anycast.Option2, DefaultAS: net.ASNs()[0]})
		if err != nil {
			return false
		}
		evo.DeployDomain(net.ASNs()[0], 0)
		evo.DeployDomain(net.ASNs()[2], 0)
		for _, src := range net.Hosts[:3] {
			for _, dst := range net.Hosts[len(net.Hosts)-3:] {
				if src.ID == dst.ID {
					continue
				}
				d, err := evo.Send(src, dst, nil)
				if err != nil {
					return false
				}
				if d.TotalCost != d.Ingress.Cost+d.Egress.BoneCost+d.TailCost {
					t.Logf("seed %d: %d != %d+%d+%d", seed,
						d.TotalCost, d.Ingress.Cost, d.Egress.BoneCost, d.TailCost)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestDescribeDelivery(t *testing.T) {
	net, err := topology.TransitStub(2, 2, 0.3, topology.GenConfig{
		Seed: 3, RoutersPerDomain: 2, HostsPerDomain: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	evo, err := New(net, Config{Option: anycast.Option1})
	if err != nil {
		t.Fatal(err)
	}
	evo.DeployDomain(net.DomainByName("T0").ASN, 0)
	evo.DeployDomain(net.DomainByName("T1").ASN, 0)
	d, err := evo.Send(net.Hosts[0], net.Hosts[len(net.Hosts)-1], nil)
	if err != nil {
		t.Fatal(err)
	}
	out := evo.DescribeDelivery(d)
	for _, want := range []string{"anycast leg", "vN-Bone leg", "tail leg", "total"} {
		if !containsStr(out, want) {
			t.Errorf("Describe missing %q:\n%s", want, out)
		}
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
