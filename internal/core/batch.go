package core

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand/v2"
	"sync"

	"github.com/evolvable-net/evolve/internal/addr"
	"github.com/evolvable-net/evolve/internal/metrics"
	"github.com/evolvable-net/evolve/internal/packet"
	"github.com/evolvable-net/evolve/internal/topology"
	"github.com/evolvable-net/evolve/internal/trace"
	"github.com/evolvable-net/evolve/internal/tunnel"
)

// redirectCounter abstracts the Redirect tally so the flow-resolution
// path can count into the shared striped Counters (loop sends) or a
// per-batch CounterBatch accumulator (batched sends) without branching.
// Both implementations are pointer receivers, so passing either through
// the interface allocates nothing.
type redirectCounter interface {
	// Redirect counts one anycast redirect resolution; hit reports
	// whether it was served from the redirect cache.
	Redirect(hit bool)
}

// BatchError reports the per-packet failures of a SendBatch, SendBurst
// or their Append variants. One bad destination never poisons the rest
// of the burst: every other packet is still delivered (its Delivery is
// in the returned slice), and the failed indexes carry a zero Delivery
// plus their error here. Test with errors.As:
//
//	var be *core.BatchError
//	if errors.As(err, &be) { ... be.Errs[i] ... }
type BatchError struct {
	// Errs has one entry per packet of the batch, in input order; nil
	// entries were delivered. Each non-nil entry is exactly the error
	// the equivalent single Send would have returned.
	Errs []error
	// Failed is the number of non-nil entries in Errs.
	Failed int
}

// Error summarizes the batch outcome with the first per-packet error.
func (b *BatchError) Error() string {
	for _, err := range b.Errs {
		if err != nil {
			return fmt.Sprintf("core: batch: %d of %d packets dropped (first: %v)", b.Failed, len(b.Errs), err)
		}
	}
	return fmt.Sprintf("core: batch: %d of %d packets dropped", b.Failed, len(b.Errs))
}

// batchFlow is one flow skeleton materialized for a batch: the memoised
// routing decisions (fe) plus the wire-level precomputation the loop
// path redoes per packet — the serialized header template and the
// underlay loopback of every bone hop. All packets of the batch to the
// same destination reuse one batchFlow, so the whole burst observes one
// consistent routing decision even if the epoch churns mid-batch.
type batchFlow struct {
	dst  topology.HostID
	fe   *flowEntry
	tmpl packet.VNTemplate
	// hops[0] is the ingress member's loopback; hops[1:] follow
	// fe.eg.BonePath[1:]. The relay pass walks it with ForwardShared.
	hops []addr.V4
	// final is the leg-3 outer destination (the destination host's
	// underlay address in both the self-addressed and native cases);
	// self distinguishes the two for drop-error fidelity.
	final addr.V4
	self  bool
}

// batchCtx is the pooled per-batch working set: one walking tunnel
// endpoint for the relay pass, one destination endpoint for the final
// decap, the reusable wire buffer the header template emits into, the
// per-batch counter accumulator and event buffer, and the flow table.
// With the pool warm, a steady-state all-success batch allocates
// nothing.
type batchCtx struct {
	ep    *tunnel.Endpoint
	epDst *tunnel.Endpoint
	wire  []byte
	opts  []packet.Option
	// flows is a tiny linear-scan assoc array keyed by destination:
	// bursts group naturally by flow, so for realistic batch sizes a
	// scan beats hashing and keeps recycled entries' template and hop
	// storage alive across batches.
	flows    []batchFlow
	counters trace.CounterBatch
	events   trace.EventBuffer
	// hdrOpts, underBuf and tagBuf build each flow's template options
	// (OptUnderlayDst for self-addressed destinations, OptTraceTag
	// placeholder patched per packet); markBuf holds the OptFallback
	// marker byte of baseline deliveries.
	hdrOpts  [2]packet.Option
	underBuf [4]byte
	tagBuf   [4]byte
	markBuf  [1]byte
}

var batchCtxPool = sync.Pool{
	New: func() any {
		return &batchCtx{
			ep:    tunnel.NewEndpoint(0),
			epDst: tunnel.NewEndpoint(0),
			wire:  make([]byte, 0, 512),
			opts:  make([]packet.Option, 0, 8),
		}
	},
}

// reset readies a pooled context for the next batch, keeping every
// backing array (flow templates and hop lists included).
func (bc *batchCtx) reset() {
	bc.flows = bc.flows[:0]
	bc.counters.Reset()
}

// flowFor returns the batch's flow skeleton for dst, materializing it
// from fe on first sight: header template (serialized once through the
// real layer serializers, then patched per packet) and the bone path's
// loopback addresses. Recycled entries keep their storage, so a warm
// context materializes flows without allocating.
func (bc *batchCtx) flowFor(e *Evolution, ep *routingEpoch, src, dst *topology.Host, fe *flowEntry) (*batchFlow, error) {
	for i := range bc.flows {
		if bc.flows[i].dst == dst.ID {
			return &bc.flows[i], nil
		}
	}
	if len(bc.flows) < cap(bc.flows) {
		bc.flows = bc.flows[:len(bc.flows)+1]
	} else {
		bc.flows = append(bc.flows, batchFlow{})
	}
	bf := &bc.flows[len(bc.flows)-1]
	bf.dst = dst.ID
	bf.fe = fe
	bf.self = fe.dstVN.IsSelf()
	bf.final = dst.Addr

	// The template freezes the packet as it leaves leg 1: the inner hop
	// limit already decremented once by the source's encapsulation, the
	// outer addressed from the source host to the deployment's anycast
	// address.
	hdr := packet.VNHeader{
		Version:  e.cfg.Version,
		HopLimit: packet.DefaultHopLimit - 1,
		Src:      fe.srcVN,
		Dst:      fe.dstVN,
	}
	opts := bc.hdrOpts[:0]
	if bf.self {
		binary.BigEndian.PutUint32(bc.underBuf[:], uint32(dst.Addr))
		opts = append(opts, packet.Option{Type: packet.OptUnderlayDst, Value: bc.underBuf[:]})
	}
	bc.tagBuf = [4]byte{}
	opts = append(opts, packet.Option{Type: packet.OptTraceTag, Value: bc.tagBuf[:]})
	hdr.Options = opts
	outer := packet.V4Header{Proto: packet.ProtoVNEncap, Src: src.Addr, Dst: ep.dep.Addr}
	if err := bf.tmpl.Build(outer, hdr); err != nil {
		bc.flows = bc.flows[:len(bc.flows)-1]
		return nil, err
	}

	hops := append(bf.hops[:0], e.Net.Router(fe.ing.Member).Loopback)
	for j := 1; j < len(fe.eg.BonePath); j++ {
		hops = append(hops, e.Net.Router(fe.eg.BonePath[j]).Loopback)
	}
	bf.hops = hops
	return bf, nil
}

// SendBatch delivers one payload to each destination from a single
// source, amortizing the per-send fixed costs — epoch load, flow lookup,
// header serialization — across the burst. It is observationally
// identical to calling Send(src, dsts[i], payloads[i]) for each i in
// order on one routing epoch: byte-identical deliveries, identical drop
// reasons and counter tallies, identical trace events (batched into the
// tracer at the end of the burst). payloads may be nil (every packet
// then carries an empty payload); otherwise it must match dsts in
// length. A failed packet never poisons the rest: the error is a
// *BatchError carrying per-packet errors, and every other index's
// Delivery is valid. When the deployment has no usable epoch at all the
// error is that epoch error (every packet would have failed identically).
func (e *Evolution) SendBatch(src *topology.Host, dsts []*topology.Host, payloads [][]byte) ([]Delivery, error) {
	return e.AppendSendBatch(nil, src, dsts, payloads)
}

// AppendSendBatch is SendBatch appending into out, the allocation-free
// form: with out's capacity sufficient and the batch all-success, a
// steady-state call allocates nothing. It returns the extended slice
// (one Delivery per destination, zero at failed indexes). On a non-nil
// plain error (argument mismatch, unusable epoch) out is returned
// unextended.
func (e *Evolution) AppendSendBatch(out []Delivery, src *topology.Host, dsts []*topology.Host, payloads [][]byte) ([]Delivery, error) {
	if payloads != nil && len(payloads) != len(dsts) {
		return out, fmt.Errorf("core: batch: %d payloads for %d destinations", len(payloads), len(dsts))
	}
	return e.sendBatch(out, src, dsts, nil, payloads, len(dsts), e.tracerNow())
}

// SendBurst delivers every payload to one destination — the
// single-destination batch, with no destination slice to materialize.
// Same contract as SendBatch.
func (e *Evolution) SendBurst(src, dst *topology.Host, payloads [][]byte) ([]Delivery, error) {
	return e.AppendSendBurst(nil, src, dst, payloads)
}

// AppendSendBurst is SendBurst appending into out; see AppendSendBatch
// for the allocation contract.
func (e *Evolution) AppendSendBurst(out []Delivery, src, dst *topology.Host, payloads [][]byte) ([]Delivery, error) {
	return e.sendBatch(out, src, nil, dst, payloads, len(payloads), e.tracerNow())
}

// growDeliveries extends out by n zeroed entries, in place when the
// capacity is already there.
func growDeliveries(out []Delivery, n int) []Delivery {
	base := len(out)
	if cap(out)-base >= n {
		out = out[:base+n]
		clear(out[base:])
		return out
	}
	return append(out, make([]Delivery, n)...)
}

// sendBatch is the shared batch engine: dsts per-packet destinations, or
// dst1 for every packet when dsts is nil. It loads one routing epoch and
// runs the whole burst against it — a mutation mid-batch never tears the
// batch across epochs (later packets just lose cache-store eligibility,
// exactly like a loop send racing the same mutation).
func (e *Evolution) sendBatch(out []Delivery, src *topology.Host, dsts []*topology.Host, dst1 *topology.Host, payloads [][]byte, n int, tr trace.Tracer) ([]Delivery, error) {
	if n == 0 {
		return out, nil
	}
	ep := e.epoch.Load()
	if ep.err != nil {
		if e.health != nil {
			// The graceful-degradation layer turns an error epoch from a
			// whole-batch failure into per-packet baseline deliveries.
			return e.sendBatchErrEpoch(out, ep, src, dsts, dst1, payloads, n, tr)
		}
		// Each packet fails exactly as its loop Send would: counted as a
		// send dropped not-deployed, no span events.
		var cb trace.CounterBatch
		for i := 0; i < n; i++ {
			cb.Send()
			cb.Drop(trace.DropNotDeployed)
		}
		cb.BatchPackets(n)
		cb.FlushTo(&e.counters)
		return out, ep.err
	}

	base := len(out)
	out = growDeliveries(out, n)
	bc := batchCtxPool.Get().(*batchCtx)
	bc.reset()
	var btr trace.Tracer
	if tr != nil {
		btr = &bc.events
	}

	var errs []error
	failed := 0
	dst := dst1
	var pl []byte
	for i := 0; i < n; i++ {
		if e.testBatchHook != nil {
			e.testBatchHook(i)
		}
		if dsts != nil {
			dst = dsts[i]
		}
		if payloads != nil {
			pl = payloads[i]
		}
		d, err := e.sendBatchOne(bc, ep, src, dst, pl, btr)
		if err != nil {
			if errs == nil {
				errs = make([]error, n)
			}
			errs[i] = err
			failed++
			continue
		}
		out[base+i] = d
	}

	bc.counters.BatchFlows(len(bc.flows))
	bc.counters.BatchPackets(n)
	bc.counters.FlushTo(&e.counters)
	bc.events.Flush(tr)
	batchCtxPool.Put(bc)

	if failed > 0 {
		return out, &BatchError{Errs: errs, Failed: failed}
	}
	return out, nil
}

// dropBatch closes one batched packet as a failure, mirroring dropSend:
// counted under its reason into the batch accumulator, traced as a
// KindDrop event when tracing.
func dropBatch(cb *trace.CounterBatch, btr trace.Tracer, seq uint32, reason trace.DropReason, err error) (Delivery, error) {
	cb.Drop(reason)
	if btr != nil {
		btr.Event(trace.Event{Kind: trace.KindDrop, Seq: seq, Router: -1, Reason: reason})
	}
	return Delivery{}, err
}

// sendBatchOne runs one packet of a batch. It is the batched mirror of
// send(): it opens the span (send tally, per-delivery tag) and hands off
// to the vN path — directly when the graceful-degradation layer is off,
// through the flow's health decision when it is on, mirroring
// sendWithHealth tallied into the batch accumulator.
func (e *Evolution) sendBatchOne(bc *batchCtx, ep *routingEpoch, src, dst *topology.Host, payload []byte, btr trace.Tracer) (Delivery, error) {
	cb := &bc.counters
	cb.Send()
	seq := rand.Uint32()
	if btr != nil {
		btr.Event(trace.Event{Kind: trace.KindSend, Seq: seq, Router: src.Attach, AS: src.Domain})
	}
	if e.health == nil {
		d, _, reason, err := e.sendBatchOneVN(bc, ep, src, dst, payload, btr, seq)
		if err != nil {
			return dropBatch(cb, btr, seq, reason, err)
		}
		return d, nil
	}
	fc := &e.cfg.Fallback
	h := e.health.get(flowKey{src: src.ID, dst: dst.ID, dep: ep.dep.Addr})
	attempt, probe := h.decide(ep.seq, fc, ep.addrs.addrOf(dst), cb)
	if attempt {
		d, fe, reason, err := e.sendBatchOneVN(bc, ep, src, dst, payload, btr, seq)
		if err == nil {
			h.noteSuccess(fe, probe, fc, cb, btr, seq)
			return d, nil
		}
		if reason == trace.DropNoBaseline {
			// Nothing to rescue over, and nothing learned about the vN path.
			return dropBatch(cb, btr, seq, reason, err)
		}
		h.noteFailure(fe, ep.seq, fc, cb, btr, seq)
		d, dropReason, ferr := e.deliverFallback(ep, h, src, dst, payload,
			seq, reason, trace.DetailFallbackRescue, packet.FallbackMarkRescue,
			btr, cb, bc.ep, bc.epDst, bc.opts[:0], bc.hdrOpts[:0], bc.markBuf[:], bc.tagBuf[:])
		if ferr != nil {
			return dropBatch(cb, btr, seq, dropReason, ferr)
		}
		return d, nil
	}
	d, dropReason, ferr := e.deliverFallback(ep, h, src, dst, payload,
		seq, trace.DropNone, trace.DetailFallbackState, packet.FallbackMarkState,
		btr, cb, bc.ep, bc.epDst, bc.opts[:0], bc.hdrOpts[:0], bc.markBuf[:], bc.tagBuf[:])
	if ferr != nil {
		return dropBatch(cb, btr, seq, dropReason, ferr)
	}
	return d, nil
}

// sendBatchOneVN runs the vN delivery of one batched packet: same flow
// resolution as the loop path (epoch flow cache, computeFlow, gated
// stores), same counter tallies (via the batch accumulator), same span
// events in the same order (via the batch event buffer), same drop
// taxonomy and error wrapping — but the wire pass emits from the flow's
// header template and patches the packet in place per leg instead of
// re-serializing and re-parsing at every hop. Like sendVN, failures are
// returned with their drop reason neither counted nor traced, and the
// returned flowEntry feeds the health layer's signal matching.
func (e *Evolution) sendBatchOneVN(bc *batchCtx, ep *routingEpoch, src, dst *topology.Host, payload []byte, btr trace.Tracer, seq uint32) (Delivery, *flowEntry, trace.DropReason, error) {
	cb := &bc.counters
	fk := flowKey{src: src.ID, dst: dst.ID, dep: ep.dep.Addr}
	var fe *flowEntry
	if !e.cfg.DisableDeliveryCache {
		fe, _ = ep.flow.load(fk)
	}
	if fe != nil {
		cb.FlowHit()
		cb.Redirect(true)
	} else {
		cb.FlowMiss()
		var reason trace.DropReason
		var err error
		fe, reason, err = e.computeFlow(ep, src, dst, ep.dep, cb)
		if err != nil {
			return Delivery{}, nil, reason, err
		}
		if !e.cfg.DisableDeliveryCache && e.mutSeq.Load() == ep.seq {
			ep.flow.store(fk, fe)
		}
	}

	bf, err := bc.flowFor(e, ep, src, dst, fe)
	if err != nil {
		return Delivery{}, fe, trace.DropEncap, err
	}
	// All wire-level state comes from the batch's first skeleton for
	// this destination — within one epoch any recomputation agrees with
	// it, so this is a no-op beyond pointer identity.
	fe = bf.fe
	cb.Ingress(fe.ingressAS)
	cb.BoneHops(fe.vnHops)

	d := Delivery{
		SrcVN:        fe.srcVN,
		DstVN:        fe.dstVN,
		Ingress:      fe.ing,
		Egress:       fe.eg,
		VNHops:       fe.vnHops,
		TailCost:     fe.tailCost,
		TailPath:     fe.tailPath,
		BaselineCost: fe.baseline,
	}
	d.TotalCost = fe.ing.Cost + fe.eg.BoneCost + fe.tailCost
	d.Stretch = metrics.Stretch(d.TotalCost, d.BaselineCost)

	// Leg 1 — emit from the template: header prefix plus payload, with
	// lengths, trace tag and checksum patched. Byte-identical to the
	// loop path's serialization, including its overflow errors.
	wire, err := bf.tmpl.Emit(bc.wire, payload, seq)
	if err != nil {
		return Delivery{}, fe, trace.DropEncap, err
	}
	bc.wire = wire
	cb.Encap()
	if btr != nil {
		btr.Event(trace.Event{
			Kind: trace.KindEncap, Seq: seq, Router: -1,
			Src: src.Addr, Dst: ep.dep.Addr,
		})
		btr.Event(trace.Event{
			Kind: trace.KindRedirect, Seq: seq,
			Router: fe.ing.Member, AS: fe.ingressAS, Cost: fe.ing.Cost,
		})
		// The ingress decap is validity-checked by construction (the
		// template's outer destination is the anycast address), so like
		// the loop path it is neither counted nor traced.
		btr.Event(trace.Event{
			Kind: trace.KindEgress, Seq: seq,
			Router: fe.eg.Member, AS: e.Net.DomainOf(fe.eg.Member),
			Cost: fe.eg.BoneCost, Detail: fe.egDetail,
		})
	}

	// Leg 2 — walk the bone path in place: each ForwardShared is one
	// complete relay hop (re-encapsulation toward the next loopback plus
	// arrival accounting), byte- and event-identical to the loop's
	// ping-pong encap/decap pair.
	bc.ep.Local = bf.hops[0]
	bc.ep.Observe(btr, nil, seq)
	path := fe.eg.BonePath
	for j := 1; j < len(bf.hops); j++ {
		if err := bc.ep.ForwardShared(wire, bf.hops[j]); err != nil {
			return Delivery{}, fe, trace.DropRelay, fmt.Errorf("core: bone relay %d: %w", j, err)
		}
		cb.Encap()
		cb.Decap()
		if btr != nil {
			hop := path[j]
			btr.Event(trace.Event{
				Kind: trace.KindBoneHop, Seq: seq,
				Router: hop, AS: e.Net.DomainOf(hop),
				Cost: ep.bone.Dist(path[j-1], hop),
			})
		}
	}

	// Leg 3 — exit toward the destination host's underlay address.
	if err := bc.ep.PatchEncap(wire, bf.final); err != nil {
		if bf.self {
			return Delivery{}, fe, trace.DropTail, fmt.Errorf("core: final tunnel: %w", err)
		}
		return Delivery{}, fe, trace.DropTail, fmt.Errorf("core: native delivery encap: %w", err)
	}
	cb.Encap()

	bc.epDst.Local = dst.Addr
	bc.epDst.Observe(btr, nil, seq)
	_, inner, rpl, err := bc.epDst.DecapShared(wire, bc.opts[:0])
	if err != nil {
		return Delivery{}, fe, trace.DropTail, fmt.Errorf("core: final decap: %w", err)
	}
	cb.Decap()
	if inner.Options != nil {
		bc.opts = inner.Options[:0]
	}

	// The trace tag must have survived the whole wire path.
	for _, o := range inner.Options {
		if o.Type == packet.OptTraceTag && len(o.Value) == 4 {
			d.TraceTag = binary.BigEndian.Uint32(o.Value)
		}
	}
	if d.TraceTag != seq {
		return Delivery{}, fe, trace.DropIntegrity, fmt.Errorf("core: trace tag corrupted in transit (%d != %d)", d.TraceTag, seq)
	}
	if !bytes.Equal(rpl, payload) {
		return Delivery{}, fe, trace.DropIntegrity, fmt.Errorf("core: payload corrupted in transit")
	}
	d.Payload = payload
	cb.PayloadBytes(len(payload))
	cb.Deliver()
	if btr != nil {
		btr.Event(trace.Event{
			Kind: trace.KindDeliver, Seq: seq,
			Router: dst.Attach, AS: dst.Domain, Cost: d.TotalCost,
		})
	}
	return d, fe, trace.DropNone, nil
}
