package core

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"github.com/evolvable-net/evolve/internal/topology"
)

// TestTraceTagInterleavedSends is the regression test for the trace-tag
// race: the check used to compare each delivery's tag against the shared
// e.sendSeq, so a second send stamping between another send's stamp and
// check reported a spurious "trace tag corrupted in transit". The tag now
// travels with the delivery; interleaved sends must all verify.
func TestTraceTagInterleavedSends(t *testing.T) {
	n := world(t)
	e := newEvo(t, n, Config{})
	e.DeployDomain(n.DomainByName("T0").ASN, 0)
	src := n.HostsIn(n.DomainByName("S0.0").ASN)[0]
	dst := n.HostsIn(n.DomainByName("S1.1").ASN)[0]
	if err := e.Ready(); err != nil {
		t.Fatal(err)
	}

	const perSender = 200
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perSender; i++ {
				if _, err := e.Send(src, dst, nil); err != nil {
					errs[g] = err
					return
				}
			}
		}()
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("sender %d: %v", g, err)
		}
	}
}

// TestConcurrentSendsWithChurn drives ≥64 concurrent Sends against one
// Evolution while another goroutine churns membership (Deploy/Undeploy)
// — the tentpole guarantee, meaningful under -race.
func TestConcurrentSendsWithChurn(t *testing.T) {
	n := world(t)
	e := newEvo(t, n, Config{})
	def := n.DomainByName("T0")
	e.DeployDomain(def.ASN, 0)
	e.DeployDomain(n.DomainByName("T1").ASN, 0)
	if err := e.Ready(); err != nil {
		t.Fatal(err)
	}

	hosts := n.Hosts
	const senders = 64
	var wg sync.WaitGroup
	errCh := make(chan error, senders)
	for g := 0; g < senders; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			src := hosts[g%len(hosts)]
			dst := hosts[(g+7)%len(hosts)]
			if src.ID == dst.ID {
				dst = hosts[(g+8)%len(hosts)]
			}
			for i := 0; i < 20; i++ {
				d, err := e.Send(src, dst, []byte{byte(g), byte(i)})
				if err != nil {
					// Membership churn can transiently break a route; only
					// corruption or lock bugs are fatal.
					if errors.Is(err, ErrNotDeployed) {
						continue
					}
					errCh <- fmt.Errorf("sender %d: %w", g, err)
					return
				}
				if len(d.Payload) != 2 || d.Payload[0] != byte(g) || d.Payload[1] != byte(i) {
					errCh <- fmt.Errorf("sender %d: payload corrupted: %v", g, d.Payload)
					return
				}
			}
		}()
	}

	// Churn: a stub repeatedly joins and leaves the deployment while the
	// senders run. The default transits stay deployed so routes exist.
	churnDone := make(chan struct{})
	go func() {
		defer close(churnDone)
		stub := n.DomainByName("S0.1")
		for i := 0; i < 50; i++ {
			e.DeployDomain(stub.ASN, 0)
			for _, r := range stub.Routers {
				e.UndeployRouter(r)
			}
		}
	}()

	wg.Wait()
	<-churnDone
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

// TestStretchSampleParallelDeterministic: the sample must be identical at
// any worker count, in the same pair order.
func TestStretchSampleParallelDeterministic(t *testing.T) {
	n := world(t)
	e := newEvo(t, n, Config{})
	e.DeployDomain(n.DomainByName("T0").ASN, 0)
	e.DeployDomain(n.DomainByName("S0.0").ASN, 0)

	serial, serialFail, err := e.StretchSample(100)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		par, parFail, err := e.StretchSampleParallel(100, workers)
		if err != nil {
			t.Fatal(err)
		}
		if parFail != serialFail {
			t.Fatalf("workers=%d: failures %d, serial %d", workers, parFail, serialFail)
		}
		if len(par) != len(serial) {
			t.Fatalf("workers=%d: %d samples, serial %d", workers, len(par), len(serial))
		}
		for i := range par {
			if par[i] != serial[i] {
				t.Fatalf("workers=%d: sample %d = %v, serial %v", workers, i, par[i], serial[i])
			}
		}
	}
}

// TestConcurrentReadersDuringRebuild exercises the rlockReady upgrade
// loop: many goroutines hit a dirty Evolution at once and every one must
// observe a fully rebuilt bone.
func TestConcurrentReadersDuringRebuild(t *testing.T) {
	n := world(t)
	e := newEvo(t, n, Config{})
	e.DeployDomain(n.DomainByName("T0").ASN, 0)

	var wg sync.WaitGroup
	errCh := make(chan error, 32)
	for g := 0; g < 32; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			bone, err := e.Bone()
			if err != nil {
				errCh <- err
				return
			}
			if len(bone.Members()) == 0 {
				errCh <- errors.New("observed an empty bone")
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

// TestUndeployAllThenSendFails: when churn empties the deployment, Sends
// must fail with ErrNotDeployed, not hang or panic.
func TestUndeployAllThenSendFails(t *testing.T) {
	n := world(t)
	e := newEvo(t, n, Config{})
	def := n.DomainByName("T0")
	e.DeployDomain(def.ASN, 0)
	if err := e.Ready(); err != nil {
		t.Fatal(err)
	}
	var members []topology.RouterID
	members = append(members, e.Dep.Members()...)
	for _, m := range members {
		e.UndeployRouter(m)
	}
	_, err := e.Send(n.Hosts[0], n.Hosts[1], nil)
	if !errors.Is(err, ErrNotDeployed) {
		t.Fatalf("err = %v, want ErrNotDeployed", err)
	}
}
