//go:build !race

package core

// raceEnabled reports that this build runs under the race detector.
const raceEnabled = false
