package core

import (
	"bytes"
	"errors"
	"testing"

	"github.com/evolvable-net/evolve/internal/anycast"
	"github.com/evolvable-net/evolve/internal/routing/bgpvn"
	"github.com/evolvable-net/evolve/internal/topology"
	"github.com/evolvable-net/evolve/internal/vnbone"
)

// world builds a transit-stub internet with hosts everywhere.
func world(t *testing.T) *topology.Network {
	t.Helper()
	n, err := topology.TransitStub(2, 3, 0.3, topology.GenConfig{
		Seed: 99, RoutersPerDomain: 3, HostsPerDomain: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func newEvo(t *testing.T, n *topology.Network, cfg Config) *Evolution {
	t.Helper()
	if cfg.Option == 0 {
		cfg.Option = anycast.Option2
	}
	if cfg.Option == anycast.Option2 && cfg.DefaultAS == 0 {
		cfg.DefaultAS = n.DomainByName("T0").ASN
	}
	e, err := New(n, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestNewValidation(t *testing.T) {
	n := world(t)
	if _, err := New(n, Config{Option: anycast.Option2, DefaultAS: 9999}); err == nil {
		t.Error("bad DefaultAS accepted")
	}
	if _, err := New(n, Config{Option: anycast.Option(7)}); err == nil {
		t.Error("bad option accepted")
	}
	e, err := New(n, Config{Option: anycast.Option1})
	if err != nil {
		t.Fatal(err)
	}
	if e.Config().Version != 8 {
		t.Errorf("default version = %d", e.Config().Version)
	}
}

func TestUndeployedRejected(t *testing.T) {
	n := world(t)
	e := newEvo(t, n, Config{})
	if _, err := e.Bone(); !errors.Is(err, ErrNotDeployed) {
		t.Errorf("err = %v", err)
	}
	if _, _, err := e.StretchSample(1); !errors.Is(err, ErrNotDeployed) {
		t.Errorf("err = %v", err)
	}
}

func TestSelfAndNativeAddressing(t *testing.T) {
	n := world(t)
	e := newEvo(t, n, Config{})
	def := n.DomainByName("T0")
	e.DeployDomain(def.ASN, 0)

	for _, h := range n.Hosts {
		v, err := e.HostVNAddr(h)
		if err != nil {
			t.Fatal(err)
		}
		if h.Domain == def.ASN {
			if v.IsSelf() {
				t.Errorf("host %s in participant domain has self address", h.Name)
			}
		} else {
			if !v.IsSelf() {
				t.Errorf("host %s in non-participant domain has native address", h.Name)
			}
			u, _ := v.Underlay()
			if u != h.Addr {
				t.Errorf("host %s self address embeds %s", h.Name, u)
			}
		}
	}
}

func TestRelabelOnAdoption(t *testing.T) {
	n := world(t)
	e := newEvo(t, n, Config{})
	def := n.DomainByName("T0")
	stub := n.DomainByName("S0.0")
	e.DeployDomain(def.ASN, 0)
	h := n.HostsIn(stub.ASN)[0]
	before, err := e.HostVNAddr(h)
	if err != nil {
		t.Fatal(err)
	}
	if !before.IsSelf() {
		t.Fatal("precondition: self-addressed")
	}
	// The stub adopts: its hosts relabel to native addresses.
	e.DeployDomain(stub.ASN, 1)
	after, err := e.HostVNAddr(h)
	if err != nil {
		t.Fatal(err)
	}
	if after.IsSelf() {
		t.Error("host did not relabel on adoption")
	}
	// Native addresses are stable across further deployment changes.
	e.DeployDomain(n.DomainByName("S1.0").ASN, 1)
	again, _ := e.HostVNAddr(h)
	if again != after {
		t.Error("native address changed gratuitously")
	}
}

func TestSendSelfToSelf(t *testing.T) {
	// Only the transit T0 deploys; hosts in two different stubs talk.
	n := world(t)
	e := newEvo(t, n, Config{})
	e.DeployDomain(n.DomainByName("T0").ASN, 0)
	src := n.HostsIn(n.DomainByName("S0.0").ASN)[0]
	dst := n.HostsIn(n.DomainByName("S1.1").ASN)[0]
	payload := []byte("universal access")
	d, err := e.Send(src, dst, payload)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(d.Payload, payload) {
		t.Errorf("payload corrupted: %q", d.Payload)
	}
	if !d.SrcVN.IsSelf() || !d.DstVN.IsSelf() {
		t.Error("expected self addresses on both ends")
	}
	if d.TotalCost <= 0 || d.BaselineCost <= 0 {
		t.Errorf("costs: total %d baseline %d", d.TotalCost, d.BaselineCost)
	}
	if d.Stretch < 1 {
		t.Errorf("stretch %.3f < 1: IPvN path cannot beat the baseline it detours from", d.Stretch)
	}
}

func TestSendNativeToNative(t *testing.T) {
	n := world(t)
	e := newEvo(t, n, Config{})
	s0 := n.DomainByName("S0.0")
	s1 := n.DomainByName("S1.1")
	e.DeployDomain(n.DomainByName("T0").ASN, 0)
	e.DeployDomain(s0.ASN, 0)
	e.DeployDomain(s1.ASN, 0)
	src := n.HostsIn(s0.ASN)[0]
	dst := n.HostsIn(s1.ASN)[0]
	d, err := e.Send(src, dst, []byte("native"))
	if err != nil {
		t.Fatal(err)
	}
	if d.SrcVN.IsSelf() || d.DstVN.IsSelf() {
		t.Error("expected native addresses")
	}
	if string(d.Payload) != "native" {
		t.Errorf("payload = %q", d.Payload)
	}
	// Egress must sit in the destination's domain.
	if e.Net.DomainOf(d.Egress.Member) != dst.Domain {
		t.Errorf("egress in AS%d, want dst's AS%d", e.Net.DomainOf(d.Egress.Member), dst.Domain)
	}
}

func TestSendWithinOneDomain(t *testing.T) {
	n := world(t)
	e := newEvo(t, n, Config{})
	s0 := n.DomainByName("S0.0")
	e.DeployDomain(n.DomainByName("T0").ASN, 0)
	e.DeployDomain(s0.ASN, 0)
	hosts := n.HostsIn(s0.ASN)
	d, err := e.Send(hosts[0], hosts[1], []byte("local"))
	if err != nil {
		t.Fatal(err)
	}
	if string(d.Payload) != "local" {
		t.Errorf("payload = %q", d.Payload)
	}
	// Everything stays inside the domain.
	if len(d.Ingress.ASPath) != 1 {
		t.Errorf("ingress crossed domains: %v", d.Ingress.ASPath)
	}
}

func TestUniversalAccessAllPairs(t *testing.T) {
	// The paper's headline requirement: with a single deployed ISP, every
	// host pair can exchange IPvN packets.
	n := world(t)
	for _, opt := range []anycast.Option{anycast.Option1, anycast.Option2} {
		e := newEvo(t, n, Config{Option: opt})
		e.DeployDomain(n.DomainByName("T0").ASN, 0)
		sample, failures, err := e.StretchSample(0)
		if err != nil {
			t.Fatalf("option %d: %v", opt, err)
		}
		if failures != 0 {
			t.Errorf("option %d: %d failed deliveries", opt, failures)
		}
		want := len(n.Hosts) * (len(n.Hosts) - 1)
		if len(sample) != want {
			t.Errorf("option %d: sample %d, want %d", opt, len(sample), want)
		}
		for _, s := range sample {
			if s < 1 {
				t.Fatalf("option %d: stretch %.3f < 1", opt, s)
			}
		}
	}
}

func TestStretchShrinksAsDeploymentSpreads(t *testing.T) {
	n := world(t)
	e := newEvo(t, n, Config{Egress: bgpvn.PathInformed})
	e.DeployDomain(n.DomainByName("T0").ASN, 0)
	mean := func() float64 {
		sample, failures, err := e.StretchSample(0)
		if err != nil || failures > 0 {
			t.Fatalf("sample: %v (%d failures)", err, failures)
		}
		var sum float64
		for _, s := range sample {
			sum += s
		}
		return sum / float64(len(sample))
	}
	sparse := mean()
	// Everyone deploys.
	for _, asn := range n.ASNs() {
		e.DeployDomain(asn, 0)
	}
	full := mean()
	if full > sparse {
		t.Errorf("mean stretch grew with deployment: %.3f → %.3f", sparse, full)
	}
	if full != 1 {
		t.Errorf("full deployment should have stretch 1, got %.3f", full)
	}
}

func TestEgressPolicyOrdering(t *testing.T) {
	// Path-informed and proxy-informed egress must not do worse than
	// exit-early on average.
	n := world(t)
	means := map[bgpvn.EgressPolicy]float64{}
	for _, pol := range []bgpvn.EgressPolicy{bgpvn.ExitEarly, bgpvn.PathInformed, bgpvn.ProxyInformed} {
		e := newEvo(t, n, Config{Egress: pol})
		e.DeployDomain(n.DomainByName("T0").ASN, 0)
		e.DeployDomain(n.DomainByName("T1").ASN, 0)
		sample, failures, err := e.StretchSample(0)
		if err != nil || failures > 0 {
			t.Fatalf("policy %s: %v (%d failures)", pol, err, failures)
		}
		var sum float64
		for _, s := range sample {
			sum += s
		}
		means[pol] = sum / float64(len(sample))
	}
	if means[bgpvn.PathInformed] > means[bgpvn.ExitEarly]+1e-9 {
		t.Errorf("path-informed (%.3f) worse than exit-early (%.3f)",
			means[bgpvn.PathInformed], means[bgpvn.ExitEarly])
	}
	if means[bgpvn.ProxyInformed] > means[bgpvn.ExitEarly]+1e-9 {
		t.Errorf("proxy-informed (%.3f) worse than exit-early (%.3f)",
			means[bgpvn.ProxyInformed], means[bgpvn.ExitEarly])
	}
}

func TestIngressShare(t *testing.T) {
	n := world(t)
	e := newEvo(t, n, Config{})
	t0 := n.DomainByName("T0").ASN
	e.DeployDomain(t0, 0)
	share, err := e.IngressShare()
	if err != nil {
		t.Fatal(err)
	}
	if share[t0] != 1.0 {
		t.Errorf("sole participant's share = %.2f, want 1", share[t0])
	}
	// A second participant takes some share (it serves at least its own
	// hosts).
	t1 := n.DomainByName("T1").ASN
	e.DeployDomain(t1, 0)
	share, err = e.IngressShare()
	if err != nil {
		t.Fatal(err)
	}
	if share[t1] <= 0 {
		t.Error("new participant attracted no traffic")
	}
	var sum float64
	for _, f := range share {
		sum += f
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("shares sum to %.3f", sum)
	}
}

func TestUndeployReverts(t *testing.T) {
	n := world(t)
	e := newEvo(t, n, Config{})
	def := n.DomainByName("T0")
	s0 := n.DomainByName("S0.0")
	e.DeployDomain(def.ASN, 0)
	e.DeployDomain(s0.ASN, 1)
	h := n.HostsIn(s0.ASN)[0]
	v, _ := e.HostVNAddr(h)
	if v.IsSelf() {
		t.Fatal("precondition")
	}
	for _, m := range e.Dep.MembersIn(s0.ASN) {
		e.UndeployRouter(m)
	}
	v, err := e.HostVNAddr(h)
	if err != nil {
		t.Fatal(err)
	}
	if !v.IsSelf() {
		t.Error("host kept native address after its ISP left")
	}
}

func TestDeployDomainPartial(t *testing.T) {
	n := world(t)
	e := newEvo(t, n, Config{})
	t0 := n.DomainByName("T0")
	e.DeployDomain(t0.ASN, 1)
	if got := len(e.Dep.MembersIn(t0.ASN)); got != 1 {
		t.Errorf("members = %d", got)
	}
	e.DeployDomain(t0.ASN, 0)
	if got := len(e.Dep.MembersIn(t0.ASN)); got != len(t0.Routers) {
		t.Errorf("members = %d, want all %d", got, len(t0.Routers))
	}
	// Unknown domain: no-op.
	e.DeployDomain(topology.ASN(9999), 1)
}

func TestBoneAndVNAccessors(t *testing.T) {
	n := world(t)
	e := newEvo(t, n, Config{Bone: vnbone.Config{K: 3}})
	e.DeployDomain(n.DomainByName("T0").ASN, 0)
	bone, err := e.Bone()
	if err != nil {
		t.Fatal(err)
	}
	if !bone.Connected() {
		t.Error("bone disconnected")
	}
	vn, err := e.VN()
	if err != nil {
		t.Fatal(err)
	}
	if !vn.Participates(n.DomainByName("T0").ASN) {
		t.Error("VN does not see participant")
	}
	if e.AnycastAddr() != e.Dep.Addr {
		t.Error("AnycastAddr mismatch")
	}
}

func TestHopLimitSufficientForLongBones(t *testing.T) {
	// A long chain of participant domains: the delivery must survive many
	// bone hops (hop limit decrements per virtual hop).
	b := topology.NewBuilder()
	var prev topology.RouterID = -1
	var doms []*topology.Domain
	for i := 0; i < 12; i++ {
		d := b.AddDomain(string(rune('A' + i)))
		r := b.AddRouter(d, "")
		doms = append(doms, d)
		if prev >= 0 {
			b.Provide(prev, r, 10)
		}
		prev = r
	}
	b.AddHost(doms[0], doms[0].Routers[0], "src", 1)
	b.AddHost(doms[len(doms)-1], doms[len(doms)-1].Routers[0], "dst", 1)
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(n, Config{Option: anycast.Option1})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range doms {
		e.DeployDomain(d.ASN, 0)
	}
	d, err := e.Send(n.Hosts[0], n.Hosts[1], []byte("far"))
	if err != nil {
		t.Fatal(err)
	}
	if d.VNHops < 5 {
		t.Errorf("expected a long bone path, got %d hops", d.VNHops)
	}
	if string(d.Payload) != "far" {
		t.Errorf("payload = %q", d.Payload)
	}
}

func TestWatchEpochsTicksOnPublication(t *testing.T) {
	n := world(t)
	e := newEvo(t, n, Config{})
	ch, cancel := e.WatchEpochs()
	defer cancel()

	members := n.DomainByName("T0").Routers
	e.DeployRouter(members[0])
	select {
	case <-ch:
	default:
		t.Fatal("deploy published no epoch tick")
	}

	// Ticks coalesce into the one-slot buffer: a burst of mutations with
	// no reader leaves exactly one pending tick, and mutators never block.
	e.DeployRouter(members[1])
	e.UndeployRouter(members[1])
	select {
	case <-ch:
	default:
		t.Fatal("burst left no pending tick")
	}
	select {
	case <-ch:
		t.Fatal("ticks did not coalesce")
	default:
	}

	// Error epochs notify too — watchers must see them to degrade.
	e.UndeployRouter(members[0])
	select {
	case <-ch:
	default:
		t.Fatal("error epoch published no tick")
	}

	// After cancel, publications stop reaching the channel.
	cancel()
	e.DeployRouter(members[0])
	select {
	case <-ch:
		t.Fatal("cancelled watcher still ticked")
	default:
	}
}
