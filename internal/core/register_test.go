package core

import (
	"testing"

	"github.com/evolvable-net/evolve/internal/anycast"
	"github.com/evolvable-net/evolve/internal/routing/bgpvn"
	"github.com/evolvable-net/evolve/internal/topology"
)

// registrationWorld: participants M and O; destination host C in
// non-participant domain NC hanging off O (the Figure 3 world, reused).
func registrationWorld(t *testing.T) (*topology.Network, *Evolution, *topology.Host, *topology.Host) {
	t.Helper()
	b := topology.NewBuilder()
	dM := b.AddDomain("M")
	dO := b.AddDomain("O")
	dNC := b.AddDomain("NC")
	rM := b.AddRouters(dM, 2)
	rO := b.AddRouters(dO, 2)
	rNC := b.AddRouter(dNC, "")
	b.IntraLink(rM[0], rM[1], 1)
	b.IntraLink(rO[0], rO[1], 1)
	b.Peer(rM[1], rO[0], 10)
	b.Provide(rO[1], rNC, 10)
	src := b.AddHost(dM, rM[0], "src", 1)
	c := b.AddHost(dNC, rNC, "C", 1)
	net, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	evo, err := New(net, Config{Option: anycast.Option1, Egress: bgpvn.ExitEarly})
	if err != nil {
		t.Fatal(err)
	}
	evo.DeployRouter(rM[0])
	evo.DeployRouter(rO[1])
	return net, evo, src, c
}

func TestRegisteredEndhostUsesNativeRouting(t *testing.T) {
	net, evo, src, c := registrationWorld(t)
	// Unregistered, exit-early policy: egress at the ingress (in M).
	d1, err := evo.Send(src, c, []byte("before"))
	if err != nil {
		t.Fatal(err)
	}
	if net.DomainOf(d1.Egress.Member) != net.DomainByName("M").ASN {
		t.Fatalf("precondition: egress in %d", net.DomainOf(d1.Egress.Member))
	}

	// C registers: its nearby IPvN router is in O (one AS hop from NC),
	// so O's domain advertises C's /128 and deliveries egress in O.
	if err := evo.RegisterEndhost(c); err != nil {
		t.Fatal(err)
	}
	d2, err := evo.Send(src, c, []byte("after"))
	if err != nil {
		t.Fatal(err)
	}
	if net.DomainOf(d2.Egress.Member) != net.DomainByName("O").ASN {
		t.Errorf("registered egress in AS%d, want O", net.DomainOf(d2.Egress.Member))
	}
	if d2.TotalCost > d1.TotalCost {
		t.Errorf("registration worsened delivery: %d → %d", d1.TotalCost, d2.TotalCost)
	}
	if string(d2.Payload) != "after" {
		t.Errorf("payload = %q", d2.Payload)
	}
}

func TestRegistrationSurvivesDeploymentChange(t *testing.T) {
	net, evo, src, c := registrationWorld(t)
	if err := evo.RegisterEndhost(c); err != nil {
		t.Fatal(err)
	}
	// NC itself adopts: C relabels to native, registration becomes inert
	// but harmless, and delivery continues to work.
	evo.DeployDomain(net.DomainByName("NC").ASN, 0)
	d, err := evo.Send(src, c, []byte("native now"))
	if err != nil {
		t.Fatal(err)
	}
	if d.DstVN.IsSelf() {
		t.Error("C did not relabel")
	}
	if net.DomainOf(d.Egress.Member) != c.Domain {
		t.Errorf("egress in AS%d, want C's own domain", net.DomainOf(d.Egress.Member))
	}
}

func TestUnregisterFallsBackToEgressPolicy(t *testing.T) {
	net, evo, src, c := registrationWorld(t)
	if err := evo.RegisterEndhost(c); err != nil {
		t.Fatal(err)
	}
	d, err := evo.Send(src, c, nil)
	if err != nil || net.DomainOf(d.Egress.Member) != net.DomainByName("O").ASN {
		t.Fatalf("precondition: %v egress %d", err, net.DomainOf(d.Egress.Member))
	}
	evo.UnregisterEndhost(c)
	d, err = evo.Send(src, c, nil)
	if err != nil {
		t.Fatal(err)
	}
	if net.DomainOf(d.Egress.Member) != net.DomainByName("M").ASN {
		t.Errorf("post-unregister egress in AS%d, want exit-early at M", net.DomainOf(d.Egress.Member))
	}
	// Double-unregister is a no-op.
	evo.UnregisterEndhost(c)
}

func TestRegistrationAdaptsToSpread(t *testing.T) {
	// The paper: the endhost "would periodically repeat this process in
	// order to adapt to spread in deployment". A closer participant
	// appears; after the automatic renewal the /128 moves there.
	b := topology.NewBuilder()
	dFar := b.AddDomain("FAR")
	dNear := b.AddDomain("NEAR")
	dNC := b.AddDomain("NC")
	rFar := b.AddRouter(dFar, "")
	rNear := b.AddRouter(dNear, "")
	rNC := b.AddRouter(dNC, "")
	b.Provide(rFar, rNear, 50)
	b.Provide(rNear, rNC, 5)
	srcH := b.AddHost(dFar, rFar, "src", 1)
	c := b.AddHost(dNC, rNC, "C", 1)
	net, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	evo, err := New(net, Config{Option: anycast.Option1, Egress: bgpvn.ExitEarly})
	if err != nil {
		t.Fatal(err)
	}
	evo.DeployRouter(rFar)
	if err := evo.RegisterEndhost(c); err != nil {
		t.Fatal(err)
	}
	d, err := evo.Send(srcH, c, nil)
	if err != nil || net.DomainOf(d.Egress.Member) != dFar.ASN {
		t.Fatalf("precondition: %v egress %d", err, net.DomainOf(d.Egress.Member))
	}
	// NEAR deploys; re-registration (automatic on rebuild) should move
	// the advert into NEAR, and deliveries egress there.
	evo.DeployRouter(rNear)
	d, err = evo.Send(srcH, c, nil)
	if err != nil {
		t.Fatal(err)
	}
	if net.DomainOf(d.Egress.Member) != dNear.ASN {
		t.Errorf("egress in AS%d, want NEAR after renewal", net.DomainOf(d.Egress.Member))
	}
}
