package core

import (
	"testing"

	"github.com/evolvable-net/evolve/internal/anycast"
	"github.com/evolvable-net/evolve/internal/econ"
	"github.com/evolvable-net/evolve/internal/topology"
)

// TestSettlementRevenueFromMeasuredTraffic wires the measured traffic
// geography (core.IngressShare) into the A4 settlement model
// (econ.SettlementRevenue): the sole early adopter earns settlement on
// everyone's traffic; a second adopter claws back its own base.
func TestSettlementRevenueFromMeasuredTraffic(t *testing.T) {
	net, err := topology.TransitStub(2, 2, 0, topology.GenConfig{
		Seed: 31, RoutersPerDomain: 2, HostsPerDomain: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	evo, err := New(net, Config{Option: anycast.Option1})
	if err != nil {
		t.Fatal(err)
	}
	t0 := net.DomainByName("T0").ASN
	t1 := net.DomainByName("T1").ASN

	ownShare := map[topology.ASN]float64{}
	for _, asn := range net.ASNs() {
		ownShare[asn] = float64(len(net.HostsIn(asn))) / float64(len(net.Hosts))
	}
	params := econ.Params{Price: 1, SettlementRate: 0.5}

	// Stage 1: T0 alone captures everything.
	evo.DeployDomain(t0, 0)
	share, err := evo.IngressShare()
	if err != nil {
		t.Fatal(err)
	}
	rev1 := econ.SettlementRevenue(params, 1.0, ownShare, share)
	if len(rev1) != 1 || rev1[t0] <= ownShare[t0] {
		t.Fatalf("sole adopter revenue = %v (own share %v)", rev1, ownShare[t0])
	}

	// Stage 2: T1 adopts; T0's revenue shrinks, T1 earns at least its
	// own base, and total revenue never exceeds full retail.
	evo.DeployDomain(t1, 0)
	share, err = evo.IngressShare()
	if err != nil {
		t.Fatal(err)
	}
	rev2 := econ.SettlementRevenue(params, 1.0, ownShare, share)
	if rev2[t0] >= rev1[t0] {
		t.Errorf("competition did not reduce the first mover's revenue: %v → %v", rev1[t0], rev2[t0])
	}
	if rev2[t1] < ownShare[t1]-1e-9 {
		t.Errorf("second adopter earns %v < its own base %v", rev2[t1], ownShare[t1])
	}
	var total float64
	for _, r := range rev2 {
		total += r
	}
	if total > 1.0+1e-9 {
		t.Errorf("total revenue %v exceeds full retail", total)
	}
}
