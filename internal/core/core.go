// Package core assembles the paper's complete story: an internet where
// IPv(N-1) is ubiquitous, a new generation IPvN deployed in a subset of
// ISPs' routers, universal access through anycast redirection (§3.1),
// vN-Bone transit (§3.3), egress selection for self-addressed hosts
// (§3.3.2) and the final IPv(N-1) tunnel to the destination (§3.4). The
// central type, Evolution, answers the question the whole paper is about:
// what happens to an IPvN packet sent between any two hosts at any stage
// of deployment — and at what cost relative to native IPv(N-1) delivery.
package core

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand/v2"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/evolvable-net/evolve/internal/addr"
	"github.com/evolvable-net/evolve/internal/anycast"
	"github.com/evolvable-net/evolve/internal/forward"
	"github.com/evolvable-net/evolve/internal/metrics"
	"github.com/evolvable-net/evolve/internal/packet"
	"github.com/evolvable-net/evolve/internal/routing/bgp"
	"github.com/evolvable-net/evolve/internal/routing/bgpvn"
	"github.com/evolvable-net/evolve/internal/topology"
	"github.com/evolvable-net/evolve/internal/trace"
	"github.com/evolvable-net/evolve/internal/underlay"
	"github.com/evolvable-net/evolve/internal/vnbone"
)

// Config parameterises an Evolution.
type Config struct {
	// Version is the IPvN generation number (the paper's running example
	// is 8). Default 8.
	Version uint8
	// Option selects the §3.2 anycast deployment option. Default Option2
	// (the paper's choice "given its practicality").
	Option anycast.Option
	// DefaultAS anchors an option-2 deployment (typically the first
	// mover). Ignored for option 1.
	DefaultAS topology.ASN
	// Group is the anycast group number of this deployment. Default 0.
	Group uint32
	// Egress selects the §3.3.2 egress policy for self-addressed
	// destinations. Default PathInformed.
	Egress bgpvn.EgressPolicy
	// Bone configures vN-Bone construction.
	Bone vnbone.Config
	// FullReconverge disables scoped invalidation: every event dumps all
	// SPT caches, refreshes BGP, rebuilds the bone from scratch and
	// flushes the whole redirect cache — the pre-epoch behaviour. It
	// exists as the ablation baseline for the churn benchmarks and as a
	// debugging escape hatch; leave it false in production use.
	FullReconverge bool
	// DeliveryShards is the shard count of the epoch-interior send-path
	// structures (endhost registry, redirect cache, flow cache). 0 means
	// the default (16); values are clamped to [1, 256] and rounded down
	// to a power of two. DeliveryShards(1) is the unsharded ablation
	// baseline for the delivery benchmarks.
	DeliveryShards int
	// DisableDeliveryCache turns off the per-epoch flow cache so every
	// send recomputes its full routing skeleton — the pre-sharding
	// behaviour, kept as the honest baseline arm of the delivery
	// benchmarks.
	DisableDeliveryCache bool
	// Fallback configures the graceful-degradation layer (DESIGN.md §12):
	// per-flow health tracking and automatic delivery over the IPv(N-1)
	// baseline when the vN path is broken. The zero value disables it —
	// sends fail fast exactly as without the layer, the ablation arm of
	// the availability experiments.
	Fallback FallbackConfig
}

// ErrNotDeployed is returned by operations that need at least one IPvN
// router.
var ErrNotDeployed = errors.New("core: IPvN has no deployed routers")

// routingEpoch is one immutable generation of everything the send path
// needs: the bone, the BGPvN system, the per-host IPvN addresses, frozen
// clones of the main and provider deployments, and the redirect cache.
// Mutators build the next epoch off the hot path and publish it with one
// atomic store; senders load one epoch pointer and use that consistent
// view end-to-end, so a delivery mid-flight keeps the routing state it
// started with no matter what churns around it.
//
// err non-nil marks the epoch unusable (no members, or the bone build
// failed); every send against it drops, every query returns the error,
// and the next successful mutation clears it.
type routingEpoch struct {
	// seq equals the Evolution's mutSeq value at publication. A resolve
	// computed against this epoch may be cached only while mutSeq still
	// equals seq — once a mutator bumps mutSeq, in-flight resolutions
	// might already see half-mutated BGP/IGP state and must not be
	// memoised.
	seq uint64
	err error

	bone *vnbone.Bone
	vn   *bgpvn.System
	// addrs is the sharded endhost registry: per-host native IPvN
	// addresses, copy-on-write at shard granularity across epochs.
	addrs *addrShards
	// dep and provDeps are deep clones frozen at publication; anycast
	// capture on the send path resolves against them, never against the
	// live (mutable) deployments.
	dep      *anycast.Deployment
	provDeps map[topology.ASN]*anycast.Deployment
	// resolve memoises anycast resolutions per (host, anycast address)
	// for this epoch's routing state (routing is deterministic between
	// reconvergences, so the cache is exact). Entries whose trajectory
	// the next event cannot have touched are carried into the next epoch.
	resolve *resolveShards
	// flow memoises whole delivery skeletons per (src, dst, deployment)
	// flow. Fresh every time routing state changes; see flowShards.
	flow *flowShards
}

// tracerBox wraps the tracer interface so it can live in an
// atomic.Pointer (interfaces cannot be stored atomically themselves).
type tracerBox struct{ tr trace.Tracer }

// Evolution is one IPvN deployment over one internet.
//
// Concurrency: any number of goroutines may Send (and SendVia,
// SendTraced, HostVNAddr, Bone, VN, IngressShare, StretchSample) against
// one Evolution while membership and topology mutations (DeployRouter,
// UndeployRouter, DeployDomain, RegisterEndhost, Fail*/Restore* links,
// ...) run concurrently. The send path is lock-free: it loads the
// current routing epoch with a single atomic pointer read and never
// takes the Evolution's mutex; mutators serialize among themselves on
// that mutex and publish each new epoch atomically. Direct access to the
// exported routing substrate fields (Net, BGP, IGP, Anycast, Fwd, Dep)
// bypasses all of this and is only safe while no other goroutine is
// mutating the Evolution.
type Evolution struct {
	Net     *topology.Network
	BGP     *bgp.System
	IGP     *underlay.View
	Anycast *anycast.Service
	Fwd     *forward.Engine
	Dep     *anycast.Deployment

	cfg Config

	// mu serialises mutators (and guards the canonical mutable state
	// below: the live membership maps inside Dep/providerDeps, vnAddrs,
	// pools, registered). Sends never touch it.
	mu sync.Mutex
	// epoch is the published routing snapshot senders run on.
	epoch atomic.Pointer[routingEpoch]
	// mutSeq counts mutations; bumped under mu before a mutator touches
	// any shared routing state (see routingEpoch.seq).
	mutSeq atomic.Uint64

	// native is the mutator-side canonical endhost registry (sharded
	// per-host native IPvN addresses); pools allocate native addresses
	// per participant domain. Epochs publish copy-on-write snapshots:
	// relabelScoped clones only the shards it writes, so untouched
	// shards are shared structurally across epochs.
	native *addrShards
	// shardN is the normalized Config.DeliveryShards.
	shardN int
	pools  map[topology.ASN]*addr.VNPool
	// registered holds endhosts using the §3.3.2 anycast-based route
	// advertisement; re-applied on every epoch build.
	registered map[topology.HostID]*topology.Host
	// providerDeps holds per-provider anycast deployments for §2.1's
	// user-choice-of-provider extension; membership stays in sync with
	// the main deployment.
	providerDeps map[topology.ASN]*anycast.Deployment

	// watchMu guards the epoch-watcher registry; deliberately separate
	// from mu so subscribing never contends with mutators.
	watchMu   sync.Mutex
	watchNext int
	watchers  map[int]chan struct{}

	// counters is the always-on observability tally (atomic; see
	// internal/trace). tracer holds the optional default span receiver
	// for Sends, swapped atomically so SetTracer never blocks senders.
	counters trace.Counters
	tracer   atomic.Pointer[tracerBox]

	// health is the per-flow health registry of the graceful-degradation
	// layer; nil when Config.Fallback.Enabled is false (the ablation),
	// which is also the send path's branch condition.
	health *healthShards

	// testBatchHook, when non-nil, runs before each packet of a batched
	// send with the packet's index. Tests use it to inject epoch churn at
	// exact points inside a batch; production paths never set it.
	testBatchHook func(i int)
}

// New creates an Evolution with no routers deployed yet.
func New(net *topology.Network, cfg Config) (*Evolution, error) {
	if cfg.Version == 0 {
		cfg.Version = 8
	}
	if cfg.Option == 0 {
		cfg.Option = anycast.Option2
	}
	cfg.Fallback = cfg.Fallback.withDefaults()
	igp := underlay.NewView(net)
	bgpSys := bgp.NewSystem(net)
	svc := anycast.NewService(net, bgpSys, igp)

	var dep *anycast.Deployment
	var err error
	switch cfg.Option {
	case anycast.Option1:
		dep, err = svc.DeployOption1(cfg.Group)
	case anycast.Option2:
		if net.Domain(cfg.DefaultAS) == nil {
			return nil, fmt.Errorf("core: option 2 requires a valid DefaultAS (got %d)", cfg.DefaultAS)
		}
		dep, err = svc.DeployOption2(cfg.Group, cfg.DefaultAS)
	case anycast.OptionGIA:
		if net.Domain(cfg.DefaultAS) == nil {
			return nil, fmt.Errorf("core: GIA requires a valid home DefaultAS (got %d)", cfg.DefaultAS)
		}
		dep, err = svc.DeployGIA(uint8(cfg.Group), cfg.DefaultAS)
	default:
		return nil, fmt.Errorf("core: unknown anycast option %d", cfg.Option)
	}
	if err != nil {
		return nil, err
	}
	shardN := normalizeShards(cfg.DeliveryShards)
	e := &Evolution{
		Net:          net,
		BGP:          bgpSys,
		IGP:          igp,
		Anycast:      svc,
		Fwd:          forward.NewEngine(net, bgpSys, igp),
		Dep:          dep,
		cfg:          cfg,
		native:       newAddrShards(shardN),
		shardN:       shardN,
		pools:        map[topology.ASN]*addr.VNPool{},
		registered:   map[topology.HostID]*topology.Host{},
		providerDeps: map[topology.ASN]*anycast.Deployment{},
	}
	if cfg.Fallback.Enabled {
		e.health = newHealthShards(shardN, cfg.Fallback.ProbeJitterSeed)
	}
	e.epoch.Store(&routingEpoch{
		err:     ErrNotDeployed,
		addrs:   e.native,
		resolve: newResolveShards(shardN),
		flow:    newFlowShards(shardN),
	})
	return e, nil
}

// SetTracer installs the default Tracer every Send reports its span
// events to (nil disables tracing, the default). Use SendTraced for a
// per-delivery tracer instead. Safe to call concurrently with Sends.
func (e *Evolution) SetTracer(tr trace.Tracer) {
	e.tracer.Store(&tracerBox{tr: tr})
}

// tracerNow returns the currently installed default tracer, nil when none.
func (e *Evolution) tracerNow() trace.Tracer {
	if b := e.tracer.Load(); b != nil {
		return b.tr
	}
	return nil
}

// Counters returns the evolution-wide observability counters. They are
// always on; reading them via Snapshot is safe at any time, including
// while Sends are in flight.
func (e *Evolution) Counters() *trace.Counters { return &e.counters }

// Snapshot returns a point-in-time copy of the evolution-wide counters.
func (e *Evolution) Snapshot() trace.Snapshot { return e.counters.Snapshot() }

// Config returns the deployment configuration.
func (e *Evolution) Config() Config { return e.cfg }

// AnycastAddr returns the deployment's well-known anycast address — the
// only thing an endhost ever needs to know.
func (e *Evolution) AnycastAddr() addr.V4 { return e.Dep.Addr }

// DeployRouter turns one router into an IPvN router.
func (e *Evolution) DeployRouter(id topology.RouterID) {
	e.DeployRouters([]topology.RouterID{id})
}

// DeployRouters deploys a batch of routers as one membership event: the
// routing epoch is rebuilt once, not once per router. Already-deployed
// routers are no-ops within the batch.
func (e *Evolution) DeployRouters(ids []topology.RouterID) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.mutSeq.Add(1)
	changed := map[topology.ASN]bool{}
	flush := false
	for _, id := range ids {
		asn := e.Net.DomainOf(id)
		joined := len(e.Dep.MembersIn(asn)) == 0
		if !e.Anycast.AddMember(e.Dep, id) {
			continue
		}
		if pd, ok := e.providerDeps[asn]; ok {
			e.Anycast.AddMember(pd, id)
		}
		changed[asn] = true
		if joined {
			// A domain toggling into participation changes Option-1
			// originations and host addressing everywhere, so cached
			// redirect trajectories are globally suspect.
			flush = true
		}
	}
	if len(changed) == 0 {
		e.republishLocked()
		return
	}
	if e.cfg.FullReconverge {
		e.counters.InvalFull()
	} else {
		e.counters.InvalDomain()
	}
	_ = e.buildEpochLocked(nil, changed, changed, flush)
}

// UndeployRouter withdraws one router from the deployment.
func (e *Evolution) UndeployRouter(id topology.RouterID) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.mutSeq.Add(1)
	asn := e.Net.DomainOf(id)
	if !e.Anycast.RemoveMember(e.Dep, id) {
		e.republishLocked()
		return
	}
	if pd, ok := e.providerDeps[asn]; ok {
		e.Anycast.RemoveMember(pd, id)
	}
	// The last member leaving toggles the domain out of participation —
	// the global analogue of joining (see DeployRouters).
	flush := len(e.Dep.MembersIn(asn)) == 0
	if e.cfg.FullReconverge {
		e.counters.InvalFull()
	} else {
		e.counters.InvalDomain()
	}
	scope := map[topology.ASN]bool{asn: true}
	_ = e.buildEpochLocked(nil, scope, scope, flush)
}

// EnableProviderChoice provisions a provider-specific anycast address for
// a participating ISP — the §2.1 extension "offer users the choice of
// which IPvN service provider their IPvN packets are redirected to". The
// returned address behaves like the deployment's shared address except
// that only the chosen provider's routers accept it; use SendVia to route
// through it. Idempotent per provider.
func (e *Evolution) EnableProviderChoice(asn topology.ASN) (addr.V4, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if pd, ok := e.providerDeps[asn]; ok {
		return pd.Addr, nil
	}
	members := e.Dep.MembersIn(asn)
	if len(members) == 0 {
		return 0, fmt.Errorf("core: AS%d does not participate in the deployment", asn)
	}
	e.mutSeq.Add(1)
	// A provider-specific address is naturally option 2, rooted in the
	// provider's own aggregate (group offset 1 keeps it clear of a shared
	// option-2 address also rooted there).
	pd, err := e.Anycast.DeployOption2(e.cfg.Group+1, asn)
	if err != nil {
		e.republishLocked()
		return 0, err
	}
	for _, m := range members {
		e.Anycast.AddMember(pd, m)
	}
	e.providerDeps[asn] = pd
	e.publishProvidersLocked()
	return pd.Addr, nil
}

// ProviderChoices returns the ASNs that have a provider-specific anycast
// address enabled, in ascending order.
func (e *Evolution) ProviderChoices() []topology.ASN {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]topology.ASN, 0, len(e.providerDeps))
	for asn := range e.providerDeps {
		out = append(out, asn)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ProviderMembers returns the current members of asn's provider-specific
// deployment, nil when provider choice is not enabled for asn.
func (e *Evolution) ProviderMembers(asn topology.ASN) []topology.RouterID {
	e.mu.Lock()
	defer e.mu.Unlock()
	pd, ok := e.providerDeps[asn]
	if !ok {
		return nil
	}
	return pd.Members()
}

// SendVia delivers like Send but lets the user choose the IPvN provider:
// the packet is encapsulated toward provider's specific anycast address,
// so its ingress is guaranteed to be one of that provider's routers
// regardless of proximity.
func (e *Evolution) SendVia(src, dst *topology.Host, provider topology.ASN, payload []byte) (Delivery, error) {
	ep := e.epoch.Load()
	if ep.err != nil {
		if e.health != nil {
			dep := e.Dep.Addr
			if pd, ok := ep.provDeps[provider]; ok {
				dep = pd.Addr
			}
			return e.sendErrEpoch(ep, src, dst, dep, payload, e.tracerNow())
		}
		e.counters.Send()
		e.counters.Drop(trace.DropNotDeployed)
		return Delivery{}, ep.err
	}
	pd, ok := ep.provDeps[provider]
	if !ok {
		return Delivery{}, fmt.Errorf("core: provider choice not enabled for AS%d", provider)
	}
	return e.send(ep, src, dst, payload, pd, e.tracerNow())
}

// DeployDomain deploys IPvN in count routers of a domain (all when count
// ≤ 0), modelling an ISP's partial internal rollout (assumption A1).
func (e *Evolution) DeployDomain(asn topology.ASN, count int) {
	d := e.Net.Domain(asn)
	if d == nil {
		return
	}
	if count <= 0 || count > len(d.Routers) {
		count = len(d.Routers)
	}
	e.DeployRouters(d.Routers[:count])
}

// Participates reports whether a domain has any IPvN routers.
func (e *Evolution) Participates(asn topology.ASN) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.participatesLocked(asn)
}

func (e *Evolution) participatesLocked(asn topology.ASN) bool {
	return len(e.Dep.MembersIn(asn)) > 0
}

// Bone returns the vN-Bone of the current routing epoch.
func (e *Evolution) Bone() (*vnbone.Bone, error) {
	ep := e.epoch.Load()
	if ep.err != nil {
		return nil, ep.err
	}
	return ep.bone, nil
}

// VN returns the BGPvN system of the current routing epoch.
func (e *Evolution) VN() (*bgpvn.System, error) {
	ep := e.epoch.Load()
	if ep.err != nil {
		return nil, ep.err
	}
	return ep.vn, nil
}

// Ready reports whether the published routing epoch is usable — the
// cheap way to surface ErrNotDeployed before fanning out goroutines.
// (Epochs are built eagerly by mutators; there is never a pending
// rebuild to force.)
func (e *Evolution) Ready() error {
	if ep := e.epoch.Load(); ep.err != nil {
		return ep.err
	}
	return nil
}

// WatchEpochs subscribes to routing-epoch publications: the returned
// channel receives a (coalesced) tick after every epoch store — including
// error epochs, which watchers need to see to degrade gracefully. The
// channel has a one-slot buffer and notifications never block a mutator;
// a watcher that lags simply observes several publications as one tick
// and reconciles against the latest epoch, which is all that epoch-driven
// consumers (livebridge reconciliation) want anyway. The cancel func
// unsubscribes and must be called to release the watcher.
func (e *Evolution) WatchEpochs() (<-chan struct{}, func()) {
	e.watchMu.Lock()
	defer e.watchMu.Unlock()
	if e.watchers == nil {
		e.watchers = map[int]chan struct{}{}
	}
	id := e.watchNext
	e.watchNext++
	ch := make(chan struct{}, 1)
	e.watchers[id] = ch
	return ch, func() {
		e.watchMu.Lock()
		defer e.watchMu.Unlock()
		delete(e.watchers, id)
	}
}

// notifyEpoch ticks every watcher, non-blocking (coalescing into the
// one-slot buffer). Called by every epoch publish site after the store.
func (e *Evolution) notifyEpoch() {
	e.watchMu.Lock()
	defer e.watchMu.Unlock()
	for _, ch := range e.watchers {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
}

// republishLocked reseals the current epoch under the new mutation
// sequence number after a mutation that changed nothing senders can see
// (an already-deployed router re-deployed, say). Sharing the innards is
// safe — routing state is untouched — but seq must advance so the gate
// in resolveIngress re-enables cache stores.
func (e *Evolution) republishLocked() {
	ep := *e.epoch.Load()
	ep.seq = e.mutSeq.Load()
	e.counters.Epoch()
	e.epoch.Store(&ep)
	e.notifyEpoch()
}

// publishProvidersLocked publishes an epoch differing only in the frozen
// provider deployments; bone, addresses and caches are shared with the
// previous epoch.
func (e *Evolution) publishProvidersLocked() {
	ep := *e.epoch.Load()
	ep.seq = e.mutSeq.Load()
	ep.provDeps = make(map[topology.ASN]*anycast.Deployment, len(e.providerDeps))
	for asn, pd := range e.providerDeps {
		ep.provDeps[asn] = pd.Clone()
	}
	e.counters.Epoch()
	e.epoch.Store(&ep)
	e.notifyEpoch()
}

// publishRegistrationLocked publishes a registration-only epoch: same
// bone, same addresses, same redirect cache, fresh BGPvN tables with the
// current registration set applied in place. No bone rebuild happens
// (and none is counted) — registrations ride on the existing bone.
func (e *Evolution) publishRegistrationLocked() {
	prev := e.epoch.Load()
	if prev.err != nil {
		// No usable routing state to advertise into; the registration set
		// is re-applied by the next successful epoch build anyway.
		e.republishLocked()
		return
	}
	ep := *prev
	ep.seq = e.mutSeq.Load()
	ep.vn = bgpvn.New(prev.bone, e.Fwd, e.Net)
	// Registrations change the natives table, which flow skeletons bake
	// in — the flow cache starts over (the redirect cache is untouched:
	// anycast resolution does not depend on registrations).
	ep.flow = newFlowShards(e.shardN)
	for _, h := range e.registered {
		_ = e.applyRegistration(&ep, h)
	}
	e.counters.Epoch()
	e.epoch.Store(&ep)
	e.notifyEpoch()
}

// buildEpochLocked constructs and atomically publishes the next routing
// epoch; callers hold mu, have bumped mutSeq and have already applied
// the raw change (membership, topology, scoped IGP/BGP invalidations).
// dirty lists bone domains whose intra mesh must be recomputed (nil
// reuses every unchanged domain's mesh), evict scopes the redirect-cache
// carry-over, relabel lists domains whose participation may have toggled
// (only their hosts can need re-addressing; link events pass nil and
// share the address shards untouched), flush drops the redirect cache
// wholesale. The error (no members, or a bone build failure) is also
// recorded in the published epoch, so senders and queries keep reporting
// it until a mutation heals it.
func (e *Evolution) buildEpochLocked(dirty, evict, relabel map[topology.ASN]bool, flush bool) error {
	prev := e.epoch.Load()
	seq := e.mutSeq.Load()
	if e.cfg.FullReconverge {
		dirty, evict, flush = nil, nil, true
	}
	if len(e.Dep.Members()) == 0 {
		e.counters.Epoch()
		e.epoch.Store(&routingEpoch{
			seq:     seq,
			err:     ErrNotDeployed,
			addrs:   prev.addrs,
			resolve: newResolveShards(e.shardN),
			flow:    newFlowShards(e.shardN),
		})
		e.notifyEpoch()
		return ErrNotDeployed
	}
	// Freeze the deployments: this epoch's send path keeps resolving
	// against this membership even while the live maps churn under the
	// next mutation.
	dep := e.Dep.Clone()
	provs := make(map[topology.ASN]*anycast.Deployment, len(e.providerDeps))
	for asn, pd := range e.providerDeps {
		provs[asn] = pd.Clone()
	}
	boneCfg := e.cfg.Bone
	boneCfg.Trace = e.tracerNow()
	var prevBone *vnbone.Bone
	if !e.cfg.FullReconverge && prev.err == nil {
		prevBone = prev.bone
	}
	bone, stats, err := vnbone.BuildIncremental(e.Anycast, e.IGP, dep, boneCfg, prevBone, dirty)
	if err != nil {
		// Count the failure, not a rebuild: BoneRebuild ticks only for
		// builds that produced a usable bone.
		e.counters.RebuildFailed()
		e.counters.Epoch()
		e.epoch.Store(&routingEpoch{
			seq:      seq,
			err:      err,
			addrs:    prev.addrs,
			dep:      dep,
			provDeps: provs,
			resolve:  newResolveShards(e.shardN),
			flow:     newFlowShards(e.shardN),
		})
		e.notifyEpoch()
		return err
	}
	e.counters.BoneRebuild()
	e.counters.BoneDomains(stats.DomainsReused, stats.DomainsRebuilt)
	ep := &routingEpoch{
		seq:      seq,
		bone:     bone,
		vn:       bgpvn.New(bone, e.Fwd, e.Net),
		dep:      dep,
		provDeps: provs,
	}
	if e.cfg.FullReconverge {
		// The ablation baseline re-examines every domain, like the
		// pre-scoping full relabel pass did. The per-domain address pools
		// draw in the same order either way, so the resulting addresses
		// are identical to a scoped pass.
		relabel = map[topology.ASN]bool{}
		for _, asn := range e.Net.ASNs() {
			relabel[asn] = true
		}
	}
	e.relabelScoped(relabel)
	ep.addrs = e.native
	// Re-register endhost routes against the fresh vN routing state —
	// the paper's "endhost would periodically repeat this process in
	// order to adapt to spread in deployment" (§3.3.2). A host that
	// cannot currently reach the deployment (its domain severed by link
	// failures, say) simply advertises nothing this convergence epoch:
	// its registration stays on file for the next epoch, and the failure
	// must not take down delivery for every other sender.
	for _, h := range e.registered {
		_ = e.applyRegistration(ep, h)
	}
	if flush || prev.err != nil {
		ep.resolve = newResolveShards(e.shardN)
	} else {
		ep.resolve = prev.resolve.carry(evict)
	}
	// Flow skeletons bake in every routing input at once (bone, BGPvN,
	// IGP, baseline); any rebuild starts the flow cache over.
	ep.flow = newFlowShards(e.shardN)
	e.counters.Epoch()
	e.epoch.Store(ep)
	e.notifyEpoch()
	return nil
}

// RegisterEndhost opts a host into the §3.3.2 anycast-based route
// advertisement the paper describes (and sets aside by default for its
// policy questions): the host locates a nearby IPvN router via anycast,
// and that router's domain advertises the host's temporary /128 into the
// IPvN routing fabric. Deliveries to the host then use native IPvN
// routing instead of egress-policy guesswork. Registration renews
// automatically whenever deployment changes; like the renewal, the
// initial advertisement is best-effort — a host that cannot presently
// reach the deployment still goes on file and advertises on a later
// rebuild. An error means the deployment itself is unusable and nothing
// was registered.
func (e *Evolution) RegisterEndhost(h *topology.Host) error {
	return e.RegisterEndhosts([]*topology.Host{h})
}

// RegisterEndhosts registers a batch of hosts as one mutation: the
// registration epoch is published once, not once per host. Registering a
// fleet host-by-host is quadratic — every publication re-applies the
// whole registration set against fresh BGPvN tables — so bulk setup
// (benchmarks, topology loaders) must use the batch form.
func (e *Evolution) RegisterEndhosts(hosts []*topology.Host) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if ep := e.epoch.Load(); ep.err != nil {
		return ep.err
	}
	e.mutSeq.Add(1)
	for _, h := range hosts {
		e.registered[h.ID] = h
	}
	e.publishRegistrationLocked()
	return nil
}

// UnregisterEndhost withdraws a host's advertised route in place: the
// BGPvN natives table is rebuilt from the remaining registrations on the
// existing bone, without any bone rebuild.
func (e *Evolution) UnregisterEndhost(h *topology.Host) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, ok := e.registered[h.ID]; !ok {
		return
	}
	e.mutSeq.Add(1)
	delete(e.registered, h.ID)
	e.publishRegistrationLocked()
}

// applyRegistration advertises h's /128 into ep's BGPvN tables, resolving
// the advertising domain against the epoch's frozen deployment. Callers
// hold mu; ep is not yet published.
func (e *Evolution) applyRegistration(ep *routingEpoch, h *topology.Host) error {
	v := ep.addrs.addrOf(h)
	if !v.IsSelf() {
		// The host's provider adopted IPvN; its native address is
		// routable without any registration.
		return nil
	}
	res, err := e.Anycast.ResolveFromHostVia(ep.dep, h)
	if err != nil {
		return err
	}
	ep.vn.AdvertiseNative(addr.HostVNPrefix(v), e.Net.DomainOf(res.Member))
	return nil
}

// relabelScoped updates host IPvN addresses after participation changes
// in the scoped domains: hosts of newly participating domains get native
// addresses ("such endhosts will have to relabel if and when their
// access providers do adopt IPvN"), hosts of domains that dropped out
// fall back to temporary self-addresses (by deletion — absence means
// self-addressed; see addrShards). Addresses depend only on domain
// participation, so domains outside the scope cannot have changed and
// their shards are shared with the previous epoch untouched. A host that
// is already natively addressed in a still-participating domain keeps
// its address — relabelling is stable. Per-domain pool draws happen in
// host-ID order, matching the old full-scan relabel pass exactly.
// Callers hold mu.
func (e *Evolution) relabelScoped(scope map[topology.ASN]bool) {
	if len(scope) == 0 {
		return
	}
	next := e.native.cow()
	cloned := make([]bool, len(next.shards))
	shardFor := func(id topology.HostID) map[topology.HostID]addr.VN {
		i := uint32(id) & next.mask
		if !cloned[i] {
			clone := make(map[topology.HostID]addr.VN, len(next.shards[i])+1)
			for k, v := range next.shards[i] {
				clone[k] = v
			}
			next.shards[i] = clone
			cloned[i] = true
		}
		return next.shards[i]
	}
	for asn := range scope {
		participates := e.participatesLocked(asn)
		for _, h := range e.Net.HostsIn(asn) {
			_, native := next.shards[uint32(h.ID)&next.mask][h.ID]
			switch {
			case participates && !native:
				pool, ok := e.pools[asn]
				if !ok {
					pool = addr.NewVNPool(addr.DomainVNPrefix(int(asn)))
					e.pools[asn] = pool
				}
				v, err := pool.Next()
				if err != nil {
					// A /40 per domain cannot exhaust at simulated scales.
					panic(fmt.Sprintf("core: native pool exhausted for AS%d: %v", asn, err))
				}
				shardFor(h.ID)[h.ID] = v
			case !participates && native:
				delete(shardFor(h.ID), h.ID)
			}
		}
	}
	e.native = next
}

// HostVNAddr returns a host's current IPvN address: native when its
// access provider participates, self-derived otherwise (§3.3.2).
func (e *Evolution) HostVNAddr(h *topology.Host) (addr.VN, error) {
	ep := e.epoch.Load()
	if ep.err != nil {
		return addr.VN{}, ep.err
	}
	return ep.addrs.addrOf(h), nil
}

// Delivery is one end-to-end IPvN transmission.
type Delivery struct {
	SrcVN, DstVN addr.VN
	// Ingress is the anycast leg: host to the first IPvN router.
	Ingress anycast.Resolution
	// Egress is the vN-Bone leg and exit decision.
	Egress bgpvn.Egress
	// TailCost is the final leg: egress router to the destination host
	// (zero when the egress domain is the destination's own and the
	// destination is natively addressed — then the tail is the intra
	// leg counted here too).
	TailCost int64
	// TotalCost is the full IPvN path cost.
	TotalCost int64
	// BaselineCost is the direct IPv(N-1) unicast cost between the hosts.
	BaselineCost int64
	// Stretch is TotalCost / BaselineCost.
	Stretch float64
	// Payload is the bytes that arrived, after all encap/decap layers —
	// the wire path runs for real.
	Payload []byte
	// VNHops is the number of vN-Bone virtual hops traversed.
	VNHops int
	// TailPath is the router-level path of the final leg, from the
	// egress member to the destination's attach router.
	TailPath []topology.RouterID
	// TraceTag is the per-delivery random tag stamped into the header
	// options at the source and verified at the destination.
	TraceTag uint32
	// Fallback reports that this delivery rode the IPv(N-1) baseline path
	// instead of the vN-Bone — the graceful-degradation layer engaged
	// (because the flow was in the fallback state, the vN attempt was
	// rescued in-line, or the routing epoch was an error epoch). TotalCost
	// then equals BaselineCost, Stretch is 1 and the vN-Bone fields
	// (Ingress, Egress, VNHops, TailCost, TailPath) are zero.
	Fallback bool
}

// Send delivers an IPvN packet with the given payload from src to dst,
// running the actual wire-level encapsulation at every stage, and returns
// the full accounting. Send is safe for concurrent use and lock-free: it
// loads the published routing epoch with one atomic pointer read and
// never blocks on mutators. Span events go to the Tracer installed with
// SetTracer, if any.
func (e *Evolution) Send(src, dst *topology.Host, payload []byte) (Delivery, error) {
	ep := e.epoch.Load()
	if ep.err != nil {
		if e.health != nil {
			return e.sendErrEpoch(ep, src, dst, e.Dep.Addr, payload, e.tracerNow())
		}
		e.counters.Send()
		e.counters.Drop(trace.DropNotDeployed)
		return Delivery{}, ep.err
	}
	return e.send(ep, src, dst, payload, ep.dep, e.tracerNow())
}

// SendTraced is Send with a per-delivery Tracer: tr receives this
// delivery's span events (redirect decision, every vN-Bone hop, egress
// selection, each encap/decap) regardless of the default tracer. A fresh
// trace.Recorder per call yields exactly one delivery's path trace.
func (e *Evolution) SendTraced(src, dst *topology.Host, payload []byte, tr trace.Tracer) (Delivery, error) {
	ep := e.epoch.Load()
	if ep.err != nil {
		if e.health != nil {
			return e.sendErrEpoch(ep, src, dst, e.Dep.Addr, payload, tr)
		}
		e.counters.Send()
		e.counters.Drop(trace.DropNotDeployed)
		return Delivery{}, ep.err
	}
	return e.send(ep, src, dst, payload, ep.dep, tr)
}

// resolveIngress is the redirect decision of the send path: the anycast
// resolution from src toward d's address, memoised in the epoch's
// sharded redirect cache (routing is deterministic within an epoch, so
// the cache is exact, not a heuristic). A resolution computed while a
// mutator has already moved on is still correct to return — it resolved
// against the epoch's frozen deployment — but must not be cached: the
// store is gated on the mutation sequence still matching the epoch's,
// and any store that races past the gate is shed by the next epoch's
// entry-by-entry carry-over.
func (e *Evolution) resolveIngress(ep *routingEpoch, d *anycast.Deployment, src *topology.Host, rc redirectCounter) (anycast.Resolution, error) {
	k := resolveKey{src.ID, d.Addr}
	if v, ok := ep.resolve.load(k); ok {
		rc.Redirect(true)
		return *v, nil
	}
	res, err := e.Anycast.ResolveFromHostVia(d, src)
	if err != nil {
		return anycast.Resolution{}, err
	}
	rc.Redirect(false)
	if e.mutSeq.Load() == ep.seq {
		ep.resolve.store(k, &res)
	}
	return res, nil
}

// dropSend closes a delivery as a failure, counted under its stage.
func (e *Evolution) dropSend(tr trace.Tracer, seq uint32, reason trace.DropReason, err error) (Delivery, error) {
	e.counters.Drop(reason)
	if tr != nil {
		tr.Event(trace.Event{Kind: trace.KindDrop, Seq: seq, Router: -1, Reason: reason})
	}
	return Delivery{}, err
}

// computeFlow computes one flow's delivery skeleton against ep: the
// redirect resolution (leg 1, memoised separately in the redirect
// cache), the vN-Bone egress pick (leg 2, §3.3.2 — a self-addressed
// destination may still have a registered /128 in the IPvN fabric, and
// native routing then takes precedence over egress-policy guesswork),
// the tail leg (leg 3) and the IPv(N-1) baseline. Every path computation
// of a send happens here and none of the wire-level work; see flowEntry.
func (e *Evolution) computeFlow(ep *routingEpoch, src, dst *topology.Host, ingressDep *anycast.Deployment, rc redirectCounter) (*flowEntry, trace.DropReason, error) {
	fe := &flowEntry{
		srcVN: ep.addrs.addrOf(src),
		dstVN: ep.addrs.addrOf(dst),
	}
	ing, err := e.resolveIngress(ep, ingressDep, src, rc)
	if err != nil {
		return nil, trace.DropNoIngress, fmt.Errorf("core: ingress: %w", err)
	}
	fe.ing = ing
	fe.ingressAS = e.Net.DomainOf(ing.Member)

	var eg bgpvn.Egress
	egDetail := trace.EgressNative
	if fe.dstVN.IsSelf() {
		eg, err = ep.vn.RouteNative(ing.Member, fe.dstVN)
		egDetail = trace.EgressRegistered
		if errors.Is(err, bgpvn.ErrNoVNRoute) {
			eg, err = ep.vn.SelectEgress(ing.Member, dst.Addr, e.cfg.Egress)
			egDetail = eg.Policy.String()
		}
	} else {
		eg, err = ep.vn.RouteNative(ing.Member, fe.dstVN)
	}
	if err != nil {
		return nil, trace.DropNoVNRoute, fmt.Errorf("core: vn routing: %w", err)
	}
	fe.eg = eg
	fe.egDetail = egDetail
	fe.vnHops = len(eg.BonePath) - 1
	if fe.vnHops < 0 {
		fe.vnHops = 0
	}

	if fe.dstVN.IsSelf() {
		tail, err := e.Fwd.FromRouter(eg.Member, dst.Addr)
		if err != nil {
			return nil, trace.DropTail, fmt.Errorf("core: tail: %w", err)
		}
		fe.tailCost = tail.Cost
		fe.tailPath = tail.Routers
	} else {
		// Egress is in dst's own (participating) domain: IGP delivers.
		fe.tailCost = e.IGP.IntraDist(eg.Member, dst.Attach) + dst.AccessLatency
		fe.tailPath = e.IGP.IntraPath(eg.Member, dst.Attach)
	}

	base, err := e.Fwd.HostToHost(src, dst)
	if err != nil {
		return nil, trace.DropNoBaseline, fmt.Errorf("core: baseline: %w", err)
	}
	fe.baseline = base.Cost
	return fe, trace.DropNone, nil
}

// send runs the delivery on one routing epoch with the given ingress
// deployment (the shared one, or a provider-specific one) and optional
// tracer. It opens the span (send tally, per-delivery tag), acquires the
// pooled wire-path working set, and hands off to the vN path — directly
// when the graceful-degradation layer is off, through the flow's health
// decision (sendWithHealth) when it is on.
func (e *Evolution) send(ep *routingEpoch, src, dst *topology.Host, payload []byte, ingressDep *anycast.Deployment, tr trace.Tracer) (Delivery, error) {
	e.counters.Send()
	// The per-delivery tag distinguishes concurrent sends' spans and
	// integrity checks from one another; math/rand/v2 draws it from a
	// per-P generator, so unlike a shared atomic sequence the stamp
	// costs no cross-sender cache-line traffic.
	seq := rand.Uint32()
	if tr != nil {
		tr.Event(trace.Event{Kind: trace.KindSend, Seq: seq, Router: src.Attach, AS: src.Domain})
	}
	ctx := sendCtxPool.Get().(*sendCtx)
	defer sendCtxPool.Put(ctx)
	if e.health != nil {
		return e.sendWithHealth(ctx, ep, src, dst, payload, ingressDep, tr, seq)
	}
	d, _, reason, err := e.sendVN(ctx, ep, src, dst, payload, ingressDep, tr, seq)
	if err != nil {
		return e.dropSend(tr, seq, reason, err)
	}
	return d, nil
}

// sendVN runs the vN delivery proper. The routing skeleton comes from
// the epoch's sharded flow cache when this flow has delivered before
// (routing is deterministic within an epoch, so the cached skeleton is
// exact) and is computed and memoised otherwise. The wire-level
// encapsulation path runs for real either way, ping-ponging between the
// two pooled tunnel endpoints — with the pool warm, a steady-state Send
// allocates nothing. Failures are returned with their drop reason
// neither counted nor traced: the caller decides whether the packet
// drops (dropSend) or gets rescued over the baseline. The returned
// flowEntry (nil when flow resolution itself failed) feeds the health
// layer's signal matching.
func (e *Evolution) sendVN(ctx *sendCtx, ep *routingEpoch, src, dst *topology.Host, payload []byte, ingressDep *anycast.Deployment, tr trace.Tracer, seq uint32) (Delivery, *flowEntry, trace.DropReason, error) {
	fk := flowKey{src: src.ID, dst: dst.ID, dep: ingressDep.Addr}
	var fe *flowEntry
	if !e.cfg.DisableDeliveryCache {
		fe, _ = ep.flow.load(fk)
	}
	if fe != nil {
		e.counters.FlowHit()
		// A flow hit is served entirely from memoised state, redirect
		// decision included — count it so the redirect hit-rate stays
		// meaningful.
		e.counters.Redirect(true)
	} else {
		e.counters.FlowMiss()
		var reason trace.DropReason
		var err error
		fe, reason, err = e.computeFlow(ep, src, dst, ingressDep, &e.counters)
		if err != nil {
			return Delivery{}, nil, reason, err
		}
		// Like the redirect cache, a skeleton computed after a mutator
		// has already moved on is correct to use but must not be stored.
		if !e.cfg.DisableDeliveryCache && e.mutSeq.Load() == ep.seq {
			ep.flow.store(fk, fe)
		}
	}
	e.counters.Ingress(fe.ingressAS)
	e.counters.BoneHops(fe.vnHops)

	d := Delivery{
		SrcVN:        fe.srcVN,
		DstVN:        fe.dstVN,
		Ingress:      fe.ing,
		Egress:       fe.eg,
		VNHops:       fe.vnHops,
		TailCost:     fe.tailCost,
		TailPath:     fe.tailPath,
		BaselineCost: fe.baseline,
	}
	d.TotalCost = fe.ing.Cost + fe.eg.BoneCost + fe.tailCost
	d.Stretch = metrics.Stretch(d.TotalCost, d.BaselineCost)

	// Leg 1 — universal access: the host encapsulates toward the
	// deployment's anycast address; routing finds the ingress (§3.1).
	hdr := packet.VNHeader{
		Version: e.cfg.Version,
		Src:     fe.srcVN,
		Dst:     fe.dstVN,
	}
	opts := ctx.hdrOpts[:0]
	if fe.dstVN.IsSelf() {
		// Carry the destination's IPv(N-1) address for the egress
		// (§3.3.2's "carried in a separate option field").
		binary.BigEndian.PutUint32(ctx.underBuf[:], uint32(dst.Addr))
		opts = append(opts, packet.Option{Type: packet.OptUnderlayDst, Value: ctx.underBuf[:]})
	}
	// Tag the packet so the harness can assert the header options
	// survive every encap/decap stage bit-for-bit. The expected tag
	// stays local to this delivery; concurrent sends each draw their own.
	binary.BigEndian.PutUint32(ctx.tagBuf[:], seq)
	opts = append(opts, packet.Option{Type: packet.OptTraceTag, Value: ctx.tagBuf[:]})
	hdr.Options = opts

	ingressAddr := ingressDep.Addr
	hostEP := ctx.epA
	hostEP.Local = src.Addr
	hostEP.Observe(tr, &e.counters, seq)
	wire, err := hostEP.EncapToShared(ingressAddr, hdr, payload)
	if err != nil {
		return Delivery{}, fe, trace.DropEncap, err
	}
	if tr != nil {
		tr.Event(trace.Event{
			Kind: trace.KindRedirect, Seq: seq,
			Router: fe.ing.Member, AS: fe.ingressAS, Cost: fe.ing.Cost,
		})
	}

	// The ingress accepts anycast-addressed packets: decapsulate there.
	// (Outer dst is the anycast address the member serves.)
	outer, inner, pl, err := packet.DecapVNShared(wire, ctx.optA[:0])
	if err != nil {
		return Delivery{}, fe, trace.DropDecap, fmt.Errorf("core: ingress decap: %w", err)
	}
	if outer.Dst != ingressAddr {
		return Delivery{}, fe, trace.DropDecap, fmt.Errorf("core: ingress got packet for %s", outer.Dst)
	}
	if tr != nil {
		tr.Event(trace.Event{
			Kind: trace.KindEgress, Seq: seq,
			Router: fe.eg.Member, AS: e.Net.DomainOf(fe.eg.Member),
			Cost: fe.eg.BoneCost, Detail: fe.egDetail,
		})
	}

	// Leg 2 — relay the wire packet member-to-member along the bone
	// path. The two pooled endpoints alternate: each re-encapsulation
	// serializes into one endpoint's buffer while reading the header and
	// payload that still alias the other's, so no hop copies anything.
	relayEP, spareEP := ctx.epB, ctx.epA
	relayOpt, spareOpt := ctx.optB, ctx.optA
	prevLoop := e.Net.Router(fe.ing.Member).Loopback
	for i := 1; i < len(fe.eg.BonePath); i++ {
		hop := fe.eg.BonePath[i]
		nextLoop := e.Net.Router(hop).Loopback
		relayEP.Local = prevLoop
		relayEP.Observe(tr, &e.counters, seq)
		wire, err = relayEP.EncapToShared(nextLoop, inner, pl)
		if err != nil {
			return Delivery{}, fe, trace.DropRelay, fmt.Errorf("core: bone relay %d: %w", i, err)
		}
		relayEP.Local = nextLoop
		_, inner, pl, err = relayEP.DecapShared(wire, relayOpt[:0])
		if err != nil {
			return Delivery{}, fe, trace.DropRelay, fmt.Errorf("core: bone decap %d: %w", i, err)
		}
		if tr != nil {
			tr.Event(trace.Event{
				Kind: trace.KindBoneHop, Seq: seq,
				Router: hop, AS: e.Net.DomainOf(hop),
				Cost: ep.bone.Dist(fe.eg.BonePath[i-1], hop),
			})
		}
		prevLoop = nextLoop
		relayEP, spareEP = spareEP, relayEP
		relayOpt, spareOpt = spareOpt, relayOpt
	}

	// Leg 3 — exit the vN-Bone and reach the destination host. After the
	// loop relayEP's buffer is the free one; the current header and
	// payload alias spareEP's.
	relayEP.Local = prevLoop
	relayEP.Observe(tr, &e.counters, seq)
	if fe.dstVN.IsSelf() {
		under, ok := inner.UnderlayDst()
		if !ok {
			return Delivery{}, fe, trace.DropTail, fmt.Errorf("core: self-addressed destination without underlay address")
		}
		// Final tunnel: egress → destination host over IPv(N-1), an
		// ad-hoc encapsulation toward the host's underlay address.
		wire, err = relayEP.EncapToShared(under, inner, pl)
		if err != nil {
			return Delivery{}, fe, trace.DropTail, fmt.Errorf("core: final tunnel: %w", err)
		}
	} else {
		wire, err = relayEP.EncapToShared(dst.Addr, inner, pl)
		if err != nil {
			return Delivery{}, fe, trace.DropTail, fmt.Errorf("core: native delivery encap: %w", err)
		}
	}
	dstEP := spareEP
	dstEP.Local = dst.Addr
	dstEP.Observe(tr, &e.counters, seq)
	_, inner, pl, err = dstEP.DecapShared(wire, spareOpt[:0])
	if err != nil {
		return Delivery{}, fe, trace.DropTail, fmt.Errorf("core: final decap: %w", err)
	}

	// The trace tag must have survived the whole wire path.
	for _, o := range inner.Options {
		if o.Type == packet.OptTraceTag && len(o.Value) == 4 {
			d.TraceTag = binary.BigEndian.Uint32(o.Value)
		}
	}
	if d.TraceTag != seq {
		return Delivery{}, fe, trace.DropIntegrity, fmt.Errorf("core: trace tag corrupted in transit (%d != %d)", d.TraceTag, seq)
	}
	// The arrived payload aliases the pooled wire buffer; verify the
	// round-trip was bit-exact, then hand the caller back their own
	// bytes so the Delivery outlives the pooled working set.
	if !bytes.Equal(pl, payload) {
		return Delivery{}, fe, trace.DropIntegrity, fmt.Errorf("core: payload corrupted in transit")
	}
	d.Payload = payload
	e.counters.PayloadBytes(len(payload))
	e.counters.Deliver()
	if tr != nil {
		tr.Event(trace.Event{
			Kind: trace.KindDeliver, Seq: seq,
			Router: dst.Attach, AS: dst.Domain, Cost: d.TotalCost,
		})
	}
	return d, fe, trace.DropNone, nil
}

// FormatTrace renders a recorded event sequence as a per-hop path trace
// with router names resolved against this Evolution's topology.
func (e *Evolution) FormatTrace(events []trace.Event) string {
	return trace.Format(events, func(id topology.RouterID) string {
		return e.Net.Router(id).Name
	})
}

// DescribeDelivery renders a delivery as a human-readable hop-by-hop
// trace: the anycast leg, the vN-Bone leg and the final tail, with router
// names and per-leg costs.
func (e *Evolution) DescribeDelivery(d Delivery) string {
	name := func(id topology.RouterID) string { return e.Net.Router(id).Name }
	pathStr := func(p []topology.RouterID) string {
		s := ""
		for i, r := range p {
			if i > 0 {
				s += " → "
			}
			s += name(r)
		}
		return s
	}
	out := fmt.Sprintf("%s → %s (stretch %.2f)\n", d.SrcVN, d.DstVN, d.Stretch)
	out += fmt.Sprintf("  anycast leg (cost %d): %s\n", d.Ingress.Cost, pathStr(d.Ingress.RouterPath))
	if d.VNHops > 0 {
		out += fmt.Sprintf("  vN-Bone leg (%d hops, cost %d, %s): %s\n",
			d.VNHops, d.Egress.BoneCost, d.Egress.Policy, pathStr(d.Egress.BonePath))
	} else {
		out += fmt.Sprintf("  vN-Bone leg: exits at ingress %s (%s)\n", name(d.Egress.Member), d.Egress.Policy)
	}
	if len(d.TailPath) > 1 {
		out += fmt.Sprintf("  tail leg (cost %d): %s\n", d.TailCost, pathStr(d.TailPath))
	} else {
		out += fmt.Sprintf("  tail leg (cost %d): local delivery\n", d.TailCost)
	}
	out += fmt.Sprintf("  total %d vs baseline %d\n", d.TotalCost, d.BaselineCost)
	return out
}

// FailIntraLink injects an intra-domain link failure and reconverges
// only the affected domain (IGP SPTs, bone intra mesh). It reports
// whether the link existed.
func (e *Evolution) FailIntraLink(a, b topology.RouterID) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.mutSeq.Add(1)
	if !e.Net.FailIntraLink(a, b) {
		e.republishLocked()
		return false
	}
	e.reconvergeIntraLocked(e.Net.DomainOf(a))
	return true
}

// RestoreIntraLink repairs an intra-domain link.
func (e *Evolution) RestoreIntraLink(a, b topology.RouterID, latency int64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.mutSeq.Add(1)
	e.Net.RestoreIntraLink(a, b, latency)
	e.reconvergeIntraLocked(e.Net.DomainOf(a))
}

// FailInterLink injects an inter-domain link failure; BGP re-converges
// around it. The removed link is returned for later restoration.
func (e *Evolution) FailInterLink(a, b topology.RouterID) (topology.InterLink, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.mutSeq.Add(1)
	l, ok := e.Net.FailInterLink(a, b)
	if !ok {
		e.republishLocked()
		return topology.InterLink{}, false
	}
	e.reconvergeInterLocked()
	return l, true
}

// RestoreInterLink repairs a previously failed inter-domain link.
func (e *Evolution) RestoreInterLink(l topology.InterLink) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.mutSeq.Add(1)
	e.Net.RestoreInterLink(l)
	e.reconvergeInterLocked()
}

// reconvergeIntraLocked reacts to an intra-domain link event in asn:
// only that domain's IGP SPTs and bone intra mesh are recomputed, and
// only redirect-cache entries whose trajectory crosses asn are dropped.
// AS-level BGP tables depend solely on inter-domain topology and
// originations, so no BGP refresh is needed — the chaos oracle invariant
// referees that claim on every schedule. Callers hold mu and have bumped
// mutSeq.
func (e *Evolution) reconvergeIntraLocked(asn topology.ASN) {
	if e.cfg.FullReconverge {
		e.counters.InvalFull()
		e.IGP.Invalidate()
		e.BGP.Refresh()
		_ = e.buildEpochLocked(nil, nil, nil, true)
		return
	}
	e.counters.InvalDomain()
	e.IGP.InvalidateDomain(asn)
	scope := map[topology.ASN]bool{asn: true}
	_ = e.buildEpochLocked(scope, scope, nil, false)
}

// reconvergeInterLocked reacts to an inter-domain link event: the
// full-graph SPTs and BGP tables reconverge, but every domain's intra
// SPTs and bone intra meshes are reused — inter links appear in neither.
// Redirect trajectories can change anywhere, so the cache flushes
// wholesale. Callers hold mu and have bumped mutSeq.
func (e *Evolution) reconvergeInterLocked() {
	if e.cfg.FullReconverge {
		e.counters.InvalFull()
		e.IGP.Invalidate()
	} else {
		e.counters.InvalInter()
		e.IGP.InvalidateInter()
	}
	e.BGP.Refresh()
	_ = e.buildEpochLocked(nil, nil, nil, true)
}

// IngressShare returns, for every participating domain, the fraction of
// hosts whose anycast ingress lands there — the "attracted traffic" that
// assumption A4 converts into revenue.
func (e *Evolution) IngressShare() (map[topology.ASN]float64, error) {
	ep := e.epoch.Load()
	if ep.err != nil {
		return nil, ep.err
	}
	counts := map[topology.ASN]int{}
	total := 0
	for _, h := range e.Net.Hosts {
		res, err := e.Anycast.ResolveFromHostVia(ep.dep, h)
		if err != nil {
			continue
		}
		counts[e.Net.DomainOf(res.Member)]++
		total++
	}
	out := map[topology.ASN]float64{}
	if total == 0 {
		return out, nil
	}
	for asn, c := range counts {
		out[asn] = float64(c) / float64(total)
	}
	return out, nil
}

// StretchSample sends between all ordered host pairs (up to maxPairs,
// 0 = unlimited) and returns the stretch sample. Failed deliveries are
// counted in failures.
func (e *Evolution) StretchSample(maxPairs int) (sample []float64, failures int, err error) {
	return e.StretchSampleParallel(maxPairs, 1)
}

// StretchSampleParallel is StretchSample fanned out over workers
// goroutines (≤ 0 or 1 means serial). The returned sample is in the same
// deterministic pair order regardless of worker count.
func (e *Evolution) StretchSampleParallel(maxPairs, workers int) (sample []float64, failures int, err error) {
	// Surface ErrNotDeployed before fanning out, so a dead deployment is
	// an error rather than all-failures.
	if err := e.Ready(); err != nil {
		return nil, 0, err
	}
	type pair struct{ src, dst *topology.Host }
	var pairs []pair
	for _, src := range e.Net.Hosts {
		for _, dst := range e.Net.Hosts {
			if src.ID == dst.ID {
				continue
			}
			if maxPairs > 0 && len(pairs) >= maxPairs {
				goto enumerated
			}
			pairs = append(pairs, pair{src, dst})
		}
	}
enumerated:
	results := make([]float64, len(pairs))
	failed := make([]bool, len(pairs))
	if workers <= 1 {
		for i, p := range pairs {
			d, err := e.Send(p.src, p.dst, nil)
			if err != nil {
				failed[i] = true
				continue
			}
			results[i] = d.Stretch
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(pairs) {
						return
					}
					d, err := e.Send(pairs[i].src, pairs[i].dst, nil)
					if err != nil {
						failed[i] = true
						continue
					}
					results[i] = d.Stretch
				}
			}()
		}
		wg.Wait()
	}
	for i := range pairs {
		if failed[i] {
			failures++
			continue
		}
		sample = append(sample, results[i])
	}
	return sample, failures, nil
}
