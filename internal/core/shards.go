package core

import (
	"sync"

	"github.com/evolvable-net/evolve/internal/addr"
	"github.com/evolvable-net/evolve/internal/anycast"
	"github.com/evolvable-net/evolve/internal/packet"
	"github.com/evolvable-net/evolve/internal/routing/bgpvn"
	"github.com/evolvable-net/evolve/internal/topology"
	"github.com/evolvable-net/evolve/internal/tunnel"
)

// defaultDeliveryShards is the shard count used when
// Config.DeliveryShards is zero.
const defaultDeliveryShards = 16

// maxDeliveryShards bounds Config.DeliveryShards.
const maxDeliveryShards = 256

// normalizeShards clamps a configured shard count to [1, 256] and rounds
// it down to a power of two so shard selection is a mask, not a modulo.
func normalizeShards(n int) int {
	if n <= 0 {
		n = defaultDeliveryShards
	}
	if n > maxDeliveryShards {
		n = maxDeliveryShards
	}
	p := 1
	for p*2 <= n {
		p *= 2
	}
	return p
}

// addrShards is the epoch's endhost registry: the per-host native IPvN
// addresses, split into host-ID-hashed shards. Only native addresses are
// stored — a host whose access provider does not participate derives its
// temporary self-address from its underlay address (§3.3.2), so absence
// IS the self-addressed state and a fleet of a million unregistered
// hosts costs nothing.
//
// Published addrShards are immutable. Mutators copy-on-write at shard
// granularity (see Evolution.relabelScoped): an epoch build that touches
// two domains clones only the shards holding those domains' hosts, and a
// link event clones nothing at all.
type addrShards struct {
	mask   uint32
	shards []map[topology.HostID]addr.VN
}

func newAddrShards(n int) *addrShards {
	s := &addrShards{mask: uint32(n - 1), shards: make([]map[topology.HostID]addr.VN, n)}
	for i := range s.shards {
		s.shards[i] = map[topology.HostID]addr.VN{}
	}
	return s
}

// addrOf returns h's current IPvN address: the stored native address
// when one exists, the derived self-address otherwise.
func (s *addrShards) addrOf(h *topology.Host) addr.VN {
	if v, ok := s.shards[uint32(h.ID)&s.mask][h.ID]; ok {
		return v
	}
	return addr.SelfAddress(h.Addr)
}

// cow returns a copy of s sharing every shard map. The caller clones
// individual shards before writing to them.
func (s *addrShards) cow() *addrShards {
	ns := &addrShards{mask: s.mask, shards: make([]map[topology.HostID]addr.VN, len(s.shards))}
	copy(ns.shards, s.shards)
	return ns
}

// resolveKey identifies one memoised redirect decision.
type resolveKey struct {
	host topology.HostID
	a    addr.V4
}

// resolveShard is one lock-striped partition of the redirect cache.
// Plain maps under an RWMutex, not sync.Map: the read path is then a
// lock-free-in-practice RLock plus one map probe with a struct key —
// no interface boxing, so a cache hit allocates nothing.
type resolveShard struct {
	mu sync.RWMutex
	m  map[resolveKey]*anycast.Resolution
}

// resolveShards is the epoch's redirect cache, split into
// host-ID-hashed shards so 64 concurrent senders do not serialize on one
// lock or one map.
type resolveShards struct {
	mask   uint32
	shards []resolveShard
}

func newResolveShards(n int) *resolveShards {
	s := &resolveShards{mask: uint32(n - 1), shards: make([]resolveShard, n)}
	for i := range s.shards {
		s.shards[i].m = map[resolveKey]*anycast.Resolution{}
	}
	return s
}

func (s *resolveShards) load(k resolveKey) (*anycast.Resolution, bool) {
	sh := &s.shards[uint32(k.host)&s.mask]
	sh.mu.RLock()
	v, ok := sh.m[k]
	sh.mu.RUnlock()
	return v, ok
}

func (s *resolveShards) store(k resolveKey, v *anycast.Resolution) {
	sh := &s.shards[uint32(k.host)&s.mask]
	sh.mu.Lock()
	sh.m[k] = v
	sh.mu.Unlock()
}

// carry copies the memoised resolutions into a fresh cache, dropping
// every entry whose recorded domain-level trajectory crosses an evicted
// domain — only those could have been re-routed or re-captured by the
// event. Copying entry by entry (rather than sharing the shards) also
// sheds any entry a racing sender managed to store after the mutation
// sequence had already moved on.
func (s *resolveShards) carry(evict map[topology.ASN]bool) *resolveShards {
	next := newResolveShards(len(s.shards))
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for k, res := range sh.m {
			evicted := false
			for _, asn := range res.ASPath {
				if evict[asn] {
					evicted = true
					break
				}
			}
			if !evicted {
				next.shards[i].m[k] = res
			}
		}
		sh.mu.RUnlock()
	}
	return next
}

// flowKey identifies one delivery flow: source, destination, and the
// ingress deployment (the shared anycast address or a provider-specific
// one) the sender encapsulates toward.
type flowKey struct {
	src, dst topology.HostID
	dep      addr.V4
}

// flowEntry is the memoised delivery skeleton of one flow: every routing
// decision of a send — the redirect resolution, the egress pick with its
// bone path, the tail leg and the IPv(N-1) baseline. Routing is
// deterministic within an epoch, so the skeleton is exact, not a
// heuristic; a flow-cache hit re-runs only the wire-level
// encapsulation path and skips all path computation. Entries are
// immutable once stored (BonePath/TailPath slices included — deliveries
// share them read-only).
type flowEntry struct {
	srcVN, dstVN addr.VN
	ing          anycast.Resolution
	ingressAS    topology.ASN
	eg           bgpvn.Egress
	egDetail     string
	vnHops       int
	tailCost     int64
	tailPath     []topology.RouterID
	baseline     int64
}

// flowShard is one lock-striped partition of the flow cache.
type flowShard struct {
	mu sync.RWMutex
	m  map[flowKey]*flowEntry
}

// flowShards is the epoch's delivery flow cache, hashed by source host.
// It is rebuilt fresh whenever routing state changes (epoch builds,
// registrations) — unlike the redirect cache there is no per-entry
// carry-over, because a flow skeleton depends on bone meshes, BGPvN
// tables, IGP trees and the baseline at once and scoping an eviction
// over all four buys nothing over recomputing on first miss.
type flowShards struct {
	mask   uint32
	shards []flowShard
}

func newFlowShards(n int) *flowShards {
	s := &flowShards{mask: uint32(n - 1), shards: make([]flowShard, n)}
	for i := range s.shards {
		s.shards[i].m = map[flowKey]*flowEntry{}
	}
	return s
}

func (s *flowShards) load(k flowKey) (*flowEntry, bool) {
	sh := &s.shards[uint32(k.src)&s.mask]
	sh.mu.RLock()
	v, ok := sh.m[k]
	sh.mu.RUnlock()
	return v, ok
}

func (s *flowShards) store(k flowKey, v *flowEntry) {
	sh := &s.shards[uint32(k.src)&s.mask]
	sh.mu.Lock()
	sh.m[k] = v
	sh.mu.Unlock()
}

// sendCtx is the pooled per-send working set: two tunnel endpoints used
// ping-pong fashion along the wire path (each encapsulation serializes
// into its endpoint's buffer while reading the header and payload that
// alias the other endpoint's), plus option scratch space so building and
// decoding IPvN header options touches no fresh memory. With the pool
// warm, a steady-state Send allocates nothing.
type sendCtx struct {
	epA, epB *tunnel.Endpoint
	// optA/optB are the decode scratches for epA/epB's DecapShared.
	optA, optB []packet.Option
	// hdrOpts, underBuf and tagBuf build the source header's options
	// (OptUnderlayDst for self-addressed destinations, OptTraceTag);
	// markBuf holds the OptFallback marker byte of baseline deliveries.
	hdrOpts  [2]packet.Option
	underBuf [4]byte
	tagBuf   [4]byte
	markBuf  [1]byte
}

var sendCtxPool = sync.Pool{
	New: func() any {
		return &sendCtx{
			epA:  tunnel.NewEndpoint(0),
			epB:  tunnel.NewEndpoint(0),
			optA: make([]packet.Option, 0, 8),
			optB: make([]packet.Option, 0, 8),
		}
	},
}
