package core

import (
	"testing"

	"github.com/evolvable-net/evolve/internal/anycast"
	"github.com/evolvable-net/evolve/internal/topology"
)

// providerWorld: two participant providers P1 (near the client) and P2
// (far), client stub C buying transit from P1 only; P1 peers with P2.
func providerWorld(t *testing.T) (*topology.Network, *Evolution, *topology.Host, *topology.Host) {
	t.Helper()
	b := topology.NewBuilder()
	dP1 := b.AddDomain("P1")
	dP2 := b.AddDomain("P2")
	dC := b.AddDomain("C")
	rP1 := b.AddRouter(dP1, "")
	rP2 := b.AddRouter(dP2, "")
	rC := b.AddRouter(dC, "")
	b.Peer(rP1, rP2, 40)
	b.Provide(rP1, rC, 10)
	h := b.AddHost(dC, rC, "user", 1)
	srv := b.AddHost(dP2, rP2, "server", 1)
	net, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	evo, err := New(net, Config{Option: anycast.Option1})
	if err != nil {
		t.Fatal(err)
	}
	evo.DeployRouter(rP1)
	evo.DeployRouter(rP2)
	return net, evo, h, srv
}

func TestSendViaChoosesProviderIngress(t *testing.T) {
	net, evo, h, srv := providerWorld(t)
	dP1 := net.DomainByName("P1")
	dP2 := net.DomainByName("P2")

	// Default anycast: closest provider P1 captures.
	d, err := evo.Send(h, srv, []byte("default"))
	if err != nil {
		t.Fatal(err)
	}
	if net.DomainOf(d.Ingress.Member) != dP1.ASN {
		t.Fatalf("default ingress in %s", net.Domain(net.DomainOf(d.Ingress.Member)).Name)
	}
	defaultCost := d.TotalCost

	// The user chooses P2 explicitly: ingress must be P2's router, even
	// though it is farther.
	addr2, err := evo.EnableProviderChoice(dP2.ASN)
	if err != nil {
		t.Fatal(err)
	}
	if !net.Domain(dP2.ASN).Prefix.Contains(addr2) {
		t.Errorf("provider address %s outside P2's block", addr2)
	}
	d, err = evo.SendVia(h, srv, dP2.ASN, []byte("via P2"))
	if err != nil {
		t.Fatal(err)
	}
	if net.DomainOf(d.Ingress.Member) != dP2.ASN {
		t.Errorf("chosen ingress in %s, want P2", net.Domain(net.DomainOf(d.Ingress.Member)).Name)
	}
	if string(d.Payload) != "via P2" {
		t.Errorf("payload = %q", d.Payload)
	}
	// Choice has a price: the user sacrificed proximity.
	if d.Ingress.Cost <= defaultCost && d.TotalCost < defaultCost {
		t.Errorf("choosing the far provider should not be cheaper: %d vs %d", d.TotalCost, defaultCost)
	}

	// Choosing P1 explicitly matches the default capture.
	if _, err := evo.EnableProviderChoice(dP1.ASN); err != nil {
		t.Fatal(err)
	}
	d, err = evo.SendVia(h, srv, dP1.ASN, nil)
	if err != nil {
		t.Fatal(err)
	}
	if net.DomainOf(d.Ingress.Member) != dP1.ASN {
		t.Errorf("P1 choice landed in %s", net.Domain(net.DomainOf(d.Ingress.Member)).Name)
	}
}

func TestEnableProviderChoiceValidation(t *testing.T) {
	net, evo, h, srv := providerWorld(t)
	dC := net.DomainByName("C")
	if _, err := evo.EnableProviderChoice(dC.ASN); err == nil {
		t.Error("non-participant provider accepted")
	}
	if _, err := evo.SendVia(h, srv, dC.ASN, nil); err == nil {
		t.Error("SendVia to unenabled provider succeeded")
	}
	// Idempotent.
	dP2 := net.DomainByName("P2")
	a1, err := evo.EnableProviderChoice(dP2.ASN)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := evo.EnableProviderChoice(dP2.ASN)
	if err != nil || a1 != a2 {
		t.Errorf("second enable: %s %v", a2, err)
	}
	// Distinct from the shared deployment address.
	if a1 == evo.AnycastAddr() {
		t.Error("provider address collides with shared address")
	}
}

func TestProviderMembershipTracksDeployment(t *testing.T) {
	net, evo, h, srv := providerWorld(t)
	dP2 := net.DomainByName("P2")
	if _, err := evo.EnableProviderChoice(dP2.ASN); err != nil {
		t.Fatal(err)
	}
	// P2's only router undeploys: provider-specific delivery must fail,
	// while the shared address still works via P1.
	evo.UndeployRouter(dP2.Routers[0])
	if _, err := evo.SendVia(h, srv, dP2.ASN, nil); err == nil {
		t.Error("SendVia succeeded with no members")
	}
	if _, err := evo.Send(h, srv, nil); err != nil {
		t.Errorf("shared delivery broke: %v", err)
	}
	// Redeploy: choice works again (membership synced on deploy).
	evo.DeployRouter(dP2.Routers[0])
	if _, err := evo.SendVia(h, srv, dP2.ASN, nil); err != nil {
		t.Errorf("SendVia after redeploy: %v", err)
	}
}
