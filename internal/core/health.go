package core

import (
	"fmt"
	"sync"

	"github.com/evolvable-net/evolve/internal/addr"
	"github.com/evolvable-net/evolve/internal/topology"
	"github.com/evolvable-net/evolve/internal/trace"
)

// FallbackConfig parameterises the delivery plane's graceful-degradation
// layer (DESIGN.md §12): per-flow health tracking and automatic
// universal-access fallback over the IPv(N-1) baseline path when the vN
// path is broken. The zero value disables the layer entirely — sends
// fail fast exactly as they always did, which is the ablation arm of the
// availability experiments.
type FallbackConfig struct {
	// Enabled turns the health/fallback layer on. All other fields are
	// ignored (and the zero value is the ablation) when false.
	Enabled bool
	// SuspectAfter is the number of consecutive vN failures after which a
	// healthy flow becomes suspect. Default 1.
	SuspectAfter int
	// FallbackAfter is the number of consecutive vN failures after which
	// a flow enters the fallback state and stops attempting the vN path
	// (every send rides the baseline until a probe heals it). Default 3.
	FallbackAfter int
	// ProbeBase is the initial probe interval of a flow in fallback,
	// measured in sends of that flow (the layer is wall-clock-free so
	// twin worlds stay deterministic). Default 4.
	ProbeBase int
	// ProbeMax caps the exponential probe backoff. Default 64.
	ProbeMax int
	// ProbationSends is the number of consecutive vN successes a
	// recovering flow must accumulate in probation before it is healthy
	// again. Default 3.
	ProbationSends int
	// ProbeJitterSeed seeds the per-flow deterministic jitter applied to
	// probe intervals so a fleet of fallback flows does not probe in
	// lockstep. Flows mix their identity in, so any seed (including 0)
	// de-synchronizes them.
	ProbeJitterSeed int64
}

// withDefaults fills the zero fields of an enabled config; a disabled
// config passes through untouched so Config round-trips exactly.
func (c FallbackConfig) withDefaults() FallbackConfig {
	if !c.Enabled {
		return c
	}
	if c.SuspectAfter <= 0 {
		c.SuspectAfter = 1
	}
	if c.FallbackAfter <= 0 {
		c.FallbackAfter = 3
	}
	if c.ProbeBase <= 0 {
		c.ProbeBase = 4
	}
	if c.ProbeMax <= 0 {
		c.ProbeMax = 64
	}
	if c.ProbeMax < c.ProbeBase {
		c.ProbeMax = c.ProbeBase
	}
	if c.ProbationSends <= 0 {
		c.ProbationSends = 3
	}
	return c
}

// HealthState is one flow's position in the degradation state machine:
// healthy → suspect → fallback → probation → healthy.
type HealthState uint8

const (
	// HealthHealthy: the flow delivers over the vN path.
	HealthHealthy HealthState = iota
	// HealthSuspect: recent vN failures, still attempting the vN path.
	HealthSuspect
	// HealthFallback: the flow rides the IPv(N-1) baseline and probes
	// the vN path on a seeded-jitter backoff schedule.
	HealthFallback
	// HealthProbation: a probe succeeded; the flow is back on the vN
	// path but must string together ProbationSends successes before it
	// counts as healthy.
	HealthProbation
)

// String names the state the way counters and traces print it.
func (s HealthState) String() string {
	switch s {
	case HealthHealthy:
		return "healthy"
	case HealthSuspect:
		return "suspect"
	case HealthFallback:
		return "fallback"
	case HealthProbation:
		return "probation"
	default:
		return fmt.Sprintf("state(%d)", uint8(s))
	}
}

// sendCounter abstracts the send-path tally set so the health and
// fallback machinery counts into the shared striped Counters (loop
// sends) or a per-batch CounterBatch accumulator (batched sends) without
// branching. Both implementations are pointer receivers, so passing
// either through the interface allocates nothing.
type sendCounter interface {
	redirectCounter
	// Send counts one delivery attempt entering the send path.
	Send()
	// Deliver counts one successful end-to-end delivery.
	Deliver()
	// Drop counts one failed delivery under its reason.
	Drop(trace.DropReason)
	// Encap/Decap count tunnel operations.
	Encap()
	Decap()
	// PayloadBytes counts payload bytes carried by deliveries.
	PayloadBytes(int)
	// FallbackSend/FallbackRescue/FallbackProbe count baseline-path
	// deliveries, in-line rescues and vN probes from fallback.
	FallbackSend()
	FallbackRescue()
	FallbackProbe()
	// HealthSuspect/HealthFallback/HealthProbation/HealthRecovered count
	// flow-health state transitions.
	HealthSuspect()
	HealthFallback()
	HealthProbation()
	HealthRecovered()
}

// flowHealth is the health record of one delivery flow. It lives on the
// Evolution (not the epoch — flow caches are rebuilt every epoch, health
// history must survive them) and is mutated under its own mutex by
// whichever sender touches the flow, so concurrent senders serialize
// per-flow, never globally.
type flowHealth struct {
	mu    sync.Mutex
	state HealthState
	// fails counts consecutive vN failures; okRun counts consecutive vN
	// successes while in probation.
	fails, okRun int
	// sinceProbe counts this flow's sends since the last probe;
	// probeEvery is the current backoff interval and jit its jitter.
	sinceProbe, probeEvery, jit int
	// jstate is the per-flow xorshift64 jitter generator state.
	jstate uint64
	// lastSeq is the routing-epoch sequence at the last observed vN
	// failure: a flow in fallback probes immediately when the epoch has
	// changed since, because new routing state is the likeliest cure.
	lastSeq uint64
	// dstVN is the flow's destination IPvN address as of its last send,
	// for matching external unacked-delivery signals.
	dstVN addr.VN
	// lastFE is the flow's last materialized vN skeleton, for matching
	// external peer-suspicion signals against its ingress and bone path.
	lastFE *flowEntry
	// fbCost memoises the flow's baseline plan per routing epoch (fbSeq
	// is the epoch sequence it was computed against, fbOK its validity),
	// so steady-state fallback sends recompute nothing.
	fbSeq  uint64
	fbOK   bool
	fbCost int64
}

// mixFlowKey hashes a flow identity into the per-flow jitter seed.
func mixFlowKey(k flowKey) uint64 {
	x := uint64(k.src)*0x9e3779b97f4a7c15 ^ uint64(k.dst)*0xbf58476d1ce4e5b9 ^ uint64(k.dep)*0x94d049bb133111eb
	x ^= x >> 31
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	return x
}

// nextJitter draws the next deterministic jitter value in [0, span).
// Callers hold h.mu.
func (h *flowHealth) nextJitter(span int) int {
	x := h.jstate
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	h.jstate = x
	if span <= 0 {
		return 0
	}
	return int(x % uint64(span))
}

// healthShard is one lock-striped partition of the health registry.
type healthShard struct {
	mu sync.RWMutex
	m  map[flowKey]*flowHealth
}

// healthShards is the Evolution's per-flow health registry, hashed by
// source host like the flow cache. Records are created on first send of
// a flow and live for the Evolution's lifetime (health history must span
// epochs).
type healthShards struct {
	mask   uint32
	shards []healthShard
	seed   int64
}

func newHealthShards(n int, seed int64) *healthShards {
	s := &healthShards{mask: uint32(n - 1), shards: make([]healthShard, n), seed: seed}
	for i := range s.shards {
		s.shards[i].m = map[flowKey]*flowHealth{}
	}
	return s
}

// get returns the health record for k, creating it on first sight.
func (s *healthShards) get(k flowKey) *flowHealth {
	sh := &s.shards[uint32(k.src)&s.mask]
	sh.mu.RLock()
	h := sh.m[k]
	sh.mu.RUnlock()
	if h != nil {
		return h
	}
	sh.mu.Lock()
	if h = sh.m[k]; h == nil {
		h = &flowHealth{jstate: uint64(s.seed) ^ mixFlowKey(k)}
		if h.jstate == 0 {
			h.jstate = 0x9e3779b97f4a7c15
		}
		sh.m[k] = h
	}
	sh.mu.Unlock()
	return h
}

// peek returns the health record for k without creating one.
func (s *healthShards) peek(k flowKey) *flowHealth {
	sh := &s.shards[uint32(k.src)&s.mask]
	sh.mu.RLock()
	h := sh.m[k]
	sh.mu.RUnlock()
	return h
}

// each visits every health record; used by the external-signal feeds and
// the inspector. Mutator-side only.
func (s *healthShards) each(fn func(k flowKey, h *flowHealth)) {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for k, h := range sh.m {
			fn(k, h)
		}
		sh.mu.RUnlock()
	}
}

// observeDst refreshes the record's destination IPvN address for
// external-signal matching; the error-epoch path calls it because it
// never runs decide (which refreshes it on the healthy path).
func (h *flowHealth) observeDst(v addr.VN) {
	h.mu.Lock()
	h.dstVN = v
	h.mu.Unlock()
}

// healthEvent emits a KindHealth transition event.
func healthEvent(tr trace.Tracer, seq uint32, detail string) {
	if tr != nil {
		tr.Event(trace.Event{Kind: trace.KindHealth, Seq: seq, Router: -1, Detail: detail})
	}
}

// decide makes the per-send health decision for this flow: whether to
// attempt the vN path at all, and whether that attempt is a probe out of
// the fallback state. dstVN refreshes the record's signal-matching
// identity. The decision depends only on the flow's state, the epoch
// sequence and the flow's own send count, so twin worlds replaying the
// same sends decide identically.
func (h *flowHealth) decide(epSeq uint64, fc *FallbackConfig, dstVN addr.VN, sc sendCounter) (attemptVN, probe bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.dstVN = dstVN
	if h.state != HealthFallback {
		return true, false
	}
	h.sinceProbe++
	if epSeq != h.lastSeq || h.sinceProbe >= h.probeEvery+h.jit {
		// Routing state changed since the failure (the likeliest cure),
		// or the backoff interval elapsed: probe the vN path.
		h.sinceProbe = 0
		h.probeEvery *= 2
		if h.probeEvery > fc.ProbeMax {
			h.probeEvery = fc.ProbeMax
		}
		h.jit = h.nextJitter(h.probeEvery/2 + 1)
		sc.FallbackProbe()
		return true, true
	}
	return false, false
}

// noteSuccess records a successful vN delivery: probes enter probation,
// probation accumulates toward healthy, suspicion clears.
func (h *flowHealth) noteSuccess(fe *flowEntry, probe bool, fc *FallbackConfig, sc sendCounter, tr trace.Tracer, seq uint32) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if fe != nil {
		h.lastFE = fe
	}
	h.fails = 0
	switch {
	case probe && h.state == HealthFallback:
		h.state = HealthProbation
		h.okRun = 1
		sc.HealthProbation()
		healthEvent(tr, seq, trace.DetailHealthProbation)
		if h.okRun >= fc.ProbationSends {
			h.state = HealthHealthy
			sc.HealthRecovered()
			healthEvent(tr, seq, trace.DetailHealthRecovered)
		}
	case h.state == HealthProbation:
		h.okRun++
		if h.okRun >= fc.ProbationSends {
			h.state = HealthHealthy
			h.okRun = 0
			sc.HealthRecovered()
			healthEvent(tr, seq, trace.DetailHealthRecovered)
		}
	case h.state == HealthSuspect:
		h.state = HealthHealthy
		sc.HealthRecovered()
		healthEvent(tr, seq, trace.DetailHealthRecovered)
	}
}

// noteFailure records a vN failure (a delivery error, an error epoch, or
// an external signal): suspicion accumulates, and past FallbackAfter the
// flow enters fallback with a fresh probe schedule. dstVN may be the
// zero value when the caller has no epoch at hand (external signals).
func (h *flowHealth) noteFailure(fe *flowEntry, epSeq uint64, fc *FallbackConfig, sc sendCounter, tr trace.Tracer, seq uint32) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if fe != nil {
		h.lastFE = fe
	}
	h.lastSeq = epSeq
	h.fails++
	h.okRun = 0
	switch h.state {
	case HealthFallback:
		// A failed probe: stay in fallback, backoff already advanced.
	case HealthProbation:
		// Relapse: straight back to fallback.
		h.enterFallbackLocked(fc)
		sc.HealthFallback()
		healthEvent(tr, seq, trace.DetailHealthFallback)
	default:
		if h.fails >= fc.FallbackAfter {
			h.enterFallbackLocked(fc)
			sc.HealthFallback()
			healthEvent(tr, seq, trace.DetailHealthFallback)
		} else if h.state == HealthHealthy && h.fails >= fc.SuspectAfter {
			h.state = HealthSuspect
			sc.HealthSuspect()
			healthEvent(tr, seq, trace.DetailHealthSuspect)
		}
	}
}

// enterFallbackLocked moves the flow into the fallback state with a
// fresh probe schedule. Callers hold h.mu.
func (h *flowHealth) enterFallbackLocked(fc *FallbackConfig) {
	h.state = HealthFallback
	h.fails = 0
	h.okRun = 0
	h.sinceProbe = 0
	h.probeEvery = fc.ProbeBase
	h.jit = h.nextJitter(h.probeEvery/2 + 1)
}

// FlowHealthInfo is the inspectable health of one delivery flow.
type FlowHealthInfo struct {
	// State is the flow's position in the degradation state machine.
	State HealthState
	// Fails is the current consecutive vN failure count.
	Fails int
	// OkRun is the consecutive success count while in probation.
	OkRun int
	// SinceProbe and ProbeEvery describe the probe backoff position of a
	// flow in fallback (sends since the last probe, current interval).
	SinceProbe, ProbeEvery int
}

// FlowHealth reports the health record of the (src, dst) flow on the
// shared deployment address, false when the flow has never been seen (or
// the fallback layer is disabled). Safe to call concurrently with sends.
func (e *Evolution) FlowHealth(src, dst *topology.Host) (FlowHealthInfo, bool) {
	if e.health == nil {
		return FlowHealthInfo{}, false
	}
	h := e.health.peek(flowKey{src: src.ID, dst: dst.ID, dep: e.Dep.Addr})
	if h == nil {
		return FlowHealthInfo{}, false
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return FlowHealthInfo{
		State:      h.state,
		Fails:      h.fails,
		OkRun:      h.okRun,
		SinceProbe: h.sinceProbe,
		ProbeEvery: h.probeEvery,
	}, true
}

// ReportUnackedVN feeds an external delivery-failure signal into the
// health layer: every flow whose destination IPvN address matches dst
// takes one failure, exactly as if a send had failed. The live overlay's
// reliability layer calls this when SendVNReliable exhausts its attempts
// (ErrNotAcked) — a failure mode the in-process wire path never sees. It
// returns the number of flows signalled; a no-op (0) when the fallback
// layer is disabled.
func (e *Evolution) ReportUnackedVN(dst addr.VN) int {
	if e.health == nil {
		return 0
	}
	epSeq := e.epoch.Load().seq
	n := 0
	e.health.each(func(k flowKey, h *flowHealth) {
		h.mu.Lock()
		match := h.dstVN == dst
		h.mu.Unlock()
		if match {
			h.noteFailure(nil, epSeq, &e.cfg.Fallback, &e.counters, nil, 0)
			n++
		}
	})
	e.counters.HealthSignal(n)
	return n
}

// ReportPeerSuspect feeds an overlay peer-suspicion signal into the
// health layer: every flow whose last vN skeleton rides the suspected
// router (as anycast ingress or bone hop) takes one failure. The
// livebridge calls this from the live overlay's PeerHealth suspicion
// table. It returns the number of flows signalled; a no-op (0) when the
// fallback layer is disabled.
func (e *Evolution) ReportPeerSuspect(id topology.RouterID) int {
	if e.health == nil {
		return 0
	}
	epSeq := e.epoch.Load().seq
	n := 0
	e.health.each(func(k flowKey, h *flowHealth) {
		h.mu.Lock()
		fe := h.lastFE
		h.mu.Unlock()
		if fe == nil {
			return
		}
		match := fe.ing.Member == id
		if !match {
			for _, r := range fe.eg.BonePath {
				if r == id {
					match = true
					break
				}
			}
		}
		if match {
			h.noteFailure(nil, epSeq, &e.cfg.Fallback, &e.counters, nil, 0)
			n++
		}
	})
	e.counters.HealthSignal(n)
	return n
}
