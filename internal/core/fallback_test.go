package core

import (
	"errors"
	"sync"
	"testing"

	"github.com/evolvable-net/evolve/internal/addr"
	"github.com/evolvable-net/evolve/internal/anycast"
	"github.com/evolvable-net/evolve/internal/topology"
	"github.com/evolvable-net/evolve/internal/trace"
)

// fbWorld is the canonical graceful-degradation topology: one participant
// domain P providing transit to two stub domains A and B that also peer
// directly, so severing A's uplink to P breaks the vN path (no reachable
// anycast ingress) while the A–B peering keeps the IPv(N-1) baseline
// intact — exactly the situation the fallback layer exists for.
type fbWorld struct {
	e          *Evolution
	srcs, dsts []*topology.Host
	rP, rA, rB topology.RouterID
}

func (w *fbWorld) src() *topology.Host { return w.srcs[0] }
func (w *fbWorld) dst() *topology.Host { return w.dsts[0] }

func newFBWorld(t *testing.T, fc FallbackConfig) *fbWorld {
	t.Helper()
	b := topology.NewBuilder()
	dP := b.AddDomain("P")
	dA := b.AddDomain("A")
	dB := b.AddDomain("B")
	rP := b.AddRouter(dP, "")
	rA := b.AddRouter(dA, "")
	rB := b.AddRouter(dB, "")
	b.Provide(rP, rA, 10)
	b.Provide(rP, rB, 10)
	b.Peer(rA, rB, 5)
	w := &fbWorld{rP: rP, rA: rA, rB: rB}
	w.srcs = append(w.srcs, b.AddHost(dA, rA, "src0", 1), b.AddHost(dA, rA, "src1", 1))
	w.dsts = append(w.dsts, b.AddHost(dB, rB, "dst0", 1), b.AddHost(dB, rB, "dst1", 1))
	net, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(net, Config{Option: anycast.Option1, Fallback: fc})
	if err != nil {
		t.Fatal(err)
	}
	e.DeployRouter(rP)
	return &fbWorld{e: e, srcs: w.srcs, dsts: w.dsts, rP: rP, rA: rA, rB: rB}
}

// TestFallbackCycleAndCounters walks one flow through the full
// degradation cycle — healthy → suspect → fallback → probation → healthy
// — and pins the Snapshot.Sub deltas at every checkpoint.
func TestFallbackCycleAndCounters(t *testing.T) {
	fc := FallbackConfig{
		Enabled: true, SuspectAfter: 1, FallbackAfter: 3,
		ProbeBase: 4, ProbeMax: 8, ProbationSends: 2, ProbeJitterSeed: 11,
	}
	w := newFBWorld(t, fc)
	e := w.e

	// Healthy: a vN delivery, no fallback, a healthy flow record.
	d, err := e.Send(w.src(), w.dst(), []byte("up"))
	if err != nil {
		t.Fatal(err)
	}
	if d.Fallback {
		t.Error("healthy send rode the baseline")
	}
	if d.Ingress.Member != w.rP {
		t.Errorf("ingress member %d, want %d", d.Ingress.Member, w.rP)
	}
	info, ok := e.FlowHealth(w.src(), w.dst())
	if !ok || info.State != HealthHealthy {
		t.Fatalf("flow health = %+v, %v, want healthy", info, ok)
	}

	// Sever the vN path; the baseline peering survives.
	link, lok := e.FailInterLink(w.rP, w.rA)
	if !lok {
		t.Fatal("uplink not found")
	}

	// Three rescued sends walk the flow healthy → suspect → fallback.
	before := e.Snapshot()
	for i, want := range []HealthState{HealthSuspect, HealthSuspect, HealthFallback} {
		d, err := e.Send(w.src(), w.dst(), []byte("down"))
		if err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
		if !d.Fallback {
			t.Fatalf("send %d did not ride the baseline", i)
		}
		if d.Stretch != 1 || d.TotalCost != d.BaselineCost {
			t.Fatalf("send %d: degraded delivery costed %+v", i, d)
		}
		info, _ := e.FlowHealth(w.src(), w.dst())
		if info.State != want {
			t.Fatalf("send %d: state %v, want %v", i, info.State, want)
		}
	}
	delta := e.Snapshot().Sub(before)
	if delta.DeliveryFallbackSends != 3 || delta.DeliveryFallbackRescues != 3 {
		t.Errorf("fallback sends/rescues = %d/%d, want 3/3",
			delta.DeliveryFallbackSends, delta.DeliveryFallbackRescues)
	}
	if delta.HealthSuspects != 1 || delta.HealthFallbacks != 1 {
		t.Errorf("suspect/fallback transitions = %d/%d, want 1/1",
			delta.HealthSuspects, delta.HealthFallbacks)
	}
	if delta.Deliveries != 3 || delta.Drops != 0 {
		t.Errorf("deliveries/drops = %d/%d, want 3/0", delta.Deliveries, delta.Drops)
	}

	// In the fallback state every send rides the baseline; the backoff
	// (ProbeBase 4, ProbeMax 8) guarantees at least one failed probe
	// within ten sends, and a failed probe is itself rescued.
	before = e.Snapshot()
	for i := 0; i < 10; i++ {
		d, err := e.Send(w.src(), w.dst(), nil)
		if err != nil || !d.Fallback {
			t.Fatalf("fallback-state send %d: %+v, %v", i, d, err)
		}
	}
	delta = e.Snapshot().Sub(before)
	if delta.DeliveryFallbackSends != 10 {
		t.Errorf("fallback-state sends = %d, want 10", delta.DeliveryFallbackSends)
	}
	if delta.HealthProbes == 0 {
		t.Error("no probe in 10 fallback sends despite ProbeMax 8")
	}
	if delta.HealthProbes != delta.DeliveryFallbackRescues {
		t.Errorf("probes %d != rescues %d: a failed probe must be rescued in-line",
			delta.HealthProbes, delta.DeliveryFallbackRescues)
	}

	// Repair: the epoch changes, so the very next send probes, succeeds
	// over vN, and probation accumulates back to healthy.
	e.RestoreInterLink(link)
	before = e.Snapshot()
	d, err = e.Send(w.src(), w.dst(), []byte("probe"))
	if err != nil {
		t.Fatal(err)
	}
	if d.Fallback {
		t.Error("post-repair probe still rode the baseline")
	}
	info, _ = e.FlowHealth(w.src(), w.dst())
	if info.State != HealthProbation {
		t.Fatalf("post-probe state %v, want probation", info.State)
	}
	if d, err = e.Send(w.src(), w.dst(), []byte("heal")); err != nil || d.Fallback {
		t.Fatalf("probation send: %+v, %v", d, err)
	}
	info, _ = e.FlowHealth(w.src(), w.dst())
	if info.State != HealthHealthy {
		t.Fatalf("post-probation state %v, want healthy", info.State)
	}
	delta = e.Snapshot().Sub(before)
	if delta.HealthProbes != 1 || delta.HealthProbations != 1 || delta.HealthRecovered != 1 {
		t.Errorf("repair deltas probes/probations/recovered = %d/%d/%d, want 1/1/1",
			delta.HealthProbes, delta.HealthProbations, delta.HealthRecovered)
	}
	if delta.DeliveryFallbackSends != 0 {
		t.Errorf("repaired flow still made %d baseline sends", delta.DeliveryFallbackSends)
	}
}

// TestErrorEpochRidesBaseline pins the error-epoch rescue: when the
// deployment empties, a fallback-enabled world delivers over the baseline
// (loop and batch alike) where the ablated world fails fast.
func TestErrorEpochRidesBaseline(t *testing.T) {
	w := newFBWorld(t, FallbackConfig{Enabled: true})
	e := w.e
	if _, err := e.Send(w.src(), w.dst(), nil); err != nil {
		t.Fatal(err)
	}
	e.UndeployRouter(w.rP) // empties the deployment: error epoch

	before := e.Snapshot()
	d, err := e.Send(w.src(), w.dst(), []byte("dark"))
	if err != nil {
		t.Fatalf("send under error epoch: %v", err)
	}
	if !d.Fallback {
		t.Error("error-epoch send did not ride the baseline")
	}
	out, err := e.SendBatch(w.src(), []*topology.Host{w.dst(), w.dsts[1]}, nil)
	if err != nil {
		t.Fatalf("batch under error epoch: %v", err)
	}
	for i, bd := range out {
		if !bd.Fallback {
			t.Errorf("batch packet %d did not ride the baseline", i)
		}
	}
	delta := e.Snapshot().Sub(before)
	if delta.DeliveryFallbackSends != 3 || delta.DeliveryFallbackRescues != 3 {
		t.Errorf("fallback sends/rescues = %d/%d, want 3/3",
			delta.DeliveryFallbackSends, delta.DeliveryFallbackRescues)
	}
	if delta.Deliveries != 3 || delta.Drops != 0 {
		t.Errorf("deliveries/drops = %d/%d, want 3/0", delta.Deliveries, delta.Drops)
	}

	// With the baseline severed too there is nothing to degrade to: the
	// send fails with the baseline drop reason, not a rescue. (Undeploying
	// rP only leaves the vN overlay — its underlay links still forward —
	// so isolating the source domain takes both of A's links.)
	if _, ok := e.FailInterLink(w.rA, w.rB); !ok {
		t.Fatal("peering link not found")
	}
	if _, ok := e.FailInterLink(w.rP, w.rA); !ok {
		t.Fatal("uplink not found")
	}
	before = e.Snapshot()
	if _, err := e.Send(w.src(), w.dst(), nil); err == nil {
		t.Fatal("send with no vN path and no baseline succeeded")
	}
	delta = e.Snapshot().Sub(before)
	if delta.DropsByReason[trace.DropNoBaseline] != 1 {
		t.Errorf("no-baseline drops = %d, want 1", delta.DropsByReason[trace.DropNoBaseline])
	}

	// The ablated twin fails fast with the epoch error.
	wa := newFBWorld(t, FallbackConfig{})
	if _, err := wa.e.Send(wa.src(), wa.dst(), nil); err != nil {
		t.Fatal(err)
	}
	wa.e.UndeployRouter(wa.rP)
	if _, err := wa.e.Send(wa.src(), wa.dst(), nil); !errors.Is(err, ErrNotDeployed) {
		t.Fatalf("ablated error-epoch send: %v, want ErrNotDeployed", err)
	}
}

// TestFlowHealthInspector pins the inspector's contract: no record before
// the first send, a live record after, and permanently disabled on the
// ablated configuration.
func TestFlowHealthInspector(t *testing.T) {
	w := newFBWorld(t, FallbackConfig{Enabled: true})
	if _, ok := w.e.FlowHealth(w.src(), w.dst()); ok {
		t.Error("unseen flow reported a health record")
	}
	if _, err := w.e.Send(w.src(), w.dst(), nil); err != nil {
		t.Fatal(err)
	}
	info, ok := w.e.FlowHealth(w.src(), w.dst())
	if !ok || info.State != HealthHealthy || info.Fails != 0 {
		t.Errorf("flow health = %+v, %v, want a healthy record", info, ok)
	}
	if _, ok := w.e.FlowHealth(w.srcs[1], w.dst()); ok {
		t.Error("sibling flow reported a record without a send")
	}

	wa := newFBWorld(t, FallbackConfig{})
	if _, err := wa.e.Send(wa.src(), wa.dst(), nil); err != nil {
		t.Fatal(err)
	}
	if _, ok := wa.e.FlowHealth(wa.src(), wa.dst()); ok {
		t.Error("ablated world reported a health record")
	}
}

// TestReportUnackedVN pins the external delivery-failure signal: matching
// flows take failures exactly as if their sends had failed, non-matching
// destinations and ablated worlds are no-ops.
func TestReportUnackedVN(t *testing.T) {
	w := newFBWorld(t, FallbackConfig{Enabled: true, FallbackAfter: 3})
	e := w.e
	if n := e.ReportUnackedVN(addr.VN{Hi: 1, Lo: 1}); n != 0 {
		t.Errorf("unknown destination matched %d flows", n)
	}
	if _, err := e.Send(w.src(), w.dst(), nil); err != nil {
		t.Fatal(err)
	}
	v, err := e.HostVNAddr(w.dst())
	if err != nil {
		t.Fatal(err)
	}
	before := e.Snapshot()
	for i := 1; i <= 3; i++ {
		if n := e.ReportUnackedVN(v); n != 1 {
			t.Fatalf("signal %d matched %d flows, want 1", i, n)
		}
	}
	info, _ := e.FlowHealth(w.src(), w.dst())
	if info.State != HealthFallback {
		t.Errorf("state after 3 unacked signals = %v, want fallback", info.State)
	}
	delta := e.Snapshot().Sub(before)
	if delta.HealthSignals != 3 {
		t.Errorf("health signals = %d, want 3", delta.HealthSignals)
	}

	wa := newFBWorld(t, FallbackConfig{})
	if _, err := wa.e.Send(wa.src(), wa.dst(), nil); err != nil {
		t.Fatal(err)
	}
	va, _ := wa.e.HostVNAddr(wa.dst())
	if n := wa.e.ReportUnackedVN(va); n != 0 {
		t.Errorf("ablated world signalled %d flows", n)
	}
}

// TestReportPeerSuspect pins the overlay peer-suspicion signal: flows
// whose last vN skeleton rides the suspected router take a failure,
// others do not.
func TestReportPeerSuspect(t *testing.T) {
	w := newFBWorld(t, FallbackConfig{Enabled: true, SuspectAfter: 1})
	e := w.e
	if _, err := e.Send(w.src(), w.dst(), nil); err != nil {
		t.Fatal(err)
	}
	// rA is a stub access router: never an ingress member or bone hop.
	if n := e.ReportPeerSuspect(w.rA); n != 0 {
		t.Errorf("non-member router matched %d flows", n)
	}
	info, _ := e.FlowHealth(w.src(), w.dst())
	if info.State != HealthHealthy {
		t.Fatalf("state disturbed by non-matching signal: %v", info.State)
	}
	if n := e.ReportPeerSuspect(w.rP); n != 1 {
		t.Errorf("ingress member matched %d flows, want 1", n)
	}
	info, _ = e.FlowHealth(w.src(), w.dst())
	if info.State != HealthSuspect {
		t.Errorf("state after peer suspicion = %v, want suspect", info.State)
	}

	wa := newFBWorld(t, FallbackConfig{})
	if _, err := wa.e.Send(wa.src(), wa.dst(), nil); err != nil {
		t.Fatal(err)
	}
	if n := wa.e.ReportPeerSuspect(wa.rP); n != 0 {
		t.Errorf("ablated world signalled %d flows", n)
	}
}

// TestFallbackSendZeroAlloc pins the degraded steady state: with the
// layer enabled, neither the healthy path (health bookkeeping engaged)
// nor the fallback-state path (baseline plan memoised, probe backoff
// pushed past the measurement window) allocates per send.
func TestFallbackSendZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	fc := FallbackConfig{Enabled: true, ProbeBase: 1 << 20, ProbeMax: 1 << 20}
	w := newFBWorld(t, fc)
	e := w.e
	payload := []byte("zero-alloc degraded steady state")
	for i := 0; i < 10; i++ {
		if _, err := e.Send(w.src(), w.dst(), payload); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := e.Send(w.src(), w.dst(), payload); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("healthy Send with fallback enabled allocates %.1f objects per op, want 0", allocs)
	}

	// Drive the flow into fallback (default FallbackAfter 3), then
	// measure the baseline steady state.
	if _, ok := e.FailInterLink(w.rP, w.rA); !ok {
		t.Fatal("uplink not found")
	}
	for i := 0; i < 5; i++ {
		if d, err := e.Send(w.src(), w.dst(), payload); err != nil || !d.Fallback {
			t.Fatalf("degraded send %d: %v", i, err)
		}
	}
	if info, _ := e.FlowHealth(w.src(), w.dst()); info.State != HealthFallback {
		t.Fatalf("state = %v, want fallback", info.State)
	}
	allocs = testing.AllocsPerRun(200, func() {
		d, err := e.Send(w.src(), w.dst(), payload)
		if err != nil || !d.Fallback {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("fallback-state Send allocates %.1f objects per op, want 0", allocs)
	}
}

// TestHealthCountersMonotonicRace hammers a fallback-enabled world with
// 64 concurrent senders while a mutator flaps the participant's uplink —
// rescues, fallbacks, probes and recoveries interleaving freely — and a
// sampler concurrently takes snapshots: every successive Sub must be
// non-negative (Sub panics on a regressing counter). At the end the
// transition counters must tie together relationally.
func TestHealthCountersMonotonicRace(t *testing.T) {
	w := newFBWorld(t, FallbackConfig{Enabled: true, ProbeJitterSeed: 3})
	e := w.e
	if err := e.Ready(); err != nil {
		t.Fatal(err)
	}

	const (
		senders = 64
		iters   = 40
	)
	start := e.Snapshot()
	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Mutator: flap the uplink so vN attempts fail and heal repeatedly.
	// The A–B peering never fails, so the baseline is always intact and
	// every send must deliver — degraded, maybe, but never dark.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if link, ok := e.FailInterLink(w.rP, w.rA); ok {
				e.RestoreInterLink(link)
			}
		}
	}()

	// Sampler: concurrent snapshots must be mutually monotonic.
	wg.Add(1)
	go func() {
		defer wg.Done()
		prev := e.Snapshot()
		for {
			select {
			case <-stop:
				return
			default:
			}
			cur := e.Snapshot()
			_ = cur.Sub(prev) // panics if any counter regressed
			prev = cur
		}
	}()

	errc := make(chan error, senders)
	for g := 0; g < senders; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			src := w.srcs[g%len(w.srcs)]
			dst := w.dsts[(g/2)%len(w.dsts)]
			for i := 0; i < iters; i++ {
				if _, err := e.Send(src, dst, []byte{byte(g), byte(i)}); err != nil {
					errc <- err
					return
				}
			}
			errc <- nil
		}(g)
	}
	for g := 0; g < senders; g++ {
		if err := <-errc; err != nil {
			t.Errorf("send failed despite an intact baseline: %v", err)
		}
	}
	close(stop)
	wg.Wait()

	delta := e.Snapshot().Sub(start)
	total := uint64(senders * iters)
	if delta.Sends != total || delta.Deliveries != total || delta.Drops != 0 {
		t.Errorf("sends/deliveries/drops = %d/%d/%d, want %d/%d/0",
			delta.Sends, delta.Deliveries, delta.Drops, total, total)
	}
	if delta.DeliveryFallbackRescues > delta.DeliveryFallbackSends {
		t.Errorf("rescues %d exceed fallback sends %d",
			delta.DeliveryFallbackRescues, delta.DeliveryFallbackSends)
	}
	if delta.HealthProbations > delta.HealthProbes {
		t.Errorf("probation entries %d exceed probes %d",
			delta.HealthProbations, delta.HealthProbes)
	}
	if delta.HealthProbations > delta.HealthFallbacks {
		t.Errorf("probation entries %d exceed fallback entries %d",
			delta.HealthProbations, delta.HealthFallbacks)
	}
	if delta.HealthRecovered > delta.HealthProbations+delta.HealthSuspects {
		t.Errorf("recoveries %d exceed probation+suspect entries %d+%d",
			delta.HealthRecovered, delta.HealthProbations, delta.HealthSuspects)
	}
}
