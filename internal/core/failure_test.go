package core

import (
	"errors"
	"testing"

	"github.com/evolvable-net/evolve/internal/anycast"
	"github.com/evolvable-net/evolve/internal/forward"
	"github.com/evolvable-net/evolve/internal/topology"
)

// failureWorld: two participant domains (P1, P2) reachable from client
// domain C via separate provider links, so failing one inter link leaves
// an alternative.
func failureWorld(t *testing.T) (*topology.Network, *Evolution, *topology.Host) {
	t.Helper()
	b := topology.NewBuilder()
	dP1 := b.AddDomain("P1")
	dP2 := b.AddDomain("P2")
	dC := b.AddDomain("C")
	rP1 := b.AddRouters(dP1, 2)
	rP2 := b.AddRouters(dP2, 2)
	rC := b.AddRouters(dC, 2)
	b.IntraLink(rP1[0], rP1[1], 2)
	b.IntraLink(rP2[0], rP2[1], 2)
	b.IntraLink(rC[0], rC[1], 2)
	b.Provide(rP1[1], rC[0], 10) // C buys transit from P1 (cheap side)
	b.Provide(rP2[1], rC[1], 30) // and from P2 (expensive side)
	b.Peer(rP1[0], rP2[0], 10)
	h := b.AddHost(dC, rC[0], "client", 1)
	net, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	evo, err := New(net, Config{Option: anycast.Option1})
	if err != nil {
		t.Fatal(err)
	}
	evo.DeployDomain(dP1.ASN, 0)
	evo.DeployDomain(dP2.ASN, 0)
	return net, evo, h
}

func TestInterLinkFailureRedirectsAnycast(t *testing.T) {
	net, evo, h := failureWorld(t)
	dP1 := net.DomainByName("P1")
	dP2 := net.DomainByName("P2")

	res, err := evo.Anycast.ResolveFromHost(h, evo.AnycastAddr())
	if err != nil {
		t.Fatal(err)
	}
	if net.DomainOf(res.Member) != dP1.ASN {
		t.Fatalf("precondition: ingress in %s", net.Domain(net.DomainOf(res.Member)).Name)
	}
	costBefore := res.Cost

	// Fail C's cheap uplink to P1; anycast must re-land in P2 without
	// the client doing anything.
	link, ok := evo.FailInterLink(dP1.Routers[1], net.DomainByName("C").Routers[0])
	if !ok {
		t.Fatal("link not found")
	}
	res, err = evo.Anycast.ResolveFromHost(h, evo.AnycastAddr())
	if err != nil {
		t.Fatal(err)
	}
	if net.DomainOf(res.Member) != dP2.ASN {
		t.Errorf("after failure ingress in %s, want P2", net.Domain(net.DomainOf(res.Member)).Name)
	}
	if res.Cost <= costBefore {
		t.Errorf("detour should cost more: %d → %d", costBefore, res.Cost)
	}

	// Repair: back to P1.
	evo.RestoreInterLink(link)
	res, err = evo.Anycast.ResolveFromHost(h, evo.AnycastAddr())
	if err != nil {
		t.Fatal(err)
	}
	if net.DomainOf(res.Member) != dP1.ASN || res.Cost != costBefore {
		t.Errorf("after repair: %s cost %d, want P1 cost %d",
			net.Domain(net.DomainOf(res.Member)).Name, res.Cost, costBefore)
	}
}

func TestIntraLinkFailureReroutesInsideDomain(t *testing.T) {
	// Triangle domain: failing one edge leaves the detour.
	b := topology.NewBuilder()
	dA := b.AddDomain("A")
	dB := b.AddDomain("B")
	rA := b.AddRouters(dA, 3)
	rB := b.AddRouter(dB, "")
	b.IntraLink(rA[0], rA[1], 1)
	b.IntraLink(rA[1], rA[2], 1)
	b.IntraLink(rA[0], rA[2], 5)
	b.Provide(rA[0], rB, 10)
	h := b.AddHost(dA, rA[0], "h", 1)
	hB := b.AddHost(dB, rB, "hb", 1)
	net, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	evo, err := New(net, Config{Option: anycast.Option1})
	if err != nil {
		t.Fatal(err)
	}
	evo.DeployRouter(rA[2])

	res, err := evo.Anycast.ResolveFromHost(h, evo.AnycastAddr())
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost != 1+2 { // access 1 + r0→r1→r2
		t.Fatalf("precondition cost = %d", res.Cost)
	}
	if !evo.FailIntraLink(rA[1], rA[2]) {
		t.Fatal("fail reported no link")
	}
	res, err = evo.Anycast.ResolveFromHost(h, evo.AnycastAddr())
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost != 1+5 { // direct r0→r2 edge
		t.Errorf("post-failure cost = %d, want 6", res.Cost)
	}
	// Failing a non-existent link reports false.
	if evo.FailIntraLink(rA[0], rB) {
		t.Error("cross-domain 'intra' failure succeeded")
	}
	// End-to-end delivery still works after the failure.
	if _, err := evo.Send(h, hB, []byte("x")); err != nil {
		t.Errorf("send after failure: %v", err)
	}
	evo.RestoreIntraLink(rA[1], rA[2], 1)
	res, _ = evo.Anycast.ResolveFromHost(h, evo.AnycastAddr())
	if res.Cost != 3 {
		t.Errorf("post-repair cost = %d", res.Cost)
	}
}

func TestDomainPartitionIsReported(t *testing.T) {
	// Sever a domain's only internal link: paths through the far half
	// must fail loudly, not silently cost Inf.
	b := topology.NewBuilder()
	dA := b.AddDomain("A")
	dB := b.AddDomain("B")
	rA := b.AddRouters(dA, 2)
	rB := b.AddRouter(dB, "")
	b.IntraLink(rA[0], rA[1], 1)
	b.Provide(rA[1], rB, 10) // border is rA[1]
	h := b.AddHost(dA, rA[0], "h", 1)
	hB := b.AddHost(dB, rB, "hb", 1)
	net, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	evo, err := New(net, Config{Option: anycast.Option1})
	if err != nil {
		t.Fatal(err)
	}
	evo.DeployDomain(dB.ASN, 0)

	if _, err := evo.Send(h, hB, nil); err != nil {
		t.Fatalf("precondition: %v", err)
	}
	evo.FailIntraLink(rA[0], rA[1])
	_, err = evo.Send(h, hB, nil)
	if err == nil {
		t.Fatal("delivery across severed domain succeeded")
	}
	if !errors.Is(err, forward.ErrUnreachable) && !errors.Is(err, anycast.ErrNoRoute) {
		t.Logf("got error %v (acceptable wrapped form)", err)
	}
}

func TestBoneRebuildsAfterFailure(t *testing.T) {
	// P1 and P2 peer directly AND share a transit provider T, so when
	// the peering fails a valley-free detour (P1→T→P2) remains and the
	// anycast bootstrap can re-stitch the bone.
	b := topology.NewBuilder()
	dT := b.AddDomain("T")
	dP1 := b.AddDomain("P1")
	dP2 := b.AddDomain("P2")
	rT := b.AddRouter(dT, "")
	rP1 := b.AddRouter(dP1, "")
	rP2 := b.AddRouter(dP2, "")
	b.Provide(rT, rP1, 10)
	b.Provide(rT, rP2, 10)
	b.Peer(rP1, rP2, 5)
	net, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	evo, err := New(net, Config{Option: anycast.Option1})
	if err != nil {
		t.Fatal(err)
	}
	evo.DeployRouter(rP1)
	evo.DeployRouter(rP2)

	bone1, err := evo.Bone()
	if err != nil {
		t.Fatal(err)
	}
	var directCost int64
	for _, l := range bone1.Links() {
		directCost = l.Cost
	}
	if directCost != 5 {
		t.Fatalf("precondition: direct tunnel cost = %d", directCost)
	}

	if _, ok := evo.FailInterLink(rP1, rP2); !ok {
		t.Fatal("peering link not found")
	}
	bone2, err := evo.Bone()
	if err != nil {
		t.Fatal(err)
	}
	if !bone2.Connected() {
		t.Fatal("bone disconnected after inter-link failure")
	}
	// The replacement tunnel rides the transit detour: strictly costlier.
	var detourCost int64
	for _, l := range bone2.Links() {
		detourCost = l.Cost
	}
	if detourCost <= directCost {
		t.Errorf("detour tunnel cost = %d, want > %d", detourCost, directCost)
	}
}

func TestBonePartitionsWhenNoPolicyPathRemains(t *testing.T) {
	// The counterpart: P1 and P2's only connection besides the peering
	// is a shared *customer*, which must not provide transit — so after
	// the peering fails the participants are genuinely unreachable and
	// the bone build reports it.
	net, evo, _ := failureWorld(t)
	if _, err := evo.Bone(); err != nil {
		t.Fatal(err)
	}
	dP1 := net.DomainByName("P1")
	dP2 := net.DomainByName("P2")
	if _, ok := evo.FailInterLink(dP1.Routers[0], dP2.Routers[0]); !ok {
		t.Fatal("peering link not found")
	}
	if _, err := evo.Bone(); err == nil {
		t.Error("bone built despite policy-level partition (customer transit leak?)")
	}
}
