package core

import (
	"reflect"
	"testing"

	"github.com/evolvable-net/evolve/internal/topology"
)

// stripTag zeroes the fields that legitimately differ between runs: the
// per-delivery random trace tag.
func stripTag(d Delivery) Delivery {
	d.TraceTag = 0
	return d
}

// runDeliveryScript drives one Evolution through the same deployment,
// registration, failure and send sequence and returns every delivery and
// every host address it observed, in order.
func runDeliveryScript(t *testing.T, e *Evolution) ([]Delivery, []string) {
	t.Helper()
	n := e.Net
	t0 := n.DomainByName("T0")
	s00 := n.DomainByName("S0.0")
	s11 := n.DomainByName("S1.1")
	e.DeployDomain(t0.ASN, 0)
	e.DeployDomain(s00.ASN, 0)
	if err := e.RegisterEndhosts(n.HostsIn(s11.ASN)); err != nil {
		t.Fatal(err)
	}

	var deliveries []Delivery
	sendAll := func() {
		for _, src := range n.Hosts[:6] {
			for _, dst := range n.Hosts[len(n.Hosts)-6:] {
				if src == dst {
					continue
				}
				d, err := e.Send(src, dst, []byte("equivalence"))
				if err != nil {
					t.Fatalf("send %s->%s: %v", src.Name, dst.Name, err)
				}
				// Send twice: the second delivery is a flow-cache hit on
				// cached configurations and must be indistinguishable.
				d2, err := e.Send(src, dst, []byte("equivalence"))
				if err != nil {
					t.Fatalf("re-send %s->%s: %v", src.Name, dst.Name, err)
				}
				if !reflect.DeepEqual(stripTag(d), stripTag(d2)) {
					t.Fatalf("cached re-send differs for %s->%s:\n%+v\n%+v", src.Name, dst.Name, d, d2)
				}
				deliveries = append(deliveries, stripTag(d))
			}
		}
	}

	sendAll()
	// Intra-domain failure in the deployed transit: scoped reconvergence.
	rts := t0.Routers
	e.FailIntraLink(rts[0], rts[1])
	sendAll()
	// Participation change: a stub adopts, its hosts relabel.
	e.DeployDomain(n.DomainByName("S1.0").ASN, 1)
	sendAll()
	// Registration churn on the self-addressed side.
	e.UnregisterEndhost(n.HostsIn(s11.ASN)[0])
	sendAll()

	var addrs []string
	for _, h := range n.Hosts {
		v, err := e.HostVNAddr(h)
		if err != nil {
			t.Fatal(err)
		}
		addrs = append(addrs, v.String())
	}
	return deliveries, addrs
}

// TestShardEquivalence runs the same script at shard counts 1, 4 and 16
// and with the flow cache disabled entirely; every delivery and every
// address must be identical. Sharding and memoisation are layout and
// speed, never routing.
func TestShardEquivalence(t *testing.T) {
	type arm struct {
		name string
		cfg  Config
	}
	arms := []arm{
		{"shards=1", Config{DeliveryShards: 1}},
		{"shards=4", Config{DeliveryShards: 4}},
		{"shards=16", Config{DeliveryShards: 16}},
		{"uncached", Config{DeliveryShards: 1, DisableDeliveryCache: true}},
	}
	var refDel []Delivery
	var refAddrs []string
	for i, a := range arms {
		e := newEvo(t, world(t), a.cfg)
		del, addrs := runDeliveryScript(t, e)
		if i == 0 {
			refDel, refAddrs = del, addrs
			continue
		}
		if !reflect.DeepEqual(refAddrs, addrs) {
			t.Errorf("%s: host addresses diverge from %s", a.name, arms[0].name)
		}
		if len(refDel) != len(del) {
			t.Fatalf("%s: %d deliveries, want %d", a.name, len(del), len(refDel))
		}
		for j := range refDel {
			if !reflect.DeepEqual(refDel[j], del[j]) {
				t.Fatalf("%s: delivery %d diverges:\n%+v\n%+v", a.name, j, refDel[j], del[j])
			}
		}
	}
}

// TestFlowCacheCounters checks the delivery flow cache's own accounting:
// a repeated flow is one miss then hits, and disabling the cache turns
// every send into a miss.
func TestFlowCacheCounters(t *testing.T) {
	n := world(t)
	e := newEvo(t, n, Config{})
	e.DeployDomain(n.DomainByName("T0").ASN, 0)
	src := n.HostsIn(n.DomainByName("S0.0").ASN)[0]
	dst := n.HostsIn(n.DomainByName("S1.1").ASN)[0]
	for i := 0; i < 5; i++ {
		if _, err := e.Send(src, dst, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	s := e.Snapshot()
	if s.DeliveryFlowMisses != 1 || s.DeliveryFlowHits != 4 {
		t.Errorf("misses=%d hits=%d, want 1/4", s.DeliveryFlowMisses, s.DeliveryFlowHits)
	}
	// A routing mutation invalidates the flow: the next send is a miss.
	rts := n.DomainByName("T0").Routers
	e.FailIntraLink(rts[0], rts[1])
	if _, err := e.Send(src, dst, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if s = e.Snapshot(); s.DeliveryFlowMisses != 2 {
		t.Errorf("misses=%d after link event, want 2", s.DeliveryFlowMisses)
	}

	un := newEvo(t, world(t), Config{DisableDeliveryCache: true})
	un.DeployDomain(un.Net.DomainByName("T0").ASN, 0)
	usrc := un.Net.HostsIn(un.Net.DomainByName("S0.0").ASN)[0]
	udst := un.Net.HostsIn(un.Net.DomainByName("S1.1").ASN)[0]
	for i := 0; i < 3; i++ {
		if _, err := un.Send(usrc, udst, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if s = un.Snapshot(); s.DeliveryFlowHits != 0 || s.DeliveryFlowMisses != 3 {
		t.Errorf("uncached: hits=%d misses=%d, want 0/3", s.DeliveryFlowHits, s.DeliveryFlowMisses)
	}
}

// TestSendZeroAlloc pins the tentpole's steady-state claim: once the flow
// is memoised and the buffer pools are warm, Send allocates nothing.
func TestSendZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	n := world(t)
	e := newEvo(t, n, Config{})
	e.DeployDomain(n.DomainByName("T0").ASN, 0)
	src := n.HostsIn(n.DomainByName("S0.0").ASN)[0]
	dst := n.HostsIn(n.DomainByName("S1.1").ASN)[0]
	payload := []byte("zero-alloc steady state")
	for i := 0; i < 10; i++ {
		if _, err := e.Send(src, dst, payload); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := e.Send(src, dst, payload); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state Send allocates %.1f objects per op, want 0", allocs)
	}
}

// TestNormalizeShards pins the shard-count clamping rules.
func TestNormalizeShards(t *testing.T) {
	cases := map[int]int{-1: 16, 0: 16, 1: 1, 3: 2, 4: 4, 6: 4, 16: 16, 100: 64, 1000: 256}
	for in, want := range cases {
		if got := normalizeShards(in); got != want {
			t.Errorf("normalizeShards(%d) = %d, want %d", in, got, want)
		}
	}
}

// TestRegisterEndhostsBatch registers a whole domain's hosts as one
// mutation: exactly one epoch publish for the batch, and every member of
// the batch gets registered-native routing on the next send.
func TestRegisterEndhostsBatch(t *testing.T) {
	n := world(t)
	e := newEvo(t, n, Config{})
	e.DeployDomain(n.DomainByName("T0").ASN, 0)
	hosts := n.HostsIn(n.DomainByName("S1.1").ASN)
	src := n.HostsIn(n.DomainByName("S0.0").ASN)[0]
	before := e.Snapshot().Epochs
	if err := e.RegisterEndhosts(hosts); err != nil {
		t.Fatal(err)
	}
	if got := e.Snapshot().Epochs - before; got != 1 {
		t.Errorf("batch registration published %d epochs, want 1", got)
	}
	for _, h := range hosts {
		d, err := e.Send(src, h, []byte("batch"))
		if err != nil {
			t.Fatal(err)
		}
		// Registration does not relabel — the destination stays
		// self-addressed; its /128 is what routing now knows.
		if !d.DstVN.IsSelf() {
			t.Errorf("host %s relabelled by registration", h.Name)
		}
	}
	var zero []*topology.Host
	if err := e.RegisterEndhosts(zero); err != nil {
		t.Errorf("empty batch: %v", err)
	}
}
