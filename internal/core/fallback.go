package core

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand/v2"

	"github.com/evolvable-net/evolve/internal/addr"
	"github.com/evolvable-net/evolve/internal/anycast"
	"github.com/evolvable-net/evolve/internal/metrics"
	"github.com/evolvable-net/evolve/internal/packet"
	"github.com/evolvable-net/evolve/internal/topology"
	"github.com/evolvable-net/evolve/internal/trace"
	"github.com/evolvable-net/evolve/internal/tunnel"
)

// fallbackBaseline returns the flow's IPv(N-1) baseline cost, memoised in
// the health record per routing epoch (the baseline is deterministic
// within an epoch, so steady-state fallback sends recompute nothing). The
// store is gated on the mutation sequence exactly like the flow cache.
func (e *Evolution) fallbackBaseline(h *flowHealth, ep *routingEpoch, src, dst *topology.Host) (int64, error) {
	h.mu.Lock()
	if h.fbOK && h.fbSeq == ep.seq {
		c := h.fbCost
		h.mu.Unlock()
		return c, nil
	}
	h.mu.Unlock()
	base, err := e.Fwd.HostToHost(src, dst)
	if err != nil {
		return 0, err
	}
	if e.mutSeq.Load() == ep.seq {
		h.mu.Lock()
		h.fbSeq, h.fbOK, h.fbCost = ep.seq, true, base.Cost
		h.mu.Unlock()
	}
	return base.Cost, nil
}

// deliverFallback runs one delivery over the IPv(N-1) baseline: a direct
// tunnel from the source host to the destination host's underlay address,
// carrying the IPvN header marked with OptFallback. It is the shared wire
// path of every degradation mode — fallback-state sends, in-line rescues
// of failed vN attempts, and error-epoch sends — and of both the loop and
// batch engines: callers hand in their own endpoints, scratch buffers,
// tracer and counter sink, so tallies and span events land wherever the
// surrounding send path's do and the batch≡loop contract extends to
// degraded deliveries. vnReason carries the vN failure that triggered a
// rescue (DropNone for state sends); on failure the drop reason is
// returned for the caller's dropSend/dropBatch.
func (e *Evolution) deliverFallback(
	ep *routingEpoch, h *flowHealth, src, dst *topology.Host, payload []byte,
	seq uint32, vnReason trace.DropReason, detail string, mark uint8,
	tr trace.Tracer, sc sendCounter, epA, epB *tunnel.Endpoint,
	scratch []packet.Option, hdrOpts []packet.Option, markBuf, tagBuf []byte,
) (Delivery, trace.DropReason, error) {
	cost, err := e.fallbackBaseline(h, ep, src, dst)
	if err != nil {
		return Delivery{}, trace.DropNoBaseline, fmt.Errorf("core: baseline: %w", err)
	}
	if tr != nil {
		tr.Event(trace.Event{Kind: trace.KindFallback, Seq: seq, Router: -1, Reason: vnReason, Detail: detail})
	}

	hdr := packet.VNHeader{
		Version: e.cfg.Version,
		Src:     ep.addrs.addrOf(src),
		Dst:     ep.addrs.addrOf(dst),
	}
	markBuf[0] = mark
	opts := append(hdrOpts, packet.Option{Type: packet.OptFallback, Value: markBuf})
	binary.BigEndian.PutUint32(tagBuf, seq)
	opts = append(opts, packet.Option{Type: packet.OptTraceTag, Value: tagBuf})
	hdr.Options = opts

	epA.Local = src.Addr
	epA.Observe(tr, nil, seq)
	wire, err := epA.EncapToShared(dst.Addr, hdr, payload)
	if err != nil {
		return Delivery{}, trace.DropEncap, fmt.Errorf("core: fallback encap: %w", err)
	}
	sc.Encap()
	epB.Local = dst.Addr
	epB.Observe(tr, nil, seq)
	_, inner, pl, err := epB.DecapShared(wire, scratch)
	if err != nil {
		return Delivery{}, trace.DropTail, fmt.Errorf("core: fallback decap: %w", err)
	}
	sc.Decap()

	var tag uint32
	for _, o := range inner.Options {
		if o.Type == packet.OptTraceTag && len(o.Value) == 4 {
			tag = binary.BigEndian.Uint32(o.Value)
		}
	}
	if tag != seq {
		return Delivery{}, trace.DropIntegrity, fmt.Errorf("core: trace tag corrupted in transit (%d != %d)", tag, seq)
	}
	if !bytes.Equal(pl, payload) {
		return Delivery{}, trace.DropIntegrity, fmt.Errorf("core: payload corrupted in transit")
	}

	d := Delivery{
		SrcVN:        hdr.Src,
		DstVN:        hdr.Dst,
		TotalCost:    cost,
		BaselineCost: cost,
		Stretch:      metrics.Stretch(cost, cost),
		Fallback:     true,
		TraceTag:     seq,
		Payload:      payload,
	}
	sc.FallbackSend()
	if mark == packet.FallbackMarkRescue {
		sc.FallbackRescue()
	}
	sc.PayloadBytes(len(payload))
	sc.Deliver()
	if tr != nil {
		tr.Event(trace.Event{Kind: trace.KindDeliver, Seq: seq, Router: dst.Attach, AS: dst.Domain, Cost: cost})
	}
	return d, trace.DropNone, nil
}

// sendWithHealth is the loop send path with the graceful-degradation
// layer engaged: the flow's health record decides whether to attempt the
// vN path, a vN failure (other than a missing baseline) is rescued
// in-line over the baseline, and a flow in fallback skips the vN path
// entirely except for its backoff probes.
func (e *Evolution) sendWithHealth(ctx *sendCtx, ep *routingEpoch, src, dst *topology.Host, payload []byte, ingressDep *anycast.Deployment, tr trace.Tracer, seq uint32) (Delivery, error) {
	fc := &e.cfg.Fallback
	h := e.health.get(flowKey{src: src.ID, dst: dst.ID, dep: ingressDep.Addr})
	attempt, probe := h.decide(ep.seq, fc, ep.addrs.addrOf(dst), &e.counters)
	if attempt {
		d, fe, reason, err := e.sendVN(ctx, ep, src, dst, payload, ingressDep, tr, seq)
		if err == nil {
			h.noteSuccess(fe, probe, fc, &e.counters, tr, seq)
			return d, nil
		}
		if reason == trace.DropNoBaseline {
			// The vN skeleton was fine and only the baseline is missing:
			// nothing to rescue over, and nothing learned about the vN path.
			return e.dropSend(tr, seq, reason, err)
		}
		h.noteFailure(fe, ep.seq, fc, &e.counters, tr, seq)
		d, dropReason, ferr := e.deliverFallback(ep, h, src, dst, payload,
			seq, reason, trace.DetailFallbackRescue, packet.FallbackMarkRescue,
			tr, &e.counters, ctx.epA, ctx.epB, ctx.optA[:0], ctx.hdrOpts[:0], ctx.markBuf[:], ctx.tagBuf[:])
		if ferr != nil {
			return e.dropSend(tr, seq, dropReason, ferr)
		}
		return d, nil
	}
	d, dropReason, ferr := e.deliverFallback(ep, h, src, dst, payload,
		seq, trace.DropNone, trace.DetailFallbackState, packet.FallbackMarkState,
		tr, &e.counters, ctx.epA, ctx.epB, ctx.optA[:0], ctx.hdrOpts[:0], ctx.markBuf[:], ctx.tagBuf[:])
	if ferr != nil {
		return e.dropSend(tr, seq, dropReason, ferr)
	}
	return d, nil
}

// sendErrEpoch is the loop send path against an error epoch with the
// graceful-degradation layer engaged: instead of failing fast with the
// epoch error, the delivery rides the baseline (the underlay does not
// care that the vN deployment is broken), and the flow's health record
// takes the failure so it probes back as soon as a usable epoch
// publishes. dep keys the flow (the shared deployment address, or a
// provider-specific one for SendVia).
func (e *Evolution) sendErrEpoch(ep *routingEpoch, src, dst *topology.Host, dep addr.V4, payload []byte, tr trace.Tracer) (Delivery, error) {
	e.counters.Send()
	seq := rand.Uint32()
	if tr != nil {
		tr.Event(trace.Event{Kind: trace.KindSend, Seq: seq, Router: src.Attach, AS: src.Domain})
	}
	ctx := sendCtxPool.Get().(*sendCtx)
	defer sendCtxPool.Put(ctx)
	h := e.health.get(flowKey{src: src.ID, dst: dst.ID, dep: dep})
	h.observeDst(ep.addrs.addrOf(dst))
	h.noteFailure(nil, ep.seq, &e.cfg.Fallback, &e.counters, tr, seq)
	d, reason, err := e.deliverFallback(ep, h, src, dst, payload,
		seq, trace.DropNotDeployed, trace.DetailFallbackErrEpoch, packet.FallbackMarkRescue,
		tr, &e.counters, ctx.epA, ctx.epB, ctx.optA[:0], ctx.hdrOpts[:0], ctx.markBuf[:], ctx.tagBuf[:])
	if err != nil {
		return e.dropSend(tr, seq, reason, err)
	}
	return d, nil
}

// sendBatchErrEpoch is sendErrEpoch's batch mirror: every packet of the
// burst rides the baseline individually (so one unreachable destination
// never poisons the rest), tallied through the batch accumulator and
// event buffer exactly like a healthy-epoch batch.
func (e *Evolution) sendBatchErrEpoch(out []Delivery, ep *routingEpoch, src *topology.Host, dsts []*topology.Host, dst1 *topology.Host, payloads [][]byte, n int, tr trace.Tracer) ([]Delivery, error) {
	base := len(out)
	out = growDeliveries(out, n)
	bc := batchCtxPool.Get().(*batchCtx)
	bc.reset()
	var btr trace.Tracer
	if tr != nil {
		btr = &bc.events
	}
	cb := &bc.counters

	var errs []error
	failed := 0
	dst := dst1
	var pl []byte
	for i := 0; i < n; i++ {
		if e.testBatchHook != nil {
			e.testBatchHook(i)
		}
		if dsts != nil {
			dst = dsts[i]
		}
		if payloads != nil {
			pl = payloads[i]
		}
		cb.Send()
		seq := rand.Uint32()
		if btr != nil {
			btr.Event(trace.Event{Kind: trace.KindSend, Seq: seq, Router: src.Attach, AS: src.Domain})
		}
		h := e.health.get(flowKey{src: src.ID, dst: dst.ID, dep: e.Dep.Addr})
		h.observeDst(ep.addrs.addrOf(dst))
		h.noteFailure(nil, ep.seq, &e.cfg.Fallback, cb, btr, seq)
		d, reason, err := e.deliverFallback(ep, h, src, dst, pl,
			seq, trace.DropNotDeployed, trace.DetailFallbackErrEpoch, packet.FallbackMarkRescue,
			btr, cb, bc.ep, bc.epDst, bc.opts[:0], bc.hdrOpts[:0], bc.markBuf[:], bc.tagBuf[:])
		if err != nil {
			_, err = dropBatch(cb, btr, seq, reason, err)
			if errs == nil {
				errs = make([]error, n)
			}
			errs[i] = err
			failed++
			continue
		}
		out[base+i] = d
	}

	cb.BatchPackets(n)
	cb.FlushTo(&e.counters)
	bc.events.Flush(tr)
	batchCtxPool.Put(bc)

	if failed > 0 {
		return out, &BatchError{Errs: errs, Failed: failed}
	}
	return out, nil
}
