package core

import (
	"testing"

	"github.com/evolvable-net/evolve/internal/anycast"
	"github.com/evolvable-net/evolve/internal/topology"
)

// TestScaleBarabasiAlbert runs the whole stack on a larger internet than
// the experiments use: 80 domains in a heavy-tailed provider hierarchy,
// 240 routers, partial deployment, full universal-access sampling.
func TestScaleBarabasiAlbert(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test")
	}
	net, err := topology.BarabasiAlbert(80, 2, topology.GenConfig{
		Seed: 4242, RoutersPerDomain: 3, HostsPerDomain: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	evo, err := New(net, Config{Option: anycast.Option1})
	if err != nil {
		t.Fatal(err)
	}
	// The hub and two leaves deploy.
	evo.DeployDomain(net.ASNs()[0], 0)
	evo.DeployDomain(net.ASNs()[40], 0)
	evo.DeployDomain(net.ASNs()[79], 0)

	bone, err := evo.Bone()
	if err != nil {
		t.Fatal(err)
	}
	if !bone.Connected() {
		t.Fatal("bone disconnected at scale")
	}
	sample, failures, err := evo.StretchSample(2000)
	if err != nil {
		t.Fatal(err)
	}
	if failures != 0 {
		t.Errorf("%d failed deliveries at scale", failures)
	}
	if len(sample) == 0 {
		t.Fatal("empty sample")
	}
	for _, s := range sample {
		if s <= 0 {
			t.Fatalf("nonpositive stretch %v", s)
		}
	}
	// Catchment covers every domain.
	c := evo.Anycast.Catchment(evo.Dep)
	if len(c[-1]) != 0 {
		t.Errorf("unresolved domains at scale: %v", c[-1])
	}
	total := 0
	for p, srcs := range c {
		if p >= 0 {
			total += len(srcs)
		}
	}
	if total != len(net.ASNs()) {
		t.Errorf("catchment covers %d/%d", total, len(net.ASNs()))
	}
}

// TestScaleTransitStubOption2 repeats at scale for option 2 with failures
// injected mid-run.
func TestScaleTransitStubOption2(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test")
	}
	net, err := topology.TransitStub(4, 10, 0.4, topology.GenConfig{
		Seed: 99, RoutersPerDomain: 3, HostsPerDomain: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	evo, err := New(net, Config{Option: anycast.Option2, DefaultAS: net.DomainByName("T0").ASN})
	if err != nil {
		t.Fatal(err)
	}
	for i, asn := range net.ASNs() {
		if i%3 == 0 {
			evo.DeployDomain(asn, 0)
		}
	}
	if _, failures, err := evo.StretchSample(1500); err != nil || failures != 0 {
		t.Fatalf("pre-failure: %v (%d failures)", err, failures)
	}
	// Fail a transit-to-stub link; the multihomed internet keeps working
	// for all but possibly single-homed victims.
	link := net.Inter[len(net.Inter)-1]
	if _, ok := evo.FailInterLink(link.From, link.To); !ok {
		t.Fatal("link not found")
	}
	sample, _, err := evo.StretchSample(1500)
	if err != nil {
		t.Fatal(err)
	}
	if len(sample) == 0 {
		t.Fatal("no deliveries after failure")
	}
}
