package core

import (
	"testing"

	"github.com/evolvable-net/evolve/internal/anycast"
	"github.com/evolvable-net/evolve/internal/topology"
)

// redirectCacheWorld: client domain C dual-homed to participants P1
// (cheap uplink) and P2 (expensive uplink), with a destination host in
// P1 — the smallest world where the redirect decision changes under
// link failure and a stale memoised resolution would be observable.
func redirectCacheWorld(t *testing.T) (*topology.Network, *Evolution, *topology.Host, *topology.Host) {
	t.Helper()
	b := topology.NewBuilder()
	dP1 := b.AddDomain("P1")
	dP2 := b.AddDomain("P2")
	dC := b.AddDomain("C")
	rP1 := b.AddRouters(dP1, 2)
	rP2 := b.AddRouters(dP2, 2)
	rC := b.AddRouters(dC, 2)
	b.IntraLink(rP1[0], rP1[1], 2)
	b.IntraLink(rP2[0], rP2[1], 2)
	b.IntraLink(rC[0], rC[1], 2)
	b.Provide(rP1[1], rC[0], 10)
	b.Provide(rP2[1], rC[1], 30)
	b.Peer(rP1[0], rP2[0], 10)
	src := b.AddHost(dC, rC[0], "client", 1)
	dst := b.AddHost(dP1, rP1[0], "server", 1)
	net, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	evo, err := New(net, Config{Option: anycast.Option1})
	if err != nil {
		t.Fatal(err)
	}
	evo.DeployDomain(dP1.ASN, 0)
	evo.DeployDomain(dP2.ASN, 0)
	return net, evo, src, dst
}

// hits returns the delivery's ingress domain plus the redirect cache
// delta for one Send.
func sendCounting(t *testing.T, evo *Evolution, src, dst *topology.Host) (ingress topology.ASN, cacheHit bool) {
	t.Helper()
	before := evo.Snapshot()
	d, err := evo.Send(src, dst, []byte("x"))
	if err != nil {
		t.Fatalf("send: %v", err)
	}
	delta := evo.Snapshot().Sub(before)
	if delta.Redirects != 1 {
		t.Fatalf("send made %d redirect decisions, want 1", delta.Redirects)
	}
	return evo.Net.DomainOf(d.Ingress.Member), delta.RedirectCacheHits == 1
}

// TestRedirectCacheInvalidatedByLinkFailures is the PR-3 regression
// test for the PR-2 memoisation cache: the cache must be dropped not
// just on deployment changes but on every Fail*/Restore* reconvergence,
// because the redirect decision is routing state. A stale entry here
// would silently send clients into a failed uplink.
func TestRedirectCacheInvalidatedByLinkFailures(t *testing.T) {
	net, evo, src, dst := redirectCacheWorld(t)
	p1 := net.DomainByName("P1").ASN
	p2 := net.DomainByName("P2").ASN
	cLow := net.DomainByName("C").Routers[0]
	p1Border := net.DomainByName("P1").Routers[1]

	// Populate, then prove the second resolution is served from cache.
	if as, hit := sendCounting(t, evo, src, dst); as != p1 || hit {
		t.Fatalf("first send: ingress AS%d hit=%v, want AS%d miss", as, hit, p1)
	}
	if as, hit := sendCounting(t, evo, src, dst); as != p1 || !hit {
		t.Fatalf("second send: ingress AS%d hit=%v, want AS%d cache hit", as, hit, p1)
	}

	// FailInterLink must invalidate: the next redirect re-resolves (a
	// miss) and lands in P2 — a stale cache would keep answering P1.
	link, ok := evo.FailInterLink(p1Border, cLow)
	if !ok {
		t.Fatal("uplink not found")
	}
	if as, hit := sendCounting(t, evo, src, dst); as != p2 || hit {
		t.Fatalf("post-failure send: ingress AS%d hit=%v, want AS%d miss", as, hit, p2)
	}
	if as, hit := sendCounting(t, evo, src, dst); as != p2 || !hit {
		t.Fatalf("post-failure re-send: ingress AS%d hit=%v, want AS%d cache hit", as, hit, p2)
	}

	// RestoreInterLink must invalidate again: back to P1 via a miss.
	evo.RestoreInterLink(link)
	if as, hit := sendCounting(t, evo, src, dst); as != p1 || hit {
		t.Fatalf("post-restore send: ingress AS%d hit=%v, want AS%d miss", as, hit, p1)
	}

	// FailIntraLink reconverges too: C's intra link rC0–rC1 carries the
	// detour to P2, but failing it still must flush the cache even
	// though the current best answer (P1 direct) is unchanged — the
	// invalidation is about correctness of the *mechanism*, so we
	// observe it via the miss.
	if !evo.FailIntraLink(net.DomainByName("C").Routers[0], net.DomainByName("C").Routers[1]) {
		t.Fatal("intra link not found")
	}
	if as, hit := sendCounting(t, evo, src, dst); as != p1 || hit {
		t.Fatalf("post-intra-failure send: ingress AS%d hit=%v, want AS%d miss", as, hit, p1)
	}

	// RestoreIntraLink: flushed once more.
	evo.RestoreIntraLink(net.DomainByName("C").Routers[0], net.DomainByName("C").Routers[1], 2)
	if as, hit := sendCounting(t, evo, src, dst); as != p1 || hit {
		t.Fatalf("post-intra-restore send: ingress AS%d hit=%v, want AS%d miss", as, hit, p1)
	}
	if as, hit := sendCounting(t, evo, src, dst); as != p1 || !hit {
		t.Fatalf("steady state: ingress AS%d hit=%v, want AS%d cache hit", as, hit, p1)
	}
}
