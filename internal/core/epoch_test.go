package core

import (
	"testing"
	"time"

	"github.com/evolvable-net/evolve/internal/anycast"
	"github.com/evolvable-net/evolve/internal/topology"
)

// transitStubEvo builds the stock 15-domain transit–stub internet with an
// option-1 deployment over the first 7 domains, either with scoped
// reconvergence (the default) or the full-dump baseline.
func transitStubEvo(t *testing.T, full bool) (*topology.Network, *Evolution) {
	t.Helper()
	net, err := topology.TransitStub(3, 4, 0.4, topology.GenConfig{
		Seed:             42,
		RoutersPerDomain: 3,
		HostsPerDomain:   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	evo, err := New(net, Config{Option: anycast.Option1, FullReconverge: full})
	if err != nil {
		t.Fatal(err)
	}
	for _, asn := range net.ASNs()[:7] {
		evo.DeployDomain(asn, 0)
	}
	return net, evo
}

// findIntraLink returns one intra-domain link of asn.
func findIntraLink(t *testing.T, net *topology.Network, asn topology.ASN) (topology.RouterID, topology.RouterID) {
	t.Helper()
	for _, r := range net.Domain(asn).Routers {
		for _, e := range net.Intra.Neighbors(int(r)) {
			if net.DomainOf(topology.RouterID(e.To)) == asn {
				return r, topology.RouterID(e.To)
			}
		}
	}
	t.Fatalf("AS%d has no intra link", asn)
	return 0, 0
}

// TestRebuildFailureCounting pins the satellite fix: a bone build that
// errors must tick RebuildsFailed, not BoneRebuilds — the old code
// counted the rebuild before attempting it.
func TestRebuildFailureCounting(t *testing.T) {
	net, evo, _ := failureWorld(t)
	dP1 := net.DomainByName("P1")
	dP2 := net.DomainByName("P2")

	base := evo.Snapshot()
	// Severing the only policy path between the participants makes the
	// bone unbuildable: the epoch rebuild runs and fails.
	link, ok := evo.FailInterLink(dP1.Routers[0], dP2.Routers[0])
	if !ok {
		t.Fatal("peering link not found")
	}
	d := evo.Snapshot().Sub(base)
	if d.RebuildsFailed != 1 {
		t.Errorf("RebuildsFailed = %d, want 1", d.RebuildsFailed)
	}
	if d.BoneRebuilds != 0 {
		t.Errorf("BoneRebuilds = %d, want 0 — a failed build is not a rebuild", d.BoneRebuilds)
	}
	if d.Epochs != 1 {
		t.Errorf("Epochs = %d, want 1 — the error epoch must still publish", d.Epochs)
	}
	if _, err := evo.Bone(); err == nil {
		t.Error("Bone() should report the partition")
	}

	// Repair: the rebuild succeeds again and counts as exactly one.
	base = evo.Snapshot()
	evo.RestoreInterLink(link)
	d = evo.Snapshot().Sub(base)
	if d.BoneRebuilds != 1 || d.RebuildsFailed != 0 {
		t.Errorf("after repair: BoneRebuilds = %d RebuildsFailed = %d, want 1/0", d.BoneRebuilds, d.RebuildsFailed)
	}
	if _, err := evo.Bone(); err != nil {
		t.Errorf("bone unusable after repair: %v", err)
	}
}

// TestUnregisterWithdrawsInPlace pins the other satellite fix:
// withdrawing an endhost registration must republish the epoch without
// rebuilding the bone (the old code set the global dirty flag, forcing a
// full reconvergence on the next query).
func TestUnregisterWithdrawsInPlace(t *testing.T) {
	net, evo, h := failureWorld(t)
	_ = net
	if err := evo.RegisterEndhost(h); err != nil {
		t.Fatal(err)
	}
	base := evo.Snapshot()
	evo.UnregisterEndhost(h)
	d := evo.Snapshot().Sub(base)
	if d.BoneRebuilds != 0 || d.RebuildsFailed != 0 {
		t.Errorf("unregister rebuilt the bone: rebuilds = %d failed = %d", d.BoneRebuilds, d.RebuildsFailed)
	}
	if d.Epochs != 1 {
		t.Errorf("Epochs = %d, want 1 — the withdrawal must publish", d.Epochs)
	}
	// Unregistering an unknown host publishes nothing at all.
	base = evo.Snapshot()
	evo.UnregisterEndhost(h)
	if d := evo.Snapshot().Sub(base); d.Epochs != 0 {
		t.Errorf("double unregister published %d epochs, want 0", d.Epochs)
	}
}

// TestScopedIntraReconvergenceRunsFewerDijkstras drives the same
// single-domain link failure through a scoped-invalidation Evolution and
// a FullReconverge baseline over identical topologies, and asserts the
// scoped path recomputes at least 5× fewer shortest-path trees.
func TestScopedIntraReconvergenceRunsFewerDijkstras(t *testing.T) {
	netS, scoped := transitStubEvo(t, false)
	netF, fullEvo := transitStubEvo(t, true)
	if _, err := scoped.Bone(); err != nil {
		t.Fatal(err)
	}
	if _, err := fullEvo.Bone(); err != nil {
		t.Fatal(err)
	}

	// A deployed stub domain's intra link; same seed, so the link exists
	// in both networks.
	asn := netS.ASNs()[6]
	a, b := findIntraLink(t, netS, asn)

	sBase, fBase := scoped.IGP.DijkstraRuns(), fullEvo.IGP.DijkstraRuns()
	cs, cf := scoped.Snapshot(), fullEvo.Snapshot()
	if !scoped.FailIntraLink(a, b) {
		t.Fatal("intra link not found (scoped)")
	}
	if !fullEvo.FailIntraLink(a, b) {
		t.Fatal("intra link not found (full)")
	}
	sDelta := scoped.IGP.DijkstraRuns() - sBase
	fDelta := fullEvo.IGP.DijkstraRuns() - fBase
	if sDelta == 0 {
		t.Fatal("scoped reconvergence ran no dijkstras — nothing was recomputed")
	}
	if fDelta < 5*sDelta {
		t.Errorf("full dump ran %d dijkstras, scoped ran %d — want ≥5× savings", fDelta, sDelta)
	}

	ds := scoped.Snapshot().Sub(cs)
	if ds.InvalDomain != 1 || ds.InvalInter != 0 || ds.InvalFull != 0 {
		t.Errorf("scoped invalidation counters = %d/%d/%d (domain/inter/full), want 1/0/0",
			ds.InvalDomain, ds.InvalInter, ds.InvalFull)
	}
	if ds.BoneDomainsReused == 0 {
		t.Error("scoped rebuild reused no domain meshes")
	}
	df := fullEvo.Snapshot().Sub(cf)
	if df.InvalFull != 1 {
		t.Errorf("full-dump invalidation counter = %d, want 1", df.InvalFull)
	}

	// Both reconverged systems must still agree on deliveries.
	for i := 0; i < len(netS.Hosts); i++ {
		src, dst := netS.Hosts[i], netS.Hosts[(i+1)%len(netS.Hosts)]
		dS, errS := scoped.Send(src, dst, []byte("x"))
		dF, errF := fullEvo.Send(netF.Hosts[src.ID], netF.Hosts[dst.ID], []byte("x"))
		if (errS != nil) != (errF != nil) {
			t.Fatalf("h%d→h%d: scoped err=%v, full err=%v", src.ID, dst.ID, errS, errF)
		}
		if errS == nil && (dS.Ingress.Member != dF.Ingress.Member || dS.TotalCost != dF.TotalCost) {
			t.Fatalf("h%d→h%d: scoped r%d/%d, full r%d/%d",
				src.ID, dst.ID, dS.Ingress.Member, dS.TotalCost, dF.Ingress.Member, dF.TotalCost)
		}
	}
}

// TestSendCompletesWhileMutatorLockHeld is the lock-free-hot-path
// guarantee stated directly: a Send must finish while another goroutine
// holds the mutator lock, because the send path only loads the published
// epoch pointer.
func TestSendCompletesWhileMutatorLockHeld(t *testing.T) {
	net, evo := transitStubEvo(t, false)
	src, dst := net.Hosts[0], net.Hosts[1]
	if _, err := evo.Send(src, dst, []byte("warm")); err != nil {
		t.Fatal(err)
	}

	evo.mu.Lock()
	defer evo.mu.Unlock()
	done := make(chan error, 1)
	go func() {
		_, err := evo.Send(src, dst, []byte("locked"))
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("send under held mutator lock failed: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Send blocked on the mutator lock — hot path is not lock-free")
	}
}
