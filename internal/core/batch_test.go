package core

import (
	"errors"
	"math/rand/v2"
	"reflect"
	"sync"
	"testing"

	"github.com/evolvable-net/evolve/internal/topology"
	"github.com/evolvable-net/evolve/internal/trace"
)

// stripSeq zeroes the per-delivery random sequence in an event stream so
// loop and batch traces compare on kind, order, routers and costs alone.
func stripSeq(events []trace.Event) []trace.Event {
	out := make([]trace.Event, len(events))
	for i, e := range events {
		e.Seq = 0
		out[i] = e
	}
	return out
}

// errString renders an error for cross-arm comparison ("" for nil). The
// batch path rebuilds its errors through the same fmt wrapping as the
// loop path, so string equality is the observational contract.
func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// normalizeChurnCounters erases the one legitimate divergence between a
// batch and its equivalent loop under mid-run epoch churn: the batch pins
// one epoch for the whole burst, so once the epoch is republished its
// cache stores are gated off and later packets re-miss, while the loop
// reloads a fresh epoch per send and keeps hitting. Hits versus misses is
// a cache-placement detail, never routing: merge them and compare totals.
func normalizeChurnCounters(s trace.Snapshot) trace.Snapshot {
	s.DeliveryFlowMisses += s.DeliveryFlowHits
	s.DeliveryFlowHits = 0
	s.RedirectCacheHits = 0
	return s
}

// diffWorld is one arm's half of the differential harness: an Evolution
// on its own (identically seeded) network, deployed and registered by
// the shared script.
type diffWorld struct {
	e     *Evolution
	hosts []*topology.Host
	// republish re-seals the current epoch without changing routing (an
	// already-deployed router re-deployed) — the churn injection.
	republish func()
}

func newDiffWorld(t *testing.T, cfg Config) *diffWorld {
	t.Helper()
	n := world(t)
	e := newEvo(t, n, cfg)
	t0 := n.DomainByName("T0")
	e.DeployDomain(t0.ASN, 0)
	e.DeployDomain(n.DomainByName("S0.0").ASN, 0)
	if err := e.RegisterEndhosts(n.HostsIn(n.DomainByName("S1.1").ASN)); err != nil {
		t.Fatal(err)
	}
	deployed := t0.Routers[0]
	return &diffWorld{
		e:         e,
		hosts:     n.Hosts,
		republish: func() { e.DeployRouter(deployed) },
	}
}

// TestSendBatchDifferential is the batch≡loop differential harness: for
// randomized bursts (sources, destination multisets with duplicates,
// payloads including nil, empty and oversized-overflow ones) it runs
// SendBatch/SendBurst on one world and the equivalent Send loop on an
// identically seeded twin, and requires byte-identical deliveries,
// identical per-packet errors in order, identical counter deltas and
// identical trace event streams — across shard counts, cache ablation
// and mid-batch epoch churn.
func TestSendBatchDifferential(t *testing.T) {
	arms := []struct {
		name  string
		cfg   Config
		churn bool
	}{
		{"shards=1", Config{DeliveryShards: 1}, false},
		{"shards=4", Config{DeliveryShards: 4}, false},
		{"shards=16", Config{DeliveryShards: 16}, false},
		{"uncached", Config{DeliveryShards: 4, DisableDeliveryCache: true}, false},
		{"churn/shards=4", Config{DeliveryShards: 4}, true},
		{"churn/uncached", Config{DeliveryShards: 1, DisableDeliveryCache: true}, true},
		// The graceful-degradation arms: the health layer's decisions are a
		// pure function of the flow's history and the epoch sequence, so the
		// batch≡loop contract must extend to suspect transitions, rescues
		// and fallback-state sends. (No churn arm here: a mid-batch epoch
		// republish legitimately diverges probe timing between the pinned
		// batch epoch and the loop's per-send reload.)
		{"fallback/shards=1", Config{DeliveryShards: 1, Fallback: FallbackConfig{Enabled: true}}, false},
		{"fallback/shards=4", Config{DeliveryShards: 4, Fallback: FallbackConfig{Enabled: true}}, false},
		{"fallback/shards=16", Config{DeliveryShards: 16, Fallback: FallbackConfig{Enabled: true}}, false},
	}
	for _, arm := range arms {
		t.Run(arm.name, func(t *testing.T) {
			runBatchDifferential(t, arm.cfg, arm.churn)
		})
	}
}

func runBatchDifferential(t *testing.T, cfg Config, churn bool) {
	loop := newDiffWorld(t, cfg)
	batch := newDiffWorld(t, cfg)

	// The churn hook republishes the epoch before packets 2 and 5 of a
	// burst. The batch path fires it via testBatchHook inside sendBatch;
	// the loop arm calls the same hook at the same indexes between Sends.
	hook := func(w *diffWorld, i int) {
		if churn && (i == 2 || i == 5) {
			w.republish()
		}
	}
	batch.e.testBatchHook = func(i int) { hook(batch, i) }
	defer func() { batch.e.testBatchHook = nil }()

	batchRec := trace.NewRecorder()
	batch.e.SetTracer(batchRec)

	oversized := make([]byte, 0x10000)
	rng := rand.New(rand.NewPCG(7, 7))
	const rounds = 30
	for round := 0; round < rounds; round++ {
		nb := 1 + rng.IntN(12)
		srcIdx := rng.IntN(len(loop.hosts))
		dstIdx := make([]int, nb)
		payloads := make([][]byte, nb)
		for i := range dstIdx {
			if i > 0 && rng.IntN(4) == 0 {
				dstIdx[i] = dstIdx[i-1] // duplicate destinations share a flow
			} else {
				dstIdx[i] = rng.IntN(len(loop.hosts))
			}
			switch rng.IntN(8) {
			case 0:
				payloads[i] = nil
			case 1:
				payloads[i] = []byte{}
			case 2:
				// A >64KiB payload overflows the VN length field: a
				// deterministic mid-batch drop that must not poison the
				// rest of the burst.
				payloads[i] = oversized
			default:
				pl := make([]byte, 1+rng.IntN(64))
				for j := range pl {
					pl[j] = byte(rng.IntN(256))
				}
				payloads[i] = pl
			}
		}
		burst := rng.IntN(3) == 0 // every ~3rd round exercises SendBurst
		if burst {
			for i := range dstIdx {
				dstIdx[i] = dstIdx[0]
			}
		}

		// Loop arm: one traced Send per packet, events concatenating in
		// emission order.
		loopRec := trace.NewRecorder()
		loopBefore := loop.e.Snapshot()
		loopDel := make([]Delivery, nb)
		loopErrs := make([]string, nb)
		for i := 0; i < nb; i++ {
			hook(loop, i)
			d, err := loop.e.SendTraced(loop.hosts[srcIdx], loop.hosts[dstIdx[i]], payloads[i], loopRec)
			loopDel[i] = stripTag(d)
			loopErrs[i] = errString(err)
		}
		loopDelta := loop.e.Snapshot().Sub(loopBefore)

		// Batch arm: one SendBatch (or SendBurst) call.
		batchRec.Reset()
		batchBefore := batch.e.Snapshot()
		var got []Delivery
		var err error
		if burst {
			got, err = batch.e.SendBurst(batch.hosts[srcIdx], batch.hosts[dstIdx[0]], payloads)
		} else {
			dsts := make([]*topology.Host, nb)
			for i, di := range dstIdx {
				dsts[i] = batch.hosts[di]
			}
			got, err = batch.e.SendBatch(batch.hosts[srcIdx], dsts, payloads)
		}
		batchDelta := batch.e.Snapshot().Sub(batchBefore)

		if len(got) != nb {
			t.Fatalf("round %d: batch returned %d deliveries, want %d", round, len(got), nb)
		}
		batchErrs := make([]string, nb)
		if err != nil {
			var be *BatchError
			if !errors.As(err, &be) {
				t.Fatalf("round %d: batch error is %T (%v), want *BatchError", round, err, err)
			}
			if len(be.Errs) != nb {
				t.Fatalf("round %d: BatchError has %d entries, want %d", round, len(be.Errs), nb)
			}
			n := 0
			for i, e := range be.Errs {
				batchErrs[i] = errString(e)
				if e != nil {
					n++
				}
			}
			if n != be.Failed || n == 0 {
				t.Fatalf("round %d: BatchError.Failed=%d, counted %d non-nil", round, be.Failed, n)
			}
		}

		for i := 0; i < nb; i++ {
			if loopErrs[i] != batchErrs[i] {
				t.Fatalf("round %d packet %d: error diverges:\nloop:  %q\nbatch: %q",
					round, i, loopErrs[i], batchErrs[i])
			}
			if !reflect.DeepEqual(loopDel[i], stripTag(got[i])) {
				t.Fatalf("round %d packet %d: delivery diverges:\nloop:  %+v\nbatch: %+v",
					round, i, loopDel[i], got[i])
			}
		}

		// Counters: the batch arm additionally moves the batch_* gauges;
		// assert them, then erase for the field-by-field comparison.
		distinct := map[int]bool{}
		for _, di := range dstIdx {
			distinct[di] = true
		}
		if want := uint64(len(distinct)); batchDelta.DeliveryBatchFlows != want {
			t.Fatalf("round %d: batch materialized %d flows, want %d",
				round, batchDelta.DeliveryBatchFlows, want)
		}
		if batchDelta.DeliveryBatchPackets != uint64(nb) {
			t.Fatalf("round %d: batch counted %d packets, want %d",
				round, batchDelta.DeliveryBatchPackets, nb)
		}
		batchDelta.DeliveryBatchFlows, batchDelta.DeliveryBatchPackets = 0, 0
		ld, bd := loopDelta, batchDelta
		if churn {
			ld, bd = normalizeChurnCounters(ld), normalizeChurnCounters(bd)
		}
		if !reflect.DeepEqual(ld, bd) {
			t.Fatalf("round %d: counter deltas diverge:\nloop:  %+v\nbatch: %+v", round, ld, bd)
		}

		// Trace streams: identical content in identical order, modulo the
		// per-delivery random sequence numbers and the batch flushing its
		// events at burst end rather than per packet.
		le, be := stripSeq(loopRec.Events()), stripSeq(batchRec.Events())
		if !reflect.DeepEqual(le, be) {
			t.Fatalf("round %d: event streams diverge (%d vs %d events):\nloop:  %+v\nbatch: %+v",
				round, len(le), len(be), le, be)
		}
	}
}

// TestSendBatchSeededScript replays the shard-equivalence delivery script
// with every sendAll expressed as one SendBatch per source and checks the
// deliveries against the loop-driven reference — the batch path riding
// through deployment, failure and registration churn between bursts.
func TestSendBatchSeededScript(t *testing.T) {
	refEvo := newEvo(t, world(t), Config{})
	refDel, refAddrs := runDeliveryScript(t, refEvo)

	e := newEvo(t, world(t), Config{})
	n := e.Net
	t0 := n.DomainByName("T0")
	s11 := n.DomainByName("S1.1")
	e.DeployDomain(t0.ASN, 0)
	e.DeployDomain(n.DomainByName("S0.0").ASN, 0)
	if err := e.RegisterEndhosts(n.HostsIn(s11.ASN)); err != nil {
		t.Fatal(err)
	}

	var deliveries []Delivery
	sendAll := func() {
		for _, src := range n.Hosts[:6] {
			var dsts []*topology.Host
			for _, dst := range n.Hosts[len(n.Hosts)-6:] {
				if src == dst {
					continue
				}
				// The script sends each pair twice (cache-hit coverage);
				// keep that shape as in-batch duplicates.
				dsts = append(dsts, dst, dst)
			}
			got, err := e.SendBatch(src, dsts, nil)
			if err != nil {
				t.Fatalf("batch from %s: %v", src.Name, err)
			}
			for i := 0; i < len(got); i += 2 {
				d, d2 := stripTag(got[i]), stripTag(got[i+1])
				if !reflect.DeepEqual(d, d2) {
					t.Fatalf("in-batch re-send differs for %s->%s:\n%+v\n%+v",
						src.Name, dsts[i].Name, d, d2)
				}
				deliveries = append(deliveries, d)
			}
		}
	}

	sendAll()
	rts := t0.Routers
	e.FailIntraLink(rts[0], rts[1])
	sendAll()
	e.DeployDomain(n.DomainByName("S1.0").ASN, 1)
	sendAll()
	e.UnregisterEndhost(n.HostsIn(s11.ASN)[0])
	sendAll()

	// The script payload is "equivalence"; batches above carried nil
	// payloads, so compare with payloads erased on both sides.
	noPayload := func(ds []Delivery) []Delivery {
		out := make([]Delivery, len(ds))
		for i, d := range ds {
			d.Payload = nil
			out[i] = d
		}
		return out
	}
	if !reflect.DeepEqual(noPayload(refDel), noPayload(deliveries)) {
		t.Fatal("batched script deliveries diverge from loop reference")
	}
	for i, h := range n.Hosts {
		v, err := e.HostVNAddr(h)
		if err != nil {
			t.Fatal(err)
		}
		if v.String() != refAddrs[i] {
			t.Errorf("host %s address %s, want %s", h.Name, v, refAddrs[i])
		}
	}
}

// TestSendBatchArgumentErrors pins the plain-error paths: a
// payload/destination length mismatch fails the whole call without
// touching counters, and an unusable epoch fails every packet with the
// epoch error, counted exactly like the equivalent loop.
func TestSendBatchArgumentErrors(t *testing.T) {
	n := world(t)
	e := newEvo(t, n, Config{})

	// Undeployed: the epoch error, one not-deployed drop per packet.
	before := e.Snapshot()
	out, err := e.SendBatch(n.Hosts[0], []*topology.Host{n.Hosts[1], n.Hosts[2]}, nil)
	if !errors.Is(err, ErrNotDeployed) {
		t.Fatalf("undeployed batch: %v, want ErrNotDeployed", err)
	}
	if out != nil {
		t.Fatalf("undeployed batch extended out: %v", out)
	}
	delta := e.Snapshot().Sub(before)
	if delta.Sends != 2 || delta.DropsByReason[trace.DropNotDeployed] != 2 {
		t.Fatalf("undeployed batch counted sends=%d notdeployed=%d, want 2/2",
			delta.Sends, delta.DropsByReason[trace.DropNotDeployed])
	}
	if delta.DeliveryBatchPackets != 2 {
		t.Fatalf("undeployed batch counted %d batch packets, want 2", delta.DeliveryBatchPackets)
	}

	e.DeployDomain(n.DomainByName("T0").ASN, 0)
	before = e.Snapshot()
	if _, err := e.SendBatch(n.Hosts[0], n.Hosts[1:3], [][]byte{{1}}); err == nil {
		t.Fatal("payload/destination mismatch accepted")
	}
	if d := e.Snapshot().Sub(before); d.Sends != 0 {
		t.Fatalf("mismatched batch moved counters: %+v", d)
	}

	// Empty batches are free.
	if out, err := e.SendBatch(n.Hosts[0], nil, nil); err != nil || out != nil {
		t.Fatalf("empty batch: %v, %v", out, err)
	}
	if out, err := e.SendBurst(n.Hosts[0], n.Hosts[1], nil); err != nil || out != nil {
		t.Fatalf("empty burst: %v, %v", out, err)
	}
}

// TestBatchErrorMessage pins the summary format and the errors.As
// contract documented on BatchError.
func TestBatchErrorMessage(t *testing.T) {
	be := &BatchError{Errs: []error{nil, errors.New("boom"), nil}, Failed: 1}
	want := "core: batch: 1 of 3 packets dropped (first: boom)"
	if be.Error() != want {
		t.Errorf("BatchError.Error() = %q, want %q", be.Error(), want)
	}
	var got *BatchError
	if err := error(be); !errors.As(err, &got) || got != be {
		t.Error("errors.As failed to recover *BatchError")
	}
}

// TestSendBatchConcurrentChurn hammers the batch path under -race: many
// goroutines issuing overlapping batches (with in-batch duplicate
// destinations) while mutators churn links and membership. Every batch
// must be torn-free: packets to the same destination within one batch
// observed one routing epoch, so their deliveries are identical modulo
// the trace tag.
func TestSendBatchConcurrentChurn(t *testing.T) {
	n := world(t)
	e := newEvo(t, n, Config{})
	t0 := n.DomainByName("T0")
	e.DeployDomain(t0.ASN, 0)
	if err := e.RegisterEndhosts(n.HostsIn(n.DomainByName("S1.1").ASN)); err != nil {
		t.Fatal(err)
	}

	const (
		senders = 64
		batches = 30
	)
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Churn: intra-domain link failures/restores and membership flaps in
	// the deployed transit, mirroring TestConcurrentSendsWithChurn.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rts := t0.Routers
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			switch i % 4 {
			case 0:
				e.FailIntraLink(rts[0], rts[1])
			case 1:
				e.RestoreIntraLink(rts[0], rts[1], 1)
			case 2:
				e.UndeployRouter(rts[len(rts)-1])
			case 3:
				e.DeployRouter(rts[len(rts)-1])
			}
		}
	}()

	errc := make(chan error, senders)
	for g := 0; g < senders; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(g), 17))
			var out []Delivery
			for b := 0; b < batches; b++ {
				src := n.Hosts[rng.IntN(len(n.Hosts))]
				nb := 2 + rng.IntN(14)
				dsts := make([]*topology.Host, nb)
				for i := range dsts {
					if i > 0 && i%3 == 0 {
						dsts[i] = dsts[i-1] // in-batch duplicates must agree
					} else {
						dsts[i] = n.Hosts[rng.IntN(len(n.Hosts))]
					}
				}
				var err error
				out, err = e.AppendSendBatch(out[:0], src, dsts, nil)
				var be *BatchError
				if err != nil && !errors.As(err, &be) {
					// A whole-batch error is the epoch error: tolerable
					// mid-churn, and out is unextended by contract.
					if len(out) != 0 {
						errc <- errors.New("whole-batch error extended the delivery slice")
						return
					}
					continue
				}
				if len(out) != nb {
					errc <- errors.New("batch returned short delivery slice")
					return
				}
				for i := 1; i < nb; i++ {
					if dsts[i] != dsts[i-1] {
						continue
					}
					if be != nil && (be.Errs[i] != nil || be.Errs[i-1] != nil) {
						continue // dropped packets carry zero deliveries
					}
					if !reflect.DeepEqual(stripTag(out[i-1]), stripTag(out[i])) {
						errc <- errors.New("torn batch: duplicate destinations diverged within one batch")
						return
					}
				}
			}
			errc <- nil
		}(g)
	}
	for g := 0; g < senders; g++ {
		if err := <-errc; err != nil {
			t.Error(err)
		}
	}
	close(stop)
	wg.Wait()
}

// TestSendBatchZeroAlloc pins the batched steady state: with flows
// memoised, the context pool warm and the caller reusing its output and
// input slices, AppendSendBatch allocates nothing per burst.
func TestSendBatchZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	n := world(t)
	e := newEvo(t, n, Config{})
	e.DeployDomain(n.DomainByName("T0").ASN, 0)
	src := n.HostsIn(n.DomainByName("S0.0").ASN)[0]
	hs := n.HostsIn(n.DomainByName("S1.1").ASN)
	dsts := []*topology.Host{hs[0], hs[1], hs[0], hs[1], hs[0], hs[1], hs[0], hs[1]}
	payloads := make([][]byte, len(dsts))
	for i := range payloads {
		payloads[i] = []byte("zero-alloc batch steady state")
	}
	out := make([]Delivery, 0, len(dsts))
	var err error
	for i := 0; i < 10; i++ {
		if out, err = e.AppendSendBatch(out[:0], src, dsts, payloads); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(200, func() {
		if out, err = e.AppendSendBatch(out[:0], src, dsts, payloads); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state AppendSendBatch allocates %.1f objects per op, want 0", allocs)
	}

	for i := 0; i < 10; i++ {
		if out, err = e.AppendSendBurst(out[:0], src, hs[0], payloads); err != nil {
			t.Fatal(err)
		}
	}
	allocs = testing.AllocsPerRun(200, func() {
		if out, err = e.AppendSendBurst(out[:0], src, hs[0], payloads); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state AppendSendBurst allocates %.1f objects per op, want 0", allocs)
	}
}
