package core

import (
	"testing"

	"github.com/evolvable-net/evolve/internal/anycast"
	"github.com/evolvable-net/evolve/internal/topology"
)

// TestSeveredRegistrantDoesNotPoisonRebuild pins the best-effort
// registration semantics the chaos harness depends on: a registered
// endhost whose domain is internally severed (so its §3.3.2 anycast
// advertisement cannot be refreshed) must not make the whole rebuild
// fail — every other sender keeps delivering, and once the link heals
// the registration on file re-advertises without client action.
func TestSeveredRegistrantDoesNotPoisonRebuild(t *testing.T) {
	b := topology.NewBuilder()
	dT := b.AddDomain("T")
	dC := b.AddDomain("C")
	dB := b.AddDomain("B")
	rT := b.AddRouters(dT, 2)
	rC := b.AddRouters(dC, 2)
	rB := b.AddRouter(dB, "")
	b.IntraLink(rT[0], rT[1], 2)
	b.IntraLink(rC[0], rC[1], 3)
	b.Provide(rT[0], rC[0], 10)
	b.Provide(rT[1], rB, 10)
	hc := b.AddHost(dC, rC[1], "registrant", 1)
	hb := b.AddHost(dB, rB, "sender", 1)
	ht := b.AddHost(dT, rT[0], "receiver", 1)
	net, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	evo, err := New(net, Config{Option: anycast.Option1})
	if err != nil {
		t.Fatal(err)
	}
	evo.DeployDomain(dT.ASN, 0)

	if err := evo.RegisterEndhost(hc); err != nil {
		t.Fatalf("register: %v", err)
	}
	if _, err := evo.Send(hb, hc, []byte("pre")); err != nil {
		t.Fatalf("precondition send to registrant: %v", err)
	}

	// Sever the registrant from its domain's border. The next rebuild
	// cannot refresh hc's advertisement — and must not care.
	if !evo.FailIntraLink(rC[0], rC[1]) {
		t.Fatal("intra link not found")
	}
	if _, err := evo.Send(hb, ht, []byte("others")); err != nil {
		t.Fatalf("unrelated delivery failed after registrant was severed: %v", err)
	}
	if _, err := evo.Send(hb, hc, []byte("dark")); err == nil {
		t.Fatal("delivery to severed registrant should fail")
	}

	// Heal: the registration was kept on file, so the advertisement
	// returns with the link — no re-registration call needed.
	evo.RestoreIntraLink(rC[0], rC[1], 3)
	if _, err := evo.Send(hb, hc, []byte("post")); err != nil {
		t.Fatalf("send after heal: %v", err)
	}
}
