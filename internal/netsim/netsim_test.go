package netsim

import (
	"testing"
)

func TestEngineOrdersByTime(t *testing.T) {
	e := NewEngine()
	var got []int
	e.At(30, func() { got = append(got, 3) })
	e.At(10, func() { got = append(got, 1) })
	e.At(20, func() { got = append(got, 2) })
	if n := e.Run(0); n != 3 {
		t.Fatalf("ran %d events", n)
	}
	if got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("order = %v", got)
	}
	if e.Now() != 30 {
		t.Errorf("Now = %v", e.Now())
	}
}

func TestEngineFIFOAmongSimultaneous(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { got = append(got, i) })
	}
	e.Run(0)
	for i, v := range got {
		if v != i {
			t.Fatalf("simultaneous events reordered: %v", got)
		}
	}
}

func TestEngineAfterAndNestedScheduling(t *testing.T) {
	e := NewEngine()
	var fired []Time
	e.After(10, func() {
		fired = append(fired, e.Now())
		e.After(5, func() { fired = append(fired, e.Now()) })
	})
	e.Run(0)
	if len(fired) != 2 || fired[0] != 10 || fired[1] != 15 {
		t.Errorf("fired = %v", fired)
	}
}

func TestEnginePastSchedulingClamped(t *testing.T) {
	e := NewEngine()
	e.At(10, func() {
		e.At(3, func() {}) // in the past: must run at now, not rewind
	})
	e.Run(0)
	if e.Now() != 10 {
		t.Errorf("Now = %v", e.Now())
	}
}

func TestEngineRunBudget(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 5; i++ {
		e.At(Time(i), func() {})
	}
	if n := e.Run(3); n != 3 {
		t.Errorf("ran %d", n)
	}
	if e.Pending() != 2 {
		t.Errorf("pending = %d", e.Pending())
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	var count int
	for _, at := range []Time{5, 10, 15, 20} {
		e.At(at, func() { count++ })
	}
	e.RunUntil(12)
	if count != 2 {
		t.Errorf("count = %d", count)
	}
	if e.Now() != 12 {
		t.Errorf("Now = %v", e.Now())
	}
	e.RunUntil(100)
	if count != 4 {
		t.Errorf("count = %d", count)
	}
}

func TestEngineProcessed(t *testing.T) {
	e := NewEngine()
	e.At(1, func() {})
	e.At(2, func() {})
	e.Run(0)
	if e.Processed() != 2 {
		t.Errorf("Processed = %d", e.Processed())
	}
}

func TestFabricDelivery(t *testing.T) {
	e := NewEngine()
	f := NewFabric(e)
	f.Connect(1, 2, 7)
	var gotFrom int
	var gotMsg any
	var gotAt Time
	f.Attach(2, HandlerFunc(func(from int, msg any) {
		gotFrom, gotMsg, gotAt = from, msg, e.Now()
	}))
	f.Send(1, 2, "hello")
	e.Run(0)
	if gotFrom != 1 || gotMsg != "hello" || gotAt != 7 {
		t.Errorf("delivery = from %d msg %v at %v", gotFrom, gotMsg, gotAt)
	}
	if f.Sent != 1 || f.Delivered != 1 || f.Dropped != 0 {
		t.Errorf("stats = %d/%d/%d", f.Sent, f.Delivered, f.Dropped)
	}
}

func TestFabricDropsWithoutLink(t *testing.T) {
	e := NewEngine()
	f := NewFabric(e)
	f.Attach(2, HandlerFunc(func(int, any) { t.Error("should not deliver") }))
	f.Send(1, 2, "x")
	e.Run(0)
	if f.Dropped != 1 {
		t.Errorf("Dropped = %d", f.Dropped)
	}
}

func TestFabricFailAndRestore(t *testing.T) {
	e := NewEngine()
	f := NewFabric(e)
	f.Connect(1, 2, 1)
	var n int
	f.Attach(2, HandlerFunc(func(int, any) { n++ }))

	f.FailLink(1, 2)
	if f.Connected(1, 2) {
		t.Error("failed link reported connected")
	}
	f.Send(1, 2, "lost")
	e.Run(0)
	if n != 0 || f.Dropped != 1 {
		t.Errorf("after failure: delivered %d dropped %d", n, f.Dropped)
	}

	f.RestoreLink(1, 2)
	if !f.Connected(1, 2) {
		t.Error("restored link reported down")
	}
	f.Send(1, 2, "found")
	e.Run(0)
	if n != 1 {
		t.Errorf("after restore: delivered %d", n)
	}
}

func TestFabricFlapLink(t *testing.T) {
	e := NewEngine()
	f := NewFabric(e)
	f.Connect(1, 2, 1)
	var n int
	f.Attach(2, HandlerFunc(func(int, any) { n++ }))

	f.FlapLink(1, 2, 50)
	if f.Connected(1, 2) {
		t.Error("flapped link still connected immediately after flap")
	}
	f.Send(1, 2, "during-flap")
	e.RunUntil(49)
	if n != 0 || f.Dropped != 1 {
		t.Errorf("during flap: delivered %d dropped %d", n, f.Dropped)
	}
	e.RunUntil(60)
	if !f.Connected(1, 2) {
		t.Error("link not restored after flap interval")
	}
	f.Send(1, 2, "after-flap")
	e.Run(0)
	if n != 1 {
		t.Errorf("after flap: delivered %d", n)
	}
}

func TestFabricFlapLinkZeroDuration(t *testing.T) {
	// A non-positive downFor restores via an engine event at the current
	// time: the link is down until the engine steps, then up again.
	e := NewEngine()
	f := NewFabric(e)
	f.Connect(1, 2, 1)
	f.FlapLink(1, 2, 0)
	if f.Connected(1, 2) {
		t.Error("link up before restoration event ran")
	}
	e.Run(0)
	if !f.Connected(1, 2) {
		t.Error("link still down after restoration event")
	}
}

func TestFabricLinkSymmetric(t *testing.T) {
	e := NewEngine()
	f := NewFabric(e)
	f.Connect(2, 1, 4) // declared one way…
	var ok bool
	f.Attach(2, HandlerFunc(func(int, any) { ok = true }))
	f.Send(1, 2, "rev") // …used the other
	e.Run(0)
	if !ok {
		t.Error("link should be bidirectional")
	}
}

func TestFabricDropsToUnattachedNode(t *testing.T) {
	e := NewEngine()
	f := NewFabric(e)
	f.Connect(1, 2, 1)
	f.Send(1, 2, "void")
	e.Run(0)
	if f.Dropped != 1 {
		t.Errorf("Dropped = %d", f.Dropped)
	}
}

func TestFabricBroadcast(t *testing.T) {
	e := NewEngine()
	f := NewFabric(e)
	var n int
	for _, id := range []int{2, 3, 4} {
		f.Connect(1, id, 1)
		f.Attach(id, HandlerFunc(func(int, any) { n++ }))
	}
	f.Broadcast(1, []int{2, 3, 4}, "all")
	e.Run(0)
	if n != 3 {
		t.Errorf("broadcast delivered %d", n)
	}
}

func TestFabricInFlightSurvivesFailure(t *testing.T) {
	// A message already in flight when the link fails still arrives:
	// failure stops future sends, not photons already in the fibre.
	e := NewEngine()
	f := NewFabric(e)
	f.Connect(1, 2, 10)
	var n int
	f.Attach(2, HandlerFunc(func(int, any) { n++ }))
	f.Send(1, 2, "in-flight")
	f.FailLink(1, 2)
	e.Run(0)
	if n != 1 {
		t.Errorf("in-flight message lost (n=%d)", n)
	}
}

func TestTimeString(t *testing.T) {
	if Time(1500).String() != "1.500ms" {
		t.Errorf("String = %s", Time(1500))
	}
}
