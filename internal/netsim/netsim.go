// Package netsim is the discrete-event engine under the routing protocols:
// a simulated clock, an event queue, and a message fabric that delivers
// protocol messages between nodes over latency-weighted links, with
// link-failure injection. Protocols run either event-driven (to study
// convergence dynamics) or to quiescence (deterministic final state for
// the experiment harness).
package netsim

import (
	"container/heap"
	"fmt"
)

// Time is simulated time in microseconds.
type Time int64

// String renders the time in milliseconds for logs.
func (t Time) String() string { return fmt.Sprintf("%.3fms", float64(t)/1000) }

type event struct {
	at  Time
	seq uint64 // FIFO among simultaneous events, for determinism
	do  func()
}

type eventQueue []event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(event)) }
func (q *eventQueue) Pop() any     { old := *q; n := len(old); e := old[n-1]; *q = old[:n-1]; return e }
func (q eventQueue) peek() event   { return q[0] }
func (q eventQueue) empty() bool   { return len(q) == 0 }

// Engine is a discrete-event simulator. The zero value is not usable; call
// NewEngine.
type Engine struct {
	now    Time
	queue  eventQueue
	seq    uint64
	events uint64
}

// NewEngine returns an engine at time zero with an empty queue.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Processed returns the number of events executed so far.
func (e *Engine) Processed() uint64 { return e.events }

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return len(e.queue) }

// At schedules do at absolute time t (clamped to now).
func (e *Engine) At(t Time, do func()) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	heap.Push(&e.queue, event{at: t, seq: e.seq, do: do})
}

// After schedules do d microseconds from now.
func (e *Engine) After(d Time, do func()) { e.At(e.now+d, do) }

// Step executes the next event; it reports false when the queue is empty.
func (e *Engine) Step() bool {
	if e.queue.empty() {
		return false
	}
	ev := heap.Pop(&e.queue).(event)
	e.now = ev.at
	e.events++
	ev.do()
	return true
}

// Run executes events until the queue drains or the budget is exhausted,
// returning the number executed. A budget of 0 means unlimited.
func (e *Engine) Run(budget uint64) uint64 {
	var n uint64
	for (budget == 0 || n < budget) && e.Step() {
		n++
	}
	return n
}

// RunUntil executes events with at ≤ t, then advances the clock to t.
func (e *Engine) RunUntil(t Time) uint64 {
	var n uint64
	for !e.queue.empty() && e.queue.peek().at <= t {
		e.Step()
		n++
	}
	if e.now < t {
		e.now = t
	}
	return n
}

// Handler is implemented by every node attached to a Fabric.
type Handler interface {
	// Receive is invoked when a message arrives. from is the sending node.
	Receive(from int, msg any)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(from int, msg any)

// Receive implements Handler.
func (f HandlerFunc) Receive(from int, msg any) { f(from, msg) }

type linkKey struct{ a, b int }

func mkLink(a, b int) linkKey {
	if a > b {
		a, b = b, a
	}
	return linkKey{a, b}
}

// Fabric delivers messages between nodes over configured links with
// per-link latency, honouring injected link failures. All delivery happens
// through the Engine so time and ordering stay deterministic.
type Fabric struct {
	eng      *Engine
	latency  map[linkKey]Time
	handlers map[int]Handler
	down     map[linkKey]bool

	// Stats.
	Sent      uint64
	Delivered uint64
	Dropped   uint64
}

// NewFabric returns a fabric scheduling onto eng.
func NewFabric(eng *Engine) *Fabric {
	return &Fabric{
		eng:      eng,
		latency:  map[linkKey]Time{},
		handlers: map[int]Handler{},
		down:     map[linkKey]bool{},
	}
}

// Engine returns the underlying engine.
func (f *Fabric) Engine() *Engine { return f.eng }

// Attach registers the handler for node id, replacing any existing one.
func (f *Fabric) Attach(id int, h Handler) { f.handlers[id] = h }

// Connect creates (or updates) the bidirectional link a–b.
func (f *Fabric) Connect(a, b int, latency Time) {
	if latency <= 0 {
		latency = 1
	}
	f.latency[mkLink(a, b)] = latency
}

// Connected reports whether a usable (existing and not failed) link a–b
// exists.
func (f *Fabric) Connected(a, b int) bool {
	k := mkLink(a, b)
	_, ok := f.latency[k]
	return ok && !f.down[k]
}

// FailLink takes the link a–b down; messages in flight still arrive
// (signals propagate), subsequent sends are dropped.
func (f *Fabric) FailLink(a, b int) { f.down[mkLink(a, b)] = true }

// RestoreLink brings the link a–b back up.
func (f *Fabric) RestoreLink(a, b int) { delete(f.down, mkLink(a, b)) }

// FlapLink takes the link a–b down now and schedules its restoration
// downFor microseconds later — the primitive behind chaos-style flap
// injection. Messages sent while the link is down are dropped; the
// restoration is an ordinary engine event, so a flap interleaves
// deterministically with protocol traffic. A non-positive downFor
// restores on the next engine step at the current time.
func (f *Fabric) FlapLink(a, b int, downFor Time) {
	f.FailLink(a, b)
	f.eng.After(downFor, func() { f.RestoreLink(a, b) })
}

// Send schedules delivery of msg from→to after the link latency. Messages
// sent over absent or failed links are counted as dropped.
func (f *Fabric) Send(from, to int, msg any) {
	f.Sent++
	k := mkLink(from, to)
	lat, ok := f.latency[k]
	if !ok || f.down[k] {
		f.Dropped++
		return
	}
	f.eng.After(lat, func() {
		h, ok := f.handlers[to]
		if !ok {
			f.Dropped++
			return
		}
		f.Delivered++
		h.Receive(from, msg)
	})
}

// Broadcast sends msg from a node to all of the given neighbours.
func (f *Fabric) Broadcast(from int, neighbors []int, msg any) {
	for _, to := range neighbors {
		f.Send(from, to, msg)
	}
}
