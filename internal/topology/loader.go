package topology

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strconv"
	"strings"
)

// This file loads measured AS-level topologies from the `as1|as2|rel`
// text format used by the CAIDA AS-relationship datasets (and the
// Rocketfuel-derived variants that annotate inferred relationships the
// same way). Each line is one inter-domain adjacency; the loader builds
// a Network with one synthetic domain per AS, so measured internets can
// drive the same experiments as the generators.

// asRelEdge is one parsed dataset line.
type asRelEdge struct {
	a, b int // original AS numbers from the file
	rel  Rel // relationship of a toward b
}

// parseRelToken maps the relationship column to a's relationship toward
// b. Numeric codes follow CAIDA serial-1/serial-2: -1 means a is the
// provider of b, 0 settlement-free peering, 1 the inverted orientation
// some mirrors use, and 2 sibling ASes (treated as peering — siblings
// exchange all routes). The textual tokens appear in Rocketfuel-style
// relationship files.
func parseRelToken(tok string) (Rel, error) {
	switch strings.TrimSpace(tok) {
	case "-1", "p2c":
		return RelProvider, nil
	case "0", "p2p":
		return RelPeer, nil
	case "1", "c2p":
		return RelCustomer, nil
	case "2", "s2s":
		return RelPeer, nil
	default:
		return 0, fmt.Errorf("unknown relationship %q", tok)
	}
}

// ParseASRelationships reads an `as1|as2|rel` relationship dataset and
// assembles a Network: one domain per AS (named "AS<number>", created in
// first-appearance order and renumbered into the internal ASN space),
// populated with cfg.RoutersPerDomain routers and cfg.HostsPerDomain
// hosts like the synthetic generators. `#` comment lines and blank
// lines are skipped; extra `|`-separated columns (the serial-2 source
// column) are ignored. Duplicate AS pairs keep the first relationship
// seen; self-loops and malformed lines are errors.
func ParseASRelationships(r io.Reader, cfg GenConfig) (*Network, error) {
	cfg = cfg.Defaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	b := NewBuilder()

	domains := map[int]*Domain{}    // original AS number → domain
	routers := map[int][]RouterID{} // original AS number → its routers
	linkCount := map[int]int{}      // original AS number → links wired so far
	seen := map[[2]int]bool{}       // unordered AS pair → already linked
	var edges []asRelEdge

	domainFor := func(as int) *Domain {
		if d, ok := domains[as]; ok {
			return d
		}
		d := b.AddDomain(fmt.Sprintf("AS%d", as))
		domains[as] = d
		routers[as] = populateDomain(b, d, cfg, rng)
		return d
	}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, "|")
		if len(fields) < 3 {
			return nil, fmt.Errorf("topology: as-rel line %d: want as1|as2|rel, got %q", lineNo, line)
		}
		as1, err := strconv.Atoi(strings.TrimSpace(fields[0]))
		if err != nil {
			return nil, fmt.Errorf("topology: as-rel line %d: bad AS %q", lineNo, fields[0])
		}
		as2, err := strconv.Atoi(strings.TrimSpace(fields[1]))
		if err != nil {
			return nil, fmt.Errorf("topology: as-rel line %d: bad AS %q", lineNo, fields[1])
		}
		if as1 == as2 {
			return nil, fmt.Errorf("topology: as-rel line %d: self-loop on AS%d", lineNo, as1)
		}
		rel, err := parseRelToken(fields[2])
		if err != nil {
			return nil, fmt.Errorf("topology: as-rel line %d: %v", lineNo, err)
		}
		pair := [2]int{as1, as2}
		if as2 < as1 {
			pair = [2]int{as2, as1}
		}
		if seen[pair] {
			continue // datasets occasionally repeat a pair; first wins
		}
		seen[pair] = true
		domainFor(as1)
		domainFor(as2)
		edges = append(edges, asRelEdge{a: as1, b: as2, rel: rel})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("topology: as-rel read: %w", err)
	}
	if len(edges) == 0 {
		return nil, fmt.Errorf("topology: as-rel input has no adjacencies")
	}

	for _, e := range edges {
		ra := pickBorder(routers[e.a], linkCount[e.a])
		rb := pickBorder(routers[e.b], linkCount[e.b])
		linkCount[e.a]++
		linkCount[e.b]++
		switch e.rel {
		case RelProvider:
			b.Provide(ra, rb, cfg.interLatency(rng))
		case RelCustomer:
			b.Provide(rb, ra, cfg.interLatency(rng))
		default:
			b.Peer(ra, rb, cfg.interLatency(rng))
		}
	}
	return b.Build()
}

// LoadASRelationshipsFile is ParseASRelationships over a file on disk.
func LoadASRelationshipsFile(path string, cfg GenConfig) (*Network, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("topology: as-rel open: %w", err)
	}
	defer f.Close()
	return ParseASRelationships(f, cfg)
}
