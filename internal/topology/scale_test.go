package topology

import (
	"testing"

	"github.com/evolvable-net/evolve/internal/graph"
)

// Property tests over every generator at 1k+ domains: the AS-level graph
// is connected, has no self or parallel domain-level links, the provider
// relation is acyclic (Gao-Rexford needs a hierarchy), and generation is
// deterministic per seed.

type genCase struct {
	name string
	gen  func(seed int64) (*Network, error)
}

func scaleCases(n int) []genCase {
	cfg := func(seed int64) GenConfig {
		return GenConfig{Seed: seed, RoutersPerDomain: 2, HostsPerDomain: 1}
	}
	nTransit := n / 100
	if nTransit < 2 {
		nTransit = 2
	}
	return []genCase{
		{"ring", func(s int64) (*Network, error) { return RingOfDomains(n, cfg(s)) }},
		{"transitstub", func(s int64) (*Network, error) {
			return TransitStub(nTransit, n/nTransit-1, 0.3, cfg(s))
		}},
		{"waxman", func(s int64) (*Network, error) { return Waxman(n, 0.12, 0.2, cfg(s)) }},
		{"barabasi", func(s int64) (*Network, error) { return BarabasiAlbert(n, 2, cfg(s)) }},
	}
}

// checkASGraph asserts the domain-level structural properties.
func checkASGraph(t *testing.T, n *Network) {
	t.Helper()
	asns := n.ASNs()
	index := make(map[ASN]int, len(asns))
	for i, a := range asns {
		index[a] = i
	}

	uf := graph.NewUnionFind(len(asns))
	seenPair := make(map[[2]ASN]bool, len(n.Inter))
	indeg := make([]int, len(asns))
	providerAdj := make([][]int, len(asns)) // provider → customers
	for _, l := range n.Inter {
		fd, td := n.DomainOf(l.From), n.DomainOf(l.To)
		if fd == td {
			t.Fatalf("self link: %v inside AS%d", l, fd)
		}
		pair := [2]ASN{fd, td}
		if td < fd {
			pair = [2]ASN{td, fd}
		}
		if seenPair[pair] {
			t.Fatalf("parallel domain-level link between AS%d and AS%d", pair[0], pair[1])
		}
		seenPair[pair] = true
		uf.Union(index[fd], index[td])
		if l.Rel == RelProvider {
			providerAdj[index[fd]] = append(providerAdj[index[fd]], index[td])
			indeg[index[td]]++
		} else if l.Rel == RelCustomer {
			providerAdj[index[td]] = append(providerAdj[index[td]], index[fd])
			indeg[index[fd]]++
		}
	}
	if uf.Sets() != 1 {
		t.Fatalf("AS graph not connected: %d components", uf.Sets())
	}

	// Kahn's algorithm over the provider→customer digraph: if any node
	// remains, the provider relation has a cycle.
	queue := make([]int, 0, len(asns))
	for i, d := range indeg {
		if d == 0 {
			queue = append(queue, i)
		}
	}
	removed := 0
	for len(queue) > 0 {
		u := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		removed++
		for _, v := range providerAdj[u] {
			if indeg[v]--; indeg[v] == 0 {
				queue = append(queue, v)
			}
		}
	}
	if removed != len(asns) {
		t.Fatalf("provider relation has a cycle: %d of %d ASes in hierarchy", removed, len(asns))
	}
}

func sameNetwork(a, b *Network) bool {
	if len(a.Routers) != len(b.Routers) || len(a.Hosts) != len(b.Hosts) || len(a.Inter) != len(b.Inter) {
		return false
	}
	for i := range a.Inter {
		if a.Inter[i] != b.Inter[i] {
			return false
		}
	}
	return a.Intra.EdgeCount() == b.Intra.EdgeCount()
}

func TestGeneratorProperties1k(t *testing.T) {
	for _, c := range scaleCases(1000) {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			n, err := c.gen(11)
			if err != nil {
				t.Fatal(err)
			}
			if got := len(n.Domains); got < 1000 {
				t.Fatalf("domains = %d, want ≥ 1000", got)
			}
			checkASGraph(t, n)
			n2, err := c.gen(11)
			if err != nil {
				t.Fatal(err)
			}
			if !sameNetwork(n, n2) {
				t.Fatal("same seed generated different networks")
			}
			n3, err := c.gen(12)
			if err != nil {
				t.Fatal(err)
			}
			if sameNetwork(n, n3) {
				t.Fatal("different seeds generated identical networks (suspicious)")
			}
		})
	}
}

func TestTransitStub10kGenerates(t *testing.T) {
	if testing.Short() {
		t.Skip("10k-domain generation in -short mode")
	}
	n, err := TransitStub(100, 99, 0.3, GenConfig{Seed: 5, RoutersPerDomain: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(n.Domains); got != 10000 {
		t.Fatalf("domains = %d, want 10000", got)
	}
	checkASGraph(t, n)
}

func TestAddDomainCeiling(t *testing.T) {
	b := NewBuilder()
	b.nextASN = MaxDomains // pretend MaxDomains-1 domains already exist
	d := b.AddDomain("last")
	if d.ASN != MaxDomains {
		t.Fatalf("last domain ASN = %d, want %d", d.ASN, MaxDomains)
	}
	b.AddRouter(d, "")
	b.AddDomain("overflow")
	if _, err := b.Build(); err == nil {
		t.Fatal("expected error past the domain addressing ceiling")
	}
}

func TestAllNeighborsMatchesNeighbors(t *testing.T) {
	n, err := TransitStub(4, 5, 0.5, GenConfig{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	all := n.AllNeighbors()
	for _, asn := range n.ASNs() {
		want := n.Neighbors(asn)
		got := all[asn]
		if len(got) != len(want) {
			t.Fatalf("AS%d: AllNeighbors %d entries, Neighbors %d", asn, len(got), len(want))
		}
		for i := range want {
			if got[i].ASN != want[i].ASN || got[i].Rel != want[i].Rel || len(got[i].Links) != len(want[i].Links) {
				t.Fatalf("AS%d entry %d: %+v vs %+v", asn, i, got[i], want[i])
			}
			for j := range want[i].Links {
				if got[i].Links[j] != want[i].Links[j] {
					t.Fatalf("AS%d entry %d link %d differs", asn, i, j)
				}
			}
		}
	}
}
