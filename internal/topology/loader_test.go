package topology

import (
	"strings"
	"testing"
)

const sampleASRel = `# CAIDA-style AS relationship sample
# provider|customer|-1, peer|peer|0
174|7018|0
174|64512|-1
7018|64512|-1
7018|64513|-1
64512|64513|0
`

func loadSample(t *testing.T, text string) *Network {
	t.Helper()
	n, err := ParseASRelationships(strings.NewReader(text), GenConfig{Seed: 1, RoutersPerDomain: 2, HostsPerDomain: 1})
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return n
}

func TestParseASRelationships(t *testing.T) {
	n := loadSample(t, sampleASRel)
	if len(n.Domains) != 4 {
		t.Fatalf("domains = %d, want 4", len(n.Domains))
	}
	// Domains are created in first-appearance order: 174, 7018, 64512, 64513.
	wantNames := []string{"AS174", "AS7018", "AS64512", "AS64513"}
	for i, asn := range n.ASNs() {
		if got := n.Domains[asn].Name; got != wantNames[i] {
			t.Errorf("domain %d name = %q, want %q", i, got, wantNames[i])
		}
	}
	if len(n.Inter) != 5 {
		t.Fatalf("inter links = %d, want 5", len(n.Inter))
	}
	// AS174 peers with AS7018 and provides to AS64512.
	d174 := n.DomainByName("AS174")
	nbs := n.Neighbors(d174.ASN)
	if len(nbs) != 2 {
		t.Fatalf("AS174 neighbors = %d, want 2", len(nbs))
	}
	if nbs[0].ASN != n.DomainByName("AS7018").ASN || nbs[0].Rel != RelPeer {
		t.Errorf("AS174→AS7018 = %v, want peer", nbs[0].Rel)
	}
	if nbs[1].ASN != n.DomainByName("AS64512").ASN || nbs[1].Rel != RelProvider {
		t.Errorf("AS174→AS64512 = %v, want provider", nbs[1].Rel)
	}
	// The customer side sees the inverted relationship.
	d64513 := n.DomainByName("AS64513")
	for _, nb := range n.Neighbors(d64513.ASN) {
		if nb.ASN == n.DomainByName("AS7018").ASN && nb.Rel != RelCustomer {
			t.Errorf("AS64513→AS7018 = %v, want customer", nb.Rel)
		}
	}
}

func TestParseASRelationshipsTokensAndDups(t *testing.T) {
	n := loadSample(t, `
10|20|p2c
20|30|c2p
10|30|p2p
30|10|0
40|10|2
`)
	// 30|10|0 duplicates the 10|30 pair and must be dropped.
	if len(n.Inter) != 4 {
		t.Fatalf("inter links = %d, want 4 (dup pair dropped)", len(n.Inter))
	}
	d10, d20, d30 := n.DomainByName("AS10"), n.DomainByName("AS20"), n.DomainByName("AS30")
	for _, nb := range n.Neighbors(d10.ASN) {
		switch nb.ASN {
		case d20.ASN:
			if nb.Rel != RelProvider {
				t.Errorf("AS10→AS20 = %v, want provider (p2c)", nb.Rel)
			}
		case d30.ASN:
			if nb.Rel != RelPeer {
				t.Errorf("AS10→AS30 = %v, want peer (p2p)", nb.Rel)
			}
		}
	}
	// c2p: 20 is the customer of 30, so 30 provides.
	for _, nb := range n.Neighbors(d30.ASN) {
		if nb.ASN == d20.ASN && nb.Rel != RelProvider {
			t.Errorf("AS30→AS20 = %v, want provider (from c2p)", nb.Rel)
		}
	}
}

func TestParseASRelationshipsErrors(t *testing.T) {
	cases := []struct {
		name, text string
	}{
		{"malformed", "1|2\n"},
		{"badASN", "x|2|0\n"},
		{"selfLoop", "7|7|0\n"},
		{"badRel", "1|2|9\n"},
		{"empty", "# only comments\n"},
	}
	for _, c := range cases {
		if _, err := ParseASRelationships(strings.NewReader(c.text), GenConfig{}); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestParseASRelationshipsDeterministic(t *testing.T) {
	a := loadSample(t, sampleASRel)
	b := loadSample(t, sampleASRel)
	if len(a.Inter) != len(b.Inter) {
		t.Fatal("same-seed loads differ in link count")
	}
	for i := range a.Inter {
		if a.Inter[i] != b.Inter[i] {
			t.Fatalf("same-seed loads differ at link %d: %v vs %v", i, a.Inter[i], b.Inter[i])
		}
	}
}

func TestParseASRelationshipsSerial2Columns(t *testing.T) {
	// serial-2 appends a source column; it must be ignored.
	n := loadSample(t, "5|6|-1|bgp\n6|7|0|mlp\n")
	if len(n.Inter) != 2 {
		t.Fatalf("inter links = %d, want 2", len(n.Inter))
	}
}
