package topology

import (
	"testing"

	"github.com/evolvable-net/evolve/internal/graph"
)

// buildPair returns a two-domain network: X (provider) — Z (customer),
// two routers each.
func buildPair(t *testing.T) (*Network, *Domain, *Domain) {
	t.Helper()
	b := NewBuilder()
	x := b.AddDomain("X")
	z := b.AddDomain("Z")
	xr := b.AddRouters(x, 2)
	zr := b.AddRouters(z, 2)
	b.IntraLink(xr[0], xr[1], 5)
	b.IntraLink(zr[0], zr[1], 5)
	b.Provide(xr[1], zr[0], 20)
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return n, x, z
}

func TestBuilderBasics(t *testing.T) {
	n, x, z := buildPair(t)
	if len(n.ASNs()) != 2 {
		t.Fatalf("ASNs = %v", n.ASNs())
	}
	if n.Domain(x.ASN).Name != "X" || n.DomainByName("Z").ASN != z.ASN {
		t.Error("domain lookup broken")
	}
	if n.DomainByName("nope") != nil {
		t.Error("missing domain should be nil")
	}
	if len(n.Routers) != 4 {
		t.Errorf("routers = %d", len(n.Routers))
	}
	// Border flags: xr[1] and zr[0] terminate the inter link.
	borders := n.BorderRouters(x.ASN)
	if len(borders) != 1 || n.Router(borders[0]).Name != "X-r1" {
		t.Errorf("X borders = %v", borders)
	}
}

func TestRouterAddressesUniqueAndInPrefix(t *testing.T) {
	n, _, _ := buildPair(t)
	seen := map[string]bool{}
	for _, r := range n.Routers {
		d := n.Domain(r.Domain)
		if !d.Prefix.Contains(r.Loopback) {
			t.Errorf("router %s loopback %s outside %s", r.Name, r.Loopback, d.Prefix)
		}
		s := r.Loopback.String()
		if seen[s] {
			t.Errorf("duplicate loopback %s", s)
		}
		seen[s] = true
	}
}

func TestNeighbors(t *testing.T) {
	n, x, z := buildPair(t)
	xn := n.Neighbors(x.ASN)
	if len(xn) != 1 || xn[0].ASN != z.ASN || xn[0].Rel != RelProvider {
		t.Fatalf("X neighbors = %+v", xn)
	}
	zn := n.Neighbors(z.ASN)
	if len(zn) != 1 || zn[0].ASN != x.ASN || zn[0].Rel != RelCustomer {
		t.Fatalf("Z neighbors = %+v", zn)
	}
	// Link orientation: From must be inside the subject domain.
	if n.DomainOf(zn[0].Links[0].From) != z.ASN {
		t.Error("neighbor link not reoriented")
	}
}

func TestRelInvert(t *testing.T) {
	if RelProvider.Invert() != RelCustomer || RelCustomer.Invert() != RelProvider || RelPeer.Invert() != RelPeer {
		t.Error("Invert wrong")
	}
	if RelProvider.String() != "provider" || RelCustomer.String() != "customer" || RelPeer.String() != "peer" {
		t.Error("String wrong")
	}
}

func TestIntraGraphStaysInsideDomain(t *testing.T) {
	n, x, z := buildPair(t)
	reach := n.Intra.BFS(int(x.Routers[0]))
	for _, rid := range z.Routers {
		if reach[rid] < graph.Inf {
			t.Error("intra graph leaks across domains")
		}
	}
}

func TestRouterGraphIncludesInterLinks(t *testing.T) {
	n, x, z := buildPair(t)
	g := n.RouterGraph()
	spt := g.Dijkstra(int(x.Routers[0]))
	// X-r0 →5→ X-r1 →20→ Z-r0 →5→ Z-r1
	if spt.Dist[z.Routers[1]] != 30 {
		t.Errorf("cross-domain dist = %d, want 30", spt.Dist[z.Routers[1]])
	}
}

func TestHosts(t *testing.T) {
	b := NewBuilder()
	x := b.AddDomain("X")
	rs := b.AddRouters(x, 1)
	h := b.AddHost(x, rs[0], "c", 3)
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if h.Addr == n.Router(rs[0]).Loopback {
		t.Error("host shares router address")
	}
	if !x.Prefix.Contains(h.Addr) {
		t.Error("host address outside domain prefix")
	}
	if got := n.FindHost(h.Addr); got == nil || got.ID != h.ID {
		t.Error("FindHost failed")
	}
	if n.FindHost(0) != nil {
		t.Error("FindHost on unknown address should be nil")
	}
	if got := n.RouterByLoopback(n.Router(rs[0]).Loopback); got == nil || got.ID != rs[0] {
		t.Error("RouterByLoopback failed")
	}
	if hs := n.HostsIn(x.ASN); len(hs) != 1 || hs[0].Name != "c" {
		t.Errorf("HostsIn = %v", hs)
	}
}

func TestBuilderRejectsCrossDomainIntraLink(t *testing.T) {
	b := NewBuilder()
	x := b.AddDomain("X")
	z := b.AddDomain("Z")
	xr := b.AddRouter(x, "")
	zr := b.AddRouter(z, "")
	b.IntraLink(xr, zr, 1)
	if _, err := b.Build(); err == nil {
		t.Error("cross-domain intra link accepted")
	}
}

func TestBuilderRejectsIntraDomainInterLink(t *testing.T) {
	b := NewBuilder()
	x := b.AddDomain("X")
	rs := b.AddRouters(x, 2)
	b.IntraLink(rs[0], rs[1], 1)
	b.Peer(rs[0], rs[1], 1)
	if _, err := b.Build(); err == nil {
		t.Error("intra-domain inter link accepted")
	}
}

func TestBuilderRejectsPartitionedDomain(t *testing.T) {
	b := NewBuilder()
	x := b.AddDomain("X")
	b.AddRouters(x, 2) // no intra link between them
	if _, err := b.Build(); err == nil {
		t.Error("partitioned domain accepted")
	}
}

func TestBuilderRejectsEmpty(t *testing.T) {
	if _, err := NewBuilder().Build(); err == nil {
		t.Error("empty network accepted")
	}
	b := NewBuilder()
	b.AddDomain("X")
	if _, err := b.Build(); err == nil {
		t.Error("routerless domain accepted")
	}
}

func TestDomainPrefixesDisjoint(t *testing.T) {
	for a := ASN(1); a <= 50; a++ {
		for b := a + 1; b <= 50; b++ {
			if DomainPrefix(a).Overlaps(DomainPrefix(b)) {
				t.Fatalf("prefixes of AS%d and AS%d overlap", a, b)
			}
		}
	}
}

func checkGenerated(t *testing.T, n *Network, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
	// Whole-internet connectivity at the router level.
	if !n.RouterGraph().Connected() {
		t.Error("generated internet not connected")
	}
	// Every inter link terminates at border routers of distinct domains.
	for _, l := range n.Inter {
		if n.DomainOf(l.From) == n.DomainOf(l.To) {
			t.Error("inter link inside a domain")
		}
		if !n.Router(l.From).Border || !n.Router(l.To).Border {
			t.Error("inter link endpoint not marked border")
		}
	}
}

func TestRingOfDomains(t *testing.T) {
	for _, style := range []IntraStyle{IntraRing, IntraStar, IntraGrid, IntraRandom} {
		n, err := RingOfDomains(5, GenConfig{Seed: 7, RoutersPerDomain: 5, HostsPerDomain: 2, Intra: style})
		checkGenerated(t, n, err)
		if len(n.ASNs()) != 5 {
			t.Errorf("style %d: domains = %d", style, len(n.ASNs()))
		}
		if len(n.Inter) != 5 {
			t.Errorf("style %d: inter links = %d, want 5", style, len(n.Inter))
		}
		if len(n.Hosts) != 10 {
			t.Errorf("style %d: hosts = %d", style, len(n.Hosts))
		}
	}
	if _, err := RingOfDomains(1, GenConfig{}); err == nil {
		t.Error("ring of 1 accepted")
	}
}

func TestTransitStub(t *testing.T) {
	n, err := TransitStub(3, 4, 0.5, GenConfig{Seed: 11, RoutersPerDomain: 3, HostsPerDomain: 1})
	checkGenerated(t, n, err)
	if len(n.ASNs()) != 3+12 {
		t.Errorf("domains = %d", len(n.ASNs()))
	}
	// Stubs must not provide transit: every stub is a customer on all its
	// inter-domain links.
	for _, asn := range n.ASNs() {
		d := n.Domain(asn)
		if d.Name[0] != 'S' {
			continue
		}
		for _, nb := range n.Neighbors(asn) {
			if nb.Rel != RelCustomer {
				t.Errorf("stub %s has non-customer relationship %s", d.Name, nb.Rel)
			}
		}
	}
	if _, err := TransitStub(0, 1, 0, GenConfig{}); err == nil {
		t.Error("zero transits accepted")
	}
}

func TestWaxman(t *testing.T) {
	n, err := Waxman(12, 0.6, 0.4, GenConfig{Seed: 3, RoutersPerDomain: 2})
	checkGenerated(t, n, err)
	if len(n.ASNs()) != 12 {
		t.Errorf("domains = %d", len(n.ASNs()))
	}
	if _, err := Waxman(1, 0.5, 0.5, GenConfig{}); err == nil {
		t.Error("waxman of 1 accepted")
	}
}

func TestBarabasiAlbert(t *testing.T) {
	n, err := BarabasiAlbert(15, 2, GenConfig{Seed: 5, RoutersPerDomain: 2})
	checkGenerated(t, n, err)
	if len(n.ASNs()) != 15 {
		t.Errorf("domains = %d", len(n.ASNs()))
	}
	// The first domain should have accumulated high degree (hub).
	first := n.ASNs()[0]
	if len(n.Neighbors(first)) < 2 {
		t.Errorf("hub degree = %d", len(n.Neighbors(first)))
	}
	if _, err := BarabasiAlbert(1, 1, GenConfig{}); err == nil {
		t.Error("BA of 1 accepted")
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	a, err1 := TransitStub(2, 3, 0.3, GenConfig{Seed: 42, HostsPerDomain: 1})
	b, err2 := TransitStub(2, 3, 0.3, GenConfig{Seed: 42, HostsPerDomain: 1})
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if len(a.Inter) != len(b.Inter) {
		t.Fatal("different inter-link counts for same seed")
	}
	for i := range a.Inter {
		if a.Inter[i] != b.Inter[i] {
			t.Fatalf("inter link %d differs: %+v vs %+v", i, a.Inter[i], b.Inter[i])
		}
	}
	for i := range a.Hosts {
		if a.Hosts[i].Addr != b.Hosts[i].Addr || a.Hosts[i].Attach != b.Hosts[i].Attach {
			t.Fatalf("host %d differs", i)
		}
	}
}

func TestWaxmanAndBADeterministic(t *testing.T) {
	// Every generator draws randomness only from cfg.Seed: equal seeds
	// must reproduce the topology exactly; a different seed must be free
	// to wire the internet differently.
	interLinks := func(n *Network) []InterLink { return n.Inter }

	w1, err1 := Waxman(8, 0.6, 0.4, GenConfig{Seed: 7, HostsPerDomain: 1})
	w2, err2 := Waxman(8, 0.6, 0.4, GenConfig{Seed: 7, HostsPerDomain: 1})
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if len(interLinks(w1)) != len(interLinks(w2)) {
		t.Fatal("waxman: same seed, different link counts")
	}
	for i := range w1.Inter {
		if w1.Inter[i] != w2.Inter[i] {
			t.Fatalf("waxman: inter link %d differs", i)
		}
	}

	b1, err1 := BarabasiAlbert(10, 2, GenConfig{Seed: 7, HostsPerDomain: 1})
	b2, err2 := BarabasiAlbert(10, 2, GenConfig{Seed: 7, HostsPerDomain: 1})
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if len(b1.Inter) != len(b2.Inter) {
		t.Fatal("ba: same seed, different link counts")
	}
	for i := range b1.Inter {
		if b1.Inter[i] != b2.Inter[i] {
			t.Fatalf("ba: inter link %d differs", i)
		}
	}
}
