package topology

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// IntraStyle selects the shape of a generated domain's internal router
// graph.
type IntraStyle int

const (
	// IntraRing arranges routers in a cycle.
	IntraRing IntraStyle = iota
	// IntraStar connects all routers to router 0.
	IntraStar
	// IntraGrid arranges routers in a near-square mesh.
	IntraGrid
	// IntraRandom adds a spanning chain plus random extra links.
	IntraRandom
)

// GenConfig parameterises the synthetic generators.
type GenConfig struct {
	Seed             int64
	RoutersPerDomain int
	HostsPerDomain   int
	Intra            IntraStyle
	// MinIntraLatency/MaxIntraLatency bound intra-domain link costs.
	MinIntraLatency, MaxIntraLatency int64
	// MinInterLatency/MaxInterLatency bound inter-domain link costs.
	MinInterLatency, MaxInterLatency int64
}

// Defaults fills in zero fields with sensible values and returns the
// config.
func (c GenConfig) Defaults() GenConfig {
	if c.RoutersPerDomain <= 0 {
		c.RoutersPerDomain = 4
	}
	if c.HostsPerDomain < 0 {
		c.HostsPerDomain = 0
	}
	if c.MinIntraLatency <= 0 {
		c.MinIntraLatency = 1
	}
	if c.MaxIntraLatency < c.MinIntraLatency {
		c.MaxIntraLatency = c.MinIntraLatency + 9
	}
	if c.MinInterLatency <= 0 {
		c.MinInterLatency = 10
	}
	if c.MaxInterLatency < c.MinInterLatency {
		c.MaxInterLatency = c.MinInterLatency + 40
	}
	return c
}

func (c GenConfig) intraLatency(rng *rand.Rand) int64 {
	return c.MinIntraLatency + rng.Int63n(c.MaxIntraLatency-c.MinIntraLatency+1)
}

func (c GenConfig) interLatency(rng *rand.Rand) int64 {
	return c.MinInterLatency + rng.Int63n(c.MaxInterLatency-c.MinInterLatency+1)
}

// populateDomain creates the routers and hosts of one generated domain and
// wires its internal topology.
func populateDomain(b *Builder, d *Domain, cfg GenConfig, rng *rand.Rand) []RouterID {
	rs := b.AddRouters(d, cfg.RoutersPerDomain)
	n := len(rs)
	switch cfg.Intra {
	case IntraRing:
		// Chain plus a closing edge. The closing edge only exists for
		// n > 2: with two routers it would duplicate the chain edge.
		// Latencies are drawn in the same order as the old full loop
		// (edge (i, i+1) at step i, closing edge last), so generated
		// topologies with n > 2 are unchanged seed-for-seed.
		for i := 0; i+1 < n; i++ {
			b.IntraLink(rs[i], rs[i+1], cfg.intraLatency(rng))
		}
		if n > 2 {
			b.IntraLink(rs[n-1], rs[0], cfg.intraLatency(rng))
		}
	case IntraStar:
		for i := 1; i < n; i++ {
			b.IntraLink(rs[0], rs[i], cfg.intraLatency(rng))
		}
	case IntraGrid:
		w := int(math.Ceil(math.Sqrt(float64(n))))
		for i := 0; i < n; i++ {
			if (i+1)%w != 0 && i+1 < n {
				b.IntraLink(rs[i], rs[i+1], cfg.intraLatency(rng))
			}
			if i+w < n {
				b.IntraLink(rs[i], rs[i+w], cfg.intraLatency(rng))
			}
		}
		// A w-wide grid can strand the tail row's first cell when n is not
		// a multiple of w and the row has a single element; guarantee
		// connectivity with a chain fallback.
		for i := 0; i+1 < n; i++ {
			if i%w == 0 && !b.net.Intra.HasEdge(int(rs[i]), int(rs[i+1])) && i+w >= n {
				b.IntraLink(rs[i], rs[i+1], cfg.intraLatency(rng))
			}
		}
	case IntraRandom:
		for i := 0; i+1 < n; i++ {
			b.IntraLink(rs[i], rs[i+1], cfg.intraLatency(rng))
		}
		extra := n / 2
		for i := 0; i < extra; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				b.IntraLink(rs[u], rs[v], cfg.intraLatency(rng))
			}
		}
	}
	for i := 0; i < cfg.HostsPerDomain; i++ {
		attach := rs[rng.Intn(n)]
		b.AddHost(d, attach, "", cfg.intraLatency(rng))
	}
	return rs
}

// pickBorder selects a deterministic-but-spread border router for the i-th
// inter-domain link of a domain.
func pickBorder(rs []RouterID, i int) RouterID {
	return rs[i%len(rs)]
}

// RingOfDomains generates k domains peered in a ring — the shape of the
// paper's Figure 1 world, where deployment spreads around the ring.
func RingOfDomains(k int, cfg GenConfig) (*Network, error) {
	if k < 2 {
		return nil, fmt.Errorf("topology: ring needs at least 2 domains")
	}
	cfg = cfg.Defaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	b := NewBuilder()
	routers := make([][]RouterID, k)
	for i := 0; i < k; i++ {
		d := b.AddDomain(fmt.Sprintf("D%d", i))
		routers[i] = populateDomain(b, d, cfg, rng)
	}
	for i := 0; i < k; i++ {
		j := (i + 1) % k
		b.Peer(pickBorder(routers[i], 0), pickBorder(routers[j], 1), cfg.interLatency(rng))
	}
	return b.Build()
}

// TransitStub generates the classic two-tier internet: nTransit transit
// providers in a full peering mesh, each with stubsPerTransit customer
// stub domains (some multihomed to a second transit).
func TransitStub(nTransit, stubsPerTransit int, multihomeFrac float64, cfg GenConfig) (*Network, error) {
	if nTransit < 1 || stubsPerTransit < 1 {
		return nil, fmt.Errorf("topology: transit-stub needs at least one transit and one stub")
	}
	cfg = cfg.Defaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	b := NewBuilder()

	transits := make([][]RouterID, nTransit)
	for i := 0; i < nTransit; i++ {
		d := b.AddDomain(fmt.Sprintf("T%d", i))
		transits[i] = populateDomain(b, d, cfg, rng)
	}
	// Full mesh of peering among transits.
	link := 0
	for i := 0; i < nTransit; i++ {
		for j := i + 1; j < nTransit; j++ {
			b.Peer(pickBorder(transits[i], link), pickBorder(transits[j], link+1), cfg.interLatency(rng))
			link++
		}
	}
	for i := 0; i < nTransit; i++ {
		for s := 0; s < stubsPerTransit; s++ {
			d := b.AddDomain(fmt.Sprintf("S%d.%d", i, s))
			rs := populateDomain(b, d, cfg, rng)
			b.Provide(pickBorder(transits[i], s), pickBorder(rs, 0), cfg.interLatency(rng))
			if nTransit > 1 && rng.Float64() < multihomeFrac {
				other := rng.Intn(nTransit - 1)
				if other >= i {
					other++
				}
				b.Provide(pickBorder(transits[other], s+1), pickBorder(rs, 1), cfg.interLatency(rng))
			}
		}
	}
	return b.Build()
}

// Waxman generates a random geometric AS-level graph: domains are placed
// in the unit square and linked with probability alpha·exp(−d/(beta·L)).
// Relationships are assigned by degree: the higher-degree endpoint becomes
// the provider, equal degrees peer.
func Waxman(nDomains int, alpha, beta float64, cfg GenConfig) (*Network, error) {
	if nDomains < 2 {
		return nil, fmt.Errorf("topology: waxman needs at least 2 domains")
	}
	cfg = cfg.Defaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	b := NewBuilder()

	type pt struct{ x, y float64 }
	pts := make([]pt, nDomains)
	routers := make([][]RouterID, nDomains)
	for i := range pts {
		pts[i] = pt{rng.Float64(), rng.Float64()}
		d := b.AddDomain(fmt.Sprintf("W%d", i))
		routers[i] = populateDomain(b, d, cfg, rng)
	}
	const maxDist = math.Sqrt2
	type cand struct{ i, j int }
	var edges []cand
	deg := make([]int, nDomains)
	present := make(map[[2]int]bool)
	for i := 0; i < nDomains; i++ {
		for j := i + 1; j < nDomains; j++ {
			dx, dy := pts[i].x-pts[j].x, pts[i].y-pts[j].y
			dist := math.Hypot(dx, dy)
			if rng.Float64() < alpha*math.Exp(-dist/(beta*maxDist)) {
				edges = append(edges, cand{i, j})
				present[[2]int{i, j}] = true
				deg[i]++
				deg[j]++
			}
		}
	}
	// Guarantee connectivity with a chain. The set lookup replaces an
	// O(n·E) rescan of the edge list per chain segment, which dominated
	// generation time at 10k+ domains; it draws no randomness, so output
	// is unchanged seed-for-seed. Candidates are stored with i < j, so
	// only the (i, i+1) orientation can exist.
	for i := 0; i+1 < nDomains; i++ {
		if !present[[2]int{i, i + 1}] {
			edges = append(edges, cand{i, i + 1})
			deg[i]++
			deg[i+1]++
		}
	}
	for li, e := range edges {
		a := pickBorder(routers[e.i], li)
		c := pickBorder(routers[e.j], li+1)
		switch {
		case deg[e.i] > deg[e.j]:
			b.Provide(a, c, cfg.interLatency(rng))
		case deg[e.j] > deg[e.i]:
			b.Provide(c, a, cfg.interLatency(rng))
		default:
			b.Peer(a, c, cfg.interLatency(rng))
		}
	}
	return b.Build()
}

// BarabasiAlbert generates a preferential-attachment AS graph: each new
// domain attaches as a customer to m existing domains chosen with
// probability proportional to degree, yielding the heavy-tailed provider
// hierarchy observed in the real AS graph.
func BarabasiAlbert(nDomains, m int, cfg GenConfig) (*Network, error) {
	if nDomains < 2 || m < 1 {
		return nil, fmt.Errorf("topology: barabasi-albert needs n ≥ 2, m ≥ 1")
	}
	cfg = cfg.Defaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	b := NewBuilder()

	routers := make([][]RouterID, 0, nDomains)
	deg := make([]int, 0, nDomains)
	var attachBag []int // node repeated deg times, for preferential choice

	addDomain := func(i int) {
		d := b.AddDomain(fmt.Sprintf("B%d", i))
		routers = append(routers, populateDomain(b, d, cfg, rng))
		deg = append(deg, 0)
	}

	addDomain(0)
	linkIdx := 0
	for i := 1; i < nDomains; i++ {
		addDomain(i)
		targets := map[int]bool{}
		want := m
		if want > i {
			want = i
		}
		for len(targets) < want {
			var t int
			if len(attachBag) == 0 {
				t = rng.Intn(i)
			} else {
				t = attachBag[rng.Intn(len(attachBag))]
			}
			if t != i {
				targets[t] = true
			}
		}
		ordered := make([]int, 0, len(targets))
		for t := range targets {
			ordered = append(ordered, t)
		}
		sort.Ints(ordered)
		for _, t := range ordered {
			// Existing (higher-degree) domain provides transit to newcomer.
			b.Provide(pickBorder(routers[t], linkIdx), pickBorder(routers[i], linkIdx+1), cfg.interLatency(rng))
			linkIdx++
			deg[t]++
			deg[i]++
			attachBag = append(attachBag, t, i)
		}
	}
	return b.Build()
}
