package topology

import (
	"math/rand"
	"testing"
)

// TestIntraRingEdgeCounts pins the edge count of generated ring domains:
// exactly one edge per ring segment, so a 2-router domain gets a single
// link instead of the parallel pair the old loop double-added.
func TestIntraRingEdgeCounts(t *testing.T) {
	for n := 1; n <= 6; n++ {
		b := NewBuilder()
		d := b.AddDomain("D")
		cfg := GenConfig{RoutersPerDomain: n, Intra: IntraRing}.Defaults()
		populateDomain(b, d, cfg, rand.New(rand.NewSource(1)))
		net, err := b.Build()
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		want := n // one edge per ring segment
		switch n {
		case 1:
			want = 0
		case 2:
			want = 1 // chain only: the closing edge would be a parallel duplicate
		}
		if got := net.Intra.EdgeCount() / 2; got != want {
			t.Errorf("n=%d routers: %d intra edges, want %d", n, got, want)
		}
	}
}

// waxmanGolden pins Waxman inter-link output captured before the
// connectivity-chain scan was replaced by a set lookup; the replacement
// draws no randomness, so same-seed output must be bit-identical.
var waxmanGolden = []struct {
	n           int
	alpha, beta float64
	seed        int64
	links       [][4]int64 // from, to, rel, latency
}{
	{12, 0.6, 0.4, 3, [][4]int64{
		{10, 0, 0, 45},
		{29, 1, 0, 40},
		{5, 12, 2, 46},
		{3, 25, 0, 25},
		{4, 29, 2, 16},
		{5, 30, 0, 20},
		{28, 6, 0, 10},
		{10, 17, 0, 42},
		{14, 18, 0, 45},
		{12, 22, 0, 12},
		{13, 35, 0, 13},
		{18, 17, 0, 25},
		{18, 22, 0, 24},
		{29, 19, 0, 15},
		{20, 30, 0, 44},
		{21, 34, 2, 24},
		{25, 35, 2, 29},
		{29, 30, 0, 42},
		{30, 34, 2, 26},
		{5, 1, 0, 35},
		{5, 6, 0, 38},
		{10, 6, 0, 42},
		{14, 10, 0, 43},
		{14, 15, 0, 36},
		{21, 25, 2, 43},
		{29, 25, 0, 32},
	}},
	{8, 0.6, 0.4, 7, [][4]int64{
		{13, 0, 0, 44},
		{20, 1, 0, 14},
		{6, 5, 0, 10},
		{19, 3, 0, 21},
		{7, 11, 0, 40},
		{8, 12, 2, 35},
		{6, 22, 0, 28},
		{14, 10, 0, 26},
		{14, 15, 0, 50},
		{19, 15, 0, 35},
		{1, 5, 2, 14},
		{20, 21, 0, 24},
	}},
	{30, 0.5, 0.3, 11, [][4]int64{
		{34, 0, 0, 27},
		{53, 1, 0, 41},
		{81, 2, 0, 22},
		{3, 13, 2, 10},
		{4, 38, 2, 19},
		{5, 39, 0, 24},
		{55, 3, 0, 25},
		{7, 17, 0, 30},
		{8, 21, 0, 11},
		{6, 28, 0, 29},
		{7, 35, 0, 36},
		{8, 42, 0, 31},
		{6, 46, 0, 18},
		{7, 56, 0, 28},
		{8, 57, 0, 46},
		{6, 61, 0, 23},
		{7, 65, 0, 19},
		{8, 72, 0, 38},
		{16, 9, 0, 20},
		{10, 26, 0, 42},
		{11, 30, 0, 24},
		{58, 9, 0, 43},
		{10, 68, 2, 29},
		{15, 14, 0, 29},
		{34, 12, 0, 35},
		{13, 77, 0, 22},
		{14, 78, 0, 11},
		{15, 34, 0, 36},
		{16, 50, 0, 23},
		{17, 54, 2, 26},
		{15, 58, 0, 12},
		{16, 68, 0, 24},
		{17, 75, 0, 27},
		{49, 18, 0, 50},
		{53, 19, 0, 13},
		{57, 20, 0, 49},
		{21, 34, 2, 45},
		{22, 53, 2, 24},
		{57, 23, 0, 45},
		{21, 67, 2, 35},
		{25, 29, 2, 26},
		{26, 39, 2, 32},
		{58, 24, 0, 37},
		{44, 28, 0, 49},
		{60, 29, 0, 21},
		{67, 30, 0, 40},
		{31, 86, 0, 26},
		{38, 48, 2, 48},
		{61, 36, 0, 47},
		{37, 89, 0, 34},
		{72, 41, 0, 22},
		{42, 46, 2, 27},
		{56, 43, 0, 18},
		{44, 72, 2, 41},
		{42, 76, 0, 49},
		{43, 89, 0, 41},
		{54, 47, 0, 16},
		{61, 45, 0, 10},
		{46, 74, 2, 32},
		{47, 81, 0, 14},
		{45, 88, 0, 38},
		{49, 89, 0, 41},
		{53, 69, 0, 50},
		{51, 82, 0, 37},
		{55, 80, 0, 47},
		{56, 81, 0, 42},
		{54, 85, 0, 48},
		{61, 71, 0, 12},
		{62, 72, 0, 27},
		{60, 79, 0, 32},
		{74, 67, 0, 27},
		{81, 80, 0, 41},
		{4, 0, 0, 28},
		{8, 4, 0, 38},
		{8, 9, 0, 12},
		{9, 13, 0, 32},
		{16, 20, 0, 21},
		{21, 20, 0, 12},
		{21, 25, 0, 33},
		{28, 32, 2, 11},
		{33, 32, 0, 50},
		{33, 37, 0, 23},
		{37, 41, 0, 12},
		{42, 41, 0, 43},
		{45, 49, 0, 46},
		{53, 49, 0, 29},
		{54, 53, 0, 31},
		{54, 58, 0, 12},
		{62, 58, 0, 32},
		{62, 63, 0, 45},
		{67, 63, 0, 25},
		{67, 71, 0, 22},
		{72, 71, 0, 45},
		{72, 76, 0, 26},
		{76, 80, 2, 42},
		{83, 84, 0, 16},
		{88, 84, 0, 45},
	}},
}

func TestWaxmanSameSeedGolden(t *testing.T) {
	for _, g := range waxmanGolden {
		net, err := Waxman(g.n, g.alpha, g.beta, GenConfig{Seed: g.seed, RoutersPerDomain: 3, HostsPerDomain: 1})
		if err != nil {
			t.Fatalf("n=%d seed=%d: %v", g.n, g.seed, err)
		}
		if len(net.Inter) != len(g.links) {
			t.Fatalf("n=%d seed=%d: %d inter links, golden %d", g.n, g.seed, len(net.Inter), len(g.links))
		}
		for i, l := range net.Inter {
			got := [4]int64{int64(l.From), int64(l.To), int64(l.Rel), l.Latency}
			if got != g.links[i] {
				t.Errorf("n=%d seed=%d link %d: got %v, golden %v", g.n, g.seed, i, got, g.links[i])
			}
		}
	}
}
