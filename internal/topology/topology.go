// Package topology models the multi-provider internet the paper's
// mechanisms run over: ISP domains (ASes) containing intra-domain router
// graphs, inter-domain links annotated with Gao-Rexford business
// relationships, and endhosts attached to access routers. It provides both
// hand-built scenario topologies (for the paper's figures) and synthetic
// generators (transit-stub, Waxman, Barabási–Albert) for the quantitative
// sweeps.
package topology

import (
	"fmt"
	"sort"
	"sync"

	"github.com/evolvable-net/evolve/internal/addr"
	"github.com/evolvable-net/evolve/internal/graph"
)

// RouterID identifies a router globally across all domains.
type RouterID int

// HostID identifies an endhost globally.
type HostID int

// ASN identifies a domain (ISP / autonomous system).
type ASN int

// Rel is the business relationship of one domain toward a neighbour,
// following the Gao-Rexford model that constrains BGP export policy.
type Rel int

const (
	// RelProvider: this domain is the provider of the neighbour (the
	// neighbour is its customer, and pays it for transit).
	RelProvider Rel = iota
	// RelCustomer: this domain is the customer of the neighbour.
	RelCustomer
	// RelPeer: settlement-free peering.
	RelPeer
)

// Invert returns the relationship as seen from the other end of the link.
func (r Rel) Invert() Rel {
	switch r {
	case RelProvider:
		return RelCustomer
	case RelCustomer:
		return RelProvider
	default:
		return RelPeer
	}
}

func (r Rel) String() string {
	switch r {
	case RelProvider:
		return "provider"
	case RelCustomer:
		return "customer"
	default:
		return "peer"
	}
}

// Router is a single router. Routers are owned by exactly one domain.
type Router struct {
	ID       RouterID
	Domain   ASN
	Loopback addr.V4
	// Border is set once the router terminates an inter-domain link.
	Border bool
	// Name is a human-readable label for scenario topologies ("X1").
	Name string
}

// Host is an endhost attached to an access router of its domain.
type Host struct {
	ID     HostID
	Domain ASN
	Attach RouterID
	Addr   addr.V4
	// AccessLatency is the host↔access-router link cost.
	AccessLatency int64
	Name          string
}

// Domain is an ISP: a set of routers, an owned address aggregate, and a
// human-readable name.
type Domain struct {
	ASN     ASN
	Name    string
	Prefix  addr.Prefix
	Routers []RouterID

	pool *addr.Pool
}

// InterLink is an inter-domain (border-to-border) link. Rel is the
// relationship of From's domain toward To's domain.
type InterLink struct {
	From, To RouterID
	Rel      Rel
	Latency  int64
}

// Network is the assembled internet.
type Network struct {
	Domains map[ASN]*Domain
	Routers []*Router // indexed by RouterID
	Hosts   []*Host   // indexed by HostID

	// Intra holds only intra-domain links (node = RouterID); a traversal
	// starting inside a domain stays inside it.
	Intra *graph.Graph
	// Inter holds the inter-domain links.
	Inter []InterLink

	asns []ASN // sorted, for deterministic iteration

	// Lazy O(1) lookup indexes over the (immutable after Build) node
	// sets. Built on first use so construction pays nothing; a million
	// FindHost calls on the delivery path pay a map probe, not a fleet
	// scan. Link-state mutators (Fail/Restore*) never touch nodes, so
	// the indexes stay valid for the network's lifetime.
	indexOnce     sync.Once
	hostByAddr    map[addr.V4]*Host
	routerByLoop  map[addr.V4]*Router
	hostsByDomain map[ASN][]*Host
}

// buildIndexes populates the lazy node indexes exactly once.
func (n *Network) buildIndexes() {
	n.indexOnce.Do(func() {
		n.hostByAddr = make(map[addr.V4]*Host, len(n.Hosts))
		n.hostsByDomain = make(map[ASN][]*Host)
		for _, h := range n.Hosts {
			n.hostByAddr[h.Addr] = h
			n.hostsByDomain[h.Domain] = append(n.hostsByDomain[h.Domain], h)
		}
		n.routerByLoop = make(map[addr.V4]*Router, len(n.Routers))
		for _, r := range n.Routers {
			n.routerByLoop[r.Loopback] = r
		}
	})
}

// ASNs returns the domain numbers in ascending order.
func (n *Network) ASNs() []ASN { return n.asns }

// Domain returns the domain for asn, or nil.
func (n *Network) Domain(asn ASN) *Domain { return n.Domains[asn] }

// DomainByName finds a domain by its scenario name, or nil.
func (n *Network) DomainByName(name string) *Domain {
	for _, asn := range n.asns {
		if d := n.Domains[asn]; d.Name == name {
			return d
		}
	}
	return nil
}

// Router returns the router with the given id.
func (n *Network) Router(id RouterID) *Router { return n.Routers[id] }

// DomainOf returns the owning domain of a router.
func (n *Network) DomainOf(id RouterID) ASN { return n.Routers[id].Domain }

// BorderRouters lists a domain's border routers in id order.
func (n *Network) BorderRouters(asn ASN) []RouterID {
	var out []RouterID
	for _, rid := range n.Domains[asn].Routers {
		if n.Routers[rid].Border {
			out = append(out, rid)
		}
	}
	return out
}

// ASNeighbor summarises all links between one domain and one neighbour.
type ASNeighbor struct {
	ASN   ASN
	Rel   Rel // relationship of the subject domain toward ASN
	Links []InterLink
}

// Neighbors returns a domain's inter-domain adjacency, sorted by ASN. Each
// entry's links are oriented with From inside the subject domain.
func (n *Network) Neighbors(asn ASN) []ASNeighbor {
	byASN := map[ASN]*ASNeighbor{}
	add := func(other ASN, rel Rel, l InterLink) {
		nb := byASN[other]
		if nb == nil {
			nb = &ASNeighbor{ASN: other, Rel: rel}
			byASN[other] = nb
		}
		nb.Links = append(nb.Links, l)
	}
	for _, l := range n.Inter {
		fd, td := n.DomainOf(l.From), n.DomainOf(l.To)
		switch {
		case fd == asn:
			add(td, l.Rel, l)
		case td == asn:
			add(fd, l.Rel.Invert(), InterLink{From: l.To, To: l.From, Rel: l.Rel.Invert(), Latency: l.Latency})
		}
	}
	out := make([]ASNeighbor, 0, len(byASN))
	for _, nb := range byASN {
		out = append(out, *nb)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ASN < out[j].ASN })
	return out
}

// AllNeighbors returns every domain's inter-domain adjacency in one pass
// over the link list. The per-domain slices are identical to what
// Neighbors returns for that ASN; domains with no inter-domain links are
// absent from the map. Callers that need adjacency for many domains
// (BGP bring-up at 10k ASes) should use this instead of calling
// Neighbors per domain, which rescans the whole link list each time.
func (n *Network) AllNeighbors() map[ASN][]ASNeighbor {
	byDomain := map[ASN]map[ASN]*ASNeighbor{}
	add := func(subject, other ASN, rel Rel, l InterLink) {
		m := byDomain[subject]
		if m == nil {
			m = map[ASN]*ASNeighbor{}
			byDomain[subject] = m
		}
		nb := m[other]
		if nb == nil {
			nb = &ASNeighbor{ASN: other, Rel: rel}
			m[other] = nb
		}
		nb.Links = append(nb.Links, l)
	}
	for _, l := range n.Inter {
		fd, td := n.DomainOf(l.From), n.DomainOf(l.To)
		add(fd, td, l.Rel, l)
		add(td, fd, l.Rel.Invert(), InterLink{From: l.To, To: l.From, Rel: l.Rel.Invert(), Latency: l.Latency})
	}
	out := make(map[ASN][]ASNeighbor, len(byDomain))
	for asn, m := range byDomain {
		nbs := make([]ASNeighbor, 0, len(m))
		for _, nb := range m {
			nbs = append(nbs, *nb)
		}
		sort.Slice(nbs, func(i, j int) bool { return nbs[i].ASN < nbs[j].ASN })
		out[asn] = nbs
	}
	return out
}

// RouterGraph returns the full router-level graph (intra + inter links),
// used for ground-truth path costs.
func (n *Network) RouterGraph() *graph.Graph {
	g := n.Intra.Clone()
	g.EnsureNode(len(n.Routers) - 1)
	for _, l := range n.Inter {
		g.AddBiEdge(int(l.From), int(l.To), l.Latency)
	}
	return g
}

// HostsIn lists a domain's hosts in id order. The returned slice is
// shared with the network's index; callers must not modify it.
func (n *Network) HostsIn(asn ASN) []*Host {
	n.buildIndexes()
	return n.hostsByDomain[asn]
}

// FindHost returns the host owning the given underlay address, or nil.
// O(1) after the first call builds the index.
func (n *Network) FindHost(a addr.V4) *Host {
	n.buildIndexes()
	return n.hostByAddr[a]
}

// RouterByLoopback returns the router owning the given loopback address,
// or nil. O(1) after the first call builds the index.
func (n *Network) RouterByLoopback(a addr.V4) *Router {
	n.buildIndexes()
	return n.routerByLoop[a]
}

// FailIntraLink removes the intra-domain link a–b (both directions). It
// reports whether any link existed. Callers holding cached views
// (underlay.View, bgp.System) must invalidate/refresh them afterwards.
func (n *Network) FailIntraLink(a, b RouterID) bool {
	return n.Intra.RemoveBiEdge(int(a), int(b))
}

// RestoreIntraLink re-adds an intra-domain link with the given latency.
func (n *Network) RestoreIntraLink(a, b RouterID, latency int64) {
	if latency <= 0 {
		latency = 1
	}
	n.Intra.AddBiEdge(int(a), int(b), latency)
}

// FailInterLink removes the inter-domain link between border routers a
// and b (either orientation) and returns it for later restoration.
func (n *Network) FailInterLink(a, b RouterID) (InterLink, bool) {
	for i, l := range n.Inter {
		if (l.From == a && l.To == b) || (l.From == b && l.To == a) {
			n.Inter = append(n.Inter[:i], n.Inter[i+1:]...)
			return l, true
		}
	}
	return InterLink{}, false
}

// RestoreInterLink re-adds a previously failed inter-domain link.
func (n *Network) RestoreInterLink(l InterLink) {
	n.Inter = append(n.Inter, l)
}

// Builder assembles a Network. Use NewBuilder, add domains, routers, links
// and hosts, then call Build. Builders are not safe for concurrent use.
type Builder struct {
	net     *Network
	nextASN ASN
	err     error
}

// NewBuilder returns an empty builder.
func NewBuilder() *Builder {
	return &Builder{
		net: &Network{
			Domains: map[ASN]*Domain{},
			Intra:   graph.New(0),
		},
		nextASN: 1,
	}
}

// DomainPrefix is the aggregate owned by a domain: the ASN occupies the
// top 16 bits, giving each domain a /16.
func DomainPrefix(asn ASN) addr.Prefix {
	return addr.MakePrefix(addr.V4(uint32(asn)<<16), 16)
}

// MaxDomains is the addressing ceiling: DomainPrefix packs the ASN into
// the top 16 bits of the underlay space, so at most 0xFFFE domains fit
// (ASN 0 is reserved, 0xFFFF would collide with the broadcast-style top).
const MaxDomains = 0xFFFE

// AddDomain creates a new domain with an automatically assigned ASN and
// address aggregate.
func (b *Builder) AddDomain(name string) *Domain {
	if int(b.nextASN) > MaxDomains {
		b.fail(fmt.Errorf("topology: domain %q exceeds the %d-domain addressing ceiling (/16 per domain)", name, MaxDomains))
		// Return a detached placeholder so callers can keep building;
		// Build reports the recorded error.
		d := &Domain{ASN: b.nextASN, Name: name, Prefix: DomainPrefix(1)}
		d.pool = addr.NewPool(d.Prefix)
		return d
	}
	asn := b.nextASN
	b.nextASN++
	d := &Domain{
		ASN:    asn,
		Name:   name,
		Prefix: DomainPrefix(asn),
	}
	d.pool = addr.NewPool(d.Prefix)
	b.net.Domains[asn] = d
	b.net.asns = append(b.net.asns, asn)
	return d
}

// AddRouter creates a router inside d. The name may be empty.
func (b *Builder) AddRouter(d *Domain, name string) RouterID {
	id := RouterID(len(b.net.Routers))
	lo, err := d.pool.Next()
	if err != nil {
		b.fail(fmt.Errorf("topology: domain %s out of addresses: %w", d.Name, err))
		lo = 0
	}
	if name == "" {
		name = fmt.Sprintf("%s-r%d", d.Name, len(d.Routers))
	}
	r := &Router{ID: id, Domain: d.ASN, Loopback: lo, Name: name}
	b.net.Routers = append(b.net.Routers, r)
	b.net.Intra.EnsureNode(int(id))
	d.Routers = append(d.Routers, id)
	return id
}

// AddRouters creates n unnamed routers inside d.
func (b *Builder) AddRouters(d *Domain, n int) []RouterID {
	out := make([]RouterID, n)
	for i := range out {
		out[i] = b.AddRouter(d, "")
	}
	return out
}

// IntraLink connects two routers of the same domain.
func (b *Builder) IntraLink(a, c RouterID, latency int64) {
	if b.net.DomainOf(a) != b.net.DomainOf(c) {
		b.fail(fmt.Errorf("topology: intra link %d-%d crosses domains", a, c))
		return
	}
	if latency <= 0 {
		latency = 1
	}
	b.net.Intra.AddBiEdge(int(a), int(c), latency)
}

// InterLink connects border routers of two different domains; rel is the
// relationship of a's domain toward c's domain.
func (b *Builder) InterLink(a, c RouterID, rel Rel, latency int64) {
	if b.net.DomainOf(a) == b.net.DomainOf(c) {
		b.fail(fmt.Errorf("topology: inter link %d-%d inside one domain", a, c))
		return
	}
	if latency <= 0 {
		latency = 1
	}
	b.net.Routers[a].Border = true
	b.net.Routers[c].Border = true
	b.net.Inter = append(b.net.Inter, InterLink{From: a, To: c, Rel: rel, Latency: latency})
}

// Provide links provider and customer border routers (provider pays
// nothing; customer buys transit).
func (b *Builder) Provide(provider, customer RouterID, latency int64) {
	b.InterLink(provider, customer, RelProvider, latency)
}

// Peer links two border routers with settlement-free peering.
func (b *Builder) Peer(a, c RouterID, latency int64) {
	b.InterLink(a, c, RelPeer, latency)
}

// AddHost attaches a host to an access router of its domain.
func (b *Builder) AddHost(d *Domain, attach RouterID, name string, accessLatency int64) *Host {
	if b.net.DomainOf(attach) != d.ASN {
		b.fail(fmt.Errorf("topology: host %q attached to router outside domain %s", name, d.Name))
	}
	a, err := d.pool.Next()
	if err != nil {
		b.fail(fmt.Errorf("topology: domain %s out of addresses: %w", d.Name, err))
	}
	if accessLatency <= 0 {
		accessLatency = 1
	}
	if name == "" {
		name = fmt.Sprintf("%s-h%d", d.Name, len(b.net.Hosts))
	}
	h := &Host{
		ID:            HostID(len(b.net.Hosts)),
		Domain:        d.ASN,
		Attach:        attach,
		Addr:          a,
		AccessLatency: accessLatency,
		Name:          name,
	}
	b.net.Hosts = append(b.net.Hosts, h)
	return h
}

func (b *Builder) fail(err error) {
	if b.err == nil {
		b.err = err
	}
}

// Build validates and returns the network.
func (b *Builder) Build() (*Network, error) {
	if b.err != nil {
		return nil, b.err
	}
	n := b.net
	if len(n.Domains) == 0 {
		return nil, fmt.Errorf("topology: no domains")
	}
	// Every domain's intra graph must be internally connected. One
	// union-find pass over the whole intra adjacency replaces the old
	// per-domain BFS (each of which allocated distance arrays sized to
	// the full router space — quadratic at 10k domains).
	uf := graph.NewUnionFind(len(n.Routers))
	for rid := range n.Routers {
		for _, e := range n.Intra.Neighbors(rid) {
			uf.Union(rid, e.To)
		}
	}
	for _, asn := range n.asns {
		d := n.Domains[asn]
		if len(d.Routers) == 0 {
			return nil, fmt.Errorf("topology: domain %s has no routers", d.Name)
		}
		root := uf.Find(int(d.Routers[0]))
		for _, rid := range d.Routers[1:] {
			if uf.Find(int(rid)) != root {
				return nil, fmt.Errorf("topology: domain %s intra graph is partitioned at router %d", d.Name, rid)
			}
		}
	}
	return n, nil
}

// MustBuild is Build for tests and examples; it panics on error.
func (b *Builder) MustBuild() *Network {
	n, err := b.Build()
	if err != nil {
		panic(err)
	}
	return n
}
