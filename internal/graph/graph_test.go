package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func lineGraph(n int) *Graph {
	g := New(n)
	for i := 0; i < n-1; i++ {
		g.AddBiEdge(i, i+1, 1)
	}
	return g
}

func TestDijkstraLine(t *testing.T) {
	g := lineGraph(5)
	spt := g.Dijkstra(0)
	for i := 0; i < 5; i++ {
		if spt.Dist[i] != int64(i) {
			t.Errorf("dist[%d] = %d", i, spt.Dist[i])
		}
	}
	if got := spt.PathTo(4); len(got) != 5 || got[0] != 0 || got[4] != 4 {
		t.Errorf("PathTo(4) = %v", got)
	}
	if spt.NextHop(4) != 1 {
		t.Errorf("NextHop(4) = %d", spt.NextHop(4))
	}
	if spt.NextHop(0) != -1 {
		t.Error("NextHop to self should be -1")
	}
}

func TestDijkstraUnreachable(t *testing.T) {
	g := New(3)
	g.AddBiEdge(0, 1, 1)
	spt := g.Dijkstra(0)
	if spt.Dist[2] < Inf {
		t.Error("node 2 should be unreachable")
	}
	if spt.PathTo(2) != nil {
		t.Error("PathTo unreachable should be nil")
	}
}

func TestDijkstraPicksCheaperOfParallelEdges(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 1, 10)
	g.AddEdge(0, 1, 3)
	if d := g.Dijkstra(0).Dist[1]; d != 3 {
		t.Errorf("dist = %d, want 3", d)
	}
}

func TestDijkstraShorterViaLongerHopPath(t *testing.T) {
	g := New(4)
	g.AddBiEdge(0, 3, 10)
	g.AddBiEdge(0, 1, 2)
	g.AddBiEdge(1, 2, 2)
	g.AddBiEdge(2, 3, 2)
	spt := g.Dijkstra(0)
	if spt.Dist[3] != 6 {
		t.Errorf("dist[3] = %d, want 6", spt.Dist[3])
	}
	if p := spt.PathTo(3); len(p) != 4 {
		t.Errorf("path = %v", p)
	}
}

func randomGraph(seed int64, n, m int, maxW int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	g := New(n)
	for i := 0; i < m; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		g.AddEdge(u, v, 1+rng.Int63n(maxW))
	}
	return g
}

func TestDijkstraAgreesWithBellmanFord(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(seed, 20, 60, 50)
		src := int(uint64(seed) % 20)
		d1 := g.Dijkstra(src).Dist
		d2 := g.BellmanFord(src)
		for i := range d1 {
			a, b := d1[i], d2[i]
			if (a >= Inf) != (b >= Inf) {
				return false
			}
			if a < Inf && a != b {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestDijkstraPathCostMatchesDist(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(seed, 15, 40, 20)
		spt := g.Dijkstra(0)
		for v := 0; v < g.Len(); v++ {
			p := spt.PathTo(v)
			if p == nil {
				if spt.Dist[v] < Inf && v != 0 {
					return false
				}
				continue
			}
			var cost int64
			for i := 0; i+1 < len(p); i++ {
				best := int64(Inf)
				for _, e := range g.Neighbors(p[i]) {
					if e.To == p[i+1] && e.Weight < best {
						best = e.Weight
					}
				}
				cost += best
			}
			if cost != spt.Dist[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestBFS(t *testing.T) {
	g := New(4)
	g.AddBiEdge(0, 1, 100)
	g.AddBiEdge(1, 2, 100)
	g.AddBiEdge(0, 3, 100)
	d := g.BFS(0)
	want := []int64{0, 1, 2, 1}
	for i, w := range want {
		if d[i] != w {
			t.Errorf("BFS dist[%d] = %d, want %d", i, d[i], w)
		}
	}
}

func TestComponents(t *testing.T) {
	g := New(6)
	g.AddBiEdge(0, 1, 1)
	g.AddBiEdge(2, 3, 1)
	g.AddBiEdge(3, 4, 1)
	comps := g.Components()
	if len(comps) != 3 {
		t.Fatalf("components = %v", comps)
	}
	if len(comps[0]) != 2 || len(comps[1]) != 3 || len(comps[2]) != 1 {
		t.Errorf("component sizes wrong: %v", comps)
	}
	if g.Connected() {
		t.Error("graph should not be connected")
	}
	g.AddBiEdge(1, 2, 1)
	g.AddBiEdge(4, 5, 1)
	if !g.Connected() {
		t.Error("graph should now be connected")
	}
}

func TestRemoveEdge(t *testing.T) {
	g := New(3)
	g.AddBiEdge(0, 1, 1)
	g.AddBiEdge(1, 2, 1)
	if !g.RemoveBiEdge(0, 1) {
		t.Error("RemoveBiEdge should report removal")
	}
	if g.HasEdge(0, 1) || g.HasEdge(1, 0) {
		t.Error("edge still present after removal")
	}
	if g.RemoveBiEdge(0, 1) {
		t.Error("second removal should report false")
	}
	if !g.HasEdge(1, 2) {
		t.Error("unrelated edge disturbed")
	}
}

func TestClone(t *testing.T) {
	g := lineGraph(3)
	c := g.Clone()
	c.AddBiEdge(0, 2, 1)
	if g.HasEdge(0, 2) {
		t.Error("mutating clone affected original")
	}
	if !c.HasEdge(0, 2) {
		t.Error("clone edge missing")
	}
}

func TestUnionFind(t *testing.T) {
	uf := NewUnionFind(5)
	if uf.Sets() != 5 {
		t.Fatalf("Sets = %d", uf.Sets())
	}
	if !uf.Union(0, 1) || !uf.Union(2, 3) {
		t.Error("fresh unions should succeed")
	}
	if uf.Union(1, 0) {
		t.Error("repeated union should fail")
	}
	if uf.Sets() != 3 {
		t.Errorf("Sets = %d, want 3", uf.Sets())
	}
	if uf.Find(0) != uf.Find(1) || uf.Find(0) == uf.Find(2) {
		t.Error("find results inconsistent")
	}
}

func TestEnsureNodeAndEdgeCount(t *testing.T) {
	var g Graph
	g.EnsureNode(4)
	if g.Len() != 5 {
		t.Errorf("Len = %d", g.Len())
	}
	g.AddBiEdge(0, 4, 7)
	if g.EdgeCount() != 2 {
		t.Errorf("EdgeCount = %d", g.EdgeCount())
	}
}

func TestNegativeWeightPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on negative weight")
		}
	}()
	New(2).AddEdge(0, 1, -1)
}

func BenchmarkDijkstra(b *testing.B) {
	g := randomGraph(1, 500, 3000, 100)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Dijkstra(i % 500)
	}
}
