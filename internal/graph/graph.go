// Package graph provides the weighted-digraph machinery the routing
// protocols and topology generators are built on: adjacency storage,
// Dijkstra shortest paths, breadth-first search, connected components and a
// union-find structure used for partition detection and repair.
package graph

import (
	"fmt"
	"math"
	"sort"
)

// Inf is the distance reported for unreachable nodes.
const Inf = math.MaxInt64 / 4

// Edge is a directed, weighted edge.
type Edge struct {
	To     int
	Weight int64
}

// Graph is a directed weighted graph over nodes 0..N-1. The zero value is
// an empty graph; grow it with EnsureNode or AddEdge.
type Graph struct {
	adj [][]Edge
}

// New returns a graph with n isolated nodes.
func New(n int) *Graph {
	return &Graph{adj: make([][]Edge, n)}
}

// Len returns the number of nodes.
func (g *Graph) Len() int { return len(g.adj) }

// EnsureNode grows the graph so node id exists.
func (g *Graph) EnsureNode(id int) {
	for len(g.adj) <= id {
		g.adj = append(g.adj, nil)
	}
}

// AddEdge inserts a directed edge. Parallel edges are allowed; shortest-path
// routines use the cheapest.
func (g *Graph) AddEdge(from, to int, w int64) {
	if w < 0 {
		panic(fmt.Sprintf("graph: negative weight %d", w))
	}
	g.EnsureNode(from)
	g.EnsureNode(to)
	g.adj[from] = append(g.adj[from], Edge{To: to, Weight: w})
}

// AddBiEdge inserts the edge in both directions with the same weight.
func (g *Graph) AddBiEdge(a, b int, w int64) {
	g.AddEdge(a, b, w)
	g.AddEdge(b, a, w)
}

// Neighbors returns the out-edges of node id. The returned slice is owned
// by the graph and must not be modified.
func (g *Graph) Neighbors(id int) []Edge {
	if id < 0 || id >= len(g.adj) {
		return nil
	}
	return g.adj[id]
}

// HasEdge reports whether a direct edge from→to exists.
func (g *Graph) HasEdge(from, to int) bool {
	for _, e := range g.Neighbors(from) {
		if e.To == to {
			return true
		}
	}
	return false
}

// EdgeCount returns the number of directed edges.
func (g *Graph) EdgeCount() int {
	n := 0
	for _, es := range g.adj {
		n += len(es)
	}
	return n
}

// RemoveEdge deletes all direct edges from→to. It reports whether any
// existed.
func (g *Graph) RemoveEdge(from, to int) bool {
	if from < 0 || from >= len(g.adj) {
		return false
	}
	out := g.adj[from][:0]
	removed := false
	for _, e := range g.adj[from] {
		if e.To == to {
			removed = true
			continue
		}
		out = append(out, e)
	}
	g.adj[from] = out
	return removed
}

// RemoveBiEdge deletes the edge in both directions.
func (g *Graph) RemoveBiEdge(a, b int) bool {
	ra := g.RemoveEdge(a, b)
	rb := g.RemoveEdge(b, a)
	return ra || rb
}

// Clone returns a deep copy.
func (g *Graph) Clone() *Graph {
	c := New(len(g.adj))
	for i, es := range g.adj {
		c.adj[i] = append([]Edge(nil), es...)
	}
	return c
}

// SPT is a single-source shortest-path tree.
type SPT struct {
	Source string // descriptive only
	Dist   []int64
	Parent []int // -1 for source and unreachable nodes
	src    int
}

// Dijkstra computes the shortest-path tree from src. Ties are broken toward
// the lower-numbered parent so results are deterministic.
func (g *Graph) Dijkstra(src int) *SPT {
	n := len(g.adj)
	dist := make([]int64, n)
	parent := make([]int, n)
	for i := range dist {
		dist[i] = Inf
		parent[i] = -1
	}
	if src < 0 || src >= n {
		return &SPT{Dist: dist, Parent: parent, src: src}
	}
	dist[src] = 0
	h := &heap{}
	h.push(item{node: src, dist: 0})
	done := make([]bool, n)
	for h.len() > 0 {
		it := h.pop()
		u := it.node
		if done[u] {
			continue
		}
		done[u] = true
		for _, e := range g.adj[u] {
			nd := dist[u] + e.Weight
			if nd < dist[e.To] || (nd == dist[e.To] && parent[e.To] > u) {
				dist[e.To] = nd
				parent[e.To] = u
				h.push(item{node: e.To, dist: nd})
			}
		}
	}
	return &SPT{Dist: dist, Parent: parent, src: src}
}

// PathTo reconstructs the node sequence src..dst, or nil if unreachable.
func (t *SPT) PathTo(dst int) []int {
	if dst < 0 || dst >= len(t.Dist) || t.Dist[dst] >= Inf {
		return nil
	}
	var rev []int
	for v := dst; v != -1; v = t.Parent[v] {
		rev = append(rev, v)
		if v == t.src {
			break
		}
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// NextHop returns the first hop from the source toward dst, or -1.
func (t *SPT) NextHop(dst int) int {
	p := t.PathTo(dst)
	if len(p) < 2 {
		return -1
	}
	return p[1]
}

// BellmanFord computes single-source shortest distances by relaxation; it
// exists chiefly as an independent oracle for property-testing Dijkstra and
// as the engine behind the distance-vector protocol's expected results.
func (g *Graph) BellmanFord(src int) []int64 {
	n := len(g.adj)
	dist := make([]int64, n)
	for i := range dist {
		dist[i] = Inf
	}
	if src < 0 || src >= n {
		return dist
	}
	dist[src] = 0
	for round := 0; round < n; round++ {
		changed := false
		for u := 0; u < n; u++ {
			if dist[u] >= Inf {
				continue
			}
			for _, e := range g.adj[u] {
				if nd := dist[u] + e.Weight; nd < dist[e.To] {
					dist[e.To] = nd
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	return dist
}

// BFS returns hop counts from src (Inf when unreachable).
func (g *Graph) BFS(src int) []int64 {
	n := len(g.adj)
	dist := make([]int64, n)
	for i := range dist {
		dist[i] = Inf
	}
	if src < 0 || src >= n {
		return dist
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, e := range g.adj[u] {
			if dist[e.To] >= Inf {
				dist[e.To] = dist[u] + 1
				queue = append(queue, e.To)
			}
		}
	}
	return dist
}

// Components returns the weakly connected components, each sorted, in
// deterministic order of their smallest member.
func (g *Graph) Components() [][]int {
	n := len(g.adj)
	uf := NewUnionFind(n)
	for u := 0; u < n; u++ {
		for _, e := range g.adj[u] {
			uf.Union(u, e.To)
		}
	}
	byRoot := map[int][]int{}
	for v := 0; v < n; v++ {
		r := uf.Find(v)
		byRoot[r] = append(byRoot[r], v)
	}
	var roots []int
	for r := range byRoot {
		roots = append(roots, byRoot[r][0])
	}
	sort.Ints(roots)
	out := make([][]int, 0, len(roots))
	seen := map[int]bool{}
	for _, first := range roots {
		r := uf.Find(first)
		if seen[r] {
			continue
		}
		seen[r] = true
		sort.Ints(byRoot[r])
		out = append(out, byRoot[r])
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}

// Connected reports whether the graph is weakly connected (trivially true
// for graphs with fewer than two nodes).
func (g *Graph) Connected() bool {
	return len(g.adj) < 2 || len(g.Components()) == 1
}

// UnionFind is a disjoint-set structure with path compression and union by
// rank.
type UnionFind struct {
	parent []int
	rank   []int
	sets   int
}

// NewUnionFind returns n singleton sets.
func NewUnionFind(n int) *UnionFind {
	uf := &UnionFind{parent: make([]int, n), rank: make([]int, n), sets: n}
	for i := range uf.parent {
		uf.parent[i] = i
	}
	return uf
}

// Find returns the canonical representative of x's set.
func (uf *UnionFind) Find(x int) int {
	for uf.parent[x] != x {
		uf.parent[x] = uf.parent[uf.parent[x]]
		x = uf.parent[x]
	}
	return x
}

// Union merges the sets of a and b; it reports whether a merge happened.
func (uf *UnionFind) Union(a, b int) bool {
	ra, rb := uf.Find(a), uf.Find(b)
	if ra == rb {
		return false
	}
	if uf.rank[ra] < uf.rank[rb] {
		ra, rb = rb, ra
	}
	uf.parent[rb] = ra
	if uf.rank[ra] == uf.rank[rb] {
		uf.rank[ra]++
	}
	uf.sets--
	return true
}

// Sets returns the number of disjoint sets.
func (uf *UnionFind) Sets() int { return uf.sets }

// item/heap: a minimal binary min-heap specialised for Dijkstra, avoiding
// the interface costs of container/heap on the hot path.
type item struct {
	node int
	dist int64
}

type heap struct{ a []item }

func (h *heap) len() int { return len(h.a) }

func (h *heap) push(it item) {
	h.a = append(h.a, it)
	i := len(h.a) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h.a[p].dist <= h.a[i].dist {
			break
		}
		h.a[p], h.a[i] = h.a[i], h.a[p]
		i = p
	}
}

func (h *heap) pop() item {
	top := h.a[0]
	last := len(h.a) - 1
	h.a[0] = h.a[last]
	h.a = h.a[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < last && h.a[l].dist < h.a[small].dist {
			small = l
		}
		if r < last && h.a[r].dist < h.a[small].dist {
			small = r
		}
		if small == i {
			break
		}
		h.a[i], h.a[small] = h.a[small], h.a[i]
		i = small
	}
	return top
}
