// Package econ models the paper's incentive story (§2.1): whether ISPs
// deploy IPvN is a question of revenue, and the technical property of
// universal access changes the economics qualitatively.
//
// The model is a deterministic discrete-time adoption game:
//
//   - Users generate demand for IPvN applications. Developers only invest
//     where there is addressable market, so demand grows logistically,
//     gated by *reach* — the fraction of users who can actually use IPvN.
//   - With universal access, reach jumps to 1 as soon as a single ISP
//     deploys (any client can reach the deployment); without it — the IP
//     Multicast cautionary tale — reach equals the deployers' combined
//     customer share, reproducing the chicken-and-egg stall.
//   - Revenue follows traffic (assumption A4): deployers serve their own
//     customers' demand and, under universal access, split the attracted
//     demand of non-deployers' customers. Customers also defect toward
//     deploying ISPs at a small rate (customer choice drives competition).
//   - Each round, every ISP deploys if projected per-round revenue beats
//     its amortized deployment cost, and abandons if sustained losses
//     exceed its patience.
//
// The headline result (experiment E9) is the pair of trajectories: with
// universal access a first mover profits, laggards feel defection pressure
// and adoption completes (S-curve); without it the first mover's market is
// too small, demand never takes off, and deployment collapses.
package econ

import (
	"fmt"
	"math"

	"github.com/evolvable-net/evolve/internal/topology"
)

// Params are the model parameters. Zero values are replaced by defaults.
type Params struct {
	// UniversalAccess selects whether reach is global or deployer-only.
	UniversalAccess bool
	// Rounds is the simulation horizon. Default 120.
	Rounds int
	// Price is revenue per unit of served demand per round. Default 1.0.
	Price float64
	// DeployCost is each ISP's amortized per-round cost of running IPvN.
	// Default 0.08.
	DeployCost float64
	// GrowthRate is the logistic demand growth coefficient. Default 0.6.
	GrowthRate float64
	// SeedDemand is the initial app demand (early adopters). Default 0.02.
	SeedDemand float64
	// Defection is the per-round fraction of a non-deployer's customers
	// who move to deploying ISPs (customer choice). Default 0.03.
	Defection float64
	// Patience is how many consecutive loss-making rounds an ISP tolerates
	// before abandoning its deployment. Default 8.
	Patience int
	// RetentionHorizon is how many rounds of avoided customer defection a
	// non-deployer counts when valuing adoption — the §2.1 "late-adopting
	// ISPs will deploy if they are at a competitive disadvantage without
	// it". Default 12.
	RetentionHorizon int
	// SettlementRate is the fraction of retail price an ISP earns for
	// carrying *attracted* traffic (other ISPs' customers reaching its
	// IPvN routers) — A4's "increased settlement payments". Default 0.5.
	SettlementRate float64
	// FirstMover indexes the ISP that deploys at round 0. Default 0.
	FirstMover int
}

func (p Params) withDefaults() Params {
	if p.Rounds == 0 {
		p.Rounds = 120
	}
	if p.Price == 0 {
		p.Price = 1.0
	}
	if p.DeployCost == 0 {
		p.DeployCost = 0.08
	}
	if p.GrowthRate == 0 {
		p.GrowthRate = 0.6
	}
	if p.SeedDemand == 0 {
		p.SeedDemand = 0.02
	}
	if p.Defection == 0 {
		p.Defection = 0.03
	}
	if p.Patience == 0 {
		p.Patience = 8
	}
	if p.RetentionHorizon == 0 {
		p.RetentionHorizon = 12
	}
	if p.SettlementRate == 0 {
		p.SettlementRate = 0.5
	}
	return p
}

// ISP is one provider's state.
type ISP struct {
	Name string
	// Share is the fraction of all users who are this ISP's customers.
	Share float64
	// Deployed reports whether the ISP currently offers IPvN.
	Deployed bool
	// Profit is cumulative profit from the IPvN offering.
	Profit float64

	lossStreak int
	// initShare is the pre-defection customer base, the addressable
	// market an ISP can win back by deploying; adoption decisions use it
	// so that bleeding customers raises rather than erodes the incentive
	// to catch up.
	initShare float64
}

// Round is one row of the simulation's output.
type Round struct {
	T             int
	Demand        float64
	Reach         float64
	DeployedCount int
	DeployedShare float64
}

// Model is the adoption game.
type Model struct {
	Params Params
	ISPs   []*ISP
	// History records every simulated round.
	History []Round
}

// NewModel creates a model over ISPs with the given customer shares
// (normalized internally).
func NewModel(p Params, shares []float64) (*Model, error) {
	p = p.withDefaults()
	if len(shares) == 0 {
		return nil, fmt.Errorf("econ: no ISPs")
	}
	if p.FirstMover < 0 || p.FirstMover >= len(shares) {
		return nil, fmt.Errorf("econ: first mover %d out of range", p.FirstMover)
	}
	var sum float64
	for _, s := range shares {
		if s < 0 {
			return nil, fmt.Errorf("econ: negative share %v", s)
		}
		sum += s
	}
	if sum == 0 {
		return nil, fmt.Errorf("econ: all shares zero")
	}
	m := &Model{Params: p}
	for i, s := range shares {
		m.ISPs = append(m.ISPs, &ISP{
			Name:      fmt.Sprintf("ISP%d", i),
			Share:     s / sum,
			initShare: s / sum,
		})
	}
	return m, nil
}

// NewModelFromNetwork derives customer shares from a topology's host
// counts (domains without hosts get a minimal share so they still play).
func NewModelFromNetwork(p Params, net *topology.Network) (*Model, error) {
	asns := net.ASNs()
	shares := make([]float64, len(asns))
	for i, asn := range asns {
		shares[i] = float64(len(net.HostsIn(asn))) + 0.1
	}
	m, err := NewModel(p, shares)
	if err != nil {
		return nil, err
	}
	for i, asn := range asns {
		m.ISPs[i].Name = net.Domain(asn).Name
	}
	return m, nil
}

// reach is the fraction of users who can use IPvN right now.
func (m *Model) reach() float64 {
	var deployedShare float64
	any := false
	for _, isp := range m.ISPs {
		if isp.Deployed {
			any = true
			deployedShare += isp.Share
		}
	}
	if !any {
		return 0
	}
	if m.Params.UniversalAccess {
		return 1
	}
	return deployedShare
}

// servedDemand returns the demand units ISP i would serve at the given
// total demand level.
func (m *Model) servedDemand(i int, demand float64) float64 {
	isp := m.ISPs[i]
	if !isp.Deployed {
		return 0
	}
	// Own customers' demand is always served.
	served := isp.Share * demand
	if m.Params.UniversalAccess {
		// Attracted traffic (A4): non-deployers' customers reach the
		// deployment too; deployers split it in proportion to size.
		var nonDeployed, deployedShare float64
		for _, other := range m.ISPs {
			if other.Deployed {
				deployedShare += other.Share
			} else {
				nonDeployed += other.Share
			}
		}
		if deployedShare > 0 {
			served += nonDeployed * demand * (isp.Share / deployedShare)
		}
	}
	return served
}

// Run simulates the configured horizon and returns the history. Running
// twice restarts from scratch.
func (m *Model) Run() []Round {
	p := m.Params
	for _, isp := range m.ISPs {
		isp.Deployed = false
		isp.Profit = 0
		isp.lossStreak = 0
		isp.Share = isp.initShare
	}
	m.ISPs[p.FirstMover].Deployed = true
	demand := p.SeedDemand
	m.History = m.History[:0]

	for t := 0; t < p.Rounds; t++ {
		reach := m.reach()

		// Settle this round's books.
		for i, isp := range m.ISPs {
			if !isp.Deployed {
				continue
			}
			profit := p.Price*m.servedDemand(i, demand) - p.DeployCost
			isp.Profit += profit
			if profit < 0 {
				isp.lossStreak++
			} else {
				isp.lossStreak = 0
			}
		}

		// Abandonment: sustained losses end the experiment for that ISP.
		for _, isp := range m.ISPs {
			if isp.Deployed && isp.lossStreak > p.Patience {
				isp.Deployed = false
				isp.lossStreak = 0
			}
		}

		// Adoption: a non-deployer joins when projected value beats cost.
		// Value has two parts: serving its own customers' demand, and —
		// once competitors have deployed — the customer defection it
		// avoids over its planning horizon (competitive disadvantage).
		anyDeployed := len(m.deployerIdx()) > 0
		for _, isp := range m.ISPs {
			if isp.Deployed {
				continue
			}
			projected := p.Price * isp.initShare * demand
			if anyDeployed {
				projected += p.Price * isp.initShare * demand * p.Defection * float64(p.RetentionHorizon)
			}
			if projected > p.DeployCost {
				isp.Deployed = true
			}
		}

		// Customer defection toward deployers (competition for
		// customers, proportional to how visible the service is).
		if deployers := m.deployerIdx(); len(deployers) > 0 && len(deployers) < len(m.ISPs) {
			var moved float64
			for _, isp := range m.ISPs {
				if isp.Deployed {
					continue
				}
				delta := isp.Share * p.Defection * demand
				isp.Share -= delta
				moved += delta
			}
			var deployedShare float64
			for _, di := range deployers {
				deployedShare += m.ISPs[di].Share
			}
			for _, di := range deployers {
				m.ISPs[di].Share += moved * (m.ISPs[di].Share / deployedShare)
			}
		}

		// Demand evolves logistically, capped by reach.
		demand += p.GrowthRate * demand * (reach - demand)
		if demand < 0 {
			demand = 0
		}
		if demand > 1 {
			demand = 1
		}

		count, share := 0, 0.0
		for _, isp := range m.ISPs {
			if isp.Deployed {
				count++
				share += isp.Share
			}
		}
		m.History = append(m.History, Round{
			T: t, Demand: demand, Reach: reach,
			DeployedCount: count, DeployedShare: share,
		})
	}
	return m.History
}

func (m *Model) deployerIdx() []int {
	var out []int
	for i, isp := range m.ISPs {
		if isp.Deployed {
			out = append(out, i)
		}
	}
	return out
}

// Outcome summarises a finished run.
type Outcome struct {
	FinalDemand   float64
	FinalDeployed int
	DeployedShare float64
	// Completed reports whether adoption effectively finished (≥90% of
	// ISPs deployed and demand ≥ 0.5).
	Completed bool
	// Stalled reports whether the deployment collapsed or demand stayed
	// marginal (< 3× seed).
	Stalled bool
	// TimeToHalf is the first round where demand crossed 0.5, or -1.
	TimeToHalf int
}

// Outcome inspects the last run.
func (m *Model) Outcome() Outcome {
	if len(m.History) == 0 {
		return Outcome{Stalled: true, TimeToHalf: -1}
	}
	last := m.History[len(m.History)-1]
	o := Outcome{
		FinalDemand:   last.Demand,
		FinalDeployed: last.DeployedCount,
		DeployedShare: last.DeployedShare,
		TimeToHalf:    -1,
	}
	for _, r := range m.History {
		if r.Demand >= 0.5 {
			o.TimeToHalf = r.T
			break
		}
	}
	o.Completed = float64(last.DeployedCount) >= 0.9*float64(len(m.ISPs)) && last.Demand >= 0.5
	o.Stalled = last.DeployedCount == 0 || last.Demand < 3*m.Params.withDefaults().SeedDemand
	return o
}

// SettlementRevenue converts measured traffic geography into per-ISP
// revenue per round, the concrete reading of assumption A4: an ISP earns
// retail price on its own customers' IPvN demand and the settlement rate
// on traffic it *attracts* from other ISPs' customers (its anycast
// catchment beyond its own base).
//
// ownShare maps each ISP to its customer share of all users (summing to
// ~1); ingressShare maps each participant to the fraction of all users
// whose IPvN traffic lands in its network (e.g. core's IngressShare).
// demand scales both terms.
func SettlementRevenue(p Params, demand float64, ownShare, ingressShare map[topology.ASN]float64) map[topology.ASN]float64 {
	p = p.withDefaults()
	out := map[topology.ASN]float64{}
	for asn, ing := range ingressShare {
		own := ownShare[asn]
		if own > ing {
			// Some of its own customers land elsewhere; it only retails
			// what it actually serves.
			own = ing
		}
		attracted := ing - own
		out[asn] = p.Price * demand * (own + p.SettlementRate*attracted)
	}
	return out
}

// Gini computes the Gini coefficient of deployer profits — how unevenly
// the IPvN revenue pie is split (early-mover advantage).
func (m *Model) Gini() float64 {
	var xs []float64
	for _, isp := range m.ISPs {
		if isp.Profit > 0 {
			xs = append(xs, isp.Profit)
		}
	}
	n := len(xs)
	if n == 0 {
		return 0
	}
	var sum, diff float64
	for _, x := range xs {
		sum += x
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			diff += math.Abs(xs[i] - xs[j])
		}
	}
	if sum == 0 {
		return 0
	}
	return diff / (2 * float64(n) * sum)
}
