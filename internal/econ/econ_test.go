package econ

import (
	"testing"

	"github.com/evolvable-net/evolve/internal/topology"
)

// tenISPs: one big (0.3) and nine small providers.
func tenISPs() []float64 {
	shares := []float64{0.3}
	for i := 0; i < 9; i++ {
		shares = append(shares, 0.0778)
	}
	return shares
}

func TestUniversalAccessCompletes(t *testing.T) {
	m, err := NewModel(Params{UniversalAccess: true}, tenISPs())
	if err != nil {
		t.Fatal(err)
	}
	m.Run()
	o := m.Outcome()
	if !o.Completed {
		t.Errorf("UA adoption did not complete: %+v", o)
	}
	if o.Stalled {
		t.Errorf("UA flagged stalled: %+v", o)
	}
	if o.TimeToHalf < 0 {
		t.Error("demand never crossed 0.5 under UA")
	}
	if o.FinalDemand < 0.9 {
		t.Errorf("final demand = %.3f", o.FinalDemand)
	}
}

func TestNoUniversalAccessStalls(t *testing.T) {
	// The IP Multicast story: without universal access the first mover's
	// addressable market is its own customers; demand never takes off and
	// the deployment bleeds money until abandoned.
	m, err := NewModel(Params{UniversalAccess: false}, tenISPs())
	if err != nil {
		t.Fatal(err)
	}
	m.Run()
	o := m.Outcome()
	if o.Completed {
		t.Errorf("non-UA adoption unexpectedly completed: %+v", o)
	}
	if !o.Stalled {
		t.Errorf("non-UA did not stall: %+v", o)
	}
}

func TestUADominatesNonUA(t *testing.T) {
	// Across a range of costs and growth rates, UA's final demand must be
	// at least that of non-UA — the architectural claim, parameterized.
	for _, cost := range []float64{0.02, 0.08, 0.2} {
		for _, growth := range []float64{0.3, 0.6, 1.0} {
			base := Params{DeployCost: cost, GrowthRate: growth}
			ua := base
			ua.UniversalAccess = true
			m1, _ := NewModel(ua, tenISPs())
			m1.Run()
			m2, _ := NewModel(base, tenISPs())
			m2.Run()
			if m1.Outcome().FinalDemand+1e-9 < m2.Outcome().FinalDemand {
				t.Errorf("cost=%.2f growth=%.2f: UA demand %.3f < non-UA %.3f",
					cost, growth, m1.Outcome().FinalDemand, m2.Outcome().FinalDemand)
			}
		}
	}
}

func TestFirstMoverProfitsUnderUA(t *testing.T) {
	// Low deploy cost so every ISP ends up profitable; the first mover
	// still earns the most (early-mover advantage), and the profit split
	// is unequal.
	m, _ := NewModel(Params{UniversalAccess: true, DeployCost: 0.02}, tenISPs())
	m.Run()
	if m.ISPs[0].Profit <= 0 {
		t.Errorf("first mover profit = %.3f", m.ISPs[0].Profit)
	}
	for i, isp := range m.ISPs[1:] {
		if isp.Profit >= m.ISPs[0].Profit {
			t.Errorf("laggard %d (%.3f) out-earned the first mover (%.3f)",
				i+1, isp.Profit, m.ISPs[0].Profit)
		}
	}
	if g := m.Gini(); g <= 0 {
		t.Errorf("Gini = %.3f, expected inequality", g)
	}
}

func TestSharesConserved(t *testing.T) {
	m, _ := NewModel(Params{UniversalAccess: true}, tenISPs())
	m.Run()
	var sum float64
	for _, isp := range m.ISPs {
		sum += isp.Share
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("shares sum to %.6f after defection flows", sum)
	}
}

func TestDeterministic(t *testing.T) {
	m1, _ := NewModel(Params{UniversalAccess: true}, tenISPs())
	m2, _ := NewModel(Params{UniversalAccess: true}, tenISPs())
	h1 := m1.Run()
	h2 := m2.Run()
	for i := range h1 {
		if h1[i] != h2[i] {
			t.Fatalf("round %d differs: %+v vs %+v", i, h1[i], h2[i])
		}
	}
}

func TestRunRestartsCleanly(t *testing.T) {
	m, _ := NewModel(Params{UniversalAccess: true}, tenISPs())
	first := m.Run()
	last1 := first[len(first)-1]
	second := m.Run()
	last2 := second[len(second)-1]
	if last1.Demand != last2.Demand || last1.DeployedCount != last2.DeployedCount {
		t.Error("second Run differs from first — state leaked")
	}
}

func TestHistoryMonotoneUnderUA(t *testing.T) {
	m, _ := NewModel(Params{UniversalAccess: true}, tenISPs())
	hist := m.Run()
	for i := 1; i < len(hist); i++ {
		if hist[i].Demand+1e-12 < hist[i-1].Demand {
			t.Fatalf("demand fell at round %d: %.6f → %.6f", i, hist[i-1].Demand, hist[i].Demand)
		}
	}
}

func TestValidation(t *testing.T) {
	if _, err := NewModel(Params{}, nil); err == nil {
		t.Error("no ISPs accepted")
	}
	if _, err := NewModel(Params{}, []float64{-1, 2}); err == nil {
		t.Error("negative share accepted")
	}
	if _, err := NewModel(Params{}, []float64{0, 0}); err == nil {
		t.Error("all-zero shares accepted")
	}
	if _, err := NewModel(Params{FirstMover: 5}, []float64{1, 1}); err == nil {
		t.Error("out-of-range first mover accepted")
	}
}

func TestNewModelFromNetwork(t *testing.T) {
	n, err := topology.TransitStub(2, 2, 0, topology.GenConfig{Seed: 1, HostsPerDomain: 3})
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewModelFromNetwork(Params{UniversalAccess: true}, n)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.ISPs) != len(n.ASNs()) {
		t.Errorf("ISPs = %d", len(m.ISPs))
	}
	if m.ISPs[0].Name != n.Domain(n.ASNs()[0]).Name {
		t.Error("names not carried over")
	}
	m.Run()
	if !m.Outcome().Completed {
		t.Error("network-derived UA run did not complete")
	}
}

func TestOutcomeEmptyHistory(t *testing.T) {
	m, _ := NewModel(Params{}, tenISPs())
	o := m.Outcome()
	if !o.Stalled || o.TimeToHalf != -1 {
		t.Errorf("empty outcome = %+v", o)
	}
}

func TestSettlementRevenue(t *testing.T) {
	own := map[topology.ASN]float64{1: 0.2, 2: 0.3, 3: 0.5}
	// ISP 1 participates and captures 70% of traffic (its 20% plus 50%
	// attracted); ISP 2 participates and captures 30% (its own).
	ingress := map[topology.ASN]float64{1: 0.7, 2: 0.3}
	rev := SettlementRevenue(Params{Price: 1, SettlementRate: 0.5}, 1.0, own, ingress)
	if len(rev) != 2 {
		t.Fatalf("revenue for %d ISPs", len(rev))
	}
	// ISP1: 0.2 retail + 0.5×0.5 settlement = 0.45.
	if diff := rev[1] - 0.45; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("ISP1 revenue = %v", rev[1])
	}
	// ISP2: pure retail 0.3.
	if diff := rev[2] - 0.30; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("ISP2 revenue = %v", rev[2])
	}
	// The attractor out-earns a same-retail non-attractor: the A4 edge.
	if rev[1] <= rev[2]-0.3+0.2 {
		t.Errorf("attracted traffic paid nothing: %v vs %v", rev[1], rev[2])
	}
	// An ISP capturing less than its own base retails only what it serves.
	rev = SettlementRevenue(Params{Price: 1}, 1.0,
		map[topology.ASN]float64{1: 0.6}, map[topology.ASN]float64{1: 0.4})
	if diff := rev[1] - 0.4; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("capped retail = %v", rev[1])
	}
	// Demand scales linearly.
	rev = SettlementRevenue(Params{Price: 2, SettlementRate: 0.5}, 0.5, own, ingress)
	if diff := rev[1] - 0.45; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("scaled revenue = %v", rev[1])
	}
}

func TestHigherCostSlowsOrStallsAdoption(t *testing.T) {
	cheap, _ := NewModel(Params{UniversalAccess: true, DeployCost: 0.02}, tenISPs())
	cheap.Run()
	pricey, _ := NewModel(Params{UniversalAccess: true, DeployCost: 0.5}, tenISPs())
	pricey.Run()
	co, po := cheap.Outcome(), pricey.Outcome()
	if po.FinalDeployed > co.FinalDeployed {
		t.Errorf("higher cost yielded more deployment: %d > %d", po.FinalDeployed, co.FinalDeployed)
	}
}
