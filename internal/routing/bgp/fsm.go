package bgp

import (
	"sort"

	"github.com/evolvable-net/evolve/internal/addr"
	"github.com/evolvable-net/evolve/internal/netsim"
	"github.com/evolvable-net/evolve/internal/topology"
)

// This file holds the per-neighbor session machinery of the event-driven
// Speaker: a small RFC-4271-shaped FSM (Idle → Established → Down) driven
// by keepalive and hold timers on the netsim engine, plus the
// loss-tolerance layer — per-session sequence numbers whose gaps trigger
// a route-refresh resync — that makes UPDATEs or WITHDRAWs dropped on a
// failed link recoverable instead of permanently lost.

// SessState is the state of one neighbor session.
type SessState uint8

const (
	// SessIdle is the initial state: nothing heard from the peer yet.
	// UPDATEs are withheld; establishment replays the full Adj-RIB-Out.
	SessIdle SessState = iota
	// SessEstablished: the peer is live. UPDATEs flow, and a gap in the
	// peer's message sequence numbers (messages lost on a flapped link
	// too briefly down to trip the hold timer) triggers a route-refresh
	// resync instead of being silently ignored.
	SessEstablished
	// SessDown: the hold timer expired without hearing from the peer.
	// Every ribIn entry learned from it is flushed (propagating
	// withdrawals downstream), its Adj-RIB-Out is cleared, and keepalives
	// keep probing so the session re-establishes when the link returns.
	SessDown
)

// String renders the state for logs and test failures.
func (s SessState) String() string {
	switch s {
	case SessIdle:
		return "idle"
	case SessEstablished:
		return "established"
	case SessDown:
		return "down"
	default:
		return "invalid"
	}
}

// SessionConfig sets the session timers. The zero value of Keepalive
// disables the session machinery entirely, reproducing the legacy
// fire-and-forget speaker (no FSM, no loss detection) — kept as an
// ablation arm so tests can demonstrate the permanent-black-hole failure
// mode the sessions exist to fix.
type SessionConfig struct {
	// Keepalive is the keepalive/hold-check tick interval in simulated
	// microseconds. Zero disables sessions (legacy mode).
	Keepalive netsim.Time
	// Hold is how long silence from a peer is tolerated before the
	// session is declared down. Defaults to 3×Keepalive.
	Hold netsim.Time
	// MRAI is the per-neighbor min-route-advertisement interval: the
	// first change to a neighbor flushes immediately (leading edge),
	// then further changes batch until the timer fires. Zero sends every
	// change immediately.
	MRAI netsim.Time
}

// DefaultSessionConfig returns the stock timers: 2ms keepalives, 6ms
// hold, 1ms MRAI — an order of magnitude above the generators' 10–50µs
// inter-domain link latencies, mirroring real BGP's timer/RTT ratio.
func DefaultSessionConfig() SessionConfig {
	return SessionConfig{Keepalive: 2000, Hold: 6000, MRAI: 1000}
}

func (c SessionConfig) withDefaults() SessionConfig {
	if c.Keepalive > 0 && c.Hold <= 0 {
		c.Hold = 3 * c.Keepalive
	}
	return c
}

// msgKind tags a session message.
type msgKind uint8

const (
	// msgKeepalive proves liveness and carries the sequence number that
	// lets the peer detect loss windows.
	msgKeepalive msgKind = iota
	// msgUpdate is a route advertisement or withdrawal.
	msgUpdate
	// msgRefreshReq asks the peer to replay its full Adj-RIB-Out (RFC
	// 2918-style route refresh), sent after a sequence gap.
	msgRefreshReq
	// msgEOR marks the end of a replay (RFC 4724's end-of-RIB): entries
	// still stale when it arrives were lost withdrawals — delete them.
	msgEOR
)

// sessMsg is the envelope every session message travels in. seq is a
// per-direction counter assigned at send time; because the fabric drops
// messages on failed links after consuming a number, the receiver sees a
// gap as soon as the first post-outage message arrives.
type sessMsg struct {
	kind msgKind
	seq  uint64
	upd  update
}

// advert is the wire content of an advertisement as last sent to a
// neighbor — the per-prefix value of the Adj-RIB-Out.
type advert struct {
	path     []topology.ASN
	noExport bool
}

func advertEqual(a, b advert) bool {
	if a.noExport != b.noExport || len(a.path) != len(b.path) {
		return false
	}
	for i := range a.path {
		if a.path[i] != b.path[i] {
			return false
		}
	}
	return true
}

// session is one neighbor's session state.
type session struct {
	state SessState
	// txSeq numbers every message sent to this peer.
	txSeq uint64
	// rxSeq is the next sequence number expected from the peer.
	rxSeq uint64
	// lastHeard is when the peer was last heard from; heard gates the
	// very first hold check.
	lastHeard netsim.Time
	heard     bool
	// adjOut is the Adj-RIB-Out: exactly what this speaker last sent and
	// did not withdraw. Withdrawals are emitted only for prefixes present
	// here, which is what kills the gratuitous-WITHDRAW inflation.
	adjOut map[addr.Prefix]advert
	// dirty accumulates prefixes whose export decision must be
	// re-evaluated against adjOut at the next MRAI flush.
	dirty     map[addr.Prefix]bool
	mraiArmed bool
	// stale marks ribIn prefixes awaiting confirmation during a
	// route-refresh resync; whatever is still marked at EOR is deleted.
	stale map[addr.Prefix]bool
}

func newSession(established bool) *session {
	st := SessIdle
	if established {
		st = SessEstablished
	}
	return &session{
		state:  st,
		adjOut: map[addr.Prefix]advert{},
		dirty:  map[addr.Prefix]bool{},
	}
}

// sortPrefixes orders prefixes deterministically (address, then length)
// so every map walk over RIB state replays identically run to run.
func sortPrefixes(ps []addr.Prefix) {
	sort.Slice(ps, func(i, j int) bool { return prefixLess(ps[i], ps[j]) })
}

func prefixLess(a, b addr.Prefix) bool {
	if a.Addr != b.Addr {
		return a.Addr < b.Addr
	}
	return a.Len < b.Len
}
