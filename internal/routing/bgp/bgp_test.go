package bgp

import (
	"testing"

	"github.com/evolvable-net/evolve/internal/addr"
	"github.com/evolvable-net/evolve/internal/topology"
)

// chain builds a provider chain T ← M ← S (T provides M, M provides S),
// one router each.
func chain(t *testing.T) (*topology.Network, [3]topology.ASN) {
	t.Helper()
	b := topology.NewBuilder()
	dT := b.AddDomain("T")
	dM := b.AddDomain("M")
	dS := b.AddDomain("S")
	rT := b.AddRouter(dT, "")
	rM := b.AddRouter(dM, "")
	rS := b.AddRouter(dS, "")
	b.Provide(rT, rM, 10)
	b.Provide(rM, rS, 10)
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return n, [3]topology.ASN{dT.ASN, dM.ASN, dS.ASN}
}

func TestChainPropagation(t *testing.T) {
	n, as := chain(t)
	s := NewSystem(n)
	s.Converge()
	// T reaches S's prefix through M.
	r, ok := s.BestRoute(as[0], n.Domain(as[2]).Prefix)
	if !ok {
		t.Fatal("T has no route to S")
	}
	if len(r.Path) != 2 || r.Path[0] != as[1] || r.Path[1] != as[2] {
		t.Errorf("path = %v", r.Path)
	}
	if r.Origin() != as[2] || r.NextHop() != as[1] {
		t.Errorf("origin %d nexthop %d", r.Origin(), r.NextHop())
	}
	// Everyone reaches everyone in a chain (customer routes export up,
	// provider routes export down).
	for _, a := range as {
		for _, b := range as {
			if _, ok := s.Lookup(a, n.Domain(b).Prefix.Addr+1); !ok {
				t.Errorf("AS%d has no route to AS%d", a, b)
			}
		}
	}
}

func TestSelfRouteWins(t *testing.T) {
	n, as := chain(t)
	s := NewSystem(n)
	r, ok := s.BestRoute(as[1], n.Domain(as[1]).Prefix)
	if !ok || len(r.Path) != 0 || r.LocalPref != prefSelf {
		t.Errorf("self route = %+v ok %v", r, ok)
	}
}

// valleyTopology: two stubs (A, B) both customers of two providers (P, Q);
// P and Q peer. The valley-free property forbids A→P→(peer)Q→B? No —
// peer-learned routes export to customers, so P→Q→B is fine; what is
// forbidden is transit *through* a customer or between two peers via a
// third: build stub X customer of P and Q, and check X never transits
// P→X→Q.
func TestNoCustomerTransit(t *testing.T) {
	b := topology.NewBuilder()
	dP := b.AddDomain("P")
	dQ := b.AddDomain("Q")
	dX := b.AddDomain("X")
	rP := b.AddRouter(dP, "")
	rQ := b.AddRouter(dQ, "")
	rX := b.AddRouter(dX, "")
	// X is a customer of both P and Q. P and Q are NOT directly connected.
	b.Provide(rP, rX, 10)
	b.Provide(rQ, rX, 10)
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s := NewSystem(n)
	s.Converge()
	// P must have no route to Q: the only physical path is through the
	// shared customer X, which must not provide transit.
	if _, ok := s.BestRoute(dP.ASN, n.Domain(dQ.ASN).Prefix); ok {
		t.Error("customer X leaked transit between its providers")
	}
	// But X reaches both.
	if _, ok := s.BestRoute(dX.ASN, n.Domain(dP.ASN).Prefix); !ok {
		t.Error("X cannot reach P")
	}
	if _, ok := s.BestRoute(dX.ASN, n.Domain(dQ.ASN).Prefix); !ok {
		t.Error("X cannot reach Q")
	}
}

func TestNoPeerToPeerTransit(t *testing.T) {
	// A —peer— B —peer— C: B must not give A a route to C.
	b := topology.NewBuilder()
	dA := b.AddDomain("A")
	dB := b.AddDomain("B")
	dC := b.AddDomain("C")
	rA := b.AddRouter(dA, "")
	rB := b.AddRouter(dB, "")
	rC := b.AddRouter(dC, "")
	b.Peer(rA, rB, 10)
	b.Peer(rB, rC, 10)
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s := NewSystem(n)
	s.Converge()
	if _, ok := s.BestRoute(dA.ASN, n.Domain(dC.ASN).Prefix); ok {
		t.Error("peer-learned route exported to another peer")
	}
	if _, ok := s.BestRoute(dA.ASN, n.Domain(dB.ASN).Prefix); !ok {
		t.Error("direct peer route missing")
	}
}

func TestPreferCustomerOverPeerOverProvider(t *testing.T) {
	// D originates a prefix reachable by X three ways: via customer C,
	// via peer P, via provider V. X must pick the customer route despite
	// equal path length.
	b := topology.NewBuilder()
	dX := b.AddDomain("X")
	dC := b.AddDomain("C")
	dP := b.AddDomain("P")
	dV := b.AddDomain("V")
	dD := b.AddDomain("D")
	rX := b.AddRouter(dX, "")
	rC := b.AddRouter(dC, "")
	rP := b.AddRouter(dP, "")
	rV := b.AddRouter(dV, "")
	rD := b.AddRouter(dD, "")
	b.Provide(rX, rC, 10) // C is X's customer
	b.Peer(rX, rP, 10)
	b.Provide(rV, rX, 10) // V is X's provider
	// D is a customer of all three of C, P, V, so each of them exports
	// D's prefix to X.
	b.Provide(rC, rD, 10)
	b.Provide(rP, rD, 10)
	b.Provide(rV, rD, 10)
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s := NewSystem(n)
	r, ok := s.BestRoute(dX.ASN, n.Domain(dD.ASN).Prefix)
	if !ok {
		t.Fatal("no route")
	}
	if r.NextHop() != dC.ASN {
		t.Errorf("next hop = AS%d, want customer AS%d", r.NextHop(), dC.ASN)
	}
	if r.LocalPref != prefCustomer {
		t.Errorf("localpref = %d", r.LocalPref)
	}
}

func TestShorterPathWinsAtEqualPref(t *testing.T) {
	// X's two customers C1 and C2 both lead to D: C1 directly (D customer
	// of C1), C2 via an extra hop (D customer of E, E customer of C2).
	b := topology.NewBuilder()
	dX := b.AddDomain("X")
	dC1 := b.AddDomain("C1")
	dC2 := b.AddDomain("C2")
	dE := b.AddDomain("E")
	dD := b.AddDomain("D")
	rX := b.AddRouter(dX, "")
	rC1 := b.AddRouter(dC1, "")
	rC2 := b.AddRouter(dC2, "")
	rE := b.AddRouter(dE, "")
	rD := b.AddRouter(dD, "")
	b.Provide(rX, rC1, 10)
	b.Provide(rX, rC2, 10)
	b.Provide(rC2, rE, 10)
	b.Provide(rC1, rD, 10)
	b.Provide(rE, rD, 10)
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s := NewSystem(n)
	r, ok := s.BestRoute(dX.ASN, n.Domain(dD.ASN).Prefix)
	if !ok || r.NextHop() != dC1.ASN || len(r.Path) != 2 {
		t.Errorf("route = %+v ok %v, want via C1", r, ok)
	}
}

func TestAnycastOption1MultiOrigin(t *testing.T) {
	// Ring of 6 peered domains; ASes 1 and 4 originate the same anycast
	// host prefix. Peer routes don't transit, so each AS only hears the
	// anycast from direct peers; adjacent ASes resolve to their neighbour.
	n, err := topology.RingOfDomains(6, topology.GenConfig{Seed: 1, RoutersPerDomain: 1})
	if err != nil {
		t.Fatal(err)
	}
	asns := n.ASNs()
	a, _ := addr.Option1Address(0)
	hp := addr.HostPrefix(a)
	s := NewSystem(n)
	s.Originate(asns[0], hp)
	s.Originate(asns[3], hp)
	s.Converge()
	// Ring is 0-1-2-3-4-5-0, peer links only: each AS hears the anycast
	// only from direct peers and resolves to the adjacent origin.
	r, ok := s.BestRoute(asns[1], hp)
	if !ok || r.Origin() != asns[0] {
		t.Errorf("AS%d anycast route = %+v ok %v", asns[1], r, ok)
	}
	r, ok = s.BestRoute(asns[2], hp)
	if !ok || r.Origin() != asns[3] {
		t.Errorf("AS%d anycast route = %+v ok %v", asns[2], r, ok)
	}
	r, ok = s.BestRoute(asns[4], hp)
	if !ok || r.Origin() != asns[3] {
		t.Errorf("AS%d anycast route = %+v ok %v", asns[4], r, ok)
	}
	// With a single origin, ASes two peer-hops away hear nothing (peer
	// routes are not re-exported to peers). This is exactly why option 1
	// requires ISPs to propagate anycast routes.
	s2 := NewSystem(n)
	s2.Originate(asns[0], hp)
	s2.Converge()
	if _, ok := s2.BestRoute(asns[2], hp); ok {
		t.Error("peer-only ring unexpectedly propagated anycast two hops")
	}
	if _, ok := s2.BestRoute(asns[1], hp); !ok {
		t.Error("adjacent peer lost the anycast route")
	}
}

func TestAnycastOption1ThroughProviders(t *testing.T) {
	// Transit-stub: anycast origin in one stub is reachable from every
	// other stub through the provider hierarchy.
	n, err := topology.TransitStub(2, 3, 0, topology.GenConfig{Seed: 3, RoutersPerDomain: 2})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := addr.Option1Address(0)
	hp := addr.HostPrefix(a)
	origin := n.DomainByName("S0.0").ASN
	s := NewSystem(n)
	s.Originate(origin, hp)
	s.Converge()
	for _, asn := range n.ASNs() {
		r, ok := s.BestRoute(asn, hp)
		if asn == origin {
			continue
		}
		if !ok {
			t.Errorf("AS%d (%s) has no anycast route", asn, n.Domain(asn).Name)
			continue
		}
		if r.Origin() != origin {
			t.Errorf("AS%d anycast origin = %d", asn, r.Origin())
		}
	}
}

func TestOriginateToNoExport(t *testing.T) {
	n, as := chain(t) // T ← M ← S
	s := NewSystem(n)
	p := addr.MustParsePrefix("200.0.0.1/32")
	// S advertises the host route only to M; T must never see it.
	s.OriginateTo(as[2], p, as[1])
	s.Converge()
	r, ok := s.BestRoute(as[1], p)
	if !ok || !r.NoExport || r.Origin() != as[2] {
		t.Errorf("M's selective route = %+v ok %v", r, ok)
	}
	if _, ok := s.BestRoute(as[0], p); ok {
		t.Error("NO_EXPORT route leaked upstream to T")
	}
}

func TestWithdraw(t *testing.T) {
	n, as := chain(t)
	s := NewSystem(n)
	p := addr.MustParsePrefix("200.0.0.1/32")
	s.Originate(as[2], p)
	s.Converge()
	if _, ok := s.BestRoute(as[0], p); !ok {
		t.Fatal("route missing before withdraw")
	}
	if !s.Withdraw(as[2], p) {
		t.Fatal("withdraw reported nothing removed")
	}
	s.Converge()
	if _, ok := s.BestRoute(as[0], p); ok {
		t.Error("route survives withdrawal")
	}
	if s.Withdraw(as[2], p) {
		t.Error("second withdraw reported removal")
	}
}

func TestLookupLongestPrefix(t *testing.T) {
	n, as := chain(t)
	s := NewSystem(n)
	// S originates a /32 inside its own /16; T must pick the /32 route's
	// origin for that host but the /16 for others. (Both originate at S
	// here, but the point is LPM selects the more specific.)
	host := n.Domain(as[2]).Prefix.Addr + 77
	s.Originate(as[2], addr.HostPrefix(host))
	s.Converge()
	r, ok := s.Lookup(as[0], host)
	if !ok || r.Prefix.Len != 32 {
		t.Errorf("lookup host = %+v ok %v", r, ok)
	}
	r, ok = s.Lookup(as[0], host+1)
	if !ok || r.Prefix.Len != 16 {
		t.Errorf("lookup neighbour = %+v ok %v", r, ok)
	}
}

func TestASPath(t *testing.T) {
	n, as := chain(t)
	s := NewSystem(n)
	dst := n.Domain(as[2]).Prefix.Addr + 1
	path, ok := s.ASPath(as[0], dst)
	if !ok || len(path) != 3 || path[0] != as[0] || path[1] != as[1] || path[2] != as[2] {
		t.Errorf("ASPath = %v ok %v", path, ok)
	}
	// Path to self is just the AS.
	self, ok := s.ASPath(as[0], n.Domain(as[0]).Prefix.Addr+1)
	if !ok || len(self) != 1 {
		t.Errorf("self path = %v", self)
	}
}

func TestTableSizeGrowsWithOption1Groups(t *testing.T) {
	// The §3.2 scalability concern: every option-1 anycast group adds a
	// route to every AS's table.
	n, err := topology.TransitStub(2, 2, 0, topology.GenConfig{Seed: 9, RoutersPerDomain: 1})
	if err != nil {
		t.Fatal(err)
	}
	s := NewSystem(n)
	s.Converge()
	base := s.TableSize(n.ASNs()[0])
	origin := n.ASNs()[1]
	const groups = 5
	for g := uint32(0); g < groups; g++ {
		a, _ := addr.Option1Address(g)
		s.Originate(origin, addr.HostPrefix(a))
	}
	s.Converge()
	if got := s.TableSize(n.ASNs()[0]); got != base+groups {
		t.Errorf("table grew %d, want %d", got-base, groups)
	}
}

func TestLinkBetween(t *testing.T) {
	n, as := chain(t)
	s := NewSystem(n)
	l, ok := s.LinkBetween(as[0], as[1])
	if !ok || n.DomainOf(l.From) != as[0] || n.DomainOf(l.To) != as[1] {
		t.Errorf("link = %+v ok %v", l, ok)
	}
	if _, ok := s.LinkBetween(as[0], as[2]); ok {
		t.Error("non-adjacent domains reported linked")
	}
}

func TestConvergeDeterministic(t *testing.T) {
	n1, _ := topology.TransitStub(3, 3, 0.4, topology.GenConfig{Seed: 5})
	n2, _ := topology.TransitStub(3, 3, 0.4, topology.GenConfig{Seed: 5})
	s1, s2 := NewSystem(n1), NewSystem(n2)
	s1.Converge()
	s2.Converge()
	for _, asn := range n1.ASNs() {
		for _, other := range n1.ASNs() {
			p := n1.Domain(other).Prefix
			r1, ok1 := s1.BestRoute(asn, p)
			r2, ok2 := s2.BestRoute(asn, p)
			if ok1 != ok2 || (ok1 && !routeEqual(r1, r2)) {
				t.Fatalf("AS%d route to %s differs across identical runs", asn, p)
			}
		}
	}
}

func TestFullReachabilityTransitStub(t *testing.T) {
	n, err := topology.TransitStub(3, 4, 0.5, topology.GenConfig{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	s := NewSystem(n)
	s.Converge()
	for _, a := range n.ASNs() {
		for _, b := range n.ASNs() {
			if _, ok := s.BestRoute(a, n.Domain(b).Prefix); !ok {
				t.Errorf("AS%d (%s) cannot reach AS%d (%s)",
					a, n.Domain(a).Name, b, n.Domain(b).Name)
			}
		}
	}
}

func BenchmarkConvergeTransitStub(b *testing.B) {
	n, err := topology.TransitStub(4, 8, 0.3, topology.GenConfig{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := NewSystem(n)
		s.Converge()
	}
}

// TestLazyMatchesEager checks that querying prefixes lazily (no Converge
// call) yields exactly the routing that a full up-front Converge does,
// including across an OriginateTo that invalidates one prefix.
func TestLazyMatchesEager(t *testing.T) {
	n, err := topology.TransitStub(3, 5, 0.4, topology.GenConfig{Seed: 33, RoutersPerDomain: 2, HostsPerDomain: 1})
	if err != nil {
		t.Fatal(err)
	}
	lazy := NewSystem(n)
	eager := NewSystem(n)
	eager.Converge()

	compare := func() {
		t.Helper()
		for _, asn := range n.ASNs() {
			for _, dstASN := range n.ASNs() {
				p := n.Domain(dstASN).Prefix
				lr, lok := lazy.BestRoute(asn, p)
				er, eok := eager.BestRoute(asn, p)
				if lok != eok || (lok && !routeEqual(lr, er)) {
					t.Fatalf("BestRoute(AS%d, %v): lazy %v/%v vs eager %v/%v", asn, p, lr, lok, er, eok)
				}
				dst := n.Domain(dstASN).Prefix.Addr
				lr, lok = lazy.Lookup(asn, dst)
				er, eok = eager.Lookup(asn, dst)
				if lok != eok || (lok && !routeEqual(lr, er)) {
					t.Fatalf("Lookup(AS%d, %v): lazy vs eager differ", asn, dst)
				}
				lp, lok := lazy.ASPath(asn, dst)
				ep, eok := eager.ASPath(asn, dst)
				if lok != eok || len(lp) != len(ep) {
					t.Fatalf("ASPath(AS%d, %v): lazy %v vs eager %v", asn, dst, lp, ep)
				}
				for i := range lp {
					if lp[i] != ep[i] {
						t.Fatalf("ASPath(AS%d, %v): lazy %v vs eager %v", asn, dst, lp, ep)
					}
				}
			}
			if ls, es := lazy.TableSize(asn), eager.TableSize(asn); ls != es {
				t.Fatalf("TableSize(AS%d): lazy %d vs eager %d", asn, ls, es)
			}
		}
	}
	compare()

	// Mutate one prefix on both and re-compare: the lazy system must
	// invalidate exactly that prefix and reconverge it on demand.
	anycastAS := n.ASNs()[0]
	host := addr.Prefix{Addr: n.Domain(anycastAS).Prefix.Addr + 7, Len: 32}
	peer := lazy.net.AllNeighbors()[anycastAS][0].ASN
	lazy.OriginateTo(anycastAS, host, peer)
	eager.OriginateTo(anycastAS, host, peer)
	eager.Converge()
	compare()
}
