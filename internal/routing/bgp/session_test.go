package bgp

import (
	"testing"
	"testing/quick"

	"github.com/evolvable-net/evolve/internal/addr"
	"github.com/evolvable-net/evolve/internal/netsim"
	"github.com/evolvable-net/evolve/internal/topology"
)

// runSessions builds the event-driven system over net and runs it to
// quiescence.
func runSessions(net *topology.Network) (*SessionSystem, *netsim.Engine) {
	eng := netsim.NewEngine()
	fab := netsim.NewFabric(eng)
	ss := NewSessionSystem(net, fab)
	eng.Run(0)
	return ss, eng
}

// TestSessionMatchesFixpoint: the asynchronous message-passing BGP and
// the synchronous fixpoint solver converge to the same loc-RIBs on random
// internets — policy-safe configurations have a unique stable routing.
func TestSessionMatchesFixpoint(t *testing.T) {
	f := func(seed int64) bool {
		net, err := topology.TransitStub(1+int(uint64(seed)%3), 2+int(uint64(seed)%3), 0.4,
			topology.GenConfig{Seed: seed, RoutersPerDomain: 2})
		if err != nil {
			return false
		}
		fix := NewSystem(net)
		fix.Converge()
		ss, _ := runSessions(net)
		for _, holder := range net.ASNs() {
			for _, origin := range net.ASNs() {
				p := net.Domain(origin).Prefix
				fr, fok := fix.BestRoute(holder, p)
				sr, sok := ss.Speakers[holder].Best(p)
				if fok != sok {
					t.Logf("seed %d: AS%d→%s presence differs (fix %v session %v)",
						seed, holder, p, fok, sok)
					return false
				}
				if fok && !routeEqual(fr, sr) {
					t.Logf("seed %d: AS%d→%s differs:\n fix %+v\n ses %+v",
						seed, holder, p, fr, sr)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestSessionMatchesFixpointBA(t *testing.T) {
	f := func(seed int64) bool {
		net, err := topology.BarabasiAlbert(8+int(uint64(seed)%6), 2,
			topology.GenConfig{Seed: seed, RoutersPerDomain: 1})
		if err != nil {
			return false
		}
		fix := NewSystem(net)
		fix.Converge()
		ss, _ := runSessions(net)
		for _, holder := range net.ASNs() {
			for _, origin := range net.ASNs() {
				p := net.Domain(origin).Prefix
				fr, fok := fix.BestRoute(holder, p)
				sr, sok := ss.Speakers[holder].Best(p)
				if fok != sok || (fok && !routeEqual(fr, sr)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestSessionAnycastMultiOrigin(t *testing.T) {
	// Two stubs originate the same anycast host route asynchronously;
	// every AS converges to the same choice the fixpoint makes.
	net, err := topology.TransitStub(2, 3, 0, topology.GenConfig{Seed: 8, RoutersPerDomain: 1})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := addr.Option1Address(0)
	hp := addr.HostPrefix(a)
	o1 := net.DomainByName("S0.0").ASN
	o2 := net.DomainByName("S1.2").ASN

	fix := NewSystem(net)
	fix.Originate(o1, hp)
	fix.Originate(o2, hp)
	fix.Converge()

	eng := netsim.NewEngine()
	fab := netsim.NewFabric(eng)
	ss := NewSessionSystem(net, fab)
	eng.Run(0)
	ss.Speakers[o1].Originate(hp)
	ss.Speakers[o2].Originate(hp)
	eng.Run(0)

	for _, asn := range net.ASNs() {
		fr, fok := fix.BestRoute(asn, hp)
		sr, sok := ss.Speakers[asn].Best(hp)
		if fok != sok || (fok && !routeEqual(fr, sr)) {
			t.Errorf("AS%d anycast differs: fix %+v(%v) session %+v(%v)", asn, fr, fok, sr, sok)
		}
	}
}

func TestSessionWithdrawPropagates(t *testing.T) {
	net, err := topology.TransitStub(2, 2, 0, topology.GenConfig{Seed: 9, RoutersPerDomain: 1})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := addr.Option1Address(0)
	hp := addr.HostPrefix(a)
	origin := net.DomainByName("S1.1").ASN
	other := net.DomainByName("S0.0").ASN

	eng := netsim.NewEngine()
	fab := netsim.NewFabric(eng)
	ss := NewSessionSystem(net, fab)
	eng.Run(0)
	ss.Speakers[origin].Originate(hp)
	eng.Run(0)
	if _, ok := ss.Speakers[other].Best(hp); !ok {
		t.Fatal("anycast route did not propagate")
	}
	ss.Speakers[origin].Withdraw(hp)
	eng.Run(0)
	if r, ok := ss.Speakers[other].Best(hp); ok {
		t.Errorf("withdrawn route survives: %+v", r)
	}
	// Originals unaffected.
	if _, ok := ss.Speakers[other].Best(net.Domain(origin).Prefix); !ok {
		t.Error("aggregate lost during anycast withdrawal")
	}
}

func TestSessionNoExportScoping(t *testing.T) {
	// Chain T ← M ← S: S advertises a host route only to M with
	// NO_EXPORT; T must never learn it, asynchronously too.
	b := topology.NewBuilder()
	dT := b.AddDomain("T")
	dM := b.AddDomain("M")
	dS := b.AddDomain("S")
	rT := b.AddRouter(dT, "")
	rM := b.AddRouter(dM, "")
	rS := b.AddRouter(dS, "")
	b.Provide(rT, rM, 10)
	b.Provide(rM, rS, 10)
	net, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	eng := netsim.NewEngine()
	fab := netsim.NewFabric(eng)
	ss := NewSessionSystem(net, fab)
	eng.Run(0)
	p := addr.MustParsePrefix("200.0.0.1/32")
	ss.Speakers[dS.ASN].OriginateTo(p, dM.ASN)
	eng.Run(0)
	if r, ok := ss.Speakers[dM.ASN].Best(p); !ok || !r.NoExport {
		t.Errorf("M's scoped route = %+v ok %v", r, ok)
	}
	if _, ok := ss.Speakers[dT.ASN].Best(p); ok {
		t.Error("NO_EXPORT leaked upstream asynchronously")
	}
}

func TestSessionUpdateCounts(t *testing.T) {
	net, err := topology.TransitStub(2, 4, 0.3, topology.GenConfig{Seed: 10, RoutersPerDomain: 1})
	if err != nil {
		t.Fatal(err)
	}
	ss, eng := runSessions(net)
	if ss.TotalUpdates() == 0 {
		t.Error("no updates counted")
	}
	if eng.Processed() == 0 {
		t.Error("no events processed")
	}
}
