package bgp

import (
	"testing"
	"testing/quick"

	"github.com/evolvable-net/evolve/internal/addr"
	"github.com/evolvable-net/evolve/internal/netsim"
	"github.com/evolvable-net/evolve/internal/topology"
)

// runSessions builds the event-driven system over net and runs it to
// quiescence with the default session timers.
func runSessions(net *topology.Network) (*SessionSystem, *netsim.Engine) {
	eng := netsim.NewEngine()
	fab := netsim.NewFabric(eng)
	ss := NewSessionSystem(net, fab)
	if _, ok := ss.RunToConvergence(0); !ok {
		panic("session system did not quiesce")
	}
	return ss, eng
}

// providerChain builds the 3-AS chain T ← M ← S (T provides transit to
// M, M to S) used by the pinned-count and loss tests.
func providerChain(t *testing.T) (*topology.Network, topology.ASN, topology.ASN, topology.ASN) {
	t.Helper()
	b := topology.NewBuilder()
	dT := b.AddDomain("T")
	dM := b.AddDomain("M")
	dS := b.AddDomain("S")
	rT := b.AddRouter(dT, "")
	rM := b.AddRouter(dM, "")
	rS := b.AddRouter(dS, "")
	b.Provide(rT, rM, 10)
	b.Provide(rM, rS, 10)
	net, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return net, dT.ASN, dM.ASN, dS.ASN
}

func chainSystem(t *testing.T, cfg SessionConfig) (*topology.Network, *SessionSystem, *netsim.Fabric, topology.ASN, topology.ASN, topology.ASN) {
	t.Helper()
	net, asT, asM, asS := providerChain(t)
	eng := netsim.NewEngine()
	fab := netsim.NewFabric(eng)
	ss := NewSessionSystemConfig(net, fab, cfg)
	return net, ss, fab, asT, asM, asS
}

// mustConverge runs to quiescence and fails the test on timeout.
func mustConverge(t *testing.T, ss *SessionSystem) netsim.Time {
	t.Helper()
	at, ok := ss.RunToConvergence(0)
	if !ok {
		t.Fatal("session system did not quiesce")
	}
	return at
}

// TestSessionMatchesFixpoint: the asynchronous message-passing BGP and
// the synchronous fixpoint solver converge to the same loc-RIBs on random
// internets — policy-safe configurations have a unique stable routing.
func TestSessionMatchesFixpoint(t *testing.T) {
	f := func(seed int64) bool {
		net, err := topology.TransitStub(1+int(uint64(seed)%3), 2+int(uint64(seed)%3), 0.4,
			topology.GenConfig{Seed: seed, RoutersPerDomain: 2})
		if err != nil {
			return false
		}
		fix := NewSystem(net)
		fix.Converge()
		ss, _ := runSessions(net)
		for _, holder := range net.ASNs() {
			for _, origin := range net.ASNs() {
				p := net.Domain(origin).Prefix
				fr, fok := fix.BestRoute(holder, p)
				sr, sok := ss.Speakers[holder].Best(p)
				if fok != sok {
					t.Logf("seed %d: AS%d→%s presence differs (fix %v session %v)",
						seed, holder, p, fok, sok)
					return false
				}
				if fok && !routeEqual(fr, sr) {
					t.Logf("seed %d: AS%d→%s differs:\n fix %+v\n ses %+v",
						seed, holder, p, fr, sr)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestSessionMatchesFixpointBA(t *testing.T) {
	f := func(seed int64) bool {
		net, err := topology.BarabasiAlbert(8+int(uint64(seed)%6), 2,
			topology.GenConfig{Seed: seed, RoutersPerDomain: 1})
		if err != nil {
			return false
		}
		fix := NewSystem(net)
		fix.Converge()
		ss, _ := runSessions(net)
		for _, holder := range net.ASNs() {
			for _, origin := range net.ASNs() {
				p := net.Domain(origin).Prefix
				fr, fok := fix.BestRoute(holder, p)
				sr, sok := ss.Speakers[holder].Best(p)
				if fok != sok || (fok && !routeEqual(fr, sr)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestSessionAnycastMultiOrigin(t *testing.T) {
	// Two stubs originate the same anycast host route asynchronously;
	// every AS converges to the same choice the fixpoint makes.
	net, err := topology.TransitStub(2, 3, 0, topology.GenConfig{Seed: 8, RoutersPerDomain: 1})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := addr.Option1Address(0)
	hp := addr.HostPrefix(a)
	o1 := net.DomainByName("S0.0").ASN
	o2 := net.DomainByName("S1.2").ASN

	fix := NewSystem(net)
	fix.Originate(o1, hp)
	fix.Originate(o2, hp)
	fix.Converge()

	eng := netsim.NewEngine()
	fab := netsim.NewFabric(eng)
	ss := NewSessionSystem(net, fab)
	mustConverge(t, ss)
	ss.Speakers[o1].Originate(hp)
	ss.Speakers[o2].Originate(hp)
	mustConverge(t, ss)

	for _, asn := range net.ASNs() {
		fr, fok := fix.BestRoute(asn, hp)
		sr, sok := ss.Speakers[asn].Best(hp)
		if fok != sok || (fok && !routeEqual(fr, sr)) {
			t.Errorf("AS%d anycast differs: fix %+v(%v) session %+v(%v)", asn, fr, fok, sr, sok)
		}
	}
}

func TestSessionWithdrawPropagates(t *testing.T) {
	net, err := topology.TransitStub(2, 2, 0, topology.GenConfig{Seed: 9, RoutersPerDomain: 1})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := addr.Option1Address(0)
	hp := addr.HostPrefix(a)
	origin := net.DomainByName("S1.1").ASN
	other := net.DomainByName("S0.0").ASN

	eng := netsim.NewEngine()
	fab := netsim.NewFabric(eng)
	ss := NewSessionSystem(net, fab)
	mustConverge(t, ss)
	ss.Speakers[origin].Originate(hp)
	mustConverge(t, ss)
	if _, ok := ss.Speakers[other].Best(hp); !ok {
		t.Fatal("anycast route did not propagate")
	}
	ss.Speakers[origin].Withdraw(hp)
	mustConverge(t, ss)
	if r, ok := ss.Speakers[other].Best(hp); ok {
		t.Errorf("withdrawn route survives: %+v", r)
	}
	// Originals unaffected.
	if _, ok := ss.Speakers[other].Best(net.Domain(origin).Prefix); !ok {
		t.Error("aggregate lost during anycast withdrawal")
	}
}

func TestSessionNoExportScoping(t *testing.T) {
	// Chain T ← M ← S: S advertises a host route only to M with
	// NO_EXPORT; T must never learn it, asynchronously too.
	_, ss, _, asT, asM, asS := chainSystem(t, DefaultSessionConfig())
	mustConverge(t, ss)
	p := addr.MustParsePrefix("200.0.0.1/32")
	ss.Speakers[asS].OriginateTo(p, asM)
	mustConverge(t, ss)
	if r, ok := ss.Speakers[asM].Best(p); !ok || !r.NoExport {
		t.Errorf("M's scoped route = %+v ok %v", r, ok)
	}
	if _, ok := ss.Speakers[asT].Best(p); ok {
		t.Error("NO_EXPORT leaked upstream asynchronously")
	}
}

func TestSessionUpdateCounts(t *testing.T) {
	net, err := topology.TransitStub(2, 4, 0.3, topology.GenConfig{Seed: 10, RoutersPerDomain: 1})
	if err != nil {
		t.Fatal(err)
	}
	ss, eng := runSessions(net)
	if ss.TotalUpdates() == 0 {
		t.Error("no updates counted")
	}
	if eng.Processed() == 0 {
		t.Error("no events processed")
	}
	// A clean cold start advertises only — with Adj-RIB-Out diffing
	// there is nothing to withdraw, gratuitously or otherwise.
	if w := ss.TotalWithdrawals(); w != 0 {
		t.Errorf("cold start sent %d withdrawals, want 0", w)
	}
}

// TestOriginateAfterLearn is the regression test for the old
// OriginateTo bugs: the always-true NoExport and the loc guard that kept
// a previously neighbor-learned route even though the origination wins
// the decision process, leaving loc and announcements divergent.
func TestOriginateAfterLearn(t *testing.T) {
	net, asT, asM, asS := providerChain(t)
	hp := addr.MustParsePrefix("200.0.0.1/32")

	fix := NewSystem(net)
	fix.Originate(asT, hp)
	fix.Converge()
	fix.OriginateTo(asS, hp, asM)
	fix.Converge()

	eng := netsim.NewEngine()
	fab := netsim.NewFabric(eng)
	ss := NewSessionSystemConfig(net, fab, DefaultSessionConfig())
	mustConverge(t, ss)
	// S learns hp from T via M first…
	ss.Speakers[asT].Originate(hp)
	mustConverge(t, ss)
	if r, ok := ss.Speakers[asS].Best(hp); !ok || r.Origin() != asT {
		t.Fatalf("S should have learned hp from T first, got %+v ok %v", r, ok)
	}
	// …then originates it itself: the self route must displace the
	// learned one (prefSelf wins reselect), exactly as in the fixpoint.
	ss.Speakers[asS].OriginateTo(hp, asM)
	mustConverge(t, ss)

	sr, ok := ss.Speakers[asS].Best(hp)
	if !ok || sr.Origin() != -1 {
		t.Fatalf("S's origination did not displace the learned route: %+v ok %v", sr, ok)
	}
	if !sr.NoExport {
		t.Error("scoped origination lost its NO_EXPORT bit")
	}
	for _, asn := range []topology.ASN{asT, asM, asS} {
		fr, fok := fix.BestRoute(asn, hp)
		got, gok := ss.Speakers[asn].Best(hp)
		if fok != gok || (fok && !routeEqual(fr, got)) {
			t.Errorf("AS%d: fix %+v(%v) session %+v(%v)", asn, fr, fok, got, gok)
		}
	}
}

// TestNoGratuitousWithdraws pins exact message counts on the provider
// chain in legacy mode (sessions pre-established, MRAI off, no replay
// traffic), where every UPDATE is accounted for by hand:
//
//	cold start: T, M, S each originate their aggregate.
//	  T→M pT; M→T pM, M→S pM; S→M pS        = 4
//	  M re-exports pT to its customer S      = 5
//	  M re-exports customer route pS to T    = 6   (0 withdrawals)
//	anycast at S: S→M hp; M re-exports to T  = +2  (0 withdrawals)
//	withdraw at S: S→M, M→T                  = +2  (exactly 2 withdrawals)
//
// The old announce() would also have withdrawn toward neighbors that
// never heard an advert (e.g. M→S on the anycast withdraw), inflating
// the counters the convergence-dynamics experiment reports.
func TestNoGratuitousWithdraws(t *testing.T) {
	_, ss, _, _, _, asS := chainSystem(t, SessionConfig{})
	eng := ss.Engine()
	eng.Run(0)
	if u, w := ss.TotalUpdates(), ss.TotalWithdrawals(); u != 6 || w != 0 {
		t.Fatalf("cold start: %d updates %d withdrawals, want 6 and 0", u, w)
	}
	hp := addr.MustParsePrefix("200.0.0.1/32")
	ss.Speakers[asS].Originate(hp)
	eng.Run(0)
	if u, w := ss.TotalUpdates(), ss.TotalWithdrawals(); u != 8 || w != 0 {
		t.Fatalf("after anycast originate: %d updates %d withdrawals, want 8 and 0", u, w)
	}
	ss.Speakers[asS].Withdraw(hp)
	eng.Run(0)
	if u, w := ss.TotalUpdates(), ss.TotalWithdrawals(); u != 10 || w != 2 {
		t.Fatalf("after withdraw: %d updates %d withdrawals, want 10 and 2", u, w)
	}
}

// TestLostWithdrawPermanentInLegacy documents the failure mode the
// session machinery exists to fix: in the fire-and-forget model a
// WITHDRAW dropped on a down link is gone forever — the stale route (a
// permanent black hole) survives the link's restoration indefinitely.
func TestLostWithdrawPermanentInLegacy(t *testing.T) {
	_, ss, fab, _, asM, asS := chainSystem(t, SessionConfig{})
	eng := ss.Engine()
	eng.Run(0)
	hp := addr.MustParsePrefix("200.0.0.1/32")
	ss.Speakers[asS].Originate(hp)
	eng.Run(0)

	fab.FailLink(int(asM), int(asS))
	ss.Speakers[asS].Withdraw(hp) // the WITHDRAW is dropped silently
	eng.Run(0)
	fab.RestoreLink(int(asM), int(asS))
	eng.Run(0)

	if _, ok := ss.Speakers[asM].Best(hp); !ok {
		t.Fatal("legacy mode unexpectedly recovered the lost WITHDRAW — " +
			"this ablation should demonstrate the permanent black hole")
	}
}

// TestLostWithdrawRecoveredByDownResync: an outage longer than the hold
// timer takes the session down on both sides; the WITHDRAW sent into the
// outage is dropped, but re-establishment replays the origin's full
// Adj-RIB-Out — which no longer contains the prefix — after the peer
// flushed, so the stale route cannot survive.
func TestLostWithdrawRecoveredByDownResync(t *testing.T) {
	_, ss, fab, asT, asM, asS := chainSystem(t, DefaultSessionConfig())
	eng := ss.Engine()
	mustConverge(t, ss)
	hp := addr.MustParsePrefix("200.0.0.1/32")
	ss.Speakers[asS].Originate(hp)
	mustConverge(t, ss)
	if _, ok := ss.Speakers[asT].Best(hp); !ok {
		t.Fatal("anycast route did not reach T")
	}

	hold := ss.Config().Hold
	now := eng.Now()
	eng.At(now+10, func() { fab.FailLink(int(asM), int(asS)) })
	eng.At(now+20, func() { ss.Speakers[asS].Withdraw(hp) })
	// Restore well after hold expiry but inside the quiescence window the
	// down-flush activity opened, so one RunToConvergence covers the
	// whole outage-and-recovery arc.
	eng.At(now+10+2*hold, func() { fab.RestoreLink(int(asM), int(asS)) })
	mustConverge(t, ss)

	for _, asn := range []topology.ASN{asT, asM} {
		if r, ok := ss.Speakers[asn].Best(hp); ok {
			t.Errorf("AS%d still routes the withdrawn prefix: %+v", asn, r)
		}
	}
	if _, downs := ss.SessionTransitions(); downs == 0 {
		t.Error("expected hold-timer expiry to take the session down")
	}
	if ss.SessionState(asM, asS) != SessEstablished || ss.SessionState(asS, asM) != SessEstablished {
		t.Error("session did not re-establish after link restoration")
	}
	// The aggregate must have come back with the replay.
	for _, asn := range []topology.ASN{asT, asM} {
		if _, ok := ss.Speakers[asn].Best(ss.net.Domain(asS).Prefix); !ok {
			t.Errorf("AS%d lost S's aggregate across the outage", asn)
		}
	}
}

// TestLostWithdrawRecoveredBySeqResync: a flap shorter than the hold
// timer never takes the session down, so there is no flush/replay — but
// the dropped WITHDRAW consumed a sequence number, so the first message
// delivered after the flap exposes a gap and triggers a route-refresh
// resync. The still-stale entry is deleted at the end-of-RIB marker.
func TestLostWithdrawRecoveredBySeqResync(t *testing.T) {
	cfg := SessionConfig{Keepalive: 2000, Hold: 50000, MRAI: 0}
	_, ss, fab, asT, asM, asS := chainSystem(t, cfg)
	eng := ss.Engine()
	mustConverge(t, ss)
	hp := addr.MustParsePrefix("200.0.0.1/32")
	ss.Speakers[asS].Originate(hp)
	mustConverge(t, ss)
	if _, ok := ss.Speakers[asT].Best(hp); !ok {
		t.Fatal("anycast route did not reach T")
	}
	_, downsBefore := ss.SessionTransitions()

	now := eng.Now()
	eng.At(now+10, func() { fab.FailLink(int(asM), int(asS)) })
	eng.At(now+20, func() { ss.Speakers[asS].Withdraw(hp) })
	eng.At(now+30, func() { fab.RestoreLink(int(asM), int(asS)) })
	mustConverge(t, ss)

	for _, asn := range []topology.ASN{asT, asM} {
		if r, ok := ss.Speakers[asn].Best(hp); ok {
			t.Errorf("AS%d still routes the withdrawn prefix: %+v", asn, r)
		}
	}
	if ss.TotalResyncs() == 0 {
		t.Error("expected a sequence-gap resync to have fired")
	}
	if _, downs := ss.SessionTransitions(); downs != downsBefore {
		t.Error("flap shorter than hold should not drop the session — " +
			"recovery must come from the sequence-gap path")
	}
}

// TestSessionDownFlushAndReplay: a long outage flushes the neighbor's
// routes mid-outage (withdrawing downstream) and restores them — and
// full fixpoint agreement — after the link returns.
func TestSessionDownFlushAndReplay(t *testing.T) {
	net, ss, fab, asT, asM, asS := chainSystem(t, DefaultSessionConfig())
	mustConverge(t, ss)
	pS := net.Domain(asS).Prefix

	fab.FailLink(int(asM), int(asS))
	mustConverge(t, ss)
	if _, ok := ss.Speakers[asM].Best(pS); ok {
		t.Error("M still routes S's aggregate during the outage")
	}
	if _, ok := ss.Speakers[asT].Best(pS); ok {
		t.Error("withdrawal did not propagate upstream to T")
	}
	if st := ss.SessionState(asM, asS); st != SessDown {
		t.Errorf("M's session toward S = %v, want down", st)
	}

	fab.RestoreLink(int(asM), int(asS))
	mustConverge(t, ss)
	fix := NewSystem(net)
	fix.Converge()
	for _, holder := range net.ASNs() {
		for _, origin := range net.ASNs() {
			p := net.Domain(origin).Prefix
			fr, fok := fix.BestRoute(holder, p)
			sr, sok := ss.Speakers[holder].Best(p)
			if fok != sok || (fok && !routeEqual(fr, sr)) {
				t.Errorf("AS%d→%s: fix %+v(%v) session %+v(%v)", holder, p, fr, fok, sr, sok)
			}
		}
	}
	if st := ss.SessionState(asM, asS); st != SessEstablished {
		t.Errorf("M's session toward S = %v after restore, want established", st)
	}
	_ = asT
}

// TestMRAICoalesces: changes inside one MRAI window collapse. The
// leading edge flushes immediately; a withdraw+re-originate churn within
// the armed window nets out to nothing at the timer — the neighbor never
// sees the transient.
func TestMRAICoalesces(t *testing.T) {
	cfg := SessionConfig{Keepalive: 2000, Hold: 6000, MRAI: 5000}
	_, ss, _, _, asM, asS := chainSystem(t, cfg)
	eng := ss.Engine()
	mustConverge(t, ss)
	hp := addr.MustParsePrefix("200.0.0.1/32")

	updatesBefore := ss.TotalUpdates()
	withdrawalsBefore := ss.TotalWithdrawals()
	now := eng.Now()
	eng.At(now+10, func() {
		sp := ss.Speakers[asS]
		sp.Originate(hp) // leading edge: advert flushes immediately
		sp.Withdraw(hp)  // batched…
		sp.Originate(hp) // …and cancelled out before the timer fires
	})
	mustConverge(t, ss)

	if _, ok := ss.Speakers[asM].Best(hp); !ok {
		t.Fatal("M never learned the (re-)originated prefix")
	}
	if w := ss.TotalWithdrawals() - withdrawalsBefore; w != 0 {
		t.Errorf("MRAI window leaked %d withdrawals for a net no-op churn", w)
	}
	// S advertises hp to M once; M re-exports to T once. The withdraw and
	// re-originate inside the window must not add messages.
	if u := ss.TotalUpdates() - updatesBefore; u != 2 {
		t.Errorf("churn inside one MRAI window cost %d updates, want 2", u)
	}
}
