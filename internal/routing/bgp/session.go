package bgp

import (
	"sort"

	"github.com/evolvable-net/evolve/internal/addr"
	"github.com/evolvable-net/evolve/internal/netsim"
	"github.com/evolvable-net/evolve/internal/topology"
)

// This file provides the event-driven counterpart of the synchronous
// fixpoint solver: per-AS speakers exchanging UPDATE messages over a
// netsim fabric, with the same decision process and Gao-Rexford export
// policy. For policy-safe configurations both converge to the same unique
// stable routing, which the property tests assert; the session model
// additionally measures convergence dynamics (messages, simulated time)
// at the inter-domain level.

// update is one BGP UPDATE: an advertisement (route != nil) or a
// withdrawal for a prefix.
type update struct {
	prefix addr.Prefix
	// path is the AS path as seen at the receiver (sender prepended),
	// nil for withdrawals.
	path     []topology.ASN
	noExport bool
}

// Speaker is one AS's event-driven BGP process.
type Speaker struct {
	asn    topology.ASN
	fabric *netsim.Fabric
	// neighbors maps neighbour ASN → our relationship toward it.
	neighbors map[topology.ASN]topology.Rel

	// ribIn holds the latest route heard from each neighbour per prefix.
	ribIn map[addr.Prefix]map[topology.ASN]Route
	// loc is the selected best route per prefix.
	loc map[addr.Prefix]Route
	// originated are locally injected prefixes (exportTo scoping as in
	// the fixpoint solver).
	originated []origination

	// Updates counts UPDATE messages sent (for the dynamics experiment).
	Updates uint64
}

// NewSpeaker creates the speaker for asn and attaches it to the fabric
// (node id = int(asn)).
func NewSpeaker(asn topology.ASN, fabric *netsim.Fabric, neighbors map[topology.ASN]topology.Rel) *Speaker {
	s := &Speaker{
		asn:       asn,
		fabric:    fabric,
		neighbors: neighbors,
		ribIn:     map[addr.Prefix]map[topology.ASN]Route{},
		loc:       map[addr.Prefix]Route{},
	}
	fabric.Attach(int(asn), s)
	return s
}

// Originate injects a locally originated prefix and announces it.
func (s *Speaker) Originate(p addr.Prefix) {
	s.originated = append(s.originated, origination{prefix: p})
	s.loc[p] = Route{Prefix: p, LocalPref: prefSelf}
	s.announce(p)
}

// OriginateTo injects a prefix advertised only to the listed neighbours
// with NO_EXPORT.
func (s *Speaker) OriginateTo(p addr.Prefix, neighbors ...topology.ASN) {
	scope := map[topology.ASN]bool{}
	for _, n := range neighbors {
		scope[n] = true
	}
	s.originated = append(s.originated, origination{prefix: p, exportTo: scope})
	if _, ok := s.loc[p]; !ok {
		s.loc[p] = Route{Prefix: p, LocalPref: prefSelf, NoExport: scope != nil}
	}
	for _, nb := range s.sortedNeighbors() {
		if scope[nb] {
			s.sendAdvert(nb, p, Route{Prefix: p, LocalPref: prefSelf}, true)
		}
	}
}

// Withdraw removes a local origination and propagates the withdrawal.
func (s *Speaker) Withdraw(p addr.Prefix) {
	out := s.originated[:0]
	removed := false
	for _, o := range s.originated {
		if o.prefix == p {
			removed = true
			continue
		}
		out = append(out, o)
	}
	s.originated = out
	if !removed {
		return
	}
	s.reselect(p)
}

// Best returns the speaker's selected route for p.
func (s *Speaker) Best(p addr.Prefix) (Route, bool) {
	r, ok := s.loc[p]
	return r, ok
}

// TableSize returns the loc-RIB size.
func (s *Speaker) TableSize() int { return len(s.loc) }

func (s *Speaker) sortedNeighbors() []topology.ASN {
	out := make([]topology.ASN, 0, len(s.neighbors))
	for n := range s.neighbors {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// announce advertises the current best for p to every eligible neighbour
// (or withdraws it where no longer eligible/present).
func (s *Speaker) announce(p addr.Prefix) {
	best, have := s.loc[p]
	for _, nb := range s.sortedNeighbors() {
		rel := s.neighbors[nb]
		if have && exportsTo(best, rel) && !best.hasLoop(nb) {
			s.sendAdvert(nb, p, best, false)
		} else {
			s.sendWithdraw(nb, p)
		}
	}
}

func (s *Speaker) sendAdvert(nb topology.ASN, p addr.Prefix, r Route, noExport bool) {
	s.Updates++
	s.fabric.Send(int(s.asn), int(nb), update{
		prefix:   p,
		path:     append([]topology.ASN{s.asn}, r.Path...),
		noExport: noExport || r.NoExport,
	})
}

func (s *Speaker) sendWithdraw(nb topology.ASN, p addr.Prefix) {
	s.Updates++
	s.fabric.Send(int(s.asn), int(nb), update{prefix: p})
}

// Receive implements netsim.Handler.
func (s *Speaker) Receive(from int, msg any) {
	u, ok := msg.(update)
	if !ok {
		return
	}
	nbr := topology.ASN(from)
	rel, adjacent := s.neighbors[nbr]
	if !adjacent {
		return
	}
	in := s.ribIn[u.prefix]
	if in == nil {
		in = map[topology.ASN]Route{}
		s.ribIn[u.prefix] = in
	}
	if u.path == nil {
		delete(in, nbr)
	} else {
		in[nbr] = Route{
			Prefix:       u.prefix,
			Path:         u.path,
			LocalPref:    prefFor(rel),
			NoExport:     u.noExport,
			FromCustomer: rel == topology.RelProvider,
		}
	}
	s.reselect(u.prefix)
}

// reselect re-runs the decision process for p and re-announces on change.
func (s *Speaker) reselect(p addr.Prefix) {
	var best Route
	have := false
	for _, o := range s.originated {
		if o.prefix == p {
			best = Route{Prefix: p, LocalPref: prefSelf, NoExport: o.exportTo != nil}
			have = true
		}
	}
	for _, cand := range s.ribInSorted(p) {
		if cand.hasLoop(s.asn) {
			continue
		}
		if !have || better(cand, best) {
			best, have = cand, true
		}
	}
	cur, had := s.loc[p]
	switch {
	case !have && !had:
		return
	case have && had && routeEqual(cur, best):
		return
	case have:
		s.loc[p] = best
	default:
		delete(s.loc, p)
	}
	s.announce(p)
}

func (s *Speaker) ribInSorted(p addr.Prefix) []Route {
	in := s.ribIn[p]
	nbrs := make([]topology.ASN, 0, len(in))
	for n := range in {
		nbrs = append(nbrs, n)
	}
	sort.Slice(nbrs, func(i, j int) bool { return nbrs[i] < nbrs[j] })
	out := make([]Route, 0, len(in))
	for _, n := range nbrs {
		out = append(out, in[n])
	}
	return out
}

// SessionSystem wires one Speaker per AS over a fabric whose node ids are
// the ASNs, with link latencies from the first physical link between each
// AS pair.
type SessionSystem struct {
	Speakers map[topology.ASN]*Speaker
	net      *topology.Network
}

// NewSessionSystem builds the speakers and links; every domain originates
// its aggregate (announcements flow once the engine runs).
func NewSessionSystem(net *topology.Network, fabric *netsim.Fabric) *SessionSystem {
	ss := &SessionSystem{Speakers: map[topology.ASN]*Speaker{}, net: net}
	for _, asn := range net.ASNs() {
		nbrs := map[topology.ASN]topology.Rel{}
		for _, nb := range net.Neighbors(asn) {
			nbrs[nb.ASN] = nb.Rel
			fabric.Connect(int(asn), int(nb.ASN), netsim.Time(nb.Links[0].Latency))
		}
		ss.Speakers[asn] = NewSpeaker(asn, fabric, nbrs)
	}
	for _, asn := range net.ASNs() {
		ss.Speakers[asn].Originate(net.Domain(asn).Prefix)
	}
	return ss
}

// TotalUpdates sums UPDATE messages across speakers.
func (ss *SessionSystem) TotalUpdates() uint64 {
	var n uint64
	for _, s := range ss.Speakers {
		n += s.Updates
	}
	return n
}
