package bgp

import (
	"sort"

	"github.com/evolvable-net/evolve/internal/addr"
	"github.com/evolvable-net/evolve/internal/netsim"
	"github.com/evolvable-net/evolve/internal/topology"
)

// This file provides the event-driven counterpart of the synchronous
// fixpoint solver: per-AS speakers exchanging UPDATE messages over a
// netsim fabric, with the same decision process and Gao-Rexford export
// policy. For policy-safe configurations both converge to the same unique
// stable routing, which the property tests assert; the session model
// additionally measures the transient picture the paper hand-waves —
// propagation delay, black-hole windows, path exploration — at the
// inter-domain level.
//
// Unlike the original fire-and-forget prototype, every neighbor pair now
// runs a real session (see fsm.go): a failed or flapped fabric link takes
// the session down after the hold timer, flushing that neighbor's ribIn
// entries and withdrawing downstream; re-establishment replays the full
// Adj-RIB-Out; and sequence-number gaps on a link whose outage was too
// short to trip the hold timer trigger a route-refresh resync. Either
// way, an UPDATE or WITHDRAW dropped during an outage can no longer
// leave a permanently stale route.

// update is one BGP UPDATE: an advertisement (path != nil) or a
// withdrawal for a prefix.
type update struct {
	prefix addr.Prefix
	// path is the AS path as seen at the receiver (sender prepended),
	// nil for withdrawals.
	path     []topology.ASN
	noExport bool
}

// Speaker is one AS's event-driven BGP process.
type Speaker struct {
	asn    topology.ASN
	fabric *netsim.Fabric
	cfg    SessionConfig
	// neighbors maps neighbour ASN → our relationship toward it.
	neighbors map[topology.ASN]topology.Rel
	// nbrOrder is the sorted neighbor list, computed once.
	nbrOrder []topology.ASN
	// sessions holds the per-neighbor FSM and Adj-RIB-Out state.
	sessions map[topology.ASN]*session

	// ribIn holds the latest route heard from each neighbour per prefix.
	ribIn map[addr.Prefix]map[topology.ASN]Route
	// loc is the selected best route per prefix.
	loc map[addr.Prefix]Route
	// originated are locally injected prefixes (exportTo scoping as in
	// the fixpoint solver).
	originated []origination

	// Updates counts UPDATE messages sent — advertisements plus
	// withdrawals, excluding keepalives and refresh control messages —
	// for the dynamics experiments.
	Updates uint64
	// Withdrawals counts the withdrawal subset of Updates.
	Withdrawals uint64
	// Keepalives counts keepalive messages sent.
	Keepalives uint64
	// Resyncs counts route-refresh resyncs this speaker initiated after
	// detecting a sequence gap.
	Resyncs uint64
	// Establishes and Downs count session state transitions.
	Establishes uint64
	Downs       uint64

	// OnLocChange, when set, observes every loc-RIB change — the hook
	// cmd/bgpbench uses to timestamp route arrival and black-hole
	// windows. have is false when the prefix was deleted (r is the old
	// route in that case).
	OnLocChange func(p addr.Prefix, r Route, have bool)

	// onActivity is the SessionSystem's quiescence hook, called on every
	// semantic event (RIB change, update send/receive, state change).
	onActivity func()
}

// NewSpeaker creates the speaker for asn and attaches it to the fabric
// (node id = int(asn)). With cfg.Keepalive > 0 the speaker schedules its
// keepalive/hold tick immediately; with zero it runs in legacy
// fire-and-forget mode (all sessions permanently established, no loss
// detection).
func NewSpeaker(asn topology.ASN, fabric *netsim.Fabric, neighbors map[topology.ASN]topology.Rel, cfg SessionConfig) *Speaker {
	cfg = cfg.withDefaults()
	s := &Speaker{
		asn:       asn,
		fabric:    fabric,
		cfg:       cfg,
		neighbors: neighbors,
		sessions:  map[topology.ASN]*session{},
		ribIn:     map[addr.Prefix]map[topology.ASN]Route{},
		loc:       map[addr.Prefix]Route{},
	}
	for n := range neighbors {
		s.nbrOrder = append(s.nbrOrder, n)
		s.sessions[n] = newSession(cfg.Keepalive <= 0)
	}
	sort.Slice(s.nbrOrder, func(i, j int) bool { return s.nbrOrder[i] < s.nbrOrder[j] })
	fabric.Attach(int(asn), s)
	if cfg.Keepalive > 0 {
		fabric.Engine().At(0, s.tick)
	}
	return s
}

func (s *Speaker) touch() {
	if s.onActivity != nil {
		s.onActivity()
	}
}

// SessionState returns the session FSM state toward the neighbor.
func (s *Speaker) SessionState(nb topology.ASN) SessState {
	sess, ok := s.sessions[nb]
	if !ok {
		return SessIdle
	}
	return sess.state
}

// tick is the recurring keepalive/hold timer: it expires dead sessions
// and probes every neighbor, then reschedules itself. No engine-side
// cancellation is needed — the closure re-checks all state when it fires.
func (s *Speaker) tick() {
	now := s.fabric.Engine().Now()
	for _, nb := range s.nbrOrder {
		sess := s.sessions[nb]
		if sess.state == SessEstablished && sess.heard && now-sess.lastHeard > s.cfg.Hold {
			s.sessionDown(nb, sess)
		}
		s.send(nb, sess, sessMsg{kind: msgKeepalive})
		s.Keepalives++
	}
	s.fabric.Engine().After(s.cfg.Keepalive, s.tick)
}

// sessionDown expires the session: flush every route learned from the
// peer (triggering reselect and downstream withdrawals), clear the
// Adj-RIB-Out (the peer symmetrically flushes what it heard from us),
// and drop any pending batch.
func (s *Speaker) sessionDown(nb topology.ASN, sess *session) {
	sess.state = SessDown
	sess.adjOut = map[addr.Prefix]advert{}
	sess.dirty = map[addr.Prefix]bool{}
	sess.stale = nil
	s.Downs++
	s.touch()
	var affected []addr.Prefix
	for p, in := range s.ribIn {
		if _, ok := in[nb]; ok {
			affected = append(affected, p)
		}
	}
	sortPrefixes(affected)
	for _, p := range affected {
		delete(s.ribIn[p], nb)
		s.reselect(p)
	}
}

// establish transitions Idle/Down → Established: resynchronize the
// receive sequence and replay our full Adj-RIB-Out to the peer. Coming
// back from Down we additionally ask the peer for its table — it may
// never have noticed the outage (asymmetric detection), in which case it
// won't replay on its own; from Idle the peer is cold too and replays at
// its own establishment, so the request would only duplicate traffic.
func (s *Speaker) establish(nb topology.ASN, sess *session, askRefresh bool) {
	sess.state = SessEstablished
	s.Establishes++
	s.touch()
	if askRefresh {
		s.send(nb, sess, sessMsg{kind: msgRefreshReq})
	}
	s.replay(nb, sess)
}

// beginResync reacts to a sequence gap (messages from the peer were lost
// without the session dropping): mark everything learned from the peer
// stale and request a full replay. Adverts un-stale entries as they
// arrive; whatever is still stale at EOR was a lost withdrawal.
//
// Link outages drop both directions, so we also replay our own table
// unsolicited. This is what makes the resync protocol self-healing when
// control messages are themselves lost: a dropped refreshReq consumed a
// sequence number, so the peer detects *that* gap on our next message
// and replays back — after the last drop on a link, every direction that
// lost anything is guaranteed an eventual replay + EOR.
func (s *Speaker) beginResync(nb topology.ASN, sess *session) {
	s.Resyncs++
	s.touch()
	sess.stale = map[addr.Prefix]bool{}
	for p, in := range s.ribIn {
		if _, ok := in[nb]; ok {
			sess.stale[p] = true
		}
	}
	s.send(nb, sess, sessMsg{kind: msgRefreshReq})
	s.replay(nb, sess)
}

// finishResync handles the peer's end-of-RIB marker: entries the replay
// did not refresh are deleted — this is where a WITHDRAW lost on a
// flapped link is finally recovered.
func (s *Speaker) finishResync(nb topology.ASN, sess *session) {
	if len(sess.stale) == 0 {
		sess.stale = nil
		return
	}
	var gone []addr.Prefix
	for p := range sess.stale {
		gone = append(gone, p)
	}
	sortPrefixes(gone)
	sess.stale = nil
	s.touch()
	for _, p := range gone {
		if in := s.ribIn[p]; in != nil {
			delete(in, nb)
		}
		s.reselect(p)
	}
}

// replay sends the speaker's full current Adj-RIB-Out for the neighbor —
// the export decision for every prefix it holds or originates — followed
// by an end-of-RIB marker. Used on (re-)establishment and on refresh
// requests; paired with peer-side flushing or stale-marking it restores
// exact synchrony regardless of what was lost.
func (s *Speaker) replay(nb topology.ASN, sess *session) {
	seen := map[addr.Prefix]bool{}
	var prefixes []addr.Prefix
	for p := range s.loc {
		if !seen[p] {
			seen[p] = true
			prefixes = append(prefixes, p)
		}
	}
	for _, o := range s.originated {
		if !seen[o.prefix] {
			seen[o.prefix] = true
			prefixes = append(prefixes, o.prefix)
		}
	}
	sortPrefixes(prefixes)
	prior := sess.adjOut
	sess.adjOut = map[addr.Prefix]advert{}
	sess.dirty = map[addr.Prefix]bool{}
	for _, p := range prefixes {
		if ad, ok := s.exportRoute(nb, p); ok {
			s.sendAdvert(nb, sess, p, ad)
		}
	}
	// The snapshot must be self-contained: anything previously advertised
	// that it omits gets an explicit withdrawal. Otherwise a withdraw
	// still batched in the dirty set (wiped above) would be lost, and the
	// peer — whose in-flight copy of the stale advert un-staled the
	// prefix before our EOR — would keep it forever.
	var gone []addr.Prefix
	for p := range prior {
		if _, still := sess.adjOut[p]; !still {
			gone = append(gone, p)
		}
	}
	sortPrefixes(gone)
	for _, p := range gone {
		s.sendWithdraw(nb, sess, p)
	}
	s.send(nb, sess, sessMsg{kind: msgEOR})
}

// Originate injects a locally originated prefix and announces it through
// the ordinary decision process.
func (s *Speaker) Originate(p addr.Prefix) {
	s.originated = append(s.originated, origination{prefix: p})
	s.reselect(p)
	s.announce(p)
}

// OriginateTo injects a prefix advertised only to the listed neighbours
// with NO_EXPORT. Like Originate it routes through reselect, so an
// origination correctly displaces a previously neighbor-learned loc
// entry (prefSelf wins the decision process) instead of leaving loc and
// announcements divergent.
func (s *Speaker) OriginateTo(p addr.Prefix, neighbors ...topology.ASN) {
	scope := map[topology.ASN]bool{}
	for _, n := range neighbors {
		scope[n] = true
	}
	s.originated = append(s.originated, origination{prefix: p, exportTo: scope})
	s.reselect(p)
	// Even when loc is unchanged the scoped export decision may have
	// changed; announce diffs against the Adj-RIB-Out so this is exact.
	s.announce(p)
}

// Withdraw removes all local originations of p and propagates the
// consequences through reselect.
func (s *Speaker) Withdraw(p addr.Prefix) {
	out := s.originated[:0]
	removed := false
	for _, o := range s.originated {
		if o.prefix == p {
			removed = true
			continue
		}
		out = append(out, o)
	}
	s.originated = out
	if !removed {
		return
	}
	s.reselect(p)
	s.announce(p)
}

// Best returns the speaker's selected route for p.
func (s *Speaker) Best(p addr.Prefix) (Route, bool) {
	r, ok := s.loc[p]
	return r, ok
}

// Routes returns every selected route in the loc-RIB in deterministic
// prefix order — the surface the chaos probes sweep mid-convergence.
func (s *Speaker) Routes() []Route {
	prefixes := make([]addr.Prefix, 0, len(s.loc))
	for p := range s.loc {
		prefixes = append(prefixes, p)
	}
	sortPrefixes(prefixes)
	out := make([]Route, 0, len(prefixes))
	for _, p := range prefixes {
		out = append(out, s.loc[p])
	}
	return out
}

// TableSize returns the loc-RIB size.
func (s *Speaker) TableSize() int { return len(s.loc) }

// exportRoute is the per-neighbor export decision for p: the ordinary
// Gao-Rexford export of the best route when eligible, else a scoped
// NO_EXPORT advert when a selective origination names the neighbor.
// Ordinary-before-selective matches the fixpoint receiver's tie-break
// (its inbox sees ordinary exports first).
func (s *Speaker) exportRoute(nb topology.ASN, p addr.Prefix) (advert, bool) {
	rel := s.neighbors[nb]
	if best, have := s.loc[p]; have && exportsTo(best, rel) && !best.hasLoop(nb) {
		return advert{
			path:     append([]topology.ASN{s.asn}, best.Path...),
			noExport: best.NoExport,
		}, true
	}
	for _, o := range s.originated {
		if o.prefix == p && o.exportTo != nil && o.exportTo[nb] {
			return advert{path: []topology.ASN{s.asn}, noExport: true}, true
		}
	}
	return advert{}, false
}

// announce marks p dirty toward every neighbor; the MRAI flush diffs the
// export decision against the Adj-RIB-Out, so neighbors that never heard
// an advert for p receive nothing (no gratuitous WITHDRAWs), and no-op
// re-announcements are suppressed.
func (s *Speaker) announce(p addr.Prefix) {
	for _, nb := range s.nbrOrder {
		s.markDirty(nb, p)
	}
}

// markDirty queues p for (re-)advertisement to nb under the MRAI regime:
// immediate flush on the leading edge, batching while the timer is armed.
// Non-established sessions are skipped — establishment replays the full
// Adj-RIB-Out anyway.
func (s *Speaker) markDirty(nb topology.ASN, p addr.Prefix) {
	sess := s.sessions[nb]
	if sess.state != SessEstablished {
		return
	}
	sess.dirty[p] = true
	if s.cfg.MRAI <= 0 {
		s.flush(nb, sess)
		return
	}
	if !sess.mraiArmed {
		s.flush(nb, sess)
		sess.mraiArmed = true
		s.fabric.Engine().After(s.cfg.MRAI, func() { s.mraiFire(nb) })
	}
}

// mraiFire is the trailing edge of the MRAI timer: flush whatever
// batched, and re-arm only if something was sent.
func (s *Speaker) mraiFire(nb topology.ASN) {
	sess := s.sessions[nb]
	if sess.state != SessEstablished || len(sess.dirty) == 0 {
		sess.mraiArmed = false
		return
	}
	s.flush(nb, sess)
	s.fabric.Engine().After(s.cfg.MRAI, func() { s.mraiFire(nb) })
}

// flush sends the delta between the current export decisions for the
// dirty prefixes and the Adj-RIB-Out: adverts for new/changed routes,
// withdrawals only for previously advertised prefixes.
func (s *Speaker) flush(nb topology.ASN, sess *session) {
	if len(sess.dirty) == 0 {
		return
	}
	prefixes := make([]addr.Prefix, 0, len(sess.dirty))
	for p := range sess.dirty {
		prefixes = append(prefixes, p)
	}
	sortPrefixes(prefixes)
	sess.dirty = map[addr.Prefix]bool{}
	for _, p := range prefixes {
		desired, want := s.exportRoute(nb, p)
		cur, had := sess.adjOut[p]
		switch {
		case want && (!had || !advertEqual(cur, desired)):
			s.sendAdvert(nb, sess, p, desired)
		case !want && had:
			s.sendWithdraw(nb, sess, p)
		}
	}
}

func (s *Speaker) sendAdvert(nb topology.ASN, sess *session, p addr.Prefix, ad advert) {
	s.Updates++
	sess.adjOut[p] = ad
	s.touch()
	s.send(nb, sess, sessMsg{kind: msgUpdate, upd: update{
		prefix:   p,
		path:     ad.path,
		noExport: ad.noExport,
	}})
}

func (s *Speaker) sendWithdraw(nb topology.ASN, sess *session, p addr.Prefix) {
	s.Updates++
	s.Withdrawals++
	delete(sess.adjOut, p)
	s.touch()
	s.send(nb, sess, sessMsg{kind: msgUpdate, upd: update{prefix: p}})
}

// sessTrace, when non-nil, observes every session message send (test
// instrumentation only).
var sessTrace func(t netsim.Time, from, to topology.ASN, m sessMsg)

// send stamps the per-session sequence number and hands the message to
// the fabric. The counter advances even when the fabric drops the
// message on a failed link — that consumed number is exactly what the
// receiver later sees as a gap.
func (s *Speaker) send(nb topology.ASN, sess *session, m sessMsg) {
	m.seq = sess.txSeq
	sess.txSeq++
	if sessTrace != nil {
		sessTrace(s.fabric.Engine().Now(), s.asn, nb, m)
	}
	s.fabric.Send(int(s.asn), int(nb), m)
}

// Receive implements netsim.Handler: the session layer (liveness,
// sequence-gap detection, refresh control) wraps the UPDATE processing.
func (s *Speaker) Receive(from int, msg any) {
	m, ok := msg.(sessMsg)
	if !ok {
		return
	}
	nbr := topology.ASN(from)
	rel, adjacent := s.neighbors[nbr]
	if !adjacent {
		return
	}
	sess := s.sessions[nbr]
	sess.lastHeard = s.fabric.Engine().Now()
	sess.heard = true
	if s.cfg.Keepalive > 0 {
		switch sess.state {
		case SessIdle, SessDown:
			wasDown := sess.state == SessDown
			sess.rxSeq = m.seq + 1
			s.establish(nbr, sess, wasDown)
		case SessEstablished:
			if m.seq != sess.rxSeq {
				s.beginResync(nbr, sess)
			}
			sess.rxSeq = m.seq + 1
		}
	}
	switch m.kind {
	case msgKeepalive:
		return
	case msgRefreshReq:
		s.replay(nbr, sess)
	case msgEOR:
		s.finishResync(nbr, sess)
	case msgUpdate:
		s.processUpdate(nbr, rel, sess, m.upd)
	}
}

func (s *Speaker) processUpdate(nbr topology.ASN, rel topology.Rel, sess *session, u update) {
	s.touch()
	if sess.stale != nil {
		delete(sess.stale, u.prefix)
	}
	in := s.ribIn[u.prefix]
	if in == nil {
		in = map[topology.ASN]Route{}
		s.ribIn[u.prefix] = in
	}
	if u.path == nil {
		delete(in, nbr)
	} else {
		in[nbr] = Route{
			Prefix:       u.prefix,
			Path:         u.path,
			LocalPref:    prefFor(rel),
			NoExport:     u.noExport,
			FromCustomer: rel == topology.RelProvider,
		}
	}
	s.reselect(u.prefix)
}

// reselect re-runs the decision process for p and re-announces on
// change. Originations are considered first-injected-first (ties keep
// the earlier entry), matching the fixpoint solver's inbox order.
func (s *Speaker) reselect(p addr.Prefix) {
	var best Route
	have := false
	for _, o := range s.originated {
		if o.prefix == p {
			best = Route{Prefix: p, LocalPref: prefSelf, NoExport: o.exportTo != nil}
			have = true
			break
		}
	}
	for _, cand := range s.ribInSorted(p) {
		if cand.hasLoop(s.asn) {
			continue
		}
		if !have || better(cand, best) {
			best, have = cand, true
		}
	}
	cur, had := s.loc[p]
	switch {
	case !have && !had:
		return
	case have && had && routeEqual(cur, best):
		return
	case have:
		s.loc[p] = best
		s.touch()
		if s.OnLocChange != nil {
			s.OnLocChange(p, best, true)
		}
	default:
		delete(s.loc, p)
		s.touch()
		if s.OnLocChange != nil {
			s.OnLocChange(p, cur, false)
		}
	}
	s.announce(p)
}

func (s *Speaker) ribInSorted(p addr.Prefix) []Route {
	in := s.ribIn[p]
	nbrs := make([]topology.ASN, 0, len(in))
	for n := range in {
		nbrs = append(nbrs, n)
	}
	sort.Slice(nbrs, func(i, j int) bool { return nbrs[i] < nbrs[j] })
	out := make([]Route, 0, len(in))
	for _, n := range nbrs {
		out = append(out, in[n])
	}
	return out
}

// SessionSystem wires one Speaker per AS over a fabric whose node ids are
// the ASNs, with link latencies from the first physical link between each
// AS pair.
type SessionSystem struct {
	Speakers map[topology.ASN]*Speaker
	net      *topology.Network
	eng      *netsim.Engine
	cfg      SessionConfig
	// idle is the quiescence window: how long the protocol must stay
	// silent before RunToConvergence declares convergence. It exceeds
	// hold + keepalive + MRAI + the slowest link so that every latent
	// consequence of the last activity has had time to fire.
	idle         netsim.Time
	lastActivity netsim.Time
}

// NewSessionSystem builds the speakers and links with the default session
// timers; every domain originates its aggregate (announcements flow as
// sessions establish once the engine runs).
func NewSessionSystem(net *topology.Network, fabric *netsim.Fabric) *SessionSystem {
	return NewSessionSystemConfig(net, fabric, DefaultSessionConfig())
}

// NewSessionSystemConfig is NewSessionSystem with explicit session
// timers; SessionConfig{} (zero Keepalive) selects the legacy
// fire-and-forget mode.
func NewSessionSystemConfig(net *topology.Network, fabric *netsim.Fabric, cfg SessionConfig) *SessionSystem {
	cfg = cfg.withDefaults()
	ss := &SessionSystem{
		Speakers: map[topology.ASN]*Speaker{},
		net:      net,
		eng:      fabric.Engine(),
		cfg:      cfg,
	}
	var maxLat netsim.Time
	for _, asn := range net.ASNs() {
		nbrs := map[topology.ASN]topology.Rel{}
		for _, nb := range net.Neighbors(asn) {
			nbrs[nb.ASN] = nb.Rel
			lat := netsim.Time(nb.Links[0].Latency)
			if lat > maxLat {
				maxLat = lat
			}
			fabric.Connect(int(asn), int(nb.ASN), lat)
		}
		sp := NewSpeaker(asn, fabric, nbrs, cfg)
		sp.onActivity = ss.touchNow
		ss.Speakers[asn] = sp
	}
	ss.idle = cfg.Hold + cfg.Keepalive + cfg.MRAI + maxLat + 100
	for _, asn := range net.ASNs() {
		ss.Speakers[asn].Originate(net.Domain(asn).Prefix)
	}
	return ss
}

func (ss *SessionSystem) touchNow() { ss.lastActivity = ss.eng.Now() }

// Engine returns the discrete-event engine the system runs on.
func (ss *SessionSystem) Engine() *netsim.Engine { return ss.eng }

// Config returns the session timers in force.
func (ss *SessionSystem) Config() SessionConfig { return ss.cfg }

// RunToConvergence drives the engine until the protocol has been quiet —
// no UPDATE traffic, no RIB changes, no session transitions — for the
// idle window (keepalives do not count as activity), or until the
// simulated clock passes maxTime (0 means no bound). It returns the time
// of the last protocol activity (the quiescence instant) and whether
// quiescence was reached. With sessions disabled the engine simply
// drains.
func (ss *SessionSystem) RunToConvergence(maxTime netsim.Time) (netsim.Time, bool) {
	// Re-baseline the idle clock: on a repeat call the previous
	// quiescence would otherwise still satisfy the idle window and
	// return before newly scheduled events (failures, withdrawals) run.
	if ss.lastActivity < ss.eng.Now() {
		ss.lastActivity = ss.eng.Now()
	}
	for {
		if ss.eng.Pending() == 0 {
			return ss.lastActivity, true
		}
		if maxTime > 0 && ss.eng.Now() >= maxTime {
			return ss.lastActivity, false
		}
		ss.eng.Step()
		if ss.eng.Now()-ss.lastActivity >= ss.idle {
			return ss.lastActivity, true
		}
	}
}

// SessionState returns owner's session FSM state toward nb.
func (ss *SessionSystem) SessionState(owner, nb topology.ASN) SessState {
	sp, ok := ss.Speakers[owner]
	if !ok {
		return SessIdle
	}
	return sp.SessionState(nb)
}

// TotalUpdates sums UPDATE messages (adverts + withdrawals) across
// speakers.
func (ss *SessionSystem) TotalUpdates() uint64 {
	var n uint64
	for _, s := range ss.Speakers {
		n += s.Updates
	}
	return n
}

// TotalWithdrawals sums withdrawal messages across speakers.
func (ss *SessionSystem) TotalWithdrawals() uint64 {
	var n uint64
	for _, s := range ss.Speakers {
		n += s.Withdrawals
	}
	return n
}

// TotalKeepalives sums keepalive messages across speakers.
func (ss *SessionSystem) TotalKeepalives() uint64 {
	var n uint64
	for _, s := range ss.Speakers {
		n += s.Keepalives
	}
	return n
}

// TotalResyncs sums sequence-gap route-refresh resyncs across speakers.
func (ss *SessionSystem) TotalResyncs() uint64 {
	var n uint64
	for _, s := range ss.Speakers {
		n += s.Resyncs
	}
	return n
}

// SessionTransitions returns the total Established and Down transitions
// across speakers.
func (ss *SessionSystem) SessionTransitions() (established, downs uint64) {
	for _, s := range ss.Speakers {
		established += s.Establishes
		downs += s.Downs
	}
	return established, downs
}
