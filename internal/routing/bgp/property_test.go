package bgp

import (
	"testing"
	"testing/quick"

	"github.com/evolvable-net/evolve/internal/topology"
)

// relOf returns a's relationship toward b, or ok=false when not adjacent.
func relOf(n *topology.Network, a, b topology.ASN) (topology.Rel, bool) {
	for _, nb := range n.Neighbors(a) {
		if nb.ASN == b {
			return nb.Rel, true
		}
	}
	return 0, false
}

// valleyFree checks the Gao-Rexford validity of an AS path: once the path
// has traversed a peer link or gone provider→customer (downhill), it must
// never go customer→provider (uphill) or cross another peer link.
func valleyFree(n *topology.Network, path []topology.ASN) bool {
	descending := false
	for i := 0; i+1 < len(path); i++ {
		rel, ok := relOf(n, path[i], path[i+1])
		if !ok {
			return false // non-adjacent hop
		}
		switch rel {
		case topology.RelCustomer: // uphill: path[i] pays path[i+1]
			if descending {
				return false
			}
		case topology.RelPeer:
			if descending {
				return false
			}
			descending = true
		case topology.RelProvider: // downhill
			descending = true
		}
	}
	return true
}

// TestAllPathsValleyFree property-tests the safety invariant: every
// selected BGP path in every randomly generated internet is valley-free.
// This is the global guarantee that no customer or peer is ever used for
// transit it isn't paid for.
func TestAllPathsValleyFree(t *testing.T) {
	f := func(seed int64) bool {
		n, err := topology.TransitStub(1+int(uint64(seed)%3), 2+int(uint64(seed)%3), 0.5,
			topology.GenConfig{Seed: seed, RoutersPerDomain: 2})
		if err != nil {
			return false
		}
		s := NewSystem(n)
		s.Converge()
		for _, holder := range n.ASNs() {
			for _, origin := range n.ASNs() {
				r, ok := s.BestRoute(holder, n.Domain(origin).Prefix)
				if !ok {
					continue
				}
				full := append([]topology.ASN{holder}, r.Path...)
				if !valleyFree(n, full) {
					t.Logf("seed %d: valley in path %v (holder %d → origin %d)",
						seed, full, holder, origin)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestAllPathsValleyFreeBarabasiAlbert repeats the invariant on the
// heavy-tailed hierarchy, where long provider chains exist.
func TestAllPathsValleyFreeBarabasiAlbert(t *testing.T) {
	f := func(seed int64) bool {
		n, err := topology.BarabasiAlbert(8+int(uint64(seed)%8), 1+int(uint64(seed)%2),
			topology.GenConfig{Seed: seed, RoutersPerDomain: 1})
		if err != nil {
			return false
		}
		s := NewSystem(n)
		s.Converge()
		for _, holder := range n.ASNs() {
			for _, origin := range n.ASNs() {
				r, ok := s.BestRoute(holder, n.Domain(origin).Prefix)
				if !ok {
					continue
				}
				full := append([]topology.ASN{holder}, r.Path...)
				if !valleyFree(n, full) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestPathsAreLoopFree: no AS ever appears twice in a selected path.
func TestPathsAreLoopFree(t *testing.T) {
	f := func(seed int64) bool {
		n, err := topology.Waxman(10, 0.7, 0.5, topology.GenConfig{Seed: seed, RoutersPerDomain: 1})
		if err != nil {
			return false
		}
		s := NewSystem(n)
		s.Converge()
		for _, holder := range n.ASNs() {
			for _, origin := range n.ASNs() {
				r, ok := s.BestRoute(holder, n.Domain(origin).Prefix)
				if !ok {
					continue
				}
				seen := map[topology.ASN]bool{holder: true}
				for _, a := range r.Path {
					if seen[a] {
						return false
					}
					seen[a] = true
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestCustomerRoutesAlwaysUsable: in a fully provider-connected hierarchy
// (every stub has a provider path to every other), customer-originated
// prefixes must be globally reachable — the reachability side of policy.
func TestCustomerRoutesAlwaysUsable(t *testing.T) {
	f := func(seed int64) bool {
		n, err := topology.BarabasiAlbert(10, 1, topology.GenConfig{Seed: seed, RoutersPerDomain: 1})
		if err != nil {
			return false
		}
		// BA with m=1 builds a provider tree: full reachability expected.
		s := NewSystem(n)
		s.Converge()
		for _, a := range n.ASNs() {
			for _, b := range n.ASNs() {
				if _, ok := s.BestRoute(a, n.Domain(b).Prefix); !ok {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}
